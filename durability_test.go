package traj2hash

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"traj2hash/internal/faultinject"
	"traj2hash/internal/wal"
)

// This file is the durability proof of ISSUE 8: a crash injected at
// EVERY filesystem write, fsync, and rename of a mutating workload must
// recover to some prefix of the mutation script and answer queries
// byte-identically to a fresh index built over exactly that prefix.

// mop is one scripted mutation against the public Index API.
type mop struct {
	kind int // mopAdd | mopDelete | mopUpdate
	id   int
	t    Trajectory
}

const (
	mopAdd = iota
	mopDelete
	mopUpdate
)

// durabilityScript interleaves adds, deletes, and updates over distinct
// dataset trajectories. Every op changes the observable state (updates
// use fresh trajectories), so each script prefix is distinguishable —
// which is what lets recovery tests identify the durable prefix.
func durabilityScript(ds *Dataset) []mop {
	db := ds.Database
	ops := make([]mop, 0, 16)
	for i := 0; i < 8; i++ {
		ops = append(ops, mop{kind: mopAdd, t: db[i]})
	}
	return append(ops,
		mop{kind: mopDelete, id: 2},
		mop{kind: mopUpdate, id: 5, t: db[8]},
		mop{kind: mopAdd, t: db[9]}, // id 8
		mop{kind: mopDelete, id: 0},
		mop{kind: mopAdd, t: db[10]}, // id 9
		mop{kind: mopUpdate, id: 3, t: db[11]},
		mop{kind: mopDelete, id: 7},
		mop{kind: mopAdd, t: db[12]}, // id 10
	)
}

// applyOps runs the script until the first failure, returning how many
// ops fully succeeded.
func applyOps(ix *Index, ops []mop) (int, error) {
	for i, op := range ops {
		var err error
		switch op.kind {
		case mopAdd:
			_, err = ix.Add(op.t)
		case mopDelete:
			err = ix.Delete(op.id)
		case mopUpdate:
			err = ix.Update(op.id, op.t)
		}
		if err != nil {
			return i, err
		}
	}
	return len(ops), nil
}

// expectedAfter simulates the first L script ops in pure Go: the next
// id the index would assign and the live id → trajectory mapping.
func expectedAfter(ops []mop, L int) (int, map[int]Trajectory) {
	next := 0
	live := map[int]Trajectory{}
	for _, op := range ops[:L] {
		switch op.kind {
		case mopAdd:
			live[next] = op.t
			next++
		case mopDelete:
			delete(live, op.id)
		case mopUpdate:
			live[op.id] = op.t
		}
	}
	return next, live
}

// stateMatches reports whether ix exposes exactly the given live set
// over the id space [0, maxNext).
func stateMatches(ix *Index, maxNext int, live map[int]Trajectory) bool {
	if ix.Len() != len(live) {
		return false
	}
	for id := 0; id < maxNext; id++ {
		got, ok := ix.Trajectory(id)
		want, wok := live[id]
		if ok != wok || (ok && !reflect.DeepEqual(got, want)) {
			return false
		}
	}
	return true
}

// matchPrefix finds the longest script prefix whose state equals what
// ix recovered. ok=false means the recovered state is NOT any prefix —
// the durability contract is broken.
func matchPrefix(ix *Index, ops []mop, maxNext int) (int, bool) {
	for L := len(ops); L >= 0; L-- {
		_, live := expectedAfter(ops, L)
		if stateMatches(ix, maxNext, live) {
			return L, true
		}
	}
	return 0, false
}

func assertSameResults(t *testing.T, tag string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d\n got %v\nwant %v", tag, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i].ID != want[i].ID || math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
			t.Fatalf("%s: rank %d is (%d, %v), want (%d, %v)", tag, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
		}
	}
}

// assertIndexParity compares the recovered index to its oracle on every
// search surface: the configured backend plus the three always-on
// strategy backends and the Within neighborhood — byte-identical ids,
// scores, and order. It also proves no dead id ever surfaces, even when
// over-asking for the full ranking.
func assertIndexParity(t *testing.T, tag string, got, want *Index, qs []Trajectory, live map[int]Trajectory) {
	t.Helper()
	if got.Len() != want.Len() || got.Len() != len(live) {
		t.Fatalf("%s: Len %d, oracle %d, expected %d", tag, got.Len(), want.Len(), len(live))
	}
	k := got.Len() + 2 // over-ask: the ranking of every live item
	for qi, q := range qs {
		qt := fmt.Sprintf("%s q%d", tag, qi)
		assertSameResults(t, qt+" Search", got.Search(q, 5), want.Search(q, 5))
		assertSameResults(t, qt+" Euclidean", got.SearchEuclidean(q, k), want.SearchEuclidean(q, k))
		assertSameResults(t, qt+" Hamming", got.SearchHamming(q, k), want.SearchHamming(q, k))
		assertSameResults(t, qt+" Hybrid", got.SearchHybrid(q, k), want.SearchHybrid(q, k))
		gw, ww := got.Within(q, 2), want.Within(q, 2)
		if !reflect.DeepEqual(gw, ww) {
			t.Fatalf("%s Within: got %v, want %v", qt, gw, ww)
		}
		for _, r := range got.SearchEuclidean(q, k) {
			if _, ok := live[r.ID]; !ok {
				t.Fatalf("%s: dead id %d surfaced in the full ranking", qt, r.ID)
			}
		}
	}
}

// durableOpts is the shared durable configuration: tight snapshot
// cadence (so the crash schedule covers the snapshot protocol several
// times over) and per-mutation fsync (so every successful op is a
// durability promise the recovery assertions can hold it to).
func durableOpts(backend string, shards int, dir string, fs wal.VFS) Options {
	return Options{
		Backend:       backend,
		Shards:        shards,
		VPTreeSeed:    7,
		WALDir:        dir,
		SnapshotEvery: 4,
		WALSyncEvery:  1,
		walFS:         fs,
	}
}

// oracleIndex builds the in-memory reference: same search options, no
// durability, the given script prefix applied through the same API.
func oracleIndex(t *testing.T, enc Encoder, backend string, shards int, ops []mop) *Index {
	t.Helper()
	ix, err := NewIndexWith(enc, nil, Options{Backend: backend, Shards: shards, VPTreeSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := applyOps(ix, ops); err != nil {
		t.Fatalf("oracle op %d: %v", n, err)
	}
	return ix
}

// TestCrashRecoveryParity is the tentpole acceptance test: for every
// single filesystem operation the durable workload performs — every
// file write (torn short), every fsync (failed), every rename (failed
// before renaming) — crash there, recover the directory through a
// healthy filesystem, and require that
//
//  1. the recovered state is EXACTLY some prefix of the mutation script,
//  2. that prefix covers every op whose call returned success (durability
//     was promised: WALSyncEvery=1) and overshoots by at most the op
//     in flight at the crash,
//  3. a fresh in-memory index built over exactly that prefix answers
//     every query byte-identically on all backends,
//  4. deleted ids never appear in any answer.
//
// Two configurations cover all five registered backends (each index
// maintains its configured backend plus the three paper strategies).
func TestCrashRecoveryParity(t *testing.T) {
	m, ds := untrainedFixture(t)
	ops := durabilityScript(ds)
	maxNext, _ := expectedAfter(ops, len(ops))
	queries := ds.Queries[:2]

	configs := []struct {
		name    string
		backend string
		shards  int
	}{
		{"mih-sharded", BackendMIH, 2},
		{"vptree", BackendVPTree, 1},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			// Recon pass: run the workload on a counting-only FS to learn
			// the crash schedule's coordinate space.
			recon := faultinject.NewFS(nil)
			rix, err := NewIndexWith(m, nil, durableOpts(cfg.backend, cfg.shards, t.TempDir(), recon))
			if err != nil {
				t.Fatal(err)
			}
			if n, err := applyOps(rix, ops); err != nil {
				t.Fatalf("recon op %d: %v", n, err)
			}
			if err := rix.Close(); err != nil {
				t.Fatal(err)
			}
			writes, syncs, renames := recon.Counts()
			if writes == 0 || syncs == 0 || renames == 0 {
				t.Fatalf("recon found no crash points (writes=%d syncs=%d renames=%d)", writes, syncs, renames)
			}

			type fault struct {
				name string
				arm  func(*faultinject.FS)
			}
			var faults []fault
			for w := 1; w <= writes; w++ {
				w := w
				faults = append(faults, fault{fmt.Sprintf("short-write-%d", w), func(f *faultinject.FS) { f.ShortWriteAt(w) }})
			}
			for s := 1; s <= syncs; s++ {
				s := s
				faults = append(faults, fault{fmt.Sprintf("fail-sync-%d", s), func(f *faultinject.FS) { f.FailSyncAt(s) }})
			}
			for r := 1; r <= renames; r++ {
				r := r
				faults = append(faults, fault{fmt.Sprintf("fail-rename-%d", r), func(f *faultinject.FS) { f.FailRenameAt(r) }})
			}

			for _, fl := range faults {
				dir := t.TempDir()
				ffs := faultinject.NewFS(nil)
				fl.arm(ffs)
				applied := 0
				ix, err := NewIndexWith(m, nil, durableOpts(cfg.backend, cfg.shards, dir, ffs))
				if err == nil {
					applied, err = applyOps(ix, ops)
					if err == nil {
						t.Fatalf("%s: workload survived its scheduled crash", fl.name)
					}
					//lint:ignore errcheck the index crashed mid-flight; Close only releases the dead log handle
					ix.Close()
				}
				if !ffs.Crashed() {
					t.Fatalf("%s: workload failed (%v) without the fault firing", fl.name, err)
				}

				// Recover the directory like a restarted process: healthy FS.
				rec, err := NewIndexWith(m, nil, durableOpts(cfg.backend, cfg.shards, dir, nil))
				if err != nil {
					t.Fatalf("%s: recovery failed: %v", fl.name, err)
				}
				L, ok := matchPrefix(rec, ops, maxNext)
				if !ok {
					t.Fatalf("%s: recovered state (Len=%d) is not any prefix of the script", fl.name, rec.Len())
				}
				if L < applied || L > applied+1 {
					t.Fatalf("%s: durable prefix %d, but %d ops returned success (want applied <= L <= applied+1)", fl.name, L, applied)
				}
				_, live := expectedAfter(ops, L)
				oracle := oracleIndex(t, m, cfg.backend, cfg.shards, ops[:L])
				assertIndexParity(t, fmt.Sprintf("%s L=%d", fl.name, L), rec, oracle, queries, live)
				if err := rec.Close(); err != nil {
					t.Fatalf("%s: closing recovered index: %v", fl.name, err)
				}
			}
		})
	}
}

// TestDurableRoundTrip is the non-crash durability contract: a clean
// close/reopen cycle restores the index exactly, the initial dataset is
// NOT re-seeded on top of recovered state, ids are never reused across
// restarts, and RecoveryInfo tells the truth.
func TestDurableRoundTrip(t *testing.T) {
	m, ds := untrainedFixture(t)
	dir := t.TempDir()
	opts := func() Options {
		return Options{Backend: BackendMIH, Shards: 2, WALDir: dir, SnapshotEvery: 3}
	}

	ix, err := NewIndexWith(m, ds.Database[:4], opts())
	if err != nil {
		t.Fatal(err)
	}
	if ix.Recovery().Recovered {
		t.Fatal("fresh directory reported a recovery")
	}
	if err := ix.Delete(1); err != nil {
		t.Fatal(err)
	}
	if err := ix.Update(2, ds.Database[10]); err != nil {
		t.Fatal(err)
	}
	if id, err := ix.Add(ds.Database[11]); err != nil || id != 4 {
		t.Fatalf("Add = (%d, %v), want id 4", id, err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a DIFFERENT initial batch: recovery must win and the
	// batch must be ignored — otherwise every restart re-indexes the
	// dataset on top of its recovered copy.
	ix2, err := NewIndexWith(m, ds.Database[20:28], opts())
	if err != nil {
		t.Fatal(err)
	}
	info := ix2.Recovery()
	if !info.Recovered || info.TornTail {
		t.Fatalf("reopen RecoveryInfo = %+v, want a clean recovery", info)
	}
	if info.FromSnapshot+info.Replayed == 0 {
		t.Fatalf("reopen RecoveryInfo = %+v recovered nothing", info)
	}
	if ix2.Len() != 4 {
		t.Fatalf("reopened Len = %d, want 4 (seed batch must be ignored)", ix2.Len())
	}
	if _, ok := ix2.Trajectory(1); ok {
		t.Fatal("deleted id 1 resurrected by reopen")
	}
	if tr, ok := ix2.Trajectory(2); !ok || !reflect.DeepEqual(tr, ds.Database[10]) {
		t.Fatal("update of id 2 lost across reopen")
	}

	// The reopened index answers exactly like an in-memory index with the
	// same mutation history.
	oracle, err := NewIndexWith(m, ds.Database[:4], Options{Backend: BackendMIH, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, mut := range []error{oracle.Delete(1), oracle.Update(2, ds.Database[10])} {
		if mut != nil {
			t.Fatal(mut)
		}
	}
	if _, err := oracle.Add(ds.Database[11]); err != nil {
		t.Fatal(err)
	}
	_, live := expectedAfter([]mop{
		{kind: mopAdd, t: ds.Database[0]}, {kind: mopAdd, t: ds.Database[1]},
		{kind: mopAdd, t: ds.Database[2]}, {kind: mopAdd, t: ds.Database[3]},
		{kind: mopDelete, id: 1}, {kind: mopUpdate, id: 2, t: ds.Database[10]},
		{kind: mopAdd, t: ds.Database[11]},
	}, 7)
	assertIndexParity(t, "round-trip", ix2, oracle, ds.Queries[:2], live)

	// Ids keep advancing across restarts (never reused), and a third
	// clean reopen sees the post-restart mutation too.
	if id, err := ix2.Add(ds.Database[12]); err != nil || id != 5 {
		t.Fatalf("post-reopen Add = (%d, %v), want id 5", id, err)
	}
	if err := ix2.Close(); err != nil {
		t.Fatal(err)
	}
	ix3, err := NewIndexWith(m, nil, opts())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		//lint:ignore errcheck test cleanup close
		ix3.Close()
	}()
	if ix3.Len() != 5 {
		t.Fatalf("third open Len = %d, want 5", ix3.Len())
	}
	if tr, ok := ix3.Trajectory(5); !ok || !reflect.DeepEqual(tr, ds.Database[12]) {
		t.Fatal("mutation made after the first recovery lost by the second")
	}
}

// TestAccessorsReportMissing locks the satellite-(b) contract: the
// accessors return (zero, false) — never panic, never stale data — for
// out-of-range and deleted ids, and ApproxDistance has no value (NaN)
// for ids without an embedding.
func TestAccessorsReportMissing(t *testing.T) {
	m, ds := untrainedFixture(t)
	ix, err := NewIndexWith(m, ds.Database[:3], Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{-1, 3, 1 << 20} {
		if _, ok := ix.Trajectory(id); ok {
			t.Errorf("Trajectory(%d) ok for an id never assigned", id)
		}
		if _, ok := ix.Embedding(id); ok {
			t.Errorf("Embedding(%d) ok for an id never assigned", id)
		}
		if d := ix.ApproxDistance(ds.Queries[0], id); !math.IsNaN(d) {
			t.Errorf("ApproxDistance(%d) = %v, want NaN", id, d)
		}
	}
	if err := ix.Delete(1); err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.Trajectory(1); ok {
		t.Error("Trajectory ok after delete")
	}
	if _, ok := ix.Embedding(1); ok {
		t.Error("Embedding ok after delete")
	}
	if d := ix.ApproxDistance(ds.Queries[0], 1); !math.IsNaN(d) {
		t.Errorf("ApproxDistance of deleted id = %v, want NaN", d)
	}
	if tr, ok := ix.Trajectory(0); !ok || len(tr) == 0 {
		t.Error("live id 0 lost its trajectory")
	}
	if err := ix.Delete(7); !errors.Is(err, ErrNotFound) {
		t.Errorf("Delete(7) = %v, want ErrNotFound", err)
	}
	if err := ix.Delete(1); !errors.Is(err, ErrDeleted) {
		t.Errorf("second Delete(1) = %v, want ErrDeleted", err)
	}
	if err := ix.Update(1, ds.Database[5]); !errors.Is(err, ErrDeleted) {
		t.Errorf("Update of deleted id = %v, want ErrDeleted", err)
	}
}

// TestMutationsAfterCloseFailClosed locks the post-Close contract: once
// Close has released a durable index's WAL, every mutation path returns
// ErrClosed and applies NOTHING — before the fix, mutations silently
// succeeded in memory while logMutation treated the nil store as an
// in-memory no-op, so the caller got an id back for a write that a
// restart would lose.
func TestMutationsAfterCloseFailClosed(t *testing.T) {
	m, ds := untrainedFixture(t)
	dir := t.TempDir()
	opts := Options{Backend: BackendMIH, WALDir: dir}
	ix, err := NewIndexWith(m, ds.Database[:3], opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := ix.Add(ds.Database[5]); !errors.Is(err, ErrClosed) {
		t.Errorf("Add after Close = %v, want ErrClosed", err)
	}
	if _, err := ix.AddBatch(ds.Database[5:7]); !errors.Is(err, ErrClosed) {
		t.Errorf("AddBatch after Close = %v, want ErrClosed", err)
	}
	if _, err := ix.AddCtx(context.Background(), ds.Database[5]); !errors.Is(err, ErrClosed) {
		t.Errorf("AddCtx after Close = %v, want ErrClosed", err)
	}
	if ids, err := ix.AddBatchCtx(context.Background(), ds.Database[5:7]); !errors.Is(err, ErrClosed) || len(ids) != 0 {
		t.Errorf("AddBatchCtx after Close = (%v, %v), want ErrClosed and no ids", ids, err)
	}
	if err := ix.Delete(0); !errors.Is(err, ErrClosed) {
		t.Errorf("Delete after Close = %v, want ErrClosed", err)
	}
	if err := ix.Update(1, ds.Database[9]); !errors.Is(err, ErrClosed) {
		t.Errorf("Update after Close = %v, want ErrClosed", err)
	}
	// The refused mutations must not have leaked into memory either:
	// the live set is exactly the pre-Close state and still queryable.
	if ix.Len() != 3 {
		t.Fatalf("Len after refused mutations = %d, want 3", ix.Len())
	}
	if got := ix.Search(ds.Queries[0], 2); len(got) != 2 {
		t.Fatalf("Search after Close returned %d results, want 2 (queries must keep working)", len(got))
	}
	if err := ix.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil (idempotent)", err)
	}

	// And none of them claimed durability: a restart sees exactly the
	// pre-Close state.
	ix2, err := NewIndexWith(m, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		//lint:ignore errcheck test cleanup close
		ix2.Close()
	}()
	if ix2.Len() != 3 {
		t.Fatalf("reopened Len = %d, want 3 (a post-Close mutation reached the log)", ix2.Len())
	}
	if tr, ok := ix2.Trajectory(1); !ok || !reflect.DeepEqual(tr, ds.Database[1]) {
		t.Fatal("reopened id 1 does not match the pre-Close state")
	}

	// An in-memory index has no durability to protect: Close stays a
	// documented no-op and the index stays mutable.
	mem, err := NewIndexWith(m, ds.Database[:2], Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Close(); err != nil {
		t.Fatal(err)
	}
	if id, err := mem.Add(ds.Database[5]); err != nil || id != 2 {
		t.Fatalf("in-memory Add after Close = (%d, %v), want id 2", id, err)
	}
}

// countingEncoder wraps an Encoder and counts trajectories embedded
// across every embed path — the probe the fail-fast contract tests use
// to prove a canceled context costs no encoder forward passes.
type countingEncoder struct {
	Encoder
	embeds atomic.Int64
}

func (c *countingEncoder) Embed(t Trajectory) []float64 {
	c.embeds.Add(1)
	return c.Encoder.Embed(t)
}

func (c *countingEncoder) EmbedAll(ts []Trajectory) [][]float64 {
	c.embeds.Add(int64(len(ts)))
	return c.Encoder.EmbedAll(ts)
}

func (c *countingEncoder) EmbedAllParallel(ts []Trajectory, workers int) [][]float64 {
	c.embeds.Add(int64(len(ts)))
	return c.Encoder.EmbedAllParallel(ts, workers)
}

// TestAddBatchCtxFailsFastBeforeEmbedding locks AddBatchCtx's fail-fast
// contract at its expensive step: a context that is already done when
// the call is made must cost ZERO embedding work. Before the fix the
// whole batch went through EmbedAllParallel before the first ctx check,
// so a canceled 10k-item batch still paid 10k forward passes.
func TestAddBatchCtxFailsFastBeforeEmbedding(t *testing.T) {
	m, ds := untrainedFixture(t)
	enc := &countingEncoder{Encoder: m}
	ix, err := NewIndexWith(enc, ds.Database[:2], Options{})
	if err != nil {
		t.Fatal(err)
	}
	seeded := enc.embeds.Load()

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	ids, err := ix.AddBatchCtx(canceled, ds.Database[2:60])
	if !errors.Is(err, context.Canceled) || len(ids) != 0 {
		t.Fatalf("AddBatchCtx on canceled ctx = (%v, %v), want (none, context.Canceled)", ids, err)
	}
	if got := enc.embeds.Load(); got != seeded {
		t.Fatalf("canceled AddBatchCtx embedded %d trajectories; fail-fast means zero", got-seeded)
	}
	if ix.Len() != 2 {
		t.Fatalf("canceled AddBatchCtx mutated the index (Len=%d)", ix.Len())
	}

	// The live path still embeds (once per item) and applies.
	ids, err = ix.AddBatchCtx(context.Background(), ds.Database[2:4])
	if err != nil || len(ids) != 2 {
		t.Fatalf("live AddBatchCtx = (%v, %v)", ids, err)
	}
	if got := enc.embeds.Load(); got != seeded+2 {
		t.Fatalf("live AddBatchCtx embedded %d trajectories, want 2", got-seeded)
	}
}

// TestRecoveryInfoTornFirstRecord locks the RecoveryInfo normalization
// of restore's no-state path: a clean fresh directory (and a reopen of a
// directory that saw no mutations) reports no recovery, while a
// directory whose ONLY record was torn by a crash reports
// Recovered+TornTail — before the fix both cases looked identical
// (Recovered == false), so callers could not tell "nothing ever
// happened here" from "a crash ate the only record".
func TestRecoveryInfoTornFirstRecord(t *testing.T) {
	m, ds := untrainedFixture(t)
	dir := t.TempDir()
	opts := Options{WALDir: dir}

	ix, err := NewIndexWith(m, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if info := ix.Recovery(); info.Recovered || info.TornTail {
		t.Fatalf("fresh directory RecoveryInfo = %+v, want the zero value", info)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopening a directory a previous run opened but never mutated is
	// still not a recovery: the log holds only its magic header.
	ix, err = NewIndexWith(m, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if info := ix.Recovery(); info.Recovered || info.TornTail {
		t.Fatalf("no-mutation reopen RecoveryInfo = %+v, want the zero value", info)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the first record: a crash mid-append of the only mutation ever
	// attempted leaves a partial frame header after the magic.
	f, err := os.OpenFile(filepath.Join(dir, wal.LogName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	ix, err = NewIndexWith(m, ds.Database[:4], opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		//lint:ignore errcheck test cleanup close
		ix.Close()
	}()
	info := ix.Recovery()
	if !info.Recovered || !info.TornTail {
		t.Fatalf("torn-only reopen RecoveryInfo = %+v, want Recovered and TornTail", info)
	}
	if info.FromSnapshot != 0 || info.Replayed != 0 {
		t.Fatalf("torn-only reopen RecoveryInfo = %+v, want nothing restored", info)
	}
	// Nothing was restored, so the initial batch still seeds the index.
	if ix.Len() != 4 {
		t.Fatalf("torn-only reopen Len = %d, want the 4 seed trajectories", ix.Len())
	}
}

// TestIndexAddCtx locks satellite (a) at the facade: a done context
// fails fast, and a batch canceled midway reports exactly the applied
// prefix — which for a durable index is also the logged prefix.
func TestIndexAddCtx(t *testing.T) {
	m, ds := untrainedFixture(t)
	ix, err := NewIndexWith(m, ds.Database[:2], Options{})
	if err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ix.AddCtx(canceled, ds.Database[5]); !errors.Is(err, context.Canceled) {
		t.Fatalf("AddCtx on canceled ctx = %v", err)
	}
	if ids, err := ix.AddBatchCtx(canceled, ds.Database[5:9]); err == nil || len(ids) != 0 {
		t.Fatalf("AddBatchCtx on canceled ctx = (%v, %v)", ids, err)
	}
	if ix.Len() != 2 {
		t.Fatalf("canceled adds mutated the index (Len=%d)", ix.Len())
	}
	if id, err := ix.AddCtx(context.Background(), ds.Database[5]); err != nil || id != 2 {
		t.Fatalf("live AddCtx = (%d, %v), want id 2", id, err)
	}
	if ids, err := ix.AddBatchCtx(context.Background(), ds.Database[6:8]); err != nil || len(ids) != 2 {
		t.Fatalf("live AddBatchCtx = (%v, %v)", ids, err)
	}
}
