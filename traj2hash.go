// Package traj2hash is the public API of the Traj2Hash library — a Go
// implementation of "Learning to Hash for Trajectory Similarity Computation
// and Search" (ICDE 2024).
//
// The library learns to encode GPS trajectories into two coordinated
// representations: dense vectors in Euclidean space, whose distances
// approximate an exact trajectory distance (DTW, discrete Fréchet,
// Hausdorff, and others), and binary codes in Hamming space, which support
// table-lookup top-k search. A typical pipeline:
//
//	model, _ := traj2hash.New(traj2hash.DefaultConfig(64), corpus)
//	model.Train(traj2hash.TrainData{Seeds: seeds, Validation: val,
//	        Corpus: corpus, F: traj2hash.Frechet})
//	idx, _ := traj2hash.NewIndex(model, database)
//	top10 := idx.SearchHybrid(query, 10)
//
// The packages under internal/ hold the full implementation — the
// from-scratch neural network framework, the exact distance functions, the
// six comparison baselines, and the experiment harness reproducing every
// table and figure of the paper; this package re-exports the surface a
// downstream application needs.
package traj2hash

import (
	"io"

	"traj2hash/internal/core"
	"traj2hash/internal/data"
	"traj2hash/internal/dist"
	"traj2hash/internal/eval"
	"traj2hash/internal/geo"
	"traj2hash/internal/hamming"
)

// Point is a planar location (meters in a local frame, or a projected
// longitude/latitude pair — see ProjectLonLat).
type Point = geo.Point

// Trajectory is a sequence of points.
type Trajectory = geo.Trajectory

// Stats holds coordinate normalization statistics.
type Stats = geo.Stats

// Config collects the model and training hyper-parameters; see
// DefaultConfig for the paper's settings.
type Config = core.Config

// Model is a (trained or untrained) Traj2Hash model — the paper's
// attention encoder, one of the registered Encoder kinds.
type Model = core.Model

// Encoder is the pluggable trajectory-encoder seam: anything that maps a
// trajectory to a Euclidean embedding and a sign-derived Hamming code.
// NewIndex and NewIndexWith accept any Encoder; see EncoderKinds for the
// registered kinds and NewEncoder to build one by name.
type Encoder = core.Encoder

// Trainable is the sub-interface of encoders fitted by the gradient
// training loop (Model and the CNN encoder). Training-free encoders such
// as GeoPTH do not implement it.
type Trainable = core.Trainable

// TrainData is the input of Model.Train: a seed set whose exact pairwise
// distances supervise the Euclidean space, a validation set for model
// selection, an unlabelled corpus for fast triplet generation, and the
// distance function to approximate.
type TrainData = core.TrainData

// History records a training run.
type History = core.History

// Code is a packed binary hash code.
type Code = hamming.Code

// Metrics bundles the retrieval metrics HR@10, HR@50, and R10@50.
type Metrics = eval.Metrics

// Dataset is a split trajectory collection (seeds / validation / corpus /
// queries / database).
type Dataset = data.Dataset

// SplitSpec gives the split sizes for BuildDataset.
type SplitSpec = data.SplitSpec

// City is a synthetic city model for generating trajectory corpora.
type City = data.City

// DistanceFunc identifies an exact trajectory distance function.
type DistanceFunc = dist.Func

// The supported exact distance functions.
const (
	DTW       = dist.DTWDist
	Frechet   = dist.FrechetDist
	Hausdorff = dist.HausdorffDist
	ERP       = dist.ERPDist
	EDR       = dist.EDRDist
)

// Read-out layer variants (Config.Readout).
const (
	LowerBound = core.LowerBound
	Mean       = core.Mean
	CLS        = core.CLS
)

// The built-in encoder kinds (NewEncoder, the CLI -encoder flag).
const (
	// EncoderAttention is the paper's two-channel attention model.
	EncoderAttention = core.AttentionKind
	// EncoderGeoPTH is the training-free geometric prototype hasher.
	EncoderGeoPTH = core.GeoPTHKind
	// EncoderCNN is the convolutional encoder over grid rasterizations.
	EncoderCNN = core.CNNKind
)

// DefaultConfig returns the paper's hyper-parameters at the given latent
// dimension (the paper uses 64; 16–32 train much faster on CPU).
func DefaultConfig(dim int) Config { return core.DefaultConfig(dim) }

// New builds a model whose study space (grid extent, coordinate
// normalization) is fitted on the given trajectories, which should cover
// all data the model will see.
func New(cfg Config, space []Trajectory) (*Model, error) { return core.New(cfg, space) }

// LoadModel reads a model saved with Model.Save.
func LoadModel(r io.Reader) (*Model, error) { return core.Load(r) }

// LoadModelFile reads a model saved with Model.SaveFile.
func LoadModelFile(path string) (*Model, error) { return core.LoadFile(path) }

// NewEncoder builds a fresh encoder of the given kind (see the Encoder*
// constants; the legacy names "model" and "traj2hash" alias the attention
// model) with its study space fitted on space.
func NewEncoder(kind string, cfg Config, space []Trajectory) (Encoder, error) {
	return core.NewEncoder(kind, cfg, space)
}

// EncoderKinds returns the names of all registered encoder kinds, sorted.
func EncoderKinds() []string { return core.EncoderKinds() }

// SaveEncoderFile writes any serializable encoder to path in a
// kind-tagged container format.
func SaveEncoderFile(path string, enc Encoder) error { return core.SaveEncoderFile(path, enc) }

// LoadEncoderFile reads an encoder written by SaveEncoderFile; files
// written by the older Model.SaveFile API load as the attention model.
func LoadEncoderFile(path string) (Encoder, error) { return core.LoadEncoderFile(path) }

// Distance computes the exact trajectory distance f between a and b.
func Distance(f DistanceFunc, a, b Trajectory) float64 { return dist.Distance(f, a, b) }

// DistanceMatrix computes the exact pairwise distance matrix over ts in
// parallel.
func DistanceMatrix(f DistanceFunc, ts []Trajectory) [][]float64 { return dist.Matrix(f, ts) }

// GroundTruth computes, for each query, the exact top-k database indices
// under f — the reference for Evaluate.
func GroundTruth(f DistanceFunc, queries, db []Trajectory, k int) [][]int {
	return eval.GroundTruth(f, queries, db, k)
}

// Evaluate computes HR@10, HR@50, and R10@50 of returned id lists against
// exact ground truth.
func Evaluate(returned, truth [][]int) Metrics { return eval.Evaluate(returned, truth) }

// Porto returns the Porto-like synthetic city model.
func Porto() *City { return data.Porto() }

// ChengDu returns the ChengDu-like synthetic city model.
func ChengDu() *City { return data.ChengDu() }

// BuildDataset generates and splits a synthetic corpus from a city model.
func BuildDataset(c *City, spec SplitSpec, seed int64) *Dataset { return data.Build(c, spec, seed) }

// LoadDataset reads a dataset saved with Dataset.Save.
func LoadDataset(path string) (*Dataset, error) { return data.Load(path) }

// ProjectLonLat converts a (longitude, latitude) pair in degrees into local
// planar meters around the reference latitude. Apply it to raw GPS data
// before building trajectories.
func ProjectLonLat(lon, lat, refLat float64) Point {
	return geo.ProjectEquirectangular(lon, lat, refLat)
}

// HammingDistance returns the Hamming distance between two codes.
func HammingDistance(a, b Code) int { return hamming.Distance(a, b) }

// SignCode packs an embedding into its Hamming code by the sign
// convention of Equation 16 (Model.Code(t) ≡ SignCode(Model.Embed(t))).
// Use it to derive the code from an already-computed embedding instead of
// paying a second encoder forward pass.
func SignCode(emb []float64) Code { return hamming.FromSigns(emb) }
