package traj2hash

import (
	"context"
	"fmt"

	"traj2hash/internal/engine"
	"traj2hash/internal/geo"
	"traj2hash/internal/hamming"
	"traj2hash/internal/wal"
)

// This file is the mutability + durability face of the Index:
// Delete/Update (engine tombstones and in-place replacement), the
// context-aware Add variants, and the write-ahead-log protocol — apply
// the mutation in memory, append its record (group-fsynced), snapshot on
// cadence. Recovery (openWAL/restore) is the inverse: load the latest
// snapshot into the engine, replay the log tail idempotently, and
// remember what happened in RecoveryInfo.

// Delete removes the trajectory with the given id from the index: it
// disappears from every subsequent Search/Within answer immediately and
// its id is never reused. Deleting an unknown id returns ErrNotFound;
// deleting twice returns ErrDeleted (both from package engine, exposed
// as traj2hash.ErrNotFound / traj2hash.ErrDeleted). When the shard's
// tombstone density crosses Options.CompactAt the delete also compacts
// that shard synchronously; compaction never changes answers.
func (ix *Index) Delete(id int) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed {
		return ErrClosed
	}
	if err := ix.eng.Delete(id); err != nil {
		return err
	}
	// Release the canonical copies: a deleted id answers nothing, so
	// holding its trajectory and embedding would only pin memory.
	ix.trajs[id] = nil
	ix.embs[id] = nil
	return ix.logMutation(wal.Record{Op: wal.OpDelete, ID: id})
}

// Update re-embeds t and replaces the trajectory stored under id in
// place: the id, its shard, and its insertion-order position are all
// preserved, so deterministic tie-breaks survive the mutation. Updating
// an unknown id returns ErrNotFound; a deleted one, ErrDeleted.
func (ix *Index) Update(id int, t Trajectory) error {
	emb := ix.enc.Embed(t)
	code := hamming.FromSigns(emb)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed {
		return ErrClosed
	}
	if err := ix.eng.Update(id, emb, code); err != nil {
		return err
	}
	ix.trajs[id] = t
	ix.embs[id] = emb
	return ix.logMutation(wal.Record{Op: wal.OpUpdate, ID: id, Emb: emb, Code: code, Traj: flattenTraj(t)})
}

// AddCtx is Add honoring cancellation: a done context fails fast before
// the trajectory is embedded or any state changes.
func (ix *Index) AddCtx(ctx context.Context, t Trajectory) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return ix.Add(t)
}

// AddBatchCtx is AddBatch honoring cancellation between appends: a done
// context fails fast BEFORE the batch is embedded (embedding is the
// expensive part — the same fail-fast contract AddCtx documents), the
// context is then re-checked before each item, and on cancellation the
// ids already indexed (and durably logged, when a WAL is configured) are
// returned alongside the context's error — the applied prefix.
func (ix *Index) AddBatchCtx(ctx context.Context, ts []Trajectory) ([]int, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(ts) == 0 {
		return nil, nil
	}
	embs := ix.enc.EmbedAllParallel(ts, ix.opts.Workers)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ids := make([]int, 0, len(ts))
	for i, t := range ts {
		if err := ctx.Err(); err != nil {
			return ids, err
		}
		id, err := ix.add(t, embs[i])
		if err != nil {
			return ids, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// Close releases the durability layer: pending WAL appends are fsynced
// and the log handle is closed. The index remains usable for queries but
// further mutations fail with ErrClosed — applying them in memory only
// would silently break the durability promise every earlier mutation was
// made under. A nil store (in-memory index) makes Close a no-op and the
// index stays mutable. Safe to call more than once.
func (ix *Index) Close() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.store == nil {
		return nil
	}
	ix.closed = true
	err := ix.store.Close()
	ix.store = nil
	return err
}

// logMutation appends one record to the WAL (no-op for in-memory
// indexes) and snapshots when the cadence says so. Callers hold ix.mu
// and have already applied the mutation in memory — the in-memory state
// IS the state a due snapshot captures. An error means durability was
// lost for this mutation (it is still applied in memory); the caller
// should surface it and rebuild via NewIndexWith.
func (ix *Index) logMutation(rec wal.Record) error {
	if ix.store == nil {
		return nil
	}
	if err := ix.store.Append(rec); err != nil {
		return err
	}
	if ix.store.SnapshotDue() {
		return ix.store.WriteSnapshot(ix.captureState())
	}
	return nil
}

// captureState images the live index for a snapshot: next-id plus every
// live item's full representation, ascending by id. Callers hold ix.mu.
//
//det:replayed two captures of the same live index must gob-encode to identical snapshot bytes
func (ix *Index) captureState() *wal.State {
	next := ix.eng.NextID()
	s := &wal.State{Next: next}
	for id := 0; id < next; id++ {
		if !ix.eng.Live(id) {
			continue
		}
		emb := ix.embs[id]
		s.Items = append(s.Items, wal.Item{
			ID:   id,
			Emb:  emb,
			Code: hamming.FromSigns(emb),
			Traj: flattenTraj(ix.trajs[id]),
		})
	}
	return s
}

// openWAL opens (or creates) Options.WALDir and restores whatever a
// previous run left there. Called from NewIndexWith before the initial
// batch is considered.
func (ix *Index) openWAL() error {
	store, rec, err := wal.Open(wal.Options{
		Dir:           ix.opts.WALDir,
		SyncEvery:     ix.opts.WALSyncEvery,
		SnapshotEvery: ix.opts.SnapshotEvery,
		Metrics:       ix.opts.Metrics,
		FS:            ix.opts.walFS,
	})
	if err != nil {
		return err
	}
	ix.store = store
	if err := ix.restore(rec); err != nil {
		//lint:ignore errcheck the restore error takes precedence over the cleanup close
		store.Close()
		ix.store = nil
		return err
	}
	return nil
}

// restore rebuilds the engine and the canonical trajectory/embedding
// arrays from what recovery found: the snapshot's live items first
// (placed back under their original global ids, with id-sequence gaps
// becoming engine tombstones), then the log tail re-applied in order.
//
// Tail replay is idempotent because a crash between the snapshot rename
// and the log reset leaves records the snapshot already reflects: an Add
// below the engine's next id is already present and skipped, as are
// Delete/Update of ids that are no longer live. What can NOT happen on
// an intact log is an Add ABOVE the next id — that would mean a lost
// record — so it fails recovery loudly instead of leaving a silent gap.
//
//det:replayed the crash-recovery suite proves byte-identical top-k parity after this replay; it must be a pure function of rec
func (ix *Index) restore(rec *wal.Recovered) error {
	var next int
	var items []engine.RestoreItem
	if rec.Snapshot != nil {
		next = rec.Snapshot.Next
		items = make([]engine.RestoreItem, len(rec.Snapshot.Items))
		for i, it := range rec.Snapshot.Items {
			items[i] = engine.RestoreItem{ID: it.ID, Emb: it.Emb, Code: it.Code}
		}
	}
	if next == 0 && len(rec.Tail) == 0 {
		// No state to rebuild — but "clean fresh directory" and "a crash
		// ate the only record ever attempted" are different stories, and
		// callers must be able to tell them apart: a found-and-truncated
		// torn record marks the directory as recovered even though nothing
		// was restored.
		ix.rec = RecoveryInfo{Recovered: rec.TornTail, TornTail: rec.TornTail}
		return nil
	}
	if err := ix.eng.Restore(next, items); err != nil {
		return err
	}
	ix.trajs = make([]Trajectory, next)
	ix.embs = make([][]float64, next)
	if rec.Snapshot != nil {
		for _, it := range rec.Snapshot.Items {
			ix.trajs[it.ID] = unflattenTraj(it.Traj)
			ix.embs[it.ID] = it.Emb
		}
	}
	for _, r := range rec.Tail {
		switch r.Op {
		case wal.OpAdd:
			if r.ID < ix.eng.NextID() {
				continue // already captured by the snapshot
			}
			id, err := ix.eng.Add(r.Emb, r.Code)
			if err != nil {
				return fmt.Errorf("traj2hash: replaying add of id %d: %w", r.ID, err)
			}
			if id != r.ID {
				return fmt.Errorf("traj2hash: WAL add replay assigned id %d, logged id was %d (lost record)", id, r.ID)
			}
			ix.trajs = append(ix.trajs, unflattenTraj(r.Traj))
			ix.embs = append(ix.embs, r.Emb)
			ix.rec.Replayed++
		case wal.OpDelete:
			if !ix.eng.Live(r.ID) {
				continue
			}
			if err := ix.eng.Delete(r.ID); err != nil {
				return fmt.Errorf("traj2hash: replaying delete of id %d: %w", r.ID, err)
			}
			ix.trajs[r.ID] = nil
			ix.embs[r.ID] = nil
			ix.rec.Replayed++
		case wal.OpUpdate:
			if !ix.eng.Live(r.ID) {
				continue
			}
			if err := ix.eng.Update(r.ID, r.Emb, r.Code); err != nil {
				return fmt.Errorf("traj2hash: replaying update of id %d: %w", r.ID, err)
			}
			ix.trajs[r.ID] = unflattenTraj(r.Traj)
			ix.embs[r.ID] = r.Emb
			ix.rec.Replayed++
		default:
			return fmt.Errorf("traj2hash: WAL record with unknown op %d", r.Op)
		}
	}
	ix.rec = RecoveryInfo{
		Recovered:    true,
		FromSnapshot: len(items),
		Replayed:     ix.rec.Replayed,
		TornTail:     rec.TornTail,
	}
	return nil
}

// flattenTraj serializes a trajectory for a WAL record or snapshot item
// as alternating x,y coordinates.
func flattenTraj(t Trajectory) []float64 {
	if len(t) == 0 {
		return nil
	}
	out := make([]float64, 0, 2*len(t))
	for _, p := range t {
		out = append(out, p.X, p.Y)
	}
	return out
}

// unflattenTraj is the inverse of flattenTraj.
func unflattenTraj(xs []float64) Trajectory {
	if len(xs) == 0 {
		return nil
	}
	t := make(Trajectory, 0, len(xs)/2)
	for i := 0; i+1 < len(xs); i += 2 {
		t = append(t, geo.Point{X: xs[i], Y: xs[i+1]})
	}
	return t
}
