package traj2hash_test

import (
	"fmt"
	"log"

	"traj2hash"
)

// Example shows the full pipeline: build a corpus, train a model, index a
// database, and answer a top-k query. (Compile-checked; training runtime
// keeps it out of the executed example set.)
func Example() {
	// Synthetic corpus — substitute your own []traj2hash.Trajectory, e.g.
	// loaded from CSV and projected with traj2hash.ProjectLonLat.
	ds := traj2hash.BuildDataset(traj2hash.Porto(), traj2hash.SplitSpec{
		Seed: 50, Validation: 40, Corpus: 250, Queries: 10, Database: 1000,
	}, 1)

	cfg := traj2hash.DefaultConfig(32)
	model, err := traj2hash.New(cfg, ds.All())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := model.Train(traj2hash.TrainData{
		Seeds: ds.Seeds, Validation: ds.Validation, Corpus: ds.Corpus,
		F: traj2hash.Frechet,
	}); err != nil {
		log.Fatal(err)
	}

	idx, err := traj2hash.NewIndex(model, ds.Database)
	if err != nil {
		log.Fatal(err)
	}
	for _, hit := range idx.SearchHybrid(ds.Queries[0], 10) {
		fmt.Println(hit.ID, hit.Score)
	}
}

// ExampleDistance computes exact trajectory distances.
func ExampleDistance() {
	a := traj2hash.Trajectory{{X: 0, Y: 0}, {X: 100, Y: 0}}
	b := traj2hash.Trajectory{{X: 0, Y: 30}, {X: 100, Y: 30}}
	fmt.Println(traj2hash.Distance(traj2hash.Frechet, a, b))
	fmt.Println(traj2hash.Distance(traj2hash.Hausdorff, a, b))
	// Output:
	// 30
	// 30
}

// ExampleEvaluate scores returned rankings against exact ground truth.
func ExampleEvaluate() {
	truth := [][]int{{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}}
	returned := [][]int{{1, 2, 3, 4, 5, 99, 98, 97, 96, 95}}
	m := traj2hash.Evaluate(returned, truth)
	fmt.Printf("%.2f\n", m.HR10)
	// Output:
	// 0.50
}
