package traj2hash

import "traj2hash/internal/obs"

// MetricsRegistry is the observability registry of the library: a
// namespaced set of counters, gauges, latency/candidate histograms, and
// a span tracer, safe for concurrent use (see DESIGN.md
// "Observability"). Pass one via Options.Metrics to instrument an
// Index, or via TrainData.Metrics (core) to instrument training; read
// it back with Index.Stats or Snapshot.
type MetricsRegistry = obs.Registry

// MetricsSnapshot is a point-in-time copy of a registry's instruments,
// as returned by Index.Stats: counter and gauge values by name plus
// histogram bucket counts. It marshals to the same JSON the CLI's
// /metrics debug endpoint serves.
type MetricsSnapshot = obs.Snapshot

// NewMetricsRegistry returns a fresh, empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.New() }

// DefaultMetricsRegistry returns the process-global registry, shared by
// call sites with no configuration surface of their own (checkpoint
// persistence counters, the CLI). Library users who want isolated
// numbers should prefer NewMetricsRegistry.
func DefaultMetricsRegistry() *MetricsRegistry { return obs.Default() }
