#!/usr/bin/env sh
# CI gate for the repository: vet, build, and run the full test suite
# under the race detector (the engine's concurrent Add/Search tests only
# mean something with -race). Usage: ./scripts/ci.sh [extra go test args]
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./... $*"
go test -race "$@" ./...

echo "CI OK"
