#!/usr/bin/env sh
# CI gate for the repository, in order:
#   1. gofmt cleanliness (including testdata fixtures)
#   2. trajlint — the stdlib-only analyzer suite enforcing the repo's
#      correctness contracts (see DESIGN.md "Static analysis & invariants")
#   3. go vet
#   4. go build
#   5. fault-injection + observability + durability scenarios under the
#      race detector — the failure-domain contracts (panic isolation,
#      deadlines, checkpoint rollback), their visibility (injected
#      faults must move the obs counters; see DESIGN.md
#      "Observability"), and the crash-recovery parity suite (a crash
#      injected at every WAL write/fsync/rename must recover to an
#      answer-identical prefix; see DESIGN.md "Mutability &
#      durability") run first and fast, so a broken contract fails the
#      gate before the full suite spins up. The faultinject metrics
#      tests export a JSON snapshot artifact to bin/metrics.json
#      (METRICS_JSON_OUT).
#   6. encoder benchmark artifact — embed/hash ns/op, ops/sec, and allocs
#      for every registered encoder kind, exported to
#      bin/BENCH_encoders.json (BENCH_ENCODERS_OUT)
#   7. hotpath performance contracts — the perf-rule subset of trajlint
#      (hotpathalloc, hotpathbce, allocinloop) re-checked standalone,
#      then the BenchmarkHotpath* suite runs with -benchmem and
#      cmd/benchjson exports bin/BENCH_hotpath.json and gates allocs/op
#      against scripts/hotpath_floors.json (allocs are exact, so unlike
#      ns/op they CAN fail the build; see DESIGN.md "Performance
#      contracts")
#   8. determinism contracts — the det-rule subset of trajlint
#      (detmaprange, detwallclock, detunordered) re-checked standalone:
#      nondeterminism sources must not reach gob encodes, WAL appends,
#      or //det:replayed returns (see DESIGN.md "Determinism
#      contracts"), followed by the trajlint cold/warm cost artifact
#      bin/BENCH_trajlint.json
#   9. mutable-index benchmark artifact — add/delete/compaction/search-
#      with-tombstones and WAL append/recovery ns_per_op + allocs,
#      exported to bin/BENCH_mutable.json (informational, no floors)
#  10. WAL fuzz smoke — FuzzReadFrame / FuzzLoadSnapshot for 10s each
#      over the committed seed corpora (internal/wal/testdata/fuzz/):
#      frame/snapshot decoding never panics and torn-tail truncation
#      never misclassifies corruption
#  11. serving smoke — a real traj2hashd daemon over a temp WAL dir is
#      driven by cmd/trajload twice: a fixed-count run that must meet a
#      p99 latency bound, then an open-ended run SIGTERMed mid-flight
#      that must lose zero accepted requests (the graceful-drain
#      contract; see DESIGN.md "Serving layer"). The latency quantiles
#      are exported to bin/BENCH_serving.json via cmd/benchjson
#  12. full test suite under the race detector (the engine's concurrent
#      Add/Search tests only mean something with -race)
#  13. benchmark artifacts published to the repo root (BENCH_*.json,
#      committed — the per-PR perf trajectory) and a repo-hygiene check
#      that generated outputs stay under bin/
#
# BENCH_obs — the instrumentation overhead guard (not a CI gate:
# wall-clock benchmarks are too noisy to fail a build on; run it when
# touching the obs package or the engine's metrics paths):
#   go test -bench 'SearchBatch(No)?Metrics' -benchmem -count 5 ./internal/engine
# BenchmarkSearchBatchMetrics must stay within 5% of
# BenchmarkSearchBatchNoMetrics (the nil-registry no-op path); see
# DESIGN.md "Observability".
# Usage: ./scripts/ci.sh [extra go test args]
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "$unformatted"
	echo "gofmt: the files above need formatting (run: gofmt -w .)"
	exit 1
fi

echo "== trajlint ./..."
# Build the linter once into bin/ (gitignored) and reuse the binary for
# both passes; the content-hash cache makes the second pass a replay.
mkdir -p bin
go build -o bin/trajlint ./cmd/trajlint
lint_status=0
./bin/trajlint -cache bin/trajlint-cache ./... || lint_status=$?
# Machine-readable findings artifact for CI consumers (empty array when
# clean). Best-effort: a findings exit (1) is expected here.
./bin/trajlint -json -cache bin/trajlint-cache ./... >bin/trajlint-findings.json || true
case "$lint_status" in
0) ;;
1)
	echo "trajlint: findings — a correctness contract is violated. Each rule is documented in DESIGN.md 'Static analysis & invariants', including how to suppress deliberate sites with //lint:ignore <rule> <reason>; det* findings (determinism contracts) are specified in DESIGN.md 'Determinism contracts' (§10). Run ./bin/trajlint -fix ./... for the mechanical ones; JSON artifact at bin/trajlint-findings.json"
	exit 1
	;;
*)
	echo "trajlint: the linter itself failed (exit $lint_status) — this is a tooling/invocation error, not a finding; see the message above"
	exit "$lint_status"
	;;
esac

echo "== go vet ./..."
go vet ./... || {
	echo "go vet: hint — vet failures here usually break an invariant the engine relies on; see DESIGN.md 'Static analysis & invariants' before working around the report"
	exit 1
}

echo "== go build ./..."
go build ./...

echo "== go test -race (fault-injection + observability + durability scenarios)"
METRICS_JSON_OUT="$PWD/bin/metrics.json" \
	go test -race -run 'Fault|Panic|Chaos|Deadline|Checkpoint|Resume|Diverg|Rollback|Cancel|EdgeCases|Metrics|Degraded|Timeout|Histogram|Tracer|SaveCheckpointFile|Crash|Recover|Torn|Durab|Mutat' \
	. ./internal/engine ./internal/faultinject ./internal/core ./internal/obs ./internal/wal || {
	echo "fault injection: a failure-domain contract is broken — partial results, panic isolation, checkpoint rollback, crash-recovery parity, and their metric visibility are specified in DESIGN.md 'Failure semantics & graceful degradation', 'Observability', and 'Mutability & durability'"
	exit 1
}
[ -s bin/metrics.json ] || {
	echo "observability: the faultinject metrics stage did not export bin/metrics.json (TestInjectedPanicsMoveMetrics writes it when METRICS_JSON_OUT is set)"
	exit 1
}

echo "== encoder benchmark artifact (BENCH_encoders.json)"
# Perf trajectory of the encoder zoo: ns/op, ops/sec, and allocs for each
# registered encoder's embed and hash paths (see DESIGN.md "Encoder
# architecture"). Informational, not a gate — wall-clock numbers are too
# noisy to fail a build on — but the artifact must exist and be non-empty.
BENCH_ENCODERS_OUT="$PWD/bin/BENCH_encoders.json" \
	go test -run TestEncoderBenchArtifact ./internal/core || {
	echo "encoders: the benchmark artifact stage failed (TestEncoderBenchArtifact writes bin/BENCH_encoders.json when BENCH_ENCODERS_OUT is set)"
	exit 1
}
[ -s bin/BENCH_encoders.json ] || {
	echo "encoders: bin/BENCH_encoders.json missing or empty"
	exit 1
}

echo "== hotpath performance contracts (perf rules + BENCH_hotpath.json)"
# The full trajlint pass above already includes the perf rules; this
# standalone invocation documents the contract and exercises the
# -rules path the perf docs point people at. The diagnostics cache makes
# it a replay of the compile work done in stage 2.
./bin/trajlint -cache bin/trajlint-cache -rules hotpathalloc,hotpathbce,allocinloop ./... || {
	echo "perf contracts: a //perf:hotpath function regressed — see DESIGN.md 'Performance contracts' for the escape/BCE/alloc gates and how to read the findings"
	exit 1
}
go build -o bin/benchjson ./cmd/benchjson
# -benchtime 100x keeps the stage fast; the gated quantity (allocs/op)
# is exact in steady state, so a short run measures it as well as a
# long one. Each benchmark warms its reusable buffers before ResetTimer.
go test -bench 'BenchmarkHotpath' -benchmem -benchtime 100x -run '^$' \
	./internal/topk ./internal/hamming ./internal/nn ./internal/eval ./internal/core \
	>bin/bench_hotpath.txt || {
	cat bin/bench_hotpath.txt
	echo "perf contracts: the BenchmarkHotpath suite failed to run"
	exit 1
}
./bin/benchjson -floors scripts/hotpath_floors.json -out bin/BENCH_hotpath.json <bin/bench_hotpath.txt || {
	echo "perf contracts: allocation floors violated — a hot path allocates more than its recorded floor in scripts/hotpath_floors.json; artifact at bin/BENCH_hotpath.json"
	exit 1
}
[ -s bin/BENCH_hotpath.json ] || {
	echo "perf contracts: bin/BENCH_hotpath.json missing or empty"
	exit 1
}

echo "== determinism contracts (det rules)"
# The full trajlint pass above already includes the det rules; this
# standalone invocation is the determinism gate the replay/serialization
# surface is held to — map-range order, wall clock, global rand, and
# goroutine-completion order must never reach gob encodes, WAL appends,
# or //det:replayed returns. The diagnostics cache makes it a replay.
./bin/trajlint -cache bin/trajlint-cache -rules detmaprange,detwallclock,detunordered ./... || {
	echo "determinism contracts: nondeterminism reaches replayed/serialized state — see DESIGN.md 'Determinism contracts' (§10) for the source/sink model, the //det:replayed directive, and the sort-before-encode autofix (./bin/trajlint -fix)"
	exit 1
}

echo "== trajlint benchmark artifact (BENCH_trajlint.json)"
# Cold/warm full-module analysis cost (BenchmarkTrajlintTree): the cold
# number is the parse+type-check+analyze bill, the warm number is the
# content-hash cache replay. Informational, no floors — but the artifact
# must exist so the per-PR tooling-cost trajectory is recorded.
go test -bench BenchmarkTrajlintTree -benchmem -benchtime 1x -run '^$' \
	./internal/analysis >bin/bench_trajlint.txt || {
	cat bin/bench_trajlint.txt
	echo "trajlint benchmarks: BenchmarkTrajlintTree failed to run"
	exit 1
}
./bin/benchjson -out bin/BENCH_trajlint.json <bin/bench_trajlint.txt || {
	echo "trajlint benchmarks: benchjson failed to parse bin/bench_trajlint.txt"
	exit 1
}
[ -s bin/BENCH_trajlint.json ] || {
	echo "trajlint benchmarks: bin/BENCH_trajlint.json missing or empty"
	exit 1
}

echo "== mutable-index benchmark artifact (BENCH_mutable.json)"
# Perf trajectory of the mutability + durability layers: engine
# add/delete/compaction/tombstone-search and WAL append/recovery.
# Informational, not a gate (no floors) — wall-clock numbers are too
# noisy to fail a build on — but the artifact must exist and be
# non-empty.
go test -bench 'BenchmarkMutable' -benchmem -benchtime 50x -run '^$' \
	./internal/engine ./internal/wal >bin/bench_mutable.txt || {
	cat bin/bench_mutable.txt
	echo "mutable benchmarks: the BenchmarkMutable suite failed to run"
	exit 1
}
./bin/benchjson -out bin/BENCH_mutable.json <bin/bench_mutable.txt || {
	echo "mutable benchmarks: benchjson failed to parse bin/bench_mutable.txt"
	exit 1
}
[ -s bin/BENCH_mutable.json ] || {
	echo "mutable benchmarks: bin/BENCH_mutable.json missing or empty"
	exit 1
}

echo "== WAL fuzz smoke (10s per target)"
# Native Go fuzzing over the WAL frame parser and snapshot decoder: the
# seed corpora under internal/wal/testdata/fuzz/ are committed, and a
# short randomized run guards the no-panic / torn-tail-classification
# contracts on every CI pass (go fuzzing takes one target per
# invocation, hence two runs). New crashers land in the build cache, so
# this stage leaves the tree clean.
for target in FuzzReadFrame FuzzLoadSnapshot; do
	go test -fuzz "$target" -fuzztime 10s -run '^$' ./internal/wal || {
		echo "wal fuzz: $target found a crasher or invariant violation — the failing input is under the go build cache's fuzz corpus; reproduce with: go test -run $target ./internal/wal"
		exit 1
	}
done

echo "== serving smoke (traj2hashd + trajload -> BENCH_serving.json)"
# The serving layer's gate: a real daemon over a temp WAL dir, driven by
# the load generator. Run 1 (fixed count) must meet the p99 bound with
# zero errors; run 2 (open-ended) is SIGTERMed mid-flight — trajload
# exits nonzero if any accepted request was dropped, and the daemon
# exits nonzero if the drain did not complete cleanly (in-flight
# requests finished, WAL fsynced and closed).
go build -o bin/traj2hashd ./cmd/traj2hashd
go build -o bin/trajload ./cmd/trajload
go build -o bin/traj2hash ./cmd/traj2hash
serve_tmp=$(mktemp -d)
./bin/traj2hash gen -city porto -scale tiny -out "$serve_tmp/ds.gob" -seed 7 >/dev/null
rm -f bin/traj2hashd.addr bin/bench_serving.txt
./bin/traj2hashd -addr 127.0.0.1:0 -addr-file bin/traj2hashd.addr \
	-data "$serve_tmp/ds.gob" -encoder geopth -scale tiny \
	-wal-dir "$serve_tmp/wal" >bin/traj2hashd.log 2>&1 &
serve_pid=$!
serve_wait=0
while [ ! -s bin/traj2hashd.addr ]; do
	serve_wait=$((serve_wait + 1))
	if [ "$serve_wait" -gt 100 ]; then
		cat bin/traj2hashd.log
		echo "serving: traj2hashd did not write its address file within 10s"
		kill "$serve_pid" 2>/dev/null || true
		exit 1
	fi
	sleep 0.1
done
serve_addr=$(cat bin/traj2hashd.addr)
./bin/trajload -addr "$serve_addr" -data "$serve_tmp/ds.gob" \
	-n 300 -c 8 -max-p99 2s -bench-out bin/bench_serving.txt || {
	cat bin/traj2hashd.log
	echo "serving: the fixed-count load run failed — request errors or a p99 above 2s; see DESIGN.md 'Serving layer' for the admission/batching knobs"
	kill "$serve_pid" 2>/dev/null || true
	exit 1
}
./bin/trajload -addr "$serve_addr" -data "$serve_tmp/ds.gob" \
	-n 0 -c 8 -mix 'search=0.85,add=0.15' >/dev/null &
load_pid=$!
sleep 1
kill -TERM "$serve_pid"
wait "$load_pid" || {
	echo "serving: graceful drain dropped accepted requests (trajload exited nonzero) — the drain contract in DESIGN.md 'Serving layer' requires every accepted request to complete"
	exit 1
}
wait "$serve_pid" || {
	cat bin/traj2hashd.log
	echo "serving: traj2hashd did not exit cleanly after SIGTERM — drain must finish in-flight work and close the WAL"
	exit 1
}
./bin/benchjson -out bin/BENCH_serving.json <bin/bench_serving.txt || {
	echo "serving: benchjson failed to parse bin/bench_serving.txt"
	exit 1
}
[ -s bin/BENCH_serving.json ] || {
	echo "serving: bin/BENCH_serving.json missing or empty"
	exit 1
}
rm -rf "$serve_tmp"

echo "== go test -race ./... $*"
go test -race "$@" ./...

echo "== benchmark artifacts -> repo root"
# Publish the per-PR perf trajectory: the bin/ artifacts this run
# produced are copied to the repo root where they are committed, so the
# roadmap's perf numbers have a recorded history instead of living only
# in gitignored build output.
for name in BENCH_hotpath BENCH_mutable BENCH_encoders BENCH_trajlint BENCH_serving; do
	[ -s "bin/$name.json" ] || {
		echo "artifacts: bin/$name.json missing or empty"
		exit 1
	}
	cp "bin/$name.json" "$name.json"
done

echo "== repo hygiene (generated outputs stay under bin/)"
# Build artifacts belong in bin/ (gitignored). These paths have crept
# into scripts/ and the repo root before; fail loudly if they return.
hygiene_fail=0
for stray in \
	scripts/trajlint scripts/benchjson scripts/trajlint-cache \
	scripts/metrics.json scripts/bench_hotpath.txt \
	scripts/bench_mutable.txt scripts/bench_trajlint.txt \
	trajlint benchjson trajlint-cache metrics.json; do
	if [ -e "$stray" ]; then
		echo "hygiene: $stray is a generated output — it belongs under bin/ (delete it; bin/ is gitignored)"
		hygiene_fail=1
	fi
done
[ "$hygiene_fail" -eq 0 ] || exit 1

echo "CI OK"
