#!/usr/bin/env sh
# CI gate for the repository, in order:
#   1. gofmt cleanliness (including testdata fixtures)
#   2. trajlint — the stdlib-only analyzer suite enforcing the repo's
#      correctness contracts (see DESIGN.md "Static analysis & invariants")
#   3. go vet
#   4. go build
#   5. fault-injection scenarios under the race detector — the
#      failure-domain contracts (panic isolation, deadlines, checkpoint
#      rollback; see DESIGN.md "Failure semantics & graceful degradation")
#      run first and fast, so a broken contract fails the gate before the
#      full suite spins up
#   6. full test suite under the race detector (the engine's concurrent
#      Add/Search tests only mean something with -race)
# Usage: ./scripts/ci.sh [extra go test args]
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "$unformatted"
	echo "gofmt: the files above need formatting (run: gofmt -w .)"
	exit 1
fi

echo "== trajlint ./..."
go run ./cmd/trajlint ./... || {
	echo "trajlint: a correctness contract is violated — each rule is documented in DESIGN.md 'Static analysis & invariants', including how to suppress deliberate sites with //lint:ignore <rule> <reason>"
	exit 1
}

echo "== go vet ./..."
go vet ./... || {
	echo "go vet: hint — vet failures here usually break an invariant the engine relies on; see DESIGN.md 'Static analysis & invariants' before working around the report"
	exit 1
}

echo "== go build ./..."
go build ./...

echo "== go test -race (fault-injection scenarios)"
go test -race -run 'Fault|Panic|Chaos|Deadline|Checkpoint|Resume|Diverg|Rollback|Cancel|EdgeCases' \
	./internal/engine ./internal/faultinject ./internal/core || {
	echo "fault injection: a failure-domain contract is broken — partial results, panic isolation, and checkpoint rollback are specified in DESIGN.md 'Failure semantics & graceful degradation'"
	exit 1
}

echo "== go test -race ./... $*"
go test -race "$@" ./...

echo "CI OK"
