#!/usr/bin/env sh
# Fast pre-commit lint: build trajlint once and run it over the module.
# This is the standalone version of the trajlint stage in ci.sh — a few
# seconds instead of the full race-detector test run (warm cache runs are
# milliseconds). The binary and its cache land in ./bin (gitignored).
#
# Flags pass straight through to trajlint, so
#   ./scripts/lint.sh -fix             # apply mechanical fixes, re-lint
#   ./scripts/lint.sh -rules errcheck  # one rule only
#   ./scripts/lint.sh -rules detmaprange,detwallclock,detunordered
#                                      # determinism contracts only (DESIGN.md §10)
#   ./scripts/lint.sh ./internal/engine
# all work; when no package pattern is given, ./... is appended.
# Usage: ./scripts/lint.sh [trajlint flags] [packages]
set -eu

cd "$(dirname "$0")/.."

mkdir -p bin
go build -o bin/trajlint ./cmd/trajlint

# Append the default ./... pattern unless the caller named packages
# (a non-flag argument). Flag values never start with "./" here, so a
# leading "-" or a flag-only invocation means "whole module".
have_pattern=0
for arg in "$@"; do
	case "$arg" in
	-*) ;;
	*) have_pattern=1 ;;
	esac
done
if [ "$have_pattern" -eq 1 ]; then
	./bin/trajlint -cache bin/trajlint-cache "$@"
else
	./bin/trajlint -cache bin/trajlint-cache "$@" ./...
fi
echo "lint OK"
