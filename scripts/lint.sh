#!/usr/bin/env sh
# Fast pre-commit lint: build trajlint once and run it over the module.
# This is the standalone version of the trajlint stage in ci.sh — a few
# seconds instead of the full race-detector test run. The binary lands in
# ./bin (gitignored).
# Usage: ./scripts/lint.sh [trajlint flags] [packages]
set -eu

cd "$(dirname "$0")/.."

mkdir -p bin
go build -o bin/trajlint ./cmd/trajlint
if [ "$#" -eq 0 ]; then
	./bin/trajlint ./...
else
	./bin/trajlint "$@"
fi
echo "lint OK"
