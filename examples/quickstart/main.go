// Quickstart: train a small Traj2Hash model on synthetic taxi data, then
// use it for the two things the paper builds it for — fast approximate
// similarity computation in Euclidean space and top-k similar trajectory
// search in Hamming space. Uses only the library's public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"traj2hash"
)

func main() {
	// 1. Data: a Porto-like synthetic taxi corpus (the real dataset is
	//    proprietary; see DESIGN.md for the substitution rationale).
	ds := traj2hash.BuildDataset(traj2hash.Porto(), traj2hash.SplitSpec{
		Seed: 40, Validation: 30, Corpus: 150, Queries: 5, Database: 2000,
	}, 42)
	fmt.Printf("dataset: %d seeds, %d corpus, %d database trajectories\n",
		len(ds.Seeds), len(ds.Corpus), len(ds.Database))

	// 2. Model: paper defaults scaled to d=32 for CPU training.
	cfg := traj2hash.DefaultConfig(32)
	cfg.MaxLen = 20
	cfg.M = 6
	cfg.Epochs = 8
	cfg.BatchSize = 10
	m, err := traj2hash.New(cfg, ds.All())
	if err != nil {
		log.Fatal(err)
	}

	// 3. Train against the Fréchet distance (DTW and Hausdorff work the
	//    same way — pass traj2hash.DTW or traj2hash.Hausdorff).
	start := time.Now()
	hist, err := m.Train(traj2hash.TrainData{
		Seeds: ds.Seeds, Validation: ds.Validation, Corpus: ds.Corpus,
		F: traj2hash.Frechet,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %v: validation HR@10 %.3f (epoch %d), %d generated triplets\n",
		time.Since(start).Round(time.Millisecond), hist.BestHR10, hist.BestEpoch, hist.Triplets)

	// 4. Index the database once; queries are then O(d) per candidate
	//    instead of an O(n·m) dynamic program.
	idx, err := traj2hash.NewIndex(m, ds.Database)
	if err != nil {
		log.Fatal(err)
	}
	q := ds.Queries[0]
	exactStart := time.Now()
	exact := make([]float64, len(ds.Database))
	for i, t := range ds.Database {
		exact[i] = traj2hash.Distance(traj2hash.Frechet, q, t)
	}
	exactTime := time.Since(exactStart)
	approxStart := time.Now()
	top := idx.SearchEuclidean(q, 10)
	approxTime := time.Since(approxStart)
	fmt.Printf("ranking %d candidates: exact Frechet %v, embed+search %v (%.0fx faster)\n",
		len(ds.Database), exactTime.Round(time.Microsecond), approxTime.Round(time.Microsecond),
		float64(exactTime)/float64(approxTime))
	// Ordering agreement: the embedding's top match against exact ranks.
	bestExactRank := 0
	for i := range exact {
		if exact[i] < exact[top[0].ID] {
			bestExactRank++
		}
	}
	fmt.Printf("embedding's top match (id %d) sits at exact-Frechet rank %d\n",
		top[0].ID, bestExactRank)

	// 5. Top-k search in Hamming space with the hybrid strategy.
	for qi, query := range ds.Queries {
		res := idx.SearchHybrid(query, 5)
		ids := make([]int, len(res))
		for i, r := range res {
			ids[i] = r.ID
		}
		fmt.Printf("query %d: top-5 similar database trajectories %v\n", qi, ids)
	}
}
