// knnsearch: the paper's headline use case end to end — approximate top-k
// similar trajectory search over a database, comparing the three search
// strategies of Section V-E on both speed and accuracy against exact DTW
// ground truth. Uses only the library's public API.
//
//	go run ./examples/knnsearch
package main

import (
	"fmt"
	"log"
	"time"

	"traj2hash"
)

const k = 10

func main() {
	ds := traj2hash.BuildDataset(traj2hash.ChengDu(), traj2hash.SplitSpec{
		Seed: 40, Validation: 30, Corpus: 200, Queries: 20, Database: 2000,
	}, 7)

	cfg := traj2hash.DefaultConfig(32)
	cfg.MaxLen = 20
	cfg.M = 6
	cfg.Epochs = 8
	cfg.BatchSize = 10
	m, err := traj2hash.New(cfg, ds.All())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.Train(traj2hash.TrainData{
		Seeds: ds.Seeds, Validation: ds.Validation, Corpus: ds.Corpus,
		F: traj2hash.DTW,
	}); err != nil {
		log.Fatal(err)
	}

	// Exact ground truth (this is the expensive part the model avoids).
	gtStart := time.Now()
	truth := traj2hash.GroundTruth(traj2hash.DTW, ds.Queries, ds.Database, k)
	gtTime := time.Since(gtStart)
	fmt.Printf("exact DTW ground truth for %d queries x %d database: %v (%v/query)\n",
		len(ds.Queries), len(ds.Database), gtTime.Round(time.Millisecond),
		(gtTime / time.Duration(len(ds.Queries))).Round(time.Microsecond))

	idx, err := traj2hash.NewIndex(m, ds.Database)
	if err != nil {
		log.Fatal(err)
	}

	// Encode the queries once — a fixed per-query cost shared by all
	// strategies — then time search alone.
	encStart := time.Now()
	qVecs := make([][]float64, len(ds.Queries))
	qCodes := make([]traj2hash.Code, len(ds.Queries))
	for i, q := range ds.Queries {
		qVecs[i] = m.Embed(q)
		qCodes[i] = m.Code(q)
	}
	encPer := time.Since(encStart) / time.Duration(2*len(ds.Queries))
	fmt.Printf("query encoding: %v/query (one-time, shared by all strategies)\n",
		encPer.Round(time.Microsecond))

	strategies := []struct {
		name   string
		search func(qi int) []traj2hash.Result
	}{
		{"Euclidean-BF", func(qi int) []traj2hash.Result { return idx.SearchEuclideanByVec(qVecs[qi], k) }},
		{"Hamming-BF", func(qi int) []traj2hash.Result { return idx.SearchHammingByCode(qCodes[qi], k) }},
		{"Hamming-Hybrid", func(qi int) []traj2hash.Result { return idx.SearchHybridByCode(qCodes[qi], k) }},
	}

	fmt.Printf("\n%-16s %12s %10s\n", "strategy", "per query", "HR@10")
	for _, s := range strategies {
		start := time.Now()
		returned := make([][]int, len(ds.Queries))
		for qi := range ds.Queries {
			res := s.search(qi)
			ids := make([]int, len(res))
			for i, r := range res {
				ids[i] = r.ID
			}
			returned[qi] = ids
		}
		per := time.Since(start) / time.Duration(len(ds.Queries))
		metrics := traj2hash.Evaluate(returned, truth)
		fmt.Printf("%-16s %12v %10.3f\n", s.name, per.Round(time.Microsecond), metrics.HR10)
	}

	// Learned distance estimates for the top hits. ApproxDistanceByVec
	// reuses the query embeddings computed once above — calling
	// ApproxDistance inside a loop would re-encode the query every
	// iteration (a full encoder forward pass per call).
	var meanTop, meanTen float64
	for qi := range ds.Queries {
		hits := idx.SearchEuclideanByVec(qVecs[qi], k)
		meanTop += idx.ApproxDistanceByVec(qVecs[qi], hits[0].ID)
		meanTen += idx.ApproxDistanceByVec(qVecs[qi], hits[len(hits)-1].ID)
	}
	nq := float64(len(ds.Queries))
	fmt.Printf("\nlearned distance estimates: top-1 %.2f, top-%d %.2f (mean over %d queries)\n",
		meanTop/nq, k, meanTen/nq, len(ds.Queries))
}
