// linking: trajectory-based entity linking — the criminal-investigation
// motivation from the paper's introduction (Jin et al. [14]): decide which
// objects in two separately collected datasets are the same moving object,
// by matching their movement traces. Uses only the library's public API.
//
// Two observation datasets are simulated from the same ground-truth trips
// (different GPS noise and sampling, as two sensor networks would produce).
// The model links each trace in dataset A to its most similar trace in
// dataset B via Hamming-space search, and we measure how often the link is
// the true identity.
//
//	go run ./examples/linking
package main

import (
	"fmt"
	"log"
	"math/rand"

	"traj2hash"
)

const numEntities = 60

// observe re-samples and perturbs a ground-truth trip the way an
// independent sensor network would: different point count, offset, noise.
func observe(t traj2hash.Trajectory, noise float64, rng *rand.Rand) traj2hash.Trajectory {
	n := len(t)/2 + rng.Intn(len(t)/2+1) + 2
	o := t.Resample(n)
	for i := range o {
		o[i] = o[i].Add(traj2hash.Point{X: rng.NormFloat64() * noise, Y: rng.NormFloat64() * noise})
	}
	return o
}

func main() {
	city := traj2hash.Porto()
	truth := city.Generate(numEntities, 11)
	rng := rand.New(rand.NewSource(12))

	// Two independent observations of the same entities.
	datasetA := make([]traj2hash.Trajectory, numEntities)
	datasetB := make([]traj2hash.Trajectory, numEntities)
	for i, t := range truth {
		datasetA[i] = observe(t, 8, rng)
		datasetB[i] = observe(t, 12, rng)
	}

	// Train on separate background traffic (the investigator does not have
	// labelled identity pairs — the model only learns the distance).
	ds := traj2hash.BuildDataset(city, traj2hash.SplitSpec{
		Seed: 40, Validation: 30, Corpus: 150, Queries: 1, Database: 1,
	}, 13)
	cfg := traj2hash.DefaultConfig(32)
	cfg.MaxLen = 20
	cfg.M = 6
	cfg.Epochs = 8
	cfg.BatchSize = 10
	m, err := traj2hash.New(cfg, append(ds.All(), truth...))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.Train(traj2hash.TrainData{
		Seeds: ds.Seeds, Validation: ds.Validation, Corpus: ds.Corpus,
		F: traj2hash.Frechet,
	}); err != nil {
		log.Fatal(err)
	}

	// Link: for each trace in A, the nearest traces in B by Hamming code.
	idx, err := traj2hash.NewIndex(m, datasetB)
	if err != nil {
		log.Fatal(err)
	}
	// Embed each query trace once, then both search and score the link
	// from that embedding: SearchHybridByCode + ApproxDistanceByVec avoid
	// re-running the encoder per call inside the loop (ApproxDistance and
	// SearchHybrid would each pay a full forward pass every iteration).
	var top1, top5 int
	var linkDist float64
	for i := 0; i < numEntities; i++ {
		qe := m.Embed(datasetA[i])
		res := idx.SearchHybridByCode(traj2hash.SignCode(qe), 5)
		if len(res) > 0 && res[0].ID == i {
			top1++
		}
		for _, r := range res {
			if r.ID == i {
				top5++
				break
			}
		}
		if len(res) > 0 {
			linkDist += idx.ApproxDistanceByVec(qe, res[0].ID)
		}
	}
	fmt.Printf("entity linking over %d objects across two sensor networks:\n", numEntities)
	fmt.Printf("  correct at rank 1: %d/%d (%.0f%%)\n", top1, numEntities, 100*float64(top1)/numEntities)
	fmt.Printf("  correct in top 5:  %d/%d (%.0f%%)\n", top5, numEntities, 100*float64(top5)/numEntities)
	fmt.Printf("  mean learned distance of rank-1 links: %.2f\n", linkDist/numEntities)
}
