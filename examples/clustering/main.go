// clustering: gathering-pattern discovery — the motivation from Zheng et
// al. [13] in the paper's introduction. Hash codes bucket a trajectory
// corpus so that co-moving objects (taxis repeatedly running the same
// popular route) land together; the largest Hamming-radius-1 groups are
// the "gatherings". Uses only the library's public API.
//
//	go run ./examples/clustering
package main

import (
	"fmt"
	"log"
	"sort"

	"traj2hash"
)

func main() {
	ds := traj2hash.BuildDataset(traj2hash.ChengDu(), traj2hash.SplitSpec{
		Seed: 40, Validation: 30, Corpus: 150, Queries: 1, Database: 600,
	}, 21)

	cfg := traj2hash.DefaultConfig(32)
	cfg.MaxLen = 20
	cfg.M = 6
	cfg.Epochs = 8
	cfg.BatchSize = 10
	m, err := traj2hash.New(cfg, ds.All())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.Train(traj2hash.TrainData{
		Seeds: ds.Seeds, Validation: ds.Validation, Corpus: ds.Corpus,
		F: traj2hash.Hausdorff,
	}); err != nil {
		log.Fatal(err)
	}

	corpus := ds.Database
	idx, err := traj2hash.NewIndex(m, corpus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d trajectories indexed (%d-bit codes)\n", idx.Len(), cfg.HashBits)

	// Greedy clustering: repeatedly take the unassigned trajectory with the
	// largest radius-1 neighborhood as a cluster center.
	assigned := make([]bool, len(corpus))
	type cluster struct {
		center  int
		members []int
	}
	var clusters []cluster
	for {
		best := -1
		var bestMembers []int
		for i := range corpus {
			if assigned[i] {
				continue
			}
			var members []int
			for _, id := range idx.Within(corpus[i], 1) {
				if !assigned[id] {
					members = append(members, id)
				}
			}
			if len(members) > len(bestMembers) {
				best = i
				bestMembers = members
			}
		}
		if best < 0 || len(bestMembers) < 3 {
			break
		}
		for _, id := range bestMembers {
			assigned[id] = true
		}
		sort.Ints(bestMembers)
		clusters = append(clusters, cluster{center: best, members: bestMembers})
		if len(clusters) >= 8 {
			break
		}
	}

	fmt.Printf("\ntop gathering patterns (Hamming radius-1 groups):\n")
	for i, c := range clusters {
		ctr := corpus[c.center].Centroid()
		fmt.Printf("  gathering %d: %3d trajectories near (%.0f, %.0f) m, e.g. ids %v\n",
			i+1, len(c.members), ctr.X, ctr.Y, c.members[:min(5, len(c.members))])
	}
	var covered int
	for _, a := range assigned {
		if a {
			covered++
		}
	}
	fmt.Printf("\n%d/%d trajectories fall into a gathering pattern\n", covered, len(corpus))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
