package baselines

import (
	"math/rand"

	"traj2hash/internal/geo"
	"traj2hash/internal/nn"
)

// Transformer is the vanilla self-attention baseline [46]: point features →
// positional encoding → stacked attention blocks → CLS read-out, trained
// with the same WMSE metric-learning objective. Per Section V-A5 it uses
// the same head count and depth as Traj2Hash.
type Transformer struct {
	cfg    BaseConfig
	stats  geo.Stats
	mlpE   *nn.Linear
	blocks []*nn.EncoderBlock
	cls    *nn.Tensor
	pe     *nn.PositionalEncoding
}

// NewTransformer builds the baseline with 2 blocks and 4 heads (falling
// back to fewer heads when the dimension is not divisible by 4).
func NewTransformer(cfg BaseConfig, space []geo.Trajectory) *Transformer {
	rng := rand.New(rand.NewSource(cfg.Seed))
	heads := 4
	for cfg.Dim%heads != 0 {
		heads /= 2
	}
	t := &Transformer{
		cfg:   cfg,
		stats: geo.ComputeStats(space),
		mlpE:  nn.NewLinear(2, cfg.Dim, rng),
		cls:   nn.XavierParam(1, cfg.Dim, rng),
		pe:    nn.NewPositionalEncoding(cfg.MaxLen+1, cfg.Dim),
	}
	for i := 0; i < 2; i++ {
		t.blocks = append(t.blocks, nn.NewEncoderBlock(cfg.Dim, heads, cfg.Dim, true, rng))
	}
	return t
}

// Name implements Encoder.
func (t *Transformer) Name() string { return "Transformer" }

// OutDim implements Encoder.
func (t *Transformer) OutDim() int { return t.cfg.Dim }

// Params implements Encoder.
func (t *Transformer) Params() []*nn.Tensor {
	ps := []*nn.Tensor{t.cls}
	ps = append(ps, t.mlpE.Params()...)
	for _, b := range t.blocks {
		ps = append(ps, b.Params()...)
	}
	return ps
}

// Forward implements Encoder.
func (t *Transformer) Forward(tr geo.Trajectory) *nn.Tensor {
	p := prepTraj(tr, t.cfg.MaxLen)
	x := t.mlpE.Forward(pointFeatures(p, t.stats))
	x = t.pe.Add(x)
	x = nn.ConcatRows(t.cls, x)
	for _, b := range t.blocks {
		x = b.Forward(x)
	}
	return nn.SliceRows(x, 0, 1) // CLS read-out
}
