package baselines

import (
	"traj2hash/internal/geo"
)

// QuadTree is a PR (point-region) quadtree over the study space, the
// spatial structure TrajGAT [24] uses to build its graph: leaves adapt to
// point density, and each leaf is identified by its root-to-leaf path.
type QuadTree struct {
	root     *quadNode
	maxDepth int
	capacity int
	numNodes int
}

type quadNode struct {
	minX, minY, maxX, maxY float64
	points                 []geo.Point
	children               [4]*quadNode // nil for leaves
	id                     int          // node id for embeddings
	depth                  int
}

// NewQuadTree builds a PR quadtree over the bounding box of ts, splitting
// nodes that exceed capacity points until maxDepth.
func NewQuadTree(ts []geo.Trajectory, capacity, maxDepth int) *QuadTree {
	minP := geo.Point{X: 1e18, Y: 1e18}
	maxP := geo.Point{X: -1e18, Y: -1e18}
	for _, t := range ts {
		for _, p := range t {
			if p.X < minP.X {
				minP.X = p.X
			}
			if p.Y < minP.Y {
				minP.Y = p.Y
			}
			if p.X > maxP.X {
				maxP.X = p.X
			}
			if p.Y > maxP.Y {
				maxP.Y = p.Y
			}
		}
	}
	qt := &QuadTree{
		root:     &quadNode{minX: minP.X, minY: minP.Y, maxX: maxP.X + 1e-9, maxY: maxP.Y + 1e-9},
		maxDepth: maxDepth,
		capacity: capacity,
	}
	qt.root.id = 0
	qt.numNodes = 1
	for _, t := range ts {
		for _, p := range t {
			qt.insert(qt.root, p)
		}
	}
	return qt
}

// NumNodes returns the number of tree nodes (for embedding tables).
func (q *QuadTree) NumNodes() int { return q.numNodes }

func (q *QuadTree) insert(n *quadNode, p geo.Point) {
	for {
		if n.children[0] == nil {
			n.points = append(n.points, p)
			if len(n.points) > q.capacity && n.depth < q.maxDepth {
				q.split(n)
				// Fall through: continue descending with p already placed.
				return
			}
			return
		}
		n = n.children[q.quadrant(n, p)]
	}
}

func (q *QuadTree) quadrant(n *quadNode, p geo.Point) int {
	mx := (n.minX + n.maxX) / 2
	my := (n.minY + n.maxY) / 2
	idx := 0
	if p.X >= mx {
		idx |= 1
	}
	if p.Y >= my {
		idx |= 2
	}
	return idx
}

func (q *QuadTree) split(n *quadNode) {
	mx := (n.minX + n.maxX) / 2
	my := (n.minY + n.maxY) / 2
	bounds := [4][4]float64{
		{n.minX, n.minY, mx, my},
		{mx, n.minY, n.maxX, my},
		{n.minX, my, mx, n.maxY},
		{mx, my, n.maxX, n.maxY},
	}
	for i := range n.children {
		n.children[i] = &quadNode{
			minX: bounds[i][0], minY: bounds[i][1],
			maxX: bounds[i][2], maxY: bounds[i][3],
			id:    q.numNodes,
			depth: n.depth + 1,
		}
		q.numNodes++
	}
	pts := n.points
	n.points = nil
	for _, p := range pts {
		q.insert(n.children[q.quadrant(n, p)], p)
	}
}

// Path returns the node ids on the root-to-leaf path of the leaf containing
// p — TrajGAT's structural encoding of a point.
func (q *QuadTree) Path(p geo.Point) []int {
	var path []int
	n := q.root
	for {
		path = append(path, n.id)
		if n.children[0] == nil {
			return path
		}
		n = n.children[q.quadrant(n, p)]
	}
}

// Leaf returns the id of the leaf containing p.
func (q *QuadTree) Leaf(p geo.Point) int {
	path := q.Path(p)
	return path[len(path)-1]
}

// Depth returns the maximum depth reached.
func (q *QuadTree) Depth() int {
	var walk func(n *quadNode) int
	walk = func(n *quadNode) int {
		if n.children[0] == nil {
			return n.depth
		}
		d := n.depth
		for _, c := range n.children {
			if cd := walk(c); cd > d {
				d = cd
			}
		}
		return d
	}
	return walk(q.root)
}
