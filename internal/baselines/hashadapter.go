package baselines

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"traj2hash/internal/dist"
	"traj2hash/internal/geo"
	"traj2hash/internal/hamming"
	"traj2hash/internal/nn"
)

// HashAdapter binarizes a (frozen) neural encoder for the Hamming-space
// comparison of Table II: "we leverage the proposed ranking-based hashing
// objective with an extra trainable linear layer to convert the dense
// vectors from baselines into hash codes" (Section V-A3). Only the linear
// layer trains; the encoder's embeddings are precomputed, so adaptation is
// cheap. The crucial asymmetry versus Traj2Hash — baselines see only the
// seed set, never the generated triplet corpus — is what Table II measures.
type HashAdapter struct {
	enc   Encoder
	W     *nn.Linear
	Bits  int
	Alpha float64
	beta  float64
}

// NewHashAdapter creates the adapter head over the encoder.
func NewHashAdapter(enc Encoder, bits int, alpha float64, seed int64) *HashAdapter {
	rng := rand.New(rand.NewSource(seed))
	return &HashAdapter{
		enc:   enc,
		W:     nn.NewLinear(enc.OutDim(), bits, rng),
		Bits:  bits,
		Alpha: alpha,
		beta:  1,
	}
}

// AdapterConfig controls the ranking-objective fine-tune.
type AdapterConfig struct {
	Epochs     int
	M          int // samples per anchor, paired into M/2 (pos, neg) pairs
	LR         float64
	BetaGrowth float64
	Theta      float64 // 0 = auto
	Seed       int64
}

// DefaultAdapterConfig mirrors the main training settings.
func DefaultAdapterConfig() AdapterConfig {
	return AdapterConfig{Epochs: 30, M: 10, LR: 1e-2, BetaGrowth: 1.1, Seed: 1}
}

// Train fits the linear hash layer with the ranking objective on the seed
// set's exact similarities.
func (h *HashAdapter) Train(cfg AdapterConfig, seeds []geo.Trajectory, f dist.Func) error {
	if len(seeds) < cfg.M+1 {
		return fmt.Errorf("baselines: adapter needs at least M+1=%d seeds, got %d", cfg.M+1, len(seeds))
	}
	// Precompute frozen embeddings once.
	embs := EmbedAll(h.enc, seeds)
	d := dist.Matrix(f, seeds)
	theta := cfg.Theta
	if theta <= 0 {
		if mean := dist.MeanOffDiagonal(d); mean > 0 {
			theta = 1 / mean
		} else {
			theta = 1
		}
	}
	s := dist.Similarity(d, theta)
	rng := rand.New(rand.NewSource(cfg.Seed))

	opt := nn.NewAdam(h.W.Params(), cfg.LR)
	n := len(seeds)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var terms []*nn.Tensor
		for i := 0; i < n; i++ {
			// Sample M others, pair most-similar half against the rest.
			ids := rng.Perm(n)[:min(cfg.M+1, n)]
			ids = removeSelf(ids, i)[:min(cfg.M, n-1)]
			sort.Slice(ids, func(a, b int) bool { return s[i][ids[a]] > s[i][ids[b]] })
			ui := h.relaxed(embs[i])
			for k := 0; k < len(ids)/2; k++ {
				p := ids[k]
				ng := ids[len(ids)-1-k]
				if s[i][p] <= s[i][ng] {
					continue
				}
				up := h.relaxed(embs[p])
				un := h.relaxed(embs[ng])
				margin := nn.AddScalar(nn.Sub(nn.Dot(ui, un), nn.Dot(ui, up)), h.Alpha)
				terms = append(terms, nn.HingeScalar(margin))
			}
		}
		if len(terms) == 0 {
			continue
		}
		total := terms[0]
		for _, t := range terms[1:] {
			total = nn.Add(total, t)
		}
		loss := nn.Scale(total, 1/float64(len(terms)))
		if v := loss.Scalar(); math.IsNaN(v) {
			return fmt.Errorf("baselines: adapter loss is NaN at epoch %d", epoch)
		}
		loss.Backward()
		opt.Step()
		h.beta *= cfg.BetaGrowth
	}
	return nil
}

// relaxed maps a frozen embedding through the head with the tanh(β·)
// relaxation.
func (h *HashAdapter) relaxed(emb []float64) *nn.Tensor {
	x := nn.FromVec(append([]float64(nil), emb...))
	return nn.Tanh(nn.Scale(h.W.Forward(x), h.beta))
}

// Code hashes a trajectory through the frozen encoder and the head.
func (h *HashAdapter) Code(t geo.Trajectory) hamming.Code {
	emb := Embed(h.enc, t)
	x := nn.FromVec(emb)
	out := h.W.Forward(x)
	return hamming.FromSigns(out.Data)
}

// CodeAll hashes a batch.
func (h *HashAdapter) CodeAll(ts []geo.Trajectory) []hamming.Code {
	out := make([]hamming.Code, len(ts))
	for i, t := range ts {
		out[i] = h.Code(t)
	}
	return out
}

func removeSelf(ids []int, self int) []int {
	out := ids[:0]
	for _, id := range ids {
		if id != self {
			out = append(out, id)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
