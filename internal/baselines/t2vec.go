package baselines

import (
	"math/rand"

	"traj2hash/internal/geo"
	"traj2hash/internal/grid"
	"traj2hash/internal/nn"
)

// T2Vec is the sequential autoencoder baseline [42]: trajectories are
// tokenized into grid cells, a GRU encoder compresses the token sequence,
// and a GRU decoder reconstructs it; the encoder's final state is the
// trajectory embedding. The training is distance-agnostic (it never sees
// the target distance function), which is why it ranks last in Table I.
type T2Vec struct {
	cfg  BaseConfig
	g    *grid.Grid
	emb  *nn.Embedding // trainable cell embeddings
	enc  *nn.GRUCell
	dec  *nn.GRUCell
	outW *nn.Linear // decoder hidden → predicted cell embedding
	rng  *rand.Rand
}

// NewT2Vec builds the autoencoder over a cell grid of the given size
// (coarser than the 50 m encoder grid to keep the vocabulary small — t2vec
// itself uses a learned vocabulary of hot cells).
func NewT2Vec(cfg BaseConfig, space []geo.Trajectory, cellSize float64) (*T2Vec, error) {
	g, err := grid.FromTrajectories(space, cellSize)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &T2Vec{
		cfg:  cfg,
		g:    g,
		emb:  nn.NewEmbedding(g.Cells(), cfg.Dim, rng),
		enc:  nn.NewGRUCell(cfg.Dim, cfg.Dim, rng),
		dec:  nn.NewGRUCell(cfg.Dim, cfg.Dim, rng),
		outW: nn.NewLinear(cfg.Dim, cfg.Dim, rng),
		rng:  rng,
	}, nil
}

// Name implements Encoder.
func (t *T2Vec) Name() string { return "t2vec" }

// OutDim implements Encoder.
func (t *T2Vec) OutDim() int { return t.cfg.Dim }

// Params implements Encoder.
func (t *T2Vec) Params() []*nn.Tensor {
	ps := t.emb.Params()
	ps = append(ps, t.enc.Params()...)
	ps = append(ps, t.dec.Params()...)
	ps = append(ps, t.outW.Params()...)
	return ps
}

// tokens maps a trajectory to its (deduplicated) cell token sequence.
func (t *T2Vec) tokens(tr geo.Trajectory) []int {
	p := prepTraj(tr, t.cfg.MaxLen)
	return t.g.GridTrajectory(p)
}

// Forward implements Encoder: the encoder GRU's final state.
func (t *T2Vec) Forward(tr geo.Trajectory) *nn.Tensor {
	x := t.emb.Forward(t.tokens(tr))
	return t.enc.Final(x)
}

// reconstructionLoss runs encode→decode with teacher forcing. At each step
// the decoder predicts the next cell's embedding; a margin loss pulls the
// prediction toward the true cell and pushes it from a random noise cell
// (negative sampling keeps the embedding table from collapsing).
func (t *T2Vec) reconstructionLoss(tr geo.Trajectory) *nn.Tensor {
	toks := t.tokens(tr)
	x := t.emb.Forward(toks)
	h := t.enc.Final(x)
	var terms []*nn.Tensor
	prev := nn.New(1, t.cfg.Dim) // start-of-sequence input
	state := h
	for i := 0; i < len(toks); i++ {
		state = t.dec.Step(prev, state)
		pred := t.outW.Forward(state)
		target := nn.SliceRows(x, i, i+1)
		noiseID := t.rng.Intn(t.g.Cells())
		noise := t.emb.Forward([]int{noiseID})
		// Hinge margin: score(pred, target) should beat score(pred, noise).
		margin := nn.AddScalar(nn.Sub(nn.Dot(pred, noise), nn.Dot(pred, target)), 1)
		terms = append(terms, nn.HingeScalar(margin))
		prev = target
	}
	total := terms[0]
	for _, tm := range terms[1:] {
		total = nn.Add(total, tm)
	}
	return nn.Scale(total, 1/float64(len(toks)))
}

// Train fits the autoencoder on an unlabelled corpus.
func (t *T2Vec) Train(ts []geo.Trajectory, epochs int) []float64 {
	opt := nn.NewAdam(t.Params(), t.cfg.LR)
	var losses []float64
	idx := make([]int, len(ts))
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < epochs; epoch++ {
		t.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var sum float64
		var n int
		for lo := 0; lo < len(idx); lo += t.cfg.BatchSize {
			hi := lo + t.cfg.BatchSize
			if hi > len(idx) {
				hi = len(idx)
			}
			var loss *nn.Tensor
			for _, i := range idx[lo:hi] {
				l := t.reconstructionLoss(ts[i])
				if loss == nil {
					loss = l
				} else {
					loss = nn.Add(loss, l)
				}
			}
			if loss == nil {
				continue
			}
			loss = nn.Scale(loss, 1/float64(hi-lo))
			sum += loss.Scalar()
			n++
			loss.Backward()
			if t.cfg.ClipNorm > 0 {
				nn.ClipGradNorm(opt.Params, t.cfg.ClipNorm)
			}
			opt.Step()
		}
		if n > 0 {
			losses = append(losses, sum/float64(n))
		}
	}
	return losses
}
