package baselines

import (
	"math"
	"math/rand"

	"traj2hash/internal/geo"
	"traj2hash/internal/nn"
)

// CLTSim is the contrastive-learning baseline [43]: a GRU encoder trained
// with NT-Xent on two stochastic augmentations of each trajectory — point
// dropping and point distortion with rates drawn from {0, 0.2, 0.4, 0.6}
// (Section V-A5). Like t2vec, it is distance-agnostic.
type CLTSim struct {
	cfg   BaseConfig
	stats geo.Stats
	cell  *nn.GRUCell
	rng   *rand.Rand

	// Rates are sampled per view from this set, matching the paper.
	Rates []float64
	// Temperature of the NT-Xent loss.
	Tau float64
}

// NewCLTSim builds the contrastive baseline.
func NewCLTSim(cfg BaseConfig, space []geo.Trajectory) *CLTSim {
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &CLTSim{
		cfg:   cfg,
		stats: geo.ComputeStats(space),
		cell:  nn.NewGRUCell(2, cfg.Dim, rng),
		rng:   rng,
		Rates: []float64{0, 0.2, 0.4, 0.6},
		Tau:   0.5,
	}
}

// Name implements Encoder.
func (c *CLTSim) Name() string { return "CL-TSim" }

// OutDim implements Encoder.
func (c *CLTSim) OutDim() int { return c.cfg.Dim }

// Params implements Encoder.
func (c *CLTSim) Params() []*nn.Tensor { return c.cell.Params() }

// Forward implements Encoder: final GRU state over normalized points.
func (c *CLTSim) Forward(tr geo.Trajectory) *nn.Tensor {
	p := prepTraj(tr, c.cfg.MaxLen)
	return c.cell.Final(pointFeatures(p, c.stats))
}

// augment produces one stochastic view: drop each interior point with the
// sampled dropping rate and distort survivors with Gaussian noise scaled by
// the distortion rate.
func (c *CLTSim) augment(tr geo.Trajectory) geo.Trajectory {
	drop := c.Rates[c.rng.Intn(len(c.Rates))]
	distort := c.Rates[c.rng.Intn(len(c.Rates))]
	scale := distort * 0.1 * (c.stats.StdX + c.stats.StdY) / 2
	out := make(geo.Trajectory, 0, len(tr))
	for i, p := range tr {
		// Keep endpoints so views stay comparable.
		if i != 0 && i != len(tr)-1 && c.rng.Float64() < drop {
			continue
		}
		out = append(out, geo.Point{
			X: p.X + c.rng.NormFloat64()*scale,
			Y: p.Y + c.rng.NormFloat64()*scale,
		})
	}
	if len(out) < 2 {
		return tr
	}
	return out
}

// normalizeRows L2-normalizes each row (for cosine similarity).
func normalizeRows(x *nn.Tensor) *nn.Tensor {
	norm := nn.Sqrt(nn.RowSums(nn.Square(x)), 1e-12)
	return nn.DivByColumn(x, norm)
}

// ntXentBatch computes the NT-Xent loss over a batch: views 2i and 2i+1
// are positives; all other views in the batch are negatives.
func (c *CLTSim) ntXentBatch(views []*nn.Tensor) *nn.Tensor {
	z := normalizeRows(nn.ConcatRows(views...))
	// Similarity matrix scaled by temperature.
	sims := nn.Scale(nn.MatMul(z, nn.Transpose(z)), 1/c.Tau)
	n := len(views)
	var terms []*nn.Tensor
	for i := 0; i < n; i++ {
		j := i ^ 1 // the paired view
		row := nn.SliceRows(sims, i, i+1)
		// Mask self-similarity by subtracting a large constant at position i:
		// implemented by building an explicit mask vector.
		mask := nn.New(1, n)
		for k := 0; k < n; k++ {
			if k == i {
				mask.Data[k] = -1e9
			}
		}
		masked := nn.Add(row, mask)
		// −s_ij + log Σ_k exp(s_ik)
		lse := nn.Log(nn.SumAll(nn.Exp(masked)), 1e-12)
		pos := nn.SliceCols(row, j, j+1)
		terms = append(terms, nn.Sub(lse, pos))
	}
	total := terms[0]
	for _, t := range terms[1:] {
		total = nn.Add(total, t)
	}
	return nn.Scale(total, 1/float64(n))
}

// Train fits the encoder with contrastive learning on an unlabelled corpus.
func (c *CLTSim) Train(ts []geo.Trajectory, epochs int) []float64 {
	opt := nn.NewAdam(c.Params(), c.cfg.LR)
	var losses []float64
	idx := make([]int, len(ts))
	for i := range idx {
		idx[i] = i
	}
	batch := c.cfg.BatchSize
	if batch < 2 {
		batch = 2
	}
	for epoch := 0; epoch < epochs; epoch++ {
		c.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var sum float64
		var n int
		for lo := 0; lo+1 < len(idx); lo += batch {
			hi := lo + batch
			if hi > len(idx) {
				hi = len(idx)
			}
			var views []*nn.Tensor
			for _, i := range idx[lo:hi] {
				views = append(views, c.Forward(c.augment(ts[i])))
				views = append(views, c.Forward(c.augment(ts[i])))
			}
			loss := c.ntXentBatch(views)
			v := loss.Scalar()
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			sum += v
			n++
			loss.Backward()
			if c.cfg.ClipNorm > 0 {
				nn.ClipGradNorm(opt.Params, c.cfg.ClipNorm)
			}
			opt.Step()
		}
		if n > 0 {
			losses = append(losses, sum/float64(n))
		}
	}
	return losses
}
