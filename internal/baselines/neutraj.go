package baselines

import (
	"math/rand"

	"traj2hash/internal/geo"
	"traj2hash/internal/grid"
	"traj2hash/internal/nn"
)

// NeuTraj is the seed-guided neural metric learning baseline [22]: a GRU
// over normalized GPS coordinates with a spatial attention memory (SAM)
// that lets the recurrent state read what previous trajectories wrote into
// the grid cells it passes through. The final hidden state is the
// embedding (the read-out that, per Section V-B, implicitly realizes the
// lower bound for DTW/Fréchet).
type NeuTraj struct {
	name     string
	cfg      BaseConfig
	stats    geo.Stats
	g        *grid.Grid
	cell     *nn.GRUCell
	memory   []float64 // SAM: one slot per coarse cell (non-gradient, EMA-written)
	memW     *nn.Linear
	useSAM   bool
	training bool
}

// NewNeuTraj builds the full NeuTraj with SAM enabled.
func NewNeuTraj(cfg BaseConfig, space []geo.Trajectory) (*NeuTraj, error) {
	return newNeuTraj(cfg, space, true, "NeuTraj")
}

// NewNTNoSAM builds the NT-No-SAM ablation: the same GRU metric learner
// without the spatial attention memory.
func NewNTNoSAM(cfg BaseConfig, space []geo.Trajectory) (*NeuTraj, error) {
	return newNeuTraj(cfg, space, false, "NT-No-SAM")
}

func newNeuTraj(cfg BaseConfig, space []geo.Trajectory, useSAM bool, name string) (*NeuTraj, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := &NeuTraj{
		name:   name,
		cfg:    cfg,
		stats:  geo.ComputeStats(space),
		cell:   nn.NewGRUCell(2, cfg.Dim, rng),
		useSAM: useSAM,
	}
	if useSAM {
		// SAM memory over a coarse grid (NeuTraj uses the spatial grid to
		// address memory; a coarse cell keeps the table small).
		g, err := grid.FromTrajectories(space, 500)
		if err != nil {
			return nil, err
		}
		n.g = g
		n.memory = make([]float64, g.Cells()*cfg.Dim)
		n.memW = nn.NewLinear(cfg.Dim, cfg.Dim, rng)
		// Start the read gate nearly closed (σ(−4) ≈ 0.018) so SAM begins
		// as a no-op and only contributes where training opens it — the
		// memory is an auxiliary signal, not a replacement for the state.
		for i := range n.memW.B.Data {
			n.memW.B.Data[i] = -4
		}
	}
	return n, nil
}

// SetTraining toggles training mode: memory is written only while
// training, so inference embeddings are deterministic and order-free.
func (n *NeuTraj) SetTraining(v bool) { n.training = v }

// Name implements Encoder.
func (n *NeuTraj) Name() string { return n.name }

// OutDim implements Encoder.
func (n *NeuTraj) OutDim() int { return n.cfg.Dim }

// Params implements Encoder.
func (n *NeuTraj) Params() []*nn.Tensor {
	ps := n.cell.Params()
	if n.useSAM {
		ps = append(ps, n.memW.Params()...)
	}
	return ps
}

// Forward implements Encoder: run the GRU over the trajectory; with SAM,
// blend each step's hidden state with the memory of the current cell
// (gated read) and write the state back with an exponential moving
// average. Memory writes carry no gradient — they are a cross-trajectory
// cache, as in the original SAM design.
func (n *NeuTraj) Forward(t geo.Trajectory) *nn.Tensor {
	p := prepTraj(t, n.cfg.MaxLen)
	x := pointFeatures(p, n.stats)
	h := n.cell.InitState()
	for i := 0; i < x.Rows; i++ {
		h = n.cell.Step(nn.SliceRows(x, i, i+1), h)
		if n.useSAM {
			cellID := n.g.ID(p[i])
			mem := n.memory[cellID*n.cfg.Dim : (cellID+1)*n.cfg.Dim]
			memT := nn.FromVec(mem) // constant: reads do not backprop into memory
			// Gated read: h ← h + σ(W·h) ⊙ mem.
			gate := nn.Sigmoid(n.memW.Forward(h))
			h = nn.Add(h, nn.Mul(gate, memT))
			// EMA write-back of the current state, during training only:
			// inference must not mutate shared state, or embeddings become
			// order-dependent.
			if n.training {
				for k := 0; k < n.cfg.Dim; k++ {
					mem[k] = 0.9*mem[k] + 0.1*h.Data[k]
				}
			}
		}
	}
	return h
}

// ResetMemory clears the SAM memory (between train and test phases, or for
// reproducibility).
func (n *NeuTraj) ResetMemory() {
	for i := range n.memory {
		n.memory[i] = 0
	}
}
