package baselines

import (
	"math/rand"
	"sort"

	"traj2hash/internal/geo"
	"traj2hash/internal/hamming"
)

// Fresh is the locality-sensitive hash for curves [18]: each repetition
// shifts a grid of the configured resolution by a random offset, maps the
// trajectory to its sequence of visited cells (consecutive duplicates
// collapsed), and hashes that sequence to an integer with multiply-shift
// hashing. Section V-A5: resolution 1 km, 4 repetitions × 1 concatenation,
// 16 bits per hash — 64 bits total, aligned with the neural codes.
type Fresh struct {
	Resolution  float64
	Repetitions int
	BitsPerHash int

	shifts []geo.Point // one random shift per repetition
	seeds  []uint64    // multiply-shift multipliers (odd)
}

// NewFresh builds the hasher with the paper's defaults.
func NewFresh(resolution float64, repetitions, bitsPerHash int, seed int64) *Fresh {
	rng := rand.New(rand.NewSource(seed))
	f := &Fresh{
		Resolution:  resolution,
		Repetitions: repetitions,
		BitsPerHash: bitsPerHash,
	}
	for i := 0; i < repetitions; i++ {
		f.shifts = append(f.shifts, geo.Point{
			X: rng.Float64() * resolution,
			Y: rng.Float64() * resolution,
		})
		f.seeds = append(f.seeds, rng.Uint64()|1) // multiply-shift needs odd a
	}
	return f
}

// Name identifies the method in result tables.
func (f *Fresh) Name() string { return "Fresh" }

// Bits returns the total code length.
func (f *Fresh) Bits() int { return f.Repetitions * f.BitsPerHash }

// cellSequence maps a trajectory to its deduplicated sequence of shifted
// grid cells for repetition r.
func (f *Fresh) cellSequence(t geo.Trajectory, r int) []uint64 {
	var out []uint64
	var prev uint64
	first := true
	for _, p := range t {
		cx := int64((p.X + f.shifts[r].X) / f.Resolution)
		cy := int64((p.Y + f.shifts[r].Y) / f.Resolution)
		// Pack the signed cell coordinates into one word.
		cell := uint64(cx)<<32 ^ uint64(uint32(cy))
		if first || cell != prev {
			out = append(out, cell)
			prev = cell
			first = false
		}
	}
	return out
}

// hashSequence applies multiply-shift hashing to a cell sequence, keeping
// BitsPerHash bits.
func (f *Fresh) hashSequence(cells []uint64, r int) uint64 {
	a := f.seeds[r]
	var h uint64 = 1469598103934665603 // FNV offset as the running state
	for _, c := range cells {
		// Multiply-shift per element, folded FNV-style into the state.
		hc := (a * c) >> (64 - uint(f.BitsPerHash))
		h = (h ^ hc) * 1099511628211
	}
	return h >> (64 - uint(f.BitsPerHash))
}

// Code hashes a trajectory into the concatenated binary code.
func (f *Fresh) Code(t geo.Trajectory) hamming.Code {
	c := hamming.NewCode(f.Bits())
	for r := 0; r < f.Repetitions; r++ {
		h := f.hashSequence(f.cellSequence(t, r), r)
		for b := 0; b < f.BitsPerHash; b++ {
			if h&(1<<uint(b)) != 0 {
				i := r*f.BitsPerHash + b
				c.Words[i/64] |= 1 << (i % 64)
			}
		}
	}
	return c
}

// CodeAll hashes a batch of trajectories.
func (f *Fresh) CodeAll(ts []geo.Trajectory) []hamming.Code {
	out := make([]hamming.Code, len(ts))
	for i, t := range ts {
		out[i] = f.Code(t)
	}
	return out
}

// FreshIndex is the original Fresh search structure [18]: one hash table
// per repetition, keyed by that repetition's integer hash. A query's
// candidates are the union of its collisions across the L tables, ranked
// by collision count (more tables agreeing ⇒ more likely similar). This is
// the table-lookup search path; Table II's aligned-code comparison instead
// concatenates the hashes into a Hamming code via Fresh.Code.
type FreshIndex struct {
	f      *Fresh
	tables []map[uint64][]int
	n      int
}

// NewFreshIndex hashes and indexes the database trajectories.
func NewFreshIndex(f *Fresh, db []geo.Trajectory) *FreshIndex {
	ix := &FreshIndex{f: f, n: len(db)}
	ix.tables = make([]map[uint64][]int, f.Repetitions)
	for r := range ix.tables {
		ix.tables[r] = make(map[uint64][]int)
	}
	for id, t := range db {
		for r := 0; r < f.Repetitions; r++ {
			h := f.hashSequence(f.cellSequence(t, r), r)
			ix.tables[r][h] = append(ix.tables[r][h], id)
		}
	}
	return ix
}

// Len returns the number of indexed trajectories.
func (ix *FreshIndex) Len() int { return ix.n }

// Candidates returns the ids colliding with the query in at least one
// repetition, ordered by descending collision count (ties by id).
func (ix *FreshIndex) Candidates(q geo.Trajectory) []int {
	counts := map[int]int{}
	for r := 0; r < ix.f.Repetitions; r++ {
		h := ix.f.hashSequence(ix.f.cellSequence(q, r), r)
		for _, id := range ix.tables[r][h] {
			counts[id]++
		}
	}
	out := make([]int, 0, len(counts))
	for id := range counts {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool {
		if counts[out[a]] != counts[out[b]] {
			return counts[out[a]] > counts[out[b]]
		}
		return out[a] < out[b]
	})
	return out
}
