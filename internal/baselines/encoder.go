// Package baselines implements the six comparison methods of Tables I and
// II (Section V-A3) — NeuTraj, NT-No-SAM, t2vec, CL-TSim, Transformer, and
// TrajGAT — plus the Fresh curve LSH and the trainable hash adapter that
// binarizes the neural baselines' embeddings with the paper's ranking
// objective.
package baselines

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"traj2hash/internal/dist"
	"traj2hash/internal/eval"
	"traj2hash/internal/geo"
	"traj2hash/internal/nn"
)

// Encoder is a neural trajectory encoder: it maps a trajectory to a 1×dim
// graph tensor (with gradients during training).
type Encoder interface {
	// Name identifies the method in result tables.
	Name() string
	// Forward encodes one trajectory into a 1×OutDim tensor.
	Forward(t geo.Trajectory) *nn.Tensor
	// Params returns the trainable parameters.
	Params() []*nn.Tensor
	// OutDim is the embedding dimension.
	OutDim() int
}

// Embed runs Forward and copies out a plain vector.
func Embed(e Encoder, t geo.Trajectory) []float64 {
	out := e.Forward(t)
	v := make([]float64, len(out.Data))
	copy(v, out.Data)
	return v
}

// EmbedAll embeds a batch.
func EmbedAll(e Encoder, ts []geo.Trajectory) [][]float64 {
	out := make([][]float64, len(ts))
	for i, t := range ts {
		out[i] = Embed(e, t)
	}
	return out
}

// BaseConfig collects the hyper-parameters shared by all baselines; they
// mirror the paper's fair-comparison settings (Section V-A5: same latent
// dimension, sample size, and batch size as Traj2Hash).
type BaseConfig struct {
	Dim       int
	MaxLen    int
	M         int // WMSE samples per anchor
	Epochs    int
	BatchSize int
	LR        float64
	ClipNorm  float64
	Theta     float64 // 0 = auto
	Seed      int64
}

// DefaultBaseConfig mirrors core.DefaultConfig at the given dimension.
func DefaultBaseConfig(dim int) BaseConfig {
	return BaseConfig{
		Dim: dim, MaxLen: 24, M: 10, Epochs: 20, BatchSize: 20,
		LR: 1e-3, ClipNorm: 5, Seed: 1,
	}
}

// prepTraj bounds encoder input length (the exact distances always use the
// raw trajectory).
func prepTraj(t geo.Trajectory, maxLen int) geo.Trajectory {
	if len(t) > maxLen {
		return t.Resample(maxLen)
	}
	return t
}

// pointFeatures converts a trajectory into an n×2 tensor of normalized
// coordinates.
func pointFeatures(t geo.Trajectory, stats geo.Stats) *nn.Tensor {
	x := nn.New(len(t), 2)
	for i, p := range t {
		q := stats.Normalize(p)
		x.Set(i, 0, q.X)
		x.Set(i, 1, q.Y)
	}
	return x
}

// TrainResult records a metric-learning run.
type TrainResult struct {
	EpochLoss []float64
	ValHR10   []float64
	BestEpoch int
	BestHR10  float64
	Theta     float64
}

// TrainWMSE fits an encoder with the weighted-MSE metric-learning objective
// of Equation 17 (the NeuTraj-style seed-supervised training every
// distance-aware baseline uses), with best-validation-HR@10 selection.
func TrainWMSE(e Encoder, cfg BaseConfig, seeds, val []geo.Trajectory, f dist.Func) (*TrainResult, error) {
	if len(seeds) < cfg.M+1 {
		return nil, fmt.Errorf("baselines: need at least M+1=%d seeds, got %d", cfg.M+1, len(seeds))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	labelled := append(append([]geo.Trajectory{}, seeds...), val...)
	d := dist.Matrix(f, labelled)
	theta := cfg.Theta
	if theta <= 0 {
		if mean := dist.MeanOffDiagonal(d); mean > 0 {
			theta = 1 / mean
		} else {
			theta = 1
		}
	}
	s := dist.Similarity(d, theta)
	ns := len(seeds)

	var valTruth [][]int
	if len(val) > 0 {
		valTruth = make([][]int, len(val))
		for i := range val {
			valTruth[i] = eval.TopK(d[ns+i][ns:], 10)
		}
	}

	samples := buildSampleSets(s, ns, cfg.M, rng)
	opt := nn.NewAdam(e.Params(), cfg.LR)
	res := &TrainResult{Theta: theta, BestHR10: -1}
	best := snapshotParams(e.Params())

	// Encoders with train/eval modes (NeuTraj's SAM writes memory only in
	// training) are toggled around the validation pass.
	modal, hasModes := e.(interface{ SetTraining(bool) })
	setTraining := func(v bool) {
		if hasModes {
			modal.SetTraining(v)
		}
	}
	defer setTraining(false)

	anchors := make([]int, ns)
	for i := range anchors {
		anchors[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		setTraining(true)
		rng.Shuffle(len(anchors), func(i, j int) { anchors[i], anchors[j] = anchors[j], anchors[i] })
		var sum float64
		var steps int
		for lo := 0; lo < len(anchors); lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > len(anchors) {
				hi = len(anchors)
			}
			loss := wmseBatch(e, seeds, s, samples, anchors[lo:hi])
			if loss == nil {
				continue
			}
			sum += loss.Scalar()
			steps++
			loss.Backward()
			if cfg.ClipNorm > 0 {
				nn.ClipGradNorm(opt.Params, cfg.ClipNorm)
			}
			opt.Step()
		}
		if steps > 0 {
			res.EpochLoss = append(res.EpochLoss, sum/float64(steps))
		} else {
			res.EpochLoss = append(res.EpochLoss, 0)
		}
		setTraining(false)
		hr := validationHR10(e, val, valTruth)
		res.ValHR10 = append(res.ValHR10, hr)
		if hr > res.BestHR10 {
			res.BestHR10 = hr
			res.BestEpoch = epoch
			best = snapshotParams(e.Params())
		}
	}
	restoreParams(e.Params(), best)
	return res, nil
}

type sampleSet struct {
	ids     []int
	weights []float64
}

func buildSampleSets(s [][]float64, ns, m int, rng *rand.Rand) []sampleSet {
	out := make([]sampleSet, ns)
	for i := 0; i < ns; i++ {
		order := make([]int, 0, ns-1)
		for j := 0; j < ns; j++ {
			if j != i {
				order = append(order, j)
			}
		}
		row := s[i]
		sort.Slice(order, func(a, b int) bool { return row[order[a]] > row[order[b]] })
		half := m / 2
		if half > len(order) {
			half = len(order)
		}
		ids := append([]int(nil), order[:half]...)
		for len(ids) < m && len(order) > 0 {
			ids = append(ids, order[rng.Intn(len(order))])
		}
		w := make([]float64, len(ids))
		var total float64
		for k := range w {
			w[k] = float64(len(ids) - k)
			total += w[k]
		}
		for k := range w {
			w[k] /= total
		}
		out[i] = sampleSet{ids: ids, weights: w}
	}
	return out
}

func wmseBatch(e Encoder, seeds []geo.Trajectory, s [][]float64, samples []sampleSet, batch []int) *nn.Tensor {
	cache := map[int]*nn.Tensor{}
	embed := func(i int) *nn.Tensor {
		if t, ok := cache[i]; ok {
			return t
		}
		t := e.Forward(seeds[i])
		cache[i] = t
		return t
	}
	var terms []*nn.Tensor
	for _, i := range batch {
		hi := embed(i)
		for k, j := range samples[i].ids {
			g := nn.Exp(nn.Scale(nn.EuclideanDistance(hi, embed(j)), -1))
			diff := nn.AddScalar(g, -s[i][j])
			terms = append(terms, nn.Scale(nn.Square(diff), samples[i].weights[k]))
		}
	}
	if len(terms) == 0 {
		return nil
	}
	total := terms[0]
	for _, t := range terms[1:] {
		total = nn.Add(total, t)
	}
	return nn.Scale(total, 1/float64(len(batch)))
}

func validationHR10(e Encoder, val []geo.Trajectory, truth [][]int) float64 {
	if len(val) == 0 {
		return math.NaN()
	}
	embs := EmbedAll(e, val)
	returned := make([][]int, len(val))
	for i := range val {
		row := make([]float64, len(val))
		for j := range val {
			var sum float64
			for k := range embs[i] {
				d := embs[i][k] - embs[j][k]
				sum += d * d
			}
			row[j] = sum
		}
		returned[i] = eval.TopK(row, 10)
	}
	return eval.HitRatio(returned, truth, 10)
}

func snapshotParams(ps []*nn.Tensor) [][]float64 {
	out := make([][]float64, len(ps))
	for i, p := range ps {
		out[i] = append([]float64(nil), p.Data...)
	}
	return out
}

func restoreParams(ps []*nn.Tensor, snap [][]float64) {
	for i, p := range ps {
		copy(p.Data, snap[i])
	}
}
