package baselines

import (
	"math/rand"

	"traj2hash/internal/geo"
	"traj2hash/internal/nn"
)

// TrajGAT is the graph-attention baseline [24]: each point is mapped to its
// PR-quadtree leaf, the point feature is enriched with the summed
// embeddings of the root-to-leaf path (the quadtree structural encoding),
// and a transformer over the enriched sequence with mean-pooling read-out
// produces the embedding. Trained with the same WMSE objective.
type TrajGAT struct {
	cfg    BaseConfig
	stats  geo.Stats
	tree   *QuadTree
	nodes  *nn.Embedding // quadtree node embeddings
	mlpE   *nn.Linear
	blocks []*nn.EncoderBlock
}

// NewTrajGAT builds the quadtree over the study space and the encoder. Per
// Section V-A5 it matches Traj2Hash's head count and depth.
func NewTrajGAT(cfg BaseConfig, space []geo.Trajectory) *TrajGAT {
	rng := rand.New(rand.NewSource(cfg.Seed))
	heads := 4
	for cfg.Dim%heads != 0 {
		heads /= 2
	}
	tree := NewQuadTree(space, 64, 8)
	t := &TrajGAT{
		cfg:   cfg,
		stats: geo.ComputeStats(space),
		tree:  tree,
		nodes: nn.NewEmbedding(tree.NumNodes(), cfg.Dim, rng),
		mlpE:  nn.NewLinear(2, cfg.Dim, rng),
	}
	for i := 0; i < 2; i++ {
		t.blocks = append(t.blocks, nn.NewEncoderBlock(cfg.Dim, heads, cfg.Dim, true, rng))
	}
	return t
}

// Name implements Encoder.
func (t *TrajGAT) Name() string { return "TrajGAT" }

// OutDim implements Encoder.
func (t *TrajGAT) OutDim() int { return t.cfg.Dim }

// Params implements Encoder.
func (t *TrajGAT) Params() []*nn.Tensor {
	ps := t.nodes.Params()
	ps = append(ps, t.mlpE.Params()...)
	for _, b := range t.blocks {
		ps = append(ps, b.Params()...)
	}
	return ps
}

// Tree exposes the quadtree (for tests and diagnostics).
func (t *TrajGAT) Tree() *QuadTree { return t.tree }

// Forward implements Encoder.
func (t *TrajGAT) Forward(tr geo.Trajectory) *nn.Tensor {
	p := prepTraj(tr, t.cfg.MaxLen)
	feat := t.mlpE.Forward(pointFeatures(p, t.stats))
	// Structural encoding: sum of node embeddings along each point's
	// quadtree path, appended as rows then added to the point features.
	rows := make([]*nn.Tensor, len(p))
	for i, pt := range p {
		path := t.tree.Path(pt)
		emb := t.nodes.Forward(path)
		// Mean over the path keeps the scale independent of depth.
		rows[i] = nn.MeanRows(emb)
	}
	x := nn.Add(feat, nn.ConcatRows(rows...))
	for _, b := range t.blocks {
		x = b.Forward(x)
	}
	return nn.MeanRows(x) // TrajGAT's mean-pooling read-out
}
