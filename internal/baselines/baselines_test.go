package baselines

import (
	"math"
	"testing"

	"traj2hash/internal/data"
	"traj2hash/internal/dist"
	"traj2hash/internal/geo"
	"traj2hash/internal/hamming"
)

func tinyBase() BaseConfig {
	cfg := DefaultBaseConfig(16)
	cfg.MaxLen = 12
	cfg.M = 4
	cfg.Epochs = 3
	cfg.BatchSize = 8
	return cfg
}

func gen(n int, seed int64) []geo.Trajectory {
	return data.Porto().Generate(n, seed)
}

func euclid(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// allEncoders builds one of each neural baseline over the same space.
func allEncoders(t *testing.T, cfg BaseConfig, space []geo.Trajectory) []Encoder {
	t.Helper()
	nt, err := NewNeuTraj(cfg, space)
	if err != nil {
		t.Fatal(err)
	}
	ntns, err := NewNTNoSAM(cfg, space)
	if err != nil {
		t.Fatal(err)
	}
	t2v, err := NewT2Vec(cfg, space, 400)
	if err != nil {
		t.Fatal(err)
	}
	return []Encoder{
		nt,
		ntns,
		t2v,
		NewCLTSim(cfg, space),
		NewTransformer(cfg, space),
		NewTrajGAT(cfg, space),
	}
}

func TestEncoderNamesAndDims(t *testing.T) {
	space := gen(12, 1)
	cfg := tinyBase()
	encs := allEncoders(t, cfg, space)
	wantNames := map[string]bool{
		"NeuTraj": true, "NT-No-SAM": true, "t2vec": true,
		"CL-TSim": true, "Transformer": true, "TrajGAT": true,
	}
	for _, e := range encs {
		if !wantNames[e.Name()] {
			t.Errorf("unexpected name %q", e.Name())
		}
		delete(wantNames, e.Name())
		if e.OutDim() != cfg.Dim {
			t.Errorf("%s: OutDim = %d", e.Name(), e.OutDim())
		}
		emb := Embed(e, space[0])
		if len(emb) != cfg.Dim {
			t.Errorf("%s: embedding dim = %d", e.Name(), len(emb))
		}
		for _, v := range emb {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: non-finite embedding", e.Name())
				break
			}
		}
		if len(e.Params()) == 0 {
			t.Errorf("%s: no parameters", e.Name())
		}
	}
	if len(wantNames) != 0 {
		t.Errorf("missing encoders: %v", wantNames)
	}
}

func TestEmbedAllShape(t *testing.T) {
	space := gen(6, 2)
	e := NewTransformer(tinyBase(), space)
	out := EmbedAll(e, space[:4])
	if len(out) != 4 || len(out[0]) != e.OutDim() {
		t.Errorf("EmbedAll shape = %dx%d", len(out), len(out[0]))
	}
}

func TestTrainWMSEImproves(t *testing.T) {
	seeds := gen(20, 3)
	val := gen(12, 4)
	space := append(append([]geo.Trajectory{}, seeds...), val...)
	cfg := tinyBase()
	e, err := NewNTNoSAM(cfg, space)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainWMSE(e, cfg, seeds, val, dist.FrechetDist)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EpochLoss) != cfg.Epochs || len(res.ValHR10) != cfg.Epochs {
		t.Fatalf("history lengths = %d/%d", len(res.EpochLoss), len(res.ValHR10))
	}
	if res.Theta <= 0 {
		t.Errorf("theta = %v", res.Theta)
	}
	if res.EpochLoss[len(res.EpochLoss)-1] > res.EpochLoss[0]*1.5 {
		t.Errorf("loss grew: %v -> %v", res.EpochLoss[0], res.EpochLoss[len(res.EpochLoss)-1])
	}
	if res.BestHR10 < 0 {
		t.Errorf("best HR = %v", res.BestHR10)
	}
}

func TestTrainWMSETooFewSeeds(t *testing.T) {
	space := gen(4, 5)
	cfg := tinyBase()
	e := NewTransformer(cfg, space)
	if _, err := TrainWMSE(e, cfg, space[:2], nil, dist.DTWDist); err == nil {
		t.Error("tiny seed set accepted")
	}
}

func TestNeuTrajSAMMemoryChanges(t *testing.T) {
	space := gen(10, 6)
	cfg := tinyBase()
	nt, err := NewNeuTraj(cfg, space)
	if err != nil {
		t.Fatal(err)
	}
	// Inference must be order-independent: SAM memory is written only in
	// training mode.
	first := Embed(nt, space[0])
	Embed(nt, space[1]) // other encodings must not perturb the memory
	again := Embed(nt, space[0])
	if euclid(first, again) > 1e-12 {
		t.Error("inference encoding depends on prior queries")
	}
	// Training mode does write memory.
	nt.SetTraining(true)
	Embed(nt, space[0])
	nt.SetTraining(false)
	var nonZero bool
	for _, v := range nt.memory {
		if v != 0 {
			nonZero = true
			break
		}
	}
	if !nonZero {
		t.Error("training mode did not write SAM memory")
	}
	nt.ResetMemory()
	for _, v := range nt.memory {
		if v != 0 {
			t.Fatal("ResetMemory left residue")
		}
	}
}

func TestT2VecTrainReducesLoss(t *testing.T) {
	corpus := gen(30, 7)
	cfg := tinyBase()
	t2v, err := NewT2Vec(cfg, corpus, 400)
	if err != nil {
		t.Fatal(err)
	}
	losses := t2v.Train(corpus, 4)
	if len(losses) != 4 {
		t.Fatalf("losses = %v", losses)
	}
	if losses[3] > losses[0] {
		t.Errorf("autoencoder loss grew: %v", losses)
	}
}

func TestCLTSimTrainStableAndInformative(t *testing.T) {
	corpus := gen(24, 8)
	cfg := tinyBase()
	cl := NewCLTSim(cfg, corpus)
	losses := cl.Train(corpus, 3)
	if len(losses) == 0 {
		t.Fatal("no loss recorded")
	}
	for _, l := range losses {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("unstable loss %v", l)
		}
	}
	// After contrastive training, an augmented view should be nearer its
	// source than a random other trajectory, most of the time.
	var correct int
	const trials = 8
	for i := 0; i < trials; i++ {
		src := corpus[i]
		view := cl.augment(src)
		other := corpus[(i+11)%len(corpus)]
		a := euclid(Embed(cl, src), Embed(cl, view))
		b := euclid(Embed(cl, src), Embed(cl, other))
		if a < b {
			correct++
		}
	}
	if correct < trials/2 {
		t.Errorf("contrastive embedding ordered only %d/%d", correct, trials)
	}
}

func TestCLTSimAugmentKeepsEndpoints(t *testing.T) {
	corpus := gen(5, 9)
	cl := NewCLTSim(tinyBase(), corpus)
	for trial := 0; trial < 10; trial++ {
		v := cl.augment(corpus[0])
		if len(v) < 2 {
			t.Fatal("augmented view too short")
		}
	}
}

func TestQuadTreeInvariants(t *testing.T) {
	space := gen(30, 10)
	qt := NewQuadTree(space, 16, 6)
	if qt.NumNodes() <= 1 {
		t.Fatal("tree did not split")
	}
	if qt.Depth() > 6 {
		t.Errorf("depth %d exceeds max", qt.Depth())
	}
	for _, tr := range space[:5] {
		for _, p := range tr {
			path := qt.Path(p)
			if len(path) == 0 || path[0] != 0 {
				t.Fatalf("path = %v", path)
			}
			if leaf := qt.Leaf(p); leaf != path[len(path)-1] {
				t.Fatalf("Leaf %d != path end %d", leaf, path[len(path)-1])
			}
			for _, id := range path {
				if id < 0 || id >= qt.NumNodes() {
					t.Fatalf("node id %d out of range", id)
				}
			}
		}
	}
	// Nearby points share most of their path; far points split earlier.
	p1 := space[0][0]
	p2 := geo.Point{X: p1.X + 1, Y: p1.Y + 1}
	far := geo.Point{X: p1.X + 5000, Y: p1.Y + 4000}
	shared := sharedPrefix(qt.Path(p1), qt.Path(p2))
	sharedFar := sharedPrefix(qt.Path(p1), qt.Path(far))
	if shared < sharedFar {
		t.Errorf("near points share %d < far points %d", shared, sharedFar)
	}
}

func sharedPrefix(a, b []int) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

func TestFreshProperties(t *testing.T) {
	f := NewFresh(1000, 4, 16, 1)
	if f.Bits() != 64 {
		t.Fatalf("bits = %d", f.Bits())
	}
	ts := gen(10, 11)
	// Determinism.
	c1 := f.Code(ts[0])
	c2 := f.Code(ts[0])
	if !hamming.Equal(c1, c2) {
		t.Error("Fresh not deterministic")
	}
	// Locality: a slightly perturbed trajectory collides more than a far one.
	var nearDist, farDist int
	for i := 0; i < 10; i++ {
		base := ts[i%len(ts)]
		near := base.Clone()
		for j := range near {
			near[j] = near[j].Add(geo.Point{X: 3, Y: -2})
		}
		farTraj := base.Clone()
		for j := range farTraj {
			farTraj[j] = farTraj[j].Add(geo.Point{X: 4000, Y: 3500})
		}
		nearDist += hamming.Distance(f.Code(base), f.Code(near))
		farDist += hamming.Distance(f.Code(base), f.Code(farTraj))
	}
	if nearDist >= farDist {
		t.Errorf("Fresh locality violated: near %d >= far %d", nearDist, farDist)
	}
	codes := f.CodeAll(ts)
	if len(codes) != len(ts) {
		t.Error("CodeAll length")
	}
}

func TestFreshIndex(t *testing.T) {
	f := NewFresh(1000, 4, 16, 1)
	db := gen(60, 15)
	ix := NewFreshIndex(f, db)
	if ix.Len() != 60 {
		t.Fatalf("Len = %d", ix.Len())
	}
	// A database trajectory collides with itself in every table, so it must
	// rank first among its own candidates.
	for _, qi := range []int{0, 17, 42} {
		cands := ix.Candidates(db[qi])
		if len(cands) == 0 || cands[0] != qi {
			t.Errorf("query %d: candidates %v (want self first)", qi, cands[:min(len(cands), 5)])
		}
	}
	// A noisy copy collides in more tables than a distant trajectory (the
	// LSH property, in expectation over several probes).
	var copyHits, farHits int
	for _, qi := range []int{1, 5, 9, 13} {
		noisy := db[qi].Clone()
		for j := range noisy {
			noisy[j] = noisy[j].Add(geo.Point{X: 2, Y: -3})
		}
		for _, id := range ix.Candidates(noisy) {
			if id == qi {
				copyHits++
			}
		}
		far := db[qi].Clone()
		for j := range far {
			far[j] = far[j].Add(geo.Point{X: 5000, Y: 4200})
		}
		for _, id := range ix.Candidates(far) {
			if id == qi {
				farHits++
			}
		}
	}
	if copyHits <= farHits {
		t.Errorf("LSH locality violated: noisy copies hit %d, far copies hit %d", copyHits, farHits)
	}
}

func TestHashAdapterTrainAndCode(t *testing.T) {
	seeds := gen(20, 12)
	cfg := tinyBase()
	e := NewTransformer(cfg, seeds)
	ad := NewHashAdapter(e, 16, 2, 1)
	acfg := DefaultAdapterConfig()
	acfg.Epochs = 10
	acfg.M = 4
	if err := ad.Train(acfg, seeds, dist.FrechetDist); err != nil {
		t.Fatal(err)
	}
	c := ad.Code(seeds[0])
	if c.Bits != 16 {
		t.Fatalf("code bits = %d", c.Bits)
	}
	cs := ad.CodeAll(seeds[:3])
	if len(cs) != 3 {
		t.Error("CodeAll length")
	}
	// The adapter should order codes by similarity better than random:
	// identical trajectory → identical code.
	if hamming.Distance(ad.Code(seeds[0]), ad.Code(seeds[0])) != 0 {
		t.Error("self-distance nonzero")
	}
}

func TestHashAdapterTooFewSeeds(t *testing.T) {
	seeds := gen(3, 13)
	e := NewTransformer(tinyBase(), seeds)
	ad := NewHashAdapter(e, 16, 2, 1)
	cfg := DefaultAdapterConfig()
	if err := ad.Train(cfg, seeds, dist.DTWDist); err == nil {
		t.Error("tiny seed set accepted")
	}
}

// TestAllBaselinesTrainable exercises one WMSE epoch for the metric
// baselines over a shared space — an integration smoke test.
func TestAllBaselinesTrainable(t *testing.T) {
	seeds := gen(12, 14)
	cfg := tinyBase()
	cfg.Epochs = 1
	cfg.M = 4
	for _, e := range allEncoders(t, cfg, seeds) {
		if e.Name() == "t2vec" || e.Name() == "CL-TSim" {
			continue // these train unsupervised, covered above
		}
		if _, err := TrainWMSE(e, cfg, seeds, nil, dist.DTWDist); err != nil {
			t.Errorf("%s: %v", e.Name(), err)
		}
	}
}
