package faultinject

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"traj2hash/internal/engine"
	"traj2hash/internal/hamming"
)

// testVecs returns n seeded d-dimensional vectors.
func testVecs(rng *rand.Rand, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		out[i] = v
	}
	return out
}

// faultyEngine builds a sharded engine over the faulty backend with the
// given schedule and indexes vecs into it.
func faultyEngine(t *testing.T, shards int, f *Faults, vecs [][]float64) *engine.Engine {
	t.Helper()
	Register()
	e, err := engine.New(engine.Options{
		Backends: []string{BackendName},
		Shards:   shards,
		Workers:  4,
		Config:   engine.Config{Hooks: f},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vecs {
		if _, err := e.Add(v, hamming.Code{}); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// bruteTopK computes the exact (squared-distance, id)-ascending top-k over
// the subset of items whose shard (id % shards) passes keep.
func bruteTopK(vecs [][]float64, q []float64, k, shards int, keep func(shard int) bool) []engine.Result {
	var all []engine.Result
	for id, v := range vecs {
		if !keep(id % shards) {
			continue
		}
		var sum float64
		for j := range q {
			d := q[j] - v[j]
			sum += d * d
		}
		all = append(all, engine.Result{ID: id, Score: sum})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Score != all[b].Score {
			return all[a].Score < all[b].Score
		}
		return all[a].ID < all[b].ID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// TestPanickingShardDegradesExactly is acceptance scenario (a): with
// shard 1 panicking on every search, a query must report exactly one
// failed shard and return the exact top-k of the two surviving shards.
func TestPanickingShardDegradesExactly(t *testing.T) {
	const (
		n      = 90
		dim    = 8
		k      = 15
		shards = 3
	)
	rng := rand.New(rand.NewSource(41))
	vecs := testVecs(rng, n, dim)
	f := &Faults{PanicOn: map[int]bool{1: true}}
	e := faultyEngine(t, shards, f, vecs)
	if got := f.Instances(); got != shards {
		t.Fatalf("built %d faulty instances, want %d (instance==shard contract)", got, shards)
	}

	q := testVecs(rng, 1, dim)[0]
	rs, st := e.SearchCtx(context.Background(), engine.Query{Emb: q}, k)

	if st.Complete {
		t.Error("status Complete despite a panicking shard")
	}
	if st.ShardsOK != 2 || st.ShardsFailed != 1 {
		t.Errorf("shards ok/failed = %d/%d, want 2/1", st.ShardsOK, st.ShardsFailed)
	}
	if st.Err == nil || !strings.Contains(st.Err.Error(), "faultinject") {
		t.Errorf("status error should carry the attributed panic value, got %v", st.Err)
	}
	want := bruteTopK(vecs, q, k, shards, func(s int) bool { return s != 1 })
	if len(rs) != len(want) {
		t.Fatalf("got %d results, want %d", len(rs), len(want))
	}
	for i := range want {
		if rs[i] != want[i] {
			t.Fatalf("rank %d: got %+v, want %+v (surviving-shard top-k must stay exact)", i, rs[i], want[i])
		}
	}
}

// TestDeadlineMidFanoutReturnsPartial is acceptance scenario (b): with
// shard 2 artificially slow and a deadline shorter than its latency, the
// query returns the fast shards' merged answer flagged incomplete.
func TestDeadlineMidFanoutReturnsPartial(t *testing.T) {
	const (
		n      = 60
		dim    = 8
		k      = 10
		shards = 3
	)
	rng := rand.New(rand.NewSource(43))
	vecs := testVecs(rng, n, dim)
	f := &Faults{SleepOn: map[int]time.Duration{2: 2 * time.Second}}
	e := faultyEngine(t, shards, f, vecs)

	q := testVecs(rng, 1, dim)[0]
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	rs, st := e.SearchCtx(ctx, engine.Query{Emb: q}, k)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("search blocked %v past its 100ms deadline", elapsed)
	}

	if st.Complete {
		t.Error("status Complete despite an expired deadline")
	}
	if st.ShardsOK != 2 {
		t.Errorf("shards ok = %d, want 2 (the fast shards)", st.ShardsOK)
	}
	if !errors.Is(st.Err, context.DeadlineExceeded) {
		t.Errorf("status error should wrap context.DeadlineExceeded, got %v", st.Err)
	}
	want := bruteTopK(vecs, q, k, shards, func(s int) bool { return s != 2 })
	if len(rs) != len(want) {
		t.Fatalf("got %d results, want %d", len(rs), len(want))
	}
	for i := range want {
		if rs[i] != want[i] {
			t.Fatalf("rank %d: got %+v, want %+v", i, rs[i], want[i])
		}
	}
}

// TestChaosSearchesNeverCrash hammers an engine whose every backend
// panics with seeded probability, from many goroutines (run under -race).
// The process must survive and every status must account for all shards.
func TestChaosSearchesNeverCrash(t *testing.T) {
	const (
		n       = 120
		dim     = 8
		k       = 10
		shards  = 4
		workers = 8
		queries = 25
	)
	rng := rand.New(rand.NewSource(47))
	vecs := testVecs(rng, n, dim)
	f := &Faults{PanicProb: 0.5, Seed: 99}
	e := faultyEngine(t, shards, f, vecs)

	var wg sync.WaitGroup
	errc := make(chan string, workers*queries)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(int64(1000 + w)))
			for i := 0; i < queries; i++ {
				q := testVecs(qrng, 1, dim)[0]
				rs, st := e.SearchCtx(context.Background(), engine.Query{Emb: q}, k)
				if st.ShardsOK+st.ShardsFailed != shards {
					errc <- "status does not account for every shard"
				}
				if st.Complete != (st.ShardsFailed == 0) {
					errc <- "Complete disagrees with the failure count"
				}
				if st.ShardsFailed > 0 && st.Err == nil {
					errc <- "failed shards but nil status error"
				}
				if len(rs) > k {
					errc <- "more than k results"
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Error(msg)
	}
}

// TestFaultyBackendNeedsHooks: constructing the faulty backend without a
// schedule in Config.Hooks must fail loudly, not panic or misbehave.
func TestFaultyBackendNeedsHooks(t *testing.T) {
	Register()
	if _, err := engine.New(engine.Options{Backends: []string{BackendName}}); err == nil {
		t.Fatal("faulty backend constructed without a *Faults in Config.Hooks")
	}
	if _, err := engine.New(engine.Options{
		Backends: []string{BackendName},
		Config:   engine.Config{Hooks: &Faults{Inner: BackendName}},
	}); err == nil {
		t.Fatal("faulty backend accepted itself as Inner")
	}
}

// TestSetDefaultFallbackSchedule: when engine.Config.Hooks carries no
// schedule, the faulty backend falls back to the SetDefault one — the
// seam that lets tests driving the PUBLIC facade (whose Options has no
// Hooks surface) inject faults. An explicit Hooks schedule still wins,
// and clearing the fallback restores the loud construction error.
func TestSetDefaultFallbackSchedule(t *testing.T) {
	Register()
	fallback := &Faults{}
	prev := SetDefault(fallback)
	t.Cleanup(func() { SetDefault(prev) })

	if _, err := engine.New(engine.Options{Backends: []string{BackendName}, Shards: 2}); err != nil {
		t.Fatalf("construction with a SetDefault fallback failed: %v", err)
	}
	if got := fallback.Instances(); got != 2 {
		t.Fatalf("fallback schedule built %d instances, want 2 (one per shard)", got)
	}

	own := &Faults{}
	if _, err := engine.New(engine.Options{
		Backends: []string{BackendName},
		Config:   engine.Config{Hooks: own},
	}); err != nil {
		t.Fatal(err)
	}
	if own.Instances() != 1 || fallback.Instances() != 2 {
		t.Fatalf("explicit Hooks schedule did not win over the fallback (own=%d fallback=%d)",
			own.Instances(), fallback.Instances())
	}

	SetDefault(nil)
	if _, err := engine.New(engine.Options{Backends: []string{BackendName}}); err == nil {
		t.Fatal("faulty backend constructed with neither Hooks nor a fallback schedule")
	}
}

// TestGradPoisonerCharges: a site armed once fires once and never again —
// the property that lets a divergence-guard replay pass cleanly.
func TestGradPoisonerCharges(t *testing.T) {
	p := NewGradPoisoner(Site{Epoch: 2, Step: 0}, Site{Epoch: 2, Step: 0}, Site{Epoch: 5, Step: 1})
	if p.MaybePoison(0, 0, nil) {
		t.Error("unarmed site fired")
	}
	if !p.MaybePoison(2, 0, nil) || !p.MaybePoison(2, 0, nil) {
		t.Error("doubly-armed site should fire twice")
	}
	if p.MaybePoison(2, 0, nil) {
		t.Error("site fired past its charges")
	}
	if !p.MaybePoison(5, 1, nil) {
		t.Error("second site did not fire")
	}
	if got := p.Fired(); got != 3 {
		t.Errorf("Fired() = %d, want 3", got)
	}
}
