// Package faultinject provides deterministic, seeded fault injectors —
// backend panics, artificial shard latency, and poisoned training
// parameters — plus a "faulty" search backend registered through the
// ordinary engine registry. It exists so the failure-domain contracts of
// the serving and training layers (engine.Status accounting, partial
// results under deadlines, checkpoint rollback on divergence; see
// DESIGN.md "Failure semantics & graceful degradation") are exercised by
// tests rather than hoped for in production.
//
// Everything here is test instrumentation: the faulty backend is wired
// through engine.Config.Hooks, never through production options, and
// injection schedules are either explicit (per-shard) or drawn from a
// seeded RNG so every failure scenario replays bit-for-bit.
package faultinject

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"traj2hash/internal/engine"
	"traj2hash/internal/hamming"
	"traj2hash/internal/nn"
)

// BackendName is the engine-registry name of the fault-injecting
// backend. Build an engine over it with
//
//	faultinject.Register()
//	e, _ := engine.New(engine.Options{
//	        Backends: []string{faultinject.BackendName},
//	        Shards:   3,
//	        Config:   engine.Config{Hooks: &faultinject.Faults{...}},
//	})
const BackendName = "faulty"

// Faults is the schedule a faulty backend consults. Instance numbers are
// handed out in construction order; the engine builds one backend per
// shard in shard order, so instance index == shard index — which is what
// makes "shard 1 always panics" a deterministic scenario regardless of
// goroutine scheduling.
//
// Configure the maps before handing Faults to engine.New and do not
// mutate them afterwards; the per-call chaos state is internally locked.
type Faults struct {
	// Inner names the real backend each faulty instance wraps
	// (default: euclidean-bf). It must not name the faulty backend.
	Inner string
	// PanicOn marks instance (= shard) indices whose every Search
	// panics with a "faultinject: "-attributed value.
	PanicOn map[int]bool
	// SleepOn makes the given instances sleep before answering each
	// Search — artificial shard latency for deadline tests.
	SleepOn map[int]time.Duration
	// PanicProb, when > 0, adds a seeded per-Search Bernoulli panic on
	// every instance — the chaos mode. Each instance derives its own
	// generator from Seed so the fan-out stays deterministic per shard
	// no matter how goroutines interleave.
	PanicProb float64
	// Seed seeds the chaos generators (instance i uses Seed + i).
	Seed int64

	mu   sync.Mutex
	next int
}

// instance hands out the next instance number.
func (f *Faults) instance() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	i := f.next
	f.next++
	return i
}

// Instances reports how many faulty backends have been built against
// this schedule so far (== shards × engines constructed with it).
func (f *Faults) Instances() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.next
}

// The package-level fallback schedule (SetDefault). Guarded by its own
// mutex rather than folded into a Faults method: the fallback is chosen
// at backend CONSTRUCTION time only, so the lock never sits on a search
// path.
var (
	defaultMu     sync.Mutex
	defaultFaults *Faults
)

// SetDefault installs (nil clears) the package-level fallback schedule
// the faulty backend falls back to when engine.Config.Hooks carries no
// *Faults. It exists for tests that drive the PUBLIC facade: a fault
// schedule is test instrumentation, so traj2hash.Options deliberately
// has no Hooks surface — SetDefault is the only seam through which
// `Options{Backend: faultinject.BackendName}` can reach a schedule.
// Returns the previous fallback so tests can restore it in a Cleanup.
// Call it before constructing the index, never while one is serving.
func SetDefault(f *Faults) *Faults {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	prev := defaultFaults
	defaultFaults = f
	return prev
}

// getDefault returns the current fallback schedule (nil when unset).
func getDefault() *Faults {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	return defaultFaults
}

// registerOnce guards the engine-registry registration (the registry
// panics on duplicates, mirroring database/sql).
var registerOnce sync.Once

// Register makes the faulty backend constructible by name through the
// ordinary engine registry. Idempotent; call it from any test that wants
// the backend available.
func Register() {
	registerOnce.Do(func() {
		engine.Register(BackendName, func(cfg engine.Config) (engine.Backend, error) {
			f, ok := cfg.Hooks.(*Faults)
			if !ok || f == nil {
				f = getDefault()
			}
			if f == nil {
				return nil, fmt.Errorf("faultinject: the %q backend needs engine.Config.Hooks to carry a *faultinject.Faults (or a SetDefault fallback)", BackendName)
			}
			innerName := f.Inner
			if innerName == "" {
				innerName = engine.EuclideanBFName
			}
			if innerName == BackendName {
				return nil, fmt.Errorf("faultinject: Inner must name a real backend, not %q", BackendName)
			}
			inner, err := engine.NewBackend(innerName, cfg)
			if err != nil {
				return nil, err
			}
			inst := f.instance()
			return &faultyBackend{
				inner: inner,
				inst:  inst,
				f:     f,
				rng:   rand.New(rand.NewSource(f.Seed + int64(inst))),
			}, nil
		})
	})
}

// faultyBackend wraps a real backend and injects the scheduled faults on
// the read path. Add passes straight through: the failure domains under
// test are query fan-out and training, not ingestion.
type faultyBackend struct {
	inner engine.Backend
	inst  int
	f     *Faults

	mu  sync.Mutex // guards rng (concurrent Searches are legal)
	rng *rand.Rand
}

// Name implements engine.Backend.
func (b *faultyBackend) Name() string { return BackendName }

// Len implements engine.Backend.
func (b *faultyBackend) Len() int { return b.inner.Len() }

// Add implements engine.Backend.
func (b *faultyBackend) Add(emb []float64, code hamming.Code) error {
	return b.inner.Add(emb, code)
}

// Update implements engine.Backend, passing straight through like Add:
// the failure domains under test are the read paths and the durability
// layer (see fs.go), not in-memory mutation.
func (b *faultyBackend) Update(local int, emb []float64, code hamming.Code) error {
	return b.inner.Update(local, emb, code)
}

// Search implements engine.Backend, firing the instance's scheduled
// faults before delegating: sleep first (so a slow shard can also be a
// panicking one), then the deterministic panic, then the seeded chaos
// panic.
func (b *faultyBackend) Search(q engine.Query, k int) []engine.Result {
	if d := b.f.SleepOn[b.inst]; d > 0 {
		time.Sleep(d)
	}
	if b.f.PanicOn[b.inst] {
		panic(fmt.Sprintf("faultinject: injected panic in backend instance %d", b.inst))
	}
	if b.f.PanicProb > 0 && b.chaosFires() {
		panic(fmt.Sprintf("faultinject: chaos panic in backend instance %d", b.inst))
	}
	return b.inner.Search(q, k)
}

// chaosFires draws one seeded Bernoulli trial under the rng lock.
func (b *faultyBackend) chaosFires() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rng.Float64() < b.f.PanicProb
}

// GradPoisoner corrupts model parameters at scheduled optimizer steps,
// simulating the NaN/Inf divergence a bad batch or an exploding gradient
// produces. Wire it into training through core.TrainData.StepHook:
//
//	p := faultinject.NewGradPoisoner(faultinject.Site{Epoch: 2, Step: 0})
//	td.StepHook = func(epoch, step int) { p.MaybePoison(epoch, step, m.Params()) }
//
// Each scheduled firing is consumed when it triggers, so a divergence
// guard that rolls an epoch back and replays it does not re-trip on the
// same site — schedule a site N times to poison N consecutive replays.
type GradPoisoner struct {
	mu    sync.Mutex
	sites map[Site]int
	fired int
}

// Site is one (epoch, step) scheduling coordinate of a GradPoisoner.
type Site struct {
	Epoch int
	Step  int
}

// NewGradPoisoner schedules a poisoning at each given site; repeating a
// site arms it that many times.
func NewGradPoisoner(sites ...Site) *GradPoisoner {
	g := &GradPoisoner{sites: map[Site]int{}}
	for _, s := range sites {
		g.sites[s]++
	}
	return g
}

// MaybePoison fires if (epoch, step) is armed: it writes NaN into the
// first element of every parameter tensor and consumes one charge.
// Reports whether it fired.
func (g *GradPoisoner) MaybePoison(epoch, step int, params []*nn.Tensor) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := Site{Epoch: epoch, Step: step}
	if g.sites[s] == 0 {
		return false
	}
	g.sites[s]--
	g.fired++
	for _, p := range params {
		if len(p.Data) > 0 {
			p.Data[0] = math.NaN()
		}
	}
	return true
}

// Fired reports how many poisonings have triggered.
func (g *GradPoisoner) Fired() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.fired
}
