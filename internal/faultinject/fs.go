package faultinject

import (
	"errors"
	"fmt"
	"sync"

	"traj2hash/internal/wal"
)

// ErrCrashed is the error every filesystem operation returns after an
// injected fault has fired: the FS behaves as if the process died at the
// fault instant — nothing later reaches disk. Recovery tests then reopen
// the SAME directory through a fresh (healthy) FS, exactly like a
// restarted process would.
var ErrCrashed = errors.New("faultinject: filesystem crashed")

// FS wraps a wal.VFS with a deterministic fault schedule over the
// write-side operations the durability layer performs. Operations are
// counted per kind (file writes, file fsyncs, renames) and a fault fires
// when its 1-based operation index is reached:
//
//   - ShortWriteAt(n): the n-th File.Write persists only half its bytes,
//     then the FS crashes — the literal torn-record case.
//   - FailSyncAt(n): the n-th File.Sync fails without flushing, then the
//     FS crashes — data handed to the OS but never made durable.
//   - FailRenameAt(n): the n-th Rename fails before renaming, then the
//     FS crashes — a snapshot fully written but never published.
//
// Crash-at-every-point suites first run the workload on a counting-only
// FS to learn how many operations of each kind it performs, then replay
// it once per index with the fault scheduled there. An FS is safe for
// concurrent use; the schedule must be configured before the workload
// starts.
type FS struct {
	inner wal.VFS

	mu           sync.Mutex
	writes       int
	syncs        int
	renames      int
	shortWriteAt int
	failSyncAt   int
	failRenameAt int
	crashed      bool
}

// NewFS wraps inner (nil means the real filesystem, wal.OSFS) with an
// empty fault schedule — a pure operation counter until faults are armed.
func NewFS(inner wal.VFS) *FS {
	if inner == nil {
		inner = wal.OSFS{}
	}
	return &FS{inner: inner}
}

// ShortWriteAt arms the short-write fault at the 1-based write index n
// (0 disarms).
func (f *FS) ShortWriteAt(n int) { f.mu.Lock(); defer f.mu.Unlock(); f.shortWriteAt = n }

// FailSyncAt arms the fsync fault at the 1-based sync index n (0 disarms).
func (f *FS) FailSyncAt(n int) { f.mu.Lock(); defer f.mu.Unlock(); f.failSyncAt = n }

// FailRenameAt arms the rename fault at the 1-based rename index n
// (0 disarms).
func (f *FS) FailRenameAt(n int) { f.mu.Lock(); defer f.mu.Unlock(); f.failRenameAt = n }

// Crashed reports whether a fault has fired (and the FS is now dead).
func (f *FS) Crashed() bool { f.mu.Lock(); defer f.mu.Unlock(); return f.crashed }

// Counts returns how many file writes, file fsyncs, and renames the
// workload has performed so far — the coordinates crash-at-every-point
// suites schedule faults over.
func (f *FS) Counts() (writes, syncs, renames int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes, f.syncs, f.renames
}

// guard is the common prologue of pass-through operations: fail
// everything once crashed.
func (f *FS) guard() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

// MkdirAll implements wal.VFS.
func (f *FS) MkdirAll(dir string) error {
	if err := f.guard(); err != nil {
		return err
	}
	return f.inner.MkdirAll(dir)
}

// ReadFile implements wal.VFS.
func (f *FS) ReadFile(path string) ([]byte, error) {
	if err := f.guard(); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(path)
}

// Create implements wal.VFS.
func (f *FS) Create(path string) (wal.File, error) {
	if err := f.guard(); err != nil {
		return nil, err
	}
	inner, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultyFile{fs: f, inner: inner}, nil
}

// OpenAppend implements wal.VFS.
func (f *FS) OpenAppend(path string) (wal.File, error) {
	if err := f.guard(); err != nil {
		return nil, err
	}
	inner, err := f.inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultyFile{fs: f, inner: inner}, nil
}

// renameFault counts one rename and decides its fate under the lock.
func (f *FS) renameFault() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	f.renames++
	if f.failRenameAt > 0 && f.renames == f.failRenameAt {
		f.crashed = true
		return fmt.Errorf("faultinject: injected rename failure (rename %d): %w", f.failRenameAt, ErrCrashed)
	}
	return nil
}

// Rename implements wal.VFS, firing the scheduled rename fault BEFORE
// the rename happens — the "snapshot written but never published" crash.
func (f *FS) Rename(oldPath, newPath string) error {
	if err := f.renameFault(); err != nil {
		return err
	}
	return f.inner.Rename(oldPath, newPath)
}

// Remove implements wal.VFS.
func (f *FS) Remove(path string) error {
	if err := f.guard(); err != nil {
		return err
	}
	return f.inner.Remove(path)
}

// Truncate implements wal.VFS.
func (f *FS) Truncate(path string, size int64) error {
	if err := f.guard(); err != nil {
		return err
	}
	return f.inner.Truncate(path, size)
}

// SyncDir implements wal.VFS. Directory syncs pass through (subject to
// the crashed state); the scheduled sync fault targets file fsyncs,
// where the durability protocol actually orders data.
func (f *FS) SyncDir(dir string) error {
	if err := f.guard(); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultyFile threads every write and fsync of one open file through the
// FS's schedule. Close always closes the real handle (even after a
// crash) so tests never leak file descriptors.
type faultyFile struct {
	fs    *FS
	inner wal.File
}

// writeFault counts one write and decides its fate under the lock:
// tear=true means this write is the scheduled short write (and the FS
// is now crashed).
func (f *FS) writeFault() (tear bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return false, ErrCrashed
	}
	f.writes++
	if f.shortWriteAt > 0 && f.writes == f.shortWriteAt {
		f.crashed = true
		return true, nil
	}
	return false, nil
}

// syncFault counts one fsync and decides its fate under the lock.
func (f *FS) syncFault() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	f.syncs++
	if f.failSyncAt > 0 && f.syncs == f.failSyncAt {
		f.crashed = true
		return fmt.Errorf("faultinject: injected fsync failure (sync %d): %w", f.failSyncAt, ErrCrashed)
	}
	return nil
}

// Write implements wal.File. The scheduled short write persists the
// first half of p and then crashes the FS — producing a literally torn
// record on the real file, which is what the recovery path must detect
// and truncate.
func (w *faultyFile) Write(p []byte) (int, error) {
	tear, err := w.fs.writeFault()
	if err != nil {
		return 0, err
	}
	if tear {
		//lint:ignore errcheck the injected error below supersedes the real half-write's outcome
		n, _ := w.inner.Write(p[:len(p)/2])
		return n, fmt.Errorf("faultinject: injected short write (%d of %d bytes): %w", len(p)/2, len(p), ErrCrashed)
	}
	return w.inner.Write(p)
}

// Sync implements wal.File. A scheduled sync failure does NOT flush —
// the bytes may be in the OS cache of the test process, but the modeled
// machine lost them.
func (w *faultyFile) Sync() error {
	if err := w.fs.syncFault(); err != nil {
		return err
	}
	return w.inner.Sync()
}

// Close implements wal.File.
func (w *faultyFile) Close() error { return w.inner.Close() }
