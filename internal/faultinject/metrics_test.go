package faultinject

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"traj2hash/internal/engine"
	"traj2hash/internal/hamming"
	"traj2hash/internal/obs"
	"traj2hash/internal/wal"
)

// instrumentedFaultyEngine is faultyEngine with an obs registry attached.
func instrumentedFaultyEngine(t *testing.T, reg *obs.Registry, shards int, f *Faults, vecs [][]float64) *engine.Engine {
	t.Helper()
	Register()
	e, err := engine.New(engine.Options{
		Backends: []string{BackendName},
		Shards:   shards,
		Workers:  4,
		Metrics:  reg,
		Config:   engine.Config{Hooks: f},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vecs {
		if _, err := e.Add(v, hamming.Code{}); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// exportMetricsArtifact writes the registry's JSON snapshot to the file
// named by METRICS_JSON_OUT (the CI artifact; see scripts/ci.sh). A
// no-op when the variable is unset, so ordinary `go test` runs leave no
// files behind.
func exportMetricsArtifact(t *testing.T, reg *obs.Registry) {
	t.Helper()
	path := os.Getenv("METRICS_JSON_OUT")
	if path == "" {
		return
	}
	out, err := os.Create(path)
	if err != nil {
		t.Fatalf("metrics artifact: %v", err)
	}
	if err := reg.WriteJSON(out); err != nil {
		//lint:ignore errcheck the write error takes precedence over the cleanup close
		out.Close()
		t.Fatalf("metrics artifact: %v", err)
	}
	if err := out.Close(); err != nil {
		t.Fatalf("metrics artifact: %v", err)
	}
}

// TestInjectedPanicsMoveMetrics is the acceptance check that chaos is
// VISIBLE: every injected shard panic must surface as an
// engine.shard.panics increment and every degraded answer as a
// search.degraded increment — exact deltas, not just "nonzero".
func TestInjectedPanicsMoveMetrics(t *testing.T) {
	const (
		n       = 90
		dim     = 8
		shards  = 3
		queries = 4
	)
	rng := rand.New(rand.NewSource(61))
	vecs := testVecs(rng, n, dim)
	reg := obs.New()
	f := &Faults{PanicOn: map[int]bool{1: true}}
	e := instrumentedFaultyEngine(t, reg, shards, f, vecs)

	for i := 0; i < queries; i++ {
		q := testVecs(rng, 1, dim)[0]
		_, st := e.SearchCtx(context.Background(), engine.Query{Emb: q}, 10)
		if st.Complete {
			t.Fatalf("query %d: complete despite a panicking shard", i)
		}
	}

	s := reg.Snapshot()
	if got := s.Counters["engine.shard.panics"]; got != queries {
		t.Errorf("engine.shard.panics = %d, want %d", got, queries)
	}
	if got := s.Counters["search.degraded"]; got != queries {
		t.Errorf("search.degraded = %d, want %d", got, queries)
	}
	if got := s.Counters["engine.search.total"]; got != queries {
		t.Errorf("engine.search.total = %d, want %d", got, queries)
	}
	// The panicking shard's latency is still accounted (the defer
	// observes on the panic path too): every shard histogram saw every
	// query.
	for si := 0; si < shards; si++ {
		name := fmt.Sprintf("engine.shard.seconds.%s.%d", BackendName, si)
		if h := s.Histograms[name]; h.Count != queries {
			t.Errorf("%s count = %d, want %d", name, h.Count, queries)
		}
	}
	exportMetricsArtifact(t, reg)
}

// TestSlowShardLatencyAttributedToThatShard is the fan-out timing
// regression test: per-shard latency is measured inside the worker, so
// one slow shard must show up in ITS histogram only — not smeared over
// the fast shards (the old around-the-merge measurement charged every
// shard for the slowest one) and not folded into the merge time.
func TestSlowShardLatencyAttributedToThatShard(t *testing.T) {
	const (
		n       = 60
		dim     = 8
		shards  = 3
		queries = 3
		nap     = 30 * time.Millisecond
	)
	rng := rand.New(rand.NewSource(67))
	vecs := testVecs(rng, n, dim)
	reg := obs.New()
	f := &Faults{SleepOn: map[int]time.Duration{1: nap}}
	e := instrumentedFaultyEngine(t, reg, shards, f, vecs)

	for i := 0; i < queries; i++ {
		q := testVecs(rng, 1, dim)[0]
		_, st := e.SearchCtx(context.Background(), engine.Query{Emb: q}, 10)
		if !st.Complete {
			t.Fatalf("query %d incomplete: %v", i, st.Err)
		}
	}

	s := reg.Snapshot()
	name := func(si int) string { return fmt.Sprintf("engine.shard.seconds.%s.%d", BackendName, si) }
	slow := s.Histograms[name(1)]
	if slow.Count != queries {
		t.Fatalf("slow shard count = %d, want %d", slow.Count, queries)
	}
	minSlow := float64(queries) * nap.Seconds()
	if slow.Sum < minSlow {
		t.Errorf("slow shard latency sum = %v, want >= %v", slow.Sum, minSlow)
	}
	for _, si := range []int{0, 2} {
		fast := s.Histograms[name(si)]
		if fast.Count != queries {
			t.Fatalf("shard %d count = %d, want %d", si, fast.Count, queries)
		}
		if fast.Sum >= slow.Sum {
			t.Errorf("shard %d latency sum %v >= slow shard's %v: injected latency leaked across shards", si, fast.Sum, slow.Sum)
		}
	}
	// The merge is timed separately and must not absorb the shard wait.
	merge := s.Histograms["engine.merge.seconds"]
	if merge.Count != queries {
		t.Fatalf("merge count = %d, want %d", merge.Count, queries)
	}
	if merge.Sum >= slow.Sum {
		t.Errorf("merge latency sum %v >= slow shard's %v: shard wait folded into the merge measurement", merge.Sum, slow.Sum)
	}
}

// TestTimeoutPartialResultCountsDegraded: a deadline expiring mid-fan-out
// (the CLI's `search -timeout` scenario) must return a partial answer
// AND increment search.degraded.
func TestTimeoutPartialResultCountsDegraded(t *testing.T) {
	const (
		n      = 60
		dim    = 8
		shards = 3
	)
	rng := rand.New(rand.NewSource(71))
	vecs := testVecs(rng, n, dim)
	reg := obs.New()
	f := &Faults{SleepOn: map[int]time.Duration{2: 2 * time.Second}}
	e := instrumentedFaultyEngine(t, reg, shards, f, vecs)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	q := testVecs(rng, 1, dim)[0]
	rs, st := e.SearchCtx(ctx, engine.Query{Emb: q}, 10)
	if st.Complete {
		t.Error("complete despite an expired deadline")
	}
	if !errors.Is(st.Err, context.DeadlineExceeded) {
		t.Errorf("status error = %v, want a wrapped DeadlineExceeded", st.Err)
	}
	if len(rs) == 0 {
		t.Error("no partial results from the fast shards")
	}
	s := reg.Snapshot()
	if got := s.Counters["search.degraded"]; got != 1 {
		t.Errorf("search.degraded = %d, want 1", got)
	}
	if got := s.Counters["engine.shard.panics"]; got != 0 {
		t.Errorf("engine.shard.panics = %d, want 0 (slow is not panicking)", got)
	}
}

// TestChaosPanicsAllVisible: under seeded probabilistic chaos the panic
// counter must equal the number of failed shard attempts accumulated
// across the statuses — no panic escapes accounting.
func TestChaosPanicsAllVisible(t *testing.T) {
	const (
		n       = 90
		dim     = 8
		shards  = 3
		queries = 40
	)
	rng := rand.New(rand.NewSource(73))
	vecs := testVecs(rng, n, dim)
	reg := obs.New()
	f := &Faults{PanicProb: 0.3, Seed: 991}
	e := instrumentedFaultyEngine(t, reg, shards, f, vecs)

	var failed, degraded int64
	for i := 0; i < queries; i++ {
		q := testVecs(rng, 1, dim)[0]
		_, st := e.SearchCtx(context.Background(), engine.Query{Emb: q}, 5)
		failed += int64(st.ShardsFailed)
		if !st.Complete {
			degraded++
		}
	}
	if failed == 0 {
		t.Fatal("chaos schedule never fired; the scenario is vacuous")
	}
	s := reg.Snapshot()
	if got := s.Counters["engine.shard.panics"]; got != failed {
		t.Errorf("engine.shard.panics = %d, want %d (sum of ShardsFailed)", got, failed)
	}
	if got := s.Counters["search.degraded"]; got != degraded {
		t.Errorf("search.degraded = %d, want %d", got, degraded)
	}
}

// TestMutationAndWALMetricsExact is the satellite-(f) acceptance check:
// the mutability and durability layers are observable with EXACT
// deltas. A scripted engine workload must move engine.deletes and
// engine.compactions by precisely the scripted amounts, and a WAL
// workload crashed mid-append by an injected short write must surface
// as exactly one wal.recoveries and one wal.torn_tails on reopen, with
// wal.appends/wal.fsyncs counting only the operations that succeeded.
func TestMutationAndWALMetricsExact(t *testing.T) {
	reg := obs.New()

	// Engine side: 10 vectors on 2 shards, 4 deletes with automatic
	// compaction disabled, then one explicit Compact — which rebuilds
	// exactly the two shards holding tombstones.
	Register()
	rng := rand.New(rand.NewSource(83))
	e, err := engine.New(engine.Options{
		Backends:  []string{BackendName},
		Shards:    2,
		Workers:   2,
		CompactAt: -1,
		Metrics:   reg,
		Config:    engine.Config{Hooks: &Faults{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range testVecs(rng, 10, 8) {
		if _, err := e.Add(v, hamming.Code{}); err != nil {
			t.Fatal(err)
		}
	}
	for id := 0; id < 4; id++ {
		if err := e.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}

	// WAL side: a store through a fault-injected FS. The log's magic
	// header is write 1 and each appended record is one more write, so
	// arming the short write at index 5 tears the FOURTH record.
	dir := t.TempDir()
	fs := NewFS(nil)
	fs.ShortWriteAt(5)
	s, _, err := wal.Open(wal.Options{Dir: dir, Metrics: reg, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	rec := wal.Record{Op: wal.OpAdd, Emb: []float64{1, 2}, Code: hamming.Code{Bits: 2, Words: []uint64{3}}}
	for i := 0; i < 3; i++ {
		rec.ID = i
		if err := s.Append(rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	rec.ID = 3
	if err := s.Append(rec); !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn append = %v, want ErrCrashed", err)
	}
	//lint:ignore errcheck the store crashed mid-append; Close only releases the dead handle
	s.Close()

	s2, recovered, err := wal.Open(wal.Options{Dir: dir, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		//lint:ignore errcheck test cleanup close
		s2.Close()
	}()
	if !recovered.TornTail || len(recovered.Tail) != 3 {
		t.Fatalf("recovered torn=%v tail=%d, want true/3", recovered.TornTail, len(recovered.Tail))
	}

	snap := reg.Snapshot()
	want := map[string]int64{
		"engine.deletes":     4,
		"engine.compactions": 2, // one per shard holding tombstones
		"wal.appends":        3, // the torn fourth append never counts
		"wal.fsyncs":         3, // one group fsync per successful append (SyncEvery=1)
		"wal.recoveries":     1, // only the reopen found prior state
		"wal.torn_tails":     1,
	}
	for name, w := range want {
		if got := snap.Counters[name]; got != w {
			t.Errorf("%s = %d, want %d", name, got, w)
		}
	}
	exportMetricsArtifact(t, reg)
}
