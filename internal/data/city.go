// Package data generates and manages the synthetic trajectory datasets that
// substitute for the paper's proprietary taxi data (Section V-A1).
//
// The Porto dataset (1.7M taxi trips, ECML/PKDD 2015 challenge) and the
// ChengDu dataset (1.2M DiDi GAIA trips) cannot be redistributed, so this
// package builds city models that reproduce the distributional properties
// the models actually consume:
//
//   - road-constrained movement (trips snap to a rectilinear road lattice);
//   - hub concentration (taxi trips cluster around stations, airports,
//     shopping districts), which makes the coarse-grid triplet clustering
//     of Section IV-F productive, exactly as on real taxi data;
//   - variable trip length, GPS noise, and a fixed sampling interval.
//
// Porto-like and ChengDu-like parameterizations differ in extent, hub
// layout (grid-spread vs ring-oriented), trip length, and density so that
// cross-dataset trends can emerge. Preprocessing matches Section V-A1:
// trajectories with fewer than 10 points are dropped.
package data

import (
	"math"
	"math/rand"

	"traj2hash/internal/geo"
)

// City is a generative model of taxi trips in a city.
type City struct {
	Name          string
	Width, Height float64     // extent in meters
	Hubs          []geo.Point // trip endpoint attractors
	HubStd        float64     // endpoint spread around a hub (m)
	RoadSpacing   float64     // road lattice spacing (m)
	SpeedMean     float64     // mean speed (m/s)
	SpeedStd      float64     // speed variation (m/s)
	SampleEvery   float64     // GPS sampling interval (s)
	NoiseStd      float64     // GPS noise (m)
	DetourProb    float64     // probability of an intermediate waypoint
	MaxPoints     int         // trips longer than this are truncated
	RepeatProb    float64     // probability of a canonical hub-to-hub trip
}

// Porto returns a Porto-like city: a wide riverside grid with hubs spread
// across the center and longer trips.
func Porto() *City {
	return &City{
		Name:   "Porto",
		Width:  12000,
		Height: 9000,
		Hubs: []geo.Point{
			{X: 2000, Y: 4500}, {X: 4200, Y: 3000}, {X: 6000, Y: 5200},
			{X: 8200, Y: 4000}, {X: 10000, Y: 6000}, {X: 5000, Y: 7500},
			{X: 3000, Y: 1500}, {X: 9000, Y: 1800},
		},
		HubStd:      500,
		RoadSpacing: 200,
		SpeedMean:   10,
		SpeedStd:    2,
		SampleEvery: 15,
		NoiseStd:    6,
		DetourProb:  0.35,
		MaxPoints:   120,
		RepeatProb:  0.5,
	}
}

// ChengDu returns a ChengDu-like city: a compact ring-structured plan with
// hubs on two concentric rings around the center and shorter, denser trips.
func ChengDu() *City {
	c := &City{
		Name:        "ChengDu",
		Width:       10000,
		Height:      10000,
		HubStd:      400,
		RoadSpacing: 150,
		SpeedMean:   8,
		SpeedStd:    2,
		SampleEvery: 10,
		NoiseStd:    5,
		DetourProb:  0.25,
		MaxPoints:   100,
		RepeatProb:  0.5,
	}
	center := geo.Point{X: 5000, Y: 5000}
	c.Hubs = append(c.Hubs, center)
	for ring, radius := range []float64{1800, 3600} {
		n := 4 + ring*2
		for i := 0; i < n; i++ {
			a := 2 * math.Pi * float64(i) / float64(n)
			c.Hubs = append(c.Hubs, geo.Point{
				X: center.X + radius*math.Cos(a),
				Y: center.Y + radius*math.Sin(a),
			})
		}
	}
	return c
}

// snap quantizes a point onto the road lattice.
func (c *City) snap(p geo.Point) geo.Point {
	return geo.Point{
		X: math.Round(p.X/c.RoadSpacing) * c.RoadSpacing,
		Y: math.Round(p.Y/c.RoadSpacing) * c.RoadSpacing,
	}
}

// clip keeps a point inside the city extent.
func (c *City) clip(p geo.Point) geo.Point {
	return geo.Point{
		X: math.Max(0, math.Min(c.Width, p.X)),
		Y: math.Max(0, math.Min(c.Height, p.Y)),
	}
}

// endpoint samples a trip endpoint near a random hub.
func (c *City) endpoint(rng *rand.Rand) geo.Point {
	h := c.Hubs[rng.Intn(len(c.Hubs))]
	return c.clip(geo.Point{
		X: h.X + rng.NormFloat64()*c.HubStd,
		Y: h.Y + rng.NormFloat64()*c.HubStd,
	})
}

// route builds a rectilinear road path from a to b, optionally via a detour
// waypoint, as a polyline of lattice corners.
func (c *City) route(a, b geo.Point, rng *rand.Rand) geo.Trajectory {
	waypoints := []geo.Point{c.snap(a)}
	if rng.Float64() < c.DetourProb {
		mid := geo.Point{
			X: (a.X+b.X)/2 + rng.NormFloat64()*c.RoadSpacing*4,
			Y: (a.Y+b.Y)/2 + rng.NormFloat64()*c.RoadSpacing*4,
		}
		waypoints = append(waypoints, c.snap(c.clip(mid)))
	}
	waypoints = append(waypoints, c.snap(b))

	var path geo.Trajectory
	for i := 0; i+1 < len(waypoints); i++ {
		p, q := waypoints[i], waypoints[i+1]
		path = append(path, p)
		// Manhattan leg: move along X first or Y first, chosen at random
		// (per leg) so the same endpoints yield a small family of routes.
		if rng.Intn(2) == 0 {
			path = append(path, geo.Point{X: q.X, Y: p.Y})
		} else {
			path = append(path, geo.Point{X: p.X, Y: q.Y})
		}
	}
	path = append(path, waypoints[len(waypoints)-1])
	return path
}

// canonicalRoute builds the fixed route between hubs i and j — the
// "popular route" pattern of real taxi traffic (airport runs, station
// shuttles). Its shape depends only on (i, j), so repeated trips share
// their coarse grid trajectory, which is what makes the fast triplet
// clustering of Section IV-F productive on this corpus.
func (c *City) canonicalRoute(i, j int) geo.Trajectory {
	p := c.snap(c.clip(c.Hubs[i]))
	q := c.snap(c.clip(c.Hubs[j]))
	var mid geo.Point
	if (i+j)%2 == 0 {
		mid = geo.Point{X: q.X, Y: p.Y}
	} else {
		mid = geo.Point{X: p.X, Y: q.Y}
	}
	return geo.Trajectory{p, mid, q}
}

// Trip generates one GPS trajectory: route, drive at a sampled speed,
// record a point every SampleEvery seconds, and add GPS noise. A
// RepeatProb fraction of trips follow canonical hub-to-hub routes.
func (c *City) Trip(rng *rand.Rand) geo.Trajectory {
	var path geo.Trajectory
	if rng.Float64() < c.RepeatProb {
		i := rng.Intn(len(c.Hubs))
		j := rng.Intn(len(c.Hubs))
		for tries := 0; i == j && tries < 5; tries++ {
			j = rng.Intn(len(c.Hubs))
		}
		if i == j {
			j = (i + 1) % len(c.Hubs)
		}
		path = c.canonicalRoute(i, j)
	} else {
		a := c.endpoint(rng)
		b := c.endpoint(rng)
		// Re-draw the destination until the trip is non-degenerate.
		for tries := 0; a.Dist(b) < 4*c.RoadSpacing && tries < 10; tries++ {
			b = c.endpoint(rng)
		}
		path = c.route(a, b, rng)
	}
	speed := c.SpeedMean + rng.NormFloat64()*c.SpeedStd
	if speed < 2 {
		speed = 2
	}
	step := speed * c.SampleEvery // meters between samples
	n := int(path.Length()/step) + 2
	if n > c.MaxPoints {
		n = c.MaxPoints
	}
	tr := path.Resample(n)
	for i := range tr {
		tr[i] = c.clip(geo.Point{
			X: tr[i].X + rng.NormFloat64()*c.NoiseStd,
			Y: tr[i].Y + rng.NormFloat64()*c.NoiseStd,
		})
	}
	return tr
}

// MinPoints is the preprocessing filter of Section V-A1: trajectories with
// fewer than 10 records are removed.
const MinPoints = 10

// Generate produces n preprocessed trajectories (all with ≥ MinPoints
// points) from the city model, deterministically for a given seed.
func (c *City) Generate(n int, seed int64) []geo.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geo.Trajectory, 0, n)
	for len(out) < n {
		tr := c.Trip(rng)
		if tr.Validate(MinPoints) == nil {
			out = append(out, tr)
		}
	}
	return out
}
