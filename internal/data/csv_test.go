package data

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"traj2hash/internal/geo"
)

func TestCSVRoundTrip(t *testing.T) {
	ts := Porto().Generate(5, 30)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ts) {
		t.Fatalf("got %d trajectories", len(got))
	}
	for i := range ts {
		if len(got[i]) != len(ts[i]) {
			t.Fatalf("trajectory %d length differs", i)
		}
		for j := range ts[i] {
			if got[i][j] != ts[i][j] {
				t.Fatalf("trajectory %d point %d differs", i, j)
			}
		}
	}
}

func TestCSVNoHeader(t *testing.T) {
	in := "a,1,2\na,3,4\nb,5,6\n"
	got, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || len(got[0]) != 2 || got[1][0] != (geo.Point{X: 5, Y: 6}) {
		t.Fatalf("got %v", got)
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("id,x\n")); err == nil {
		t.Error("wrong column count accepted")
	}
	// A first row with unparsable coordinates is treated as a header.
	got, err := ReadCSV(strings.NewReader("a,notanumber,2\nb,1,2\n"))
	if err != nil || len(got) != 1 {
		t.Errorf("header detection failed: %v %v", got, err)
	}
	if _, err := ReadCSV(strings.NewReader("traj_id,x,y\na,oops,2\n")); err == nil {
		t.Error("bad coordinate accepted")
	}
	if _, err := ReadCSV(strings.NewReader("traj_id,x,y\na,1,+Inf\n")); err == nil {
		t.Error("non-finite accepted")
	}
}

func TestCSVLonLat(t *testing.T) {
	in := "traj_id,lon,lat\nt1,-8.61,41.15\nt1,-8.60,41.15\n"
	got, err := ReadCSVLonLat(strings.NewReader(in), 41.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0]) != 2 {
		t.Fatalf("got %v", got)
	}
	d := got[0][0].Dist(got[0][1])
	if d < 700 || d > 950 {
		t.Errorf("0.01 deg lon = %v m", d)
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	ts := ChengDu().Generate(3, 31)
	path := filepath.Join(t.TempDir(), "t.csv")
	if err := WriteCSVFile(path, ts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d", len(got))
	}
	if _, err := ReadCSVFile(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Error("missing file accepted")
	}
}
