package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"traj2hash/internal/geo"
)

// CSV trajectory format: one point per row,
//
//	traj_id,x,y
//
// with an optional header row (detected automatically). Rows of the same
// trajectory must be contiguous and in order; trajectory ids are opaque
// strings. Coordinates are planar; raw longitude/latitude should be
// projected first (geo.ProjectEquirectangular) or imported via ReadCSVLonLat.

// WriteCSV writes the trajectories to w with ids "0", "1", ...
func WriteCSV(w io.Writer, ts []geo.Trajectory) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"traj_id", "x", "y"}); err != nil {
		return fmt.Errorf("data: csv header: %w", err)
	}
	for i, t := range ts {
		id := strconv.Itoa(i)
		for _, p := range t {
			rec := []string{
				id,
				strconv.FormatFloat(p.X, 'f', -1, 64),
				strconv.FormatFloat(p.Y, 'f', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("data: csv row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads trajectories written in the WriteCSV format. Trajectories
// appear in first-seen id order.
func ReadCSV(r io.Reader) ([]geo.Trajectory, error) {
	return readCSV(r, func(a, b float64) geo.Point { return geo.Point{X: a, Y: b} })
}

// ReadCSVLonLat reads rows of the form traj_id,lon,lat (degrees) and
// projects them into planar meters around refLat.
func ReadCSVLonLat(r io.Reader, refLat float64) ([]geo.Trajectory, error) {
	return readCSV(r, func(lon, lat float64) geo.Point {
		return geo.ProjectEquirectangular(lon, lat, refLat)
	})
}

func readCSV(r io.Reader, mk func(a, b float64) geo.Point) ([]geo.Trajectory, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	var out []geo.Trajectory
	index := map[string]int{}
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("data: csv read: %w", err)
		}
		line++
		if line == 1 && looksLikeHeader(rec) {
			continue
		}
		a, err1 := strconv.ParseFloat(rec[1], 64)
		b, err2 := strconv.ParseFloat(rec[2], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("data: csv line %d: bad coordinates %q,%q", line, rec[1], rec[2])
		}
		p := mk(a, b)
		if !p.IsFinite() {
			return nil, fmt.Errorf("data: csv line %d: non-finite point", line)
		}
		i, ok := index[rec[0]]
		if !ok {
			i = len(out)
			index[rec[0]] = i
			out = append(out, nil)
		}
		out[i] = append(out[i], p)
	}
	return out, nil
}

func looksLikeHeader(rec []string) bool {
	_, err1 := strconv.ParseFloat(rec[1], 64)
	_, err2 := strconv.ParseFloat(rec[2], 64)
	return err1 != nil || err2 != nil
}

// WriteCSVFile writes trajectories to a CSV file.
func WriteCSVFile(path string, ts []geo.Trajectory) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteCSV(f, ts); err != nil {
		return err
	}
	return f.Close()
}

// ReadCSVFile reads trajectories from a CSV file.
func ReadCSVFile(path string) ([]geo.Trajectory, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}
