package data

import (
	"encoding/gob"
	"fmt"
	"math/rand"
	"os"

	"traj2hash/internal/geo"
)

// SplitSpec gives the sizes of the experimental splits of Section V-A2:
// a labelled set (seed + validation), a triplet corpus, and a disjoint
// test set of queries and database trajectories.
type SplitSpec struct {
	Seed       int // trajectories with exact pairwise distances (20% of labelled)
	Validation int // labelled trajectories held out for model selection (80%)
	Corpus     int // unlabelled corpus for fast triplet generation
	Queries    int // test queries
	Database   int // test database
}

// PaperSplit is the paper's full protocol: 10K labelled (2K seed + 8K
// validation), 200K corpus, 10K queries, 100K database.
func PaperSplit() SplitSpec {
	return SplitSpec{Seed: 2000, Validation: 8000, Corpus: 200000, Queries: 10000, Database: 100000}
}

// Total returns the number of trajectories the spec consumes.
func (s SplitSpec) Total() int {
	return s.Seed + s.Validation + s.Corpus + s.Queries + s.Database
}

// Scaled shrinks every split by the given factor (minimum sizes keep the
// pipeline functional), letting experiments run the paper protocol at
// laptop scale.
func (s SplitSpec) Scaled(factor float64) SplitSpec {
	scale := func(n, min int) int {
		v := int(float64(n) * factor)
		if v < min {
			v = min
		}
		return v
	}
	return SplitSpec{
		Seed:       scale(s.Seed, 20),
		Validation: scale(s.Validation, 20),
		Corpus:     scale(s.Corpus, 50),
		Queries:    scale(s.Queries, 10),
		Database:   scale(s.Database, 50),
	}
}

// Dataset is a named, split trajectory collection.
type Dataset struct {
	Name       string
	Seeds      []geo.Trajectory
	Validation []geo.Trajectory
	Corpus     []geo.Trajectory
	Queries    []geo.Trajectory
	Database   []geo.Trajectory
}

// Build generates spec.Total() trajectories from the city model, shuffles
// them, and slices the splits. Deterministic for a given seed.
func Build(c *City, spec SplitSpec, seed int64) *Dataset {
	ts := c.Generate(spec.Total(), seed)
	rng := rand.New(rand.NewSource(seed + 1))
	rng.Shuffle(len(ts), func(i, j int) { ts[i], ts[j] = ts[j], ts[i] })
	d := &Dataset{Name: c.Name}
	cut := func(n int) []geo.Trajectory {
		out := ts[:n]
		ts = ts[n:]
		return out
	}
	d.Seeds = cut(spec.Seed)
	d.Validation = cut(spec.Validation)
	d.Corpus = cut(spec.Corpus)
	d.Queries = cut(spec.Queries)
	d.Database = cut(spec.Database)
	return d
}

// SplitByFractions shuffles user-provided trajectories and splits them by
// the given fractions (seeds, validation, corpus, queries); the remainder
// becomes the database. Fractions must be positive and sum below 1.
func SplitByFractions(name string, ts []geo.Trajectory, seedF, valF, corpusF, queryF float64, seed int64) (*Dataset, error) {
	total := seedF + valF + corpusF + queryF
	if seedF <= 0 || valF <= 0 || corpusF <= 0 || queryF <= 0 || total >= 1 {
		return nil, fmt.Errorf("data: fractions must be positive and sum below 1, got %v", total)
	}
	shuffled := append([]geo.Trajectory(nil), ts...)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	n := len(shuffled)
	count := func(f float64) int {
		c := int(f * float64(n))
		if c < 1 {
			c = 1
		}
		return c
	}
	d := &Dataset{Name: name}
	cut := func(k int) []geo.Trajectory {
		if k > len(shuffled) {
			k = len(shuffled)
		}
		out := shuffled[:k]
		shuffled = shuffled[k:]
		return out
	}
	d.Seeds = cut(count(seedF))
	d.Validation = cut(count(valF))
	d.Corpus = cut(count(corpusF))
	d.Queries = cut(count(queryF))
	d.Database = shuffled
	if len(d.Database) == 0 {
		return nil, fmt.Errorf("data: no trajectories left for the database")
	}
	return d, nil
}

// Labelled returns seeds followed by validation trajectories — the 10K
// (paper scale) trajectories whose pairwise distances are computed exactly.
func (d *Dataset) Labelled() []geo.Trajectory {
	out := make([]geo.Trajectory, 0, len(d.Seeds)+len(d.Validation))
	out = append(out, d.Seeds...)
	out = append(out, d.Validation...)
	return out
}

// All returns every trajectory across all splits (seeds, validation,
// corpus, queries, database) — used to fit grids and normalization stats.
func (d *Dataset) All() []geo.Trajectory {
	out := make([]geo.Trajectory, 0, len(d.Seeds)+len(d.Validation)+len(d.Corpus)+len(d.Queries)+len(d.Database))
	out = append(out, d.Seeds...)
	out = append(out, d.Validation...)
	out = append(out, d.Corpus...)
	out = append(out, d.Queries...)
	out = append(out, d.Database...)
	return out
}

// Save writes the dataset to path with encoding/gob.
//
//det:replayed a saved dataset is the input to reproducible experiment runs; its bytes must be a pure function of the splits
func (d *Dataset) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("data: save: %w", err)
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(d); err != nil {
		return fmt.Errorf("data: encode: %w", err)
	}
	return f.Close()
}

// Load reads a dataset written by Save.
//
//det:replayed experiment reproducibility depends on decoding the same splits from the same dataset bytes every time
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("data: load: %w", err)
	}
	defer f.Close()
	var d Dataset
	if err := gob.NewDecoder(f).Decode(&d); err != nil {
		return nil, fmt.Errorf("data: decode: %w", err)
	}
	return &d, nil
}

// Filter returns the trajectories passing the Section V-A1 length filter.
func Filter(ts []geo.Trajectory, minPoints int) []geo.Trajectory {
	out := make([]geo.Trajectory, 0, len(ts))
	for _, t := range ts {
		if t.Validate(minPoints) == nil {
			out = append(out, t)
		}
	}
	return out
}
