package data

import (
	"math"
	"path/filepath"
	"testing"

	"traj2hash/internal/dist"
	"traj2hash/internal/geo"
	"traj2hash/internal/grid"
)

func TestGenerateDeterministic(t *testing.T) {
	c := Porto()
	a := c.Generate(5, 42)
	b := c.Generate(5, 42)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("trajectory %d lengths differ", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("trajectory %d point %d differs", i, j)
			}
		}
	}
	// Different seed differs.
	c2 := c.Generate(5, 43)
	same := true
	for i := range a {
		if len(a[i]) != len(c2[i]) {
			same = false
			break
		}
		for j := range a[i] {
			if a[i][j] != c2[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestGeneratePreprocessed(t *testing.T) {
	for _, c := range []*City{Porto(), ChengDu()} {
		ts := c.Generate(50, 1)
		if len(ts) != 50 {
			t.Fatalf("%s: got %d trajectories", c.Name, len(ts))
		}
		for i, tr := range ts {
			if err := tr.Validate(MinPoints); err != nil {
				t.Errorf("%s[%d]: %v", c.Name, i, err)
			}
			if len(tr) > c.MaxPoints {
				t.Errorf("%s[%d]: %d points exceeds max %d", c.Name, i, len(tr), c.MaxPoints)
			}
			for _, p := range tr {
				if p.X < 0 || p.X > c.Width || p.Y < 0 || p.Y > c.Height {
					t.Errorf("%s[%d]: point %v outside extent", c.Name, i, p)
				}
			}
		}
	}
}

func TestTripsAreRoadConstrained(t *testing.T) {
	// Points should stay near the road lattice (within noise + sampling
	// tolerance) for most samples.
	c := Porto()
	ts := c.Generate(20, 2)
	var near, total int
	for _, tr := range ts {
		for _, p := range tr {
			dx := math.Abs(p.X - math.Round(p.X/c.RoadSpacing)*c.RoadSpacing)
			dy := math.Abs(p.Y - math.Round(p.Y/c.RoadSpacing)*c.RoadSpacing)
			// On a rectilinear route, at least one coordinate lies on the
			// lattice (up to GPS noise).
			if math.Min(dx, dy) < 4*c.NoiseStd {
				near++
			}
			total++
		}
	}
	if frac := float64(near) / float64(total); frac < 0.8 {
		t.Errorf("only %.0f%% of points near the road lattice", frac*100)
	}
}

func TestHubConcentrationMakesTriplesClusterable(t *testing.T) {
	// The property the fast triplet generation relies on (Section IV-F):
	// with a 500 m coarse grid, a hub-concentrated corpus yields clusters
	// with at least two members.
	c := Porto()
	ts := c.Generate(300, 3)
	g, err := grid.FromTrajectories(ts, 500)
	if err != nil {
		t.Fatal(err)
	}
	clusters := map[string]int{}
	for _, tr := range ts {
		clusters[grid.KeyOf(g.CompressedGridTrajectory(tr))]++
	}
	var multi int
	for _, n := range clusters {
		if n >= 2 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no multi-member coarse-grid clusters; triplet generation would starve")
	}
}

func TestCityShapesDiffer(t *testing.T) {
	p, cd := Porto(), ChengDu()
	if p.Width == cd.Width && p.Height == cd.Height {
		t.Error("cities share extent")
	}
	if len(p.Hubs) == len(cd.Hubs) {
		t.Error("cities share hub count")
	}
	// ChengDu hubs should be ring-structured: all non-center hubs at one of
	// two radii from the center.
	center := geo.Point{X: 5000, Y: 5000}
	for _, h := range cd.Hubs[1:] {
		r := h.Dist(center)
		if math.Abs(r-1800) > 1 && math.Abs(r-3600) > 1 {
			t.Errorf("hub %v at radius %v, want 1800 or 3600", h, r)
		}
	}
}

func TestTripDistanceDistributionSane(t *testing.T) {
	// DTW between random trips should be finite, positive, and varied —
	// the property the WMSE supervision needs.
	ts := Porto().Generate(20, 4)
	var min, max float64 = math.Inf(1), 0
	for i := 0; i < 10; i++ {
		d := dist.DTW(ts[2*i], ts[2*i+1])
		if math.IsInf(d, 0) || math.IsNaN(d) || d <= 0 {
			t.Fatalf("degenerate DTW %v", d)
		}
		min = math.Min(min, d)
		max = math.Max(max, d)
	}
	if max/min < 2 {
		t.Errorf("distance distribution too flat: [%v, %v]", min, max)
	}
}

func TestSplitSpec(t *testing.T) {
	s := PaperSplit()
	if s.Total() != 2000+8000+200000+10000+100000 {
		t.Errorf("Total = %d", s.Total())
	}
	small := s.Scaled(0.001)
	if small.Seed < 20 || small.Queries < 10 {
		t.Errorf("scaled spec below minimums: %+v", small)
	}
	if small.Total() >= s.Total() {
		t.Error("scaling did not shrink")
	}
}

func TestBuildSplitsDisjointAndSized(t *testing.T) {
	spec := SplitSpec{Seed: 10, Validation: 15, Corpus: 30, Queries: 5, Database: 40}
	d := Build(Porto(), spec, 7)
	if len(d.Seeds) != 10 || len(d.Validation) != 15 || len(d.Corpus) != 30 ||
		len(d.Queries) != 5 || len(d.Database) != 40 {
		t.Fatalf("split sizes: %d/%d/%d/%d/%d", len(d.Seeds), len(d.Validation),
			len(d.Corpus), len(d.Queries), len(d.Database))
	}
	if got := len(d.Labelled()); got != 25 {
		t.Errorf("Labelled = %d", got)
	}
	if got := len(d.All()); got != spec.Total() {
		t.Errorf("All = %d", got)
	}
}

func TestSplitByFractions(t *testing.T) {
	ts := Porto().Generate(100, 40)
	ds, err := SplitByFractions("mine", ts, 0.1, 0.1, 0.3, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != "mine" {
		t.Errorf("name = %q", ds.Name)
	}
	if len(ds.Seeds) != 10 || len(ds.Validation) != 10 || len(ds.Corpus) != 30 || len(ds.Queries) != 5 {
		t.Errorf("splits = %d/%d/%d/%d", len(ds.Seeds), len(ds.Validation), len(ds.Corpus), len(ds.Queries))
	}
	total := len(ds.Seeds) + len(ds.Validation) + len(ds.Corpus) + len(ds.Queries) + len(ds.Database)
	if total != 100 {
		t.Errorf("total = %d", total)
	}
	// Deterministic.
	ds2, _ := SplitByFractions("mine", ts, 0.1, 0.1, 0.3, 0.05, 1)
	if ds2.Seeds[0][0] != ds.Seeds[0][0] {
		t.Error("not deterministic")
	}
	// Errors.
	if _, err := SplitByFractions("x", ts, 0, 0.1, 0.3, 0.05, 1); err == nil {
		t.Error("zero fraction accepted")
	}
	if _, err := SplitByFractions("x", ts, 0.5, 0.3, 0.2, 0.1, 1); err == nil {
		t.Error("fractions summing to >1 accepted")
	}
	if _, err := SplitByFractions("x", ts[:4], 0.25, 0.25, 0.25, 0.2, 1); err == nil {
		t.Error("no database remainder accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	spec := SplitSpec{Seed: 5, Validation: 5, Corpus: 5, Queries: 5, Database: 5}
	d := Build(ChengDu(), spec, 8)
	path := filepath.Join(t.TempDir(), "ds.gob")
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || len(got.Database) != len(d.Database) {
		t.Fatal("round trip mismatch")
	}
	for i := range d.Database {
		for j := range d.Database[i] {
			if got.Database[i][j] != d.Database[i][j] {
				t.Fatal("trajectory data mismatch")
			}
		}
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestFilter(t *testing.T) {
	ts := []geo.Trajectory{
		make(geo.Trajectory, 5),
		make(geo.Trajectory, 10),
		make(geo.Trajectory, 20),
	}
	got := Filter(ts, 10)
	if len(got) != 2 {
		t.Errorf("Filter kept %d", len(got))
	}
}
