// Package dist implements the exact trajectory distance functions of the
// paper's preliminaries (Section III, Definition 3) and Related Work:
//
//   - DTW (dynamic time warping)
//   - the discrete Fréchet distance
//   - the Hausdorff distance
//   - ERP (edit distance with real penalty)
//   - EDR (edit distance on real sequences)
//   - cDTW (Sakoe–Chiba band constrained DTW, the traditional fast
//     comparator cited in Related Work)
//
// plus the first/last-point lower bounds of Lemma 1, parallel pairwise
// distance-matrix computation, and the distance→similarity transform
// S_ij = exp(-θ·D_ij)/max(exp(-θ·D)) used as training supervision
// (Section IV-F).
//
// All dynamic programs run in O(n·m) time and O(min(n,m)) memory via
// rolling rows, so ground-truth computation for seed sets is practical.
package dist

import (
	"fmt"
	"math"

	"traj2hash/internal/geo"
)

// Func identifies a trajectory distance function.
type Func int

// The supported distance functions.
const (
	DTWDist Func = iota
	FrechetDist
	HausdorffDist
	ERPDist
	EDRDist
)

// String returns the conventional name of the distance function.
func (f Func) String() string {
	switch f {
	case DTWDist:
		return "DTW"
	case FrechetDist:
		return "Frechet"
	case HausdorffDist:
		return "Hausdorff"
	case ERPDist:
		return "ERP"
	case EDRDist:
		return "EDR"
	default:
		return fmt.Sprintf("Func(%d)", int(f))
	}
}

// ParseFunc converts a name ("dtw", "frechet", "hausdorff", "erp", "edr")
// into a Func.
func ParseFunc(name string) (Func, error) {
	switch name {
	case "dtw", "DTW":
		return DTWDist, nil
	case "frechet", "Frechet", "fréchet":
		return FrechetDist, nil
	case "hausdorff", "Hausdorff":
		return HausdorffDist, nil
	case "erp", "ERP":
		return ERPDist, nil
	case "edr", "EDR":
		return EDRDist, nil
	default:
		return 0, fmt.Errorf("dist: unknown distance function %q", name)
	}
}

// Distance computes f between two trajectories. ERP uses the origin as its
// gap point and EDR uses a matching threshold of 1.0 (appropriate for
// normalized coordinates); use the specific functions directly to control
// those parameters.
func Distance(f Func, a, b geo.Trajectory) float64 {
	switch f {
	case DTWDist:
		return DTW(a, b)
	case FrechetDist:
		return Frechet(a, b)
	case HausdorffDist:
		return Hausdorff(a, b)
	case ERPDist:
		return ERP(a, b, geo.Point{})
	case EDRDist:
		return EDR(a, b, 1.0)
	default:
		panic(fmt.Sprintf("dist: unknown Func %d", int(f)))
	}
}

// ReverseSymmetric reports whether f satisfies the reverse symmetric
// property of Definition 4 (Lemma 2). DTW, Fréchet, and Hausdorff do; the
// edit distances do as well by symmetry of their recurrences, but the paper
// only claims the first three, so only those are reported.
func ReverseSymmetric(f Func) bool {
	switch f {
	case DTWDist, FrechetDist, HausdorffDist:
		return true
	default:
		return false
	}
}

// DTW returns the dynamic time warping distance between a and b following
// the recurrence of Equation 1:
//
//	D[i][j] = min(D[i-1][j], D[i][j-1], D[i-1][j-1]) + d(a_i, b_j)
//
// Empty inputs: DTW with one empty side is +Inf (no warping path exists);
// two empty trajectories have distance 0.
func DTW(a, b geo.Trajectory) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	if len(a) == 0 || len(b) == 0 {
		return math.Inf(1)
	}
	// Keep b the shorter side so the rolling rows are minimal.
	if len(b) > len(a) {
		a, b = b, a
	}
	m := len(b)
	prev := make([]float64, m)
	cur := make([]float64, m)

	// First row: only horizontal moves.
	prev[0] = a[0].Dist(b[0])
	for j := 1; j < m; j++ {
		prev[j] = prev[j-1] + a[0].Dist(b[j])
	}
	for i := 1; i < len(a); i++ {
		cur[0] = prev[0] + a[i].Dist(b[0])
		for j := 1; j < m; j++ {
			best := prev[j] // insertion
			if prev[j-1] < best {
				best = prev[j-1] // match
			}
			if cur[j-1] < best {
				best = cur[j-1] // deletion
			}
			cur[j] = best + a[i].Dist(b[j])
		}
		prev, cur = cur, prev
	}
	return prev[m-1]
}

// CDTW returns DTW constrained to a Sakoe–Chiba band of half-width w: cell
// (i, j) is admissible only when |i·m/n − j| ≤ w after index scaling. This is
// the classical fast approximation discussed in Related Work [26]–[28].
// A band too narrow to connect the corners returns +Inf.
func CDTW(a, b geo.Trajectory, w int) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	if len(a) == 0 || len(b) == 0 {
		return math.Inf(1)
	}
	n, m := len(a), len(b)
	inf := math.Inf(1)
	prev := make([]float64, m)
	cur := make([]float64, m)

	band := func(i int) (lo, hi int) {
		// Scale the diagonal for unequal lengths, then widen by w.
		c := i * (m - 1)
		if n > 1 {
			c /= (n - 1)
		}
		lo = c - w
		hi = c + w
		if lo < 0 {
			lo = 0
		}
		if hi > m-1 {
			hi = m - 1
		}
		return lo, hi
	}

	for j := range prev {
		prev[j] = inf
	}
	lo0, hi0 := band(0)
	if lo0 == 0 {
		prev[0] = a[0].Dist(b[0])
		for j := 1; j <= hi0; j++ {
			prev[j] = prev[j-1] + a[0].Dist(b[j])
		}
	}
	for i := 1; i < n; i++ {
		for j := range cur {
			cur[j] = inf
		}
		lo, hi := band(i)
		for j := lo; j <= hi; j++ {
			best := prev[j]
			if j > 0 {
				if prev[j-1] < best {
					best = prev[j-1]
				}
				if cur[j-1] < best {
					best = cur[j-1]
				}
			}
			if math.IsInf(best, 1) {
				continue
			}
			cur[j] = best + a[i].Dist(b[j])
		}
		prev, cur = cur, prev
	}
	return prev[m-1]
}

// Frechet returns the discrete Fréchet distance following the recurrence of
// Equation 1:
//
//	F[i][j] = max(min(F[i-1][j], F[i][j-1], F[i-1][j-1]), d(a_i, b_j))
//
// Empty-side conventions match DTW.
func Frechet(a, b geo.Trajectory) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	if len(a) == 0 || len(b) == 0 {
		return math.Inf(1)
	}
	if len(b) > len(a) {
		a, b = b, a
	}
	m := len(b)
	prev := make([]float64, m)
	cur := make([]float64, m)

	prev[0] = a[0].Dist(b[0])
	for j := 1; j < m; j++ {
		prev[j] = math.Max(prev[j-1], a[0].Dist(b[j]))
	}
	for i := 1; i < len(a); i++ {
		cur[0] = math.Max(prev[0], a[i].Dist(b[0]))
		for j := 1; j < m; j++ {
			best := prev[j]
			if prev[j-1] < best {
				best = prev[j-1]
			}
			if cur[j-1] < best {
				best = cur[j-1]
			}
			d := a[i].Dist(b[j])
			if d > best {
				cur[j] = d
			} else {
				cur[j] = best
			}
		}
		prev, cur = cur, prev
	}
	return prev[m-1]
}

// Hausdorff returns the (symmetric) Hausdorff distance
// max(h(a, b), h(b, a)) where h(a, b) = max_i min_j d(a_i, b_j).
func Hausdorff(a, b geo.Trajectory) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	if len(a) == 0 || len(b) == 0 {
		return math.Inf(1)
	}
	return math.Max(directedHausdorff(a, b), directedHausdorff(b, a))
}

func directedHausdorff(a, b geo.Trajectory) float64 {
	var worst float64
	for _, p := range a {
		best := math.Inf(1)
		for _, q := range b {
			if d := p.SqDist(q); d < best {
				best = d
				//lint:ignore floatcompare early exit on an exactly-zero squared distance (coincident points); a near-zero miss only skips the shortcut
				if best == 0 {
					break
				}
			}
		}
		if best > worst {
			worst = best
		}
	}
	return math.Sqrt(worst)
}

// ERP returns the Edit distance with Real Penalty [17] using gap as the
// reference point g: the cost of aligning a point against a gap is its
// distance to g, making ERP a metric.
func ERP(a, b geo.Trajectory, gap geo.Point) float64 {
	n, m := len(a), len(b)
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	prev[0] = 0
	for j := 1; j <= m; j++ {
		prev[j] = prev[j-1] + b[j-1].Dist(gap)
	}
	for i := 1; i <= n; i++ {
		cur[0] = prev[0] + a[i-1].Dist(gap)
		for j := 1; j <= m; j++ {
			match := prev[j-1] + a[i-1].Dist(b[j-1])
			delA := prev[j] + a[i-1].Dist(gap)
			delB := cur[j-1] + b[j-1].Dist(gap)
			cur[j] = math.Min(match, math.Min(delA, delB))
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// EDR returns the Edit Distance on Real sequences: the minimum number of
// edit operations to transform a into b, where two points "match" when both
// coordinate differences are within eps.
func EDR(a, b geo.Trajectory, eps float64) float64 {
	n, m := len(a), len(b)
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = float64(j)
	}
	for i := 1; i <= n; i++ {
		cur[0] = float64(i)
		for j := 1; j <= m; j++ {
			var sub float64
			if math.Abs(a[i-1].X-b[j-1].X) > eps || math.Abs(a[i-1].Y-b[j-1].Y) > eps {
				sub = 1
			}
			cur[j] = math.Min(prev[j-1]+sub, math.Min(prev[j]+1, cur[j-1]+1))
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// LCSS returns the Longest Common SubSequence dissimilarity: 1 − LCSS/min(n, m),
// where two points match when both coordinate differences are within eps.
// Like EDR it is robust to outliers; it is provided beyond the paper's
// three evaluation distances because it is a standard member of this
// literature's distance families.
func LCSS(a, b geo.Trajectory, eps float64) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		if n == m {
			return 0
		}
		return 1
	}
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			if math.Abs(a[i-1].X-b[j-1].X) <= eps && math.Abs(a[i-1].Y-b[j-1].Y) <= eps {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	lcss := prev[m]
	den := n
	if m < n {
		den = m
	}
	return 1 - float64(lcss)/float64(den)
}

// LowerBoundFirst returns the Euclidean distance between the first points of
// a and b — by Lemma 1 a lower bound of both DTW(a, b) and Frechet(a, b).
func LowerBoundFirst(a, b geo.Trajectory) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	return a.First().Dist(b.First())
}

// LowerBoundLast returns the Euclidean distance between the last points of
// a and b, the symmetric lower bound of Lemma 1.
func LowerBoundLast(a, b geo.Trajectory) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	return a.Last().Dist(b.Last())
}

// LowerBound returns the tighter of the first-point and last-point lower
// bounds.
func LowerBound(a, b geo.Trajectory) float64 {
	return math.Max(LowerBoundFirst(a, b), LowerBoundLast(a, b))
}
