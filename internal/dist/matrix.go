package dist

import (
	"math"
	"runtime"
	"sync"

	"traj2hash/internal/geo"
)

// Matrix computes the symmetric pairwise distance matrix D over ts using
// distance function f, parallelized over a worker pool. This replaces the
// paper's multi-hour, 20-process ground-truth computation (Section I) with
// an in-process equivalent: identical semantics, bounded by runtime.NumCPU.
func Matrix(f Func, ts []geo.Trajectory) [][]float64 {
	return MatrixWorkers(f, ts, runtime.NumCPU())
}

// MatrixWorkers is Matrix with an explicit worker count (minimum 1).
func MatrixWorkers(f Func, ts []geo.Trajectory, workers int) [][]float64 {
	n := len(ts)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	if workers < 1 {
		workers = 1
	}
	// Distribute rows; row i costs ~(n-i) cells, so hand rows out via a
	// shared counter for natural load balancing.
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				//lint:ignore deferunlock work-counter critical section inside the fetch loop; a deferred unlock would serialize the workers for their whole lifetime
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				for j := i + 1; j < n; j++ {
					v := Distance(f, ts[i], ts[j])
					d[i][j] = v
					d[j][i] = v
				}
			}
		}()
	}
	wg.Wait()
	return d
}

// CrossMatrix computes the rectangular distance matrix between queries qs and
// database ts: out[i][j] = f(qs[i], ts[j]).
func CrossMatrix(f Func, qs, ts []geo.Trajectory) [][]float64 {
	workers := runtime.NumCPU()
	out := make([][]float64, len(qs))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				//lint:ignore deferunlock work-counter critical section inside the fetch loop; a deferred unlock would serialize the workers for their whole lifetime
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(qs) {
					return
				}
				row := make([]float64, len(ts))
				for j := range ts {
					row[j] = Distance(f, qs[i], ts[j])
				}
				out[i] = row
			}
		}()
	}
	wg.Wait()
	return out
}

// Similarity converts a distance matrix into the supervision similarity
// matrix of Section IV-F:
//
//	S_ij = exp(-θ·D_ij) / max_kl exp(-θ·D_kl)
//
// Because exp(-θ·d) is maximized at the minimum distance (the diagonal,
// d = 0), the normalizer is exp(0) = 1 for a proper distance matrix; the
// general form is kept for robustness with matrices lacking a zero diagonal.
func Similarity(d [][]float64, theta float64) [][]float64 {
	maxExp := math.Inf(-1)
	for _, row := range d {
		for _, v := range row {
			if e := math.Exp(-theta * v); e > maxExp {
				maxExp = e
			}
		}
	}
	if maxExp <= 0 || math.IsInf(maxExp, 0) || math.IsNaN(maxExp) {
		maxExp = 1
	}
	s := make([][]float64, len(d))
	for i, row := range d {
		s[i] = make([]float64, len(row))
		for j, v := range row {
			s[i][j] = math.Exp(-theta*v) / maxExp
		}
	}
	return s
}

// MeanOffDiagonal returns the mean of the off-diagonal entries of a square
// matrix — handy for choosing θ so that exp(-θ·D) is well spread: a common
// choice is θ = 1/mean(D).
func MeanOffDiagonal(d [][]float64) float64 {
	var sum float64
	var n int
	for i, row := range d {
		for j, v := range row {
			if i == j {
				continue
			}
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
