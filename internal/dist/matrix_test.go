package dist

import (
	"math"
	"math/rand"
	"testing"

	"traj2hash/internal/geo"
)

func TestMatrixSymmetricZeroDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	ts := make([]geo.Trajectory, 12)
	for i := range ts {
		ts[i] = randTraj(rng, 5+rng.Intn(10))
	}
	d := Matrix(DTWDist, ts)
	for i := range d {
		if d[i][i] != 0 {
			t.Errorf("diagonal [%d][%d] = %v", i, i, d[i][i])
		}
		for j := range d {
			if d[i][j] != d[j][i] {
				t.Errorf("asymmetric at (%d,%d): %v vs %v", i, j, d[i][j], d[j][i])
			}
		}
	}
}

func TestMatrixMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ts := make([]geo.Trajectory, 8)
	for i := range ts {
		ts[i] = randTraj(rng, 6)
	}
	par := MatrixWorkers(FrechetDist, ts, 4)
	seq := MatrixWorkers(FrechetDist, ts, 1)
	for i := range par {
		for j := range par {
			if par[i][j] != seq[i][j] {
				t.Errorf("parallel != sequential at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatrixWorkersClamped(t *testing.T) {
	ts := []geo.Trajectory{{{X: 0}}, {{X: 1}}}
	d := MatrixWorkers(DTWDist, ts, 0) // clamps to 1
	if d[0][1] != 1 {
		t.Errorf("d[0][1] = %v", d[0][1])
	}
}

func TestCrossMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	qs := []geo.Trajectory{randTraj(rng, 5), randTraj(rng, 7)}
	ts := []geo.Trajectory{randTraj(rng, 6), randTraj(rng, 4), randTraj(rng, 9)}
	out := CrossMatrix(DTWDist, qs, ts)
	if len(out) != 2 || len(out[0]) != 3 {
		t.Fatalf("shape = %dx%d", len(out), len(out[0]))
	}
	for i := range qs {
		for j := range ts {
			if want := DTW(qs[i], ts[j]); out[i][j] != want {
				t.Errorf("out[%d][%d] = %v, want %v", i, j, out[i][j], want)
			}
		}
	}
}

func TestSimilarityRangeAndOrder(t *testing.T) {
	d := [][]float64{
		{0, 1, 4},
		{1, 0, 2},
		{4, 2, 0},
	}
	s := Similarity(d, 0.5)
	for i := range s {
		if !almostEqual(s[i][i], 1, 1e-12) {
			t.Errorf("diagonal similarity = %v", s[i][i])
		}
		for j := range s {
			if s[i][j] < 0 || s[i][j] > 1+1e-12 {
				t.Errorf("similarity out of range: %v", s[i][j])
			}
		}
	}
	// Larger distance => smaller similarity.
	if !(s[0][1] > s[0][2]) {
		t.Errorf("order not preserved: %v vs %v", s[0][1], s[0][2])
	}
}

func TestSimilarityInfinityRobust(t *testing.T) {
	d := [][]float64{{0, math.Inf(1)}, {math.Inf(1), 0}}
	s := Similarity(d, 1)
	if s[0][1] != 0 {
		t.Errorf("similarity of Inf distance = %v", s[0][1])
	}
	if math.IsNaN(s[0][0]) {
		t.Error("NaN in similarity")
	}
}

func TestMeanOffDiagonal(t *testing.T) {
	d := [][]float64{
		{0, 2, 4},
		{2, 0, 6},
		{4, 6, 0},
	}
	if got := MeanOffDiagonal(d); !almostEqual(got, 4, 1e-12) {
		t.Errorf("MeanOffDiagonal = %v", got)
	}
	if got := MeanOffDiagonal(nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := MeanOffDiagonal([][]float64{{5}}); got != 0 {
		t.Errorf("1x1 = %v", got)
	}
}
