package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"traj2hash/internal/geo"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

// randTraj generates a random-walk trajectory with n points.
func randTraj(rng *rand.Rand, n int) geo.Trajectory {
	t := make(geo.Trajectory, n)
	p := geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
	for i := 0; i < n; i++ {
		p = p.Add(geo.Point{X: rng.NormFloat64(), Y: rng.NormFloat64()})
		t[i] = p
	}
	return t
}

func TestDTWHandComputed(t *testing.T) {
	// a = (0,0),(1,0); b = (0,0),(1,0),(2,0).
	// Optimal path: match (0,0)-(0,0)=0, (1,0)-(1,0)=0, (1,0)-(2,0)=1. DTW=1.
	a := geo.Trajectory{{X: 0}, {X: 1}}
	b := geo.Trajectory{{X: 0}, {X: 1}, {X: 2}}
	if got := DTW(a, b); !almostEqual(got, 1, 1e-12) {
		t.Errorf("DTW = %v, want 1", got)
	}
}

func TestDTWIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randTraj(rng, 20)
	if got := DTW(a, a); !almostEqual(got, 0, 1e-9) {
		t.Errorf("DTW(a,a) = %v", got)
	}
}

func TestDTWSinglePoints(t *testing.T) {
	a := geo.Trajectory{{X: 0, Y: 0}}
	b := geo.Trajectory{{X: 3, Y: 4}}
	if got := DTW(a, b); !almostEqual(got, 5, 1e-12) {
		t.Errorf("DTW single = %v", got)
	}
	// One point vs many: sum of distances (every b point matches the single a point).
	c := geo.Trajectory{{X: 3, Y: 4}, {X: 3, Y: 4}}
	if got := DTW(a, c); !almostEqual(got, 10, 1e-12) {
		t.Errorf("DTW 1-vs-2 = %v", got)
	}
}

func TestDTWEmpty(t *testing.T) {
	a := geo.Trajectory{{X: 1}}
	if got := DTW(nil, a); !math.IsInf(got, 1) {
		t.Errorf("DTW(nil,a) = %v", got)
	}
	if got := DTW(nil, nil); got != 0 {
		t.Errorf("DTW(nil,nil) = %v", got)
	}
}

func TestFrechetHandComputed(t *testing.T) {
	// Parallel segments distance 1 apart: Frechet = 1.
	a := geo.Trajectory{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}}
	b := geo.Trajectory{{X: 0, Y: 1}, {X: 1, Y: 1}, {X: 2, Y: 1}}
	if got := Frechet(a, b); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Frechet = %v, want 1", got)
	}
}

func TestFrechetVsMaxPointwise(t *testing.T) {
	// For equal-length aligned trajectories, Frechet <= max pointwise distance.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		a := randTraj(rng, 15)
		b := randTraj(rng, 15)
		var maxPt float64
		for i := range a {
			if d := a[i].Dist(b[i]); d > maxPt {
				maxPt = d
			}
		}
		if got := Frechet(a, b); got > maxPt+1e-9 {
			t.Errorf("Frechet %v exceeds aligned max %v", got, maxPt)
		}
	}
}

func TestHausdorffHandComputed(t *testing.T) {
	a := geo.Trajectory{{X: 0, Y: 0}, {X: 1, Y: 0}}
	b := geo.Trajectory{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 5}}
	// h(a,b)=0 (all a points in b); h(b,a)=5 from (1,5) to (1,0).
	if got := Hausdorff(a, b); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Hausdorff = %v, want 5", got)
	}
}

func TestHausdorffSubsetZero(t *testing.T) {
	a := geo.Trajectory{{X: 0, Y: 0}, {X: 1, Y: 1}}
	if got := Hausdorff(a, a.Reverse()); !almostEqual(got, 0, 1e-12) {
		t.Errorf("Hausdorff(a, reverse(a)) = %v", got)
	}
}

func TestERPHandComputed(t *testing.T) {
	// ERP with gap at origin; a = (1,0); b = empty: cost = |a - gap| = 1.
	a := geo.Trajectory{{X: 1, Y: 0}}
	if got := ERP(a, nil, geo.Point{}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("ERP vs empty = %v", got)
	}
	// Identical trajectories: 0.
	b := geo.Trajectory{{X: 1, Y: 0}, {X: 2, Y: 0}}
	if got := ERP(b, b, geo.Point{}); !almostEqual(got, 0, 1e-12) {
		t.Errorf("ERP identical = %v", got)
	}
}

func TestERPTriangleInequality(t *testing.T) {
	// ERP is a metric; check the triangle inequality on random triples.
	rng := rand.New(rand.NewSource(3))
	gap := geo.Point{}
	for trial := 0; trial < 30; trial++ {
		a := randTraj(rng, 5+rng.Intn(8))
		b := randTraj(rng, 5+rng.Intn(8))
		c := randTraj(rng, 5+rng.Intn(8))
		ab := ERP(a, b, gap)
		bc := ERP(b, c, gap)
		ac := ERP(a, c, gap)
		if ac > ab+bc+1e-9 {
			t.Errorf("triangle violated: %v > %v + %v", ac, ab, bc)
		}
	}
}

func TestEDRHandComputed(t *testing.T) {
	a := geo.Trajectory{{X: 0}, {X: 10}}
	b := geo.Trajectory{{X: 0}}
	// (0) matches (0), then one deletion.
	if got := EDR(a, b, 0.5); !almostEqual(got, 1, 1e-12) {
		t.Errorf("EDR = %v, want 1", got)
	}
	if got := EDR(a, a, 0.5); got != 0 {
		t.Errorf("EDR identical = %v", got)
	}
}

func TestEDRBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n, m := 3+rng.Intn(10), 3+rng.Intn(10)
		a := randTraj(rng, n)
		b := randTraj(rng, m)
		got := EDR(a, b, 1.0)
		lo := math.Abs(float64(n - m))
		hi := float64(max(n, m))
		if got < lo-1e-9 || got > hi+1e-9 {
			t.Errorf("EDR %v outside [%v, %v]", got, lo, hi)
		}
	}
}

func TestLCSSHandComputed(t *testing.T) {
	a := geo.Trajectory{{X: 0}, {X: 1}, {X: 2}}
	b := geo.Trajectory{{X: 0}, {X: 1}, {X: 9}}
	// LCSS length 2, min length 3: dissimilarity 1 - 2/3.
	if got := LCSS(a, b, 0.5); !almostEqual(got, 1.0/3.0, 1e-12) {
		t.Errorf("LCSS = %v", got)
	}
	if got := LCSS(a, a, 0.5); got != 0 {
		t.Errorf("LCSS identical = %v", got)
	}
}

func TestLCSSProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 50; trial++ {
		p := genPair(rng)
		v := LCSS(p.a, p.b, 1.0)
		if v < 0 || v > 1 {
			t.Fatalf("LCSS out of [0,1]: %v", v)
		}
		// Symmetry.
		if w := LCSS(p.b, p.a, 1.0); !almostEqual(v, w, 1e-12) {
			t.Fatalf("LCSS asymmetric: %v vs %v", v, w)
		}
		// Monotone in eps: a larger threshold can only match more.
		if wide := LCSS(p.a, p.b, 5.0); wide > v+1e-12 {
			t.Fatalf("LCSS not monotone in eps: %v (eps=1) vs %v (eps=5)", v, wide)
		}
	}
	// Empty-side conventions.
	if got := LCSS(nil, nil, 1); got != 0 {
		t.Errorf("LCSS(nil,nil) = %v", got)
	}
	if got := LCSS(nil, geo.Trajectory{{X: 1}}, 1); got != 1 {
		t.Errorf("LCSS(nil,a) = %v", got)
	}
}

func TestCDTWMatchesDTWWideBand(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		a := randTraj(rng, 10+rng.Intn(10))
		b := randTraj(rng, 10+rng.Intn(10))
		w := len(a) + len(b) // band wider than the matrix: exact DTW
		if got, want := CDTW(a, b, w), DTW(a, b); !almostEqual(got, want, 1e-9) {
			t.Errorf("CDTW wide band %v != DTW %v", got, want)
		}
	}
}

func TestCDTWUpperBoundsDTW(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		a := randTraj(rng, 20)
		b := randTraj(rng, 20)
		exact := DTW(a, b)
		for _, w := range []int{1, 3, 5} {
			if got := CDTW(a, b, w); got < exact-1e-9 {
				t.Errorf("CDTW(w=%d) %v below exact %v", w, got, exact)
			}
		}
	}
}

func TestCDTWEmpty(t *testing.T) {
	if got := CDTW(nil, nil, 1); got != 0 {
		t.Errorf("CDTW(nil,nil) = %v", got)
	}
	if got := CDTW(nil, geo.Trajectory{{X: 1}}, 1); !math.IsInf(got, 1) {
		t.Errorf("CDTW(nil,a) = %v", got)
	}
}

// --- property tests for the paper's lemmas ---

type trajPair struct{ a, b geo.Trajectory }

func genPair(rng *rand.Rand) trajPair {
	return trajPair{
		a: randTraj(rng, 2+rng.Intn(20)),
		b: randTraj(rng, 2+rng.Intn(20)),
	}
}

// TestLemma1LowerBound checks d(first points) <= DTW and Frechet, and the
// same for last points (Lemma 1).
func TestLemma1LowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		p := genPair(rng)
		lbF := LowerBoundFirst(p.a, p.b)
		lbL := LowerBoundLast(p.a, p.b)
		lb := LowerBound(p.a, p.b)
		dtw := DTW(p.a, p.b)
		fr := Frechet(p.a, p.b)
		if lbF > dtw+1e-9 || lbL > dtw+1e-9 || lb > dtw+1e-9 {
			t.Fatalf("trial %d: lower bound (%v,%v) exceeds DTW %v", trial, lbF, lbL, dtw)
		}
		if lbF > fr+1e-9 || lbL > fr+1e-9 {
			t.Fatalf("trial %d: lower bound exceeds Frechet %v", trial, fr)
		}
	}
}

// TestLemma2ReverseSymmetry checks D(a, b) == D(reverse(a), reverse(b)) for
// DTW, Frechet, and Hausdorff (Lemma 2).
func TestLemma2ReverseSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		p := genPair(rng)
		ar, br := p.a.Reverse(), p.b.Reverse()
		for _, f := range []Func{DTWDist, FrechetDist, HausdorffDist} {
			if !ReverseSymmetric(f) {
				t.Fatalf("%v should report reverse symmetric", f)
			}
			fwd := Distance(f, p.a, p.b)
			rev := Distance(f, ar, br)
			if !almostEqual(fwd, rev, 1e-9*math.Max(1, fwd)) {
				t.Fatalf("trial %d %v: forward %v != reversed %v", trial, f, fwd, rev)
			}
		}
	}
}

// TestSymmetry checks D(a, b) == D(b, a) for all distance functions.
func TestSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		p := genPair(rng)
		for _, f := range []Func{DTWDist, FrechetDist, HausdorffDist, ERPDist, EDRDist} {
			ab := Distance(f, p.a, p.b)
			ba := Distance(f, p.b, p.a)
			if !almostEqual(ab, ba, 1e-9*math.Max(1, ab)) {
				t.Fatalf("trial %d %v: %v != %v", trial, f, ab, ba)
			}
		}
	}
}

// TestIdentity checks D(a, a) == 0 for all distance functions.
func TestIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 50; trial++ {
		a := randTraj(rng, 2+rng.Intn(20))
		for _, f := range []Func{DTWDist, FrechetDist, HausdorffDist, ERPDist, EDRDist} {
			if got := Distance(f, a, a); !almostEqual(got, 0, 1e-9) {
				t.Fatalf("%v(a,a) = %v", f, got)
			}
		}
	}
}

// TestFrechetDominatesHausdorff: Hausdorff(a,b) <= Frechet(a,b) always.
func TestFrechetDominatesHausdorff(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		p := genPair(rng)
		h := Hausdorff(p.a, p.b)
		f := Frechet(p.a, p.b)
		if h > f+1e-9 {
			t.Fatalf("trial %d: Hausdorff %v > Frechet %v", trial, h, f)
		}
	}
}

// TestFrechetNonNegativeAndAchieved: Frechet equals some pointwise distance.
func TestFrechetIsAPointDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		p := genPair(rng)
		f := Frechet(p.a, p.b)
		found := false
		for _, u := range p.a {
			for _, v := range p.b {
				if almostEqual(u.Dist(v), f, 1e-9) {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("Frechet %v not a pointwise distance", f)
		}
	}
}

func TestParseFunc(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Func
	}{{"dtw", DTWDist}, {"DTW", DTWDist}, {"frechet", FrechetDist}, {"hausdorff", HausdorffDist}, {"erp", ERPDist}, {"edr", EDRDist}} {
		got, err := ParseFunc(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseFunc(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseFunc("nope"); err == nil {
		t.Error("ParseFunc accepted unknown name")
	}
}

func TestFuncString(t *testing.T) {
	if DTWDist.String() != "DTW" || FrechetDist.String() != "Frechet" || HausdorffDist.String() != "Hausdorff" {
		t.Error("unexpected Func names")
	}
	if Func(99).String() == "" {
		t.Error("unknown Func should still format")
	}
}

func TestQuickLowerBoundNeverNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := genPair(rng)
		return LowerBound(p.a, p.b) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
