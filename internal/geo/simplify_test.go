package geo

import (
	"math/rand"
	"testing"
)

func TestSimplifyStraightLine(t *testing.T) {
	// Collinear points collapse to the endpoints.
	tr := Trajectory{{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}}
	s := tr.Simplify(0.1)
	if len(s) != 2 || s[0] != tr[0] || s[1] != tr[4] {
		t.Errorf("Simplify = %v", s)
	}
}

func TestSimplifyKeepsCorners(t *testing.T) {
	tr := Trajectory{{0, 0}, {5, 0}, {5, 5}}
	s := tr.Simplify(0.5)
	if len(s) != 3 {
		t.Fatalf("corner dropped: %v", s)
	}
	if s[1] != (Point{5, 0}) {
		t.Errorf("wrong corner kept: %v", s[1])
	}
}

func TestSimplifyToleranceBound(t *testing.T) {
	// Every original point stays within tolerance of the simplified
	// polyline.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		tr := make(Trajectory, 30)
		p := Point{}
		for i := range tr {
			p = p.Add(Point{rng.NormFloat64() * 10, rng.NormFloat64() * 10})
			tr[i] = p
		}
		tol := 5.0
		s := tr.Simplify(tol)
		if len(s) < 2 {
			t.Fatal("simplified below 2 points")
		}
		if s[0] != tr[0] || s[len(s)-1] != tr[len(tr)-1] {
			t.Fatal("endpoints not preserved")
		}
		for _, q := range tr {
			best := 1e18
			for i := 0; i+1 < len(s); i++ {
				if d := perpendicularDistance(q, s[i], s[i+1]); d < best {
					best = d
				}
			}
			if best > tol+1e-9 {
				t.Fatalf("trial %d: point %v deviates %v > %v", trial, q, best, tol)
			}
		}
	}
}

func TestSimplifyMonotoneInTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := make(Trajectory, 50)
	p := Point{}
	for i := range tr {
		p = p.Add(Point{rng.NormFloat64() * 10, rng.NormFloat64() * 10})
		tr[i] = p
	}
	prev := len(tr) + 1
	for _, tol := range []float64{0.5, 2, 8, 32} {
		n := len(tr.Simplify(tol))
		if n > prev {
			t.Errorf("tolerance %v kept %d > previous %d", tol, n, prev)
		}
		prev = n
	}
}

func TestSimplifyDegenerate(t *testing.T) {
	short := Trajectory{{0, 0}, {1, 1}}
	if got := short.Simplify(1); len(got) != 2 {
		t.Errorf("short = %v", got)
	}
	// Zero tolerance returns a copy unchanged.
	tr := Trajectory{{0, 0}, {1, 5}, {2, 0}}
	got := tr.Simplify(0)
	if len(got) != 3 {
		t.Errorf("zero tolerance = %v", got)
	}
	got[0] = Point{9, 9}
	if tr[0] == (Point{9, 9}) {
		t.Error("Simplify shares storage with receiver")
	}
	// Duplicate points (zero-length chord).
	dup := Trajectory{{1, 1}, {1, 1}, {1, 1}}
	if got := dup.Simplify(0.5); len(got) != 2 {
		t.Errorf("duplicates = %v", got)
	}
}

func TestPerpendicularDistance(t *testing.T) {
	if d := perpendicularDistance(Point{0, 1}, Point{-1, 0}, Point{1, 0}); !almostEqual(d, 1, 1e-12) {
		t.Errorf("above segment = %v", d)
	}
	// Beyond the endpoint: distance to the endpoint, not the line.
	if d := perpendicularDistance(Point{3, 0}, Point{-1, 0}, Point{1, 0}); !almostEqual(d, 2, 1e-12) {
		t.Errorf("beyond endpoint = %v", d)
	}
	// Degenerate segment.
	if d := perpendicularDistance(Point{3, 4}, Point{0, 0}, Point{0, 0}); !almostEqual(d, 5, 1e-12) {
		t.Errorf("degenerate = %v", d)
	}
}
