package geo

import "math"

// Simplify returns the trajectory simplified with the Douglas–Peucker
// algorithm at the given tolerance (meters): the minimal subsequence whose
// maximum perpendicular deviation from the original polyline is at most
// tolerance. Endpoints are always kept. A common preprocessing step when
// importing dense GPS traces (the trajectory-compression line of work the
// paper cites as [7], [8]).
func (t Trajectory) Simplify(tolerance float64) Trajectory {
	if len(t) <= 2 || tolerance <= 0 {
		return t.Clone()
	}
	keep := make([]bool, len(t))
	keep[0] = true
	keep[len(t)-1] = true
	type span struct{ lo, hi int }
	stack := []span{{0, len(t) - 1}}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.hi-s.lo < 2 {
			continue
		}
		// Farthest interior point from the chord lo→hi.
		var worst float64
		worstIdx := -1
		for i := s.lo + 1; i < s.hi; i++ {
			d := perpendicularDistance(t[i], t[s.lo], t[s.hi])
			if d > worst {
				worst = d
				worstIdx = i
			}
		}
		if worst > tolerance {
			keep[worstIdx] = true
			stack = append(stack, span{s.lo, worstIdx}, span{worstIdx, s.hi})
		}
	}
	out := make(Trajectory, 0, len(t))
	for i, k := range keep {
		if k {
			out = append(out, t[i])
		}
	}
	return out
}

// perpendicularDistance returns the distance from p to the segment a–b
// (the distance to the nearer endpoint when the projection falls outside).
func perpendicularDistance(p, a, b Point) float64 {
	ab := b.Sub(a)
	len2 := ab.X*ab.X + ab.Y*ab.Y
	//lint:ignore floatcompare guards the division below against an exactly-degenerate segment; a near-zero length still divides finitely
	if len2 == 0 {
		return p.Dist(a)
	}
	tt := ((p.X-a.X)*ab.X + (p.Y-a.Y)*ab.Y) / len2
	tt = math.Max(0, math.Min(1, tt))
	return p.Dist(a.Add(ab.Scale(tt)))
}
