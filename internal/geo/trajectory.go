package geo

//lint:file-ignore floatcompare every float equality in this file guards a division or resample step against an exactly-degenerate input (zero length, zero variance); near-zero values still compute finitely, so exact sentinels are the intended semantics

import (
	"errors"
	"fmt"
	"math"
)

// Trajectory is a sequence of planar points, the spatial part of a GPS
// trajectory (Definition 1; the paper discards timestamps).
type Trajectory []Point

// ErrTooShort is returned by Validate for trajectories below the minimum
// length accepted by the preprocessing pipeline.
var ErrTooShort = errors.New("geo: trajectory has fewer points than required")

// ErrNonFinite is returned by Validate when a coordinate is NaN or infinite.
var ErrNonFinite = errors.New("geo: trajectory contains a non-finite coordinate")

// Len returns the number of points.
func (t Trajectory) Len() int { return len(t) }

// First returns the first point. It panics on an empty trajectory.
func (t Trajectory) First() Point { return t[0] }

// Last returns the last point. It panics on an empty trajectory.
func (t Trajectory) Last() Point { return t[len(t)-1] }

// Reverse returns a new trajectory with the point order reversed — the T^r of
// Definition 4. The receiver is not modified.
func (t Trajectory) Reverse() Trajectory {
	r := make(Trajectory, len(t))
	for i, p := range t {
		r[len(t)-1-i] = p
	}
	return r
}

// Clone returns a deep copy of the trajectory.
func (t Trajectory) Clone() Trajectory {
	c := make(Trajectory, len(t))
	copy(c, t)
	return c
}

// Validate checks the trajectory against the preprocessing rules of
// Section V-A1: at least minPoints points and finite coordinates.
func (t Trajectory) Validate(minPoints int) error {
	if len(t) < minPoints {
		return fmt.Errorf("%w: got %d, need %d", ErrTooShort, len(t), minPoints)
	}
	for i, p := range t {
		if !p.IsFinite() {
			return fmt.Errorf("%w: point %d is %v", ErrNonFinite, i, p)
		}
	}
	return nil
}

// Length returns the travelled path length (sum of consecutive segment
// lengths).
func (t Trajectory) Length() float64 {
	var sum float64
	for i := 1; i < len(t); i++ {
		sum += t[i-1].Dist(t[i])
	}
	return sum
}

// BoundingBox returns the axis-aligned bounding box of the trajectory.
// It panics on an empty trajectory.
func (t Trajectory) BoundingBox() (min, max Point) {
	min = t[0]
	max = t[0]
	for _, p := range t[1:] {
		min.X = math.Min(min.X, p.X)
		min.Y = math.Min(min.Y, p.Y)
		max.X = math.Max(max.X, p.X)
		max.Y = math.Max(max.Y, p.Y)
	}
	return min, max
}

// Centroid returns the mean point. It panics on an empty trajectory.
func (t Trajectory) Centroid() Point {
	var c Point
	for _, p := range t {
		c.X += p.X
		c.Y += p.Y
	}
	inv := 1.0 / float64(len(t))
	return Point{c.X * inv, c.Y * inv}
}

// Resample returns a trajectory with exactly n points, linearly interpolated
// at equal arc-length intervals along the original path. Degenerate inputs
// (single point or zero total length) yield n copies of the first point.
func (t Trajectory) Resample(n int) Trajectory {
	if n <= 0 {
		return Trajectory{}
	}
	if len(t) == 0 {
		return Trajectory{}
	}
	total := t.Length()
	out := make(Trajectory, n)
	if len(t) == 1 || total == 0 || n == 1 {
		for i := range out {
			out[i] = t[0]
		}
		return out
	}
	step := total / float64(n-1)
	out[0] = t[0]
	seg := 0
	segStart := 0.0
	segLen := t[0].Dist(t[1])
	for i := 1; i < n; i++ {
		target := step * float64(i)
		for segStart+segLen < target && seg < len(t)-2 {
			segStart += segLen
			seg++
			segLen = t[seg].Dist(t[seg+1])
		}
		if segLen == 0 {
			out[i] = t[seg]
			continue
		}
		frac := (target - segStart) / segLen
		if frac > 1 {
			frac = 1
		}
		out[i] = t[seg].Lerp(t[seg+1], frac)
	}
	out[n-1] = t[len(t)-1]
	return out
}

// Stats holds the per-coordinate mean and standard deviation of a set of
// trajectories, used for the Gaussian normalization of Equation 10.
type Stats struct {
	MeanX, MeanY float64
	StdX, StdY   float64
}

// ComputeStats estimates coordinate statistics over all points of all
// trajectories. Standard deviations of zero are clamped to 1 so that
// normalization is always well defined.
func ComputeStats(ts []Trajectory) Stats {
	var n float64
	var sx, sy, sxx, syy float64
	for _, t := range ts {
		for _, p := range t {
			sx += p.X
			sy += p.Y
			sxx += p.X * p.X
			syy += p.Y * p.Y
			n++
		}
	}
	if n == 0 {
		return Stats{StdX: 1, StdY: 1}
	}
	mx := sx / n
	my := sy / n
	vx := sxx/n - mx*mx
	vy := syy/n - my*my
	if vx < 0 {
		vx = 0
	}
	if vy < 0 {
		vy = 0
	}
	st := Stats{MeanX: mx, MeanY: my, StdX: math.Sqrt(vx), StdY: math.Sqrt(vy)}
	if st.StdX == 0 {
		st.StdX = 1
	}
	if st.StdY == 0 {
		st.StdY = 1
	}
	return st
}

// Normalize returns the point mapped to zero mean and unit variance under the
// statistics — the Normalize(.) of Equation 10.
func (s Stats) Normalize(p Point) Point {
	return Point{X: (p.X - s.MeanX) / s.StdX, Y: (p.Y - s.MeanY) / s.StdY}
}

// NormalizeTrajectory applies Normalize to every point, returning a new
// trajectory.
func (s Stats) NormalizeTrajectory(t Trajectory) Trajectory {
	out := make(Trajectory, len(t))
	for i, p := range t {
		out[i] = s.Normalize(p)
	}
	return out
}

// Denormalize inverts Normalize.
func (s Stats) Denormalize(p Point) Point {
	return Point{X: p.X*s.StdX + s.MeanX, Y: p.Y*s.StdY + s.MeanY}
}
