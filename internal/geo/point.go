// Package geo provides the basic geometric types used throughout the
// repository: GPS points, trajectories, bounding boxes, and the elementary
// operations the paper's preliminaries (Section III) rely on — Euclidean
// point distance, trajectory reversal (Definition 4), and Gaussian
// normalization of coordinates (Equation 10).
//
// Coordinates are stored as (X, Y) pairs. For synthetic datasets these are
// meters in a local planar frame; for raw GPS data they are (longitude,
// latitude) projected with ProjectEquirectangular before any distance is
// computed, so that all distance functions operate on a locally Euclidean
// plane, matching the preprocessing of NeuTraj that the paper follows.
package geo

import (
	"fmt"
	"math"
)

// Point is a single location in a planar frame.
type Point struct {
	X float64 // easting / longitude-derived coordinate
	Y float64 // northing / latitude-derived coordinate
}

// Dist returns the Euclidean distance between two points, the d(.,.) of
// Definition 3.
func (p Point) Dist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// SqDist returns the squared Euclidean distance, useful when only relative
// order matters and the square root can be avoided.
func (p Point) SqDist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Lerp linearly interpolates between p and q: result = p + t*(q-p).
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + t*(q.X-p.X), p.Y + t*(q.Y-p.Y)}
}

// IsFinite reports whether both coordinates are finite numbers.
func (p Point) IsFinite() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// earthRadiusMeters is the mean Earth radius used by the equirectangular
// projection.
const earthRadiusMeters = 6371000.0

// ProjectEquirectangular converts a (longitude, latitude) pair in degrees
// into local planar meters relative to a reference latitude refLat (degrees).
// Over city-scale extents (tens of kilometers) the distortion is negligible,
// which is the same assumption the trajectory-similarity literature makes
// when it grids a city into 50 m cells.
func ProjectEquirectangular(lon, lat, refLat float64) Point {
	rad := math.Pi / 180.0
	x := earthRadiusMeters * lon * rad * math.Cos(refLat*rad)
	y := earthRadiusMeters * lat * rad
	return Point{X: x, Y: y}
}
