package geo

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPointDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-1, -1}, Point{2, 3}, 5},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Dist(%v, %v) = %v, want %v", c.p, c.q, got, c.want)
		}
		if got := c.p.SqDist(c.q); !almostEqual(got, c.want*c.want, 1e-9) {
			t.Errorf("SqDist(%v, %v) = %v, want %v", c.p, c.q, got, c.want*c.want)
		}
	}
}

func TestPointDistSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		p := Point{clip(ax), clip(ay)}
		q := Point{clip(bx), clip(by)}
		return almostEqual(p.Dist(q), q.Dist(p), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clip keeps quick-generated floats in a sane range and finite.
func clip(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}

func TestPointArith(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -4}
	if got := p.Add(q); got != (Point{4, -2}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Lerp(q, 0.5); got != (Point{2, -1}) {
		t.Errorf("Lerp = %v", got)
	}
	if got := p.Lerp(q, 0); got != p {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := p.Lerp(q, 1); got != q {
		t.Errorf("Lerp(1) = %v", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !(Point{1, 2}).IsFinite() {
		t.Error("finite point reported non-finite")
	}
	bad := []Point{{math.NaN(), 0}, {0, math.NaN()}, {math.Inf(1), 0}, {0, math.Inf(-1)}}
	for _, p := range bad {
		if p.IsFinite() {
			t.Errorf("%v reported finite", p)
		}
	}
}

func TestProjectEquirectangular(t *testing.T) {
	// One degree of latitude is ~111.19 km everywhere.
	a := ProjectEquirectangular(0, 0, 41)
	b := ProjectEquirectangular(0, 1, 41)
	if d := a.Dist(b); !almostEqual(d, 111194.9, 50) {
		t.Errorf("1 degree latitude = %v m, want ~111195", d)
	}
	// One degree of longitude at latitude 41 is ~83.9 km.
	c := ProjectEquirectangular(1, 0, 41)
	if d := a.Dist(c); !almostEqual(d, 111194.9*math.Cos(41*math.Pi/180), 100) {
		t.Errorf("1 degree longitude at 41N = %v m", d)
	}
}

func TestReverse(t *testing.T) {
	tr := Trajectory{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	r := tr.Reverse()
	if r[0] != (Point{3, 3}) || r[3] != (Point{0, 0}) {
		t.Errorf("Reverse = %v", r)
	}
	// Receiver untouched.
	if tr[0] != (Point{0, 0}) {
		t.Error("Reverse modified receiver")
	}
}

func TestReverseInvolution(t *testing.T) {
	f := func(raw []float64) bool {
		tr := randomTraj(raw)
		rr := tr.Reverse().Reverse()
		if len(rr) != len(tr) {
			return false
		}
		for i := range tr {
			if tr[i] != rr[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// randomTraj builds a trajectory from a raw float slice, pairing values.
func randomTraj(raw []float64) Trajectory {
	tr := make(Trajectory, 0, len(raw)/2)
	for i := 0; i+1 < len(raw); i += 2 {
		tr = append(tr, Point{clip(raw[i]), clip(raw[i+1])})
	}
	return tr
}

func TestValidate(t *testing.T) {
	short := Trajectory{{0, 0}}
	if err := short.Validate(10); !errors.Is(err, ErrTooShort) {
		t.Errorf("want ErrTooShort, got %v", err)
	}
	bad := Trajectory{{0, 0}, {math.NaN(), 1}}
	if err := bad.Validate(1); !errors.Is(err, ErrNonFinite) {
		t.Errorf("want ErrNonFinite, got %v", err)
	}
	ok := make(Trajectory, 10)
	if err := ok.Validate(10); err != nil {
		t.Errorf("valid trajectory rejected: %v", err)
	}
}

func TestLength(t *testing.T) {
	tr := Trajectory{{0, 0}, {3, 4}, {3, 4}}
	if got := tr.Length(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Length = %v", got)
	}
	if got := (Trajectory{}).Length(); got != 0 {
		t.Errorf("empty Length = %v", got)
	}
}

func TestBoundingBoxAndCentroid(t *testing.T) {
	tr := Trajectory{{0, 10}, {-5, 2}, {7, 4}}
	min, max := tr.BoundingBox()
	if min != (Point{-5, 2}) || max != (Point{7, 10}) {
		t.Errorf("BoundingBox = %v %v", min, max)
	}
	c := tr.Centroid()
	if !almostEqual(c.X, 2.0/3.0, 1e-12) || !almostEqual(c.Y, 16.0/3.0, 1e-12) {
		t.Errorf("Centroid = %v", c)
	}
}

func TestResample(t *testing.T) {
	tr := Trajectory{{0, 0}, {10, 0}}
	rs := tr.Resample(5)
	if len(rs) != 5 {
		t.Fatalf("len = %d", len(rs))
	}
	for i, p := range rs {
		want := Point{2.5 * float64(i), 0}
		if !almostEqual(p.X, want.X, 1e-9) || !almostEqual(p.Y, 0, 1e-9) {
			t.Errorf("rs[%d] = %v, want %v", i, p, want)
		}
	}
	// Endpooints preserved on irregular input.
	irr := Trajectory{{0, 0}, {1, 5}, {2, 1}, {9, 9}}
	rs = irr.Resample(7)
	if rs[0] != irr[0] || rs[6] != irr[3] {
		t.Errorf("endpoints not preserved: %v %v", rs[0], rs[6])
	}
	// Degenerate cases.
	if got := (Trajectory{{1, 1}}).Resample(3); len(got) != 3 || got[2] != (Point{1, 1}) {
		t.Errorf("single-point resample = %v", got)
	}
	if got := (Trajectory{}).Resample(3); len(got) != 0 {
		t.Errorf("empty resample = %v", got)
	}
	if got := tr.Resample(0); len(got) != 0 {
		t.Errorf("n=0 resample = %v", got)
	}
	if got := tr.Resample(1); len(got) != 1 {
		t.Errorf("n=1 resample = %v", got)
	}
}

func TestResampleLengthPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		tr := make(Trajectory, 10+rng.Intn(20))
		p := Point{}
		for i := range tr {
			p = p.Add(Point{rng.NormFloat64(), rng.NormFloat64()})
			tr[i] = p
		}
		rs := tr.Resample(100)
		// A dense resample approximately preserves path length (sharp kinks
		// in a random walk shave a few percent off).
		if ratio := rs.Length() / tr.Length(); ratio < 0.85 || ratio > 1.001 {
			t.Errorf("trial %d: length ratio %v", trial, ratio)
		}
	}
}

func TestStatsNormalize(t *testing.T) {
	ts := []Trajectory{
		{{0, 0}, {2, 4}},
		{{4, 8}, {2, 4}},
	}
	st := ComputeStats(ts)
	if !almostEqual(st.MeanX, 2, 1e-12) || !almostEqual(st.MeanY, 4, 1e-12) {
		t.Errorf("means = %v %v", st.MeanX, st.MeanY)
	}
	n := st.Normalize(Point{2, 4})
	if !almostEqual(n.X, 0, 1e-12) || !almostEqual(n.Y, 0, 1e-12) {
		t.Errorf("Normalize(mean) = %v", n)
	}
	back := st.Denormalize(n)
	if !almostEqual(back.X, 2, 1e-9) || !almostEqual(back.Y, 4, 1e-9) {
		t.Errorf("Denormalize = %v", back)
	}
}

func TestStatsDegenerate(t *testing.T) {
	// All identical points: std clamped to 1, no NaNs.
	ts := []Trajectory{{{5, 5}, {5, 5}}}
	st := ComputeStats(ts)
	if st.StdX != 1 || st.StdY != 1 {
		t.Errorf("degenerate std = %v %v", st.StdX, st.StdY)
	}
	n := st.Normalize(Point{5, 5})
	if !n.IsFinite() {
		t.Errorf("normalize produced non-finite %v", n)
	}
	if got := ComputeStats(nil); got.StdX != 1 || got.StdY != 1 {
		t.Errorf("empty stats = %+v", got)
	}
}

func TestNormalizeRoundTrip(t *testing.T) {
	st := Stats{MeanX: 3, MeanY: -7, StdX: 2.5, StdY: 0.5}
	f := func(x, y float64) bool {
		p := Point{clip(x), clip(y)}
		q := st.Denormalize(st.Normalize(p))
		return almostEqual(p.X, q.X, 1e-6) && almostEqual(p.Y, q.Y, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeTrajectory(t *testing.T) {
	st := Stats{MeanX: 1, MeanY: 1, StdX: 2, StdY: 2}
	tr := Trajectory{{1, 1}, {3, 3}}
	n := st.NormalizeTrajectory(tr)
	if n[0] != (Point{0, 0}) || n[1] != (Point{1, 1}) {
		t.Errorf("NormalizeTrajectory = %v", n)
	}
	if tr[0] != (Point{1, 1}) {
		t.Error("receiver modified")
	}
}

func TestClone(t *testing.T) {
	tr := Trajectory{{1, 2}, {3, 4}}
	c := tr.Clone()
	c[0] = Point{9, 9}
	if tr[0] != (Point{1, 2}) {
		t.Error("Clone shares storage")
	}
}

func TestFirstLast(t *testing.T) {
	tr := Trajectory{{1, 2}, {3, 4}, {5, 6}}
	if tr.First() != (Point{1, 2}) || tr.Last() != (Point{5, 6}) {
		t.Errorf("First/Last = %v %v", tr.First(), tr.Last())
	}
}
