package experiments

import (
	"fmt"
	"io"
	"time"

	"traj2hash/internal/dist"
	"traj2hash/internal/eval"
	"traj2hash/internal/geo"
	"traj2hash/internal/topk"
)

// CDTWCell is one row of the extra cDTW study.
type CDTWCell struct {
	Dataset  string
	Method   string
	HR10     float64
	R10At50  float64
	PerQuery time.Duration
}

// ExtraCDTW is an extension experiment beyond the paper's figures: it
// quantifies the Related-Work claim that cDTW — the traditional fast DTW
// approximation [26]–[28] — trades accuracy for speed and is still
// dominated by learned embeddings. For DTW ground truth on both datasets,
// it compares cDTW at several Sakoe–Chiba widths against Traj2Hash's
// Euclidean-space search, on HR@10, R10@50, and per-query latency.
func ExtraCDTW(scale Scale, log io.Writer) (*Table, []CDTWCell, error) {
	p := ParamsFor(scale)
	tbl := &Table{
		Title:  "Extra — cDTW band width vs learned embeddings (DTW ground truth)",
		Header: []string{"Dataset", "Method", "HR@10", "R10@50", "per query"},
	}
	var cells []CDTWCell
	for _, city := range Cities() {
		env := NewEnv(city, p)
		queries, db := env.Dataset.Queries, env.Dataset.Database
		truth := eval.GroundTruth(dist.DTWDist, queries, db, 60)

		// cDTW at increasing band widths: scans the whole database per
		// query with the constrained dynamic program.
		for _, w := range []int{1, 3, 8} {
			start := time.Now()
			returned := cdtwSearch(queries, db, w, 60)
			per := time.Since(start) / time.Duration(len(queries))
			m := eval.Evaluate(returned, truth)
			name := fmt.Sprintf("cDTW(w=%d)", w)
			cells = append(cells, CDTWCell{
				Dataset: city.Name, Method: name,
				HR10: m.HR10, R10At50: m.R10At50, PerQuery: per,
			})
			tbl.Rows = append(tbl.Rows, []string{
				city.Name, name, f4(m.HR10), f4(m.R10At50), per.Round(time.Microsecond).String(),
			})
			if log != nil {
				fmt.Fprintf(log, "cdtw %s w=%d: HR@10=%.4f %v/query\n", city.Name, w, m.HR10, per)
			}
		}

		// Traj2Hash Euclidean-space search on the same ground truth.
		tr, err := TrainMethod("Traj2Hash", env, dist.DTWDist)
		if err != nil {
			return nil, nil, fmt.Errorf("extra-cdtw: %w", err)
		}
		qe := tr.EmbedAll(queries)
		de := tr.EmbedAll(db)
		start := time.Now()
		returned := make([][]int, len(qe))
		for i := range qe {
			items := topk.Select(len(de), 60, func(j int) float64 {
				var sum float64
				for d := range qe[i] {
					diff := qe[i][d] - de[j][d]
					sum += diff * diff
				}
				return sum
			})
			ids := make([]int, len(items))
			for r, it := range items {
				ids[r] = it.ID
			}
			returned[i] = ids
		}
		per := time.Since(start) / time.Duration(len(qe))
		m := eval.Evaluate(returned, truth)
		cells = append(cells, CDTWCell{
			Dataset: city.Name, Method: "Traj2Hash",
			HR10: m.HR10, R10At50: m.R10At50, PerQuery: per,
		})
		tbl.Rows = append(tbl.Rows, []string{
			city.Name, "Traj2Hash", f4(m.HR10), f4(m.R10At50), per.Round(time.Microsecond).String(),
		})
	}
	tbl.Notes = append(tbl.Notes,
		"cDTW latency excludes nothing: it runs the banded dynamic program against every database trajectory",
		"Traj2Hash latency is search only; embedding the database is a one-time indexing cost")
	return tbl, cells, nil
}

// cdtwSearch scans the database with banded DTW for each query.
func cdtwSearch(queries, db []geo.Trajectory, w, k int) [][]int {
	out := make([][]int, len(queries))
	for i, q := range queries {
		items := topk.Select(len(db), k, func(j int) float64 {
			return dist.CDTW(q, db[j], w)
		})
		ids := make([]int, len(items))
		for r, it := range items {
			ids[r] = it.ID
		}
		out[i] = ids
	}
	return out
}
