package experiments

import (
	"fmt"
	"io"

	"traj2hash/internal/core"
	"traj2hash/internal/eval"
)

// ReadoutCell is one (dataset, distance, read-out) HR@10 point of Figure 4.
type ReadoutCell struct {
	Dataset  string
	Distance string
	Readout  string
	HR10     float64
}

// Fig4 reproduces Figure 4: the effect of the read-out layer. A bare
// Transformer backbone (no grids, no reverse augmentation, no triplets) is
// trained per read-out variant and searched in Euclidean space.
func Fig4(scale Scale, log io.Writer) (*Table, []ReadoutCell, error) {
	p := ParamsFor(scale)
	readouts := []core.Readout{core.Mean, core.CLS, core.LowerBound}
	tbl := &Table{
		Title:  "Figure 4 — the effect of different read-out layers (HR@10, Euclidean space)",
		Header: []string{"Dataset", "Distance", "Mean", "CLS", "LowerBound"},
	}
	var cells []ReadoutCell
	for _, city := range Cities() {
		env := NewEnv(city, p)
		for _, f := range Distances {
			truth := eval.GroundTruth(f, env.Dataset.Queries, env.Dataset.Database, 60)
			row := []string{city.Name, f.String()}
			for _, ro := range readouts {
				cfg := p.CoreConfig()
				cfg.UseGrids = false
				cfg.UseRevAug = false
				cfg.UseTriplets = false
				cfg.Gamma = 0 // pure WMSE: only the backbone and read-out differ
				cfg.Readout = ro
				m, err := core.New(cfg, env.Dataset.All())
				if err != nil {
					return nil, nil, fmt.Errorf("fig4 %s: %w", ro, err)
				}
				if _, err := m.Train(core.TrainData{
					Seeds: env.Dataset.Seeds, Validation: env.Dataset.Validation, F: f,
				}); err != nil {
					return nil, nil, err
				}
				tr := &Trained{Name: ro.String(), EmbedAll: m.EmbedAll}
				em, err := euclideanMetrics(tr, env, truth)
				if err != nil {
					return nil, nil, err
				}
				cells = append(cells, ReadoutCell{
					Dataset: city.Name, Distance: f.String(), Readout: ro.String(), HR10: em.HR10,
				})
				row = append(row, f4(em.HR10))
				if log != nil {
					fmt.Fprintf(log, "fig4 %s %s %s: HR@10=%.4f\n", city.Name, f, ro, em.HR10)
				}
			}
			tbl.Rows = append(tbl.Rows, row)
		}
	}
	tbl.Notes = append(tbl.Notes, "backbone only: grids, reverse augmentation, and triplets disabled")
	return tbl, cells, nil
}
