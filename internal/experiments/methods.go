package experiments

import (
	"fmt"

	"traj2hash/internal/baselines"
	"traj2hash/internal/core"
	"traj2hash/internal/dist"
	"traj2hash/internal/geo"
	"traj2hash/internal/hamming"
)

// MethodNames lists the Euclidean-space competitors of Table I in the
// paper's row order.
var MethodNames = []string{
	"t2vec", "CL-TSim", "NT-No-SAM", "NeuTraj", "Transformer", "TrajGAT", "Traj2Hash",
}

// HammingMethodNames adds Fresh for Table II (Section V-A3).
var HammingMethodNames = []string{
	"t2vec", "CL-TSim", "NT-No-SAM", "NeuTraj", "Transformer", "TrajGAT", "Fresh", "Traj2Hash",
}

// Trained is a trained method ready to embed and/or hash trajectories.
type Trained struct {
	Name string
	// EmbedAll produces Euclidean-space embeddings (nil for Fresh, which
	// has no dense representation).
	EmbedAll func([]geo.Trajectory) [][]float64
	// CodeAll produces Hamming-space codes. For neural baselines this is
	// only available after AttachHashAdapter.
	CodeAll func([]geo.Trajectory) []hamming.Code

	enc baselines.Encoder // non-nil for neural baselines
}

// DistanceAgnostic reports whether the method trains without the target
// distance (t2vec and CL-TSim), so one training serves all three distances.
func DistanceAgnostic(name string) bool {
	return name == "t2vec" || name == "CL-TSim" || name == "Fresh"
}

// TrainMethod trains the named method on the environment for distance f.
func TrainMethod(name string, env *Env, f dist.Func) (*Trained, error) {
	p := env.Params
	ds := env.Dataset
	space := ds.All()
	switch name {
	case "Traj2Hash":
		cfg := p.CoreConfig()
		m, err := core.New(cfg, space)
		if err != nil {
			return nil, err
		}
		if _, err := m.Train(core.TrainData{
			Seeds: ds.Seeds, Validation: ds.Validation, Corpus: ds.Corpus, F: f,
		}); err != nil {
			return nil, err
		}
		return &Trained{Name: name, EmbedAll: m.EmbedAll, CodeAll: m.CodeAll}, nil

	case "Fresh":
		fr := baselines.NewFresh(1000, 4, 16, p.Seed)
		return &Trained{Name: name, CodeAll: fr.CodeAll}, nil

	case "t2vec":
		bc := p.BaseConfig()
		t2v, err := baselines.NewT2Vec(bc, space, 400)
		if err != nil {
			return nil, err
		}
		corpus := append(append([]geo.Trajectory{}, ds.Seeds...), ds.Corpus...)
		t2v.Train(corpus, bc.Epochs)
		return newNeural(t2v), nil

	case "CL-TSim":
		bc := p.BaseConfig()
		cl := baselines.NewCLTSim(bc, space)
		corpus := append(append([]geo.Trajectory{}, ds.Seeds...), ds.Corpus...)
		cl.Train(corpus, bc.Epochs)
		return newNeural(cl), nil

	case "NeuTraj", "NT-No-SAM", "Transformer", "TrajGAT":
		bc := p.BaseConfig()
		var enc baselines.Encoder
		var err error
		switch name {
		case "NeuTraj":
			enc, err = baselines.NewNeuTraj(bc, space)
		case "NT-No-SAM":
			enc, err = baselines.NewNTNoSAM(bc, space)
		case "Transformer":
			enc = baselines.NewTransformer(bc, space)
		case "TrajGAT":
			enc = baselines.NewTrajGAT(bc, space)
		}
		if err != nil {
			return nil, err
		}
		if _, err := baselines.TrainWMSE(enc, bc, ds.Seeds, ds.Validation, f); err != nil {
			return nil, err
		}
		return newNeural(enc), nil

	default:
		return nil, fmt.Errorf("experiments: unknown method %q", name)
	}
}

func newNeural(enc baselines.Encoder) *Trained {
	return &Trained{
		Name:     enc.Name(),
		EmbedAll: func(ts []geo.Trajectory) [][]float64 { return baselines.EmbedAll(enc, ts) },
		enc:      enc,
	}
}

// AttachHashAdapter fits the Table II linear hash head on a trained neural
// baseline (no-op for methods that hash natively).
func (t *Trained) AttachHashAdapter(env *Env, f dist.Func, bits int) error {
	if t.CodeAll != nil {
		return nil // Traj2Hash and Fresh hash natively
	}
	if t.enc == nil {
		return fmt.Errorf("experiments: %s has no encoder to adapt", t.Name)
	}
	ad := baselines.NewHashAdapter(t.enc, bits, 5, env.Params.Seed)
	cfg := baselines.DefaultAdapterConfig()
	cfg.Epochs = env.Params.AdEpochs
	cfg.M = env.Params.M
	if err := ad.Train(cfg, env.Dataset.Seeds, f); err != nil {
		return err
	}
	t.CodeAll = ad.CodeAll
	return nil
}
