package experiments

import (
	"bytes"
	"strings"
	"testing"

	"traj2hash/internal/data"
	"traj2hash/internal/dist"
	"traj2hash/internal/eval"
	"traj2hash/internal/geo"
)

// microParams is an ultra-small setting for fast unit tests of the
// experiment plumbing (full experiments are exercised by the benchmarks).
func microParams() Params {
	return Params{
		Split: data.SplitSpec{Seed: 12, Validation: 8, Corpus: 30, Queries: 6, Database: 40},
		Dim:   8, MaxLen: 8, M: 4, Epochs: 2, Batch: 6,
		TripletB: 6, NumTrips: 30, AdEpochs: 4, Seed: 1,
	}
}

func microEnv(t *testing.T) *Env {
	t.Helper()
	return NewEnv(data.Porto(), microParams())
}

func TestParseScale(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Scale
	}{{"tiny", Tiny}, {"small", Small}, {"medium", Medium}, {"paper", Paper}} {
		got, err := ParseScale(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseScale(%q) = %v, %v", c.in, got, err)
		}
		if got.String() != c.in {
			t.Errorf("String() = %q", got.String())
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestParamsForMonotone(t *testing.T) {
	prev := 0
	for _, s := range []Scale{Tiny, Small, Medium, Paper} {
		p := ParamsFor(s)
		total := p.Split.Total()
		if total <= prev {
			t.Errorf("scale %v total %d not larger than previous %d", s, total, prev)
		}
		prev = total
		if err := p.CoreConfig().Validate(); err != nil {
			t.Errorf("scale %v: invalid core config: %v", s, err)
		}
		if p.BaseConfig().Dim != p.Dim {
			t.Errorf("scale %v: baseline dim mismatch", s)
		}
	}
}

func TestTablePrint(t *testing.T) {
	tbl := &Table{
		Title:  "Test",
		Header: []string{"A", "LongColumn"},
		Rows:   [][]string{{"x", "1"}, {"longer", "2"}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== Test ==", "LongColumn", "longer", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		ids[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, want := range []string{"table1", "table2", "table3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"} {
		if !ids[want] {
			t.Errorf("registry missing %s", want)
		}
	}
	if _, err := Lookup("table1"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestTrainMethodAllNames(t *testing.T) {
	env := microEnv(t)
	for _, name := range HammingMethodNames {
		tr, err := TrainMethod(name, env, dist.FrechetDist)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr.Name != name {
			t.Errorf("name %q != %q", tr.Name, name)
		}
		if name == "Fresh" {
			if tr.EmbedAll != nil || tr.CodeAll == nil {
				t.Errorf("Fresh: wrong capabilities")
			}
			continue
		}
		embs := tr.EmbedAll(env.Dataset.Queries[:2])
		if len(embs) != 2 || len(embs[0]) == 0 {
			t.Errorf("%s: bad embeddings", name)
		}
		if err := tr.AttachHashAdapter(env, dist.FrechetDist, 8); err != nil {
			t.Errorf("%s adapter: %v", name, err)
		}
		codes := tr.CodeAll(env.Dataset.Queries[:2])
		if len(codes) != 2 {
			t.Errorf("%s: bad codes", name)
		}
	}
	if _, err := TrainMethod("nope", env, dist.DTWDist); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestDistanceAgnostic(t *testing.T) {
	for _, name := range []string{"t2vec", "CL-TSim", "Fresh"} {
		if !DistanceAgnostic(name) {
			t.Errorf("%s should be distance-agnostic", name)
		}
	}
	for _, name := range []string{"NeuTraj", "Traj2Hash", "Transformer"} {
		if DistanceAgnostic(name) {
			t.Errorf("%s should be distance-aware", name)
		}
	}
}

func TestMetricsPipeline(t *testing.T) {
	env := microEnv(t)
	f := dist.DTWDist
	truth := eval.GroundTruth(f, env.Dataset.Queries, env.Dataset.Database, 60)
	// A "perfect" method that embeds via the exact distance to fixed
	// anchors would be complex; instead verify pipeline consistency with a
	// real tiny model and check metrics are within [0, 1].
	tr, err := TrainMethod("Traj2Hash", env, f)
	if err != nil {
		t.Fatal(err)
	}
	em, err := euclideanMetrics(tr, env, truth)
	if err != nil {
		t.Fatal(err)
	}
	hm, err := hammingMetrics(tr, env, truth)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{em.HR10, em.HR50, em.R10At50, hm.HR10, hm.HR50, hm.R10At50} {
		if v < 0 || v > 1 {
			t.Errorf("metric out of range: %v", v)
		}
	}
	// HR@50 >= HR@10 is not guaranteed in general, but R10@50 >= HR@10
	// usually holds; just ensure the search returned full lists.
	if em.HR50 == 0 && em.HR10 > 0 {
		t.Error("inconsistent metrics")
	}
}

func TestAblationConfig(t *testing.T) {
	base := microParams().CoreConfig()
	full := ablationConfig(base, "Traj2Hash")
	if !full.UseGrids || !full.UseRevAug || !full.UseTriplets {
		t.Error("full variant altered")
	}
	g := ablationConfig(base, "-Grids")
	if g.UseGrids || !g.UseRevAug {
		t.Error("-Grids wrong")
	}
	r := ablationConfig(base, "-RevAug")
	if r.UseGrids || r.UseRevAug || !r.UseTriplets {
		t.Error("-RevAug wrong")
	}
	tr := ablationConfig(base, "-Triplets")
	if tr.UseGrids || tr.UseRevAug || tr.UseTriplets {
		t.Error("-Triplets wrong")
	}
}

func TestTimeStrategiesConsistency(t *testing.T) {
	// Build a timing env manually with random embeddings; strategies must
	// return k results and the hybrid must agree with BF on the fast path
	// (verified in package hamming); here check the experiment wiring.
	te := &timingEnv{dataset: "Porto", dist: "DTW"}
	p := microParams()
	env := NewEnv(data.Porto(), p)
	tr, err := TrainMethod("Traj2Hash", env, dist.DTWDist)
	if err != nil {
		t.Fatal(err)
	}
	embs := tr.EmbedAll(env.Dataset.Database)
	codes := tr.CodeAll(env.Dataset.Database)
	te.dbEmb = embs
	te.dbCodes = codes
	te.qEmb = tr.EmbedAll(env.Dataset.Queries)
	te.qCodes = tr.CodeAll(env.Dataset.Queries)
	cells, err := te.timeStrategies(len(embs), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("cells = %d", len(cells))
	}
	names := map[string]bool{}
	for _, c := range cells {
		names[c.Strategy] = true
		if c.PerQuery < 0 {
			t.Error("negative timing")
		}
	}
	if !names["Euclidean-BF"] || !names["Hamming-BF"] || !names["Hamming-Hybrid"] {
		t.Errorf("strategies = %v", names)
	}
}

func TestPaperTablesComplete(t *testing.T) {
	for _, ds := range []string{"Porto", "ChengDu"} {
		t1 := PaperTable1[ds]
		if len(t1) != 7 {
			t.Errorf("PaperTable1[%s] has %d methods", ds, len(t1))
		}
		t2 := PaperTable2[ds]
		if len(t2) != 8 {
			t.Errorf("PaperTable2[%s] has %d methods", ds, len(t2))
		}
		for m, byDist := range t1 {
			for _, d := range []string{"Frechet", "Hausdorff", "DTW"} {
				pm, ok := byDist[d]
				if !ok {
					t.Errorf("PaperTable1[%s][%s] missing %s", ds, m, d)
					continue
				}
				if pm.HR10 <= 0 || pm.HR10 >= 1 {
					t.Errorf("implausible paper value %v", pm.HR10)
				}
			}
		}
		t3 := PaperTable3[ds]
		for _, d := range []string{"Frechet", "DTW"} {
			for _, sp := range []string{"Euclidean", "Hamming"} {
				if len(t3[d][sp]) != 4 {
					t.Errorf("PaperTable3[%s][%s][%s] has %d variants", ds, d, sp, len(t3[d][sp]))
				}
			}
		}
	}
	// The paper's headline Table I claim holds in the transcription:
	// Traj2Hash beats every baseline everywhere.
	for ds, byMethod := range PaperTable1 {
		best := byMethod["Traj2Hash"]
		for m, byDist := range byMethod {
			if m == "Traj2Hash" {
				continue
			}
			for d, pm := range byDist {
				if pm.HR10 >= best[d].HR10 {
					t.Errorf("paper table: %s %s %s HR@10 %v >= Traj2Hash %v",
						ds, m, d, pm.HR10, best[d].HR10)
				}
			}
		}
	}
	for id := range PaperClaims {
		if _, err := Lookup(id); err != nil {
			t.Errorf("claims reference unknown experiment %s", id)
		}
	}
}

func TestEfficiencyDBSizesLadder(t *testing.T) {
	for _, s := range []Scale{Tiny, Small, Medium, Paper} {
		sizes := efficiencyDBSizes(s)
		if len(sizes) != 5 {
			t.Fatalf("scale %v: %d sizes", s, len(sizes))
		}
		for i := 1; i < len(sizes); i++ {
			if sizes[i] <= sizes[i-1] {
				t.Errorf("scale %v: ladder not increasing", s)
			}
		}
		if sizes[4] != 5*sizes[0] {
			t.Errorf("scale %v: span %d..%d is not 1:5", s, sizes[0], sizes[4])
		}
	}
}

func TestEnvSplitsMatchSpec(t *testing.T) {
	env := microEnv(t)
	p := microParams()
	if len(env.Dataset.Seeds) != p.Split.Seed ||
		len(env.Dataset.Database) != p.Split.Database {
		t.Error("env splits do not match spec")
	}
	var _ []geo.Trajectory = env.Dataset.Queries
}
