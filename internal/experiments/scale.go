// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V): Tables I–III and Figures 4–9. Each experiment is
// a function returning a printable Table plus structured results, runnable
// through cmd/traj2hash or the root benchmark suite.
//
// Experiments take a Scale: the paper's protocol (10K labelled, 200K
// corpus, 10K queries × 100K database, d = 64) is preserved structurally at
// every scale, but the counts shrink so a single CPU core can run the whole
// suite. Absolute numbers therefore differ from the paper; the comparisons
// (who wins, by roughly what factor, where crossovers fall) are what the
// suite reproduces.
package experiments

import (
	"fmt"

	"traj2hash/internal/baselines"
	"traj2hash/internal/core"
	"traj2hash/internal/data"
)

// Scale selects the experimental workload size.
type Scale int

const (
	// Tiny runs in seconds per experiment — the default for benchmarks and
	// CI.
	Tiny Scale = iota
	// Small runs in minutes per experiment — the default for the CLI.
	Small
	// Medium approaches the paper's relative seed/corpus ratios with
	// manageable runtime (tens of minutes for the full suite).
	Medium
	// Paper is the full Section V-A2 protocol. Provided for completeness;
	// expect very long runtimes on CPU.
	Paper
)

// ParseScale converts a flag value.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "tiny":
		return Tiny, nil
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "paper":
		return Paper, nil
	default:
		return 0, fmt.Errorf("experiments: unknown scale %q (tiny|small|medium|paper)", s)
	}
}

// String names the scale.
func (s Scale) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Paper:
		return "paper"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// Params concretizes a scale into dataset splits and model settings.
type Params struct {
	Split    data.SplitSpec
	Dim      int
	MaxLen   int
	M        int
	Epochs   int
	Batch    int
	TripletB int
	NumTrips int
	AdEpochs int // hash adapter epochs
	Seed     int64
}

// testParams, when non-nil, overrides ParamsFor for every scale — a test
// hook that lets the full experiment drivers run end-to-end in
// milliseconds. Never set outside tests.
var testParams *Params

// ParamsFor returns the concrete parameters of a scale.
func ParamsFor(s Scale) Params {
	if testParams != nil {
		return *testParams
	}
	switch s {
	case Tiny:
		return Params{
			Split: data.SplitSpec{Seed: 24, Validation: 16, Corpus: 80, Queries: 15, Database: 120},
			Dim:   16, MaxLen: 12, M: 4, Epochs: 5, Batch: 8,
			TripletB: 8, NumTrips: 100, AdEpochs: 10, Seed: 1,
		}
	case Small:
		return Params{
			Split: data.SplitSpec{Seed: 50, Validation: 40, Corpus: 250, Queries: 30, Database: 300},
			Dim:   32, MaxLen: 20, M: 6, Epochs: 10, Batch: 10,
			TripletB: 16, NumTrips: 500, AdEpochs: 20, Seed: 1,
		}
	case Medium:
		return Params{
			Split: data.SplitSpec{Seed: 120, Validation: 100, Corpus: 1500, Queries: 80, Database: 1000},
			Dim:   32, MaxLen: 24, M: 10, Epochs: 20, Batch: 20,
			TripletB: 32, NumTrips: 3000, AdEpochs: 30, Seed: 1,
		}
	default: // Paper
		return Params{
			Split: data.PaperSplit(),
			Dim:   64, MaxLen: 48, M: 10, Epochs: 100, Batch: 20,
			TripletB: 500, NumTrips: 700000, AdEpochs: 50, Seed: 1,
		}
	}
}

// CoreConfig derives a Traj2Hash configuration from the parameters.
func (p Params) CoreConfig() core.Config {
	cfg := core.DefaultConfig(p.Dim)
	cfg.Heads = heads(p.Dim)
	cfg.MaxLen = p.MaxLen
	cfg.M = p.M
	cfg.Epochs = p.Epochs
	cfg.BatchSize = p.Batch
	cfg.TripletBatch = p.TripletB
	cfg.NumTriplets = p.NumTrips
	cfg.Seed = p.Seed
	cfg.GridCellSize = 50
	if p.Dim <= 16 {
		// Tiny scale: coarser grid keeps the NCE pre-training instant.
		cfg.GridCellSize = 200
	}
	return cfg
}

// BaseConfig derives the shared baseline configuration.
func (p Params) BaseConfig() baselines.BaseConfig {
	cfg := baselines.DefaultBaseConfig(p.Dim)
	cfg.MaxLen = p.MaxLen
	cfg.M = p.M
	cfg.Epochs = p.Epochs
	cfg.BatchSize = p.Batch
	cfg.Seed = p.Seed
	return cfg
}

func heads(dim int) int {
	h := 4
	for dim%h != 0 {
		h /= 2
	}
	return h
}

// Env is a prepared dataset at a scale.
type Env struct {
	Params  Params
	Dataset *data.Dataset
}

// NewEnv generates a dataset for the named city at the given scale.
func NewEnv(city *data.City, p Params) *Env {
	return &Env{Params: p, Dataset: data.Build(city, p.Split, p.Seed)}
}

// Cities returns the two evaluation datasets of Section V-A1 in paper
// order.
func Cities() []*data.City {
	return []*data.City{data.Porto(), data.ChengDu()}
}
