package experiments

import (
	"fmt"
	"io"

	"traj2hash/internal/dist"
	"traj2hash/internal/eval"
	"traj2hash/internal/search"
)

// Distances are the three trajectory measures of the evaluation
// (Section V-A2) in paper column order.
var Distances = []dist.Func{dist.FrechetDist, dist.HausdorffDist, dist.DTWDist}

// CellResult is one (dataset, method, distance) cell of Tables I/II.
type CellResult struct {
	Dataset  string
	Method   string
	Distance string
	Metrics  eval.Metrics
}

// Table1 reproduces Table I: top-k accuracy of Euclidean-space search for
// every method × dataset × distance.
func Table1(scale Scale, log io.Writer) (*Table, []CellResult, error) {
	p := ParamsFor(scale)
	tbl := &Table{
		Title: "Table I — performance comparison in Euclidean space (Frechet | Hausdorff | DTW)",
		Header: []string{"Dataset", "Method",
			"HR@10", "HR@50", "R10@50", "HR@10", "HR@50", "R10@50", "HR@10", "HR@50", "R10@50"},
	}
	var cells []CellResult
	for _, city := range Cities() {
		env := NewEnv(city, p)
		// Exact ground truth per distance, shared by all methods.
		truth := map[dist.Func][][]int{}
		for _, f := range Distances {
			truth[f] = eval.GroundTruth(f, env.Dataset.Queries, env.Dataset.Database, 60)
		}
		agnosticCache := map[string]*Trained{}
		for _, name := range MethodNames {
			row := []string{city.Name, name}
			for _, f := range Distances {
				tr, err := trainCached(name, env, f, agnosticCache)
				if err != nil {
					return nil, nil, fmt.Errorf("table1 %s/%s/%v: %w", city.Name, name, f, err)
				}
				m, err := euclideanMetrics(tr, env, truth[f])
				if err != nil {
					return nil, nil, err
				}
				cells = append(cells, CellResult{
					Dataset: city.Name, Method: name, Distance: f.String(), Metrics: m,
				})
				row = append(row, f4(m.HR10), f4(m.HR50), f4(m.R10At50))
				if log != nil {
					fmt.Fprintf(log, "table1 %s %s %s: HR@10=%.4f\n", city.Name, name, f, m.HR10)
				}
			}
			tbl.Rows = append(tbl.Rows, row)
		}
	}
	tbl.Notes = append(tbl.Notes, fmt.Sprintf("scale=%s: %d seeds, %d queries x %d database", scale, p.Split.Seed, p.Split.Queries, p.Split.Database))
	return tbl, cells, nil
}

// trainCached reuses distance-agnostic trainings across distances.
func trainCached(name string, env *Env, f dist.Func, cache map[string]*Trained) (*Trained, error) {
	if DistanceAgnostic(name) {
		if tr, ok := cache[name]; ok {
			return tr, nil
		}
	}
	tr, err := TrainMethod(name, env, f)
	if err != nil {
		return nil, err
	}
	if DistanceAgnostic(name) {
		cache[name] = tr
	}
	return tr, nil
}

// euclideanMetrics embeds queries and database and evaluates brute-force
// Euclidean search against the exact ground truth.
func euclideanMetrics(tr *Trained, env *Env, truth [][]int) (eval.Metrics, error) {
	qe := tr.EmbedAll(env.Dataset.Queries)
	de := tr.EmbedAll(env.Dataset.Database)
	s, err := search.NewEuclideanBF(de, qe)
	if err != nil {
		return eval.Metrics{}, err
	}
	returned := search.RunAll(s, len(qe), 60)
	return eval.Evaluate(returned, truth), nil
}
