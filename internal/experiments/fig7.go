package experiments

import (
	"fmt"
	"io"
	"time"

	"traj2hash/internal/core"
	"traj2hash/internal/dist"
	"traj2hash/internal/eval"
)

// GridRepCell is one variant of the Figure 7 grid-representation study.
type GridRepCell struct {
	Variant      string
	HR10         float64
	R10At50      float64
	PretrainTime time.Duration
}

// Fig7 reproduces Figure 7: the decomposed grid representation versus
// node2vec cell embeddings versus no grid channel at all, on Porto, plus
// the pre-training-time comparison discussed in Section V-D (decomposed:
// ~80 s vs node2vec: >2 h at paper scale).
func Fig7(scale Scale, log io.Writer) (*Table, []GridRepCell, error) {
	p := ParamsFor(scale)
	env := NewEnv(Cities()[0], p) // Porto
	f := dist.FrechetDist
	truth := eval.GroundTruth(f, env.Dataset.Queries, env.Dataset.Database, 60)

	variants := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"Decomposed", func(c *core.Config) { c.GridRep = core.DecomposedNCE }},
		{"Node2vec", func(c *core.Config) { c.GridRep = core.Node2VecRep }},
		{"-Grids", func(c *core.Config) { c.UseGrids = false }},
	}
	tbl := &Table{
		Title:  "Figure 7 — the effect of different grid representations (Porto, Frechet)",
		Header: []string{"Variant", "HR@10", "R10@50", "grid pre-train"},
	}
	var cells []GridRepCell
	for _, v := range variants {
		cfg := p.CoreConfig()
		v.mutate(&cfg)
		m, err := core.New(cfg, env.Dataset.All())
		if err != nil {
			return nil, nil, fmt.Errorf("fig7 %s: %w", v.name, err)
		}
		if _, err := m.Train(core.TrainData{
			Seeds: env.Dataset.Seeds, Validation: env.Dataset.Validation,
			Corpus: env.Dataset.Corpus, F: f,
		}); err != nil {
			return nil, nil, err
		}
		tr := &Trained{Name: v.name, EmbedAll: m.EmbedAll}
		em, err := euclideanMetrics(tr, env, truth)
		if err != nil {
			return nil, nil, err
		}
		cells = append(cells, GridRepCell{
			Variant: v.name, HR10: em.HR10, R10At50: em.R10At50, PretrainTime: m.GridPretrainTime,
		})
		tbl.Rows = append(tbl.Rows, []string{v.name, f4(em.HR10), f4(em.R10At50), m.GridPretrainTime.String()})
		if log != nil {
			fmt.Fprintf(log, "fig7 %s: HR@10=%.4f R10@50=%.4f pretrain=%v\n",
				v.name, em.HR10, em.R10At50, m.GridPretrainTime)
		}
	}
	tbl.Notes = append(tbl.Notes,
		"node2vec: walk length 80, 10 walks, window 10, p=q=1 (bounded on large grids)")
	return tbl, cells, nil
}
