package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result in the layout of the paper's
// tables: a header row and value rows.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = pad(c, w)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// f4 formats a metric to four decimals, the paper's precision.
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
