package experiments

import (
	"fmt"
	"io"
)

// Experiment identifies one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(scale Scale, log io.Writer) (*Table, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table I — Euclidean-space accuracy", wrap3(Table1)},
		{"table2", "Table II — Hamming-space accuracy", wrap3(Table2)},
		{"table3", "Table III — ablation study", wrap3(Table3)},
		{"fig4", "Figure 4 — read-out layers", wrap3(Fig4)},
		{"fig5", "Figure 5 — time vs database size", wrap3(Fig5)},
		{"fig6", "Figure 6 — time vs k", wrap3(Fig6)},
		{"fig7", "Figure 7 — grid representations", wrap3(Fig7)},
		{"fig8", "Figure 8 — margin α sweep", wrap3(Fig8)},
		{"fig9", "Figure 9 — balance weight γ sweep", wrap3(Fig9)},
		{"extra-cdtw", "Extra — cDTW band width vs learned embeddings", wrap3(ExtraCDTW)},
		{"encoders", "Extra — encoder zoo: accuracy vs training and query cost", wrap3(EncoderRace)},
	}
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// wrap3 adapts the (Table, cells, error) signatures to the registry shape.
func wrap3[T any](f func(Scale, io.Writer) (*Table, T, error)) func(Scale, io.Writer) (*Table, error) {
	return func(s Scale, log io.Writer) (*Table, error) {
		t, _, err := f(s, log)
		return t, err
	}
}
