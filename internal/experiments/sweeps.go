package experiments

import (
	"fmt"
	"io"

	"traj2hash/internal/core"
	"traj2hash/internal/dist"
	"traj2hash/internal/eval"
)

// SweepCell is one (dataset, distance, value) point of the Figure 8/9
// hyper-parameter sweeps: HR@10 in both spaces.
type SweepCell struct {
	Dataset   string
	Distance  string
	Value     float64
	Euclidean float64
	Hamming   float64
}

// sweepDistances: the parameter studies cover DTW and the Fréchet distance
// (Section V-F).
var sweepDistances = []dist.Func{dist.DTWDist, dist.FrechetDist}

// runSweep trains one model per parameter value and reports HR@10 in
// Euclidean and Hamming space.
func runSweep(scale Scale, log io.Writer, title, param string, values []float64,
	apply func(*core.Config, float64)) (*Table, []SweepCell, error) {
	p := ParamsFor(scale)
	tbl := &Table{
		Title:  title,
		Header: []string{"Dataset", "Distance", "Space"},
	}
	for _, v := range values {
		tbl.Header = append(tbl.Header, fmt.Sprintf("%s=%g", param, v))
	}
	var cells []SweepCell
	for _, city := range Cities() {
		env := NewEnv(city, p)
		for _, f := range sweepDistances {
			truth := eval.GroundTruth(f, env.Dataset.Queries, env.Dataset.Database, 60)
			euRow := []string{city.Name, f.String(), "Euclidean"}
			haRow := []string{city.Name, f.String(), "Hamming"}
			for _, v := range values {
				cfg := p.CoreConfig()
				apply(&cfg, v)
				m, err := core.New(cfg, env.Dataset.All())
				if err != nil {
					return nil, nil, fmt.Errorf("sweep %s=%g: %w", param, v, err)
				}
				if _, err := m.Train(core.TrainData{
					Seeds: env.Dataset.Seeds, Validation: env.Dataset.Validation,
					Corpus: env.Dataset.Corpus, F: f,
				}); err != nil {
					return nil, nil, err
				}
				tr := &Trained{Name: param, EmbedAll: m.EmbedAll, CodeAll: m.CodeAll}
				em, err := euclideanMetrics(tr, env, truth)
				if err != nil {
					return nil, nil, err
				}
				hm, err := hammingMetrics(tr, env, truth)
				if err != nil {
					return nil, nil, err
				}
				cells = append(cells, SweepCell{
					Dataset: city.Name, Distance: f.String(), Value: v,
					Euclidean: em.HR10, Hamming: hm.HR10,
				})
				euRow = append(euRow, f4(em.HR10))
				haRow = append(haRow, f4(hm.HR10))
				if log != nil {
					fmt.Fprintf(log, "%s %s %s %s=%g: eu=%.4f ham=%.4f\n",
						param, city.Name, f, param, v, em.HR10, hm.HR10)
				}
			}
			tbl.Rows = append(tbl.Rows, euRow, haRow)
		}
	}
	return tbl, cells, nil
}

// Fig8 reproduces Figure 8: the effect of the ranking margin α ∈ [0, 25]
// on HR@10 in both spaces.
func Fig8(scale Scale, log io.Writer) (*Table, []SweepCell, error) {
	return runSweep(scale, log,
		"Figure 8 — the performance changes with margin α (HR@10)",
		"alpha", []float64{0, 2, 5, 10, 25},
		func(c *core.Config, v float64) { c.Alpha = v })
}

// Fig9 reproduces Figure 9: the effect of the balance weight γ ∈ [0, 12]
// on HR@10 in both spaces. γ = 0 disables both ranking losses — the
// Hamming collapse the paper highlights.
func Fig9(scale Scale, log io.Writer) (*Table, []SweepCell, error) {
	return runSweep(scale, log,
		"Figure 9 — the performance changes with balance weight γ (HR@10)",
		"gamma", []float64{0, 1, 3, 6, 12},
		func(c *core.Config, v float64) { c.Gamma = v })
}
