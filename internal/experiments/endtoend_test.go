package experiments

import (
	"io"
	"strings"
	"testing"

	"traj2hash/internal/core"
)

// withMicroScale installs the micro test parameters for the duration of a
// test, letting the full experiment drivers run end to end in seconds.
func withMicroScale(t *testing.T) {
	t.Helper()
	p := microParams()
	testParams = &p
	testDBSizes = []int{100, 200, 300, 400, 500}
	oldQ := efficiencyQueries
	efficiencyQueries = 10
	t.Cleanup(func() {
		testParams = nil
		testDBSizes = nil
		efficiencyQueries = oldQ
	})
}

// runExperiment executes a registry experiment and sanity-checks the table.
func runExperiment(t *testing.T, id string, wantRows int) *Table {
	t.Helper()
	exp, err := Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := exp.Run(Tiny, io.Discard)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tbl.Rows) != wantRows {
		t.Errorf("%s: %d rows, want %d", id, len(tbl.Rows), wantRows)
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Header) {
			t.Errorf("%s: ragged row %v", id, row)
		}
	}
	var buf strings.Builder
	tbl.Fprint(&buf)
	if !strings.Contains(buf.String(), tbl.Title) {
		t.Errorf("%s: title missing from rendering", id)
	}
	return tbl
}

func TestEndToEndTable1(t *testing.T) {
	withMicroScale(t)
	runExperiment(t, "table1", 2*len(MethodNames))
}

func TestEndToEndTable2(t *testing.T) {
	withMicroScale(t)
	runExperiment(t, "table2", 2*len(HammingMethodNames))
}

func TestEndToEndTable3(t *testing.T) {
	withMicroScale(t)
	// 2 datasets × 2 distances × 2 spaces × 3 metrics.
	runExperiment(t, "table3", 24)
}

func TestEndToEndFig4(t *testing.T) {
	withMicroScale(t)
	// 2 datasets × 3 distances.
	runExperiment(t, "fig4", 6)
}

func TestEndToEndFig5(t *testing.T) {
	withMicroScale(t)
	// 2 datasets × 2 distances × 5 sizes.
	runExperiment(t, "fig5", 20)
}

func TestEndToEndFig6(t *testing.T) {
	withMicroScale(t)
	// 2 datasets × 2 distances × 5 k values.
	runExperiment(t, "fig6", 20)
}

func TestEndToEndFig7(t *testing.T) {
	withMicroScale(t)
	tbl := runExperiment(t, "fig7", 3)
	// Pre-train time recorded for grid variants, zero for -Grids.
	if tbl.Rows[2][3] != "0s" {
		t.Errorf("-Grids pretrain time = %q", tbl.Rows[2][3])
	}
}

func TestEndToEndFig8(t *testing.T) {
	withMicroScale(t)
	// 2 datasets × 2 distances × 2 spaces.
	runExperiment(t, "fig8", 8)
}

func TestEndToEndFig9(t *testing.T) {
	withMicroScale(t)
	runExperiment(t, "fig9", 8)
}

func TestEndToEndExtraCDTW(t *testing.T) {
	withMicroScale(t)
	// 2 datasets × (3 cDTW widths + Traj2Hash).
	tbl := runExperiment(t, "extra-cdtw", 8)
	// Widening the cDTW band cannot hurt accuracy on the same data (wider
	// bands approach exact DTW).
	_ = tbl
}

func TestEndToEndEncoderRace(t *testing.T) {
	withMicroScale(t)
	tbl := runExperiment(t, "encoders", len(core.EncoderKinds()))
	var geopth []string
	for _, row := range tbl.Rows {
		if row[0] == core.GeoPTHKind {
			geopth = row
		}
	}
	if geopth == nil {
		t.Fatal("encoder race has no geopth row")
	}
	if geopth[1] != "0" {
		t.Errorf("geopth trained %s steps, want 0 (training-free)", geopth[1])
	}
}
