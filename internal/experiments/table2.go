package experiments

import (
	"fmt"
	"io"

	"traj2hash/internal/dist"
	"traj2hash/internal/eval"
	"traj2hash/internal/search"
)

// Table2 reproduces Table II: top-k accuracy of Hamming-space search. The
// neural baselines are binarized with the ranking-objective hash adapter
// (seeds only); Fresh and Traj2Hash hash natively.
func Table2(scale Scale, log io.Writer) (*Table, []CellResult, error) {
	p := ParamsFor(scale)
	tbl := &Table{
		Title: "Table II — performance comparison in Hamming space (Frechet | Hausdorff | DTW)",
		Header: []string{"Dataset", "Method",
			"HR@10", "HR@50", "R10@50", "HR@10", "HR@50", "R10@50", "HR@10", "HR@50", "R10@50"},
	}
	var cells []CellResult
	for _, city := range Cities() {
		env := NewEnv(city, p)
		truth := map[dist.Func][][]int{}
		for _, f := range Distances {
			truth[f] = eval.GroundTruth(f, env.Dataset.Queries, env.Dataset.Database, 60)
		}
		agnosticCache := map[string]*Trained{}
		for _, name := range HammingMethodNames {
			row := []string{city.Name, name}
			for _, f := range Distances {
				tr, err := trainCached(name, env, f, agnosticCache)
				if err != nil {
					return nil, nil, fmt.Errorf("table2 %s/%s/%v: %w", city.Name, name, f, err)
				}
				if err := tr.AttachHashAdapter(env, f, p.Dim); err != nil {
					return nil, nil, fmt.Errorf("table2 adapter %s: %w", name, err)
				}
				m, err := hammingMetrics(tr, env, truth[f])
				if err != nil {
					return nil, nil, err
				}
				cells = append(cells, CellResult{
					Dataset: city.Name, Method: name, Distance: f.String(), Metrics: m,
				})
				row = append(row, f4(m.HR10), f4(m.HR50), f4(m.R10At50))
				if log != nil {
					fmt.Fprintf(log, "table2 %s %s %s: HR@10=%.4f\n", city.Name, name, f, m.HR10)
				}
			}
			tbl.Rows = append(tbl.Rows, row)
		}
	}
	tbl.Notes = append(tbl.Notes,
		"neural baselines hashed via the ranking-objective linear adapter trained on seeds only (Section V-A3)")
	return tbl, cells, nil
}

// hammingMetrics hashes queries and database and evaluates brute-force
// Hamming search against the exact ground truth.
func hammingMetrics(tr *Trained, env *Env, truth [][]int) (eval.Metrics, error) {
	qc := tr.CodeAll(env.Dataset.Queries)
	dc := tr.CodeAll(env.Dataset.Database)
	s, err := search.NewHammingBF(dc, qc)
	if err != nil {
		return eval.Metrics{}, err
	}
	returned := search.RunAll(s, len(qc), 60)
	return eval.Evaluate(returned, truth), nil
}

// Note on the distance-agnostic cache: AttachHashAdapter is a no-op once a
// method has codes, so a cached t2vec/CL-TSim keeps the adapter fitted for
// its first distance. Their encoders carry no distance information, so this
// matches the protocol in effect while keeping Table II affordable.
