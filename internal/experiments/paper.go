package experiments

// This file records the paper's reported numbers so reports and
// EXPERIMENTS.md can show paper-vs-measured side by side. Values are
// transcribed from Tables I–III of the ICDE 2024 paper; figures are curves
// and are summarized by their qualitative claims instead.

// PaperMetric is one reported (HR@10, HR@50, R10@50) triple.
type PaperMetric struct {
	HR10, HR50, R10At50 float64
}

// PaperTable1 is Table I: dataset → method → distance → metrics.
var PaperTable1 = map[string]map[string]map[string]PaperMetric{
	"Porto": {
		"t2vec":       {"Frechet": {0.2761, 0.3606, 0.5218}, "Hausdorff": {0.2684, 0.3279, 0.5437}, "DTW": {0.2762, 0.3355, 0.5492}},
		"CL-TSim":     {"Frechet": {0.3107, 0.3370, 0.5764}, "Hausdorff": {0.2801, 0.2860, 0.5289}, "DTW": {0.2961, 0.3909, 0.5848}},
		"NT-No-SAM":   {"Frechet": {0.4982, 0.5820, 0.8124}, "Hausdorff": {0.3502, 0.4241, 0.7357}, "DTW": {0.4619, 0.5025, 0.7584}},
		"NeuTraj":     {"Frechet": {0.5053, 0.5953, 0.8157}, "Hausdorff": {0.3834, 0.4460, 0.7410}, "DTW": {0.4711, 0.5329, 0.7885}},
		"Transformer": {"Frechet": {0.4290, 0.5238, 0.7392}, "Hausdorff": {0.4389, 0.5098, 0.7761}, "DTW": {0.3576, 0.4424, 0.6887}},
		"TrajGAT":     {"Frechet": {0.4737, 0.5699, 0.7905}, "Hausdorff": {0.4594, 0.5174, 0.7839}, "DTW": {0.4535, 0.5178, 0.7649}},
		"Traj2Hash":   {"Frechet": {0.5652, 0.6162, 0.8755}, "Hausdorff": {0.4640, 0.5307, 0.8021}, "DTW": {0.5327, 0.5822, 0.8565}},
	},
	"ChengDu": {
		"t2vec":       {"Frechet": {0.3329, 0.4254, 0.5709}, "Hausdorff": {0.3453, 0.3790, 0.5428}, "DTW": {0.3256, 0.3572, 0.5781}},
		"CL-TSim":     {"Frechet": {0.3513, 0.3844, 0.5980}, "Hausdorff": {0.3011, 0.3258, 0.5892}, "DTW": {0.3401, 0.3576, 0.6292}},
		"NT-No-SAM":   {"Frechet": {0.6903, 0.7509, 0.9403}, "Hausdorff": {0.5393, 0.6498, 0.8350}, "DTW": {0.5229, 0.5815, 0.8836}},
		"NeuTraj":     {"Frechet": {0.6936, 0.7551, 0.9421}, "Hausdorff": {0.5802, 0.6593, 0.8511}, "DTW": {0.5391, 0.5990, 0.8905}},
		"Transformer": {"Frechet": {0.6455, 0.6997, 0.9303}, "Hausdorff": {0.6593, 0.7212, 0.9279}, "DTW": {0.5519, 0.5803, 0.7649}},
		"TrajGAT":     {"Frechet": {0.6832, 0.7345, 0.9337}, "Hausdorff": {0.6764, 0.7395, 0.9385}, "DTW": {0.6288, 0.6937, 0.9350}},
		"Traj2Hash":   {"Frechet": {0.7297, 0.7818, 0.9572}, "Hausdorff": {0.6838, 0.7415, 0.9591}, "DTW": {0.6796, 0.7278, 0.9507}},
	},
}

// PaperTable2 is Table II (Hamming space).
var PaperTable2 = map[string]map[string]map[string]PaperMetric{
	"Porto": {
		"t2vec":       {"Frechet": {0.0236, 0.0357, 0.0488}, "Hausdorff": {0.0129, 0.0254, 0.0355}, "DTW": {0.0186, 0.0214, 0.0383}},
		"CL-TSim":     {"Frechet": {0.0138, 0.0165, 0.0240}, "Hausdorff": {0.0147, 0.0158, 0.0247}, "DTW": {0.0232, 0.0243, 0.0409}},
		"NT-No-SAM":   {"Frechet": {0.0479, 0.0956, 0.1201}, "Hausdorff": {0.0345, 0.0710, 0.0821}, "DTW": {0.0235, 0.0572, 0.0728}},
		"NeuTraj":     {"Frechet": {0.0525, 0.1128, 0.1378}, "Hausdorff": {0.0270, 0.0622, 0.0768}, "DTW": {0.0278, 0.0613, 0.0799}},
		"Transformer": {"Frechet": {0.0412, 0.0811, 0.1000}, "Hausdorff": {0.0680, 0.1467, 0.1838}, "DTW": {0.0174, 0.0390, 0.0482}},
		"TrajGAT":     {"Frechet": {0.0457, 0.0921, 0.1175}, "Hausdorff": {0.0794, 0.1543, 0.2037}, "DTW": {0.0201, 0.0567, 0.0833}},
		"Fresh":       {"Frechet": {0.1322, 0.1382, 0.2784}, "Hausdorff": {0.1092, 0.1234, 0.2418}, "DTW": {0.1303, 0.1371, 0.2726}},
		"Traj2Hash":   {"Frechet": {0.3072, 0.3966, 0.6117}, "Hausdorff": {0.2204, 0.2994, 0.4677}, "DTW": {0.2931, 0.3881, 0.5948}},
	},
	"ChengDu": {
		"t2vec":       {"Frechet": {0.0319, 0.0443, 0.0625}, "Hausdorff": {0.0094, 0.0147, 0.0295}, "DTW": {0.0257, 0.0530, 0.0684}},
		"CL-TSim":     {"Frechet": {0.0346, 0.0491, 0.0683}, "Hausdorff": {0.0101, 0.0134, 0.0273}, "DTW": {0.0359, 0.0597, 0.0763}},
		"NT-No-SAM":   {"Frechet": {0.0426, 0.1088, 0.1220}, "Hausdorff": {0.0189, 0.0442, 0.0548}, "DTW": {0.0858, 0.1439, 0.1894}},
		"NeuTraj":     {"Frechet": {0.0417, 0.0941, 0.1079}, "Hausdorff": {0.0241, 0.0557, 0.0634}, "DTW": {0.0945, 0.1635, 0.2151}},
		"Transformer": {"Frechet": {0.0706, 0.1387, 0.1695}, "Hausdorff": {0.0991, 0.2047, 0.2520}, "DTW": {0.0049, 0.0164, 0.0175}},
		"TrajGAT":     {"Frechet": {0.0874, 0.1543, 0.1730}, "Hausdorff": {0.1020, 0.2111, 0.2683}, "DTW": {0.0132, 0.0248, 0.0533}},
		"Fresh":       {"Frechet": {0.2694, 0.2955, 0.5483}, "Hausdorff": {0.2330, 0.2339, 0.4608}, "DTW": {0.2715, 0.2952, 0.5454}},
		"Traj2Hash":   {"Frechet": {0.3743, 0.4733, 0.6945}, "Hausdorff": {0.2596, 0.3499, 0.5102}, "DTW": {0.4065, 0.4964, 0.7324}},
	},
}

// PaperTable3 is Table III: dataset → distance → space → variant → metrics.
var PaperTable3 = map[string]map[string]map[string]map[string]PaperMetric{
	"Porto": {
		"Frechet": {
			"Euclidean": {
				"Traj2Hash": {0.5652, 0.6162, 0.8755}, "-Grids": {0.5466, 0.6087, 0.8331},
				"-RevAug": {0.5018, 0.5692, 0.7980}, "-Triplets": {0.4699, 0.5644, 0.7798},
			},
			"Hamming": {
				"Traj2Hash": {0.3072, 0.3966, 0.6117}, "-Grids": {0.3011, 0.3841, 0.6043},
				"-RevAug": {0.2970, 0.3805, 0.5886}, "-Triplets": {0.0349, 0.0748, 0.0866},
			},
		},
		"DTW": {
			"Euclidean": {
				"Traj2Hash": {0.5327, 0.5822, 0.8565}, "-Grids": {0.4967, 0.5470, 0.8051},
				"-RevAug": {0.4714, 0.5401, 0.7923}, "-Triplets": {0.3646, 0.4520, 0.7017},
			},
			"Hamming": {
				"Traj2Hash": {0.2931, 0.3881, 0.5948}, "-Grids": {0.2717, 0.3763, 0.5675},
				"-RevAug": {0.2555, 0.3491, 0.5220}, "-Triplets": {0.0176, 0.0498, 0.0827},
			},
		},
	},
	"ChengDu": {
		"Frechet": {
			"Euclidean": {
				"Traj2Hash": {0.7297, 0.7818, 0.9572}, "-Grids": {0.7231, 0.7782, 0.9476},
				"-RevAug": {0.6749, 0.7280, 0.9364}, "-Triplets": {0.6508, 0.7084, 0.9161},
			},
			"Hamming": {
				"Traj2Hash": {0.3743, 0.4733, 0.6945}, "-Grids": {0.3604, 0.4694, 0.6892},
				"-RevAug": {0.3528, 0.4515, 0.6613}, "-Triplets": {0.0374, 0.0890, 0.1040},
			},
		},
		"DTW": {
			"Euclidean": {
				"Traj2Hash": {0.6796, 0.7278, 0.9507}, "-Grids": {0.6542, 0.7138, 0.9272},
				"-RevAug": {0.6224, 0.6759, 0.9194}, "-Triplets": {0.6043, 0.6572, 0.9102},
			},
			"Hamming": {
				"Traj2Hash": {0.4065, 0.4964, 0.7324}, "-Grids": {0.3783, 0.4737, 0.6975},
				"-RevAug": {0.3760, 0.4733, 0.6933}, "-Triplets": {0.0216, 0.0537, 0.0816},
			},
		},
	},
}

// PaperClaims summarizes the qualitative findings each figure reports — the
// shapes the reproduction is expected to match.
var PaperClaims = map[string][]string{
	"table1": {
		"Traj2Hash beats every baseline on every dataset, distance, and metric",
		"t2vec and CL-TSim (distance-agnostic) rank last",
		"Transformer/TrajGAT prefer Hausdorff; NeuTraj variants prefer Frechet/DTW",
	},
	"table2": {
		"every neural baseline drops sharply after binarization",
		"Fresh beats the binarized neural baselines in most cases",
		"Traj2Hash achieves roughly 2x Fresh's accuracy",
	},
	"table3": {
		"each component removal lowers accuracy in both spaces",
		"-Triplets collapses Hamming-space accuracy (order of magnitude)",
	},
	"fig4": {
		"LowerBound read-out wins under DTW and Frechet",
		"Mean read-out wins under Hausdorff",
		"CLS is dominated by LowerBound",
	},
	"fig5": {
		"Hamming-BF is always faster than Euclidean-BF",
		"Hamming-Hybrid is fastest and grows slowest with database size",
	},
	"fig6": {
		"Hamming-Hybrid achieves about 3x speedup over Euclidean-BF at k=10",
		"brute-force strategies are flat in k; hybrid degrades toward Hamming-BF as k grows",
	},
	"fig7": {
		"decomposed representation beats node2vec and -Grids",
		"decomposed pre-training is orders of magnitude faster than node2vec (80 s vs >2 h at paper scale)",
	},
	"fig8": {
		"alpha matters far more in Hamming space than Euclidean space",
		"performance rises from alpha=0, peaks around alpha=5, then flattens or dips",
	},
	"fig9": {
		"gamma=0 collapses Hamming-space accuracy",
		"performance peaks at moderate gamma (around 6 for DTW, lower for Frechet)",
	},
}
