package experiments

import (
	"fmt"
	"io"
	"time"

	"traj2hash/internal/core"
	"traj2hash/internal/data"
	"traj2hash/internal/dist"
	"traj2hash/internal/eval"
	"traj2hash/internal/search"
)

// EncoderRace races every registered encoder kind on the same dataset
// and protocol: Hamming-space retrieval accuracy (HR@10/HR@50/R10@50
// against exact Fréchet ground truth) next to what each encoder paid to
// get there — optimizer steps, training wall-clock, per-trajectory
// encoding latency, and per-query search latency. The training-free
// GeoPTH row shows 0 steps by construction; the point of the table is
// the accuracy-vs-cost frontier across the encoder zoo, not a single
// winner.
func EncoderRace(scale Scale, log io.Writer) (*Table, []CellResult, error) {
	p := ParamsFor(scale)
	env := NewEnv(data.Porto(), p)
	ds := env.Dataset
	truth := eval.GroundTruth(dist.FrechetDist, ds.Queries, ds.Database, 60)

	tbl := &Table{
		Title: "Encoder zoo — Hamming-space accuracy vs training and query cost (Porto, Frechet)",
		Header: []string{"Encoder", "TrainSteps", "TrainSec",
			"HR@10", "HR@50", "R10@50", "Encode µs/traj", "Search µs/query"},
	}
	var cells []CellResult
	for _, kind := range core.EncoderKinds() {
		cfg := p.CoreConfig()
		enc, err := core.NewEncoder(kind, cfg, ds.All())
		if err != nil {
			return nil, nil, fmt.Errorf("encoders %s: %w", kind, err)
		}

		steps := 0
		var trainDur time.Duration
		if tr, ok := enc.(core.Trainable); ok {
			start := time.Now()
			if _, err := tr.Train(core.TrainData{
				Seeds: ds.Seeds, Validation: ds.Validation, Corpus: ds.Corpus,
				F:        dist.FrechetDist,
				StepHook: func(epoch, step int) { steps++ },
			}); err != nil {
				return nil, nil, fmt.Errorf("encoders %s train: %w", kind, err)
			}
			trainDur = time.Since(start)
		}

		encStart := time.Now()
		dc := enc.CodeAll(ds.Database)
		qc := enc.CodeAll(ds.Queries)
		encoded := len(ds.Database) + len(ds.Queries)
		encodePer := time.Since(encStart) / time.Duration(encoded)

		s, err := search.NewHammingBF(dc, qc)
		if err != nil {
			return nil, nil, fmt.Errorf("encoders %s search: %w", kind, err)
		}
		searchStart := time.Now()
		returned := search.RunAll(s, len(qc), 60)
		searchPer := time.Since(searchStart) / time.Duration(len(qc))

		m := eval.Evaluate(returned, truth)
		cells = append(cells, CellResult{
			Dataset: "Porto", Method: kind, Distance: dist.FrechetDist.String(), Metrics: m,
		})
		tbl.Rows = append(tbl.Rows, []string{
			kind,
			fmt.Sprintf("%d", steps),
			fmt.Sprintf("%.2f", trainDur.Seconds()),
			f4(m.HR10), f4(m.HR50), f4(m.R10At50),
			fmt.Sprintf("%.1f", float64(encodePer.Nanoseconds())/1e3),
			fmt.Sprintf("%.1f", float64(searchPer.Nanoseconds())/1e3),
		})
		if log != nil {
			fmt.Fprintf(log, "encoders %s: steps=%d HR@10=%.4f encode=%v/traj\n",
				kind, steps, m.HR10, encodePer)
		}
	}
	tbl.Notes = append(tbl.Notes,
		"all encoders share the dataset, bit width, and brute-force Hamming search; only the encoder varies",
		"geopth is training-free: the index is ready the moment the prototypes are chosen (0 steps)")
	return tbl, cells, nil
}
