package experiments

import (
	"fmt"
	"io"

	"traj2hash/internal/core"
	"traj2hash/internal/dist"
	"traj2hash/internal/eval"
)

// AblationVariants are the cumulative ablations of Section V-D: each
// variant also removes everything the previous one removed.
var AblationVariants = []string{"Traj2Hash", "-Grids", "-RevAug", "-Triplets"}

// ablationConfig applies a variant to a base configuration.
func ablationConfig(base core.Config, variant string) core.Config {
	cfg := base
	switch variant {
	case "Traj2Hash":
	case "-Grids":
		cfg.UseGrids = false
	case "-RevAug":
		cfg.UseGrids = false
		cfg.UseRevAug = false
	case "-Triplets":
		cfg.UseGrids = false
		cfg.UseRevAug = false
		cfg.UseTriplets = false
	}
	return cfg
}

// AblationCell is one (dataset, distance, variant) result in both spaces.
type AblationCell struct {
	Dataset   string
	Distance  string
	Variant   string
	Euclidean eval.Metrics
	Hamming   eval.Metrics
}

// Table3 reproduces Table III: the component ablation on the Fréchet
// distance and DTW, evaluated in Euclidean and Hamming space.
func Table3(scale Scale, log io.Writer) (*Table, []AblationCell, error) {
	p := ParamsFor(scale)
	tbl := &Table{
		Title:  "Table III — ablation study (-Grids, -RevAug, -Triplets)",
		Header: []string{"Dataset", "Distance", "Space", "Metric", "Traj2Hash", "-Grids", "-RevAug", "-Triplets"},
	}
	var cells []AblationCell
	distances := []dist.Func{dist.FrechetDist, dist.DTWDist}
	for _, city := range Cities() {
		env := NewEnv(city, p)
		for _, f := range distances {
			truth := eval.GroundTruth(f, env.Dataset.Queries, env.Dataset.Database, 60)
			// metric rows: [space][metric][variant]
			eu := map[string][]string{"HR@10": nil, "HR@50": nil, "R10@50": nil}
			ha := map[string][]string{"HR@10": nil, "HR@50": nil, "R10@50": nil}
			for _, variant := range AblationVariants {
				cfg := ablationConfig(p.CoreConfig(), variant)
				m, err := core.New(cfg, env.Dataset.All())
				if err != nil {
					return nil, nil, fmt.Errorf("table3 %s: %w", variant, err)
				}
				if _, err := m.Train(core.TrainData{
					Seeds: env.Dataset.Seeds, Validation: env.Dataset.Validation,
					Corpus: env.Dataset.Corpus, F: f,
				}); err != nil {
					return nil, nil, err
				}
				tr := &Trained{Name: variant, EmbedAll: m.EmbedAll, CodeAll: m.CodeAll}
				em, err := euclideanMetrics(tr, env, truth)
				if err != nil {
					return nil, nil, err
				}
				hm, err := hammingMetrics(tr, env, truth)
				if err != nil {
					return nil, nil, err
				}
				cells = append(cells, AblationCell{
					Dataset: city.Name, Distance: f.String(), Variant: variant,
					Euclidean: em, Hamming: hm,
				})
				eu["HR@10"] = append(eu["HR@10"], f4(em.HR10))
				eu["HR@50"] = append(eu["HR@50"], f4(em.HR50))
				eu["R10@50"] = append(eu["R10@50"], f4(em.R10At50))
				ha["HR@10"] = append(ha["HR@10"], f4(hm.HR10))
				ha["HR@50"] = append(ha["HR@50"], f4(hm.HR50))
				ha["R10@50"] = append(ha["R10@50"], f4(hm.R10At50))
				if log != nil {
					fmt.Fprintf(log, "table3 %s %s %s: eu HR@10=%.4f ham HR@10=%.4f\n",
						city.Name, f, variant, em.HR10, hm.HR10)
				}
			}
			for _, metric := range []string{"HR@10", "HR@50", "R10@50"} {
				tbl.Rows = append(tbl.Rows, append([]string{city.Name, f.String(), "Euclidean", metric}, eu[metric]...))
			}
			for _, metric := range []string{"HR@10", "HR@50", "R10@50"} {
				tbl.Rows = append(tbl.Rows, append([]string{city.Name, f.String(), "Hamming", metric}, ha[metric]...))
			}
		}
	}
	tbl.Notes = append(tbl.Notes, "ablations are cumulative: -RevAug also drops grids; -Triplets drops all three")
	return tbl, cells, nil
}
