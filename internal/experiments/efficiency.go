package experiments

import (
	"fmt"
	"io"
	"time"

	"traj2hash/internal/core"
	"traj2hash/internal/dist"
	"traj2hash/internal/hamming"
	"traj2hash/internal/search"
)

// TimingCell is one measured point of Figures 5 and 6.
type TimingCell struct {
	Dataset  string
	Distance string
	Strategy string
	DBSize   int
	K        int
	PerQuery time.Duration
	FastFrac float64 // fraction of queries answered via table lookup (hybrid)
}

// testDBSizes, when non-nil, overrides the efficiency ladder — the test
// hook companion of testParams. Never set outside tests.
var testDBSizes []int

// efficiencyDBSizes returns the database size ladder per scale: the paper
// sweeps 20K–100K; the scaled ladders preserve the 1:5 span.
func efficiencyDBSizes(s Scale) []int {
	if testDBSizes != nil {
		return testDBSizes
	}
	switch s {
	case Tiny:
		return []int{2000, 4000, 6000, 8000, 10000}
	case Small:
		return []int{4000, 8000, 12000, 16000, 20000}
	case Medium:
		return []int{10000, 20000, 30000, 40000, 50000}
	default:
		return []int{20000, 40000, 60000, 80000, 100000}
	}
}

// efficiencyQueries is the timing query count (a var so tests can shrink it).
var efficiencyQueries = 100

// efficiencyDistances are the two measures the paper's efficiency study
// covers (Section V-E).
var efficiencyDistances = []dist.Func{dist.DTWDist, dist.FrechetDist}

// timingEnv is a prepared dataset+model for one (dataset, distance) panel:
// embeddings and codes for the full database ladder and the query set.
type timingEnv struct {
	dataset string
	dist    string
	dbEmb   [][]float64
	qEmb    [][]float64
	dbCodes []hamming.Code
	qCodes  []hamming.Code
}

// prepareTiming trains one Traj2Hash model and embeds the timing corpus.
// Search cost is independent of model quality, so a short training
// suffices; what matters is that codes follow the real pipeline.
func prepareTiming(cityIdx int, f dist.Func, scale Scale) (*timingEnv, error) {
	p := ParamsFor(scale)
	p.Epochs = min(p.Epochs, 3)
	city := Cities()[cityIdx]
	env := NewEnv(city, p)
	m, err := core.New(p.CoreConfig(), env.Dataset.All())
	if err != nil {
		return nil, err
	}
	if _, err := m.Train(core.TrainData{
		Seeds: env.Dataset.Seeds, Validation: env.Dataset.Validation,
		Corpus: env.Dataset.Corpus, F: f,
	}); err != nil {
		return nil, err
	}
	sizes := efficiencyDBSizes(scale)
	maxDB := sizes[len(sizes)-1]
	db := city.Generate(maxDB, p.Seed+100)
	queries := city.Generate(efficiencyQueries, p.Seed+200)

	te := &timingEnv{dataset: city.Name, dist: f.String()}
	te.dbEmb = make([][]float64, len(db))
	te.dbCodes = make([]hamming.Code, len(db))
	for i, t := range db {
		te.dbEmb[i] = m.Embed(t)
		te.dbCodes[i] = hamming.FromSigns(te.dbEmb[i])
	}
	te.qEmb = make([][]float64, len(queries))
	te.qCodes = make([]hamming.Code, len(queries))
	for i, t := range queries {
		te.qEmb[i] = m.Embed(t)
		te.qCodes[i] = hamming.FromSigns(te.qEmb[i])
	}
	return te, nil
}

// timeStrategies measures the three Section V-E strategies on a database
// prefix of the given size.
func (te *timingEnv) timeStrategies(dbSize, k int) ([]TimingCell, error) {
	eb, err := search.NewEuclideanBF(te.dbEmb[:dbSize], te.qEmb)
	if err != nil {
		return nil, err
	}
	hb, err := search.NewHammingBF(te.dbCodes[:dbSize], te.qCodes)
	if err != nil {
		return nil, err
	}
	hh, err := search.NewHammingHybrid(te.dbCodes[:dbSize], te.qCodes)
	if err != nil {
		return nil, err
	}
	n := len(te.qEmb)
	out := make([]TimingCell, 0, 3)
	run := func(name string, s search.Searcher) TimingCell {
		start := time.Now()
		search.RunAll(s, n, k)
		return TimingCell{
			Dataset: te.dataset, Distance: te.dist, Strategy: name,
			DBSize: dbSize, K: k, PerQuery: time.Since(start) / time.Duration(n),
		}
	}
	out = append(out, run("Euclidean-BF", eb))
	out = append(out, run("Hamming-BF", hb))
	c := run("Hamming-Hybrid", hh)
	c.FastFrac = float64(hh.FastPathCount) / float64(n)
	out = append(out, c)
	return out, nil
}

// Fig5 reproduces Figure 5: per-query time of the three search strategies
// as the database grows, for top-50 search.
func Fig5(scale Scale, log io.Writer) (*Table, []TimingCell, error) {
	tbl := &Table{
		Title:  "Figure 5 — time cost vs database size (top-50, µs/query)",
		Header: []string{"Dataset", "Distance", "DB size", "Euclidean-BF", "Hamming-BF", "Hamming-Hybrid", "hybrid fast-path"},
	}
	var cells []TimingCell
	for ci := range Cities() {
		for _, f := range efficiencyDistances {
			te, err := prepareTiming(ci, f, scale)
			if err != nil {
				return nil, nil, fmt.Errorf("fig5: %w", err)
			}
			for _, size := range efficiencyDBSizes(scale) {
				cs, err := te.timeStrategies(size, 50)
				if err != nil {
					return nil, nil, err
				}
				cells = append(cells, cs...)
				tbl.Rows = append(tbl.Rows, []string{
					te.dataset, te.dist, fmt.Sprintf("%d", size),
					us(cs[0].PerQuery), us(cs[1].PerQuery), us(cs[2].PerQuery),
					fmt.Sprintf("%.0f%%", cs[2].FastFrac*100),
				})
				if log != nil {
					fmt.Fprintf(log, "fig5 %s %s db=%d: eu=%v ham=%v hybrid=%v\n",
						te.dataset, te.dist, size, cs[0].PerQuery, cs[1].PerQuery, cs[2].PerQuery)
				}
			}
		}
	}
	return tbl, cells, nil
}

// Fig6 reproduces Figure 6: per-query time versus the returned k at the
// largest database size.
func Fig6(scale Scale, log io.Writer) (*Table, []TimingCell, error) {
	tbl := &Table{
		Title:  "Figure 6 — time cost vs returned k (µs/query, largest database)",
		Header: []string{"Dataset", "Distance", "k", "Euclidean-BF", "Hamming-BF", "Hamming-Hybrid", "hybrid fast-path"},
	}
	sizes := efficiencyDBSizes(scale)
	dbSize := sizes[len(sizes)-1]
	var cells []TimingCell
	for ci := range Cities() {
		for _, f := range efficiencyDistances {
			te, err := prepareTiming(ci, f, scale)
			if err != nil {
				return nil, nil, fmt.Errorf("fig6: %w", err)
			}
			for _, k := range []int{10, 20, 30, 40, 50} {
				cs, err := te.timeStrategies(dbSize, k)
				if err != nil {
					return nil, nil, err
				}
				cells = append(cells, cs...)
				tbl.Rows = append(tbl.Rows, []string{
					te.dataset, te.dist, fmt.Sprintf("%d", k),
					us(cs[0].PerQuery), us(cs[1].PerQuery), us(cs[2].PerQuery),
					fmt.Sprintf("%.0f%%", cs[2].FastFrac*100),
				})
				if log != nil {
					fmt.Fprintf(log, "fig6 %s %s k=%d: eu=%v ham=%v hybrid=%v\n",
						te.dataset, te.dist, k, cs[0].PerQuery, cs[1].PerQuery, cs[2].PerQuery)
				}
			}
		}
	}
	return tbl, cells, nil
}

func us(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1000.0)
}
