package eval

import (
	"math/rand"
	"testing"

	"traj2hash/internal/topk"
)

// TestTopKIntoMatchesTopK checks that the buffer-reusing variant returns
// exactly the one-shot API's indices across shapes, including shrinking
// k between calls on the same selector.
func TestTopKIntoMatchesTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var sel topk.Selector
	var dst []int
	shapes := []struct{ n, k int }{
		{100, 10}, {50, 50}, {200, 3}, {10, 25}, {1, 1},
	}
	for _, sh := range shapes {
		row := make([]float64, sh.n)
		for i := range row {
			row[i] = float64(rng.Intn(15)) // coarse values force tie-breaks
		}
		want := TopK(row, sh.k)
		dst = TopKInto(row, sh.k, &sel, dst)
		if len(dst) != len(want) {
			t.Fatalf("n=%d k=%d: got %d indices, want %d", sh.n, sh.k, len(dst), len(want))
		}
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("n=%d k=%d index %d: got %d, want %d", sh.n, sh.k, i, dst[i], want[i])
			}
		}
	}
}

// TestHotpathTopKIntoZeroAlloc locks in the //perf:hotpath contract on
// TopKInto with warm selector and destination buffers.
func TestHotpathTopKIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	row := make([]float64, 1000)
	for i := range row {
		row[i] = rng.Float64()
	}
	var sel topk.Selector
	var dst []int
	dst = TopKInto(row, 50, &sel, dst) // warm both buffers
	allocs := testing.AllocsPerRun(100, func() {
		dst = TopKInto(row, 50, &sel, dst)
	})
	if allocs != 0 {
		t.Fatalf("TopKInto allocated %v per call, want 0", allocs)
	}
}

// BenchmarkHotpathEvalTopK measures the ground-truth inner loop:
// ranking one 10k-wide distance row to its top 50 with reused buffers.
func BenchmarkHotpathEvalTopK(b *testing.B) {
	rng := rand.New(rand.NewSource(35))
	row := make([]float64, 10000)
	for i := range row {
		row[i] = rng.Float64()
	}
	var sel topk.Selector
	var dst []int
	dst = TopKInto(row, 50, &sel, dst) // warm buffers: measure steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = TopKInto(row, 50, &sel, dst)
	}
}
