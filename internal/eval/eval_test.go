package eval

import (
	"math"
	"math/rand"
	"testing"

	"traj2hash/internal/dist"
	"traj2hash/internal/geo"
)

func TestTopK(t *testing.T) {
	row := []float64{5, 1, 3, 1, 4}
	got := TopK(row, 3)
	want := []int{1, 3, 2} // ties (indices 1, 3) break by index
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK = %v, want %v", got, want)
		}
	}
	if got := TopK(row, 100); len(got) != 5 {
		t.Errorf("clamped TopK len = %d", len(got))
	}
	if got := TopK(nil, 3); len(got) != 0 {
		t.Errorf("empty TopK = %v", got)
	}
}

func TestHitRatioPerfectAndDisjoint(t *testing.T) {
	truth := [][]int{{1, 2, 3}, {4, 5, 6}}
	if got := HitRatio(truth, truth, 3); got != 1 {
		t.Errorf("perfect HR = %v", got)
	}
	disjoint := [][]int{{7, 8, 9}, {10, 11, 12}}
	if got := HitRatio(disjoint, truth, 3); got != 0 {
		t.Errorf("disjoint HR = %v", got)
	}
	if got := HitRatio(nil, nil, 3); got != 0 {
		t.Errorf("empty HR = %v", got)
	}
}

func TestHitRatioPartial(t *testing.T) {
	truth := [][]int{{1, 2, 3, 4}}
	ret := [][]int{{1, 2, 9, 8}}
	if got := HitRatio(ret, truth, 4); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("HR = %v, want 0.5", got)
	}
	// Only the first k entries count.
	ret2 := [][]int{{9, 8, 7, 6, 1, 2, 3, 4}}
	if got := HitRatio(ret2, truth, 4); got != 0 {
		t.Errorf("HR beyond k = %v", got)
	}
}

func TestRecallR10At50(t *testing.T) {
	// Truth top-10 = 0..9; returned top-50 covers 7 of them.
	truth := make([][]int, 1)
	truth[0] = seq(0, 60)
	ret := [][]int{append(seq(3, 50), 100, 101, 102)}
	got := Recall(ret, truth, 50, 10)
	if math.Abs(got-0.7) > 1e-12 {
		t.Errorf("R10@50 = %v, want 0.7", got)
	}
}

func seq(lo, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

func TestEvaluateAgainstSelf(t *testing.T) {
	truth := make([][]int, 3)
	for i := range truth {
		truth[i] = seq(i*100, 60)
	}
	m := Evaluate(truth, truth)
	if m.HR10 != 1 || m.HR50 != 1 || m.R10At50 != 1 {
		t.Errorf("self metrics = %+v", m)
	}
}

func TestGroundTruthMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mk := func(n int) geo.Trajectory {
		tr := make(geo.Trajectory, n)
		p := geo.Point{}
		for i := range tr {
			p = p.Add(geo.Point{X: rng.NormFloat64(), Y: rng.NormFloat64()})
			tr[i] = p
		}
		return tr
	}
	queries := []geo.Trajectory{mk(8), mk(12)}
	db := make([]geo.Trajectory, 20)
	for i := range db {
		db[i] = mk(5 + rng.Intn(10))
	}
	gt := GroundTruth(dist.DTWDist, queries, db, 5)
	for qi, q := range queries {
		// Manual brute force.
		ds := make([]float64, len(db))
		for i, d := range db {
			ds[i] = dist.DTW(q, d)
		}
		want := TopK(ds, 5)
		for i := range want {
			if gt[qi][i] != want[i] {
				t.Fatalf("query %d: gt %v, want %v", qi, gt[qi], want)
			}
		}
	}
}

func TestMetricsMonotoneInNoise(t *testing.T) {
	// Property: corrupting more of the returned list cannot raise HR@k.
	rng := rand.New(rand.NewSource(2))
	truth := [][]int{seq(0, 50)}
	prev := 1.0
	for corrupt := 0; corrupt <= 50; corrupt += 10 {
		ret := [][]int{append([]int(nil), truth[0]...)}
		for i := 0; i < corrupt; i++ {
			ret[0][i] = 1000 + rng.Intn(1000)
		}
		hr := HitRatio(ret, truth, 50)
		if hr > prev+1e-12 {
			t.Errorf("HR increased with corruption: %v -> %v", prev, hr)
		}
		prev = hr
	}
}
