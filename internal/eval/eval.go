// Package eval implements the evaluation protocol of Section V-A: exact
// top-k ground truth under a trajectory distance function, and the three
// retrieval metrics HR@10, HR@50, and R10@50.
package eval

import (
	"sort"

	"traj2hash/internal/dist"
	"traj2hash/internal/geo"
)

// TopK returns the indices of the k smallest values in row, ties broken by
// index. k is clamped to len(row).
func TopK(row []float64, k int) []int {
	idx := make([]int, len(row))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		//lint:ignore floatcompare sort tie-break over stored distances; exact inequality of the same stored values is the documented ascending-index determinism contract
		if row[idx[a]] != row[idx[b]] {
			return row[idx[a]] < row[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// GroundTruth computes, for each query, the exact top-k database indices
// under distance function f.
func GroundTruth(f dist.Func, queries, db []geo.Trajectory, k int) [][]int {
	m := dist.CrossMatrix(f, queries, db)
	out := make([][]int, len(queries))
	for i, row := range m {
		out[i] = TopK(row, k)
	}
	return out
}

// HitRatio returns HR@k: the mean overlap between the first k entries of
// each returned list and the first k entries of the ground truth
// (|returned_k ∩ truth_k| / k), averaged over queries.
func HitRatio(returned, truth [][]int, k int) float64 {
	if len(returned) == 0 {
		return 0
	}
	var total float64
	for q := range returned {
		total += overlap(clampK(returned[q], k), clampK(truth[q], k)) / float64(k)
	}
	return total / float64(len(returned))
}

// Recall returns R{kTruth}@{kReturned}: the fraction of the top-kTruth
// ground truth covered by the top-kReturned results, averaged over queries.
// R10@50 is Recall(returned, truth, 50, 10).
func Recall(returned, truth [][]int, kReturned, kTruth int) float64 {
	if len(returned) == 0 {
		return 0
	}
	var total float64
	for q := range returned {
		total += overlap(clampK(returned[q], kReturned), clampK(truth[q], kTruth)) / float64(kTruth)
	}
	return total / float64(len(returned))
}

func clampK(ids []int, k int) []int {
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}

func overlap(a, b []int) float64 {
	set := make(map[int]struct{}, len(a))
	for _, v := range a {
		set[v] = struct{}{}
	}
	var n float64
	for _, v := range b {
		if _, ok := set[v]; ok {
			n++
		}
	}
	return n
}

// Metrics bundles the three retrieval metrics of Section V-A4.
type Metrics struct {
	HR10, HR50, R10At50 float64
}

// Evaluate computes HR@10, HR@50, and R10@50 from returned lists (each at
// least 50 long where possible) and exact ground truth (same).
func Evaluate(returned, truth [][]int) Metrics {
	return Metrics{
		HR10:    HitRatio(returned, truth, 10),
		HR50:    HitRatio(returned, truth, 50),
		R10At50: Recall(returned, truth, 50, 10),
	}
}
