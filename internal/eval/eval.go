// Package eval implements the evaluation protocol of Section V-A: exact
// top-k ground truth under a trajectory distance function, and the three
// retrieval metrics HR@10, HR@50, and R10@50.
package eval

import (
	"traj2hash/internal/dist"
	"traj2hash/internal/geo"
	"traj2hash/internal/topk"
)

// TopK returns the indices of the k smallest values in row, ties broken by
// index. k is clamped to len(row). The result is freshly allocated; the
// experiment harness's ground-truth loop uses TopKInto with reused state
// instead.
func TopK(row []float64, k int) []int {
	var sel topk.Selector
	return TopKInto(row, k, &sel, nil)
}

// TopKInto is TopK with caller-owned state: sel holds the bounded-heap
// selection buffer and dst the result storage (appended from length 0,
// so a dst with capacity ≥ min(k, len(row)) makes the call
// allocation-free). Selection is O(n log k) against the former full
// sort's O(n log n), with the identical (value, index) ascending
// ordering contract.
//
//perf:hotpath ground-truth computation ranks every query row of a queries×database distance matrix; this is the experiment harness's inner loop
func TopKInto(row []float64, k int, sel *topk.Selector, dst []int) []int {
	items := sel.Select(len(row), k, func(i int) float64 { return row[i] })
	dst = dst[:0]
	for _, it := range items {
		dst = append(dst, it.ID)
	}
	return dst
}

// GroundTruth computes, for each query, the exact top-k database indices
// under distance function f. All per-query index slices share one flat
// backing array, and one selector serves every row.
func GroundTruth(f dist.Func, queries, db []geo.Trajectory, k int) [][]int {
	m := dist.CrossMatrix(f, queries, db)
	out := make([][]int, len(queries))
	kc := k
	if kc > len(db) {
		kc = len(db)
	}
	if kc < 0 {
		kc = 0
	}
	flat := make([]int, len(queries)*kc)
	var sel topk.Selector
	for i, row := range m {
		dst := flat[i*kc : i*kc : (i+1)*kc]
		out[i] = TopKInto(row, k, &sel, dst)
	}
	return out
}

// HitRatio returns HR@k: the mean overlap between the first k entries of
// each returned list and the first k entries of the ground truth
// (|returned_k ∩ truth_k| / k), averaged over queries.
func HitRatio(returned, truth [][]int, k int) float64 {
	if len(returned) == 0 {
		return 0
	}
	var total float64
	for q := range returned {
		total += overlap(clampK(returned[q], k), clampK(truth[q], k)) / float64(k)
	}
	return total / float64(len(returned))
}

// Recall returns R{kTruth}@{kReturned}: the fraction of the top-kTruth
// ground truth covered by the top-kReturned results, averaged over queries.
// R10@50 is Recall(returned, truth, 50, 10).
func Recall(returned, truth [][]int, kReturned, kTruth int) float64 {
	if len(returned) == 0 {
		return 0
	}
	var total float64
	for q := range returned {
		total += overlap(clampK(returned[q], kReturned), clampK(truth[q], kTruth)) / float64(kTruth)
	}
	return total / float64(len(returned))
}

func clampK(ids []int, k int) []int {
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}

func overlap(a, b []int) float64 {
	set := make(map[int]struct{}, len(a))
	for _, v := range a {
		set[v] = struct{}{}
	}
	var n float64
	for _, v := range b {
		if _, ok := set[v]; ok {
			n++
		}
	}
	return n
}

// Metrics bundles the three retrieval metrics of Section V-A4.
type Metrics struct {
	HR10, HR50, R10At50 float64
}

// Evaluate computes HR@10, HR@50, and R10@50 from returned lists (each at
// least 50 long where possible) and exact ground truth (same).
func Evaluate(returned, truth [][]int) Metrics {
	return Metrics{
		HR10:    HitRatio(returned, truth, 10),
		HR50:    HitRatio(returned, truth, 50),
		R10At50: Recall(returned, truth, 50, 10),
	}
}
