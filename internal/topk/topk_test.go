package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSelectMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(60)
		dists := make([]float64, n)
		for i := range dists {
			dists[i] = float64(rng.Intn(40)) // ints force tie-breaking
		}
		got := SelectSlice(dists, k)

		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			if dists[idx[a]] != dists[idx[b]] {
				return dists[idx[a]] < dists[idx[b]]
			}
			return idx[a] < idx[b]
		})
		want := k
		if want > n {
			want = n
		}
		if len(got) != want {
			t.Fatalf("len = %d, want %d", len(got), want)
		}
		for i := 0; i < want; i++ {
			if got[i].ID != idx[i] {
				t.Fatalf("trial %d rank %d: got id %d (d=%v), want %d (d=%v)",
					trial, i, got[i].ID, got[i].Dist, idx[i], dists[idx[i]])
			}
		}
	}
}

func TestSelectEdgeCases(t *testing.T) {
	if got := SelectSlice(nil, 5); got != nil {
		t.Errorf("empty input = %v", got)
	}
	if got := SelectSlice([]float64{1, 2}, 0); got != nil {
		t.Errorf("k=0 = %v", got)
	}
	got := SelectSlice([]float64{3}, 10)
	if len(got) != 1 || got[0].ID != 0 {
		t.Errorf("k>n = %v", got)
	}
}

func TestSelectSortedOutput(t *testing.T) {
	f := func(raw []float64) bool {
		for i, v := range raw {
			if v != v || v > 1e300 || v < -1e300 {
				raw[i] = 0
			}
		}
		got := SelectSlice(raw, 7)
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist {
				return false
			}
			if got[i].Dist == got[i-1].Dist && got[i].ID < got[i-1].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
