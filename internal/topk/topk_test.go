package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSelectMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(60)
		dists := make([]float64, n)
		for i := range dists {
			dists[i] = float64(rng.Intn(40)) // ints force tie-breaking
		}
		got := SelectSlice(dists, k)

		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			if dists[idx[a]] != dists[idx[b]] {
				return dists[idx[a]] < dists[idx[b]]
			}
			return idx[a] < idx[b]
		})
		want := k
		if want > n {
			want = n
		}
		if len(got) != want {
			t.Fatalf("len = %d, want %d", len(got), want)
		}
		for i := 0; i < want; i++ {
			if got[i].ID != idx[i] {
				t.Fatalf("trial %d rank %d: got id %d (d=%v), want %d (d=%v)",
					trial, i, got[i].ID, got[i].Dist, idx[i], dists[idx[i]])
			}
		}
	}
}

// TestSelectTieDeterminism is the regression test for the deterministic
// tie-break contract: under equal distances the smallest ids win and the
// output is sorted by (Dist, ID) ascending. The engine's cross-backend
// parity (sharded merge == single scan, MIH == Hamming-BF) depends on
// this holding on both heap paths — initial fill (n ≤ k) and root
// replacement (n > k).
func TestSelectTieDeterminism(t *testing.T) {
	// Pure ties, n > k: stresses the replacement path — every item after
	// the fill ties with the heap root and must evict larger ids.
	got := Select(1000, 10, func(int) float64 { return 5 })
	if len(got) != 10 {
		t.Fatalf("len = %d", len(got))
	}
	for i, it := range got {
		if it.ID != i || it.Dist != 5 {
			t.Fatalf("rank %d = %+v, want id %d", i, it, i)
		}
	}
	// Pure ties, n ≤ k: the fill path must come out id-sorted too.
	got = Select(8, 20, func(int) float64 { return 1 })
	for i, it := range got {
		if it.ID != i {
			t.Fatalf("fill path rank %d = %+v", i, it)
		}
	}
	// Grouped ties with the winning group arriving last: ids of the
	// smallest distance group are selected in ascending order.
	got = Select(90, 6, func(i int) float64 { return float64(2 - i/30) })
	for i, it := range got {
		if it.ID != 60+i || it.Dist != 0 {
			t.Fatalf("grouped rank %d = %+v, want id %d dist 0", i, it, 60+i)
		}
	}
	// Identical calls are bitwise identical (full determinism).
	a := Select(500, 25, func(i int) float64 { return float64(i % 7) })
	b := Select(500, 25, func(i int) float64 { return float64(i % 7) })
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at rank %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSelectEdgeCases(t *testing.T) {
	if got := SelectSlice(nil, 5); got != nil {
		t.Errorf("empty input = %v", got)
	}
	if got := SelectSlice([]float64{1, 2}, 0); got != nil {
		t.Errorf("k=0 = %v", got)
	}
	got := SelectSlice([]float64{3}, 10)
	if len(got) != 1 || got[0].ID != 0 {
		t.Errorf("k>n = %v", got)
	}
}

func TestSelectSortedOutput(t *testing.T) {
	f := func(raw []float64) bool {
		for i, v := range raw {
			if v != v || v > 1e300 || v < -1e300 {
				raw[i] = 0
			}
		}
		got := SelectSlice(raw, 7)
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist {
				return false
			}
			if got[i].Dist == got[i-1].Dist && got[i].ID < got[i-1].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
