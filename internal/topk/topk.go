// Package topk provides bounded top-k selection by score: O(n log k)
// instead of sorting the full candidate list, which is what makes the
// distance computation (not the sort) dominate brute-force search costs —
// matching how the paper's search strategies are implemented.
//
// The core is the reusable Selector: a bounded max-heap whose backing
// array survives across calls, so steady-state selection performs zero
// heap allocations (the //perf:hotpath contract on Selector.Select,
// enforced by trajlint's hotpathalloc rule and locked in by the
// AllocsPerRun tests). The package-level Select/SelectSlice helpers
// remain the convenient one-shot forms.
package topk

// Item is a candidate with its distance (smaller is better).
type Item struct {
	ID   int
	Dist float64
}

// worse reports whether a ranks after b: greater distance, ties broken
// by greater id. It is a total order over distinct ids, which is what
// makes Select's output deterministic and lets the sharded engine merge
// per-shard top-k lists into the exact global answer (see the
// cross-backend parity tests in internal/engine).
func worse(a, b Item) bool {
	//lint:ignore floatcompare heap tie-break over stored distances; exact inequality of the same stored values is the ascending-id determinism contract
	if a.Dist != b.Dist {
		return a.Dist > b.Dist
	}
	return a.ID > b.ID
}

// heapify builds the max-heap invariant in place in O(len(h)) (Floyd's
// bottom-up construction). It runs once per Select, outside the scan
// loop — which is also what keeps its bounds checks out of the
// //perf:hotpath loop contract: per-item sift-up indexing (i = (i-1)/2)
// is beyond what the compiler's prove pass can discharge.
func heapify(h []Item) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i, len(h))
	}
}

// siftDown restores the invariant from index i within h[:m].
func siftDown(h []Item, i, m int) {
	for {
		l, r := 2*i+1, 2*i+2
		w := i
		if l < m && worse(h[l], h[w]) {
			w = l
		}
		if r < m && worse(h[r], h[w]) {
			w = r
		}
		if w == i {
			return
		}
		h[i], h[w] = h[w], h[i]
		i = w
	}
}

// Selector is reusable top-k selection state. The zero value is ready to
// use; the heap's backing array is recycled across calls, so a Selector
// kept across queries allocates nothing per call once it has grown to
// the largest k it has seen (append's amortized growth is the only
// allocation it ever performs). A Selector is not safe for concurrent
// use, and the slice returned by Select aliases the Selector's buffer —
// consume or copy it before the next call.
type Selector struct {
	h []Item
}

// Select returns the k items with the smallest distances among ids
// [0, n), using the dist callback, sorted ascending with ties broken by
// ascending id (the worse ordering, exactly as the package-level Select
// documents). The result aliases the Selector's internal buffer.
//
// The final ordering pass is an in-place heapsort over the already-built
// max-heap rather than sort.Slice: the closure and interface boxing of
// sort.Slice are per-call allocations, and selection runs once per query
// per shard. dist is called exactly once per id, in ascending id order.
//
//perf:hotpath top-k selection runs once per query per shard; the scan it ranks only keeps its O(n log k) bound if selection itself stays allocation-free
func (s *Selector) Select(n, k int, dist func(i int) float64) []Item {
	if k <= 0 || n <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	// Bounded max-heap of the current best k: the root is the worst kept.
	// The first k items fill the buffer unordered and heapify once —
	// O(k) instead of k sift-ups, and the decision loop below compares
	// only against the root, which is the same unique worst element under
	// any valid heap layout, so the output ordering contract is
	// unaffected by the construction order.
	h := s.h[:0]
	for i := 0; i < k; i++ {
		h = append(h, Item{ID: i, Dist: dist(i)})
	}
	heapify(h)
	if len(h) == 0 {
		return nil // unreachable (k ≥ 1); pins len(h) > 0 for the prover
	}
	for i := k; i < n; i++ {
		it := Item{ID: i, Dist: dist(i)}
		if worse(h[0], it) {
			h[0] = it
			siftDown(h, 0, len(h))
		}
	}
	// Heapsort: repeatedly move the worst remaining to the tail, leaving
	// the array ascending (best first) under the worse ordering.
	for m := len(h); m > 1; m-- {
		h[0], h[m-1] = h[m-1], h[0]
		siftDown(h, 0, m-1)
	}
	s.h = h
	return h
}

// Select returns the k items with the smallest distances among ids
// [0, n), using the dist callback, sorted ascending with ties broken by
// ascending id. The tie-break is a contract, not an accident (see
// worse). The returned slice is freshly allocated; hot paths that select
// repeatedly should hold a Selector instead.
func Select(n, k int, dist func(i int) float64) []Item {
	var s Selector
	return s.Select(n, k, dist)
}

// SelectSlice is Select over a precomputed distance slice.
func SelectSlice(dists []float64, k int) []Item {
	return Select(len(dists), k, func(i int) float64 { return dists[i] })
}
