// Package topk provides bounded top-k selection by score: O(n log k)
// instead of sorting the full candidate list, which is what makes the
// distance computation (not the sort) dominate brute-force search costs —
// matching how the paper's search strategies are implemented.
package topk

import "sort"

// Item is a candidate with its distance (smaller is better).
type Item struct {
	ID   int
	Dist float64
}

// Select returns the k items with the smallest distances among ids
// [0, n), using the dist callback, sorted ascending with ties broken by
// ascending id. The tie-break is a contract, not an accident: every
// search backend ranks with Select (or mirrors its ordering), which is
// what makes results deterministic and lets the sharded engine merge
// per-shard top-k lists into the exact global answer (see the
// cross-backend parity tests in internal/engine).
func Select(n, k int, dist func(i int) float64) []Item {
	if k <= 0 || n <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	// Bounded max-heap of the current best k: the root is the worst kept.
	h := make([]Item, 0, k)
	worse := func(a, b Item) bool { // a is worse than b
		//lint:ignore floatcompare heap tie-break over stored distances; exact inequality of the same stored values is the ascending-id determinism contract
		if a.Dist != b.Dist {
			return a.Dist > b.Dist
		}
		return a.ID > b.ID
	}
	siftUp := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !worse(h[i], h[p]) {
				break
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	siftDown := func() {
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			w := i
			if l < len(h) && worse(h[l], h[w]) {
				w = l
			}
			if r < len(h) && worse(h[r], h[w]) {
				w = r
			}
			if w == i {
				return
			}
			h[i], h[w] = h[w], h[i]
			i = w
		}
	}
	for i := 0; i < n; i++ {
		it := Item{ID: i, Dist: dist(i)}
		if len(h) < k {
			h = append(h, it)
			siftUp(len(h) - 1)
			continue
		}
		if worse(h[0], it) {
			h[0] = it
			siftDown()
		}
	}
	sort.Slice(h, func(a, b int) bool { return worse(h[b], h[a]) })
	return h
}

// SelectSlice is Select over a precomputed distance slice.
func SelectSlice(dists []float64, k int) []Item {
	return Select(len(dists), k, func(i int) float64 { return dists[i] })
}
