package topk

import (
	"math/rand"
	"testing"
)

// TestSelectorMatchesSelect checks that a reused Selector produces the
// same ranking as the one-shot Select across varying n and k, including
// shrinking k (the buffer must not leak stale entries between calls).
func TestSelectorMatchesSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var sel Selector
	shapes := []struct{ n, k int }{
		{100, 10}, {50, 50}, {200, 3}, {10, 25}, {1, 1}, {64, 8},
	}
	for _, sh := range shapes {
		dists := make([]float64, sh.n)
		for i := range dists {
			dists[i] = float64(rng.Intn(20)) // coarse values force tie-breaks
		}
		want := SelectSlice(dists, sh.k)
		got := sel.Select(sh.n, sh.k, func(i int) float64 { return dists[i] })
		if len(got) != len(want) {
			t.Fatalf("n=%d k=%d: got %d items, want %d", sh.n, sh.k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d k=%d item %d: got %+v, want %+v", sh.n, sh.k, i, got[i], want[i])
			}
		}
	}
}

// TestSelectorEmptyInputs checks the degenerate contracts.
func TestSelectorEmptyInputs(t *testing.T) {
	var sel Selector
	if got := sel.Select(0, 5, nil); got != nil {
		t.Errorf("n=0: got %v, want nil", got)
	}
	if got := sel.Select(5, 0, nil); got != nil {
		t.Errorf("k=0: got %v, want nil", got)
	}
}

// TestHotpathSelectorZeroAlloc locks in the //perf:hotpath contract on
// Selector.Select: after the first call has grown the buffer, selection
// performs zero heap allocations per call.
func TestHotpathSelectorZeroAlloc(t *testing.T) {
	const n, k = 2048, 32
	dists := make([]float64, n)
	rng := rand.New(rand.NewSource(11))
	for i := range dists {
		dists[i] = rng.Float64()
	}
	var sel Selector
	sel.Select(n, k, func(i int) float64 { return dists[i] }) // warm the buffer
	allocs := testing.AllocsPerRun(100, func() {
		sel.Select(n, k, func(i int) float64 { return dists[i] })
	})
	if allocs != 0 {
		t.Fatalf("Selector.Select allocated %v per call, want 0", allocs)
	}
}

// BenchmarkHotpathTopKSelect measures steady-state selection with a
// reused Selector (the BENCH_hotpath.json artifact locks allocs/op at
// its recorded floor via scripts/hotpath_floors.json).
func BenchmarkHotpathTopKSelect(b *testing.B) {
	const n, k = 10000, 50
	dists := make([]float64, n)
	rng := rand.New(rand.NewSource(13))
	for i := range dists {
		dists[i] = rng.Float64()
	}
	var sel Selector
	dist := func(i int) float64 { return dists[i] }
	sel.Select(n, k, dist) // warm the buffer: measure steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel.Select(n, k, dist)
	}
}
