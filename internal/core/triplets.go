package core

import (
	"math/rand"
	"sort"

	"traj2hash/internal/geo"
	"traj2hash/internal/grid"
)

// Triplet indexes an (anchor, positive, negative) trajectory triple into a
// corpus slice.
type Triplet struct {
	Anchor, Positive, Negative int
}

// GenerateTriplets implements the fast triplet generation of Section IV-F:
// corpus trajectories are mapped to coarse grid trajectories (500 m cells
// by default), trajectories sharing the same compressed grid sequence form
// a cluster, and triplets draw (anchor, positive) from one cluster and the
// negative from outside it. Trajectories inside a cluster are within the
// grid size of one another under the Fréchet distance, so no exact distance
// computation is needed.
//
// It returns up to n triplets; fewer when the corpus yields too few
// multi-member clusters.
func GenerateTriplets(corpus []geo.Trajectory, cellSize float64, n int, seed int64) []Triplet {
	if len(corpus) < 3 || n <= 0 {
		return nil
	}
	g, err := grid.FromTrajectories(corpus, cellSize)
	if err != nil {
		return nil
	}
	clusters := map[string][]int{}
	for i, t := range corpus {
		key := grid.KeyOf(g.CompressedGridTrajectory(t))
		clusters[key] = append(clusters[key], i)
	}
	// Collect clusters with at least two members, ordered by their first
	// member so generation is deterministic despite map iteration order.
	var multi [][]int
	inCluster := make(map[int]string, len(corpus))
	for key, ids := range clusters {
		for _, id := range ids {
			inCluster[id] = key
		}
		if len(ids) >= 2 {
			multi = append(multi, ids)
		}
	}
	sort.Slice(multi, func(i, j int) bool { return multi[i][0] < multi[j][0] })
	if len(multi) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Triplet, 0, n)
	for len(out) < n {
		c := multi[rng.Intn(len(multi))]
		a := c[rng.Intn(len(c))]
		p := c[rng.Intn(len(c))]
		for tries := 0; p == a && tries < 8; tries++ {
			p = c[rng.Intn(len(c))]
		}
		if p == a {
			continue
		}
		// Negative: any corpus trajectory outside the anchor's cluster.
		neg := rng.Intn(len(corpus))
		ok := false
		for tries := 0; tries < 16; tries++ {
			if inCluster[neg] != inCluster[a] {
				ok = true
				break
			}
			neg = rng.Intn(len(corpus))
		}
		if !ok {
			// Corpus degenerate (nearly one cluster): give up gracefully.
			return out
		}
		out = append(out, Triplet{Anchor: a, Positive: p, Negative: neg})
	}
	return out
}

// ClusterStats summarizes the coarse-grid clustering for diagnostics.
type ClusterStats struct {
	Clusters     int // total clusters
	MultiMember  int // clusters with ≥ 2 trajectories
	LargestSize  int
	CoveredTrajs int // trajectories inside multi-member clusters
}

// AnalyzeClusters reports how clusterable a corpus is under the coarse
// grid — the feasibility check for fast triplet generation.
func AnalyzeClusters(corpus []geo.Trajectory, cellSize float64) ClusterStats {
	var st ClusterStats
	if len(corpus) == 0 {
		return st
	}
	g, err := grid.FromTrajectories(corpus, cellSize)
	if err != nil {
		return st
	}
	clusters := map[string]int{}
	for _, t := range corpus {
		clusters[grid.KeyOf(g.CompressedGridTrajectory(t))]++
	}
	st.Clusters = len(clusters)
	for _, n := range clusters {
		if n >= 2 {
			st.MultiMember++
			st.CoveredTrajs += n
		}
		if n > st.LargestSize {
			st.LargestSize = n
		}
	}
	return st
}
