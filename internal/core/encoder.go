package core

import (
	"bufio"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"traj2hash/internal/geo"
	"traj2hash/internal/hamming"
	"traj2hash/internal/nn"
)

// Encoder is the pluggable trajectory-encoder seam of the library: any
// implementation maps a GPS trajectory to a dense Euclidean-space
// embedding and, via the sign convention of Equation 16, to a binary
// Hamming-space code. The paper's attention model (Model), the
// training-free GeoPTH-style prototype hasher (GeoPTH), and the CNN over
// grid rasterizations (CNNEncoder) all implement it; the public Index,
// the CLI, and the experiment harness are written against this interface
// and work with any registered kind.
//
// Contract (enforced by the cross-encoder contract test):
//   - Embed is deterministic and returns exactly Dim() values;
//   - Code(t) equals hamming.FromSigns(Embed(t));
//   - EmbedAll and EmbedAllParallel agree with per-trajectory Embed, and
//     EmbedAllParallel is safe for concurrent use while no training step
//     runs.
type Encoder interface {
	// Kind returns the encoder's registry name (see EncoderKinds).
	Kind() string
	// Dim returns the embedding width, which equals the configured code
	// length (Config.HashBits): one sign bit per embedding coordinate.
	Dim() int
	// Embed returns the Euclidean-space embedding of a trajectory.
	Embed(t geo.Trajectory) []float64
	// EmbedAll embeds a batch sequentially.
	EmbedAll(ts []geo.Trajectory) [][]float64
	// EmbedAllParallel embeds a batch across worker goroutines
	// (workers ≤ 0 uses GOMAXPROCS); output order matches ts.
	EmbedAllParallel(ts []geo.Trajectory, workers int) [][]float64
	// Code returns the Hamming-space code sign(Embed(t)).
	Code(t geo.Trajectory) hamming.Code
	// CodeAll hashes a batch of trajectories.
	CodeAll(ts []geo.Trajectory) []hamming.Code
}

// Trainable is the sub-interface of encoders whose parameters are fitted
// by the gradient training loop (Section IV-F). Training-free encoders —
// GeoPTH — deliberately do not implement it; callers that require
// training should type-assert and fail fast (the CLI train subcommand
// does exactly that).
type Trainable interface {
	Encoder
	// Params returns the trainable parameter tensors (gradient access).
	Params() []*nn.Tensor
	// SetParams overwrites the parameter values from flat per-tensor
	// slices in Params() order, rejecting length mismatches.
	SetParams(groups [][]float64) error
	// Train fits the encoder on the given supervision; a thin wrapper
	// over TrainCtx with a background context.
	Train(td TrainData) (*History, error)
	// TrainCtx is Train honoring cancellation, checkpointing, resume,
	// and the divergence guard (see Model.TrainCtx for the contract).
	TrainCtx(ctx context.Context, td TrainData) (*History, error)
}

// EncoderSaver is implemented by encoders that can persist themselves;
// SaveEncoder wraps the raw stream in a kind-tagged container so
// LoadEncoder can dispatch to the right loader.
type EncoderSaver interface {
	Encoder
	// Save writes the encoder's raw serialized form to w.
	Save(w io.Writer) error
}

// EncoderFactory builds a fresh encoder of one kind. The study space
// (grid extents, normalization statistics, prototype pools) is fitted on
// space, which should cover all data the encoder will see.
type EncoderFactory func(cfg Config, space []geo.Trajectory) (Encoder, error)

// EncoderLoader reads one kind's raw serialized form (the bytes written
// by EncoderSaver.Save, without the container header).
type EncoderLoader func(r io.Reader) (Encoder, error)

// The built-in encoder kinds.
const (
	// AttentionKind is the paper's two-channel attention model (Model).
	AttentionKind = "attention"
	// GeoPTHKind is the training-free geometric prototype hasher.
	GeoPTHKind = "geopth"
	// CNNKind is the convolutional encoder over grid rasterizations.
	CNNKind = "cnn"
)

type encoderEntry struct {
	factory EncoderFactory
	loader  EncoderLoader
}

var (
	encRegMu   sync.RWMutex
	encoderReg = map[string]encoderEntry{}
	encAliases = map[string]string{
		// The paper model predates the interface; accept its old names.
		"model":     AttentionKind,
		"traj2hash": AttentionKind,
	}
)

// RegisterEncoder makes an encoder kind constructible by name. loader
// may be nil for kinds without a serialized form. It panics on duplicate
// registration, mirroring the engine's backend registry.
func RegisterEncoder(kind string, factory EncoderFactory, loader EncoderLoader) {
	encRegMu.Lock()
	defer encRegMu.Unlock()
	if _, dup := encoderReg[kind]; dup {
		panic(fmt.Sprintf("core: duplicate encoder kind %q", kind))
	}
	encoderReg[kind] = encoderEntry{factory: factory, loader: loader}
}

// ResolveEncoderKind canonicalizes an encoder kind, following aliases.
func ResolveEncoderKind(kind string) (string, error) {
	encRegMu.RLock()
	defer encRegMu.RUnlock()
	if a, ok := encAliases[kind]; ok {
		kind = a
	}
	if _, ok := encoderReg[kind]; !ok {
		return "", fmt.Errorf("core: unknown encoder kind %q (have %v)", kind, encoderKindsLocked())
	}
	return kind, nil
}

// EncoderKinds returns the names of all registered encoder kinds, sorted.
func EncoderKinds() []string {
	encRegMu.RLock()
	defer encRegMu.RUnlock()
	return encoderKindsLocked()
}

func encoderKindsLocked() []string {
	kinds := make([]string, 0, len(encoderReg))
	for k := range encoderReg {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// NewEncoder builds a fresh encoder of the given (possibly aliased) kind
// with its study space fitted on space.
func NewEncoder(kind string, cfg Config, space []geo.Trajectory) (Encoder, error) {
	canonical, err := ResolveEncoderKind(kind)
	if err != nil {
		return nil, err
	}
	return encoderEntryFor(canonical).factory(cfg, space)
}

// encoderEntryFor reads a (known-registered) kind's entry under the lock.
func encoderEntryFor(canonical string) encoderEntry {
	encRegMu.RLock()
	defer encRegMu.RUnlock()
	return encoderReg[canonical]
}

// encoderBlob is the kind-tagged container SaveEncoder writes: the kind
// header dispatches LoadEncoder to the registered loader for the raw
// bytes that follow.
type encoderBlob struct {
	Kind string
	Raw  []byte
}

// SaveEncoder writes any serializable encoder to w in the kind-tagged
// container format LoadEncoder reads.
func SaveEncoder(w io.Writer, enc Encoder) error {
	saver, ok := enc.(EncoderSaver)
	if !ok {
		return fmt.Errorf("core: encoder kind %q is not serializable", enc.Kind())
	}
	var raw bytesBuffer
	if err := saver.Save(&raw); err != nil {
		return err
	}
	if err := gob.NewEncoder(w).Encode(encoderBlob{Kind: enc.Kind(), Raw: raw.b}); err != nil {
		return fmt.Errorf("core: save encoder: %w", err)
	}
	return nil
}

// bytesBuffer is a minimal in-memory io.Writer (avoids importing bytes
// just for a buffer).
type bytesBuffer struct{ b []byte }

// Write appends p to the buffer; it never fails.
func (w *bytesBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// LoadEncoder reads an encoder written by SaveEncoder, dispatching on the
// container's kind header.
func LoadEncoder(r io.Reader) (Encoder, error) {
	var blob encoderBlob
	if err := gob.NewDecoder(r).Decode(&blob); err != nil {
		return nil, fmt.Errorf("core: load encoder: %w", err)
	}
	canonical, err := ResolveEncoderKind(blob.Kind)
	if err != nil {
		return nil, err
	}
	entry := encoderEntryFor(canonical)
	if entry.loader == nil {
		return nil, fmt.Errorf("core: encoder kind %q has no loader", canonical)
	}
	return entry.loader(newSliceReader(blob.Raw))
}

// newSliceReader wraps raw bytes as a buffered reader so gob-based
// loaders see an io.ByteReader (the same requirement LoadCheckpointFile
// documents).
func newSliceReader(b []byte) io.Reader { return bufio.NewReader(&sliceReader{b: b}) }

type sliceReader struct {
	b   []byte
	off int
}

// Read implements io.Reader over the remaining bytes.
func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.off:])
	r.off += n
	return n, nil
}

// SaveEncoderFile writes an encoder to path in the container format.
func SaveEncoderFile(path string, enc Encoder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := SaveEncoder(f, enc); err != nil {
		return err
	}
	return f.Close()
}

// LoadEncoderFile reads an encoder from path: first as the kind-tagged
// container SaveEncoderFile writes, then — for files that predate the
// encoder interface — as a raw attention-model stream (Model.SaveFile's
// format), so every model file ever written by this library keeps
// loading.
func LoadEncoderFile(path string) (Encoder, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	enc, cerr := LoadEncoder(bufio.NewReader(f))
	if cerr == nil {
		//lint:ignore errcheck read-only file; the decode already succeeded
		f.Close()
		return enc, nil
	}
	//lint:ignore errcheck read-only file; falling back to the legacy decode path
	f.Close()
	m, merr := LoadFile(path)
	if merr != nil {
		return nil, fmt.Errorf("core: %s is neither an encoder container (%v) nor a legacy model file: %w", path, cerr, merr)
	}
	return m, nil
}

// ErrEncoderMismatch is returned (wrapped) when a checkpoint or encoder
// file records one encoder kind and the caller supplies another — e.g.
// resuming a CNN training run into the attention model. Callers
// distinguish it with errors.Is.
var ErrEncoderMismatch = errors.New("core: encoder kind mismatch")

// setParams copies flat per-tensor value slices into an encoder's
// parameters, validating lengths — the shared SetParams implementation.
func setParams(ps []*nn.Tensor, groups [][]float64) error {
	if len(groups) != len(ps) {
		return fmt.Errorf("core: SetParams got %d groups, encoder has %d params", len(groups), len(ps))
	}
	for i, p := range ps {
		if len(groups[i]) != len(p.Data) {
			return fmt.Errorf("core: SetParams group %d has %d values, param wants %d", i, len(groups[i]), len(p.Data))
		}
	}
	for i, p := range ps {
		copy(p.Data, groups[i])
	}
	return nil
}

// embedAllParallel is the shared EmbedAllParallel implementation for
// encoders without an autograd forward pass: a bounded worker pool over
// a shared atomic-free work counter, deterministic output order.
func embedAllParallel(enc Encoder, ts []geo.Trajectory, workers int) [][]float64 {
	builders := make([]func() *nn.Tensor, len(ts))
	for i := range ts {
		t := ts[i]
		builders[i] = func() *nn.Tensor { return nn.FromVec(enc.Embed(t)) }
	}
	outs := nn.ForwardParallel(workers, builders)
	vecs := make([][]float64, len(outs))
	for i, o := range outs {
		vecs[i] = o.Data
	}
	return vecs
}

// codeAll is the shared CodeAll implementation: one Code per trajectory.
func codeAll(enc Encoder, ts []geo.Trajectory) []hamming.Code {
	out := make([]hamming.Code, len(ts))
	for i, t := range ts {
		out[i] = enc.Code(t)
	}
	return out
}

// embedAll is the shared sequential EmbedAll implementation.
func embedAll(enc Encoder, ts []geo.Trajectory) [][]float64 {
	out := make([][]float64, len(ts))
	for i, t := range ts {
		out[i] = enc.Embed(t)
	}
	return out
}
