package core

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"traj2hash/internal/geo"
	"traj2hash/internal/grid"
	"traj2hash/internal/hamming"
	"traj2hash/internal/nn"
)

// cellEmbedder produces (frozen) embeddings for grid-cell sequences; both
// the decomposed representation and node2vec satisfy it (Figure 7).
type cellEmbedder interface {
	EmbedCells(cells []int) *nn.Tensor
}

// Model is the Traj2Hash network of Figure 2: trajectory augmentation, a
// light-weight grid representation encoder, an attention-based GPS
// trajectory encoder, and a hash layer producing embeddings in Euclidean
// space (h_f, Equation 15) and codes in Hamming space (z, Equation 16).
type Model struct {
	Cfg Config

	stats geo.Stats // Gaussian normalization of Equation 10

	// Grid channel (Section IV-C).
	fineGrid *grid.Grid
	gridEmb  cellEmbedder // frozen after pre-training
	gridMLP  *nn.MLP      // MLP_g, two layers (Equation 9)

	// GridPretrainTime is the wall-clock cost of grid embedding
	// pre-training — the efficiency axis of the Figure 7 study.
	GridPretrainTime time.Duration

	// GPS channel (Section IV-D).
	mlpE   *nn.Linear // MLP_e, one layer (Equation 10)
	blocks []*nn.EncoderBlock
	cls    *nn.Tensor // learned CLS token (CLS read-out only)
	pe     *nn.PositionalEncoding

	// Hash layer (Section IV-E).
	fuse *nn.Linear // MLP_f (Equation 14)
	proj *nn.Linear // W_p (Equation 15)

	beta float64 // tanh(β·) relaxation scale
	rng  *rand.Rand
}

// New builds a Traj2Hash model. The study space (grid extent and
// normalization statistics) is fitted on the given trajectories, which
// should cover all data the model will see (the paper fits grids over the
// whole study area).
func New(cfg Config, space []geo.Trajectory) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(space) == 0 {
		return nil, fmt.Errorf("core: no trajectories to fit the study space")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{
		Cfg:   cfg,
		stats: geo.ComputeStats(space),
		rng:   rng,
		beta:  cfg.BetaStart,
	}

	fuseIn := cfg.Dim
	if cfg.UseGrids {
		fg, err := grid.FromTrajectories(space, cfg.GridCellSize)
		if err != nil {
			return nil, fmt.Errorf("core: fine grid: %w", err)
		}
		m.fineGrid = fg
		start := time.Now()
		switch cfg.GridRep {
		case Node2VecRep:
			n2v := grid.NewNode2Vec(fg, cfg.Dim, rng)
			ncfg := grid.DefaultNode2VecConfig(cfg.Dim)
			ncfg.Epochs = 1
			ncfg.Seed = cfg.Seed
			// Bound the walk corpus on large grids: node2vec's cost is the
			// very point of the Figure 7 comparison, but training must
			// terminate. The paper parameters stay for modest grids.
			if fg.Cells() > 20000 {
				ncfg.NumWalks = 2
				ncfg.WalkLen = 20
				ncfg.Window = 5
			}
			n2v.Train(ncfg)
			m.gridEmb = n2v
		default:
			dec := grid.NewDecomposed(fg, cfg.Dim, rng)
			pcfg := grid.DefaultPretrainConfig(cfg.Dim)
			pcfg.Epochs = cfg.GridPreEpochs
			pcfg.Seed = cfg.Seed
			dec.Pretrain(pcfg)
			m.gridEmb = dec
		}
		m.GridPretrainTime = time.Since(start)
		m.gridMLP = nn.NewMLP(rng, cfg.Dim, cfg.Dim, cfg.Dim)
		fuseIn = 2 * cfg.Dim
	}

	m.mlpE = nn.NewLinear(2, cfg.Dim, rng)
	m.blocks = make([]*nn.EncoderBlock, cfg.Blocks)
	for i := range m.blocks {
		m.blocks[i] = nn.NewEncoderBlock(cfg.Dim, cfg.Heads, cfg.Dim, true, rng)
	}
	if cfg.Readout == CLS {
		m.cls = nn.XavierParam(1, cfg.Dim, rng)
	}
	m.pe = nn.NewPositionalEncoding(cfg.MaxLen+1, cfg.Dim)

	m.fuse = nn.NewLinear(fuseIn, cfg.Dim, rng)
	half := cfg.HashBits / 2
	if !cfg.UseRevAug {
		// Without the reverse augmentation the projection alone must fill
		// the code, so it maps to the full width.
		half = cfg.HashBits
	}
	m.proj = nn.NewLinear(cfg.Dim, half, rng)
	return m, nil
}

func init() {
	RegisterEncoder(AttentionKind,
		func(cfg Config, space []geo.Trajectory) (Encoder, error) { return New(cfg, space) },
		func(r io.Reader) (Encoder, error) { return Load(r) })
}

// Kind returns the encoder registry name of the paper's attention model.
func (m *Model) Kind() string { return AttentionKind }

// Dim returns the embedding width, which equals the code length
// Config.HashBits (Embed returns h_f of Equation 15, one sign bit per
// coordinate).
func (m *Model) Dim() int { return m.Cfg.HashBits }

// SetParams overwrites the trainable parameter values from flat
// per-tensor slices in Params() order.
func (m *Model) SetParams(groups [][]float64) error { return setParams(m.Params(), groups) }

// trainable hooks: the generic training loop (train.go) drives any
// in-package encoder through these.
func (m *Model) trainConfig() Config  { return m.Cfg }
func (m *Model) curBeta() float64     { return m.beta }
func (m *Model) setBeta(b float64)    { m.beta = b }
func (m *Model) trainRNG() randSource { return m.rng }

// Params returns all trainable parameters (the frozen grid embeddings are
// excluded by design, Section IV-C).
func (m *Model) Params() []*nn.Tensor {
	var ps []*nn.Tensor
	if m.gridMLP != nil {
		ps = append(ps, m.gridMLP.Params()...)
	}
	ps = append(ps, m.mlpE.Params()...)
	for _, b := range m.blocks {
		ps = append(ps, b.Params()...)
	}
	if m.cls != nil {
		ps = append(ps, m.cls)
	}
	ps = append(ps, m.fuse.Params()...)
	ps = append(ps, m.proj.Params()...)
	return ps
}

// prep resamples a trajectory to at most MaxLen points for encoding. The
// exact distance functions always run on the raw trajectory; only the
// neural encoder sees the bounded version.
func (m *Model) prep(t geo.Trajectory) geo.Trajectory {
	if len(t) > m.Cfg.MaxLen {
		return t.Resample(m.Cfg.MaxLen)
	}
	return t
}

// encodeDirection encodes one direction (forward or reversed) of a prepared
// trajectory into the fused representation h of Equation 14 (1×Dim).
func (m *Model) encodeDirection(t geo.Trajectory) *nn.Tensor {
	hl := m.encodeGPS(t)
	if !m.Cfg.UseGrids {
		return m.fuse.Forward(hl)
	}
	hg := m.encodeGrid(t)
	return m.fuse.Forward(nn.ConcatCols(hl, hg))
}

// encodeGPS is the attention-based trajectory encoder of Section IV-D.
func (m *Model) encodeGPS(t geo.Trajectory) *nn.Tensor {
	n := len(t)
	raw := nn.New(n, 2)
	for i, p := range t {
		q := m.stats.Normalize(p)
		raw.Set(i, 0, q.X)
		raw.Set(i, 1, q.Y)
	}
	x := m.mlpE.Forward(raw) // Equation 10
	x = m.pe.Add(x)
	if m.Cfg.Readout == CLS {
		x = nn.ConcatRows(m.cls, x)
	}
	for _, b := range m.blocks {
		x = b.Forward(x) // Equations 11–12
	}
	switch m.Cfg.Readout {
	case Mean:
		return nn.MeanRows(x)
	case CLS:
		return nn.SliceRows(x, 0, 1)
	default: // LowerBound, Equation 13
		return nn.SliceRows(x, 0, 1)
	}
}

// encodeGrid is the light-weight grid representation encoder of
// Section IV-C: frozen decomposed embeddings + positional encoding →
// MLP_g → mean pooling (Equation 9).
func (m *Model) encodeGrid(t geo.Trajectory) *nn.Tensor {
	cells := m.fineGrid.GridTrajectory(t)
	x := m.gridEmb.EmbedCells(cells)
	x = m.pe.Add(x)
	return nn.MeanRows(m.gridMLP.Forward(x))
}

// forward encodes a raw trajectory into the final representation h_f of
// Equation 15 (1×HashBits), building a gradient graph.
func (m *Model) forward(t geo.Trajectory) *nn.Tensor {
	p := m.prep(t)
	h := m.encodeDirection(p)
	if !m.Cfg.UseRevAug {
		return m.proj.Forward(h)
	}
	hr := m.encodeDirection(p.Reverse())
	return nn.ConcatCols(m.proj.Forward(h), m.proj.Forward(hr))
}

// relaxedCode applies the training-time relaxation tanh(β·h_f) of the sign
// function (Equation 16, following HashNet).
func (m *Model) relaxedCode(hf *nn.Tensor) *nn.Tensor {
	return nn.Tanh(nn.Scale(hf, m.beta))
}

// Embed returns the Euclidean-space embedding h_f of a trajectory as a
// plain vector (no gradient graph).
func (m *Model) Embed(t geo.Trajectory) []float64 {
	out := m.forward(t)
	v := make([]float64, len(out.Data))
	copy(v, out.Data)
	return v
}

// EmbedAll embeds a batch of trajectories. Every vector shares one flat
// backing array sized on the first forward pass — two allocations for
// the write path of the whole batch instead of one per trajectory. (The
// forward passes themselves build gradient graphs and remain the
// documented allocation floor of batch embedding; see the EmbedAll
// benchmark in model_bench_test.go.)
func (m *Model) EmbedAll(ts []geo.Trajectory) [][]float64 {
	out := make([][]float64, len(ts))
	var flat []float64
	for i, t := range ts {
		e := m.forward(t)
		if flat == nil {
			flat = make([]float64, len(ts)*len(e.Data))
		}
		d := len(e.Data)
		v := flat[i*d : i*d : (i+1)*d]
		out[i] = append(v, e.Data...)
	}
	return out
}

// EmbedAllParallel embeds a batch across worker goroutines (workers ≤ 0
// uses GOMAXPROCS). Forward passes only read the parameters, so this is
// safe whenever no training step runs concurrently. As in EmbedAll, the
// result vectors share one flat backing array.
func (m *Model) EmbedAllParallel(ts []geo.Trajectory, workers int) [][]float64 {
	builders := make([]func() *nn.Tensor, len(ts))
	for i := range ts {
		t := ts[i]
		builders[i] = func() *nn.Tensor { return m.forward(t) }
	}
	outs := nn.ForwardParallel(workers, builders)
	vecs := make([][]float64, len(outs))
	var flat []float64
	for i, o := range outs {
		if flat == nil {
			flat = make([]float64, len(outs)*len(o.Data))
		}
		d := len(o.Data)
		v := flat[i*d : i*d : (i+1)*d]
		vecs[i] = append(v, o.Data...)
	}
	return vecs
}

// Code returns the Hamming-space hash code z = sign(h_f) of Equation 16.
func (m *Model) Code(t geo.Trajectory) hamming.Code {
	return hamming.FromSigns(m.Embed(t))
}

// CodeAll hashes a batch of trajectories.
func (m *Model) CodeAll(ts []geo.Trajectory) []hamming.Code {
	out := make([]hamming.Code, len(ts))
	for i, t := range ts {
		out[i] = m.Code(t)
	}
	return out
}

// ApproxDistance returns the model's Euclidean-space approximation of the
// trajectory distance: −log g where g = exp(−‖h_f(a) − h_f(b)‖) is the
// learned similarity of Equation 17, rescaled back through θ to the
// original distance units when θ is known (θ > 0).
func (m *Model) ApproxDistance(a, b geo.Trajectory, theta float64) float64 {
	va := m.Embed(a)
	vb := m.Embed(b)
	var sum float64
	for i := range va {
		d := va[i] - vb[i]
		sum += d * d
	}
	eu := math.Sqrt(sum)
	if theta > 0 {
		return eu / theta
	}
	return eu
}

// snapshot copies all parameter values (for best-epoch model selection).
func (m *Model) snapshot() [][]float64 { return snapshotParams(m) }

// restore writes a snapshot back into the parameters.
func (m *Model) restore(snap [][]float64) { restoreParams(m, snap) }
