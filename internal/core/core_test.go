package core

import (
	"math"
	"math/rand"
	"testing"

	"traj2hash/internal/data"
	"traj2hash/internal/dist"
	"traj2hash/internal/geo"
	"traj2hash/internal/nn"
)

// tinyConfig is a CPU-friendly configuration for tests.
func tinyConfig() Config {
	cfg := DefaultConfig(16)
	cfg.Heads = 2
	cfg.Blocks = 1
	cfg.MaxLen = 12
	cfg.M = 4
	cfg.Epochs = 4
	cfg.BatchSize = 8
	cfg.TripletBatch = 8
	cfg.NumTriplets = 60
	cfg.GridPreEpochs = 1
	cfg.GridCellSize = 200
	return cfg
}

func genTrajs(n int, seed int64) []geo.Trajectory {
	return data.Porto().Generate(n, seed)
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(32)
	if err := good.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Dim = 0 },
		func(c *Config) { c.HashBits = 15 },
		func(c *Config) { c.HashBits = 0 },
		func(c *Config) { c.Heads = 5 }, // 32 % 5 != 0
		func(c *Config) { c.M = 3 },
		func(c *Config) { c.M = 0 },
		func(c *Config) { c.MaxLen = 1 },
		func(c *Config) { c.GridCellSize = 0 },
		func(c *Config) { c.TripletCellSize = -1 },
	}
	for i, mutate := range cases {
		c := DefaultConfig(32)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestNewModelErrors(t *testing.T) {
	if _, err := New(tinyConfig(), nil); err == nil {
		t.Error("empty space accepted")
	}
	bad := tinyConfig()
	bad.Dim = 0
	if _, err := New(bad, genTrajs(3, 1)); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestEmbedShapeAndDeterminism(t *testing.T) {
	ts := genTrajs(10, 2)
	m, err := New(tinyConfig(), ts)
	if err != nil {
		t.Fatal(err)
	}
	e1 := m.Embed(ts[0])
	e2 := m.Embed(ts[0])
	if len(e1) != m.Cfg.HashBits {
		t.Fatalf("embedding dim = %d, want %d", len(e1), m.Cfg.HashBits)
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("Embed not deterministic")
		}
	}
	all := m.EmbedAll(ts[:3])
	if len(all) != 3 || len(all[0]) != m.Cfg.HashBits {
		t.Error("EmbedAll shape wrong")
	}
}

func TestCodeMatchesEmbedSigns(t *testing.T) {
	ts := genTrajs(5, 3)
	m, err := New(tinyConfig(), ts)
	if err != nil {
		t.Fatal(err)
	}
	e := m.Embed(ts[0])
	c := m.Code(ts[0])
	if c.Bits != m.Cfg.HashBits {
		t.Fatalf("code bits = %d", c.Bits)
	}
	for i, v := range e {
		if (v > 0) != c.Bit(i) {
			t.Fatalf("bit %d disagrees with sign of %v", i, v)
		}
	}
	cs := m.CodeAll(ts[:2])
	if len(cs) != 2 {
		t.Error("CodeAll wrong length")
	}
}

// TestLemma3ReverseSymmetryOfEmbeddings is the paper's central property:
// with the reverse augmentation, E(h_f(T1), h_f(T2)) must equal
// E(h_f(T1^r), h_f(T2^r)).
func TestLemma3ReverseSymmetryOfEmbeddings(t *testing.T) {
	ts := genTrajs(8, 4)
	cfg := tinyConfig()
	cfg.UseRevAug = true
	m, err := New(cfg, ts)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 4; trial++ {
		a, b := ts[2*trial], ts[2*trial+1]
		fwd := euclid(m.Embed(a), m.Embed(b))
		rev := euclid(m.Embed(a.Reverse()), m.Embed(b.Reverse()))
		// Resampling is arc-length symmetric, so the only error is float
		// round-off plus interpolation at segment boundaries.
		if math.Abs(fwd-rev) > 1e-6*(1+fwd) {
			t.Errorf("trial %d: forward %v != reversed %v", trial, fwd, rev)
		}
	}
}

// TestNoRevAugBreaksSymmetry documents the flip side: without the
// augmentation the property does not hold in general (the motivation of
// Lemma 3).
func TestNoRevAugBreaksSymmetry(t *testing.T) {
	ts := genTrajs(8, 5)
	cfg := tinyConfig()
	cfg.UseRevAug = false
	m, err := New(cfg, ts)
	if err != nil {
		t.Fatal(err)
	}
	var maxGap float64
	for trial := 0; trial < 4; trial++ {
		a, b := ts[2*trial], ts[2*trial+1]
		fwd := euclid(m.Embed(a), m.Embed(b))
		rev := euclid(m.Embed(a.Reverse()), m.Embed(b.Reverse()))
		gap := math.Abs(fwd - rev)
		if gap > maxGap {
			maxGap = gap
		}
	}
	if maxGap < 1e-9 {
		t.Error("without reverse augmentation the distances are suspiciously symmetric")
	}
}

// TestFootnote1SumCombinationPathology documents why the paper combines
// forward and reverse embeddings by concatenation rather than element-wise
// sum (footnote 1): with h_f = h + h_r, the representation of T and of T^r
// coincide, so E(h_f^{T1}, h_f^{T2}) = E(h_f^{T1}, h_f^{T2^r}) — an
// "unexpected property" no DTW/Fréchet/Hausdorff-like distance satisfies.
func TestFootnote1SumCombinationPathology(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	dim := 8
	vec := func() []float64 {
		v := make([]float64, dim)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
	sum := func(a, b []float64) []float64 {
		out := make([]float64, dim)
		for i := range out {
			out[i] = a[i] + b[i]
		}
		return out
	}
	h1, h1r := vec(), vec() // h(T1), h(T1^r)
	h2, h2r := vec(), vec() // h(T2), h(T2^r)
	f1 := sum(h1, h1r)
	f2 := sum(h2, h2r)
	f2rev := sum(h2r, h2) // representation of T2^r under sum combination
	if d := euclid(f1, f2) - euclid(f1, f2rev); math.Abs(d) > 1e-12 {
		t.Fatalf("sum combination should collapse T2 and T2^r, gap %v", d)
	}
	// Concatenation does not collapse them...
	cat := func(a, b []float64) []float64 { return append(append([]float64{}, a...), b...) }
	c2 := cat(h2, h2r)
	c2rev := cat(h2r, h2)
	c1 := cat(h1, h1r)
	if euclid(c1, c2) == euclid(c1, c2rev) {
		t.Fatal("concatenation unexpectedly collapsed T2 and T2^r")
	}
	// ...while still satisfying Lemma 3's reverse symmetry.
	c1rev := cat(h1r, h1)
	if math.Abs(euclid(c1, c2)-euclid(c1rev, c2rev)) > 1e-12 {
		t.Fatal("concatenation broke reverse symmetry")
	}
}

func euclid(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

func TestAblationVariantsBuildAndEmbed(t *testing.T) {
	ts := genTrajs(6, 6)
	for _, mutate := range []func(*Config){
		func(c *Config) { c.UseGrids = false },
		func(c *Config) { c.UseGrids, c.UseRevAug = false, false },
		func(c *Config) { c.UseGrids, c.UseRevAug, c.UseTriplets = false, false, false },
		func(c *Config) { c.Readout = Mean },
		func(c *Config) { c.Readout = CLS },
	} {
		cfg := tinyConfig()
		mutate(&cfg)
		m, err := New(cfg, ts)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(m.Embed(ts[0])); got != cfg.HashBits {
			t.Errorf("variant embedding dim = %d", got)
		}
	}
}

func TestReadoutString(t *testing.T) {
	if LowerBound.String() != "LowerBound" || Mean.String() != "Mean" || CLS.String() != "CLS" {
		t.Error("readout names wrong")
	}
	if Readout(9).String() == "" {
		t.Error("unknown readout should format")
	}
}

func TestGridRepString(t *testing.T) {
	if DecomposedNCE.String() != "Decomposed" || Node2VecRep.String() != "Node2vec" {
		t.Error("grid rep names wrong")
	}
	if GridRep(9).String() == "" {
		t.Error("unknown grid rep should format")
	}
}

func TestEmbedAllParallelMatchesSequential(t *testing.T) {
	ts := genTrajs(10, 23)
	m, err := New(tinyConfig(), ts)
	if err != nil {
		t.Fatal(err)
	}
	seq := m.EmbedAll(ts)
	for _, workers := range []int{0, 1, 4} {
		par := m.EmbedAllParallel(ts, workers)
		for i := range seq {
			for j := range seq[i] {
				if seq[i][j] != par[i][j] {
					t.Fatalf("workers=%d: differs at %d/%d", workers, i, j)
				}
			}
		}
	}
}

func TestRankingHinge(t *testing.T) {
	ua := nn.FromVec([]float64{1, 1, 1, 1})
	up := nn.FromVec([]float64{1, 1, 1, 1})   // dot = 4
	un := nn.FromVec([]float64{-1, -1, 1, 1}) // dot = 0
	// [−4 + 0 + α]_+ : zero for α=2, positive for α=6.
	if got := RankingHinge(ua, up, un, 2).Scalar(); got != 0 {
		t.Errorf("hinge(α=2) = %v", got)
	}
	if got := RankingHinge(ua, up, un, 6).Scalar(); got != 2 {
		t.Errorf("hinge(α=6) = %v", got)
	}
}

func TestGenerateTriplets(t *testing.T) {
	corpus := genTrajs(120, 7)
	trips := GenerateTriplets(corpus, 500, 50, 1)
	if len(trips) == 0 {
		t.Fatal("no triplets generated")
	}
	for i, tr := range trips {
		if tr.Anchor == tr.Positive {
			t.Errorf("triplet %d: anchor == positive", i)
		}
		for _, id := range []int{tr.Anchor, tr.Positive, tr.Negative} {
			if id < 0 || id >= len(corpus) {
				t.Errorf("triplet %d: index %d out of range", i, id)
			}
		}
	}
	// Determinism.
	again := GenerateTriplets(corpus, 500, 50, 1)
	if len(again) != len(trips) {
		t.Fatal("not deterministic")
	}
	for i := range trips {
		if trips[i] != again[i] {
			t.Fatal("not deterministic")
		}
	}
	// Degenerate corpora.
	if got := GenerateTriplets(corpus[:2], 500, 10, 1); got != nil {
		t.Error("tiny corpus should yield nil")
	}
	if got := GenerateTriplets(corpus, 500, 0, 1); got != nil {
		t.Error("n=0 should yield nil")
	}
}

// TestTripletsFrechetBound validates the Section IV-F claim: within a
// cluster, the Fréchet distance between members is bounded by (a small
// multiple of) the grid size, and anchors are closer to positives than to
// negatives most of the time.
func TestTripletsFrechetBound(t *testing.T) {
	corpus := genTrajs(150, 8)
	cell := 500.0
	trips := GenerateTriplets(corpus, cell, 40, 2)
	if len(trips) == 0 {
		t.Skip("no triplets on this corpus")
	}
	var correct, total int
	for _, tr := range trips {
		dp := dist.Frechet(corpus[tr.Anchor], corpus[tr.Positive])
		dn := dist.Frechet(corpus[tr.Anchor], corpus[tr.Negative])
		// Shared compressed cell sequence keeps pairs within cell-diagonal
		// distance: points of matched cells differ by at most one cell
		// diagonal (cells are traversed in the same order).
		if dp > cell*2*math.Sqrt2 {
			t.Errorf("positive Frechet %v exceeds cluster bound", dp)
		}
		if dp < dn {
			correct++
		}
		total++
	}
	if frac := float64(correct) / float64(total); frac < 0.8 {
		t.Errorf("only %.0f%% of triplets correctly ordered", frac*100)
	}
}

func TestAnalyzeClusters(t *testing.T) {
	corpus := genTrajs(100, 9)
	st := AnalyzeClusters(corpus, 500)
	if st.Clusters == 0 || st.MultiMember == 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.CoveredTrajs < 2*st.MultiMember {
		t.Errorf("covered %d < 2×multi %d", st.CoveredTrajs, st.MultiMember)
	}
	if got := AnalyzeClusters(nil, 500); got.Clusters != 0 {
		t.Error("empty corpus should have zero stats")
	}
}

func TestSnapshotRestore(t *testing.T) {
	ts := genTrajs(5, 10)
	m, err := New(tinyConfig(), ts)
	if err != nil {
		t.Fatal(err)
	}
	snap := m.snapshot()
	before := m.Embed(ts[0])
	// Perturb all parameters.
	for _, p := range m.Params() {
		for i := range p.Data {
			p.Data[i] += 0.5
		}
	}
	if e := m.Embed(ts[0]); euclid(e, before) == 0 {
		t.Fatal("perturbation had no effect")
	}
	m.restore(snap)
	after := m.Embed(ts[0])
	if euclid(after, before) != 0 {
		t.Error("restore did not recover embeddings")
	}
}

func TestTrainImprovesRetrieval(t *testing.T) {
	seeds := genTrajs(24, 11)
	val := genTrajs(16, 12)
	corpus := genTrajs(60, 13)
	space := append(append(append([]geo.Trajectory{}, seeds...), val...), corpus...)
	m, err := New(tinyConfig(), space)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-training validation HR@10 from random parameters.
	td := TrainData{Seeds: seeds, Validation: val, Corpus: corpus, F: dist.FrechetDist}
	h, err := m.Train(td)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.EpochLoss) != m.Cfg.Epochs || len(h.ValHR10) != m.Cfg.Epochs {
		t.Fatalf("history lengths = %d/%d", len(h.EpochLoss), len(h.ValHR10))
	}
	if h.Theta <= 0 {
		t.Errorf("theta = %v", h.Theta)
	}
	if h.Triplets == 0 {
		t.Error("no triplets generated during training")
	}
	// Loss decreases from first to best epoch.
	if h.EpochLoss[len(h.EpochLoss)-1] > h.EpochLoss[0]*1.5 {
		t.Errorf("loss grew: %v -> %v", h.EpochLoss[0], h.EpochLoss[len(h.EpochLoss)-1])
	}
	// The model must beat a random ranking: expected random HR@10 on 16
	// validation items is 10/16 ≈ 0.63 only because self is included; use
	// the recorded best which must be at least as good as epoch 0.
	if h.BestHR10 < h.ValHR10[0]-1e-9 {
		t.Errorf("best HR %v below first epoch %v", h.BestHR10, h.ValHR10[0])
	}
	if h.BestEpoch < 0 || h.BestEpoch >= m.Cfg.Epochs {
		t.Errorf("best epoch = %d", h.BestEpoch)
	}
}

func TestTrainSeedsTooFew(t *testing.T) {
	ts := genTrajs(4, 14)
	m, err := New(tinyConfig(), ts)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Train(TrainData{Seeds: ts[:2], F: dist.DTWDist})
	if err == nil {
		t.Error("tiny seed set accepted")
	}
}

func TestApproxDistanceOrdering(t *testing.T) {
	// After training, a trajectory should be closer (in approximate
	// distance) to a noisy copy of itself than to a random other one.
	seeds := genTrajs(24, 15)
	val := genTrajs(12, 16)
	m, err := New(tinyConfig(), append(seeds, val...))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(TrainData{Seeds: seeds, Validation: val, F: dist.FrechetDist}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var correct int
	const trials = 10
	for i := 0; i < trials; i++ {
		base := seeds[i]
		noisy := base.Clone()
		for j := range noisy {
			noisy[j] = noisy[j].Add(geo.Point{X: rng.NormFloat64() * 5, Y: rng.NormFloat64() * 5})
		}
		other := seeds[(i+7)%len(seeds)]
		if m.ApproxDistance(base, noisy, 0) < m.ApproxDistance(base, other, 0) {
			correct++
		}
	}
	if correct < trials*7/10 {
		t.Errorf("approximate distance ordered only %d/%d pairs", correct, trials)
	}
	// theta rescaling divides.
	d1 := m.ApproxDistance(seeds[0], seeds[1], 0)
	d2 := m.ApproxDistance(seeds[0], seeds[1], 2)
	if math.Abs(d1/2-d2) > 1e-9 {
		t.Errorf("theta rescale wrong: %v vs %v", d1, d2)
	}
}
