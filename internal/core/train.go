package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"traj2hash/internal/dist"
	"traj2hash/internal/eval"
	"traj2hash/internal/geo"
	"traj2hash/internal/nn"
	"traj2hash/internal/obs"
)

// ErrDiverged is returned (wrapped) by Train/TrainCtx when an epoch
// produces non-finite losses, parameters, or validation embeddings and
// no checkpoint is available to roll back to — or the rollback budget is
// exhausted. Callers distinguish it with errors.Is.
var ErrDiverged = errors.New("core: training diverged (non-finite loss, parameters, or validation embeddings)")

// TrainData is the input of the optimization component (Section IV-F): a
// seed set with exact pairwise distances, a validation set for model
// selection, an unlabelled corpus for fast triplet generation, and the
// distance function to approximate — plus the robustness knobs of
// TrainCtx (checkpointing, resume, fault-injection hooks).
type TrainData struct {
	Seeds      []geo.Trajectory
	Validation []geo.Trajectory
	Corpus     []geo.Trajectory
	F          dist.Func

	// CheckpointEvery, when > 0 together with OnCheckpoint, emits a
	// resumable Checkpoint every CheckpointEvery epochs (counted in
	// absolute epoch numbers, so the cadence survives a resume).
	CheckpointEvery int
	// OnCheckpoint receives periodic checkpoints, and — regardless of
	// CheckpointEvery — the last completed-epoch checkpoint when the
	// context is canceled mid-run (SIGINT-triggered graceful exit). A
	// non-nil error aborts training.
	OnCheckpoint func(*Checkpoint) error
	// Resume, when non-nil, restores an interrupted run: parameters,
	// optimizer state, β, learning rate, and history, continuing at
	// Resume.Epoch. The model must have been constructed with the same
	// Config (including Seed) and study space as the interrupted run;
	// shape mismatches are rejected.
	Resume *Checkpoint
	// MaxRollbacks bounds divergence-guard rollbacks before training
	// gives up with ErrDiverged (0 means the default of 3).
	MaxRollbacks int
	// StepHook, when non-nil, runs after every optimizer step with the
	// absolute epoch and the step index within it. It exists for test
	// instrumentation (internal/faultinject's gradient poisoning) and
	// must not be used to mutate training state in production.
	StepHook func(epoch, step int)
	// Metrics, when non-nil, receives training telemetry: per-epoch loss
	// and validation gauges, a gradient-norm histogram, and rollback /
	// checkpoint-emit counters (see DESIGN.md "Observability" for the
	// metric names). nil disables instrumentation entirely — not even
	// the gradient norm is computed for it.
	Metrics *obs.Registry
}

// History records one training run.
type History struct {
	EpochLoss []float64 // mean combined loss per epoch
	ValHR10   []float64 // validation HR@10 per epoch (NaN = no validation set)
	BestEpoch int
	BestHR10  float64
	Theta     float64 // the similarity smoothing actually used
	Triplets  int     // triplets generated from the corpus
	// Diverged lists the epochs at which the divergence guard tripped;
	// each listed epoch was rolled back to the previous checkpoint and
	// replayed at half the learning rate. Divergence is flagged here
	// explicitly rather than leaking silently into ValHR10 as NaN.
	Diverged []int
}

// trainMetrics bundles the instruments TrainCtx updates. A nil
// *trainMetrics (TrainData.Metrics unset) makes every record call a
// no-op via obs's nil-receiver contract, so the uninstrumented path pays
// only a pointer check.
type trainMetrics struct {
	epoch           *obs.Gauge     // train.epoch: last completed epoch number
	epochLoss       *obs.Gauge     // train.epoch.loss: mean loss of the last completed epoch
	valHR10         *obs.Gauge     // train.val.hr10: validation HR@10 of the last completed epoch
	gradNorm        *obs.Histogram // train.grad_norm: pre-clip gradient L2 norm per step
	rollbacks       *obs.Counter   // train.rollbacks: divergence-guard rollbacks taken
	checkpointEmits *obs.Counter   // train.checkpoint.emits: checkpoints handed to OnCheckpoint
}

// newTrainMetrics registers the training instruments on reg; nil in, nil out.
func newTrainMetrics(reg *obs.Registry) *trainMetrics {
	if reg == nil {
		return nil
	}
	return &trainMetrics{
		epoch:           reg.Gauge("train.epoch"),
		epochLoss:       reg.Gauge("train.epoch.loss"),
		valHR10:         reg.Gauge("train.val.hr10"),
		gradNorm:        reg.Histogram("train.grad_norm", obs.MagnitudeBounds()),
		rollbacks:       reg.Counter("train.rollbacks"),
		checkpointEmits: reg.Counter("train.checkpoint.emits"),
	}
}

// RankingHinge builds the ranking-based hashing objective term of
// Equation 19 for one (anchor, positive, negative) triple of relaxed codes:
// [−u_a·u_p + u_a·u_n + α]_+ . It is shared with the baselines' hash
// adapters (Section V-A3 trains them with this same objective).
func RankingHinge(ua, up, un *nn.Tensor, alpha float64) *nn.Tensor {
	margin := nn.AddScalar(nn.Sub(nn.Dot(ua, un), nn.Dot(ua, up)), alpha)
	return nn.HingeScalar(margin)
}

// sampleSet holds the WMSE samples of one anchor: indices into the seed
// slice and their rank weights r_j (most similar first).
type sampleSet struct {
	ids     []int
	weights []float64
}

// buildSamples selects, per anchor, the M/2 most similar seeds plus M/2
// random seeds, weighted by descending rank, following NeuTraj's
// distance-weighted sampling.
func buildSamples(s [][]float64, mSamples int, rng randSource) []sampleSet {
	n := len(s)
	out := make([]sampleSet, n)
	for i := 0; i < n; i++ {
		order := make([]int, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				order = append(order, j)
			}
		}
		row := s[i]
		sort.Slice(order, func(a, b int) bool { return row[order[a]] > row[order[b]] })
		half := mSamples / 2
		if half > len(order) {
			half = len(order)
		}
		ids := append([]int(nil), order[:half]...)
		for len(ids) < mSamples && len(order) > 0 {
			ids = append(ids, order[rng.Intn(len(order))])
		}
		w := make([]float64, len(ids))
		var total float64
		for k := range w {
			w[k] = float64(len(ids) - k) // linear descending rank weight
			total += w[k]
		}
		for k := range w {
			w[k] /= total
		}
		out[i] = sampleSet{ids: ids, weights: w}
	}
	return out
}

// randSource is the subset of *rand.Rand the training loop uses, split out
// so tests can substitute deterministic sources.
type randSource interface {
	Intn(n int) int
	Shuffle(n int, swap func(i, j int))
	Float64() float64
}

// trainable is what the generic training loop needs from an encoder: the
// Encoder surface, parameter access, a differentiable forward pass, the
// tanh(β·) relaxation, and the hyper-parameters/RNG of the run. Its
// methods are unexported, so implementations live in this package (Model
// and CNNEncoder); external callers drive training through the exported
// Trainable interface instead.
type trainable interface {
	Encoder
	Params() []*nn.Tensor
	trainConfig() Config
	forward(t geo.Trajectory) *nn.Tensor
	relaxedCode(hf *nn.Tensor) *nn.Tensor
	curBeta() float64
	setBeta(b float64)
	trainRNG() randSource
}

// snapshotParams copies all parameter values (for best-epoch model
// selection and the divergence guard's rollback target).
func snapshotParams(m trainable) [][]float64 {
	ps := m.Params()
	out := make([][]float64, len(ps))
	for i, p := range ps {
		out[i] = append([]float64(nil), p.Data...)
	}
	return out
}

// restoreParams writes a snapshot back into the parameters.
func restoreParams(m trainable, snap [][]float64) {
	ps := m.Params()
	for i, p := range ps {
		copy(p.Data, snap[i])
	}
}

// Train runs the end-to-end optimization of Equation 21:
// L = L_s + γ·(L_r + L_t), with Adam, HashNet β-scheduling, and
// best-validation-HR@10 model selection (Section V-A5). It is a thin
// wrapper over TrainCtx with a background context.
func (m *Model) Train(td TrainData) (*History, error) {
	return m.TrainCtx(context.Background(), td)
}

// Train fits the CNN encoder with the same objective and schedule as the
// paper model; see Model.Train.
func (c *CNNEncoder) Train(td TrainData) (*History, error) {
	return c.TrainCtx(context.Background(), td)
}

// TrainCtx is Train honoring cancellation, checkpointing, resume, and
// the divergence guard; see Model.TrainCtx for the full contract.
func (c *CNNEncoder) TrainCtx(ctx context.Context, td TrainData) (*History, error) {
	return trainLoop(ctx, c, td)
}

// epochRNG derives the deterministic in-epoch sample stream (anchor
// shuffle, triplet picks) for one epoch. Keying the generator by
// (seed, epoch) — rather than advancing one generator across epochs —
// makes the epoch number the training run's RNG cursor: a run resumed
// from a Checkpoint at epoch N draws exactly the stream an uninterrupted
// run would have drawn from epoch N on, which is what makes resumed
// training bitwise identical to uninterrupted training.
func epochRNG(seed int64, epoch int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1000003 + int64(epoch)*7919 + 12289))
}

// paramsNonFinite reports whether any trainable parameter holds a NaN or
// an Inf — the cheap half of the divergence guard.
func paramsNonFinite(m trainable) bool {
	for _, p := range m.Params() {
		for _, v := range p.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
	}
	return false
}

// paramsNonFinite is the method form tests exercise directly.
func (m *Model) paramsNonFinite() bool { return paramsNonFinite(m) }

// TrainCtx is Train with a failure domain around it:
//
//   - Cancellation: ctx is honored between batches; on cancellation the
//     last completed-epoch checkpoint is flushed through td.OnCheckpoint
//     (when set) and the ctx error is returned (wrapped), so a SIGINT
//     costs at most one epoch of work.
//   - Checkpointing: every td.CheckpointEvery epochs a resumable
//     Checkpoint (parameters, Adam state, β, LR, history, best-epoch
//     snapshot) is emitted; td.Resume restores one.
//   - Divergence guard: an epoch ending with non-finite loss,
//     parameters, or validation embeddings is rolled back to the last
//     good epoch boundary and replayed at half the learning rate (the
//     trip is recorded in History.Diverged); with no boundary to roll
//     back to — or the rollback budget exhausted — training returns
//     ErrDiverged instead of silently emitting NaN metrics.
func (m *Model) TrainCtx(ctx context.Context, td TrainData) (*History, error) {
	return trainLoop(ctx, m, td)
}

// trainLoop is the encoder-generic training loop behind Model.TrainCtx
// and CNNEncoder.TrainCtx: any in-package trainable — a differentiable
// forward pass plus parameter access — gets the full Section IV-F
// optimization with checkpointing, resume, and the divergence guard.
//
//det:replayed the per-epoch body replays after resume and rollback; (seed, epoch) is the only allowed randomness cursor
func trainLoop(ctx context.Context, m trainable, td TrainData) (*History, error) {
	cfg := m.trainConfig()
	if len(td.Seeds) < cfg.M+1 {
		return nil, fmt.Errorf("core: need at least M+1=%d seeds, got %d", cfg.M+1, len(td.Seeds))
	}
	h := &History{}
	met := newTrainMetrics(td.Metrics)

	// Exact supervision over the labelled set (Section IV-A): seeds first,
	// then validation, one symmetric matrix so validation ground truth
	// reuses the same computation.
	labelled := append(append([]geo.Trajectory{}, td.Seeds...), td.Validation...)
	d := dist.Matrix(td.F, labelled)
	theta := cfg.Theta
	if theta <= 0 {
		if mean := dist.MeanOffDiagonal(d); mean > 0 {
			theta = 1 / mean
		} else {
			theta = 1
		}
	}
	h.Theta = theta
	s := dist.Similarity(d, theta)
	ns := len(td.Seeds)
	seedSim := make([][]float64, ns)
	for i := 0; i < ns; i++ {
		seedSim[i] = s[i][:ns]
	}

	// Validation ground truth: each validation trajectory queries the
	// validation block (exact top-k from the distance matrix).
	var valTruth [][]int
	if len(td.Validation) > 0 {
		valTruth = make([][]int, len(td.Validation))
		for i := range td.Validation {
			row := d[ns+i][ns:]
			valTruth[i] = eval.TopK(row, 10)
		}
	}

	// Fast triplet generation (Section IV-F).
	var triplets []Triplet
	if cfg.UseTriplets && len(td.Corpus) >= 3 {
		triplets = GenerateTriplets(td.Corpus, cfg.TripletCellSize, cfg.NumTriplets, cfg.Seed)
	}
	h.Triplets = len(triplets)

	samples := buildSamples(seedSim, cfg.M, m.trainRNG())
	opt := nn.NewAdam(m.Params(), cfg.LR)

	bestSnap := snapshotParams(m)
	h.BestHR10 = -1
	lr := cfg.LR
	rollbacks := 0
	maxRollbacks := td.MaxRollbacks
	if maxRollbacks <= 0 {
		maxRollbacks = 3
	}
	startEpoch := 0
	// lastGood is the most recent completed-epoch checkpoint: the guard's
	// rollback target and the snapshot flushed on cancellation. It is
	// maintained every epoch (cheap at these model sizes) whether or not
	// periodic checkpointing is on.
	var lastGood *Checkpoint
	if td.Resume != nil {
		bs, hr, err := applyCheckpoint(m, td.Resume, opt)
		if err != nil {
			return nil, fmt.Errorf("core: resume: %w", err)
		}
		bestSnap, h = bs, hr
		lr = td.Resume.LR
		rollbacks = td.Resume.Rollbacks
		startEpoch = td.Resume.Epoch
		lastGood = td.Resume
	}
	opt.LR = lr

	// interrupted flushes the last good checkpoint (when a sink is
	// configured) and surfaces the context error: a canceled training run
	// costs at most the current, incomplete epoch.
	interrupted := func(epoch int) (*History, error) {
		if td.OnCheckpoint != nil && lastGood != nil {
			if err := td.OnCheckpoint(lastGood); err != nil {
				return h, fmt.Errorf("core: checkpoint on interrupt: %w", err)
			}
			if met != nil {
				met.checkpointEmits.Inc()
			}
		}
		return h, fmt.Errorf("core: training interrupted in epoch %d: %w", epoch, context.Cause(ctx))
	}

	anchors := make([]int, ns)
	for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
		if ctx.Err() != nil {
			return interrupted(epoch)
		}
		// The in-epoch sample stream is keyed by (seed, epoch) and the
		// anchor order is re-derived from identity each epoch, so the
		// epoch number alone is the RNG cursor (see epochRNG).
		erng := epochRNG(cfg.Seed, epoch)
		for i := range anchors {
			anchors[i] = i
		}
		erng.Shuffle(len(anchors), func(i, j int) { anchors[i], anchors[j] = anchors[j], anchors[i] })
		var epochLoss float64
		var steps, stepIdx int
		canceled := false

		step := func(loss *nn.Tensor) {
			epochLoss += loss.Scalar()
			steps++
			loss.Backward()
			if cfg.ClipNorm > 0 {
				norm := nn.ClipGradNorm(opt.Params, cfg.ClipNorm)
				if met != nil {
					met.gradNorm.Observe(norm)
				}
			} else if met != nil {
				// ClipGradNorm with an infinite bound computes the pre-clip
				// norm without scaling anything — the instrumented path gets
				// the histogram even when clipping is off, the
				// uninstrumented path never pays for the norm.
				met.gradNorm.Observe(nn.ClipGradNorm(opt.Params, math.Inf(1)))
			}
			opt.Step()
			if td.StepHook != nil {
				td.StepHook(epoch, stepIdx)
			}
			stepIdx++
		}

		// WMSE + seed ranking batches.
		for lo := 0; lo < len(anchors); lo += cfg.BatchSize {
			if ctx.Err() != nil {
				canceled = true
				break
			}
			hi := lo + cfg.BatchSize
			if hi > len(anchors) {
				hi = len(anchors)
			}
			loss := seedBatchLoss(m, td.Seeds, seedSim, samples, anchors[lo:hi])
			if loss == nil {
				continue
			}
			step(loss)
		}

		// Triplet ranking batches on the generated corpus.
		if !canceled && len(triplets) > 0 {
			for b := 0; b < tripletBatchesPerEpoch; b++ {
				if ctx.Err() != nil {
					canceled = true
					break
				}
				loss := tripletBatchLoss(m, td.Corpus, triplets, erng)
				if loss == nil {
					continue
				}
				step(loss)
			}
		}
		if canceled {
			return interrupted(epoch)
		}

		meanLoss := 0.0
		if steps > 0 {
			meanLoss = epochLoss / float64(steps)
		}
		hr, hasVal := validationHR10(m, td.Validation, valTruth)

		// Divergence guard: a non-finite epoch never enters the history
		// and never becomes lastGood — it is rolled back and replayed at
		// half the learning rate, or surfaced as ErrDiverged when there
		// is nothing to roll back to.
		if math.IsNaN(meanLoss) || math.IsInf(meanLoss, 0) || paramsNonFinite(m) || (hasVal && math.IsNaN(hr)) {
			if lastGood == nil || rollbacks >= maxRollbacks {
				h.Diverged = append(h.Diverged, epoch)
				return h, fmt.Errorf("core: epoch %d went non-finite with no checkpoint to roll back to (rollbacks %d/%d): %w",
					epoch, rollbacks, maxRollbacks, ErrDiverged)
			}
			rollbacks++
			if met != nil {
				met.rollbacks.Inc()
			}
			lr *= 0.5
			bs, hrz, err := applyCheckpoint(m, lastGood, opt)
			if err != nil {
				return h, fmt.Errorf("core: rollback: %w", err)
			}
			bestSnap, h = bs, hrz
			opt.LR = lr
			h.Diverged = append(h.Diverged, epoch)
			epoch = lastGood.Epoch - 1 // loop increment replays from the boundary
			continue
		}

		h.EpochLoss = append(h.EpochLoss, meanLoss)
		h.ValHR10 = append(h.ValHR10, hr)
		if met != nil {
			met.epoch.Set(float64(epoch + 1))
			met.epochLoss.Set(meanLoss)
			if hasVal {
				met.valHR10.Set(hr)
			}
		}
		if hr > h.BestHR10 {
			h.BestHR10 = hr
			h.BestEpoch = epoch
			bestSnap = snapshotParams(m)
		}

		// HashNet relaxation schedule: β grows each epoch, sharpening
		// tanh(β·) toward sign(·).
		m.setBeta(m.curBeta() * cfg.BetaGrowth)

		lastGood = buildCheckpoint(m, opt, epoch+1, h, lr, rollbacks, bestSnap)
		if td.CheckpointEvery > 0 && td.OnCheckpoint != nil && (epoch+1)%td.CheckpointEvery == 0 {
			if err := td.OnCheckpoint(lastGood); err != nil {
				return h, fmt.Errorf("core: checkpoint at epoch %d: %w", epoch+1, err)
			}
			if met != nil {
				met.checkpointEmits.Inc()
			}
		}
	}
	restoreParams(m, bestSnap)
	return h, nil
}

// tripletBatchesPerEpoch bounds the triplet work per epoch; the triplet
// corpus is sampled, not exhausted, each epoch (it can be millions of
// triplets at paper scale).
const tripletBatchesPerEpoch = 2

// seedBatchLoss builds L_s + γ·L_r (Equations 17 and 19) over a batch of
// anchors. Returns nil when the batch is empty.
func seedBatchLoss(m trainable, seeds []geo.Trajectory, s [][]float64, samples []sampleSet, batch []int) *nn.Tensor {
	if len(batch) == 0 {
		return nil
	}
	cache := map[int]*nn.Tensor{}
	embed := func(i int) *nn.Tensor {
		if e, ok := cache[i]; ok {
			return e
		}
		e := m.forward(seeds[i])
		cache[i] = e
		return e
	}

	var terms []*nn.Tensor
	for _, i := range batch {
		hi := embed(i)
		set := samples[i]
		// L_s: weighted MSE between g = exp(−‖·‖) and S_ij (Equation 17).
		for k, j := range set.ids {
			g := nn.Exp(nn.Scale(nn.EuclideanDistance(hi, embed(j)), -1))
			diff := nn.AddScalar(g, -s[i][j])
			terms = append(terms, nn.Scale(nn.Square(diff), set.weights[k]))
		}
		// L_r: the M samples grouped into M/2 (positive, negative) pairs by
		// similarity (Equation 19), on the tanh-relaxed codes.
		if m.trainConfig().Gamma > 0 {
			ui := m.relaxedCode(hi)
			order := append([]int(nil), set.ids...)
			row := s[i]
			sort.Slice(order, func(a, b int) bool { return row[order[a]] > row[order[b]] })
			for k := 0; k < len(order)/2; k++ {
				p := order[k]
				n := order[len(order)-1-k]
				if row[p] <= row[n] {
					continue
				}
				up := m.relaxedCode(embed(p))
				un := m.relaxedCode(embed(n))
				hinge := RankingHinge(ui, up, un, m.trainConfig().Alpha)
				terms = append(terms, nn.Scale(hinge, 0.5*m.trainConfig().Gamma))
			}
		}
	}
	if len(terms) == 0 {
		return nil
	}
	return nn.Scale(sumTerms(terms), 1/float64(len(batch)))
}

// tripletBatchLoss builds γ·L_t (Equation 20) over a random triplet
// batch drawn from rng — the per-epoch generator, so the picks belong to
// the epoch's replayable sample stream (see epochRNG).
func tripletBatchLoss(m trainable, corpus []geo.Trajectory, triplets []Triplet, rng randSource) *nn.Tensor {
	//lint:ignore floatcompare γ is a user-set hyper-parameter; exactly 0 is the documented "triplet loss off" switch
	if m.trainConfig().Gamma == 0 || len(triplets) == 0 {
		return nil
	}
	n := m.trainConfig().TripletBatch
	if n > len(triplets) {
		n = len(triplets)
	}
	cache := map[int]*nn.Tensor{}
	code := func(i int) *nn.Tensor {
		if e, ok := cache[i]; ok {
			return e
		}
		e := m.relaxedCode(m.forward(corpus[i]))
		cache[i] = e
		return e
	}
	var terms []*nn.Tensor
	for b := 0; b < n; b++ {
		t := triplets[rng.Intn(len(triplets))]
		hinge := RankingHinge(code(t.Anchor), code(t.Positive), code(t.Negative), m.trainConfig().Alpha)
		terms = append(terms, nn.Scale(hinge, m.trainConfig().Gamma))
	}
	if len(terms) == 0 {
		return nil
	}
	return nn.Scale(sumTerms(terms), 1/float64(n))
}

// sumTerms adds a list of 1×1 tensors in a balanced tree to keep the graph
// shallow.
func sumTerms(terms []*nn.Tensor) *nn.Tensor {
	for len(terms) > 1 {
		var next []*nn.Tensor
		for i := 0; i+1 < len(terms); i += 2 {
			next = append(next, nn.Add(terms[i], terms[i+1]))
		}
		if len(terms)%2 == 1 {
			next = append(next, terms[len(terms)-1])
		}
		terms = next
	}
	return terms[0]
}

// validationHR10 embeds the validation set and measures HR@10 of
// Euclidean-space search against the exact ground truth. ok reports
// whether a validation set exists at all; with ok true, a NaN hr means
// the validation embeddings themselves went non-finite — an explicit
// divergence signal the guard in TrainCtx acts on, never a value that
// silently enters the history.
func validationHR10(m trainable, val []geo.Trajectory, truth [][]int) (hr float64, ok bool) {
	if len(val) == 0 {
		return math.NaN(), false
	}
	embs := m.EmbedAll(val)
	for i := range embs {
		for _, v := range embs[i] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return math.NaN(), true
			}
		}
	}
	returned := make([][]int, len(val))
	for i := range val {
		row := make([]float64, len(val))
		for j := range val {
			var sum float64
			for k := range embs[i] {
				d := embs[i][k] - embs[j][k]
				sum += d * d
			}
			row[j] = sum
		}
		returned[i] = eval.TopK(row, 10)
	}
	return eval.HitRatio(returned, truth, 10), true
}
