package core

import (
	"fmt"
	"math"
	"sort"

	"traj2hash/internal/dist"
	"traj2hash/internal/eval"
	"traj2hash/internal/geo"
	"traj2hash/internal/nn"
)

// TrainData is the input of the optimization component (Section IV-F): a
// seed set with exact pairwise distances, a validation set for model
// selection, an unlabelled corpus for fast triplet generation, and the
// distance function to approximate.
type TrainData struct {
	Seeds      []geo.Trajectory
	Validation []geo.Trajectory
	Corpus     []geo.Trajectory
	F          dist.Func
}

// History records one training run.
type History struct {
	EpochLoss []float64 // mean combined loss per epoch
	ValHR10   []float64 // validation HR@10 per epoch
	BestEpoch int
	BestHR10  float64
	Theta     float64 // the similarity smoothing actually used
	Triplets  int     // triplets generated from the corpus
}

// RankingHinge builds the ranking-based hashing objective term of
// Equation 19 for one (anchor, positive, negative) triple of relaxed codes:
// [−u_a·u_p + u_a·u_n + α]_+ . It is shared with the baselines' hash
// adapters (Section V-A3 trains them with this same objective).
func RankingHinge(ua, up, un *nn.Tensor, alpha float64) *nn.Tensor {
	margin := nn.AddScalar(nn.Sub(nn.Dot(ua, un), nn.Dot(ua, up)), alpha)
	return nn.HingeScalar(margin)
}

// sampleSet holds the WMSE samples of one anchor: indices into the seed
// slice and their rank weights r_j (most similar first).
type sampleSet struct {
	ids     []int
	weights []float64
}

// buildSamples selects, per anchor, the M/2 most similar seeds plus M/2
// random seeds, weighted by descending rank, following NeuTraj's
// distance-weighted sampling.
func buildSamples(s [][]float64, mSamples int, rng randSource) []sampleSet {
	n := len(s)
	out := make([]sampleSet, n)
	for i := 0; i < n; i++ {
		order := make([]int, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				order = append(order, j)
			}
		}
		row := s[i]
		sort.Slice(order, func(a, b int) bool { return row[order[a]] > row[order[b]] })
		half := mSamples / 2
		if half > len(order) {
			half = len(order)
		}
		ids := append([]int(nil), order[:half]...)
		for len(ids) < mSamples && len(order) > 0 {
			ids = append(ids, order[rng.Intn(len(order))])
		}
		w := make([]float64, len(ids))
		var total float64
		for k := range w {
			w[k] = float64(len(ids) - k) // linear descending rank weight
			total += w[k]
		}
		for k := range w {
			w[k] /= total
		}
		out[i] = sampleSet{ids: ids, weights: w}
	}
	return out
}

// randSource is the subset of *rand.Rand the training loop uses, split out
// so tests can substitute deterministic sources.
type randSource interface {
	Intn(n int) int
	Shuffle(n int, swap func(i, j int))
	Float64() float64
}

// Train runs the end-to-end optimization of Equation 21:
// L = L_s + γ·(L_r + L_t), with Adam, HashNet β-scheduling, and
// best-validation-HR@10 model selection (Section V-A5).
func (m *Model) Train(td TrainData) (*History, error) {
	if len(td.Seeds) < m.Cfg.M+1 {
		return nil, fmt.Errorf("core: need at least M+1=%d seeds, got %d", m.Cfg.M+1, len(td.Seeds))
	}
	cfg := m.Cfg
	h := &History{}

	// Exact supervision over the labelled set (Section IV-A): seeds first,
	// then validation, one symmetric matrix so validation ground truth
	// reuses the same computation.
	labelled := append(append([]geo.Trajectory{}, td.Seeds...), td.Validation...)
	d := dist.Matrix(td.F, labelled)
	theta := cfg.Theta
	if theta <= 0 {
		if mean := dist.MeanOffDiagonal(d); mean > 0 {
			theta = 1 / mean
		} else {
			theta = 1
		}
	}
	h.Theta = theta
	s := dist.Similarity(d, theta)
	ns := len(td.Seeds)
	seedSim := make([][]float64, ns)
	for i := 0; i < ns; i++ {
		seedSim[i] = s[i][:ns]
	}

	// Validation ground truth: each validation trajectory queries the
	// validation block (exact top-k from the distance matrix).
	var valTruth [][]int
	if len(td.Validation) > 0 {
		valTruth = make([][]int, len(td.Validation))
		for i := range td.Validation {
			row := d[ns+i][ns:]
			valTruth[i] = eval.TopK(row, 10)
		}
	}

	// Fast triplet generation (Section IV-F).
	var triplets []Triplet
	if cfg.UseTriplets && len(td.Corpus) >= 3 {
		triplets = GenerateTriplets(td.Corpus, cfg.TripletCellSize, cfg.NumTriplets, cfg.Seed)
	}
	h.Triplets = len(triplets)

	samples := buildSamples(seedSim, cfg.M, m.rng)
	opt := nn.NewAdam(m.Params(), cfg.LR)

	bestSnap := m.snapshot()
	h.BestHR10 = -1
	anchors := make([]int, ns)
	for i := range anchors {
		anchors[i] = i
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		m.rng.Shuffle(len(anchors), func(i, j int) { anchors[i], anchors[j] = anchors[j], anchors[i] })
		var epochLoss float64
		var steps int

		// WMSE + seed ranking batches.
		for lo := 0; lo < len(anchors); lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > len(anchors) {
				hi = len(anchors)
			}
			loss := m.seedBatchLoss(td.Seeds, seedSim, samples, anchors[lo:hi])
			if loss == nil {
				continue
			}
			epochLoss += loss.Scalar()
			steps++
			loss.Backward()
			if cfg.ClipNorm > 0 {
				nn.ClipGradNorm(opt.Params, cfg.ClipNorm)
			}
			opt.Step()
		}

		// Triplet ranking batches on the generated corpus.
		if len(triplets) > 0 {
			for b := 0; b < tripletBatchesPerEpoch; b++ {
				loss := m.tripletBatchLoss(td.Corpus, triplets)
				if loss == nil {
					continue
				}
				epochLoss += loss.Scalar()
				steps++
				loss.Backward()
				if cfg.ClipNorm > 0 {
					nn.ClipGradNorm(opt.Params, cfg.ClipNorm)
				}
				opt.Step()
			}
		}

		if steps > 0 {
			h.EpochLoss = append(h.EpochLoss, epochLoss/float64(steps))
		} else {
			h.EpochLoss = append(h.EpochLoss, 0)
		}

		// Validation HR@10 model selection.
		hr := m.validationHR10(td.Validation, valTruth)
		h.ValHR10 = append(h.ValHR10, hr)
		if hr > h.BestHR10 {
			h.BestHR10 = hr
			h.BestEpoch = epoch
			bestSnap = m.snapshot()
		}

		// HashNet relaxation schedule: β grows each epoch, sharpening
		// tanh(β·) toward sign(·).
		m.beta *= cfg.BetaGrowth
	}
	m.restore(bestSnap)
	return h, nil
}

// tripletBatchesPerEpoch bounds the triplet work per epoch; the triplet
// corpus is sampled, not exhausted, each epoch (it can be millions of
// triplets at paper scale).
const tripletBatchesPerEpoch = 2

// seedBatchLoss builds L_s + γ·L_r (Equations 17 and 19) over a batch of
// anchors. Returns nil when the batch is empty.
func (m *Model) seedBatchLoss(seeds []geo.Trajectory, s [][]float64, samples []sampleSet, batch []int) *nn.Tensor {
	if len(batch) == 0 {
		return nil
	}
	cache := map[int]*nn.Tensor{}
	embed := func(i int) *nn.Tensor {
		if e, ok := cache[i]; ok {
			return e
		}
		e := m.forward(seeds[i])
		cache[i] = e
		return e
	}

	var terms []*nn.Tensor
	for _, i := range batch {
		hi := embed(i)
		set := samples[i]
		// L_s: weighted MSE between g = exp(−‖·‖) and S_ij (Equation 17).
		for k, j := range set.ids {
			g := nn.Exp(nn.Scale(nn.EuclideanDistance(hi, embed(j)), -1))
			diff := nn.AddScalar(g, -s[i][j])
			terms = append(terms, nn.Scale(nn.Square(diff), set.weights[k]))
		}
		// L_r: the M samples grouped into M/2 (positive, negative) pairs by
		// similarity (Equation 19), on the tanh-relaxed codes.
		if m.Cfg.Gamma > 0 {
			ui := m.relaxedCode(hi)
			order := append([]int(nil), set.ids...)
			row := s[i]
			sort.Slice(order, func(a, b int) bool { return row[order[a]] > row[order[b]] })
			for k := 0; k < len(order)/2; k++ {
				p := order[k]
				n := order[len(order)-1-k]
				if row[p] <= row[n] {
					continue
				}
				up := m.relaxedCode(embed(p))
				un := m.relaxedCode(embed(n))
				hinge := RankingHinge(ui, up, un, m.Cfg.Alpha)
				terms = append(terms, nn.Scale(hinge, 0.5*m.Cfg.Gamma))
			}
		}
	}
	if len(terms) == 0 {
		return nil
	}
	return nn.Scale(sumTerms(terms), 1/float64(len(batch)))
}

// tripletBatchLoss builds γ·L_t (Equation 20) over a random triplet batch.
func (m *Model) tripletBatchLoss(corpus []geo.Trajectory, triplets []Triplet) *nn.Tensor {
	//lint:ignore floatcompare γ is a user-set hyper-parameter; exactly 0 is the documented "triplet loss off" switch
	if m.Cfg.Gamma == 0 || len(triplets) == 0 {
		return nil
	}
	n := m.Cfg.TripletBatch
	if n > len(triplets) {
		n = len(triplets)
	}
	cache := map[int]*nn.Tensor{}
	code := func(i int) *nn.Tensor {
		if e, ok := cache[i]; ok {
			return e
		}
		e := m.relaxedCode(m.forward(corpus[i]))
		cache[i] = e
		return e
	}
	var terms []*nn.Tensor
	for b := 0; b < n; b++ {
		t := triplets[m.rng.Intn(len(triplets))]
		hinge := RankingHinge(code(t.Anchor), code(t.Positive), code(t.Negative), m.Cfg.Alpha)
		terms = append(terms, nn.Scale(hinge, m.Cfg.Gamma))
	}
	if len(terms) == 0 {
		return nil
	}
	return nn.Scale(sumTerms(terms), 1/float64(n))
}

// sumTerms adds a list of 1×1 tensors in a balanced tree to keep the graph
// shallow.
func sumTerms(terms []*nn.Tensor) *nn.Tensor {
	for len(terms) > 1 {
		var next []*nn.Tensor
		for i := 0; i+1 < len(terms); i += 2 {
			next = append(next, nn.Add(terms[i], terms[i+1]))
		}
		if len(terms)%2 == 1 {
			next = append(next, terms[len(terms)-1])
		}
		terms = next
	}
	return terms[0]
}

// validationHR10 embeds the validation set and measures HR@10 of
// Euclidean-space search against the exact ground truth.
func (m *Model) validationHR10(val []geo.Trajectory, truth [][]int) float64 {
	if len(val) == 0 {
		return math.NaN()
	}
	embs := m.EmbedAll(val)
	returned := make([][]int, len(val))
	for i := range val {
		row := make([]float64, len(val))
		for j := range val {
			var sum float64
			for k := range embs[i] {
				d := embs[i][k] - embs[j][k]
				sum += d * d
			}
			row[j] = sum
		}
		returned[i] = eval.TopK(row, 10)
	}
	return eval.HitRatio(returned, truth, 10)
}
