package core

import (
	"math"
	"testing"
)

// TestEmbedAllMatchesEmbed checks that the flat-backed batch path
// produces exactly the per-trajectory Embed vectors.
func TestEmbedAllMatchesEmbed(t *testing.T) {
	trajs := genTrajs(6, 41)
	m, err := New(tinyConfig(), trajs)
	if err != nil {
		t.Fatal(err)
	}
	got := m.EmbedAll(trajs)
	if len(got) != len(trajs) {
		t.Fatalf("got %d vectors, want %d", len(got), len(trajs))
	}
	for i, tr := range trajs {
		want := m.Embed(tr)
		if len(got[i]) != len(want) {
			t.Fatalf("vector %d: got %d dims, want %d", i, len(got[i]), len(want))
		}
		for j := range want {
			if math.Abs(got[i][j]-want[j]) > 1e-12 {
				t.Fatalf("vector %d dim %d: got %v, want %v", i, j, got[i][j], want[j])
			}
		}
	}
}

// BenchmarkHotpathEmbedAll measures batch embedding end to end. The
// write path of the batch costs two allocations total (the [][]float64
// spine and one flat backing array); the forward passes build gradient
// graphs and remain the documented allocation floor — allocs/op here
// tracks that floor, locked in by scripts/hotpath_floors.json rather
// than a zero-alloc assertion.
func BenchmarkHotpathEmbedAll(b *testing.B) {
	trajs := genTrajs(8, 43)
	m, err := New(tinyConfig(), trajs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EmbedAll(trajs)
	}
}
