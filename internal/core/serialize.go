package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"traj2hash/internal/geo"
	"traj2hash/internal/grid"
	"traj2hash/internal/nn"
)

// modelBlob is the gob wire format of a trained model: configuration,
// study-space statistics, grid geometry, frozen grid embeddings, and the
// trainable parameters in Params() order.
type modelBlob struct {
	Cfg   Config
	Stats geo.Stats

	HasGrid  bool
	GridMinX float64
	GridMinY float64
	GridCell float64
	GridNX   int
	GridNY   int
	// Frozen grid embeddings: decomposed coordinate tables or the node2vec
	// cell table, depending on Cfg.GridRep.
	ExData, EyData []float64
	N2VData        []float64

	Params [][]float64
}

// Save writes the trained model to w.
func (m *Model) Save(w io.Writer) error {
	blob := modelBlob{Cfg: m.Cfg, Stats: m.stats}
	if m.fineGrid != nil {
		blob.HasGrid = true
		blob.GridMinX = m.fineGrid.MinX
		blob.GridMinY = m.fineGrid.MinY
		blob.GridCell = m.fineGrid.CellSize
		blob.GridNX = m.fineGrid.NX
		blob.GridNY = m.fineGrid.NY
		switch emb := m.gridEmb.(type) {
		case *grid.Decomposed:
			blob.ExData = emb.Ex.Data
			blob.EyData = emb.Ey.Data
		case *grid.Node2Vec:
			blob.N2VData = emb.Table.Data
		}
	}
	for _, p := range m.Params() {
		blob.Params = append(blob.Params, p.Data)
	}
	if err := gob.NewEncoder(w).Encode(blob); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	return nil
}

// SaveFile writes the model to path.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a model written by Save, reconstructing the architecture from
// the stored configuration.
func Load(r io.Reader) (*Model, error) {
	var blob modelBlob
	if err := gob.NewDecoder(r).Decode(&blob); err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	// Rebuild with a placeholder space covering the stored grid, then
	// overwrite everything learned.
	space := []geo.Trajectory{{
		{X: blob.GridMinX, Y: blob.GridMinY},
		{X: blob.GridMinX + blob.GridCell*float64(blob.GridNX)*0.999,
			Y: blob.GridMinY + blob.GridCell*float64(blob.GridNY)*0.999},
	}}
	if !blob.HasGrid {
		space = []geo.Trajectory{{{X: 0, Y: 0}, {X: 1, Y: 1}}}
	}
	cfg := blob.Cfg
	cfg.GridPreEpochs = 0 // embeddings are restored, not retrained
	m, err := New(cfg, space)
	if err != nil {
		return nil, fmt.Errorf("core: load rebuild: %w", err)
	}
	m.stats = blob.Stats
	if blob.HasGrid {
		m.fineGrid = &grid.Grid{
			MinX: blob.GridMinX, MinY: blob.GridMinY,
			CellSize: blob.GridCell, NX: blob.GridNX, NY: blob.GridNY,
		}
		switch cfg.GridRep {
		case Node2VecRep:
			if len(blob.N2VData) != m.fineGrid.Cells()*cfg.Dim {
				return nil, fmt.Errorf("core: load: node2vec table size %d != %d", len(blob.N2VData), m.fineGrid.Cells()*cfg.Dim)
			}
			n2v := &grid.Node2Vec{Grid: m.fineGrid, Dim: cfg.Dim,
				Table: nn.FromSlice(m.fineGrid.Cells(), cfg.Dim, blob.N2VData)}
			m.gridEmb = n2v
		default:
			if len(blob.ExData) != m.fineGrid.NX*cfg.Dim || len(blob.EyData) != m.fineGrid.NY*cfg.Dim {
				return nil, fmt.Errorf("core: load: coordinate table size mismatch")
			}
			m.gridEmb = &grid.Decomposed{
				Grid: m.fineGrid, Dim: cfg.Dim,
				Ex: nn.FromSlice(m.fineGrid.NX, cfg.Dim, blob.ExData),
				Ey: nn.FromSlice(m.fineGrid.NY, cfg.Dim, blob.EyData),
			}
		}
	}
	ps := m.Params()
	if len(ps) != len(blob.Params) {
		return nil, fmt.Errorf("core: load: %d params stored, model has %d", len(blob.Params), len(ps))
	}
	for i, p := range ps {
		if len(p.Data) != len(blob.Params[i]) {
			return nil, fmt.Errorf("core: load: param %d size %d != %d", i, len(blob.Params[i]), len(p.Data))
		}
		copy(p.Data, blob.Params[i])
	}
	return m, nil
}

// LoadFile reads a model from path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
