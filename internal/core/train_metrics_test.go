package core

import (
	"math"
	"reflect"
	"testing"

	"traj2hash/internal/faultinject"
	"traj2hash/internal/obs"
)

// TestTrainMetricsRecorded: an instrumented run must land the epoch /
// loss / HR@10 gauges, a gradient-norm histogram with one observation
// per optimizer step, and the checkpoint-emit counter — while staying
// bitwise identical to the uninstrumented run (observability must not
// perturb training).
func TestTrainMetricsRecorded(t *testing.T) {
	cfg, space, td := trainFixture(t)

	// Uninstrumented reference.
	mRef, err := New(cfg, space)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mRef.Train(td); err != nil {
		t.Fatal(err)
	}

	reg := obs.New()
	m, err := New(cfg, space)
	if err != nil {
		t.Fatal(err)
	}
	var steps int
	tdi := td
	tdi.Metrics = reg
	tdi.CheckpointEvery = 2
	tdi.OnCheckpoint = func(*Checkpoint) error { return nil }
	tdi.StepHook = func(epoch, step int) { steps++ }
	h, err := m.Train(tdi)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(paramBits(mRef), paramBits(m)) {
		t.Error("instrumented training diverged bitwise from the uninstrumented run")
	}

	s := reg.Snapshot()
	if got := s.Gauges["train.epoch"]; int(got) != cfg.Epochs {
		t.Errorf("train.epoch = %v, want %d", got, cfg.Epochs)
	}
	wantLoss := h.EpochLoss[len(h.EpochLoss)-1]
	if got := s.Gauges["train.epoch.loss"]; math.Float64bits(got) != math.Float64bits(wantLoss) {
		t.Errorf("train.epoch.loss = %v, want %v", got, wantLoss)
	}
	wantHR := h.ValHR10[len(h.ValHR10)-1]
	if got := s.Gauges["train.val.hr10"]; math.Float64bits(got) != math.Float64bits(wantHR) {
		t.Errorf("train.val.hr10 = %v, want %v", got, wantHR)
	}
	gn, ok := s.Histograms["train.grad_norm"]
	if !ok || gn.Count != int64(steps) {
		t.Errorf("train.grad_norm count = %d (present %v), want %d", gn.Count, ok, steps)
	}
	if got := s.Counters["train.checkpoint.emits"]; got != int64(cfg.Epochs/2) {
		t.Errorf("train.checkpoint.emits = %d, want %d", got, cfg.Epochs/2)
	}
	if got := s.Counters["train.rollbacks"]; got != 0 {
		t.Errorf("train.rollbacks = %d, want 0", got)
	}
}

// TestTrainMetricsCountRollbacks: a poisoned epoch that trips the
// divergence guard must surface as a train.rollbacks increment.
func TestTrainMetricsCountRollbacks(t *testing.T) {
	cfg, space, td := trainFixture(t)
	m, err := New(cfg, space)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	td.Metrics = reg
	p := faultinject.NewGradPoisoner(faultinject.Site{Epoch: 2, Step: 0})
	td.StepHook = func(epoch, step int) { p.MaybePoison(epoch, step, m.Params()) }
	if _, err := m.Train(td); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["train.rollbacks"]; got != 1 {
		t.Errorf("train.rollbacks = %d, want 1", got)
	}
}
