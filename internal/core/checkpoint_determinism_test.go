package core

import (
	"bytes"
	"testing"
)

// TestCheckpointEncodeDeterministic pins the byte-identity contract the
// det rules protect on the checkpoint path: two checkpoints produced by
// two independent training runs of the same seeded fixture must Save to
// identical bytes (deterministic training AND deterministic encoding),
// and a Load → Save round trip must reproduce them. Any map iteration,
// wall-clock read, or goroutine-completion-order merge leaking into the
// per-epoch body or the codec breaks this before it breaks resume.
func TestCheckpointEncodeDeterministic(t *testing.T) {
	saveBytes := func(c *Checkpoint) []byte {
		var buf bytes.Buffer
		if err := c.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := saveBytes(validCheckpoint(t))
	b := saveBytes(validCheckpoint(t))
	if !bytes.Equal(a, b) {
		t.Fatalf("two independently-trained checkpoints encoded to different bytes (%d vs %d)", len(a), len(b))
	}
	got, err := LoadCheckpoint(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if c := saveBytes(got); !bytes.Equal(a, c) {
		t.Fatal("Load → Save round trip changed the checkpoint bytes")
	}
}
