package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"

	"traj2hash/internal/geo"
	"traj2hash/internal/hamming"
	"traj2hash/internal/nn"
)

func init() {
	RegisterEncoder(CNNKind,
		func(cfg Config, space []geo.Trajectory) (Encoder, error) { return NewCNN(cfg, space) },
		func(r io.Reader) (Encoder, error) { return loadCNN(r) })
}

// CNN raster geometry: the study-space bounding box is rasterized onto a
// fixed cnnNX×cnnNY field with cnnChans channels per cell. The field is
// intentionally coarse — the encoder trades the attention model's
// sequence fidelity for a fixed-cost forward pass that is independent of
// trajectory length.
const (
	cnnNX    = 12 // raster width in cells
	cnnNY    = 12 // raster height in cells
	cnnChans = 8  // hidden channels of both conv layers
)

// CNNEncoder hashes trajectories through a small convolutional network
// over grid rasterizations: a trajectory is painted onto a fixed
// cnnNX×cnnNY raster of the study space (channel 0: visit density,
// channel 1: mean normalized progress of the visits, which restores the
// direction-of-travel signal a pure occupancy image loses), and two
// same-padded 3×3 convolutions (internal/nn.Conv3x3) with global mean
// pooling and a two-layer head map the image to the HashBits-wide
// embedding h_f. Codes follow the usual sign convention (Equation 16).
//
// CNNEncoder implements Trainable: it is fitted by the same generic
// training loop (trainLoop) as the paper's attention model, with the same
// objective, β schedule, checkpointing, and divergence guard.
type CNNEncoder struct {
	// Cfg records the configuration; HashBits, Seed, and the training
	// hyper-parameters are consulted.
	Cfg Config

	// Study-space bounding box the raster is anchored to.
	minX, minY, maxX, maxY float64

	conv1 *nn.Conv3x3
	conv2 *nn.Conv3x3
	head1 *nn.Linear // cnnChans → cnnChans
	head2 *nn.Linear // cnnChans → HashBits

	beta float64
	rng  *rand.Rand
}

// NewCNN builds the convolutional encoder with its raster fitted to the
// bounding box of the given study space.
func NewCNN(cfg Config, space []geo.Trajectory) (*CNNEncoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	minX, minY, maxX, maxY := math.Inf(1), math.Inf(1), math.Inf(-1), math.Inf(-1)
	for _, t := range space {
		for _, p := range t {
			minX = math.Min(minX, p.X)
			minY = math.Min(minY, p.Y)
			maxX = math.Max(maxX, p.X)
			maxY = math.Max(maxY, p.Y)
		}
	}
	if minX > maxX {
		return nil, fmt.Errorf("core: cnn encoder needs a non-empty study space")
	}
	return newCNNAt(cfg, minX, minY, maxX, maxY), nil
}

// newCNNAt builds the network for a known bounding box; parameter
// initialization is deterministic from Config.Seed.
func newCNNAt(cfg Config, minX, minY, maxX, maxY float64) *CNNEncoder {
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &CNNEncoder{
		Cfg:  cfg,
		minX: minX, minY: minY, maxX: maxX, maxY: maxY,
		conv1: nn.NewConv3x3(cnnNX, cnnNY, 2, cnnChans, rng),
		conv2: nn.NewConv3x3(cnnNX, cnnNY, cnnChans, cnnChans, rng),
		head1: nn.NewLinear(cnnChans, cnnChans, rng),
		head2: nn.NewLinear(cnnChans, cfg.HashBits, rng),
		beta:  cfg.BetaStart,
		rng:   rng,
	}
}

// raster paints a trajectory onto the study-space field: channel 0 is the
// visit density (visits per cell, normalized by trajectory length) and
// channel 1 the mean normalized progress (0 at the start, 1 at the end)
// of the points that fell in the cell. Points outside the bounding box
// clamp to the border cells.
func (c *CNNEncoder) raster(t geo.Trajectory) []float64 {
	cells := cnnNX * cnnNY
	data := make([]float64, cells*2)
	if len(t) == 0 {
		return data
	}
	counts := make([]float64, cells)
	progress := make([]float64, cells)
	spanX := c.maxX - c.minX
	spanY := c.maxY - c.minY
	denom := 1.0
	if len(t) > 1 {
		denom = float64(len(t) - 1)
	}
	for i, p := range t {
		x := 0
		if spanX > 0 {
			x = clampCell(int((p.X-c.minX)/spanX*float64(cnnNX)), cnnNX)
		}
		y := 0
		if spanY > 0 {
			y = clampCell(int((p.Y-c.minY)/spanY*float64(cnnNY)), cnnNY)
		}
		id := y*cnnNX + x
		counts[id]++
		progress[id] += float64(i) / denom
	}
	n := float64(len(t))
	for id := 0; id < cells; id++ {
		data[id*2] = counts[id] / n
		if counts[id] > 0 {
			data[id*2+1] = progress[id] / counts[id]
		}
	}
	return data
}

// clampCell clamps a raster coordinate into [0, n).
func clampCell(v, n int) int {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}

// Kind returns the encoder registry name.
func (c *CNNEncoder) Kind() string { return CNNKind }

// Dim returns the embedding width (= Config.HashBits).
func (c *CNNEncoder) Dim() int { return c.Cfg.HashBits }

// Params returns the trainable parameters of both conv layers and the
// head.
func (c *CNNEncoder) Params() []*nn.Tensor {
	var ps []*nn.Tensor
	ps = append(ps, c.conv1.Params()...)
	ps = append(ps, c.conv2.Params()...)
	ps = append(ps, c.head1.Params()...)
	ps = append(ps, c.head2.Params()...)
	return ps
}

// SetParams overwrites the trainable parameter values from flat
// per-tensor slices in Params() order.
func (c *CNNEncoder) SetParams(groups [][]float64) error { return setParams(c.Params(), groups) }

// trainable hooks: the generic training loop (train.go) drives the CNN
// through these exactly as it drives the attention model.
func (c *CNNEncoder) trainConfig() Config  { return c.Cfg }
func (c *CNNEncoder) curBeta() float64     { return c.beta }
func (c *CNNEncoder) setBeta(b float64)    { c.beta = b }
func (c *CNNEncoder) trainRNG() randSource { return c.rng }

// forward encodes a raw trajectory into the representation h_f
// (1×HashBits), building a gradient graph.
func (c *CNNEncoder) forward(t geo.Trajectory) *nn.Tensor {
	x := nn.FromSlice(cnnNX*cnnNY, 2, c.raster(t))
	h := nn.ReLU(c.conv1.Forward(x))
	h = nn.ReLU(c.conv2.Forward(h))
	h = nn.MeanRows(h)
	h = nn.ReLU(c.head1.Forward(h))
	return c.head2.Forward(h)
}

// relaxedCode applies the training-time relaxation tanh(β·h_f) of the
// sign function (Equation 16).
func (c *CNNEncoder) relaxedCode(hf *nn.Tensor) *nn.Tensor {
	return nn.Tanh(nn.Scale(hf, c.beta))
}

// Embed returns the Euclidean-space embedding of a trajectory as a plain
// vector (no gradient graph).
func (c *CNNEncoder) Embed(t geo.Trajectory) []float64 {
	out := c.forward(t)
	v := make([]float64, len(out.Data))
	copy(v, out.Data)
	return v
}

// EmbedAll embeds a batch sequentially.
func (c *CNNEncoder) EmbedAll(ts []geo.Trajectory) [][]float64 { return embedAll(c, ts) }

// EmbedAllParallel embeds a batch across worker goroutines (workers ≤ 0
// uses GOMAXPROCS). Forward passes only read the parameters, so this is
// safe whenever no training step runs concurrently.
func (c *CNNEncoder) EmbedAllParallel(ts []geo.Trajectory, workers int) [][]float64 {
	builders := make([]func() *nn.Tensor, len(ts))
	for i := range ts {
		t := ts[i]
		builders[i] = func() *nn.Tensor { return c.forward(t) }
	}
	outs := nn.ForwardParallel(workers, builders)
	vecs := make([][]float64, len(outs))
	for i, o := range outs {
		v := make([]float64, len(o.Data))
		copy(v, o.Data)
		vecs[i] = v
	}
	return vecs
}

// Code returns the Hamming-space code sign(Embed(t)).
func (c *CNNEncoder) Code(t geo.Trajectory) hamming.Code { return hamming.FromSigns(c.Embed(t)) }

// CodeAll hashes a batch of trajectories.
func (c *CNNEncoder) CodeAll(ts []geo.Trajectory) []hamming.Code { return codeAll(c, ts) }

// cnnBlob is the gob wire format of a (possibly trained) CNN encoder.
type cnnBlob struct {
	Cfg                    Config
	MinX, MinY, MaxX, MaxY float64
	Beta                   float64
	Groups                 [][]float64
}

// Save writes the encoder (raster anchor and parameters) to w.
func (c *CNNEncoder) Save(w io.Writer) error {
	blob := cnnBlob{
		Cfg:  c.Cfg,
		MinX: c.minX, MinY: c.minY, MaxX: c.maxX, MaxY: c.maxY,
		Beta:   c.beta,
		Groups: snapshotParams(c),
	}
	if err := gob.NewEncoder(w).Encode(blob); err != nil {
		return fmt.Errorf("core: cnn save: %w", err)
	}
	return nil
}

// loadCNN reads an encoder written by Save.
func loadCNN(r io.Reader) (*CNNEncoder, error) {
	var blob cnnBlob
	if err := gob.NewDecoder(r).Decode(&blob); err != nil {
		return nil, fmt.Errorf("core: cnn load: %w", err)
	}
	if err := blob.Cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: cnn load: %w", err)
	}
	c := newCNNAt(blob.Cfg, blob.MinX, blob.MinY, blob.MaxX, blob.MaxY)
	c.beta = blob.Beta
	if err := c.SetParams(blob.Groups); err != nil {
		return nil, fmt.Errorf("core: cnn load: %w", err)
	}
	return c, nil
}
