package core

import (
	"encoding/json"
	"os"
	"testing"

	"traj2hash/internal/geo"
)

// benchWorkload is the fixed query set the encoder benchmarks embed.
func benchWorkload(tb testing.TB) []geo.Trajectory {
	tb.Helper()
	return genTrajs(32, 17)
}

// benchEncoder builds one encoder of the given kind on the benchmark
// study space (untrained: training changes parameter values, not the
// arithmetic, so embed/hash throughput is representative).
func benchEncoder(tb testing.TB, kind string) Encoder {
	tb.Helper()
	enc, err := NewEncoder(kind, tinyConfig(), genTrajs(40, 7))
	if err != nil {
		tb.Fatalf("NewEncoder(%q): %v", kind, err)
	}
	return enc
}

func BenchmarkEncoderEmbed(b *testing.B) {
	qs := benchWorkload(b)
	for _, kind := range EncoderKinds() {
		enc := benchEncoder(b, kind)
		b.Run(kind, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				enc.Embed(qs[i%len(qs)])
			}
		})
	}
}

func BenchmarkEncoderCode(b *testing.B) {
	qs := benchWorkload(b)
	for _, kind := range EncoderKinds() {
		enc := benchEncoder(b, kind)
		b.Run(kind, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				enc.Code(qs[i%len(qs)])
			}
		})
	}
}

func BenchmarkEncoderEmbedAllParallel(b *testing.B) {
	qs := benchWorkload(b)
	for _, kind := range EncoderKinds() {
		enc := benchEncoder(b, kind)
		b.Run(kind, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				enc.EmbedAllParallel(qs, 0)
			}
		})
	}
}

// encoderBenchRecord is one row of the BENCH_encoders.json artifact.
type encoderBenchRecord struct {
	Encoder     string  `json:"encoder"`
	Op          string  `json:"op"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// TestEncoderBenchArtifact measures each encoder's embed and hash cost
// with testing.Benchmark and writes the BENCH_encoders.json artifact to
// the path named by BENCH_ENCODERS_OUT (see scripts/ci.sh). A no-op when
// the variable is unset, so ordinary `go test` runs stay fast and leave
// no files behind (the artifact path must lie outside this package — the
// residue guard in TestMain fails the run otherwise).
func TestEncoderBenchArtifact(t *testing.T) {
	path := os.Getenv("BENCH_ENCODERS_OUT")
	if path == "" {
		t.Skip("BENCH_ENCODERS_OUT not set; skipping the benchmark artifact")
	}
	qs := benchWorkload(t)
	var records []encoderBenchRecord
	for _, kind := range EncoderKinds() {
		enc := benchEncoder(t, kind)
		for _, op := range []struct {
			name string
			run  func(i int)
		}{
			{"embed", func(i int) { enc.Embed(qs[i%len(qs)]) }},
			{"code", func(i int) { enc.Code(qs[i%len(qs)]) }},
		} {
			run := op.run
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					run(i)
				}
			})
			ns := float64(r.NsPerOp())
			rec := encoderBenchRecord{
				Encoder:     kind,
				Op:          op.name,
				NsPerOp:     ns,
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			}
			if ns > 0 {
				rec.OpsPerSec = 1e9 / ns
			}
			records = append(records, rec)
			t.Logf("%s/%s: %.0f ns/op, %d allocs/op", kind, op.name, ns, r.AllocsPerOp())
		}
	}
	out, err := os.Create(path)
	if err != nil {
		t.Fatalf("bench artifact: %v", err)
	}
	encJSON := json.NewEncoder(out)
	encJSON.SetIndent("", "  ")
	if err := encJSON.Encode(map[string]any{"benchmarks": records}); err != nil {
		//lint:ignore errcheck the encode error takes precedence over the cleanup close
		out.Close()
		t.Fatalf("bench artifact: %v", err)
	}
	if err := out.Close(); err != nil {
		t.Fatalf("bench artifact: %v", err)
	}
}
