package core

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"

	"traj2hash/internal/nn"
	"traj2hash/internal/obs"
)

// CheckpointVersion is the on-disk format version of Checkpoint.Save.
// Bump it on any incompatible layout change; LoadCheckpoint rejects
// versions it does not understand instead of mis-decoding them.
//
// Version history:
//   - 1: the pre-encoder-interface format — no Kind/Cfg header fields.
//     Still readable: gob leaves the missing fields zero and an empty
//     Kind is treated as AttentionKind (the only encoder that existed).
//   - 2: the header records the encoder kind and its Config, so resuming
//     into the wrong encoder fails with ErrEncoderMismatch instead of a
//     shape-mismatch lottery.
const CheckpointVersion = 2

// Checkpoint is a resumable snapshot of a training run at an epoch
// boundary: the current parameter values, the best-validation snapshot
// for model selection, the Adam moment estimates and step counter, the
// tanh(β·) relaxation, the (possibly guard-reduced) learning rate, and
// the history accumulated so far.
//
// The RNG cursor is the epoch number itself: TrainCtx draws every
// in-epoch sample (anchor shuffle, triplet picks) from a per-epoch
// generator seeded by (Config.Seed, epoch), so resuming at Epoch replays
// exactly the stream an uninterrupted run would have drawn — resumed
// training is bitwise identical to uninterrupted training.
type Checkpoint struct {
	Version int
	// Kind is the encoder kind that wrote the checkpoint (version ≥ 2);
	// empty means a version-1 checkpoint, which is by definition the
	// attention model.
	Kind string
	// Cfg is the encoder configuration of the run (version ≥ 2),
	// recorded so tooling can rebuild the encoder without guessing;
	// zero for version-1 checkpoints.
	Cfg Config
	// Epoch is the number of completed epochs; resume starts there.
	Epoch int
	// Beta is the current tanh(β·) relaxation scale.
	Beta float64
	// LR is the current learning rate (reduced after guard rollbacks).
	LR float64
	// Rollbacks counts divergence-guard rollbacks taken so far.
	Rollbacks int
	// AdamT is the optimizer's step counter; AdamM/AdamV its moments.
	AdamT int
	// History is the run history up to Epoch (deep copy).
	History History
	// Shapes records each parameter tensor's rows×cols, validated on
	// resume against the live model.
	Shapes [][2]int

	// Params, Best, AdamM, AdamV are parallel to Shapes.
	Params [][]float64
	Best   [][]float64
	AdamM  [][]float64
	AdamV  [][]float64
}

// checkpointMeta is the gob header of the stream written by Save; the
// four parameter groups follow it via nn.SaveParams.
type checkpointMeta struct {
	Version   int
	Kind      string
	Cfg       Config
	Epoch     int
	Beta      float64
	LR        float64
	Rollbacks int
	AdamT     int
	History   History
	Shapes    [][2]int
}

// tensorsOver wraps flat parameter groups in Tensor headers of the given
// shapes (sharing the data) so nn.SaveParams/LoadParams can carry them.
func tensorsOver(shapes [][2]int, group [][]float64) []*nn.Tensor {
	ts := make([]*nn.Tensor, len(group))
	for i, data := range group {
		ts[i] = nn.FromSlice(shapes[i][0], shapes[i][1], data)
	}
	return ts
}

// allocGroup allocates one zeroed parameter group matching shapes.
func allocGroup(shapes [][2]int) ([][]float64, []*nn.Tensor) {
	group := make([][]float64, len(shapes))
	ts := make([]*nn.Tensor, len(shapes))
	for i, s := range shapes {
		group[i] = make([]float64, s[0]*s[1])
		ts[i] = nn.FromSlice(s[0], s[1], group[i])
	}
	return group, ts
}

// Save writes the checkpoint to w: a gob metadata header followed by the
// four parameter groups in nn.SaveParams format.
//
//det:replayed checkpoint bytes must be identical across independent saves of the same state (bitwise-identical resume)
func (c *Checkpoint) Save(w io.Writer) error {
	meta := checkpointMeta{
		Version:   CheckpointVersion,
		Kind:      c.Kind,
		Cfg:       c.Cfg,
		Epoch:     c.Epoch,
		Beta:      c.Beta,
		LR:        c.LR,
		Rollbacks: c.Rollbacks,
		AdamT:     c.AdamT,
		History:   c.History,
		Shapes:    c.Shapes,
	}
	if err := gob.NewEncoder(w).Encode(meta); err != nil {
		return fmt.Errorf("core: checkpoint meta: %w", err)
	}
	for _, group := range [][][]float64{c.Params, c.Best, c.AdamM, c.AdamV} {
		if len(group) != len(c.Shapes) {
			return fmt.Errorf("core: checkpoint group has %d tensors, want %d", len(group), len(c.Shapes))
		}
		if err := nn.SaveParams(w, tensorsOver(c.Shapes, group)); err != nil {
			return err
		}
	}
	return nil
}

// LoadCheckpoint reads a checkpoint written by Save.
//
//det:replayed resume rebuilds training state from this decode; it must be a pure function of the stream
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var meta checkpointMeta
	if err := gob.NewDecoder(r).Decode(&meta); err != nil {
		return nil, fmt.Errorf("core: checkpoint meta: %w", err)
	}
	if meta.Version < 1 || meta.Version > CheckpointVersion {
		return nil, fmt.Errorf("core: checkpoint version %d, this build reads 1..%d", meta.Version, CheckpointVersion)
	}
	c := &Checkpoint{
		Version:   meta.Version,
		Kind:      meta.Kind,
		Cfg:       meta.Cfg,
		Epoch:     meta.Epoch,
		Beta:      meta.Beta,
		LR:        meta.LR,
		Rollbacks: meta.Rollbacks,
		AdamT:     meta.AdamT,
		History:   meta.History,
		Shapes:    meta.Shapes,
	}
	for _, dst := range []*[][]float64{&c.Params, &c.Best, &c.AdamM, &c.AdamV} {
		group, ts := allocGroup(meta.Shapes)
		if err := nn.LoadParams(r, ts); err != nil {
			return nil, err
		}
		*dst = group
	}
	return c, nil
}

// Checkpoint persistence counters, on the process-global obs registry
// (SaveCheckpointFile is a free function with no configuration surface;
// the CLI's /metrics endpoint and -stats summaries read obs.Default).
var (
	checkpointWrites       = obs.Default().Counter("core.checkpoint.writes")
	checkpointWriteFailers = obs.Default().Counter("core.checkpoint.write_failures")
)

// SaveCheckpointFile writes the checkpoint to path atomically AND
// durably: the bytes are written to a sibling temp file, fsynced to
// stable storage, renamed over path, and the parent directory is synced
// so the rename itself survives a crash. The ordering matters — renaming
// before fsync would publish a checkpoint whose data could still be lost
// to power failure, the exact failure checkpoints exist to survive; an
// interrupt at any point leaves either the old complete file or the new
// complete file, never a torn one. Outcomes are counted on obs.Default
// (core.checkpoint.writes / core.checkpoint.write_failures).
func SaveCheckpointFile(path string, c *Checkpoint) (err error) {
	defer func() {
		if err != nil {
			checkpointWriteFailers.Inc()
		} else {
			checkpointWrites.Inc()
		}
	}()
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := c.Save(tmp); err != nil {
		//lint:ignore errcheck the save error takes precedence over the cleanup close
		tmp.Close()
		return err
	}
	// Sync BEFORE the close/rename: Close flushes to the OS, but only
	// fsync forces the data to stable storage — without it, a power loss
	// shortly after the rename can reveal an empty or torn file at path.
	if err := tmp.Sync(); err != nil {
		//lint:ignore errcheck the sync error takes precedence over the cleanup close
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-completed rename in it is
// durable. Filesystems that do not support syncing directories (or
// platforms where opening a directory for sync fails) are tolerated —
// the unsupported-operation class of errors is swallowed, real I/O
// errors are returned.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if serr != nil && (errors.Is(serr, syscall.EINVAL) || errors.Is(serr, syscall.ENOTSUP)) {
		serr = nil
	}
	if serr != nil {
		//lint:ignore errcheck the sync error takes precedence over the cleanup close
		d.Close()
		return serr
	}
	return d.Close()
}

// LoadCheckpointFile reads a checkpoint from path. The file is wrapped
// in a bufio.Reader so the stream's several sequential gob decoders (the
// meta header plus the parameter groups) each see an io.ByteReader and
// read exactly their own messages — gob.NewDecoder over a bare *os.File
// would buffer ahead and starve the decoders after it.
func LoadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadCheckpoint(bufio.NewReader(f))
}

// buildCheckpoint captures the live training state as a Checkpoint (deep
// copies throughout — the snapshot must not alias tensors the next epoch
// will mutate). The header records the encoder kind and configuration so
// a resume into the wrong encoder fails with a typed error.
//
//det:replayed the captured state is what makes resumed training bitwise identical to uninterrupted training
func buildCheckpoint(m trainable, opt *nn.Adam, epoch int, h *History, lr float64, rollbacks int, best [][]float64) *Checkpoint {
	ps := m.Params()
	shapes := make([][2]int, len(ps))
	params := make([][]float64, len(ps))
	for i, p := range ps {
		shapes[i] = [2]int{p.Rows, p.Cols}
		params[i] = append([]float64(nil), p.Data...)
	}
	bestCopy := make([][]float64, len(best))
	for i, b := range best {
		bestCopy[i] = append([]float64(nil), b...)
	}
	t, am, av := opt.State()
	return &Checkpoint{
		Version:   CheckpointVersion,
		Kind:      m.Kind(),
		Cfg:       m.trainConfig(),
		Epoch:     epoch,
		Beta:      m.curBeta(),
		LR:        lr,
		Rollbacks: rollbacks,
		AdamT:     t,
		History:   h.clone(),
		Shapes:    shapes,
		Params:    params,
		Best:      bestCopy,
		AdamM:     am,
		AdamV:     av,
	}
}

// applyCheckpoint writes a checkpoint back into the live encoder and
// optimizer, returning the restored best snapshot and history. It
// validates the checkpoint's encoder kind (ErrEncoderMismatch on
// disagreement — an empty kind means a version-1 checkpoint, which is
// always the attention model) and the parameter shapes, so a mismatch
// fails loudly instead of training from garbage.
//
//det:replayed restoring a checkpoint must reproduce the exact state buildCheckpoint captured
func applyCheckpoint(m trainable, c *Checkpoint, opt *nn.Adam) ([][]float64, *History, error) {
	kind := c.Kind
	if kind == "" {
		kind = AttentionKind
	}
	if kind != m.Kind() {
		return nil, nil, fmt.Errorf("core: checkpoint was written by encoder %q, resuming with %q: %w",
			kind, m.Kind(), ErrEncoderMismatch)
	}
	ps := m.Params()
	if len(c.Shapes) != len(ps) {
		return nil, nil, fmt.Errorf("core: checkpoint has %d params, model has %d", len(c.Shapes), len(ps))
	}
	for i, p := range ps {
		if c.Shapes[i] != [2]int{p.Rows, p.Cols} {
			return nil, nil, fmt.Errorf("core: checkpoint param %d is %dx%d, model wants %dx%d",
				i, c.Shapes[i][0], c.Shapes[i][1], p.Rows, p.Cols)
		}
		if len(c.Params[i]) != len(p.Data) || len(c.Best[i]) != len(p.Data) {
			return nil, nil, fmt.Errorf("core: checkpoint param %d data length mismatch", i)
		}
	}
	for i, p := range ps {
		copy(p.Data, c.Params[i])
	}
	if err := opt.SetState(c.AdamT, c.AdamM, c.AdamV); err != nil {
		return nil, nil, err
	}
	m.setBeta(c.Beta)
	best := make([][]float64, len(c.Best))
	for i, b := range c.Best {
		best[i] = append([]float64(nil), b...)
	}
	h := c.History.clone()
	return best, &h, nil
}

// clone deep-copies a History.
func (h History) clone() History {
	out := h
	out.EpochLoss = append([]float64(nil), h.EpochLoss...)
	out.ValHR10 = append([]float64(nil), h.ValHR10...)
	out.Diverged = append([]int(nil), h.Diverged...)
	return out
}
