package core

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"traj2hash/internal/hamming"
)

// newTestEncoder builds one encoder of each registered kind on the shared
// tiny fixture space.
func newTestEncoder(t *testing.T, kind string) Encoder {
	t.Helper()
	cfg := tinyConfig()
	space := genTrajs(40, 7)
	enc, err := NewEncoder(kind, cfg, space)
	if err != nil {
		t.Fatalf("NewEncoder(%q): %v", kind, err)
	}
	return enc
}

func TestEncoderRegistry(t *testing.T) {
	kinds := EncoderKinds()
	want := []string{AttentionKind, CNNKind, GeoPTHKind}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("EncoderKinds() = %v, want %v", kinds, want)
	}
	for alias, canonical := range map[string]string{
		"model":       AttentionKind,
		"traj2hash":   AttentionKind,
		AttentionKind: AttentionKind,
		GeoPTHKind:    GeoPTHKind,
		CNNKind:       CNNKind,
	} {
		got, err := ResolveEncoderKind(alias)
		if err != nil {
			t.Errorf("ResolveEncoderKind(%q): %v", alias, err)
		} else if got != canonical {
			t.Errorf("ResolveEncoderKind(%q) = %q, want %q", alias, got, canonical)
		}
	}
	if _, err := ResolveEncoderKind("no-such-encoder"); err == nil {
		t.Error("unknown encoder kind resolved")
	}
	if _, err := NewEncoder("no-such-encoder", tinyConfig(), genTrajs(4, 1)); err == nil {
		t.Error("NewEncoder accepted an unknown kind")
	}
}

// TestEncoderContract is the cross-encoder contract test: every
// registered encoder must honor the Encoder interface contract the
// doc comment states.
func TestEncoderContract(t *testing.T) {
	for _, kind := range EncoderKinds() {
		t.Run(kind, func(t *testing.T) {
			enc := newTestEncoder(t, kind)
			cfg := tinyConfig()
			if enc.Kind() != kind {
				t.Errorf("Kind() = %q, want %q", enc.Kind(), kind)
			}
			if enc.Dim() != cfg.HashBits {
				t.Errorf("Dim() = %d, want HashBits = %d", enc.Dim(), cfg.HashBits)
			}
			ts := genTrajs(12, 9)

			// Embed: deterministic, Dim() wide.
			for _, tr := range ts {
				e1 := enc.Embed(tr)
				e2 := enc.Embed(tr)
				if len(e1) != enc.Dim() {
					t.Fatalf("Embed returned %d values, want %d", len(e1), enc.Dim())
				}
				if !reflect.DeepEqual(e1, e2) {
					t.Fatal("Embed is not deterministic")
				}
				// Code = sign(Embed), code length = configured bits.
				c := enc.Code(tr)
				if c.Bits != cfg.HashBits {
					t.Fatalf("Code has %d bits, want %d", c.Bits, cfg.HashBits)
				}
				if !reflect.DeepEqual(c, hamming.FromSigns(e1)) {
					t.Fatal("Code(t) != sign(Embed(t))")
				}
			}

			// Batch forms agree with the per-trajectory forms.
			seq := enc.EmbedAll(ts)
			for i, tr := range ts {
				if !reflect.DeepEqual(seq[i], enc.Embed(tr)) {
					t.Fatalf("EmbedAll[%d] != Embed", i)
				}
			}
			par := enc.EmbedAllParallel(ts, 4)
			if !reflect.DeepEqual(par, seq) {
				t.Error("EmbedAllParallel != EmbedAll")
			}
			codes := enc.CodeAll(ts)
			for i, tr := range ts {
				if !reflect.DeepEqual(codes[i], enc.Code(tr)) {
					t.Fatalf("CodeAll[%d] != Code", i)
				}
			}
		})
	}
}

// TestEncoderSaveLoadRoundTrip checks the kind-tagged container: every
// built-in encoder serializes and loads back to identical embeddings.
func TestEncoderSaveLoadRoundTrip(t *testing.T) {
	for _, kind := range EncoderKinds() {
		t.Run(kind, func(t *testing.T) {
			enc := newTestEncoder(t, kind)
			var buf bytes.Buffer
			if err := SaveEncoder(&buf, enc); err != nil {
				t.Fatal(err)
			}
			got, err := LoadEncoder(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if got.Kind() != kind {
				t.Fatalf("loaded kind %q, want %q", got.Kind(), kind)
			}
			ts := genTrajs(6, 11)
			if !reflect.DeepEqual(got.EmbedAll(ts), enc.EmbedAll(ts)) {
				t.Error("embeddings changed across a save/load round trip")
			}
		})
	}
}

// TestLoadEncoderFileLegacyModel checks the migration path: a raw model
// file written by the pre-interface Model.SaveFile API must load through
// LoadEncoderFile.
func TestLoadEncoderFileLegacyModel(t *testing.T) {
	cfg := tinyConfig()
	space := genTrajs(40, 7)
	m, err := New(cfg, space)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	legacy := filepath.Join(dir, "legacy.gob")
	if err := m.SaveFile(legacy); err != nil {
		t.Fatal(err)
	}
	enc, err := LoadEncoderFile(legacy)
	if err != nil {
		t.Fatalf("legacy model file did not load: %v", err)
	}
	if enc.Kind() != AttentionKind {
		t.Fatalf("legacy file loaded as %q, want %q", enc.Kind(), AttentionKind)
	}
	ts := genTrajs(6, 11)
	if !reflect.DeepEqual(enc.EmbedAll(ts), m.EmbedAll(ts)) {
		t.Error("legacy load changed embeddings")
	}

	// And the container format through the same entry point.
	modern := filepath.Join(dir, "modern.enc")
	if err := SaveEncoderFile(modern, m); err != nil {
		t.Fatal(err)
	}
	enc2, err := LoadEncoderFile(modern)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(enc2.EmbedAll(ts), m.EmbedAll(ts)) {
		t.Error("container load changed embeddings")
	}

	if _, err := LoadEncoderFile(filepath.Join(dir, "missing.enc")); err == nil {
		t.Error("missing file loaded")
	}
}

// TestGeoPTHIsTrainingFree pins the design decision that the prototype
// hasher has no training loop: it must not satisfy Trainable, and an
// index over it is usable immediately after construction.
func TestGeoPTHIsTrainingFree(t *testing.T) {
	enc := newTestEncoder(t, GeoPTHKind)
	if _, ok := enc.(Trainable); ok {
		t.Fatal("GeoPTH must not implement Trainable")
	}
	// Codes are usable straight away and not degenerate: two far-apart
	// fixture trajectories should not collide on every bit with
	// everything else.
	ts := genTrajs(12, 13)
	codes := enc.CodeAll(ts)
	distinct := false
	for i := 1; i < len(codes); i++ {
		if hamming.Distance(codes[0], codes[i]) > 0 {
			distinct = true
			break
		}
	}
	if !distinct {
		t.Error("all geopth codes identical; prototype hashing is degenerate")
	}
}

// TestCNNTrainable pins that the CNN encoder satisfies the exported
// Trainable seam and that a short training run completes with finite
// history through the generic training loop.
func TestCNNTrainable(t *testing.T) {
	cfg, space, td := trainFixture(t)
	cfg.Epochs = 2
	enc, err := NewEncoder(CNNKind, cfg, space)
	if err != nil {
		t.Fatal(err)
	}
	tr, ok := enc.(Trainable)
	if !ok {
		t.Fatal("CNN encoder must implement Trainable")
	}
	h, err := tr.Train(td)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.EpochLoss) != cfg.Epochs {
		t.Fatalf("trained %d epochs, want %d", len(h.EpochLoss), cfg.Epochs)
	}
	if paramsNonFinite(enc.(*CNNEncoder)) {
		t.Error("CNN training produced non-finite parameters")
	}
}

// TestV1CheckpointBitwiseResume is the checkpoint-compat regression test:
// testdata/checkpoint_v1.ckpt was written by the pre-refactor (version-1)
// code at the epoch-2 boundary of the shared trainFixture run. Loading it
// must succeed with an empty Kind, and resuming from it must finish
// bitwise identical to an uninterrupted run of the refactored code.
func TestV1CheckpointBitwiseResume(t *testing.T) {
	ck, err := LoadCheckpointFile(filepath.Join("testdata", "checkpoint_v1.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if ck.Version != 1 {
		t.Fatalf("fixture version %d, want 1", ck.Version)
	}
	if ck.Kind != "" {
		t.Fatalf("v1 fixture has kind %q, want empty (pre-interface format)", ck.Kind)
	}
	if ck.Epoch != 2 {
		t.Fatalf("fixture epoch %d, want 2", ck.Epoch)
	}

	cfg, space, td := trainFixture(t)

	// Uninterrupted reference run under the refactored loop.
	m1, err := New(cfg, space)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := m1.Train(td)
	if err != nil {
		t.Fatal(err)
	}

	// Fresh model resumed from the v1 on-disk checkpoint.
	m2, err := New(cfg, space)
	if err != nil {
		t.Fatal(err)
	}
	td2 := td
	td2.Resume = ck
	h2, err := m2.Train(td2)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(paramBits(m1), paramBits(m2)) {
		t.Error("resume from the v1 checkpoint is not bitwise identical to an uninterrupted run")
	}
	if !reflect.DeepEqual(h1.EpochLoss, h2.EpochLoss) {
		t.Errorf("epoch losses diverged:\nfull   %v\nv1 res %v", h1.EpochLoss, h2.EpochLoss)
	}
	if !reflect.DeepEqual(h1.ValHR10, h2.ValHR10) {
		t.Errorf("validation history diverged:\nfull   %v\nv1 res %v", h1.ValHR10, h2.ValHR10)
	}
}

// TestCheckpointRecordsEncoderKind pins the version-2 header: checkpoints
// written now carry the encoder kind and config.
func TestCheckpointRecordsEncoderKind(t *testing.T) {
	cfg, space, td := trainFixture(t)
	m, err := New(cfg, space)
	if err != nil {
		t.Fatal(err)
	}
	var last *Checkpoint
	td.CheckpointEvery = 1
	td.OnCheckpoint = func(c *Checkpoint) error { last = c; return nil }
	if _, err := m.Train(td); err != nil {
		t.Fatal(err)
	}
	if last == nil {
		t.Fatal("no checkpoint emitted")
	}
	if last.Version != CheckpointVersion {
		t.Errorf("checkpoint version %d, want %d", last.Version, CheckpointVersion)
	}
	if last.Kind != AttentionKind {
		t.Errorf("checkpoint kind %q, want %q", last.Kind, AttentionKind)
	}
	if last.Cfg.HashBits != cfg.HashBits {
		t.Errorf("checkpoint Cfg.HashBits = %d, want %d", last.Cfg.HashBits, cfg.HashBits)
	}
}

// TestResumeRejectsEncoderKindMismatch: resuming an attention-model
// checkpoint into the CNN encoder must fail with ErrEncoderMismatch, not
// a shape-mismatch lottery.
func TestResumeRejectsEncoderKindMismatch(t *testing.T) {
	cfg, space, td := trainFixture(t)
	m, err := New(cfg, space)
	if err != nil {
		t.Fatal(err)
	}
	var last *Checkpoint
	td.CheckpointEvery = 1
	td.OnCheckpoint = func(c *Checkpoint) error { last = c; return nil }
	if _, err := m.Train(td); err != nil {
		t.Fatal(err)
	}

	cnn, err := NewCNN(cfg, space)
	if err != nil {
		t.Fatal(err)
	}
	td2 := td
	td2.Resume = last
	_, err = cnn.Train(td2)
	if err == nil {
		t.Fatal("CNN resumed from an attention checkpoint")
	}
	if !errors.Is(err, ErrEncoderMismatch) {
		t.Errorf("error %v does not wrap ErrEncoderMismatch", err)
	}
}
