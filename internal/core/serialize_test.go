package core

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	ts := genTrajs(10, 20)
	m, err := New(tinyConfig(), ts)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Embed(ts[0])
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	have := got.Embed(ts[0])
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("embedding differs after round trip at %d: %v vs %v", i, want[i], have[i])
		}
	}
	// Codes equal too.
	if m.Code(ts[1]).Key() != got.Code(ts[1]).Key() {
		t.Error("codes differ after round trip")
	}
}

func TestModelSaveLoadNoGrids(t *testing.T) {
	ts := genTrajs(8, 21)
	cfg := tinyConfig()
	cfg.UseGrids = false
	m, err := New(cfg, ts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.gob")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a := m.Embed(ts[0])
	b := got.Embed(ts[0])
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("no-grid model differs after round trip")
		}
	}
}

func TestModelSaveLoadNode2Vec(t *testing.T) {
	ts := genTrajs(8, 22)
	cfg := tinyConfig()
	cfg.GridRep = Node2VecRep
	m, err := New(cfg, ts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := m.Embed(ts[2])
	b := got.Embed(ts[2])
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("node2vec model differs after round trip")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Error("missing file accepted")
	}
}
