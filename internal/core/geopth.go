package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"traj2hash/internal/dist"
	"traj2hash/internal/geo"
	"traj2hash/internal/grid"
	"traj2hash/internal/hamming"
)

func init() {
	RegisterEncoder(GeoPTHKind,
		func(cfg Config, space []geo.Trajectory) (Encoder, error) { return NewGeoPTH(cfg, space) },
		func(r io.Reader) (Encoder, error) { return loadGeoPTH(r) })
}

// GeoPTH is a training-free geometric prototype hasher in the spirit of
// the GeoPTH related work (PAPERS.md): instead of learning an embedding,
// it picks representative prototype trajectories spread across the study
// space and encodes a trajectory by which prototype of each pair it lies
// closer to. Bit i of the code is the sign of
//
//	d(t, B_i) − d(t, A_i)
//
// for the i-th prototype pair (A_i, B_i) — a geometric analogue of
// random-hyperplane hashing where the "hyperplane" is the perpendicular
// bisector of two real trajectories under the exact trajectory distance.
// The embedding is the vector of these (normalized) signed gaps, so
// Code(t) = sign(Embed(t)) holds by construction and Euclidean search
// over the embeddings remains meaningful.
//
// Because there is no training loop at all, a GeoPTH index is ready the
// moment the prototypes are chosen — the instant-index property that
// makes it the natural encoder for streaming scenarios (ROADMAP).
// GeoPTH deliberately does not implement Trainable.
type GeoPTH struct {
	// Cfg records the configuration the hasher was built with; only
	// HashBits, MaxLen, TripletCellSize, and Seed are consulted.
	Cfg Config

	protoA []geo.Trajectory // first prototype of each pair, resampled
	protoB []geo.Trajectory // second prototype of each pair, resampled
	scale  float64          // 1 / mean prototype gap, normalizing Embed
}

// geopthDist is the exact trajectory distance the hasher measures
// proximity with. Hausdorff is the cheapest of the paper's measures and
// is symmetric, which is all the bisector construction needs.
const geopthDist = dist.HausdorffDist

// NewGeoPTH builds the prototype hasher on a study space: Config.HashBits
// prototype pairs are drawn — deterministically from Config.Seed — with a
// region-spread heuristic (round-robin over the coarse grid cells of
// Config.TripletCellSize that the trajectories start in) so the pairs cut
// the space along diverse directions. Prototypes are resampled to
// Config.MaxLen points to bound the per-bit distance cost.
func NewGeoPTH(cfg Config, space []geo.Trajectory) (*GeoPTH, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	candidates := prototypeOrder(cfg, space)
	if len(candidates) < 2 {
		return nil, fmt.Errorf("core: geopth needs at least 2 non-empty trajectories to pick prototypes from, got %d", len(candidates))
	}
	g := &GeoPTH{Cfg: cfg}
	bits := cfg.HashBits
	g.protoA = make([]geo.Trajectory, bits)
	g.protoB = make([]geo.Trajectory, bits)
	var gapSum float64
	for i := 0; i < bits; i++ {
		a := candidates[(2*i)%len(candidates)]
		b := candidates[(2*i+1)%len(candidates)]
		if &a[0] == &b[0] { // wrapped onto the same trajectory
			b = candidates[(2*i+2)%len(candidates)]
		}
		g.protoA[i] = boundLen(a, cfg.MaxLen)
		g.protoB[i] = boundLen(b, cfg.MaxLen)
		gapSum += dist.Distance(geopthDist, g.protoA[i], g.protoB[i])
	}
	mean := gapSum / float64(bits)
	if mean > 0 {
		g.scale = 1 / mean
	} else {
		g.scale = 1
	}
	return g, nil
}

// prototypeOrder produces the deterministic, diversity-first candidate
// ordering: trajectories are bucketed by the coarse grid cell of their
// first point, buckets are shuffled from Config.Seed, and candidates are
// taken round-robin across buckets so consecutive picks come from
// different regions of the study space.
func prototypeOrder(cfg Config, space []geo.Trajectory) []geo.Trajectory {
	nonEmpty := make([]geo.Trajectory, 0, len(space))
	for _, t := range space {
		if len(t) > 0 {
			nonEmpty = append(nonEmpty, t)
		}
	}
	if len(nonEmpty) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cg, err := grid.FromTrajectories(nonEmpty, cfg.TripletCellSize)
	if err != nil {
		// Degenerate spaces fall back to a plain shuffle.
		out := append([]geo.Trajectory(nil), nonEmpty...)
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	buckets := map[int][]geo.Trajectory{}
	for _, t := range nonEmpty {
		id := cg.ID(t[0])
		buckets[id] = append(buckets[id], t)
	}
	ids := make([]int, 0, len(buckets))
	for id := range buckets {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for _, id := range ids {
		rng.Shuffle(len(buckets[id]), func(i, j int) {
			buckets[id][i], buckets[id][j] = buckets[id][j], buckets[id][i]
		})
	}
	out := make([]geo.Trajectory, 0, len(nonEmpty))
	for round := 0; len(out) < len(nonEmpty); round++ {
		for _, id := range ids {
			if round < len(buckets[id]) {
				out = append(out, buckets[id][round])
			}
		}
	}
	return out
}

// boundLen resamples a trajectory to at most maxLen points.
func boundLen(t geo.Trajectory, maxLen int) geo.Trajectory {
	if len(t) > maxLen {
		return t.Resample(maxLen)
	}
	return t
}

// Kind returns the encoder registry name.
func (g *GeoPTH) Kind() string { return GeoPTHKind }

// Dim returns the embedding width (= Config.HashBits, one prototype pair
// per bit).
func (g *GeoPTH) Dim() int { return g.Cfg.HashBits }

// Embed returns the normalized signed prototype gaps of t: coordinate i
// is (d(t, B_i) − d(t, A_i)) · scale, positive when t lies closer to A_i.
func (g *GeoPTH) Embed(t geo.Trajectory) []float64 {
	tb := boundLen(t, g.Cfg.MaxLen)
	out := make([]float64, len(g.protoA))
	for i := range g.protoA {
		da := dist.Distance(geopthDist, tb, g.protoA[i])
		db := dist.Distance(geopthDist, tb, g.protoB[i])
		out[i] = (db - da) * g.scale
	}
	return out
}

// EmbedAll embeds a batch sequentially.
func (g *GeoPTH) EmbedAll(ts []geo.Trajectory) [][]float64 { return embedAll(g, ts) }

// EmbedAllParallel embeds a batch across worker goroutines; the hasher is
// immutable after construction, so concurrent Embeds are always safe.
func (g *GeoPTH) EmbedAllParallel(ts []geo.Trajectory, workers int) [][]float64 {
	return embedAllParallel(g, ts, workers)
}

// Code returns the Hamming-space code sign(Embed(t)).
func (g *GeoPTH) Code(t geo.Trajectory) hamming.Code { return hamming.FromSigns(g.Embed(t)) }

// CodeAll hashes a batch of trajectories.
func (g *GeoPTH) CodeAll(ts []geo.Trajectory) []hamming.Code { return codeAll(g, ts) }

// geopthBlob is the gob wire format of a built hasher.
type geopthBlob struct {
	Cfg    Config
	ProtoA []geo.Trajectory
	ProtoB []geo.Trajectory
	Scale  float64
}

// Save writes the hasher (prototypes and normalization) to w.
func (g *GeoPTH) Save(w io.Writer) error {
	blob := geopthBlob{Cfg: g.Cfg, ProtoA: g.protoA, ProtoB: g.protoB, Scale: g.scale}
	if err := gob.NewEncoder(w).Encode(blob); err != nil {
		return fmt.Errorf("core: geopth save: %w", err)
	}
	return nil
}

// loadGeoPTH reads a hasher written by Save.
func loadGeoPTH(r io.Reader) (*GeoPTH, error) {
	var blob geopthBlob
	if err := gob.NewDecoder(r).Decode(&blob); err != nil {
		return nil, fmt.Errorf("core: geopth load: %w", err)
	}
	if len(blob.ProtoA) != blob.Cfg.HashBits || len(blob.ProtoB) != blob.Cfg.HashBits {
		return nil, fmt.Errorf("core: geopth load: %d/%d prototypes for %d bits",
			len(blob.ProtoA), len(blob.ProtoB), blob.Cfg.HashBits)
	}
	return &GeoPTH{Cfg: blob.Cfg, protoA: blob.ProtoA, protoB: blob.ProtoB, scale: blob.Scale}, nil
}
