package core

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// validCheckpoint trains the tiny fixture for one checkpointed epoch and
// returns the emitted snapshot — the cheapest way to obtain a Checkpoint
// whose shapes, params, and optimizer state are all mutually consistent.
func validCheckpoint(t *testing.T) *Checkpoint {
	t.Helper()
	cfg, space, td := trainFixture(t)
	m, err := New(cfg, space)
	if err != nil {
		t.Fatal(err)
	}
	var last *Checkpoint
	td.CheckpointEvery = 1
	td.OnCheckpoint = func(c *Checkpoint) error { last = c; return nil }
	if _, err := m.Train(td); err != nil {
		t.Fatal(err)
	}
	if last == nil {
		t.Fatal("no checkpoint emitted")
	}
	return last
}

// listNames returns the base names of every entry in dir.
func listNames(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	return names
}

// TestSaveCheckpointFileErrorLeavesDestinationIntact is the durability
// regression test: when Checkpoint.Save fails mid-write, the error must
// propagate, the previously published checkpoint at path must survive
// byte-for-byte, and no orphaned temp file may remain — the guarantee a
// crash-resumable trainer depends on. Write/failure outcomes must land on
// the obs.Default counters.
func TestSaveCheckpointFileErrorLeavesDestinationIntact(t *testing.T) {
	good := validCheckpoint(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")

	writesBefore := checkpointWrites.Value()
	failsBefore := checkpointWriteFailers.Value()

	// Publish a good checkpoint first; capture the exact bytes on disk.
	if err := SaveCheckpointFile(path, good); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := checkpointWrites.Value() - writesBefore; got != 1 {
		t.Fatalf("core.checkpoint.writes delta = %d, want 1", got)
	}

	// A corrupted checkpoint whose parameter groups no longer match its
	// shape table makes Save fail after the meta header is already on the
	// wire — a genuinely torn stream if it ever reached path.
	bad := *good
	bad.Params = bad.Params[:len(bad.Params)-1]
	saveErr := SaveCheckpointFile(path, &bad)
	if saveErr == nil {
		t.Fatal("SaveCheckpointFile accepted a checkpoint whose Save must fail")
	}
	if !strings.Contains(saveErr.Error(), "tensors") {
		t.Fatalf("unexpected error: %v", saveErr)
	}
	if got := checkpointWriteFailers.Value() - failsBefore; got != 1 {
		t.Fatalf("core.checkpoint.write_failures delta = %d, want 1", got)
	}

	// The failed write must not have touched the published file...
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, after) {
		t.Fatal("failed save modified the previously published checkpoint")
	}
	// ...and must not leak its temp file.
	if names := listNames(t, dir); len(names) != 1 || names[0] != "run.ckpt" {
		t.Fatalf("directory holds %v, want only run.ckpt", names)
	}

	// The survivor still loads to the original snapshot.
	got, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(good, got) {
		t.Fatal("surviving checkpoint no longer round-trips")
	}
}

// TestSaveCheckpointFileNeverPartiallyWritten covers the fresh-path case:
// a failed first save must leave NO file at the destination at all (an
// empty or truncated file would later be mistaken for a checkpoint and
// fail resume loudly at the wrong time).
func TestSaveCheckpointFileNeverPartiallyWritten(t *testing.T) {
	good := validCheckpoint(t)
	bad := *good
	bad.AdamM = nil // group length 0 != len(Shapes)
	dir := t.TempDir()
	path := filepath.Join(dir, "fresh.ckpt")
	if err := SaveCheckpointFile(path, &bad); err == nil {
		t.Fatal("want an error from a malformed checkpoint")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("destination exists after a failed first save (stat err %v)", err)
	}
	if names := listNames(t, dir); len(names) != 0 {
		t.Fatalf("directory holds %v, want empty", names)
	}
}

// TestSyncDirToleratesUnsupported: syncDir must succeed on a real
// directory and report a hard error for a nonexistent one.
func TestSyncDirToleratesUnsupported(t *testing.T) {
	if err := syncDir(t.TempDir()); err != nil {
		t.Fatalf("syncDir on a real tmpdir: %v", err)
	}
	if err := syncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("syncDir on a missing directory should fail")
	}
}
