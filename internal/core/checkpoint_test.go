package core

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"traj2hash/internal/dist"
	"traj2hash/internal/faultinject"
	"traj2hash/internal/geo"
)

// trainFixture builds a deterministic tiny training setup; every test in
// this file that needs to compare runs bitwise uses the same seeds.
func trainFixture(t *testing.T) (Config, []geo.Trajectory, TrainData) {
	t.Helper()
	cfg := tinyConfig()
	seeds := genTrajs(24, 101)
	val := genTrajs(16, 102)
	corpus := genTrajs(60, 103)
	space := append(append(append([]geo.Trajectory{}, seeds...), val...), corpus...)
	td := TrainData{Seeds: seeds, Validation: val, Corpus: corpus, F: dist.FrechetDist}
	return cfg, space, td
}

// paramBits flattens a model's parameters into their IEEE-754 bit
// patterns, the representation under which "bitwise identical" is tested.
func paramBits(m *Model) []uint64 {
	var out []uint64
	for _, p := range m.Params() {
		for _, v := range p.Data {
			out = append(out, math.Float64bits(v))
		}
	}
	return out
}

func TestCheckpointSaveLoadRoundTrip(t *testing.T) {
	cfg, space, td := trainFixture(t)
	m, err := New(cfg, space)
	if err != nil {
		t.Fatal(err)
	}
	var last *Checkpoint
	td.CheckpointEvery = 2
	td.OnCheckpoint = func(c *Checkpoint) error { last = c; return nil }
	if _, err := m.Train(td); err != nil {
		t.Fatal(err)
	}
	if last == nil {
		t.Fatal("no checkpoint emitted")
	}
	var buf bytes.Buffer
	if err := last.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(last, got) {
		t.Error("checkpoint did not survive a Save/Load round trip")
	}
}

func TestCheckpointFileAtomicAndVersioned(t *testing.T) {
	cfg, space, td := trainFixture(t)
	m, err := New(cfg, space)
	if err != nil {
		t.Fatal(err)
	}
	var last *Checkpoint
	td.CheckpointEvery = 1
	td.OnCheckpoint = func(c *Checkpoint) error { last = c; return nil }
	if _, err := m.Train(td); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := SaveCheckpointFile(path, last); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(last, got) {
		t.Error("file round trip lost data")
	}

	// A future version must be rejected, not mis-decoded.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(checkpointMeta{Version: CheckpointVersion + 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(&buf); err == nil {
		t.Error("unknown checkpoint version accepted")
	}
}

// TestResumeBitwiseIdentical is acceptance scenario (c): a run
// interrupted at an epoch boundary and resumed from its checkpoint must
// finish with exactly the parameters and history of an uninterrupted run.
func TestResumeBitwiseIdentical(t *testing.T) {
	cfg, space, td := trainFixture(t)

	// Uninterrupted reference run, capturing the epoch-2 checkpoint.
	m1, err := New(cfg, space)
	if err != nil {
		t.Fatal(err)
	}
	var atTwo *Checkpoint
	tdA := td
	tdA.CheckpointEvery = 2
	tdA.OnCheckpoint = func(c *Checkpoint) error {
		if c.Epoch == 2 {
			atTwo = c
		}
		return nil
	}
	h1, err := m1.Train(tdA)
	if err != nil {
		t.Fatal(err)
	}
	if atTwo == nil {
		t.Fatal("no epoch-2 checkpoint captured")
	}

	// Resumed run: a fresh model (same config and study space, as a real
	// restart would construct) continuing from the checkpoint.
	m2, err := New(cfg, space)
	if err != nil {
		t.Fatal(err)
	}
	tdB := td
	tdB.Resume = atTwo
	h2, err := m2.Train(tdB)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(paramBits(m1), paramBits(m2)) {
		t.Error("resumed run's final parameters are not bitwise identical to the uninterrupted run")
	}
	if !reflect.DeepEqual(h1.EpochLoss, h2.EpochLoss) {
		t.Errorf("epoch losses diverged:\nfull   %v\nresume %v", h1.EpochLoss, h2.EpochLoss)
	}
	if !reflect.DeepEqual(h1.ValHR10, h2.ValHR10) {
		t.Errorf("validation history diverged:\nfull   %v\nresume %v", h1.ValHR10, h2.ValHR10)
	}
	if h1.BestEpoch != h2.BestEpoch {
		t.Errorf("best epoch %d vs %d", h1.BestEpoch, h2.BestEpoch)
	}
}

func TestResumeRejectsArchitectureMismatch(t *testing.T) {
	cfg, space, td := trainFixture(t)
	m, err := New(cfg, space)
	if err != nil {
		t.Fatal(err)
	}
	var last *Checkpoint
	td.CheckpointEvery = 1
	td.OnCheckpoint = func(c *Checkpoint) error { last = c; return nil }
	if _, err := m.Train(td); err != nil {
		t.Fatal(err)
	}

	other := cfg
	other.HashBits = 32 // different architecture
	m2, err := New(other, space)
	if err != nil {
		t.Fatal(err)
	}
	td2 := td
	td2.Resume = last
	if _, err := m2.Train(td2); err == nil {
		t.Error("checkpoint from a different architecture accepted")
	}
}

// TestDivergenceRollbackReplays poisons the parameters at the start of
// epoch 2; the guard must roll back to the epoch-2 boundary, replay it
// cleanly at half the learning rate, and finish with a finite history.
func TestDivergenceRollbackReplays(t *testing.T) {
	cfg, space, td := trainFixture(t)
	m, err := New(cfg, space)
	if err != nil {
		t.Fatal(err)
	}
	p := faultinject.NewGradPoisoner(faultinject.Site{Epoch: 2, Step: 0})
	td.StepHook = func(epoch, step int) { p.MaybePoison(epoch, step, m.Params()) }
	h, err := m.Train(td)
	if err != nil {
		t.Fatal(err)
	}
	if p.Fired() != 1 {
		t.Fatalf("poisoner fired %d times, want 1", p.Fired())
	}
	if !reflect.DeepEqual(h.Diverged, []int{2}) {
		t.Errorf("Diverged = %v, want [2]", h.Diverged)
	}
	if len(h.EpochLoss) != cfg.Epochs {
		t.Fatalf("history has %d epochs, want %d", len(h.EpochLoss), cfg.Epochs)
	}
	for e, l := range h.EpochLoss {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Errorf("epoch %d loss %v leaked into the history", e, l)
		}
	}
	for e, hr := range h.ValHR10 {
		if math.IsNaN(hr) {
			t.Errorf("epoch %d HR@10 is NaN despite the guard", e)
		}
	}
	if m.paramsNonFinite() {
		t.Error("final parameters are non-finite")
	}
}

// TestErrDivergedWithoutCheckpoint: poisoning the very first epoch leaves
// nothing to roll back to — training must fail with ErrDiverged instead
// of emitting NaN metrics.
func TestErrDivergedWithoutCheckpoint(t *testing.T) {
	cfg, space, td := trainFixture(t)
	m, err := New(cfg, space)
	if err != nil {
		t.Fatal(err)
	}
	p := faultinject.NewGradPoisoner(faultinject.Site{Epoch: 0, Step: 0})
	td.StepHook = func(epoch, step int) { p.MaybePoison(epoch, step, m.Params()) }
	h, err := m.Train(td)
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("err = %v, want ErrDiverged", err)
	}
	if h == nil || !reflect.DeepEqual(h.Diverged, []int{0}) {
		t.Errorf("history should flag epoch 0 as diverged, got %+v", h)
	}
}

// TestRollbackBudgetExhausted: a site that re-poisons every replay must
// exhaust MaxRollbacks and surface ErrDiverged.
func TestRollbackBudgetExhausted(t *testing.T) {
	cfg, space, td := trainFixture(t)
	m, err := New(cfg, space)
	if err != nil {
		t.Fatal(err)
	}
	site := faultinject.Site{Epoch: 2, Step: 0}
	p := faultinject.NewGradPoisoner(site, site, site, site)
	td.StepHook = func(epoch, step int) { p.MaybePoison(epoch, step, m.Params()) }
	td.MaxRollbacks = 3
	_, err = m.Train(td)
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("err = %v, want ErrDiverged after exhausting rollbacks", err)
	}
	if p.Fired() != 4 {
		t.Errorf("poisoner fired %d times, want 4 (original + 3 replays)", p.Fired())
	}
}

// TestCancelMidTrainingFlushesCheckpoint: canceling the context mid-epoch
// surfaces the cancellation and flushes the last completed-epoch
// checkpoint, so an interrupt costs at most one epoch.
func TestCancelMidTrainingFlushesCheckpoint(t *testing.T) {
	cfg, space, td := trainFixture(t)
	m, err := New(cfg, space)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var flushed *Checkpoint
	td.OnCheckpoint = func(c *Checkpoint) error { flushed = c; return nil }
	td.StepHook = func(epoch, step int) {
		if epoch == 2 && step == 0 {
			cancel()
		}
	}
	_, err = m.TrainCtx(ctx, td)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want a wrapped context.Canceled", err)
	}
	if flushed == nil {
		t.Fatal("no checkpoint flushed on cancellation")
	}
	if flushed.Epoch != 2 {
		t.Errorf("flushed checkpoint at epoch %d, want 2 (the last completed boundary)", flushed.Epoch)
	}

	// The flushed checkpoint must actually resume.
	m2, err := New(cfg, space)
	if err != nil {
		t.Fatal(err)
	}
	td2 := td
	td2.OnCheckpoint = nil
	td2.StepHook = nil
	td2.Resume = flushed
	if _, err := m2.Train(td2); err != nil {
		t.Fatalf("resume from the interrupt checkpoint failed: %v", err)
	}
}
