package core

import (
	"fmt"
	"os"
	"sort"
	"testing"
)

// TestMain guards the package directory against test residue. An earlier
// comparison harness once left a stray tmpcmp/ directory behind in this
// package; every test now writes exclusively under t.TempDir(), and this
// guard keeps it that way: it snapshots the package directory entries
// before the run and fails loudly if any file or directory appears (or
// disappears) after `go test ./internal/core`.
func TestMain(m *testing.M) {
	before, err := dirEntries(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "residue guard: %v\n", err)
		os.Exit(2)
	}
	code := m.Run()
	after, err := dirEntries(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "residue guard: %v\n", err)
		os.Exit(2)
	}
	if diff := entryDiff(before, after); diff != "" {
		fmt.Fprintf(os.Stderr, "residue guard: package directory changed during tests:\n%s", diff)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// dirEntries returns the sorted names of dir's entries, with directories
// suffixed "/" so a file↔directory swap also shows up.
func dirEntries(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() {
			name += "/"
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// entryDiff renders the additions and removals between two sorted entry
// lists, one "+name" or "-name" per line; empty means identical.
func entryDiff(before, after []string) string {
	in := func(set []string, name string) bool {
		i := sort.SearchStrings(set, name)
		return i < len(set) && set[i] == name
	}
	var out string
	for _, name := range after {
		if !in(before, name) {
			out += "  +" + name + "\n"
		}
	}
	for _, name := range before {
		if !in(after, name) {
			out += "  -" + name + "\n"
		}
	}
	return out
}
