// Package core implements Traj2Hash (Section IV): a two-channel trajectory
// encoder — a light-weight grid representation encoder and an
// attention-based GPS encoder with a lower-bound-induced read-out — a
// reverse-augmentation hash layer, and the combined WMSE + ranking-based
// hashing training objective with fast triplet generation.
package core

import (
	"fmt"
)

// Readout selects the read-out layer of the attention encoder
// (Section IV-D and the Figure 4 study).
type Readout int

const (
	// LowerBound uses the first point's embedding (Equation 13), exploiting
	// the Lemma 1 lower bound of DTW and the Fréchet distance.
	LowerBound Readout = iota
	// Mean uses mean pooling over all positions (the TrajGAT-style read-out).
	Mean
	// CLS prepends a learned token and reads its embedding (BERT-style).
	CLS
)

// String names the read-out for reports.
func (r Readout) String() string {
	switch r {
	case LowerBound:
		return "LowerBound"
	case Mean:
		return "Mean"
	case CLS:
		return "CLS"
	default:
		return fmt.Sprintf("Readout(%d)", int(r))
	}
}

// GridRep selects how grid-cell embeddings are produced (the Figure 7
// grid-representation study).
type GridRep int

const (
	// DecomposedNCE is the paper's light-weight decomposed representation
	// with NCE pre-training (Section IV-C).
	DecomposedNCE GridRep = iota
	// Node2VecRep learns one independent embedding per cell with node2vec
	// over the grid adjacency graph — the Figure 7 comparator.
	Node2VecRep
)

// String names the representation for reports.
func (g GridRep) String() string {
	switch g {
	case DecomposedNCE:
		return "Decomposed"
	case Node2VecRep:
		return "Node2vec"
	default:
		return fmt.Sprintf("GridRep(%d)", int(g))
	}
}

// Config collects the model and training hyper-parameters
// (paper defaults: Section V-A5).
type Config struct {
	// Architecture.
	Dim      int // latent dimension d (paper: 64)
	HashBits int // code length d_h (paper: 64); must be even
	Blocks   int // attention blocks m (paper: 2)
	Heads    int // attention heads (paper: 4)
	MaxLen   int // trajectories longer than this are resampled for encoding

	// Channels and properties (the Table III ablation switches).
	UseGrids    bool    // light-weight grid representation channel
	UseRevAug   bool    // reverse augmentation (Lemma 3)
	UseTriplets bool    // fast triplet generation + L_t
	Readout     Readout // read-out layer variant

	// Grid channels.
	GridCellSize    float64 // fine grid for the encoder (paper: 50 m)
	TripletCellSize float64 // coarse grid for triplet clustering (paper: 500 m)
	GridPreEpochs   int     // NCE pre-training epochs
	GridRep         GridRep // grid embedding representation (Figure 7)

	// Objective.
	Alpha float64 // ranking margin α (paper: 5)
	Gamma float64 // balance weight γ (paper: 6)
	Theta float64 // similarity smoothing θ; 0 = auto (1/mean distance)
	M     int     // samples per anchor in WMSE (paper: 10); must be even

	// Optimization.
	Epochs       int     // maximum training epochs (paper: 100)
	BatchSize    int     // WMSE anchors per batch (paper: 20)
	TripletBatch int     // triplets per batch (paper: 500)
	NumTriplets  int     // triplets to generate from the corpus
	LR           float64 // Adam learning rate (paper: 1e-3)
	BetaStart    float64 // tanh(β·) relaxation start (HashNet: 1)
	BetaGrowth   float64 // multiplicative β growth per epoch
	ClipNorm     float64 // gradient clipping threshold (0 disables)
	Seed         int64
}

// DefaultConfig returns the paper's hyper-parameters at a dimension
// suitable for CPU training. Pass dim=64 for the paper's exact setting.
func DefaultConfig(dim int) Config {
	return Config{
		Dim:             dim,
		HashBits:        dim,
		Blocks:          2,
		Heads:           4,
		MaxLen:          24,
		UseGrids:        true,
		UseRevAug:       true,
		UseTriplets:     true,
		Readout:         LowerBound,
		GridCellSize:    50,
		TripletCellSize: 500,
		GridPreEpochs:   3,
		Alpha:           5,
		Gamma:           6,
		Theta:           0,
		M:               10,
		Epochs:          20,
		BatchSize:       20,
		TripletBatch:    64,
		NumTriplets:     2000,
		LR:              1e-3,
		BetaStart:       1,
		BetaGrowth:      1.15,
		ClipNorm:        5,
		Seed:            1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Dim <= 0 {
		return fmt.Errorf("core: Dim must be positive, got %d", c.Dim)
	}
	if c.HashBits <= 0 || c.HashBits%2 != 0 {
		return fmt.Errorf("core: HashBits must be positive and even, got %d", c.HashBits)
	}
	if c.Dim%c.Heads != 0 {
		return fmt.Errorf("core: Dim %d not divisible by Heads %d", c.Dim, c.Heads)
	}
	if c.M < 2 || c.M%2 != 0 {
		return fmt.Errorf("core: M must be an even number ≥ 2, got %d", c.M)
	}
	if c.MaxLen < 2 {
		return fmt.Errorf("core: MaxLen must be ≥ 2, got %d", c.MaxLen)
	}
	if c.GridCellSize <= 0 || c.TripletCellSize <= 0 {
		return fmt.Errorf("core: cell sizes must be positive")
	}
	return nil
}
