package serve

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"traj2hash/internal/obs"
)

func TestListenAddrNormalizesToLoopback(t *testing.T) {
	cases := map[string]string{
		":6060":          "127.0.0.1:6060",
		"6060":           "127.0.0.1:6060",
		"127.0.0.1:7070": "127.0.0.1:7070",
		"0.0.0.0:6060":   "0.0.0.0:6060", // explicit host: the operator asked for exposure
	}
	for in, want := range cases {
		if got := ListenAddr(in); got != want {
			t.Errorf("ListenAddr(%q) = %q, want %q", in, got, want)
		}
	}
}

// get fetches a URL with a short deadline and returns body and status.
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	c := &http.Client{Timeout: 2 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestDebugServerServesMetricsTraceAndPprof starts the server on an
// ephemeral loopback port, exercises every endpoint, and verifies that
// canceling the context closes the listener (the goroutine-leak
// contract of StartDebugServer).
func TestDebugServerServesMetricsTraceAndPprof(t *testing.T) {
	reg := obs.New()
	reg.Counter("cli.test.hits").Add(3)
	sp := reg.Tracer().Start("cli.test.span", 0)
	sp.End()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addr, err := StartDebugServer(ctx, "127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(addr, "127.0.0.1:") {
		t.Fatalf("bound %q, want a loopback address", addr)
	}
	base := "http://" + addr

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics is not JSON: %v\n%s", err, body)
	}
	if snap.Counters["cli.test.hits"] != 3 {
		t.Errorf("/metrics counters = %v, want cli.test.hits=3", snap.Counters)
	}

	code, body = get(t, base+"/trace")
	if code != http.StatusOK || !strings.Contains(body, "cli.test.span") {
		t.Errorf("/trace status %d body %q, want the recorded span", code, body)
	}

	if code, _ = get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}
	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "traj2hash.metrics") {
		t.Errorf("/debug/vars status %d, want the published registry", code)
	}

	// Cancellation must close the listener: new connections are refused.
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 100*time.Millisecond)
		if err != nil {
			break // closed — the ctx-bound shutdown ran
		}
		if err := conn.Close(); err != nil {
			t.Logf("closing probe conn: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("debug server still accepting connections after ctx cancel")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
