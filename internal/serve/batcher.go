package serve

import (
	"context"
	"time"

	"traj2hash"
)

// searchReq is one search waiting in the batcher queue. It carries the
// request's deadline as a time.Time rather than its context (a context
// stored in a struct outlives the frame that owns cancellation; see the
// ctxfirst contract) — the batch rebuilds a context from the earliest
// member deadline at flush time.
type searchReq struct {
	traj     traj2hash.Trajectory
	k        int
	deadline time.Time // zero = no deadline
	resp     chan searchResult
}

// searchResult is the batcher's answer to one searchReq.
type searchResult struct {
	results []traj2hash.Result
	status  traj2hash.Status
	batched int // size of the coalesced batch this query rode in
}

// dispatch is the batcher loop: collect a batch from s.in, flush it,
// repeat until quit. It runs in a wg-accounted goroutine started by Run
// and exits when s.quit closes — which Run does only after HTTP
// Shutdown has returned, so a drain never strands an accepted search.
func (s *Server) dispatch() {
	for {
		select {
		case first := <-s.in:
			s.flush(s.collect(first))
		case <-s.quit:
			s.discardQueue()
			return
		}
	}
}

// collect gathers a batch starting from first: it keeps the batch open
// for BatchWindow (or until MaxBatch), coalescing whatever concurrent
// searches arrive in that window. A negative window disables
// coalescing. On quit the partial batch is returned as-is — flush still
// answers its members.
func (s *Server) collect(first *searchReq) []*searchReq {
	batch := []*searchReq{first}
	if s.cfg.BatchWindow < 0 {
		return batch
	}
	timer := time.NewTimer(s.cfg.BatchWindow)
	defer timer.Stop()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case sr := <-s.in:
			batch = append(batch, sr)
		case <-timer.C:
			return batch
		case <-s.quit:
			return batch
		}
	}
	return batch
}

// flush answers a batch. Members are grouped by k (SearchBatchCtx takes
// one k per call) preserving arrival order, and each group runs in its
// own wg-accounted goroutine so a slow flush never blocks the dispatch
// loop from collecting the next batch.
func (s *Server) flush(batch []*searchReq) {
	if len(batch) == 0 {
		return
	}
	groups := make(map[int][]*searchReq)
	var order []int
	for _, sr := range batch {
		if _, ok := groups[sr.k]; !ok {
			order = append(order, sr.k)
		}
		groups[sr.k] = append(groups[sr.k], sr)
	}
	for _, k := range order {
		g := groups[k]
		s.wg.Add(1)
		go func(k int, g []*searchReq) {
			defer s.wg.Done()
			s.flushGroup(k, g)
		}(k, g)
	}
}

// flushGroup runs one coalesced engine invocation. The batch context
// carries the earliest member deadline: the engine's fan-out salvages
// per-shard partial results at that deadline, and members with later
// deadlines still get the batch's (possibly partial) answer rather
// than waiting alone past their neighbor's budget — the price of
// riding a shared batch.
func (s *Server) flushGroup(k int, g []*searchReq) {
	ctx := context.Background()
	var earliest time.Time
	for _, sr := range g {
		if sr.deadline.IsZero() {
			continue
		}
		if earliest.IsZero() || sr.deadline.Before(earliest) {
			earliest = sr.deadline
		}
	}
	if !earliest.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, earliest)
		defer cancel()
	}

	s.met.batches.Inc()
	s.met.batchQueries.Add(int64(len(g)))
	s.met.batchSize.Observe(float64(len(g)))
	var results [][]traj2hash.Result
	var statuses []traj2hash.Status
	if len(g) == 1 {
		// A batch of one takes the single-query path: its shard fan-out
		// runs in parallel and salvages per-shard partial results at the
		// deadline, which the batch path (parallel across queries,
		// sequential across shards) cannot.
		rs, st := s.cfg.Index.SearchCtx(ctx, g[0].traj, k)
		results, statuses = [][]traj2hash.Result{rs}, []traj2hash.Status{st}
	} else {
		qs := make([]traj2hash.Trajectory, len(g))
		for i, sr := range g {
			qs[i] = sr.traj
		}
		results, statuses = s.cfg.Index.SearchBatchCtx(ctx, qs, k)
	}
	for i, sr := range g {
		res := searchResult{batched: len(g)}
		if i < len(results) {
			res.results = results[i]
		}
		if i < len(statuses) {
			res.status = statuses[i]
		}
		sr.resp <- res // buffered(1): never blocks, even if the handler timed out
	}
}

// discardQueue empties whatever is left in s.in after shutdown. Safe to
// drop: Run closes quit only after http.Shutdown returned, so any
// request still queued here belongs to a handler that already gave up
// (DrainTimeout) and answered 504 — it is counted, not silently lost.
func (s *Server) discardQueue() {
	for {
		select {
		case <-s.in:
			s.met.drainDiscarded.Inc()
		default:
			return
		}
	}
}
