package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"traj2hash"
	"traj2hash/internal/faultinject"
	"traj2hash/internal/obs"
)

// serveDataset builds one small deterministic dataset per process.
var (
	dsOnce sync.Once
	dsMemo *traj2hash.Dataset
)

func serveDataset(t *testing.T) *traj2hash.Dataset {
	t.Helper()
	dsOnce.Do(func() {
		dsMemo = traj2hash.BuildDataset(traj2hash.Porto(),
			traj2hash.SplitSpec{Seed: 10, Validation: 6, Corpus: 30, Queries: 6, Database: 40}, 9)
	})
	return dsMemo
}

// testIndex builds a training-free GeoPTH index over the fixture
// dataset's database split with the given options.
func testIndex(t *testing.T, opts traj2hash.Options) (*traj2hash.Index, *traj2hash.Dataset) {
	t.Helper()
	ds := serveDataset(t)
	enc, err := traj2hash.NewEncoder(traj2hash.EncoderGeoPTH, traj2hash.DefaultConfig(16), ds.All())
	if err != nil {
		t.Fatal(err)
	}
	idx, err := traj2hash.NewIndexWith(enc, ds.Database, opts)
	if err != nil {
		t.Fatal(err)
	}
	return idx, ds
}

// startServer runs a Server on an ephemeral loopback port and returns
// its base URL, a cancel that starts the drain, and the channel Run's
// error lands on.
func startServer(t *testing.T, cfg Config) (string, context.CancelFunc, chan error) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- srv.Run(ctx, ln)
		close(errc) // tests may consume the error; cleanup still unblocks
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-errc:
		case <-time.After(10 * time.Second):
			t.Error("server did not drain within 10s")
		}
	})
	return "http://" + ln.Addr().String(), cancel, errc
}

// postJSON POSTs v and decodes the JSON reply into out (skipped when
// out is nil), returning the status code.
func postJSON(t *testing.T, url string, v, out any) int {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding %d reply: %v", url, resp.StatusCode, err)
		}
	}
	return resp.StatusCode
}

// TestServeEndpointRoundTrips drives every endpoint once over a live
// listener: search, the three mutations (including their 404/410 error
// mapping), stats, healthz, and the malformed-input paths.
func TestServeEndpointRoundTrips(t *testing.T) {
	idx, ds := testIndex(t, traj2hash.Options{})
	reg := obs.New()
	base, _, _ := startServer(t, Config{Index: idx, Metrics: reg, DefaultTimeout: 5 * time.Second})

	var sr SearchResponse
	if code := postJSON(t, base+"/search", SearchRequest{Traj: FromTrajectory(ds.Queries[0]), K: 5}, &sr); code != http.StatusOK {
		t.Fatalf("/search status %d", code)
	}
	if !sr.Complete || len(sr.Results) != 5 || sr.Batched < 1 {
		t.Fatalf("search reply %+v, want 5 complete results with Batched >= 1", sr)
	}

	n := idx.Len()
	var mr MutateResponse
	if code := postJSON(t, base+"/add", MutateRequest{Traj: FromTrajectory(ds.Queries[1])}, &mr); code != http.StatusOK {
		t.Fatalf("/add status %d", code)
	}
	if mr.Len != n+1 {
		t.Fatalf("add: len %d, want %d", mr.Len, n+1)
	}
	if code := postJSON(t, base+"/update", MutateRequest{ID: mr.ID, Traj: FromTrajectory(ds.Queries[2])}, nil); code != http.StatusOK {
		t.Fatalf("/update status %d", code)
	}
	if code := postJSON(t, base+"/delete", MutateRequest{ID: mr.ID}, nil); code != http.StatusOK {
		t.Fatalf("/delete status %d", code)
	}
	if code := postJSON(t, base+"/delete", MutateRequest{ID: mr.ID}, nil); code != http.StatusGone {
		t.Errorf("double delete status %d, want 410", code)
	}
	if code := postJSON(t, base+"/delete", MutateRequest{ID: 999999}, nil); code != http.StatusNotFound {
		t.Errorf("delete of unknown id status %d, want 404", code)
	}
	if code := postJSON(t, base+"/search", SearchRequest{}, nil); code != http.StatusBadRequest {
		t.Errorf("empty-trajectory search status %d, want 400", code)
	}
	resp, err := http.Get(base + "/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /search status %d, want 405", resp.StatusCode)
	}

	var st StatsResponse
	resp, err = http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Len != idx.Len() || st.Backend != idx.Backend() || st.Draining {
		t.Errorf("stats %+v, want len %d backend %q not draining", st, idx.Len(), idx.Backend())
	}
	if st.Metrics.Counters["serve.searches"] < 1 {
		t.Errorf("stats metrics %v, want serve.searches >= 1", st.Metrics.Counters)
	}

	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status %d, want 200", resp.StatusCode)
	}
}

// TestServeCoalescesConcurrentSearches is the micro-batching contract:
// concurrent single searches ride one engine invocation. Proven from
// both sides — the server's obs counters (batch.queries > batch.count)
// and the per-response Batched field the client sees.
func TestServeCoalescesConcurrentSearches(t *testing.T) {
	idx, ds := testIndex(t, traj2hash.Options{})
	reg := obs.New()
	base, _, _ := startServer(t, Config{
		Index: idx, Metrics: reg,
		DefaultTimeout: 5 * time.Second,
		BatchWindow:    50 * time.Millisecond, // generous: all 8 must land in one window
	})

	const concurrent = 8
	var wg sync.WaitGroup
	batched := make([]int, concurrent)
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var sr SearchResponse
			if code := postJSON(t, base+"/search", SearchRequest{Traj: FromTrajectory(ds.Queries[i%len(ds.Queries)]), K: 3}, &sr); code != http.StatusOK {
				t.Errorf("search %d status %d", i, code)
				return
			}
			batched[i] = sr.Batched
		}(i)
	}
	wg.Wait()

	queries := reg.Counter("serve.batch.queries").Value()
	batches := reg.Counter("serve.batch.count").Value()
	if queries != concurrent {
		t.Fatalf("serve.batch.queries = %d, want %d", queries, concurrent)
	}
	if batches >= queries {
		t.Errorf("serve.batch.count = %d for %d queries: nothing coalesced", batches, queries)
	}
	max := 0
	for _, b := range batched {
		if b > max {
			max = b
		}
	}
	if max < 2 {
		t.Errorf("max Batched = %d, want > 1 (concurrent searches must share a batch)", max)
	}
}

// TestServeDeadlineReturnsPartial504 wires a slow shard underneath the
// daemon via the faultinject fallback seam: a request whose deadline
// expires mid-fan-out must come back 504 carrying the fast shard's
// partial results, not an empty error.
func TestServeDeadlineReturnsPartial504(t *testing.T) {
	faultinject.Register()
	prev := faultinject.SetDefault(&faultinject.Faults{
		SleepOn: map[int]time.Duration{1: 2 * time.Second}, // shard 1 is slow; shard 0 answers
	})
	t.Cleanup(func() { faultinject.SetDefault(prev) })

	idx, ds := testIndex(t, traj2hash.Options{Backend: faultinject.BackendName, Shards: 2})
	reg := obs.New()
	base, _, _ := startServer(t, Config{Index: idx, Metrics: reg})

	var sr SearchResponse
	start := time.Now()
	code := postJSON(t, base+"/search", SearchRequest{Traj: FromTrajectory(ds.Queries[0]), K: 5, TimeoutMS: 100}, &sr)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("request took %v, want prompt return at the 100ms deadline", elapsed)
	}
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (deadline expired mid-fan-out); reply %+v", code, sr)
	}
	if sr.Complete {
		t.Error("reply marked complete despite an expired deadline")
	}
	if len(sr.Results) == 0 {
		t.Error("504 reply carries no results; want the fast shard's partial answer")
	}
	if sr.ShardsOK != 1 {
		t.Errorf("shards ok = %d, want 1 (only the fast shard answered in time)", sr.ShardsOK)
	}
	if !strings.Contains(sr.Err, "deadline") {
		t.Errorf("reply err %q, want the deadline error", sr.Err)
	}
	if got := reg.Counter("serve.timeouts").Value(); got != 1 {
		t.Errorf("serve.timeouts = %d, want 1", got)
	}
}

// TestServeShedsOnOverload fills the admission semaphore with slow
// searches; everything beyond MaxInFlight must be refused immediately
// with 503 and counted on serve.shed, never queued.
func TestServeShedsOnOverload(t *testing.T) {
	faultinject.Register()
	prev := faultinject.SetDefault(&faultinject.Faults{
		SleepOn: map[int]time.Duration{0: 400 * time.Millisecond},
	})
	t.Cleanup(func() { faultinject.SetDefault(prev) })

	idx, ds := testIndex(t, traj2hash.Options{Backend: faultinject.BackendName, Shards: 1})
	reg := obs.New()
	base, _, _ := startServer(t, Config{
		Index: idx, Metrics: reg,
		MaxInFlight: 2,
		BatchWindow: -1, // no coalescing: each admitted search holds its slot for the full sleep
	})

	const concurrent = 10
	var wg sync.WaitGroup
	codes := make([]int, concurrent)
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = postJSON(t, base+"/search", SearchRequest{Traj: FromTrajectory(ds.Queries[0]), K: 3}, nil)
		}(i)
	}
	wg.Wait()

	ok, shed := 0, 0
	for _, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			shed++
		default:
			t.Errorf("unexpected status %d", c)
		}
	}
	if shed == 0 {
		t.Fatal("no request was shed despite MaxInFlight=2 and 10 concurrent slow searches")
	}
	if ok == 0 {
		t.Fatal("no request succeeded")
	}
	if got := reg.Counter("serve.shed").Value(); got != int64(shed) {
		t.Errorf("serve.shed = %d, but %d clients saw 503", got, shed)
	}
}

// TestServeGracefulDrain is the tentpole's drain contract end to end:
// cancel Run while slow searches are in flight, and every accepted
// request must still complete, the WAL must be fsynced and closed
// (post-drain mutations fail with ErrClosed), nothing may be discarded,
// and a reopened index must recover the served mutations.
func TestServeGracefulDrain(t *testing.T) {
	faultinject.Register()
	prev := faultinject.SetDefault(&faultinject.Faults{
		SleepOn: map[int]time.Duration{0: 300 * time.Millisecond},
	})
	t.Cleanup(func() { faultinject.SetDefault(prev) })

	dir := t.TempDir()
	idx, ds := testIndex(t, traj2hash.Options{Backend: faultinject.BackendName, Shards: 1, WALDir: dir})
	n := idx.Len()
	reg := obs.New()
	base, cancel, errc := startServer(t, Config{Index: idx, Metrics: reg})

	// One durable mutation before the drain; it must survive reopen.
	var mr MutateResponse
	if code := postJSON(t, base+"/add", MutateRequest{Traj: FromTrajectory(ds.Queries[3])}, &mr); code != http.StatusOK {
		t.Fatalf("/add status %d", code)
	}

	const inflight = 4
	var wg sync.WaitGroup
	codes := make([]int, inflight)
	complete := make([]bool, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var sr SearchResponse
			codes[i] = postJSON(t, base+"/search", SearchRequest{Traj: FromTrajectory(ds.Queries[i]), K: 3}, &sr)
			complete[i] = sr.Complete
		}(i)
	}
	time.Sleep(100 * time.Millisecond) // let the searches reach the slow engine
	cancel()                           // SIGTERM: drain starts with 4 searches in flight
	wg.Wait()

	for i, c := range codes {
		if c != http.StatusOK || !complete[i] {
			t.Errorf("in-flight search %d: status %d complete %v, want 200 complete (drain must finish accepted work)", i, c, complete[i])
		}
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Run returned %v after a clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after drain")
	}
	if got := reg.Counter("serve.drain.discarded").Value(); got != 0 {
		t.Errorf("serve.drain.discarded = %d, want 0", got)
	}

	// The listener is closed and the WAL released.
	if _, err := http.Post(base+"/search", "application/json", strings.NewReader("{}")); err == nil {
		t.Error("post-drain request succeeded; want connection refused")
	}
	if _, err := idx.Add(ds.Queries[4]); err != traj2hash.ErrClosed {
		t.Errorf("post-drain Add error %v, want ErrClosed (drain must Close the index)", err)
	}

	// Reopen: the pre-drain add must have been fsynced.
	idx2, _ := testIndex(t, traj2hash.Options{Backend: faultinject.BackendName, Shards: 1, WALDir: dir})
	defer func() {
		if err := idx2.Close(); err != nil {
			t.Error(err)
		}
	}()
	if !idx2.Recovery().Recovered {
		t.Fatal("reopened index recovered nothing")
	}
	if idx2.Len() != n+1 {
		t.Errorf("reopened index has %d trajectories, want %d (seed + the served add)", idx2.Len(), n+1)
	}
}
