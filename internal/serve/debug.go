package serve

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"traj2hash/internal/obs"
)

// ListenAddr normalizes a listen-address flag value to loopback by
// default: ":6060" and "6060" become "127.0.0.1:6060". The serving and
// debug surfaces are operational endpoints, not public APIs — exposing
// them beyond the local host requires spelling out an explicit host,
// which keeps the accidental-exposure failure mode opt-in.
func ListenAddr(addr string) string {
	if !strings.Contains(addr, ":") {
		return "127.0.0.1:" + addr
	}
	if strings.HasPrefix(addr, ":") {
		return "127.0.0.1" + addr
	}
	return addr
}

// publishExpvarOnce guards the process-global expvar registration
// (expvar.Publish panics on duplicate names; tests may start several
// servers in one process).
var publishExpvarOnce sync.Once

// MountDebug registers the operational debug surface on mux over reg:
//
//	/metrics       the registry's JSON snapshot (counters, gauges, histograms)
//	/trace         the span ring buffer, oldest first
//	/debug/pprof/  the standard pprof handlers (profile, heap, trace, ...)
//	/debug/vars    expvar, including the registry under "traj2hash.metrics"
//
// It is the one implementation behind both the CLI's -debug-addr server
// and the traj2hashd daemon's debug endpoints. The expvar registration
// is process-global and first-registry-wins; everything else is local to
// mux.
func MountDebug(mux *http.ServeMux, reg *obs.Registry) {
	publishExpvarOnce.Do(func() {
		expvar.Publish("traj2hash.metrics", reg.Expvar())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			return // client went away mid-write; nothing useful to do
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.Tracer().WriteJSON(w); err != nil {
			return
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// StartDebugServer binds a localhost-by-default HTTP listener serving
// the MountDebug surface over the given registry — the standalone form
// behind the CLI's -debug-addr flag (the daemon mounts the same surface
// on its serving mux instead).
//
// The server's lifetime is bound to ctx: when the command context is
// canceled (Ctrl-C) the listener closes and both goroutines exit. The
// bound address is returned so callers can log it.
func StartDebugServer(ctx context.Context, addr string, reg *obs.Registry) (string, error) {
	ln, err := net.Listen("tcp", ListenAddr(addr))
	if err != nil {
		return "", fmt.Errorf("debug server: %w", err)
	}
	mux := http.NewServeMux()
	MountDebug(mux, reg)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		// Lifetime bound to the command context: cancellation closes the
		// server, which unblocks the Serve goroutine below.
		<-ctx.Done()
		//lint:ignore errcheck shutdown on a canceled context is best-effort; the process is exiting
		srv.Close()
	}()
	go func() {
		err := srv.Serve(ln)
		// Serve always returns non-nil; ErrServerClosed (and any error
		// after ctx was canceled) is the orderly ctx-bound shutdown.
		if err != nil && !errors.Is(err, http.ErrServerClosed) && ctx.Err() == nil {
			fmt.Fprintln(os.Stderr, "traj2hash: debug server:", err)
		}
	}()
	return ln.Addr().String(), nil
}

// WriteStats writes a human-oriented summary of the registry to w:
// counters and gauges by name, histograms as count/mean. It is the
// -stats epilogue of the CLI's train and search subcommands.
func WriteStats(w io.Writer, reg *obs.Registry) {
	s := reg.Snapshot()
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintln(w, "-- stats --")
	for _, n := range names {
		fmt.Fprintf(w, "%-40s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "%-40s %g\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		mean := 0.0
		if h.Count > 0 {
			mean = h.Sum / float64(h.Count)
		}
		fmt.Fprintf(w, "%-40s n=%d mean=%g\n", n, h.Count, mean)
	}
}
