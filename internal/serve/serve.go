// Package serve is the network serving layer of traj2hash: the HTTP
// daemon core behind cmd/traj2hashd (search/add/delete/update/stats over
// a durable Index) and the shared debug-surface machinery behind the
// CLI's -debug-addr flag (debug.go).
//
// Three serving-discipline mechanisms live here (DESIGN.md "Serving
// layer"):
//
//   - Micro-batching. Concurrent single searches are coalesced by a
//     small wait-window batcher (batcher.go) into one SearchBatchCtx
//     call, amortizing embedding and shard fan-out across the batch.
//   - Admission control. A semaphore bounds admitted requests; beyond it
//     the server sheds immediately with 503 and a Status-style degraded
//     JSON body instead of queueing without bound.
//   - Graceful drain. When Run's context is canceled (SIGTERM) the
//     listener stops accepting, every in-flight request completes, the
//     batcher stops, and the Index is Closed — fsyncing the WAL — before
//     Run returns. An accepted request is never dropped.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"traj2hash"
	"traj2hash/internal/obs"
)

// Index is the surface the daemon serves — satisfied by
// *traj2hash.Index. An interface so tests can wedge fakes between the
// HTTP layer and the engine.
type Index interface {
	SearchCtx(ctx context.Context, q traj2hash.Trajectory, k int) ([]traj2hash.Result, traj2hash.Status)
	SearchBatchCtx(ctx context.Context, qs []traj2hash.Trajectory, k int) ([][]traj2hash.Result, []traj2hash.Status)
	AddCtx(ctx context.Context, t traj2hash.Trajectory) (int, error)
	Delete(id int) error
	Update(id int, t traj2hash.Trajectory) error
	Len() int
	Backend() string
	Close() error
}

// Config configures a Server. Index is required; every other field has
// a serviceable default.
type Config struct {
	// Index is the trajectory index requests are served from. Run closes
	// it during drain.
	Index Index
	// Metrics receives the serving-layer instruments (serve.* names) and
	// is the payload of the mounted debug /metrics endpoint. nil = off.
	Metrics *obs.Registry
	// DefaultTimeout is the per-request deadline applied when the client
	// sends no timeout_ms of its own (0 = no default deadline).
	DefaultTimeout time.Duration
	// DefaultK is the result count when a search omits k (default 10).
	DefaultK int
	// BatchWindow is how long the batcher holds an open batch waiting
	// for more searches to coalesce (default 2ms; negative disables
	// coalescing — every search becomes a batch of one).
	BatchWindow time.Duration
	// MaxBatch caps the coalesced batch size (default 64).
	MaxBatch int
	// MaxInFlight bounds admitted requests; beyond it the server sheds
	// with 503 (default 256).
	MaxInFlight int
	// DrainTimeout bounds how long drain waits for in-flight requests
	// before abandoning them (default 30s).
	DrainTimeout time.Duration
	// Debug mounts the MountDebug surface (/metrics, /trace, pprof) on
	// the serving mux.
	Debug bool
}

// serveMetrics is the serving layer's instrument set, resolved once at
// construction (nil-safe: a nil registry hands out no-op instruments).
type serveMetrics struct {
	searches       *obs.Counter   // serve.searches — search requests admitted
	mutations      *obs.Counter   // serve.mutations — add/delete/update requests admitted
	shed           *obs.Counter   // serve.shed — requests refused 503 by admission control
	timeouts       *obs.Counter   // serve.timeouts — requests answered 504 (deadline hit)
	batches        *obs.Counter   // serve.batch.count — engine invocations made by the batcher
	batchQueries   *obs.Counter   // serve.batch.queries — searches carried by those invocations
	batchSize      *obs.Histogram // serve.batch.size — coalesced batch size distribution
	latency        *obs.Histogram // serve.request.seconds — admitted-search wall latency
	drainDiscarded *obs.Counter   // serve.drain.discarded — queued searches whose handlers timed out before drain
}

func newServeMetrics(reg *obs.Registry) serveMetrics {
	return serveMetrics{
		searches:       reg.Counter("serve.searches"),
		mutations:      reg.Counter("serve.mutations"),
		shed:           reg.Counter("serve.shed"),
		timeouts:       reg.Counter("serve.timeouts"),
		batches:        reg.Counter("serve.batch.count"),
		batchQueries:   reg.Counter("serve.batch.queries"),
		batchSize:      reg.Histogram("serve.batch.size", obs.CountBounds()),
		latency:        reg.Histogram("serve.request.seconds", obs.FineLatencyBounds()),
		drainDiscarded: reg.Counter("serve.drain.discarded"),
	}
}

// Server is the daemon core: an http.Handler plus the batcher and drain
// machinery around it. Build with New, serve with Run.
type Server struct {
	cfg  Config
	mux  *http.ServeMux
	http *http.Server
	met  serveMetrics

	sem      chan struct{}   // admission semaphore, cap MaxInFlight
	in       chan *searchReq // batcher queue, cap MaxInFlight (an admitted send never blocks)
	quit     chan struct{}   // closed after HTTP shutdown: the dispatcher exits
	wg       sync.WaitGroup  // dispatcher + flush goroutines
	draining atomic.Bool
}

// New validates cfg, applies defaults, and builds the server. The
// batcher does not run until Run is called.
func New(cfg Config) (*Server, error) {
	if cfg.Index == nil {
		return nil, errors.New("serve: Config.Index is required")
	}
	if cfg.DefaultK <= 0 {
		cfg.DefaultK = 10
	}
	if cfg.BatchWindow == 0 {
		cfg.BatchWindow = 2 * time.Millisecond
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 256
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	s := &Server{
		cfg:  cfg,
		met:  newServeMetrics(cfg.Metrics),
		sem:  make(chan struct{}, cfg.MaxInFlight),
		in:   make(chan *searchReq, cfg.MaxInFlight),
		quit: make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/add", s.handleAdd)
	mux.HandleFunc("/delete", s.handleDelete)
	mux.HandleFunc("/update", s.handleUpdate)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	if cfg.Debug {
		MountDebug(mux, cfg.Metrics)
	}
	s.mux = mux
	s.http = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	return s, nil
}

// Handler returns the serving mux (for tests that drive the server
// without a listener; production goes through Run).
func (s *Server) Handler() http.Handler { return s.mux }

// Run serves ln until ctx is canceled, then drains and returns: the
// listener stops accepting (new connections are refused), every
// in-flight request runs to completion (bounded by DrainTimeout), the
// batcher stops, and the Index is Closed — which fsyncs and releases
// the WAL. An accepted request is never dropped by drain; requests
// arriving after cancellation are refused at the TCP level, which a
// well-behaved client retries against another replica.
func (s *Server) Run(ctx context.Context, ln net.Listener) error {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.dispatch()
	}()
	srvErr := make(chan error, 1)
	go func() { srvErr <- s.http.Serve(ln) }()

	var serveFailed error
	select {
	case <-ctx.Done():
	case err := <-srvErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			serveFailed = err
		}
	}

	// Drain protocol. Order matters: (1) mark draining so /healthz turns
	// 503 for load balancers; (2) Shutdown stops accepting and waits for
	// every handler to return — the batcher is still running, so queued
	// searches keep completing; (3) only then stop the dispatcher via
	// quit (never by closing s.in: a handler that outlived DrainTimeout
	// could still be sending); (4) wait for flush goroutines; (5) close
	// the index, fsyncing the WAL.
	s.draining.Store(true)
	shutCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	shutErr := s.http.Shutdown(shutCtx)
	close(s.quit)
	s.wg.Wait()
	closeErr := s.cfg.Index.Close()
	return errors.Join(serveFailed, shutErr, closeErr)
}

// ---- request/response JSON shapes (shared with cmd/trajload) ----

// SearchRequest is the POST /search body.
type SearchRequest struct {
	Traj [][2]float64 `json:"traj"`
	// K is the result count (0 = the server's DefaultK).
	K int `json:"k,omitempty"`
	// TimeoutMS is the per-request deadline in milliseconds (0 = the
	// server's DefaultTimeout).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// Result is one search hit in a response.
type Result struct {
	ID    int     `json:"id"`
	Score float64 `json:"score"`
}

// SearchResponse is the POST /search reply — including the degraded
// shapes: 200 with complete=false carries the partial answer of a
// panicked shard; 504 carries whatever shards answered before the
// deadline (possibly nothing) plus the deadline error.
type SearchResponse struct {
	Results      []Result `json:"results"`
	Complete     bool     `json:"complete"`
	ShardsOK     int      `json:"shards_ok"`
	ShardsFailed int      `json:"shards_failed"`
	// Batched is the size of the coalesced batch this query rode in — 1
	// means no coalescing happened.
	Batched int    `json:"batched"`
	Err     string `json:"err,omitempty"`
}

// MutateRequest is the POST /add, /delete, and /update body (Traj is
// ignored by /delete; ID by /add).
type MutateRequest struct {
	ID   int          `json:"id"`
	Traj [][2]float64 `json:"traj,omitempty"`
	// TimeoutMS is the per-request deadline in milliseconds (0 = the
	// server's DefaultTimeout).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// MutateResponse is the mutation reply.
type MutateResponse struct {
	ID  int `json:"id"`
	Len int `json:"len"`
}

// ErrorResponse is the body of every non-2xx reply that is not a
// SearchResponse: Status-style — an explicit error plus the (empty)
// degraded answer shape.
type ErrorResponse struct {
	Error    string   `json:"error"`
	Complete bool     `json:"complete"`
	Results  []Result `json:"results"`
}

// StatsResponse is the GET /stats reply: index shape, drain state, the
// request-latency quantiles (seconds, from serve.request.seconds), and
// the full metrics snapshot.
type StatsResponse struct {
	Len      int          `json:"len"`
	Backend  string       `json:"backend"`
	Draining bool         `json:"draining"`
	P50      float64      `json:"p50_seconds"`
	P99      float64      `json:"p99_seconds"`
	P999     float64      `json:"p999_seconds"`
	Metrics  obs.Snapshot `json:"metrics"`
}

// toTrajectory converts the wire shape to a trajectory.
func toTrajectory(pts [][2]float64) traj2hash.Trajectory {
	if len(pts) == 0 {
		return nil
	}
	t := make(traj2hash.Trajectory, len(pts))
	for i, p := range pts {
		t[i] = traj2hash.Point{X: p[0], Y: p[1]}
	}
	return t
}

// FromTrajectory converts a trajectory to the wire shape — the inverse
// of the decode the handlers do; cmd/trajload builds request bodies
// with it.
func FromTrajectory(t traj2hash.Trajectory) [][2]float64 {
	out := make([][2]float64, len(t))
	for i, p := range t {
		out[i] = [2]float64{p.X, p.Y}
	}
	return out
}

func toResultJSON(rs []traj2hash.Result) []Result {
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = Result{ID: r.ID, Score: r.Score}
	}
	return out
}

// writeJSON marshals v before touching the ResponseWriter so an encode
// failure can still change the status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if _, err := w.Write(b); err != nil {
		return // client went away mid-write; nothing useful to do
	}
}

// ---- handlers ----

// admit tries to take an admission slot; on overload it sheds with 503
// and a Status-style degraded body. The returned release func is nil
// when admission failed.
func (s *Server) admit(w http.ResponseWriter) func() {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }
	default:
		s.met.shed.Inc()
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{
			Error:   "overloaded: admission queue full, request shed",
			Results: []Result{},
		})
		return nil
	}
}

// decodeBody decodes a JSON request body, answering 400 itself on
// malformed input. The bool reports success.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{
			Error:   "POST required",
			Results: []Result{},
		})
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error:   fmt.Sprintf("decoding request: %v", err),
			Results: []Result{},
		})
		return false
	}
	return true
}

// requestCtx derives the request's working context: the client's
// timeout_ms, else the server default, else no deadline.
func (s *Server) requestCtx(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	timeout := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		timeout = time.Duration(timeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		return context.WithTimeout(ctx, timeout)
	}
	return context.WithCancel(ctx)
}

// handleSearch is POST /search: admission, then the batcher coalesces
// this query with its concurrent neighbors into one engine invocation.
// Status mapping: complete answers are 200; shard-panic degradation is
// 200 with complete=false; a deadline hit is 504 carrying whatever
// shards answered in time (the partial answer).
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	traj := toTrajectory(req.Traj)
	if len(traj) == 0 {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "empty trajectory", Results: []Result{}})
		return
	}
	release := s.admit(w)
	if release == nil {
		return
	}
	defer release()
	s.met.searches.Inc()

	k := req.K
	if k <= 0 {
		k = s.cfg.DefaultK
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()

	start := time.Now()
	sr := &searchReq{traj: traj, k: k, resp: make(chan searchResult, 1)}
	if d, ok := ctx.Deadline(); ok {
		sr.deadline = d
	}
	// cap(s.in) == MaxInFlight and we hold an admission slot, so this
	// send cannot block; the ctx arm is belt-and-braces.
	select {
	case s.in <- sr:
	case <-ctx.Done():
		s.met.timeouts.Inc()
		writeJSON(w, http.StatusGatewayTimeout, SearchResponse{
			Results: []Result{}, Err: ctx.Err().Error(),
		})
		return
	}
	select {
	case res := <-sr.resp:
		s.met.latency.Observe(time.Since(start).Seconds())
		s.writeSearchResponse(w, res)
	case <-ctx.Done():
		// The deadline fired while the batch was in flight. The engine
		// honors the same deadline — its fan-out salvages per-shard
		// partial results and returns promptly once it expires — so give
		// the batch a short grace to deliver that partial answer before
		// falling back to an empty 504.
		select {
		case res := <-sr.resp:
			s.met.latency.Observe(time.Since(start).Seconds())
			s.writeSearchResponse(w, res)
		case <-time.After(deadlineGrace):
			s.met.timeouts.Inc()
			s.met.latency.Observe(time.Since(start).Seconds())
			writeJSON(w, http.StatusGatewayTimeout, SearchResponse{
				Results: []Result{}, Err: ctx.Err().Error(),
			})
		}
	}
}

// deadlineGrace is how long an expired search waits for its in-flight
// batch to deliver the engine's salvaged partial answer before giving
// up with an empty 504. The engine returns promptly at the deadline, so
// this only delays requests whose batch is truly wedged.
const deadlineGrace = 250 * time.Millisecond

// writeSearchResponse maps an engine Status onto HTTP: deadline errors
// are 504 (with the partial results the engine salvaged); other
// degradation (shard panics) stays 200 with complete=false.
func (s *Server) writeSearchResponse(w http.ResponseWriter, res searchResult) {
	resp := SearchResponse{
		Results:      toResultJSON(res.results),
		Complete:     res.status.Complete,
		ShardsOK:     res.status.ShardsOK,
		ShardsFailed: res.status.ShardsFailed,
		Batched:      res.batched,
	}
	code := http.StatusOK
	if res.status.Err != nil {
		resp.Err = res.status.Err.Error()
		if errors.Is(res.status.Err, context.DeadlineExceeded) || errors.Is(res.status.Err, context.Canceled) {
			code = http.StatusGatewayTimeout
			s.met.timeouts.Inc()
		}
	}
	writeJSON(w, code, resp)
}

// writeMutateError maps the index's typed mutation errors onto HTTP.
func writeMutateError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, traj2hash.ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, traj2hash.ErrDeleted):
		code = http.StatusGone
	case errors.Is(err, traj2hash.ErrClosed):
		// The WAL is released (drain finished under us): durability can
		// no longer be promised, so the mutation was refused whole.
		code = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		code = http.StatusGatewayTimeout
	}
	writeJSON(w, code, ErrorResponse{Error: err.Error(), Results: []Result{}})
}

// handleAdd is POST /add: {"traj": [[x,y],...]} → {"id": n, "len": m}.
// Mutations bypass the batcher (there is nothing to coalesce — the WAL
// already group-fsyncs) but share the admission semaphore.
func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req MutateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	traj := toTrajectory(req.Traj)
	if len(traj) == 0 {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "empty trajectory", Results: []Result{}})
		return
	}
	release := s.admit(w)
	if release == nil {
		return
	}
	defer release()
	s.met.mutations.Inc()
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	id, err := s.cfg.Index.AddCtx(ctx, traj)
	if err != nil {
		writeMutateError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, MutateResponse{ID: id, Len: s.cfg.Index.Len()})
}

// handleDelete is POST /delete: {"id": n} → {"id": n, "len": m}.
// Unknown ids are 404, already-deleted ids 410.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req MutateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	release := s.admit(w)
	if release == nil {
		return
	}
	defer release()
	s.met.mutations.Inc()
	if err := s.cfg.Index.Delete(req.ID); err != nil {
		writeMutateError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, MutateResponse{ID: req.ID, Len: s.cfg.Index.Len()})
}

// handleUpdate is POST /update: {"id": n, "traj": [[x,y],...]}.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req MutateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	traj := toTrajectory(req.Traj)
	if len(traj) == 0 {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "empty trajectory", Results: []Result{}})
		return
	}
	release := s.admit(w)
	if release == nil {
		return
	}
	defer release()
	s.met.mutations.Inc()
	if err := s.cfg.Index.Update(req.ID, traj); err != nil {
		writeMutateError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, MutateResponse{ID: req.ID, Len: s.cfg.Index.Len()})
}

// handleStats is GET /stats: index shape, drain state, request-latency
// quantiles, and the full metrics snapshot.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.cfg.Metrics.Snapshot()
	lat := snap.Histograms["serve.request.seconds"]
	writeJSON(w, http.StatusOK, StatsResponse{
		Len:      s.cfg.Index.Len(),
		Backend:  s.cfg.Index.Backend(),
		Draining: s.draining.Load(),
		P50:      lat.Quantile(0.50),
		P99:      lat.Quantile(0.99),
		P999:     lat.Quantile(0.999),
		Metrics:  snap,
	})
}

// handleHealthz is the load-balancer probe: 200 while serving, 503 once
// draining (new work should go to another replica).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if _, err := fmt.Fprintln(w, "ok"); err != nil {
		return
	}
}
