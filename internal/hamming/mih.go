package hamming

import (
	"fmt"
	"sort"

	"traj2hash/internal/topk"
)

// MIH is a multi-index hashing table (Norouzi, Punjani, Fleet): the code is
// split into m disjoint substrings, each indexed in its own table. By the
// pigeonhole principle, any code within Hamming distance r of the query
// matches at least one substring within ⌊r/m⌋, so candidate generation
// probes each substring table at a small radius instead of enumerating the
// full code's neighborhood — the classical fix for the paper's footnote-5
// observation that radius expansion over long codes scans mostly empty
// buckets.
//
// This is an extension beyond the paper (which caps lookup at radius 2 and
// falls back to a scan); see the extra benchmarks in bench_test.go.
type MIH struct {
	bits      int
	chunks    int
	chunkBits []int
	tables    []map[uint64][]int
	codes     []Code
}

// NewMIH indexes the codes with the given number of substrings (chunks).
// Chunks must divide into the code length with at most 64 bits each.
func NewMIH(codes []Code, chunks int) (*MIH, error) {
	if len(codes) == 0 {
		return nil, fmt.Errorf("hamming: empty code set")
	}
	bits := codes[0].Bits
	if chunks <= 0 || chunks > bits {
		return nil, fmt.Errorf("hamming: invalid chunk count %d for %d bits", chunks, bits)
	}
	m := &MIH{bits: bits, chunks: chunks, codes: codes}
	base := bits / chunks
	rem := bits % chunks
	for c := 0; c < chunks; c++ {
		w := base
		if c < rem {
			w++
		}
		if w > 64 {
			return nil, fmt.Errorf("hamming: chunk %d would span %d bits (max 64)", c, w)
		}
		m.chunkBits = append(m.chunkBits, w)
		m.tables = append(m.tables, make(map[uint64][]int))
	}
	for id, c := range codes {
		if c.Bits != bits {
			return nil, fmt.Errorf("hamming: code %d has %d bits, want %d", id, c.Bits, bits)
		}
		for ci, sub := range m.substrings(c) {
			m.tables[ci][sub] = append(m.tables[ci][sub], id)
		}
	}
	return m, nil
}

// Add indexes one more code incrementally, returning its id. The code
// length must match the index's. Chunk widths are fixed at construction,
// so insertion is a per-chunk map append.
func (m *MIH) Add(c Code) (int, error) {
	if c.Bits != m.bits {
		return 0, fmt.Errorf("hamming: code has %d bits, MIH has %d", c.Bits, m.bits)
	}
	id := len(m.codes)
	m.codes = append(m.codes, c)
	for ci, sub := range m.substrings(c) {
		m.tables[ci][sub] = append(m.tables[ci][sub], id)
	}
	return id, nil
}

// Update replaces the code stored under id in place: for every chunk the
// id moves from the old substring's bucket to the new one and the scan
// array entry is overwritten, so id assignment and insertion order are
// untouched (the engine's tie-break contract under mutation). The new
// code's length must match the index's.
func (m *MIH) Update(id int, c Code) error {
	if id < 0 || id >= len(m.codes) {
		return fmt.Errorf("hamming: update of unknown id %d (have %d codes)", id, len(m.codes))
	}
	if c.Bits != m.bits {
		return fmt.Errorf("hamming: code has %d bits, MIH has %d", c.Bits, m.bits)
	}
	old := m.codes[id]
	if Equal(old, c) {
		return nil
	}
	oldSubs := m.substrings(old)
	for ci, sub := range m.substrings(c) {
		if sub == oldSubs[ci] {
			continue
		}
		m.removeFromChunk(ci, oldSubs[ci], id)
		m.tables[ci][sub] = append(m.tables[ci][sub], id)
	}
	m.codes[id] = c
	return nil
}

// removeFromChunk deletes id from one chunk table's bucket, dropping the
// bucket when it empties (bucket order is irrelevant: CandidatesInto
// sorts the gathered ids before returning them).
func (m *MIH) removeFromChunk(ci int, sub uint64, id int) {
	ids := m.tables[ci][sub]
	for i, v := range ids {
		if v == id {
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			break
		}
	}
	if len(ids) == 0 {
		delete(m.tables[ci], sub)
		return
	}
	m.tables[ci][sub] = ids
}

// Len returns the number of indexed codes.
func (m *MIH) Len() int { return len(m.codes) }

// Bits returns the code length.
func (m *MIH) Bits() int { return m.bits }

// substrings extracts the chunk values of a code into a fresh slice.
// Hot paths use substringsInto with buffer-owned storage instead.
func (m *MIH) substrings(c Code) []uint64 {
	out := make([]uint64, m.chunks)
	m.substringsInto(c, out)
	return out
}

// substringsInto extracts the chunk values of a code into dst, which
// must hold at least m.chunks elements. Extraction is word-wise — each
// chunk is assembled from at most two shifted words — rather than
// per-bit, so the cost is O(chunks), not O(bits).
func (m *MIH) substringsInto(c Code, dst []uint64) {
	if len(dst) < m.chunks || len(m.chunkBits) < m.chunks {
		panic("hamming: substringsInto destination shorter than chunk count")
	}
	words := c.Words
	bit := 0
	for ci := 0; ci < m.chunks; ci++ {
		w := m.chunkBits[ci]
		lo := bit / 64
		off := uint(bit % 64)
		v := words[lo] >> off
		if off+uint(w) > 64 {
			v |= words[lo+1] << (64 - off)
		}
		if w < 64 {
			v &= (1 << uint(w)) - 1
		}
		dst[ci] = v
		bit += w
	}
}

// CandidateBuffer is the reusable state of MIH candidate generation:
// substring scratch plus the result slice (no per-query map — dedup is
// a sort-and-compact over the gathered ids, see sortedUnique). The zero
// value is ready; storage grows on first use and is recycled afterwards,
// so a buffer held across queries makes CandidatesInto allocation-free
// in the steady state. A CandidateBuffer is not safe for concurrent use,
// and the slice CandidatesInto returns aliases it — consume before the
// next call.
type CandidateBuffer struct {
	subs []uint64
	ids  []int
}

// reset prepares the buffer for one candidate-generation pass over
// chunks substrings. Growth happens here — through append, whose
// amortized reallocation is the buffer's ownership contract — never in
// the per-bucket loops.
func (b *CandidateBuffer) reset(chunks int) {
	for len(b.subs) < chunks {
		b.subs = append(b.subs, 0)
	}
	b.ids = b.ids[:0]
}

// sortedUnique sorts ids ascending and compacts duplicates in place,
// returning the shortened slice. Candidate generation gathers bucket
// contents with duplicates (a code can match the query in several
// chunks) and pays one post-pass here instead of a per-entry dedup
// structure in the probe loop — the ascending sort is required for the
// deterministic output contract anyway, so dedup rides along at the
// same O(c log c).
func sortedUnique(ids []int) []int {
	sort.Ints(ids)
	n := 0
	for i, id := range ids {
		if i == 0 || ids[n-1] != id {
			ids[n] = id
			n++
		}
	}
	return ids[:n]
}

// Candidates returns the ids whose codes match at least one query
// substring within subRadius bit flips. By pigeonhole this is a superset of
// all codes within Hamming distance chunks·(subRadius+1)−1 of the query.
// The result is freshly generated per call; hot callers should hold a
// CandidateBuffer and use CandidatesInto.
func (m *MIH) Candidates(q Code, subRadius int) []int {
	var buf CandidateBuffer
	return m.CandidatesInto(q, subRadius, &buf)
}

// CandidatesInto is Candidates with caller-owned state: the probe loop
// only reads buckets and appends into buf's reused slice (no per-query
// map, no per-entry dedup structure); duplicates are compacted by the
// final sort. The returned slice aliases buf and is valid until the
// next call with the same buffer.
//
//perf:hotpath MIH candidate generation probes every substring bucket per query; it replaced radius expansion precisely for speed, so it must not give the win back in map and slice churn
func (m *MIH) CandidatesInto(q Code, subRadius int, buf *CandidateBuffer) []int {
	buf.reset(m.chunks)
	tables := m.tables
	if len(m.chunkBits) < len(tables) || len(buf.subs) < len(tables) {
		panic("hamming: MIH chunk state out of sync")
	}
	chunkBits := m.chunkBits[:len(tables)]
	subs := buf.subs[:len(tables)]
	m.substringsInto(q, subs)
	ids := buf.ids[:0]
	for ci := range tables {
		t := tables[ci]
		sub := subs[ci]
		ids = append(ids, t[sub]...)
		w := chunkBits[ci]
		if subRadius >= 1 {
			for b := 0; b < w; b++ {
				ids = append(ids, t[sub^(1<<uint(b))]...)
			}
		}
		if subRadius >= 2 {
			for b1 := 0; b1 < w; b1++ {
				for b2 := b1 + 1; b2 < w; b2++ {
					ids = append(ids, t[sub^(1<<uint(b1))^(1<<uint(b2))]...)
				}
			}
		}
	}
	buf.ids = sortedUnique(ids)
	return buf.ids
}

// Search returns the exact top-k ids by Hamming distance: candidates are
// generated chunk-wise at growing substring radii; the search terminates
// once the k-th ranked candidate's distance falls within the pigeonhole
// guarantee chunks·(subRadius+1)−1, proving no closer code was missed.
// If the guarantee is never reached, it degenerates to a full scan.
func (m *MIH) Search(q Code, k int) []Neighbor {
	var buf CandidateBuffer // one buffer and selector serve all three rounds
	var sel topk.Selector
	for subRadius := 0; subRadius <= 2; subRadius++ {
		cands := m.CandidatesInto(q, subRadius, &buf)
		if len(cands) < k {
			continue
		}
		items := sel.Select(len(cands), k, func(i int) float64 {
			return float64(Distance(q, m.codes[cands[i]]))
		})
		guarantee := m.chunks*(subRadius+1) - 1
		if int(items[len(items)-1].Dist) <= guarantee {
			ns := make([]Neighbor, len(items))
			for i, it := range items {
				ns[i] = Neighbor{ID: cands[it.ID], Distance: int(it.Dist)}
			}
			return ns
		}
	}
	// Guarantee unreachable within the probe budget: rank everything.
	items := sel.Select(len(m.codes), k, func(i int) float64 {
		return float64(Distance(q, m.codes[i]))
	})
	ns := make([]Neighbor, len(items))
	for i, it := range items {
		ns[i] = Neighbor{ID: it.ID, Distance: int(it.Dist)}
	}
	return ns
}
