package hamming

import (
	"fmt"
	"sort"

	"traj2hash/internal/topk"
)

// MIH is a multi-index hashing table (Norouzi, Punjani, Fleet): the code is
// split into m disjoint substrings, each indexed in its own table. By the
// pigeonhole principle, any code within Hamming distance r of the query
// matches at least one substring within ⌊r/m⌋, so candidate generation
// probes each substring table at a small radius instead of enumerating the
// full code's neighborhood — the classical fix for the paper's footnote-5
// observation that radius expansion over long codes scans mostly empty
// buckets.
//
// This is an extension beyond the paper (which caps lookup at radius 2 and
// falls back to a scan); see the extra benchmarks in bench_test.go.
type MIH struct {
	bits      int
	chunks    int
	chunkBits []int
	tables    []map[uint64][]int
	codes     []Code
}

// NewMIH indexes the codes with the given number of substrings (chunks).
// Chunks must divide into the code length with at most 64 bits each.
func NewMIH(codes []Code, chunks int) (*MIH, error) {
	if len(codes) == 0 {
		return nil, fmt.Errorf("hamming: empty code set")
	}
	bits := codes[0].Bits
	if chunks <= 0 || chunks > bits {
		return nil, fmt.Errorf("hamming: invalid chunk count %d for %d bits", chunks, bits)
	}
	m := &MIH{bits: bits, chunks: chunks, codes: codes}
	base := bits / chunks
	rem := bits % chunks
	for c := 0; c < chunks; c++ {
		w := base
		if c < rem {
			w++
		}
		if w > 64 {
			return nil, fmt.Errorf("hamming: chunk %d would span %d bits (max 64)", c, w)
		}
		m.chunkBits = append(m.chunkBits, w)
		m.tables = append(m.tables, make(map[uint64][]int))
	}
	for id, c := range codes {
		if c.Bits != bits {
			return nil, fmt.Errorf("hamming: code %d has %d bits, want %d", id, c.Bits, bits)
		}
		for ci, sub := range m.substrings(c) {
			m.tables[ci][sub] = append(m.tables[ci][sub], id)
		}
	}
	return m, nil
}

// Add indexes one more code incrementally, returning its id. The code
// length must match the index's. Chunk widths are fixed at construction,
// so insertion is a per-chunk map append.
func (m *MIH) Add(c Code) (int, error) {
	if c.Bits != m.bits {
		return 0, fmt.Errorf("hamming: code has %d bits, MIH has %d", c.Bits, m.bits)
	}
	id := len(m.codes)
	m.codes = append(m.codes, c)
	for ci, sub := range m.substrings(c) {
		m.tables[ci][sub] = append(m.tables[ci][sub], id)
	}
	return id, nil
}

// Len returns the number of indexed codes.
func (m *MIH) Len() int { return len(m.codes) }

// Bits returns the code length.
func (m *MIH) Bits() int { return m.bits }

// substrings extracts the chunk values of a code.
func (m *MIH) substrings(c Code) []uint64 {
	out := make([]uint64, m.chunks)
	bit := 0
	for ci, w := range m.chunkBits {
		var v uint64
		for b := 0; b < w; b++ {
			if c.Bit(bit) {
				v |= 1 << uint(b)
			}
			bit++
		}
		out[ci] = v
	}
	return out
}

// Candidates returns the ids whose codes match at least one query
// substring within subRadius bit flips. By pigeonhole this is a superset of
// all codes within Hamming distance chunks·(subRadius+1)−1 of the query.
func (m *MIH) Candidates(q Code, subRadius int) []int {
	seen := map[int]struct{}{}
	var out []int
	add := func(ids []int) {
		for _, id := range ids {
			if _, ok := seen[id]; !ok {
				seen[id] = struct{}{}
				out = append(out, id)
			}
		}
	}
	subs := m.substrings(q)
	for ci, sub := range subs {
		add(m.tables[ci][sub])
		if subRadius >= 1 {
			for b := 0; b < m.chunkBits[ci]; b++ {
				add(m.tables[ci][sub^(1<<uint(b))])
			}
		}
		if subRadius >= 2 {
			for b1 := 0; b1 < m.chunkBits[ci]; b1++ {
				for b2 := b1 + 1; b2 < m.chunkBits[ci]; b2++ {
					add(m.tables[ci][sub^(1<<uint(b1))^(1<<uint(b2))])
				}
			}
		}
	}
	sort.Ints(out)
	return out
}

// Search returns the exact top-k ids by Hamming distance: candidates are
// generated chunk-wise at growing substring radii; the search terminates
// once the k-th ranked candidate's distance falls within the pigeonhole
// guarantee chunks·(subRadius+1)−1, proving no closer code was missed.
// If the guarantee is never reached, it degenerates to a full scan.
func (m *MIH) Search(q Code, k int) []Neighbor {
	for subRadius := 0; subRadius <= 2; subRadius++ {
		cands := m.Candidates(q, subRadius)
		if len(cands) < k {
			continue
		}
		items := topk.Select(len(cands), k, func(i int) float64 {
			return float64(Distance(q, m.codes[cands[i]]))
		})
		guarantee := m.chunks*(subRadius+1) - 1
		if int(items[len(items)-1].Dist) <= guarantee {
			ns := make([]Neighbor, len(items))
			for i, it := range items {
				ns[i] = Neighbor{ID: cands[it.ID], Distance: int(it.Dist)}
			}
			return ns
		}
	}
	// Guarantee unreachable within the probe budget: rank everything.
	items := topk.Select(len(m.codes), k, func(i int) float64 {
		return float64(Distance(q, m.codes[i]))
	})
	ns := make([]Neighbor, len(items))
	for i, it := range items {
		ns[i] = Neighbor{ID: it.ID, Distance: int(it.Dist)}
	}
	return ns
}
