package hamming

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randCode(rng *rand.Rand, bits int) Code {
	c := NewCode(bits)
	for i := range c.Words {
		c.Words[i] = rng.Uint64()
	}
	// Mask trailing bits beyond Bits.
	if r := bits % 64; r != 0 {
		c.Words[len(c.Words)-1] &= (1 << r) - 1
	}
	return c
}

func TestFromSignsRoundTrip(t *testing.T) {
	v := []float64{0.5, -0.1, 2, -3, 0, 1e-9}
	c := FromSigns(v)
	s := c.Signs()
	want := []float64{1, -1, 1, -1, -1, 1} // 0 maps to −1 per sign(x)=1 iff x>0
	for i := range want {
		if s[i] != want[i] {
			t.Errorf("signs[%d] = %v, want %v", i, s[i], want[i])
		}
	}
}

func TestDistanceNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, bits := range []int{8, 64, 65, 128} {
		for trial := 0; trial < 20; trial++ {
			a := randCode(rng, bits)
			b := randCode(rng, bits)
			var naive int
			for i := 0; i < bits; i++ {
				if a.Bit(i) != b.Bit(i) {
					naive++
				}
			}
			if got := Distance(a, b); got != naive {
				t.Fatalf("bits=%d: Distance %d != naive %d", bits, got, naive)
			}
		}
	}
}

func TestDistanceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Distance(NewCode(8), NewCode(16))
}

// TestHammingInnerProductIdentity checks H(a,b) = (d_h − ⟨z_a,z_b⟩)/2, the
// identity the ranking loss of Equation 19 relies on.
func TestHammingInnerProductIdentity(t *testing.T) {
	f := func(wa, wb uint64) bool {
		a := Code{Bits: 64, Words: []uint64{wa}}
		b := Code{Bits: 64, Words: []uint64{wb}}
		h := Distance(a, b)
		ip := InnerProduct(a, b)
		// Also verify against the explicit ±1 dot product.
		sa, sb := a.Signs(), b.Signs()
		var dot float64
		for i := range sa {
			dot += sa[i] * sb[i]
		}
		return h == (64-ip)/2 && int(dot) == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlipBit(t *testing.T) {
	c := NewCode(70)
	d := c.FlipBit(69)
	if !d.Bit(69) || c.Bit(69) {
		t.Error("FlipBit failed or mutated receiver")
	}
	if Distance(c, d) != 1 {
		t.Errorf("distance after one flip = %d", Distance(c, d))
	}
	if !Equal(d.FlipBit(69), c) {
		t.Error("double flip != original")
	}
}

func TestEqualAndKey(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randCode(rng, 128)
	b := a.FlipBit(100)
	if Equal(a, b) {
		t.Error("different codes equal")
	}
	if a.Key() == b.Key() {
		t.Error("key collision")
	}
	if !Equal(a, a) {
		t.Error("code not equal to itself")
	}
	if Equal(NewCode(8), NewCode(16)) {
		t.Error("different lengths equal")
	}
}

func TestStringFormat(t *testing.T) {
	c := NewCode(4)
	c.Words[0] = 0b1010
	if got := c.String(); got != "1010" {
		t.Errorf("String = %q", got)
	}
}

func TestTableLookupExact(t *testing.T) {
	codes := []Code{
		FromSigns([]float64{1, 1, -1, -1}),
		FromSigns([]float64{1, 1, -1, -1}),
		FromSigns([]float64{-1, -1, 1, 1}),
	}
	tab, err := NewTable(codes)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 3 || tab.Bits() != 4 || tab.Buckets() != 2 {
		t.Errorf("Len/Bits/Buckets = %d/%d/%d", tab.Len(), tab.Bits(), tab.Buckets())
	}
	got := tab.Lookup(codes[0])
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Lookup = %v", got)
	}
	if got := tab.Lookup(FromSigns([]float64{1, -1, 1, -1})); got != nil {
		t.Errorf("missing bucket = %v", got)
	}
}

func TestNewTableErrors(t *testing.T) {
	if _, err := NewTable(nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := NewTable([]Code{NewCode(8), NewCode(16)}); err == nil {
		t.Error("mixed lengths accepted")
	}
}

func TestLookupRadiusMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	codes := make([]Code, 200)
	for i := range codes {
		codes[i] = randCode(rng, 16) // short codes so radius-2 finds plenty
	}
	tab, err := NewTable(codes)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		q := randCode(rng, 16)
		for radius := 0; radius <= 2; radius++ {
			got := map[int]bool{}
			for _, id := range tab.LookupRadius(q, radius) {
				got[id] = true
			}
			for id, c := range codes {
				want := Distance(q, c) <= radius
				if got[id] != want {
					t.Fatalf("radius %d: id %d in=%v want=%v", radius, id, got[id], want)
				}
			}
		}
	}
}

func TestBruteForceOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	codes := make([]Code, 100)
	for i := range codes {
		codes[i] = randCode(rng, 64)
	}
	tab, _ := NewTable(codes)
	q := randCode(rng, 64)
	ns := tab.BruteForce(q, 10)
	if len(ns) != 10 {
		t.Fatalf("len = %d", len(ns))
	}
	for i := 1; i < len(ns); i++ {
		if ns[i].Distance < ns[i-1].Distance {
			t.Error("not sorted by distance")
		}
	}
	// k beyond size clamps.
	if got := tab.BruteForce(q, 1000); len(got) != 100 {
		t.Errorf("clamped len = %d", len(got))
	}
}

func TestHybridAgreesWithBruteForceOnDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Dense short codes: radius-2 neighborhoods hold many items, so the
	// fast path activates and must return the same top-k distances.
	codes := make([]Code, 500)
	for i := range codes {
		codes[i] = randCode(rng, 8)
	}
	tab, _ := NewTable(codes)
	var fastUsed bool
	for trial := 0; trial < 20; trial++ {
		q := randCode(rng, 8)
		hybrid, fast := tab.Hybrid(q, 10)
		fastUsed = fastUsed || fast
		bf := tab.BruteForce(q, 10)
		if len(hybrid) != len(bf) {
			t.Fatalf("len %d vs %d", len(hybrid), len(bf))
		}
		if fast {
			// Hybrid on the fast path is only exact while the k-th bf
			// distance is within radius 2; with 8-bit codes and 500 items
			// it always is.
			for i := range bf {
				if hybrid[i].Distance != bf[i].Distance {
					t.Fatalf("trial %d rank %d: hybrid %d vs bf %d", trial, i, hybrid[i].Distance, bf[i].Distance)
				}
			}
		}
	}
	if !fastUsed {
		t.Error("fast path never taken on dense codes")
	}
}

func TestTableAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	codes := make([]Code, 10)
	for i := range codes {
		codes[i] = randCode(rng, 16)
	}
	tab, err := NewTable(codes[:5])
	if err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 10; i++ {
		id, err := tab.Add(codes[i])
		if err != nil {
			t.Fatal(err)
		}
		if id != i {
			t.Fatalf("Add id = %d, want %d", id, i)
		}
	}
	if tab.Len() != 10 {
		t.Fatalf("Len = %d", tab.Len())
	}
	// Added codes are findable by exact lookup and by brute force.
	found := false
	for _, id := range tab.Lookup(codes[7]) {
		if id == 7 {
			found = true
		}
	}
	if !found {
		t.Error("added code missing from its bucket")
	}
	if ns := tab.BruteForce(codes[9], 1); ns[0].ID != 9 || ns[0].Distance != 0 {
		t.Errorf("BruteForce after Add = %+v", ns[0])
	}
	// Wrong length rejected.
	if _, err := tab.Add(NewCode(8)); err == nil {
		t.Error("wrong-length Add accepted")
	}
	// Long codes path.
	longTab, err := NewTable([]Code{randCode(rng, 80)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := longTab.Add(randCode(rng, 80)); err != nil {
		t.Fatal(err)
	}
	if longTab.Len() != 2 {
		t.Error("long-code Add failed")
	}
}

func TestLongCodesUseSlowTable(t *testing.T) {
	// Codes over 64 bits exercise the string-keyed bucket path.
	rng := rand.New(rand.NewSource(9))
	codes := make([]Code, 300)
	for i := range codes {
		codes[i] = randCode(rng, 12) // dense in a 12-bit space
	}
	// Stretch to 80 bits by padding with zero words (keeps density).
	long := make([]Code, len(codes))
	for i, c := range codes {
		l := NewCode(80)
		l.Words[0] = c.Words[0]
		long[i] = l
	}
	tab, err := NewTable(long)
	if err != nil {
		t.Fatal(err)
	}
	// Exact lookup, radius lookup, brute force, and hybrid all agree with
	// the short-code semantics.
	q := long[5]
	if got := tab.Lookup(q); len(got) == 0 {
		t.Fatal("self lookup empty")
	}
	ids := tab.LookupRadius(q, 2)
	seen := map[int]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	for id, c := range long {
		want := Distance(q, c) <= 2
		if seen[id] != want {
			t.Fatalf("long-code radius: id %d in=%v want=%v", id, seen[id], want)
		}
	}
	hyb, fast := tab.Hybrid(q, 5)
	bf := tab.BruteForce(q, 5)
	if fast {
		for i := range bf {
			if hyb[i].Distance != bf[i].Distance {
				t.Fatal("long-code hybrid differs from brute force")
			}
		}
	}
	if tab.Buckets() == 0 || tab.Bits() != 80 {
		t.Errorf("Buckets/Bits = %d/%d", tab.Buckets(), tab.Bits())
	}
}

func TestNewCodePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewCode(0)
}

func TestHybridFallsBackOnSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// 64-bit random codes over few items: radius-2 neighborhoods are empty,
	// forcing the fallback (the footnote-5 scenario).
	codes := make([]Code, 50)
	for i := range codes {
		codes[i] = randCode(rng, 64)
	}
	tab, _ := NewTable(codes)
	q := randCode(rng, 64)
	ns, fast := tab.Hybrid(q, 10)
	if fast {
		t.Error("fast path on sparse codes")
	}
	bf := tab.BruteForce(q, 10)
	for i := range bf {
		if ns[i] != bf[i] {
			t.Fatal("fallback differs from brute force")
		}
	}
}
