package hamming

import (
	"math/rand"
	"testing"

	"traj2hash/internal/topk"
)

// randCodes generates n random codes of the given bit length.
func randCodes(n, bits int, seed int64) []Code {
	rng := rand.New(rand.NewSource(seed))
	codes := make([]Code, n)
	for i := range codes {
		c := NewCode(bits)
		for w := range c.Words {
			c.Words[w] = rng.Uint64()
		}
		if bits%64 != 0 {
			c.Words[len(c.Words)-1] &= (1 << uint(bits%64)) - 1
		}
		codes[i] = c
	}
	return codes
}

// TestBruteForceIntoMatchesBruteForce checks that the buffer-reusing
// scan returns exactly the allocating API's results call after call.
func TestBruteForceIntoMatchesBruteForce(t *testing.T) {
	codes := randCodes(300, 64, 3)
	table, err := NewTable(codes)
	if err != nil {
		t.Fatal(err)
	}
	queries := randCodes(10, 64, 4)
	var sel topk.Selector
	var dst []Neighbor
	for _, q := range queries {
		want := table.BruteForce(q, 7)
		dst = table.BruteForceInto(q, 7, &sel, dst)
		if len(dst) != len(want) {
			t.Fatalf("got %d neighbors, want %d", len(dst), len(want))
		}
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("neighbor %d: got %+v, want %+v", i, dst[i], want[i])
			}
		}
	}
}

// TestCandidatesIntoMatchesCandidates checks that a reused
// CandidateBuffer yields the same sorted unique candidate sets as the
// one-shot API across queries and radii.
func TestCandidatesIntoMatchesCandidates(t *testing.T) {
	codes := randCodes(200, 96, 5)
	m, err := NewMIH(codes, 3)
	if err != nil {
		t.Fatal(err)
	}
	queries := randCodes(8, 96, 6)
	var buf CandidateBuffer
	for _, q := range queries {
		for r := 0; r <= 2; r++ {
			want := m.Candidates(q, r)
			got := m.CandidatesInto(q, r, &buf)
			if len(got) != len(want) {
				t.Fatalf("radius %d: got %d candidates, want %d", r, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("radius %d candidate %d: got %d, want %d", r, i, got[i], want[i])
				}
			}
		}
	}
}

// TestSubstringsWordwise cross-checks the word-wise chunk extraction
// against a per-bit reference on uneven chunk widths.
func TestSubstringsWordwise(t *testing.T) {
	codes := randCodes(20, 100, 8) // 100 bits / 3 chunks → widths 34, 33, 33
	m, err := NewMIH(codes, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range codes {
		got := m.substrings(c)
		bit := 0
		for ci, w := range m.chunkBits {
			var want uint64
			for b := 0; b < w; b++ {
				if c.Bit(bit) {
					want |= 1 << uint(b)
				}
				bit++
			}
			if got[ci] != want {
				t.Fatalf("chunk %d: got %#x, want %#x", ci, got[ci], want)
			}
		}
	}
}

// TestHotpathDistanceZeroAlloc locks in the //perf:hotpath contract on
// Distance.
func TestHotpathDistanceZeroAlloc(t *testing.T) {
	codes := randCodes(2, 256, 9)
	a, b := codes[0], codes[1]
	var sink int
	allocs := testing.AllocsPerRun(100, func() {
		sink += Distance(a, b)
	})
	if allocs != 0 {
		t.Fatalf("Distance allocated %v per call, want 0", allocs)
	}
	_ = sink
}

// TestHotpathBruteForceIntoZeroAlloc locks in the //perf:hotpath
// contract on the Hamming-BF scan with warm buffers.
func TestHotpathBruteForceIntoZeroAlloc(t *testing.T) {
	codes := randCodes(500, 64, 10)
	table, err := NewTable(codes)
	if err != nil {
		t.Fatal(err)
	}
	q := randCodes(1, 64, 11)[0]
	var sel topk.Selector
	var dst []Neighbor
	dst = table.BruteForceInto(q, 10, &sel, dst) // warm sel and dst
	allocs := testing.AllocsPerRun(100, func() {
		dst = table.BruteForceInto(q, 10, &sel, dst)
	})
	if allocs != 0 {
		t.Fatalf("BruteForceInto allocated %v per call, want 0", allocs)
	}
}

// TestHotpathCandidatesIntoZeroAlloc locks in the //perf:hotpath
// contract on MIH candidate generation with a warm buffer.
func TestHotpathCandidatesIntoZeroAlloc(t *testing.T) {
	codes := randCodes(400, 96, 12)
	m, err := NewMIH(codes, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := randCodes(1, 96, 13)[0]
	var buf CandidateBuffer
	m.CandidatesInto(q, 2, &buf) // warm the buffer
	allocs := testing.AllocsPerRun(100, func() {
		m.CandidatesInto(q, 2, &buf)
	})
	if allocs != 0 {
		t.Fatalf("CandidatesInto allocated %v per call, want 0", allocs)
	}
}

// BenchmarkHotpathHammingDistance measures the popcount kernel.
func BenchmarkHotpathHammingDistance(b *testing.B) {
	codes := randCodes(2, 256, 14)
	x, y := codes[0], codes[1]
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += Distance(x, y)
	}
	_ = sink
}

// BenchmarkHotpathHammingBruteForce measures the steady-state
// brute-force scan (10k codes, k=10) with reused buffers.
func BenchmarkHotpathHammingBruteForce(b *testing.B) {
	codes := randCodes(10000, 64, 15)
	table, err := NewTable(codes)
	if err != nil {
		b.Fatal(err)
	}
	q := randCodes(1, 64, 16)[0]
	var sel topk.Selector
	var dst []Neighbor
	dst = table.BruteForceInto(q, 10, &sel, dst) // warm buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = table.BruteForceInto(q, 10, &sel, dst)
	}
}

// BenchmarkHotpathMIHCandidates measures steady-state MIH candidate
// generation at substring radius 2 with a reused buffer.
func BenchmarkHotpathMIHCandidates(b *testing.B) {
	codes := randCodes(10000, 96, 17)
	m, err := NewMIH(codes, 3)
	if err != nil {
		b.Fatal(err)
	}
	q := randCodes(1, 96, 18)[0]
	var buf CandidateBuffer
	m.CandidatesInto(q, 2, &buf) // warm the buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.CandidatesInto(q, 2, &buf)
	}
}
