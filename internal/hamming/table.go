package hamming

import (
	"fmt"
	"sort"

	"traj2hash/internal/topk"
)

// Table is a hash index over binary codes: codes map to buckets of item
// ids. It supports exact-bucket lookup, radius-r lookup by bit-flip
// expansion, and the Hamming-Hybrid top-k search of Section V-E.
//
// Codes up to 64 bits are bucketed by their raw word (no allocation per
// probe); longer codes fall back to string keys.
type Table struct {
	bits    int
	fast    map[uint64][]int // single-word codes
	slow    map[string][]int // multi-word codes
	codes   []Code
	buckets int
}

// NewTable builds an index over the given codes; item i gets id i.
func NewTable(codes []Code) (*Table, error) {
	if len(codes) == 0 {
		return nil, fmt.Errorf("hamming: empty code set")
	}
	bits := codes[0].Bits
	t := &Table{bits: bits, codes: codes}
	if bits <= 64 {
		t.fast = make(map[uint64][]int, len(codes))
	} else {
		t.slow = make(map[string][]int, len(codes))
	}
	for i, c := range codes {
		if c.Bits != bits {
			return nil, fmt.Errorf("hamming: code %d has %d bits, want %d", i, c.Bits, bits)
		}
		if t.fast != nil {
			t.fast[c.Words[0]] = append(t.fast[c.Words[0]], i)
		} else {
			t.slow[c.Key()] = append(t.slow[c.Key()], i)
		}
	}
	if t.fast != nil {
		t.buckets = len(t.fast)
	} else {
		t.buckets = len(t.slow)
	}
	return t, nil
}

// Add indexes one more code, returning its id. The code length must match
// the table's.
func (t *Table) Add(c Code) (int, error) {
	if c.Bits != t.bits {
		return 0, fmt.Errorf("hamming: code has %d bits, table has %d", c.Bits, t.bits)
	}
	id := len(t.codes)
	t.codes = append(t.codes, c)
	if t.fast != nil {
		w := c.Words[0]
		if _, ok := t.fast[w]; !ok {
			t.buckets++
		}
		t.fast[w] = append(t.fast[w], id)
	} else {
		k := c.Key()
		if _, ok := t.slow[k]; !ok {
			t.buckets++
		}
		t.slow[k] = append(t.slow[k], id)
	}
	return id, nil
}

// Update replaces the code stored under id in place: the id moves from
// its old bucket to the new code's bucket and the scan array entry is
// overwritten, so id assignment and insertion order are untouched — the
// property the engine's deterministic tie-break contract relies on when
// items are updated after deletes. The new code's length must match the
// table's.
func (t *Table) Update(id int, c Code) error {
	if id < 0 || id >= len(t.codes) {
		return fmt.Errorf("hamming: update of unknown id %d (have %d codes)", id, len(t.codes))
	}
	if c.Bits != t.bits {
		return fmt.Errorf("hamming: code has %d bits, table has %d", c.Bits, t.bits)
	}
	old := t.codes[id]
	if Equal(old, c) {
		return nil
	}
	if t.fast != nil {
		t.removeFast(old.Words[0], id)
		w := c.Words[0]
		if _, ok := t.fast[w]; !ok {
			t.buckets++
		}
		t.fast[w] = append(t.fast[w], id)
	} else {
		t.removeSlow(old.Key(), id)
		k := c.Key()
		if _, ok := t.slow[k]; !ok {
			t.buckets++
		}
		t.slow[k] = append(t.slow[k], id)
	}
	t.codes[id] = c
	return nil
}

// removeFast deletes id from the single-word bucket w, dropping the
// bucket entirely when it empties (bucket order is irrelevant: every
// consumer sorts ids before use).
func (t *Table) removeFast(w uint64, id int) {
	ids := t.fast[w]
	for i, v := range ids {
		if v == id {
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			break
		}
	}
	if len(ids) == 0 {
		delete(t.fast, w)
		t.buckets--
		return
	}
	t.fast[w] = ids
}

// removeSlow is removeFast for the multi-word string-keyed buckets.
func (t *Table) removeSlow(k string, id int) {
	ids := t.slow[k]
	for i, v := range ids {
		if v == id {
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			break
		}
	}
	if len(ids) == 0 {
		delete(t.slow, k)
		t.buckets--
		return
	}
	t.slow[k] = ids
}

// Len returns the number of indexed items.
func (t *Table) Len() int { return len(t.codes) }

// Bits returns the code length.
func (t *Table) Bits() int { return t.bits }

// Buckets returns the number of non-empty buckets.
func (t *Table) Buckets() int { return t.buckets }

// Lookup returns the ids in the exact bucket of q.
func (t *Table) Lookup(q Code) []int {
	if t.fast != nil {
		return t.fast[q.Words[0]]
	}
	return t.slow[q.Key()]
}

// lookupFlipped returns the bucket of q with bits i (and j ≥ 0) flipped,
// without materializing a new Code for single-word tables.
func (t *Table) lookupFlipped(q Code, i, j int) []int {
	if t.fast != nil {
		w := q.Words[0] ^ (1 << uint(i))
		if j >= 0 {
			w ^= 1 << uint(j)
		}
		return t.fast[w]
	}
	c := q.FlipBit(i)
	if j >= 0 {
		c = c.FlipBit(j)
	}
	return t.slow[c.Key()]
}

// LookupRadius returns all ids within Hamming distance radius of q,
// enumerated by flipping up to radius bits (radius ≤ 2 per the paper's
// strategy). Flip buckets are pairwise disjoint, so no deduplication is
// needed.
func (t *Table) LookupRadius(q Code, radius int) []int {
	var out []int
	out = append(out, t.Lookup(q)...)
	if radius >= 1 {
		for i := 0; i < t.bits; i++ {
			out = append(out, t.lookupFlipped(q, i, -1)...)
		}
	}
	if radius >= 2 {
		for i := 0; i < t.bits; i++ {
			for j := i + 1; j < t.bits; j++ {
				out = append(out, t.lookupFlipped(q, i, j)...)
			}
		}
	}
	return out
}

// Neighbor pairs an item id with its Hamming distance to the query.
type Neighbor struct {
	ID       int
	Distance int
}

// BruteForce returns the k nearest items to q by scanning all codes — the
// Hamming-BF strategy. Ties break by id for determinism. Selection is
// O(n log k), so the popcount scan dominates. The result is freshly
// allocated; hot callers should use BruteForceInto with reused state.
func (t *Table) BruteForce(q Code, k int) []Neighbor {
	var sel topk.Selector
	return t.BruteForceInto(q, k, &sel, nil)
}

// BruteForceInto is BruteForce with caller-owned state: sel holds the
// selection heap and dst the result storage (its backing array is reused
// via append, so passing the previous call's result back in makes the
// steady state allocation-free). The returned slice aliases dst's
// storage and sel's buffer lifetime — consume it before the next call.
//
//perf:hotpath the Hamming-BF scan is one of the two serving hot paths (ROADMAP); it runs per query per shard over every indexed code
func (t *Table) BruteForceInto(q Code, k int, sel *topk.Selector, dst []Neighbor) []Neighbor {
	items := sel.Select(len(t.codes), k, func(i int) float64 {
		return float64(Distance(q, t.codes[i]))
	})
	dst = dst[:0]
	for _, it := range items {
		dst = append(dst, Neighbor{ID: it.ID, Distance: int(it.Dist)})
	}
	return dst
}

// Hybrid implements the Hamming-Hybrid strategy of Section V-E: search the
// radius-2 neighborhood via table lookup; if it contains at least k items,
// rank just those; otherwise fall back to the brute-force scan. The boolean
// reports whether the table-lookup fast path was taken.
//
// Candidates arrive grouped by exact distance (the flip radius of their
// bucket), so ranking is a per-group id sort with no distance computation.
func (t *Table) Hybrid(q Code, k int) ([]Neighbor, bool) {
	d0 := t.Lookup(q)
	var d1, d2 []int
	for i := 0; i < t.bits; i++ {
		d1 = append(d1, t.lookupFlipped(q, i, -1)...)
	}
	for i := 0; i < t.bits; i++ {
		for j := i + 1; j < t.bits; j++ {
			d2 = append(d2, t.lookupFlipped(q, i, j)...)
		}
	}
	if len(d0)+len(d1)+len(d2) < k {
		return t.BruteForce(q, k), false
	}
	out := make([]Neighbor, 0, k)
	for d, ids := range [][]int{d0, d1, d2} {
		if len(out) == k {
			break
		}
		need := k - len(out)
		if len(ids) > need {
			// Only the smallest ids of this distance group are needed.
			sort.Ints(ids)
			ids = ids[:need]
		} else {
			sort.Ints(ids)
		}
		for _, id := range ids {
			out = append(out, Neighbor{ID: id, Distance: d})
		}
	}
	return out, true
}
