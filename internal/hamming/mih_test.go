package hamming

import (
	"math/rand"
	"testing"
)

func TestMIHConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	codes := make([]Code, 50)
	for i := range codes {
		codes[i] = randCode(rng, 64)
	}
	m, err := NewMIH(codes, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.chunkBits) != 4 {
		t.Fatalf("chunks = %d", len(m.chunkBits))
	}
	for _, w := range m.chunkBits {
		if w != 16 {
			t.Errorf("chunk width = %d", w)
		}
	}
	// Uneven split.
	m2, err := NewMIH([]Code{randCode(rng, 70)}, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, w := range m2.chunkBits {
		total += w
	}
	if total != 70 {
		t.Errorf("chunk widths sum to %d", total)
	}
}

func TestMIHErrors(t *testing.T) {
	if _, err := NewMIH(nil, 4); err == nil {
		t.Error("empty accepted")
	}
	c := NewCode(8)
	if _, err := NewMIH([]Code{c}, 0); err == nil {
		t.Error("zero chunks accepted")
	}
	if _, err := NewMIH([]Code{c}, 9); err == nil {
		t.Error("too many chunks accepted")
	}
	long := NewCode(128)
	if _, err := NewMIH([]Code{long}, 1); err == nil {
		t.Error("65+ bit chunk accepted")
	}
	if _, err := NewMIH([]Code{NewCode(8), NewCode(16)}, 2); err == nil {
		t.Error("mixed lengths accepted")
	}
}

func TestMIHSubstringsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := randCode(rng, 64)
	m, err := NewMIH([]Code{c}, 4)
	if err != nil {
		t.Fatal(err)
	}
	subs := m.substrings(c)
	// Reassemble and compare bit by bit.
	bit := 0
	for ci, w := range m.chunkBits {
		for b := 0; b < w; b++ {
			want := c.Bit(bit)
			got := subs[ci]&(1<<uint(b)) != 0
			if got != want {
				t.Fatalf("bit %d mismatch", bit)
			}
			bit++
		}
	}
}

// TestMIHPigeonhole: every code within distance chunks·(subRadius+1)−1
// appears among the candidates.
func TestMIHPigeonhole(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	codes := make([]Code, 400)
	for i := range codes {
		codes[i] = randCode(rng, 32)
	}
	m, err := NewMIH(codes, 4)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		q := randCode(rng, 32)
		for subRadius := 0; subRadius <= 2; subRadius++ {
			guarantee := 4*(subRadius+1) - 1
			cands := map[int]bool{}
			for _, id := range m.Candidates(q, subRadius) {
				cands[id] = true
			}
			for id, c := range codes {
				if Distance(q, c) <= guarantee && !cands[id] {
					t.Fatalf("pigeonhole violated: id %d at distance %d missing at subRadius %d",
						id, Distance(q, c), subRadius)
				}
			}
		}
	}
}

func TestMIHSearchMatchesBruteForceWhenDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Dense: 2000 codes over 16 bits — the k-th neighbor is always within
	// the pigeonhole guarantee, so MIH search is exact.
	codes := make([]Code, 2000)
	for i := range codes {
		codes[i] = randCode(rng, 16)
	}
	m, err := NewMIH(codes, 4)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := NewTable(codes)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		q := randCode(rng, 16)
		got := m.Search(q, 10)
		want := tab.BruteForce(q, 10)
		for i := range want {
			if got[i].Distance != want[i].Distance {
				t.Fatalf("trial %d rank %d: MIH %d vs BF %d", trial, i, got[i].Distance, want[i].Distance)
			}
		}
	}
}

func TestMIHSearchSparseFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	codes := make([]Code, 20)
	for i := range codes {
		codes[i] = randCode(rng, 64)
	}
	m, err := NewMIH(codes, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := randCode(rng, 64)
	got := m.Search(q, 15)
	if len(got) != 15 {
		t.Fatalf("len = %d", len(got))
	}
	tab, _ := NewTable(codes)
	want := tab.BruteForce(q, 15)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("fallback differs from brute force")
		}
	}
}
