package hamming

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestKeyMatchesReferenceFormat guards the hand-rolled hex encoding in
// Key against the fmt-based reference it replaced: fixed-width lowercase
// hex per word, oldest word first, for both single- and multi-word codes.
func TestKeyMatchesReferenceFormat(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, bits := range []int{1, 7, 32, 64, 65, 128, 200} {
		for trial := 0; trial < 20; trial++ {
			c := randCode(rng, bits)
			want := ""
			for _, w := range c.Words {
				want += fmt.Sprintf("%016x", w)
			}
			if got := c.Key(); got != want {
				t.Fatalf("bits=%d: Key() = %q, want %q", bits, got, want)
			}
		}
	}
}

// TestTableFastPathNeverAllocates is the regression test for the Key
// contract: a ≤64-bit table buckets by Words[0] directly, so exact and
// flipped-bit probes must not allocate (an allocation here would mean a
// formatted string key sneaked back onto the hot path).
func TestTableFastPathNeverAllocates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	codes := make([]Code, 256)
	for i := range codes {
		codes[i] = randCode(rng, 32)
	}
	tb, err := NewTable(codes)
	if err != nil {
		t.Fatal(err)
	}
	q := codes[17]
	if n := testing.AllocsPerRun(1000, func() {
		tb.Lookup(q)
	}); n != 0 {
		t.Fatalf("Lookup on a single-word table allocated %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		tb.lookupFlipped(q, 3, -1)
		tb.lookupFlipped(q, 3, 9)
	}); n != 0 {
		t.Fatalf("flipped-bit probes on a single-word table allocated %v times per run, want 0", n)
	}
}

// BenchmarkTableLookupFastPath is the satellite's zero-alloc benchmark:
// run with -benchmem to see 0 allocs/op on the ≤64-bit lookup path.
func BenchmarkTableLookupFastPath(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	codes := make([]Code, 4096)
	for i := range codes {
		codes[i] = randCode(rng, 64)
	}
	tb, err := NewTable(codes)
	if err != nil {
		b.Fatal(err)
	}
	q := codes[1234]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(q)
	}
}

// BenchmarkCodeKeyMultiWord measures the slow-table key path (the only
// place Key belongs): one string per call, by contract off the ≤64-bit
// hot path.
func BenchmarkCodeKeyMultiWord(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	c := randCode(rng, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Key()
	}
}
