// Package hamming provides packed binary codes, Hamming distance, and the
// hash-table search machinery of Section V-E: brute-force Hamming scan,
// table lookup with radius expansion, and the Hamming-Hybrid strategy that
// falls back to brute force when the radius-2 neighborhood holds fewer than
// k candidates.
package hamming

import (
	"fmt"
	"math/bits"
)

// Code is a packed binary hash code of fixed bit length. Bit i lives in
// word i/64 at position i%64. A set bit corresponds to sign value +1, a
// clear bit to −1 (the ±1 convention of Equation 16).
type Code struct {
	Bits  int
	Words []uint64
}

// NewCode returns an all-clear code of the given bit length.
func NewCode(bits int) Code {
	if bits <= 0 {
		panic(fmt.Sprintf("hamming: invalid bit length %d", bits))
	}
	return Code{Bits: bits, Words: make([]uint64, (bits+63)/64)}
}

// FromSigns packs a ±1 vector (any value > 0 counts as +1, the sign
// convention of Equation 16: sign(x)=1 if x>0 else −1) into a code.
func FromSigns(v []float64) Code {
	c := NewCode(len(v))
	for i, x := range v {
		if x > 0 {
			c.Words[i/64] |= 1 << (i % 64)
		}
	}
	return c
}

// Signs unpacks the code back into a ±1 float vector.
func (c Code) Signs() []float64 {
	out := make([]float64, c.Bits)
	for i := range out {
		if c.Words[i/64]&(1<<(i%64)) != 0 {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}

// Bit reports whether bit i is set.
func (c Code) Bit(i int) bool { return c.Words[i/64]&(1<<(i%64)) != 0 }

// FlipBit returns a copy of the code with bit i flipped.
func (c Code) FlipBit(i int) Code {
	out := Code{Bits: c.Bits, Words: append([]uint64(nil), c.Words...)}
	out.Words[i/64] ^= 1 << (i % 64)
	return out
}

// Distance returns the Hamming distance between two codes of equal
// length. The panic message is a constant, not a Sprintf: formatted
// panic arguments escape to the heap on every call even when the panic
// never fires, and Distance runs once per indexed code per brute-force
// query.
//
//perf:hotpath the popcount loop is the inner kernel of every Hamming scan; one allocation or bounds check here multiplies by n codes per query
func Distance(a, b Code) int {
	if a.Bits != b.Bits {
		panic("hamming: code length mismatch in Distance")
	}
	aw, bw := a.Words, b.Words
	// Equal Bits means equal word counts; the reslice makes that visible
	// to the compiler, eliminating the bw[i] bounds check in the loop.
	bw = bw[:len(aw)]
	var d int
	for i := range aw {
		d += bits.OnesCount64(aw[i] ^ bw[i])
	}
	return d
}

// InnerProduct returns ⟨z_a, z_b⟩ under the ±1 convention. It satisfies the
// identity of Section IV-F: H(a, b) = (d_h − ⟨z_a, z_b⟩)/2.
func InnerProduct(a, b Code) int {
	return a.Bits - 2*Distance(a, b)
}

// Equal reports code equality.
func Equal(a, b Code) bool {
	if a.Bits != b.Bits {
		return false
	}
	for i := range a.Words {
		if a.Words[i] != b.Words[i] {
			return false
		}
	}
	return true
}

// hexDigits is the lowercase alphabet of Key's fixed-width encoding.
const hexDigits = "0123456789abcdef"

// Key returns a string map key for a multi-word code (more than 64
// bits): the words concatenated as fixed-width lowercase hex, oldest
// word first. A code of 64 bits or fewer has its entire identity in
// Words[0], so hot-path callers must bucket by the word itself — as
// Table's fast path does, never calling Key for ≤64-bit codes — because
// Key allocates its string key on every call. Key remains correct for
// single-word codes (serialization comparisons use it), just not free.
func (c Code) Key() string {
	b := make([]byte, len(c.Words)*16)
	for wi, w := range c.Words {
		for i := 15; i >= 0; i-- {
			b[wi*16+i] = hexDigits[w&0xf]
			w >>= 4
		}
	}
	return string(b)
}

func (c Code) String() string {
	b := make([]byte, c.Bits)
	for i := 0; i < c.Bits; i++ {
		if c.Bit(i) {
			b[c.Bits-1-i] = '1'
		} else {
			b[c.Bits-1-i] = '0'
		}
	}
	return string(b)
}
