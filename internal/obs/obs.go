// Package obs is the repository's stdlib-only observability substrate:
// atomic counters and gauges, fixed-bucket mergeable histograms, a
// namespaced Registry with JSON and expvar export, and a lightweight
// ring-buffered span tracer (trace.go).
//
// Two properties shape the API:
//
//   - Nil safety. Every instrument method is a no-op on a nil receiver,
//     and a nil *Registry hands out nil instruments. Instrumented code
//     therefore needs no "is observability on?" branching on the hot
//     path: it asks the (possibly nil) registry for instruments once, at
//     construction, and calls them unconditionally. The nil path costs a
//     single predictable branch — the "no-op registry" baseline of the
//     engine's overhead benchmarks.
//   - Allocation consciousness. Counter/Gauge updates are single atomic
//     ops; Histogram.Observe is a binary search plus two atomics; none of
//     them allocate. Name lookups (which do allocate map iterators under
//     a lock) happen at construction time only.
//
// The package-wide Default registry plays the role expvar's top-level
// functions play in the stdlib: a process-global sink for call sites
// (like checkpoint persistence) with no natural configuration surface.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (no-op on a nil receiver).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one (no-op on a nil receiver).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64 — a "last observed value"
// instrument (current epoch loss, items indexed, …). The zero value is
// ready to use; a nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v (no-op on a nil receiver).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds d to the gauge (no-op on a nil receiver).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + d
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the stored value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution: observation v lands in the
// first bucket whose upper bound is >= v, or the overflow bucket when it
// exceeds every bound. Buckets are cumulative-free (each holds its own
// count), updates are atomic, and histograms with identical bounds merge
// exactly — per-shard histograms sum into the global distribution with
// no loss, which is what makes per-shard latency attributable (DESIGN.md
// "Observability"). A nil *Histogram is a no-op.
type Histogram struct {
	bounds []float64      // ascending upper bounds, immutable after New
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds an unregistered histogram over the given ascending
// bucket upper bounds. It panics on empty or unsorted bounds — bucket
// layout is configuration, not data, and a bad layout should fail at
// construction, loudly.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at index %d", i))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value (no-op on a nil receiver). It never
// allocates: a binary search locates the bucket, then two atomic
// updates record the observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Merge adds o's current observations into h. Both histograms must share
// the same bucket bounds (merging across different layouts would silently
// mis-bucket); merging a nil o — or into a nil h — is a no-op. Merge is
// associative and commutative over snapshots, so per-shard histograms can
// be combined in any order into the same global distribution.
func (h *Histogram) Merge(o *Histogram) error {
	if h == nil || o == nil {
		return nil
	}
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("obs: merging histograms with %d vs %d buckets", len(h.bounds), len(o.bounds))
	}
	for i := range h.bounds {
		// Bitwise comparison: bounds are configuration constants copied
		// verbatim at construction, so identity is exact representation
		// equality, never an epsilon question.
		if math.Float64bits(h.bounds[i]) != math.Float64bits(o.bounds[i]) {
			return fmt.Errorf("obs: merging histograms with different bounds at index %d", i)
		}
	}
	for i := range h.counts {
		n := o.counts[i].Load()
		if n != 0 {
			h.counts[i].Add(n)
			h.count.Add(n)
		}
	}
	s := o.Sum()
	for {
		old := h.sum.Load()
		v := math.Float64frombits(old) + s
		if h.sum.CompareAndSwap(old, math.Float64bits(v)) {
			return nil
		}
	}
}

// Snapshot captures the histogram's current state. A nil histogram (the
// instrument a nil registry hands out) yields a zero snapshot, whose
// Quantile is NaN.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	return h.snapshot()
}

// snapshot captures the histogram's current state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram, the JSON
// export shape. Counts is parallel to Bounds plus a trailing overflow
// bucket.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed
// distribution by linear interpolation inside the bucket that contains
// it: the bucket's lower edge (0 for the first bucket) plus the
// fraction of the bucket's count the target rank reaches. Observations
// in the overflow bucket have no upper edge, so any quantile landing
// there reports the last finite bound — a deliberate underestimate that
// a dashboard reads as "at least this much". An empty snapshot has no
// quantiles: the result is NaN.
//
// The estimate's resolution is the bucket width; use FineLatencyBounds
// (factor-2 buckets) rather than LatencyBounds (factor-4) for
// histograms that feed p99/p999 reporting.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	var cum float64
	for i, n := range s.Counts {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next < target {
			cum = next
			continue
		}
		if i >= len(s.Bounds) {
			// Overflow bucket: no upper edge to interpolate toward.
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		frac := (target - cum) / float64(n)
		return lo + frac*(hi-lo)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Snapshot is a point-in-time copy of a Registry: every counter, gauge
// and histogram by fully qualified name. encoding/json marshals map keys
// in sorted order, so the export is deterministic for golden tests and
// diffable across scrapes.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Registry is a namespaced instrument directory: the first Counter /
// Gauge / Histogram call for a name creates the instrument, subsequent
// calls return the same one, and Snapshot/WriteJSON export everything.
// All methods are safe for concurrent use; a nil *Registry hands out nil
// (no-op) instruments, so "observability off" is just a nil registry.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	tracer     *Tracer
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// defaultRegistry is the process-global registry behind Default.
var defaultRegistry = New()

// Default returns the process-global registry — the sink for call sites
// with no configuration surface of their own (checkpoint persistence
// counters, the CLI's -debug-addr /metrics endpoint). Library types that
// do have options (engine.Options, TrainData) take an explicit registry
// instead and treat nil as "off".
func Default() *Registry { return defaultRegistry }

// lookupCounter is the read-locked fast path of Counter.
func (r *Registry) lookupCounter(name string) *Counter {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.counters[name]
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if c := r.lookupCounter(name); c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	return c
}

// lookupGauge is the read-locked fast path of Gauge.
func (r *Registry) lookupGauge(name string) *Gauge {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gauges[name]
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if g := r.lookupGauge(name); g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[name]; g != nil {
		return g
	}
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use; later calls return the existing histogram
// regardless of the bounds they pass (first caller wins — bucket layout
// is part of the metric's identity). A nil registry returns a nil
// (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if h := r.lookupHistogram(name); h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.histograms[name]; h != nil {
		return h
	}
	h := NewHistogram(bounds)
	r.histograms[name] = h
	return h
}

// lookupHistogram is the read-locked fast path of Histogram.
func (r *Registry) lookupHistogram(name string) *Histogram {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.histograms[name]
}

// Tracer returns the registry's span tracer, creating a
// DefaultTraceCapacity-sized one on first use. A nil registry returns a
// nil (no-op) tracer.
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	if t := r.lookupTracer(); t != nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tracer == nil {
		r.tracer = NewTracer(DefaultTraceCapacity)
	}
	return r.tracer
}

// lookupTracer is the read-locked fast path of Tracer.
func (r *Registry) lookupTracer() *Tracer {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.tracer
}

// Snapshot captures every instrument's current value. A nil registry
// yields an empty (but non-nil-mapped) snapshot, so callers can always
// marshal it.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Names returns the sorted fully qualified names of every registered
// instrument — the metric-name table of DESIGN.md is checked against
// this in tests.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters {
		out = append(out, n)
	}
	for n := range r.gauges {
		out = append(out, n)
	}
	for n := range r.histograms {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WriteJSON writes the registry snapshot as indented JSON — the payload
// of the CLI's /metrics endpoint and the bin/metrics.json CI artifact.
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Expvar adapts the registry to an expvar.Var, for publishing next to
// the stdlib's memstats on a debug server:
//
//	expvar.Publish("traj2hash", reg.Expvar())
func (r *Registry) Expvar() expvar.Var {
	return expvar.Func(func() any { return r.Snapshot() })
}

// LatencyBounds returns the standard latency bucket layout, in seconds:
// 1µs to ~16s in powers of four. Shared by every latency histogram in
// the tree so per-shard, per-backend, and merge timings merge and
// compare directly.
func LatencyBounds() []float64 {
	out := make([]float64, 13)
	v := 1e-6
	for i := range out {
		out[i] = v
		v *= 4
	}
	return out
}

// FineLatencyBounds returns the high-resolution latency bucket layout,
// in seconds: 1µs to ~8s in powers of two. Twice the buckets of
// LatencyBounds for half the width — the layout for histograms whose
// tail quantiles (p99/p999, via HistogramSnapshot.Quantile) are
// reported numbers rather than order-of-magnitude summaries, like the
// serving layer's per-request latency.
func FineLatencyBounds() []float64 {
	out := make([]float64, 24)
	v := 1e-6
	for i := range out {
		out[i] = v
		v *= 2
	}
	return out
}

// CountBounds returns the standard bucket layout for small-count
// distributions (candidate counts, batch sizes): 1 to ~1M in powers of
// four.
func CountBounds() []float64 {
	out := make([]float64, 11)
	v := 1.0
	for i := range out {
		out[i] = v
		v *= 4
	}
	return out
}

// MagnitudeBounds returns the standard bucket layout for unit-free
// magnitudes (gradient norms, losses): 1e-4 to ~1e5 in powers of ten.
func MagnitudeBounds() []float64 {
	out := make([]float64, 10)
	v := 1e-4
	for i := range out {
		out[i] = v
		v *= 10
	}
	return out
}
