package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	r := New()
	c := r.Counter("test.counter")
	g := r.Gauge("test.gauge")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != float64(workers*per) {
		t.Fatalf("gauge = %v, want %v", got, workers*per)
	}
	g.Set(-3.5)
	if got := g.Value(); got != -3.5 {
		t.Fatalf("gauge after Set = %v, want -3.5", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w%4) + 0.5) // buckets 1,1,2,4 and overflow(3.5 -> bucket 4)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	var bucketTotal int64
	for _, c := range h.snapshot().Counts {
		bucketTotal += c
	}
	if bucketTotal != workers*per {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, workers*per)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 99, 1000} {
		h.Observe(v)
	}
	s := h.snapshot()
	want := []int64{2, 2, 1, 1} // <=1: {0.5,1}; <=10: {5,10}; <=100: {99}; overflow: {1000}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if math.Abs(s.Sum-1115.5) > 1e-9 {
		t.Fatalf("sum = %v, want 1115.5", s.Sum)
	}
}

// fill populates a fresh histogram with the given observations.
func fill(bounds, vals []float64) *Histogram {
	h := NewHistogram(bounds)
	for _, v := range vals {
		h.Observe(v)
	}
	return h
}

func TestHistogramMergeAssociative(t *testing.T) {
	bounds := []float64{1, 4, 16}
	a := func() *Histogram { return fill(bounds, []float64{0.5, 3, 100}) }
	b := func() *Histogram { return fill(bounds, []float64{2, 2, 15}) }
	c := func() *Histogram { return fill(bounds, []float64{17}) }

	// (a ⊕ b) ⊕ c
	left := NewHistogram(bounds)
	for _, h := range []*Histogram{a(), b()} {
		if err := left.Merge(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := left.Merge(c()); err != nil {
		t.Fatal(err)
	}
	// a ⊕ (b ⊕ c)
	bc := b()
	if err := bc.Merge(c()); err != nil {
		t.Fatal(err)
	}
	right := a()
	if err := right.Merge(bc); err != nil {
		t.Fatal(err)
	}

	ls, rs := left.snapshot(), right.snapshot()
	lj, err := json.Marshal(ls)
	if err != nil {
		t.Fatal(err)
	}
	rj, err := json.Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lj, rj) {
		t.Fatalf("merge not associative:\n(a+b)+c = %s\na+(b+c) = %s", lj, rj)
	}
	if ls.Count != 7 {
		t.Fatalf("merged count = %d, want 7", ls.Count)
	}
}

func TestHistogramMergeRejectsMismatchedBounds(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	if err := a.Merge(NewHistogram([]float64{1, 2, 3})); err == nil {
		t.Fatal("merge with different bucket counts should fail")
	}
	if err := a.Merge(NewHistogram([]float64{1, 3})); err == nil {
		t.Fatal("merge with different bounds should fail")
	}
}

func TestRegistryCreateOrGet(t *testing.T) {
	r := New()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("Counter should return the same instrument per name")
	}
	if r.Gauge("y") != r.Gauge("y") {
		t.Fatal("Gauge should return the same instrument per name")
	}
	h1 := r.Histogram("z", []float64{1, 2})
	h2 := r.Histogram("z", []float64{5, 6, 7}) // first caller wins
	if h1 != h2 {
		t.Fatal("Histogram should return the same instrument per name")
	}
	if r.Tracer() != r.Tracer() {
		t.Fatal("Tracer should be a singleton per registry")
	}
	names := r.Names()
	want := []string{"x", "y", "z"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
}

func TestRegistryJSONGolden(t *testing.T) {
	r := New()
	r.Counter("engine.search.total").Add(3)
	r.Gauge("train.epoch.loss").Set(0.25)
	h := r.Histogram("lat", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(100)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	const golden = `{
  "counters": {
    "engine.search.total": 3
  },
  "gauges": {
    "train.epoch.loss": 0.25
  },
  "histograms": {
    "lat": {
      "count": 2,
      "sum": 100.5,
      "bounds": [
        1,
        10
      ],
      "counts": [
        1,
        0,
        1
      ]
    }
  }
}
`
	if got := buf.String(); got != golden {
		t.Fatalf("JSON export mismatch:\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("a")
	g := r.Gauge("b")
	h := r.Histogram("c", []float64{1})
	tr := r.Tracer()
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if err := h.Merge(NewHistogram([]float64{1})); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
	sp := tr.Start("noop", 0)
	if sp.ID() != 0 {
		t.Fatal("nil tracer span should have ID 0")
	}
	sp.End()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments should read as zero")
	}
	if tr.Spans() != nil {
		t.Fatal("nil tracer should dump no spans")
	}
	s := r.Snapshot()
	if s.Counters == nil || s.Gauges == nil || s.Histograms == nil {
		t.Fatal("nil registry snapshot should carry non-nil maps")
	}
	if r.Names() != nil {
		t.Fatal("nil registry should have no names")
	}
}

func TestObserveDoesNotAllocate(t *testing.T) {
	h := NewHistogram(LatencyBounds())
	c := &Counter{}
	g := &Gauge{}
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(3e-4)
		c.Inc()
		g.Set(1.5)
	}); n != 0 {
		t.Fatalf("hot-path instrument updates allocated %v times per run, want 0", n)
	}
}

func TestTracerRingRetention(t *testing.T) {
	tr := NewTracer(3)
	root := tr.Start("root", 0)
	rootID := root.ID()
	if rootID == 0 {
		t.Fatal("live span should have a non-zero ID")
	}
	child := tr.Start("child", rootID)
	child.End()
	root.End()
	for i := 0; i < 4; i++ {
		tr.Start("filler", 0).End()
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("ring retained %d spans, want 3", len(spans))
	}
	for _, s := range spans {
		if s.Name != "filler" {
			t.Fatalf("oldest spans should have been evicted, found %q", s.Name)
		}
	}
	// Order: oldest first, IDs ascending.
	for i := 1; i < len(spans); i++ {
		if spans[i].ID <= spans[i-1].ID {
			t.Fatalf("span IDs out of order: %d then %d", spans[i-1].ID, spans[i].ID)
		}
	}
}

func TestTracerParentLinks(t *testing.T) {
	tr := NewTracer(8)
	root := tr.Start("root", 0)
	child := tr.Start("child", root.ID())
	time.Sleep(time.Millisecond)
	child.End()
	root.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["child"].Parent != byName["root"].ID {
		t.Fatalf("child parent = %d, want root ID %d", byName["child"].Parent, byName["root"].ID)
	}
	if byName["child"].Dur <= 0 {
		t.Fatal("completed span should have positive duration")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"name": "child"`) {
		t.Fatalf("trace JSON missing child span:\n%s", buf.String())
	}
}

func TestStandardBoundsAscending(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"latency":   LatencyBounds(),
		"count":     CountBounds(),
		"magnitude": MagnitudeBounds(),
	} {
		if len(bounds) == 0 {
			t.Fatalf("%s bounds empty", name)
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Fatalf("%s bounds not ascending at %d: %v", name, i, bounds)
			}
		}
		// Must construct a valid histogram.
		NewHistogram(bounds).Observe(1)
	}
}

func TestDefaultRegistryIsSingleton(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default registry should be a process-wide singleton")
	}
	c := Default().Counter("obs.test.default")
	before := c.Value()
	c.Inc()
	if Default().Counter("obs.test.default").Value() != before+1 {
		t.Fatal("Default registry counters should persist across lookups")
	}
}

func TestHistogramQuantile(t *testing.T) {
	// 100 observations spread uniformly through the (10, 20] bucket:
	// quantiles interpolate linearly between the bucket's edges.
	h := NewHistogram([]float64{10, 20, 30})
	for i := 0; i < 100; i++ {
		h.Observe(15)
	}
	s := h.snapshot()
	cases := []struct{ q, want float64 }{
		{0, 10},   // rank 0 sits at the bucket's lower edge
		{0.5, 15}, // halfway through the bucket
		{0.99, 19.9},
		{1, 20}, // the full rank reaches the upper edge
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}

	// Observations across buckets: the quantile walks cumulative counts.
	h2 := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 90; i++ {
		h2.Observe(0.5) // first bucket (0, 1]
	}
	for i := 0; i < 10; i++ {
		h2.Observe(3) // third bucket (2, 4]
	}
	s2 := h2.snapshot()
	if got := s2.Quantile(0.5); got <= 0 || got > 1 {
		t.Errorf("p50 = %v, want inside the first bucket (0, 1]", got)
	}
	if got := s2.Quantile(0.99); got <= 2 || got > 4 {
		t.Errorf("p99 = %v, want inside the third bucket (2, 4]", got)
	}

	// The overflow bucket has no upper edge: quantiles landing there
	// report the last finite bound (a deliberate underestimate).
	h3 := NewHistogram([]float64{1, 2})
	h3.Observe(100)
	if got := h3.snapshot().Quantile(0.5); math.Abs(got-2) > 1e-9 {
		t.Errorf("overflow quantile = %v, want the last bound 2", got)
	}

	// An empty snapshot has no quantiles.
	if got := NewHistogram([]float64{1}).snapshot().Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty Quantile = %v, want NaN", got)
	}
}

func TestFineLatencyBounds(t *testing.T) {
	b := FineLatencyBounds()
	if len(b) != 24 {
		t.Fatalf("len = %d, want 24", len(b))
	}
	if math.Abs(b[0]-1e-6) > 1e-18 {
		t.Errorf("first bound = %v, want 1µs", b[0])
	}
	for i := 1; i < len(b); i++ {
		if math.Abs(b[i]-2*b[i-1]) > 1e-12*b[i] {
			t.Errorf("bound %d = %v, want double its predecessor %v", i, b[i], b[i-1])
		}
	}
	// The layout must be a valid ascending histogram configuration and
	// reach far enough to hold any plausible request latency (~8s).
	NewHistogram(b).Observe(7)
	if b[len(b)-1] < 5 {
		t.Errorf("last bound = %v, want several seconds of headroom", b[len(b)-1])
	}
}
