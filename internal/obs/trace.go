package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceCapacity is the ring-buffer size of a Registry's lazily
// created Tracer: enough to hold the recent past of a busy serving
// process without unbounded growth.
const DefaultTraceCapacity = 1024

// Span is one completed traced operation: a name, a wall-clock start,
// a duration, and the IDs linking it into a trace tree. IDs are
// process-unique and monotonically increasing; Parent is 0 for roots.
type Span struct {
	ID     uint64        `json:"id"`
	Parent uint64        `json:"parent,omitempty"`
	Name   string        `json:"name"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur_ns"`
}

// Tracer records completed spans into a fixed-capacity ring buffer:
// retention is bounded, the newest spans win, and the buffer can be
// dumped on demand (the CLI's /trace endpoint). Start/End are safe for
// concurrent use; a nil *Tracer is a no-op and ActiveSpans from it are
// nil no-ops too, so tracing costs nothing when disabled.
type Tracer struct {
	next atomic.Uint64 // last issued span ID

	mu   sync.Mutex
	ring []Span
	pos  int
	full bool
}

// NewTracer returns a tracer retaining the last `capacity` completed
// spans (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]Span, capacity)}
}

// ActiveSpan is an in-flight span handle; End completes it into the
// tracer's ring. A nil *ActiveSpan (from a nil Tracer) is a no-op.
type ActiveSpan struct {
	t      *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time
}

// Start opens a span under the given parent ID (0 = root) and returns
// its handle. A nil tracer returns a nil handle.
func (t *Tracer) Start(name string, parent uint64) *ActiveSpan {
	if t == nil {
		return nil
	}
	return &ActiveSpan{
		t:      t,
		id:     t.next.Add(1),
		parent: parent,
		name:   name,
		start:  time.Now(),
	}
}

// ID returns the span's process-unique ID, for parenting child spans
// (0 on a nil handle).
func (s *ActiveSpan) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// End completes the span, recording it into the tracer's ring buffer
// (no-op on a nil handle).
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	sp := Span{ID: s.id, Parent: s.parent, Name: s.name, Start: s.start, Dur: time.Since(s.start)}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring[t.pos] = sp
	t.pos++
	if t.pos == len(t.ring) {
		t.pos = 0
		t.full = true
	}
}

// Spans returns the retained completed spans, oldest first (nil on a nil
// tracer).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]Span(nil), t.ring[:t.pos]...)
	}
	out := make([]Span, 0, len(t.ring))
	out = append(out, t.ring[t.pos:]...)
	out = append(out, t.ring[:t.pos]...)
	return out
}

// WriteJSON dumps the retained spans as indented JSON — the payload of
// the CLI's /trace endpoint.
func (t *Tracer) WriteJSON(w io.Writer) error {
	spans := t.Spans()
	if spans == nil {
		spans = []Span{}
	}
	b, err := json.MarshalIndent(spans, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
