package wal

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"traj2hash/internal/hamming"
	"traj2hash/internal/obs"
)

// sampleRecords is a mix of every op shape: full add, bare delete,
// update without a trajectory, and an add with negative/NaN-free floats.
func sampleRecords() []Record {
	return []Record{
		{Op: OpAdd, ID: 0, Emb: []float64{1.5, -2.25, 0}, Code: hamming.Code{Bits: 3, Words: []uint64{0b101}}, Traj: []float64{1, 2, 3, 4}},
		{Op: OpDelete, ID: 0},
		{Op: OpAdd, ID: 1, Emb: []float64{math.Pi}, Code: hamming.Code{Bits: 1, Words: []uint64{1}}},
		{Op: OpUpdate, ID: 1, Emb: []float64{-math.SqrtPi}, Code: hamming.Code{Bits: 1, Words: []uint64{0}}, Traj: []float64{9, 9}},
	}
}

func TestRecordFramingRoundTrip(t *testing.T) {
	recs := sampleRecords()
	data := append([]byte(nil), magic...)
	for _, r := range recs {
		data = appendRecord(data, r)
	}
	parsed, err := parseLog(data)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Torn {
		t.Fatal("intact log reported torn")
	}
	if parsed.Valid != int64(len(data)) {
		t.Fatalf("valid prefix %d, want %d", parsed.Valid, len(data))
	}
	if !reflect.DeepEqual(parsed.Records, recs) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", parsed.Records, recs)
	}
}

// TestTornTailDetection cuts an intact log at every byte boundary inside
// its final record: each cut must parse as the full prefix plus a torn
// tail, never an error and never a phantom record.
func TestTornTailDetection(t *testing.T) {
	recs := sampleRecords()
	data := append([]byte(nil), magic...)
	for _, r := range recs[:3] {
		data = appendRecord(data, r)
	}
	intact := int64(len(data))
	data = appendRecord(data, recs[3])
	for cut := intact + 1; cut < int64(len(data)); cut++ {
		parsed, err := parseLog(data[:cut])
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if !parsed.Torn {
			t.Fatalf("cut at %d not reported torn", cut)
		}
		if parsed.Valid != intact {
			t.Fatalf("cut at %d: valid prefix %d, want %d", cut, parsed.Valid, intact)
		}
		if len(parsed.Records) != 3 {
			t.Fatalf("cut at %d: %d records, want 3", cut, len(parsed.Records))
		}
	}
}

// TestCorruptedTailCRC flips one payload byte of the final record: the
// checksum must reject it as a torn tail while the prefix survives.
func TestCorruptedTailCRC(t *testing.T) {
	data := append([]byte(nil), magic...)
	data = appendRecord(data, sampleRecords()[0])
	intact := int64(len(data))
	data = appendRecord(data, sampleRecords()[2])
	data[len(data)-1] ^= 0xFF
	parsed, err := parseLog(data)
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Torn || parsed.Valid != intact || len(parsed.Records) != 1 {
		t.Fatalf("corrupt tail: torn=%v valid=%d records=%d, want true/%d/1", parsed.Torn, parsed.Valid, len(parsed.Records), intact)
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := parseLog([]byte("NOPE-this-is-not-a-log")); err == nil {
		t.Fatal("foreign file accepted as a log")
	}
	parsed, err := parseLog([]byte("TW")) // torn mid-magic: valid prefix empty
	if err != nil || !parsed.Torn || parsed.Valid != 0 {
		t.Fatalf("short magic: parsed=%+v err=%v, want torn with empty prefix", parsed, err)
	}
}

// TestStoreRoundTrip drives the full protocol on a real directory:
// append → snapshot → append → close → reopen, asserting the recovered
// snapshot and tail plus the counters the obs registry accumulated.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := obs.New()
	open := func() (*Store, *Recovered) {
		t.Helper()
		s, rec, err := Open(Options{Dir: dir, Metrics: reg, SnapshotEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		return s, rec
	}
	s, rec := open()
	if rec.Snapshot != nil || len(rec.Tail) != 0 || rec.TornTail {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	recs := sampleRecords()
	for _, r := range recs[:2] {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	state := &State{Next: 1, Items: []Item{{ID: 0, Emb: []float64{1.5}, Code: hamming.Code{Bits: 1, Words: []uint64{1}}, Traj: []float64{1, 2}}}}
	if err := s.WriteSnapshot(state); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[2:] {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec2 := open()
	defer func() {
		//lint:ignore errcheck test cleanup close
		s2.Close()
	}()
	if rec2.Snapshot == nil || !reflect.DeepEqual(rec2.Snapshot, state) {
		t.Fatalf("recovered snapshot %+v, want %+v", rec2.Snapshot, state)
	}
	if !reflect.DeepEqual(rec2.Tail, recs[2:]) {
		t.Fatalf("recovered tail %+v, want %+v", rec2.Tail, recs[2:])
	}
	if rec2.TornTail {
		t.Fatal("clean shutdown reported a torn tail")
	}
	counter := func(name string) int64 { return reg.Counter(name).Value() }
	if got := counter("wal.appends"); got != 4 {
		t.Fatalf("wal.appends = %d, want 4", got)
	}
	if got := counter("wal.snapshots"); got != 1 {
		t.Fatalf("wal.snapshots = %d, want 1", got)
	}
	if got := counter("wal.recoveries"); got != 1 {
		t.Fatalf("wal.recoveries = %d, want 1 (only the second open saw prior state)", got)
	}
	if got := counter("wal.torn_tails"); got != 0 {
		t.Fatalf("wal.torn_tails = %d, want 0", got)
	}
	if counter("wal.fsyncs") < 4 {
		t.Fatalf("wal.fsyncs = %d, want >= 4 (SyncEvery default 1)", counter("wal.fsyncs"))
	}
}

// TestStoreTornTailRecovery crashes "mid-append" by hand: bytes are
// chopped off the log file between two opens. Recovery must surface the
// intact records, report and count the torn tail, and truncate the file
// so the NEXT recovery is clean.
func TestStoreTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	reg := obs.New()
	s, _, err := Open(Options{Dir: dir, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for _, r := range recs {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, LogName)
	info, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(logPath, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	s2, rec, err := Open(Options{Dir: dir, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.TornTail {
		t.Fatal("chopped log not reported torn")
	}
	if !reflect.DeepEqual(rec.Tail, recs[:3]) {
		t.Fatalf("recovered tail %+v, want first 3 records", rec.Tail)
	}
	if got := reg.Counter("wal.torn_tails").Value(); got != 1 {
		t.Fatalf("wal.torn_tails = %d, want 1", got)
	}
	// The torn bytes are gone from disk: append after recovery, reopen,
	// and the log parses clean.
	if err := s2.Append(recs[3]); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, rec3, err := Open(Options{Dir: dir, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		//lint:ignore errcheck test cleanup close
		s3.Close()
	}()
	if rec3.TornTail {
		t.Fatal("recovered-then-appended log still torn")
	}
	want := append(append([]Record(nil), recs[:3]...), recs[3])
	if !reflect.DeepEqual(rec3.Tail, want) {
		t.Fatalf("final tail %+v, want %+v", rec3.Tail, want)
	}
}

// TestGroupFsync: with SyncEvery=3, appends batch their fsyncs and Sync
// flushes the remainder.
func TestGroupFsync(t *testing.T) {
	reg := obs.New()
	s, _, err := Open(Options{Dir: t.TempDir(), Metrics: reg, SyncEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		//lint:ignore errcheck test cleanup close
		s.Close()
	}()
	base := reg.Counter("wal.fsyncs").Value() // the magic-header sync
	for i := 0; i < 7; i++ {
		if err := s.Append(Record{Op: OpDelete, ID: i}); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("wal.fsyncs").Value() - base; got != 2 {
		t.Fatalf("fsyncs after 7 appends at SyncEvery=3: %d, want 2", got)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("wal.fsyncs").Value() - base; got != 3 {
		t.Fatalf("fsyncs after explicit Sync: %d, want 3", got)
	}
}

// benchRecord builds a realistic-sized record: a 64-dim embedding, its
// 64-bit code, and a 30-point trajectory.
func benchRecord(id int) Record {
	emb := make([]float64, 64)
	traj := make([]float64, 60)
	for i := range emb {
		emb[i] = float64(id*31+i) * 0.125
	}
	for i := range traj {
		traj[i] = float64(id*17+i) * 0.5
	}
	return Record{Op: OpAdd, ID: id, Emb: emb, Code: hamming.Code{Bits: 64, Words: []uint64{uint64(id) * 0x9E3779B97F4A7C15}}, Traj: traj}
}

// BenchmarkMutableWALAppend measures the durable-append hot path with
// per-record fsync — the latency every mutation pays when durability is
// configured at its strictest.
func BenchmarkMutableWALAppend(b *testing.B) {
	s, _, err := Open(Options{Dir: b.TempDir(), SnapshotEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		//lint:ignore errcheck benchmark cleanup close
		s.Close()
	}()
	r := benchRecord(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ID = i
		if err := s.Append(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMutableRecovery measures Open on a directory holding a
// snapshot plus a log tail — the restart cost the snapshot cadence
// bounds.
func BenchmarkMutableRecovery(b *testing.B) {
	dir := b.TempDir()
	s, _, err := Open(Options{Dir: dir, SnapshotEvery: -1, SyncEvery: 64})
	if err != nil {
		b.Fatal(err)
	}
	state := &State{Next: 512}
	for id := 0; id < 512; id++ {
		r := benchRecord(id)
		state.Items = append(state.Items, Item{ID: id, Emb: r.Emb, Code: r.Code, Traj: r.Traj})
	}
	if err := s.WriteSnapshot(state); err != nil {
		b.Fatal(err)
	}
	for id := 512; id < 768; id++ {
		if err := s.Append(benchRecord(id)); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, rec, err := Open(Options{Dir: dir, SnapshotEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		if len(rec.Snapshot.Items) != 512 || len(rec.Tail) != 256 {
			b.Fatalf("recovered %d+%d", len(rec.Snapshot.Items), len(rec.Tail))
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
