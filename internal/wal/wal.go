package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"traj2hash/internal/hamming"
)

// Op identifies one mutation kind in the log.
type Op byte

// The mutation kinds a Record can carry.
const (
	// OpAdd records an item insertion under a new global id.
	OpAdd Op = 1
	// OpDelete records a tombstone of an existing id.
	OpDelete Op = 2
	// OpUpdate records an in-place replacement of an item's
	// representation under its existing id.
	OpUpdate Op = 3
)

// String returns the op's mnemonic.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "add"
	case OpDelete:
		return "delete"
	case OpUpdate:
		return "update"
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

// Record is one logged mutation. Delete carries only the id; Add and
// Update carry the item's full representation — embedding, code, and the
// flattened trajectory (x0,y0,x1,y1,…) the facade stores alongside it —
// so replay can rebuild every layer of index state without re-encoding.
type Record struct {
	Op   Op
	ID   int
	Emb  []float64
	Code hamming.Code
	Traj []float64
}

// Frame layout. Every record is framed as
//
//	u32 payload length (LE) | u32 CRC-32/IEEE of payload (LE) | payload
//
// and the payload is
//
//	u8 op | u64 id | u32 nEmb | nEmb × f64 | u32 codeBits |
//	u32 nWords | nWords × u64 | u32 nTraj | nTraj × f64
//
// all little-endian, floats as IEEE-754 bits. The CRC covers the payload
// only; the length prefix is implicitly validated by the bounds check
// against the remaining file size during replay — a garbage length can
// only ever look "torn", never cause an oversized allocation.
const frameHeader = 8

// magic is the log file's first four bytes, versioned so a future format
// change is detectable instead of being misparsed as a torn tail.
var magic = []byte("TWL1")

// appendRecord encodes one framed record onto buf.
func appendRecord(buf []byte, r Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	p := len(buf)
	buf = append(buf, byte(r.Op))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.ID))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Emb)))
	for _, v := range r.Emb {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Code.Bits))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Code.Words)))
	for _, w := range r.Code.Words {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Traj)))
	for _, v := range r.Traj {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	payload := buf[p:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.ChecksumIEEE(payload))
	return buf
}

// decodePayload parses one record payload. Errors here mean a CRC-valid
// payload with impossible structure — corruption the checksum missed, or
// a writer bug — and fail replay loudly rather than truncating silently.
//
//det:replayed recovery re-decodes every logged record; the result must be a pure function of the payload bytes
func decodePayload(p []byte) (Record, error) {
	var r Record
	get32 := func() (uint32, bool) {
		if len(p) < 4 {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(p)
		p = p[4:]
		return v, true
	}
	get64 := func() (uint64, bool) {
		if len(p) < 8 {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(p)
		p = p[8:]
		return v, true
	}
	fail := func() (Record, error) { return Record{}, fmt.Errorf("wal: malformed record payload") }
	if len(p) < 1 {
		return fail()
	}
	r.Op = Op(p[0])
	p = p[1:]
	id, ok := get64()
	if !ok {
		return fail()
	}
	r.ID = int(id)
	nEmb, ok := get32()
	if !ok || int(nEmb)*8 > len(p) {
		return fail()
	}
	if nEmb > 0 {
		r.Emb = make([]float64, nEmb)
		for i := range r.Emb {
			v, _ := get64()
			r.Emb[i] = math.Float64frombits(v)
		}
	}
	bits, ok := get32()
	if !ok {
		return fail()
	}
	r.Code.Bits = int(bits)
	nWords, ok := get32()
	if !ok || int(nWords)*8 > len(p) {
		return fail()
	}
	if nWords > 0 {
		r.Code.Words = make([]uint64, nWords)
		for i := range r.Code.Words {
			w, _ := get64()
			r.Code.Words[i] = w
		}
	}
	nTraj, ok := get32()
	if !ok || int(nTraj)*8 > len(p) {
		return fail()
	}
	if nTraj > 0 {
		r.Traj = make([]float64, nTraj)
		for i := range r.Traj {
			v, _ := get64()
			r.Traj[i] = math.Float64frombits(v)
		}
	}
	if len(p) != 0 {
		return fail()
	}
	return r, nil
}

// Replayed is the outcome of parsing a log file: the decoded records,
// whether the file ended in a torn (incomplete or checksum-failing)
// record, and the byte size of the valid prefix — the offset a recovery
// truncates the file to when Torn is set.
type Replayed struct {
	Records []Record
	Torn    bool
	Valid   int64
}

// parseLog decodes a whole log image. A missing or zero-length magic
// means an empty log (fresh file); a wrong magic is corruption. Framing
// violations at the END of the file — a short frame header, a length
// prefix pointing past EOF, or a CRC mismatch — are the torn-tail
// signature of a crash mid-append and mark the file truncatable at the
// last valid record; a CRC-valid payload that fails structural decoding
// is reported as a hard error instead.
//
//det:replayed crash-recovery parity depends on replaying the same records from the same log image every time
func parseLog(data []byte) (Replayed, error) {
	var out Replayed
	if len(data) == 0 {
		return out, nil
	}
	if len(data) < len(magic) {
		// A crash during the very first write can tear even the magic;
		// the valid prefix is empty and the header gets rewritten.
		out.Torn = true
		return out, nil
	}
	if string(data[:len(magic)]) != string(magic) {
		return out, fmt.Errorf("wal: bad log magic (not a %s log)", magic)
	}
	off := int64(len(magic))
	out.Valid = off
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return out, nil
		}
		if len(rest) < frameHeader {
			out.Torn = true
			return out, nil
		}
		n := int64(binary.LittleEndian.Uint32(rest))
		sum := binary.LittleEndian.Uint32(rest[4:])
		if n > int64(len(rest))-frameHeader {
			out.Torn = true
			return out, nil
		}
		payload := rest[frameHeader : frameHeader+n]
		if crc32.ChecksumIEEE(payload) != sum {
			out.Torn = true
			return out, nil
		}
		r, err := decodePayload(payload)
		if err != nil {
			return out, fmt.Errorf("wal: record at offset %d: %w", off, err)
		}
		out.Records = append(out.Records, r)
		off += frameHeader + n
		out.Valid = off
	}
}
