package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"traj2hash/internal/obs"
)

// Log and snapshot file names inside a store directory.
const (
	// LogName is the append log file.
	LogName = "wal.log"
	// SnapshotName is the latest complete snapshot.
	SnapshotName = "snapshot.gob"
)

// DefaultSnapshotEvery is the snapshot cadence (in appended records)
// used when Options.SnapshotEvery is zero.
const DefaultSnapshotEvery = 1024

// Options configures a Store.
type Options struct {
	// Dir is the directory holding the log and snapshots; created if
	// missing.
	Dir string
	// SyncEvery is the group-fsync interval: the log is fsynced after
	// every SyncEvery appends (default 1 — every mutation durable before
	// its call returns). Larger values trade the durability of the last
	// few mutations for throughput; recovery still replays cleanly, it
	// just sees a shorter durable prefix.
	SyncEvery int
	// SnapshotEvery is the snapshot cadence in appended records: after
	// this many appends SnapshotDue reports true and the owner is
	// expected to write a snapshot, which resets the log. 0 means the
	// default (DefaultSnapshotEvery); negative disables cadence-driven
	// snapshots (WriteSnapshot still works).
	SnapshotEvery int
	// Metrics, when non-nil, receives the store's counters: wal.appends,
	// wal.fsyncs, wal.snapshots, and on Open wal.recoveries plus
	// wal.torn_tails. Nil disables instrumentation (nil-safe no-ops).
	Metrics *obs.Registry
	// FS is the filesystem seam (default OSFS). Tests inject
	// faultinject's wrapper here.
	FS VFS
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 1
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = DefaultSnapshotEvery
	}
	if o.FS == nil {
		o.FS = OSFS{}
	}
	return o
}

// Recovered is what Open found on disk: the latest complete snapshot
// (nil if none was ever written), the log records appended after it in
// append order, and whether the log ended in a torn record — a crash
// mid-append — that recovery truncated away. The caller rebuilds its
// in-memory state from Snapshot, then re-applies Tail idempotently.
type Recovered struct {
	Snapshot *State
	Tail     []Record
	TornTail bool
}

// Store is the durability engine of an index: one append log plus
// periodic snapshots in a directory. All methods are safe for concurrent
// use; appends are serialized by an internal mutex, which is also what
// makes the fixed temp-file name of the snapshot writer safe.
//
// The write protocol its owner follows: apply the mutation in memory,
// Append the record (group-fsynced), and when SnapshotDue, capture the
// state and WriteSnapshot it — which resets the log, bounding replay
// work by the snapshot cadence.
type Store struct {
	opts Options
	fs   VFS
	dir  string

	mu        sync.Mutex
	f         File
	buf       []byte
	pending   int // appends since the last fsync
	sinceSnap int // appends since the last snapshot

	appends   *obs.Counter // wal.appends
	fsyncs    *obs.Counter // wal.fsyncs
	snapshots *obs.Counter // wal.snapshots
}

// Open recovers whatever a previous run left in dir and returns a store
// ready for appends. Recovery is: load the latest snapshot if present,
// parse the log, truncate a torn tail (counted on wal.torn_tails), and
// reopen the log for appending. Every Open of a non-empty directory
// counts one wal.recoveries.
func Open(opts Options) (*Store, *Recovered, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("wal: Options.Dir is required")
	}
	fs := opts.FS
	if err := fs.MkdirAll(opts.Dir); err != nil {
		return nil, nil, fmt.Errorf("wal: creating %s: %w", opts.Dir, err)
	}
	rec := &Recovered{}
	snapPath := filepath.Join(opts.Dir, SnapshotName)
	snap, err := loadSnapshot(fs, snapPath)
	switch {
	case err == nil:
		rec.Snapshot = snap
	case errors.Is(err, os.ErrNotExist):
	default:
		return nil, nil, err
	}
	logPath := filepath.Join(opts.Dir, LogName)
	data, err := fs.ReadFile(logPath)
	hadLog := true
	switch {
	case err == nil:
	case errors.Is(err, os.ErrNotExist):
		hadLog = false
		data = nil
	default:
		return nil, nil, err
	}
	parsed, err := parseLog(data)
	if err != nil {
		return nil, nil, err
	}
	rec.Tail = parsed.Records
	rec.TornTail = parsed.Torn
	if parsed.Torn {
		if err := fs.Truncate(logPath, parsed.Valid); err != nil {
			return nil, nil, fmt.Errorf("wal: truncating torn tail of %s: %w", logPath, err)
		}
	}
	s := &Store{
		opts:      opts,
		fs:        fs,
		dir:       opts.Dir,
		appends:   opts.Metrics.Counter("wal.appends"),
		fsyncs:    opts.Metrics.Counter("wal.fsyncs"),
		snapshots: opts.Metrics.Counter("wal.snapshots"),
	}
	if err := s.openLog(parsed.Valid == 0); err != nil {
		return nil, nil, err
	}
	if hadLog || rec.Snapshot != nil {
		opts.Metrics.Counter("wal.recoveries").Inc()
	}
	if rec.TornTail {
		opts.Metrics.Counter("wal.torn_tails").Inc()
	}
	return s, rec, nil
}

// openLog opens (or reopens) the append handle, writing and syncing the
// magic header when the file is empty. Callers hold mu (or own the store
// exclusively, as Open does).
func (s *Store) openLog(empty bool) error {
	f, err := s.fs.OpenAppend(filepath.Join(s.dir, LogName))
	if err != nil {
		return err
	}
	if empty {
		if _, err := f.Write(magic); err != nil {
			//lint:ignore errcheck the write error takes precedence over the cleanup close
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			//lint:ignore errcheck the sync error takes precedence over the cleanup close
			f.Close()
			return err
		}
	}
	s.f = f
	return nil
}

// Append logs one mutation record. The record is durable once this (or
// a later) call has fsynced — with SyncEvery == 1, immediately; with
// group fsync, after at most SyncEvery-1 further appends or an explicit
// Sync. An append error leaves the store unusable for further appends
// (the log position is undefined); the owner should surface it and
// rebuild via Open.
func (s *Store) Append(r Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("wal: store is closed")
	}
	s.buf = appendRecord(s.buf[:0], r)
	if _, err := s.f.Write(s.buf); err != nil {
		return fmt.Errorf("wal: appending %s record for id %d: %w", r.Op, r.ID, err)
	}
	s.appends.Inc()
	s.pending++
	s.sinceSnap++
	if s.pending >= s.opts.SyncEvery {
		return s.syncLocked()
	}
	return nil
}

// Sync forces any appends still buffered by the group-fsync window to
// stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil || s.pending == 0 {
		return nil
	}
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	s.fsyncs.Inc()
	s.pending = 0
	return nil
}

// SnapshotDue reports whether enough records have been appended since
// the last snapshot to warrant a new one.
func (s *Store) SnapshotDue() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.opts.SnapshotEvery > 0 && s.sinceSnap >= s.opts.SnapshotEvery
}

// WriteSnapshot atomically persists state and resets the log. The
// ordering is the recovery contract: the snapshot is fully durable
// (tmp + fsync + rename + dir sync) BEFORE the log is truncated, so a
// crash anywhere in between leaves the new snapshot plus a stale log —
// which replays idempotently — never a state only partially captured.
func (s *Store) WriteSnapshot(state *State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("wal: store is closed")
	}
	if s.pending > 0 {
		if err := s.syncLocked(); err != nil {
			return err
		}
	}
	if err := saveSnapshot(s.fs, filepath.Join(s.dir, SnapshotName), state); err != nil {
		return err
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("wal: closing log before reset: %w", err)
	}
	s.f = nil
	if err := s.fs.Truncate(filepath.Join(s.dir, LogName), 0); err != nil {
		return fmt.Errorf("wal: resetting log: %w", err)
	}
	if err := s.openLog(true); err != nil {
		return err
	}
	s.sinceSnap = 0
	s.pending = 0
	s.snapshots.Inc()
	return nil
}

// Close syncs pending appends and releases the log handle. The store is
// unusable afterwards; reopen with Open.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	var firstErr error
	if s.pending > 0 {
		firstErr = s.syncLocked()
	}
	if err := s.f.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	s.f = nil
	return firstErr
}
