package wal

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"testing"

	"traj2hash/internal/hamming"
)

// fuzzRecord is a representative record for seeding the fuzz corpora:
// every payload section (embedding, code words, trajectory) non-empty.
func fuzzRecord() Record {
	emb := []float64{0.5, -1.25, 3}
	return Record{
		Op:   OpAdd,
		ID:   7,
		Emb:  emb,
		Code: hamming.FromSigns(emb),
		Traj: []float64{0, 0, 1, 1, 2, 4},
	}
}

// FuzzReadFrame throws arbitrary log images at parseLog and checks the
// torn-tail contract that recovery truncation depends on: parsing never
// panics, a clean parse consumes the whole file, and the reported valid
// prefix always re-parses to the same records with no torn flag — if it
// did not, truncating to Valid after a crash could drop or invent
// records. Decoded records must also re-encode byte-identically, which
// is the frame codec's half of the determinism contracts (DESIGN.md
// "Determinism contracts").
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("TWL"))  // crash tore even the magic
	f.Add([]byte("TWL1")) // empty log
	f.Add([]byte("XXXX\x01\x02\x03\x04\x05\x06\x07\x08"))
	valid := appendRecord(append([]byte(nil), magic...), fuzzRecord())
	valid = appendRecord(valid, Record{Op: OpDelete, ID: 7})
	f.Add(append([]byte(nil), valid...))
	f.Add(append([]byte(nil), valid[:len(valid)-3]...)) // torn mid-frame
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0xff // CRC failure on the last frame
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := parseLog(data)
		if err != nil {
			return // bad magic or structural corruption: a loud error, never a panic
		}
		if out.Valid < 0 || out.Valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside file of %d bytes", out.Valid, len(data))
		}
		if !out.Torn && out.Valid != int64(len(data)) {
			t.Fatalf("clean parse left %d unread byte(s)", int64(len(data))-out.Valid)
		}
		// Truncation safety: the valid prefix is what recovery keeps, so
		// it must re-parse cleanly to exactly the records reported now.
		pre, err := parseLog(data[:out.Valid])
		if err != nil {
			t.Fatalf("valid prefix failed to re-parse: %v", err)
		}
		if pre.Torn {
			t.Fatalf("valid prefix of %d bytes re-parsed as torn", out.Valid)
		}
		if pre.Valid != out.Valid || len(pre.Records) != len(out.Records) {
			t.Fatalf("valid prefix re-parse: %d records/%d bytes, want %d/%d",
				len(pre.Records), pre.Valid, len(out.Records), out.Valid)
		}
		// Codec determinism: re-encoding the decoded records must rebuild
		// the valid prefix byte for byte (the framing has one canonical
		// encoding per record).
		buf := append([]byte(nil), magic...)
		for _, r := range out.Records {
			buf = appendRecord(buf, r)
		}
		if out.Valid >= int64(len(magic)) && !bytes.Equal(buf, data[:out.Valid]) {
			t.Fatalf("re-encoding %d decoded record(s) did not reproduce the valid prefix", len(out.Records))
		}
	})
}

// FuzzLoadSnapshot throws arbitrary snapshot images at loadSnapshot:
// malformed bytes must produce an error, never a panic, and any state
// that does decode must gob-encode deterministically — two independent
// re-encodes yield identical bytes, the property the byte-identity
// suite (TestSnapshotEncodeDeterministic) pins for real states.
func FuzzLoadSnapshot(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a gob stream"))
	emb := []float64{1, -1}
	s := &State{Next: 3, Items: []Item{
		{ID: 0, Emb: emb, Code: hamming.FromSigns(emb), Traj: []float64{0, 0, 1, 1}},
		{ID: 2, Emb: emb, Code: hamming.FromSigns(emb), Traj: []float64{5, 5}},
	}}
	var seed bytes.Buffer
	if err := gob.NewEncoder(&seed).Encode(s); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), seed.Bytes()...))
	f.Add(append([]byte(nil), seed.Bytes()[:seed.Len()/2]...)) // truncated stream

	dir := f.TempDir()
	path := filepath.Join(dir, SnapshotName)
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := loadSnapshot(OSFS{}, path)
		if err != nil {
			return // corruption is an error, never a panic
		}
		if got == nil {
			t.Fatal("loadSnapshot returned nil state with nil error")
		}
		var a, b bytes.Buffer
		if err := gob.NewEncoder(&a).Encode(got); err != nil {
			t.Fatalf("re-encoding decoded state: %v", err)
		}
		if err := gob.NewEncoder(&b).Encode(got); err != nil {
			t.Fatalf("re-encoding decoded state: %v", err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatal("two gob encodes of the same decoded state differ")
		}
	})
}
