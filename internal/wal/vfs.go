// Package wal is the durability layer of the index: a length-prefixed,
// CRC-checksummed write-ahead log of mutations (Add/Delete/Update) with
// group fsync, periodic gob snapshots written with the atomic
// tmp+fsync+rename+dir-sync pattern (the same discipline as the training
// checkpoints, see internal/core SaveCheckpointFile), and a recovery
// path that loads the latest snapshot and replays the log tail,
// truncating a torn final record.
//
// All file I/O goes through the VFS seam so internal/faultinject can
// interpose deterministic faults — short writes, failed renames, failed
// syncs, and whole-process "crashes" — on real files in a test dir. The
// recovery-parity suite (recovery_test.go) is built on that seam.
package wal

import (
	"errors"
	"io"
	"os"
	"syscall"
)

// File is the write side of one open log or snapshot file. Reads go
// through VFS.ReadFile instead — recovery always consumes whole files,
// so a streaming read interface would only widen the fault surface.
type File interface {
	io.Writer
	io.Closer
	// Sync forces written data to stable storage (fsync).
	Sync() error
}

// VFS is the filesystem seam of the package: every operation the log and
// snapshot code performs, and nothing more. The zero-dependency OS
// implementation is OSFS; internal/faultinject wraps any VFS with a
// deterministic fault schedule.
type VFS interface {
	// MkdirAll creates a directory (and parents) if missing.
	MkdirAll(dir string) error
	// ReadFile returns a file's full contents; a missing file reports an
	// error satisfying errors.Is(err, os.ErrNotExist).
	ReadFile(path string) ([]byte, error)
	// Create opens path for writing, truncating it if it exists.
	Create(path string) (File, error)
	// OpenAppend opens path for appending, creating it if missing.
	OpenAppend(path string) (File, error)
	// Rename atomically replaces newPath with oldPath.
	Rename(oldPath, newPath string) error
	// Remove deletes a file; removing a missing file is an error.
	Remove(path string) error
	// Truncate cuts a file to the given size.
	Truncate(path string, size int64) error
	// SyncDir fsyncs a directory so a completed rename in it is durable.
	// Filesystems that cannot sync directories are tolerated.
	SyncDir(dir string) error
}

// OSFS is the production VFS: direct os package calls, with the
// directory-sync tolerance the checkpoint code established (EINVAL /
// ENOTSUP from syncing a directory are swallowed, real I/O errors are
// returned).
type OSFS struct{}

// MkdirAll implements VFS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// ReadFile implements VFS.
func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// Create implements VFS.
func (OSFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

// OpenAppend implements VFS.
func (OSFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
}

// Rename implements VFS.
func (OSFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

// Remove implements VFS.
func (OSFS) Remove(path string) error { return os.Remove(path) }

// Truncate implements VFS.
func (OSFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

// SyncDir implements VFS.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if serr != nil && (errors.Is(serr, syscall.EINVAL) || errors.Is(serr, syscall.ENOTSUP)) {
		serr = nil
	}
	if serr != nil {
		//lint:ignore errcheck the sync error takes precedence over the cleanup close
		d.Close()
		return serr
	}
	return d.Close()
}
