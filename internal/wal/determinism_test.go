package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"traj2hash/internal/hamming"
)

// snapState builds a snapshot state from scratch on every call — two
// calls share no memory, so identical encodes can only come from the
// encoding being a pure function of the logical state, which is exactly
// what the det rules enforce on saveSnapshot (//det:replayed).
func snapState() *State {
	s := &State{Next: 5}
	for id := 0; id < 5; id++ {
		if id == 2 { // a deleted id: represented by absence
			continue
		}
		emb := []float64{float64(id) + 0.5, -float64(id), 1.25}
		s.Items = append(s.Items, Item{
			ID:   id,
			Emb:  emb,
			Code: hamming.FromSigns(emb),
			Traj: []float64{float64(id), 0, float64(id), 1},
		})
	}
	return s
}

func saveBytes(t *testing.T, path string, s *State) []byte {
	t.Helper()
	if err := saveSnapshot(OSFS{}, path, s); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSnapshotEncodeDeterministic pins the byte-identity contract the
// detmaprange/detunordered rules protect: encoding the same logical
// state must yield identical bytes whether the state was built fresh,
// built fresh a second time, or recovered through a WAL replay
// round-trip. If an unordered structure ever leaks into State, this
// test fails before crash-recovery parity does.
func TestSnapshotEncodeDeterministic(t *testing.T) {
	dir := t.TempDir()
	a := saveBytes(t, filepath.Join(dir, "a.gob"), snapState())
	b := saveBytes(t, filepath.Join(dir, "b.gob"), snapState())
	if !bytes.Equal(a, b) {
		t.Fatalf("two independently-built states encoded to different bytes (%d vs %d)", len(a), len(b))
	}

	// Decode → re-encode round trip.
	got, err := loadSnapshot(OSFS{}, filepath.Join(dir, "a.gob"))
	if err != nil {
		t.Fatal(err)
	}
	c := saveBytes(t, filepath.Join(dir, "c.gob"), got)
	if !bytes.Equal(a, c) {
		t.Fatal("decode → re-encode changed the snapshot bytes")
	}

	// WAL replay round trip: persist the state through a Store, crash
	// (close), recover, and re-encode what recovery handed back.
	wdir := filepath.Join(dir, "wal")
	store, _, err := Open(Options{Dir: wdir})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.WriteSnapshot(snapState()); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	store2, rec, err := Open(Options{Dir: wdir})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if rec.Snapshot == nil {
		t.Fatal("recovery found no snapshot")
	}
	d := saveBytes(t, filepath.Join(dir, "d.gob"), rec.Snapshot)
	if !bytes.Equal(a, d) {
		t.Fatal("snapshot re-encoded after WAL recovery differs from the original encode")
	}
}
