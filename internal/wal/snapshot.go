package wal

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"path/filepath"

	"traj2hash/internal/hamming"
)

// Item is one live item in a snapshot: its original global id and the
// full representation replay needs to rebuild every index layer.
type Item struct {
	ID   int
	Emb  []float64
	Code hamming.Code
	Traj []float64
}

// State is a point-in-time image of the index: the next id the engine
// will assign and the live items in ascending id order. Ids missing from
// the sequence are deleted — tombstones are represented by absence, so a
// snapshot's size is proportional to the live set, not the mutation
// history.
type State struct {
	Next  int
	Items []Item
}

// saveSnapshot writes state atomically: gob-encode into a temp file in
// the same directory, fsync it, rename over path, and sync the parent
// directory — the checkpoint discipline (internal/core
// SaveCheckpointFile) that guarantees a crash at any point leaves either
// the old complete snapshot or the new complete snapshot, never a torn
// one. The temp name is fixed (single-writer store, serialized by the
// Store mutex), which keeps the fault-injection schedule deterministic.
//
//det:replayed snapshot bytes are compared across independent encodes by the byte-identity suite; encoding must be state-pure
func saveSnapshot(fs VFS, path string, s *State) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return fmt.Errorf("wal: encoding snapshot: %w", err)
	}
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		//lint:ignore errcheck the write error takes precedence over the cleanup close
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		//lint:ignore errcheck the sync error takes precedence over the cleanup close
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		return err
	}
	return fs.SyncDir(filepath.Dir(path))
}

// loadSnapshot reads and decodes a snapshot image. The caller handles
// os.ErrNotExist from the read as "no snapshot yet".
//
//det:replayed recovery rebuilds index state from this decode; it must be a pure function of the snapshot bytes
func loadSnapshot(fs VFS, path string) (*State, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s State
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		return nil, fmt.Errorf("wal: decoding snapshot %s: %w", path, err)
	}
	return &s, nil
}
