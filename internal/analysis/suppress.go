package analysis

import (
	"fmt"
	"go/token"
	"os"
	"strings"
)

// DirectiveRule is the pseudo-rule name under which malformed or
// unknown-rule //lint: directives are reported. It cannot itself be
// suppressed.
const DirectiveRule = "directive"

const (
	ignorePrefix     = "lint:ignore"
	fileIgnorePrefix = "lint:file-ignore"
)

// suppression is one parsed, well-formed //lint: directive.
type suppression struct {
	file     string
	line     int    // line the directive comment starts on
	rule     string // rule being suppressed
	fileWide bool   // true for a file-wide directive
	pos, end token.Pos
	used     bool // matched at least one raw diagnostic this run
}

// suppressionSet holds every well-formed directive of one package.
type suppressionSet struct {
	byFile map[string][]*suppression
}

// suppresses reports whether d is covered by a directive: a file-wide
// ignore for its rule, or a line ignore on the diagnostic's own line or
// the line directly above it (so a directive may trail the flagged
// statement or sit on its own line immediately before it). Every
// matching directive is marked used — the record the staleness scan
// reads afterwards.
func (s suppressionSet) suppresses(d Diagnostic) bool {
	if d.Rule == DirectiveRule {
		return false
	}
	hit := false
	for _, sup := range s.byFile[d.File] {
		if sup.rule != d.Rule {
			continue
		}
		if sup.fileWide || sup.line == d.Line || sup.line == d.Line-1 {
			sup.used = true
			hit = true
		}
	}
	return hit
}

// stale returns a diagnostic for every directive that suppressed nothing:
// the rule it names ran (it is in the selected set) and produced no
// finding the directive covers, so the suppression is dead weight — and,
// worse, camouflage for a future real finding at the same site. The
// report carries a fix deleting the directive (the whole line when it
// stands alone). Directives naming unselected rules are skipped: a
// -rules filter must not condemn suppressions it never exercised.
func (s suppressionSet) stale(pkg *Package, selected map[string]bool) []Diagnostic {
	var diags []Diagnostic
	for _, sups := range s.byFile {
		for _, sup := range sups {
			if sup.used || !selected[sup.rule] {
				continue
			}
			pos := pkg.Fset.Position(sup.pos)
			var fix *Fix
			if src, err := os.ReadFile(sup.file); err == nil {
				edit := lineEditIn(pkg.Fset, sup.pos, src)
				start := pkg.Fset.Position(sup.pos).Offset
				// Delete the whole line only when the directive stands
				// alone on it; a trailing directive loses just its span.
				if strings.TrimSpace(string(src[edit.Start:start])) != "" {
					edit = Edit{File: sup.file, Start: start, End: pkg.Fset.Position(sup.end).Offset}
				}
				fix = &Fix{Message: "delete the stale directive", Edits: []Edit{edit}}
			}
			diags = append(diags, Diagnostic{
				Pos: pos, File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Rule: DirectiveRule, Fix: fix,
				Message: fmt.Sprintf("stale suppression: no %s finding here for this directive to suppress; delete it", sup.rule),
			})
		}
	}
	return diags
}

// collectSuppressions parses every //lint: directive in the package,
// returning the set of well-formed suppressions plus diagnostics for the
// malformed ones: a directive missing its rule or reason, or naming a
// rule that is not in the suite. Validation runs against the full rule
// registry, so a -rules filter never turns a valid suppression into a
// false "unknown rule" report.
func collectSuppressions(pkg *Package) (suppressionSet, []Diagnostic) {
	known := map[string]bool{}
	for _, r := range Rules() {
		known[r.Name] = true
	}
	set := suppressionSet{byFile: map[string][]*suppression{}}
	var diags []Diagnostic
	report := func(pos token.Position, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos: pos, File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Rule: DirectiveRule, Message: fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := directiveText(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fileWide := false
				var rest string
				switch {
				case strings.HasPrefix(text, fileIgnorePrefix):
					fileWide = true
					rest = strings.TrimPrefix(text, fileIgnorePrefix)
				case strings.HasPrefix(text, ignorePrefix):
					rest = strings.TrimPrefix(text, ignorePrefix)
				default:
					report(pos, "unknown //lint: directive %q (want lint:ignore or lint:file-ignore)", text)
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(pos, "malformed directive: want //%s <rule> <reason>", directiveName(fileWide))
					continue
				}
				rule := fields[0]
				if len(fields) < 2 {
					report(pos, "suppression of %q needs a written reason: //%s %s <reason>",
						rule, directiveName(fileWide), rule)
					continue
				}
				if !known[rule] {
					report(pos, "suppression names unknown rule %q (have %v); it has no effect",
						rule, RuleNames())
					continue
				}
				set.byFile[pos.Filename] = append(set.byFile[pos.Filename], &suppression{
					file: pos.Filename, line: pos.Line, rule: rule, fileWide: fileWide,
					pos: c.Pos(), end: c.End(),
				})
			}
		}
	}
	return set, diags
}

// directiveText extracts the "lint:..." payload from a comment, if any.
func directiveText(comment string) (string, bool) {
	var body string
	switch {
	case strings.HasPrefix(comment, "//"):
		body = comment[2:]
	case strings.HasPrefix(comment, "/*"):
		body = strings.TrimSuffix(comment[2:], "*/")
	}
	body = strings.TrimSpace(body)
	if strings.HasPrefix(body, "lint:") {
		return body, true
	}
	return "", false
}

func directiveName(fileWide bool) string {
	if fileWide {
		return fileIgnorePrefix
	}
	return ignorePrefix
}
