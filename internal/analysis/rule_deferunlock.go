package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ruleDeferUnlock enforces the lock discipline of the sharded engine and
// the public Index facade: a call to mu.Lock() / mu.RLock() on a sync
// mutex must be paired with a defer mu.Unlock() / mu.RUnlock() on the
// same receiver in the same function (function literals count as their
// own scope). Inline unlocks leak the lock on any panic between Lock and
// Unlock — which, with the engine's per-shard RWMutexes, deadlocks every
// subsequent query against that shard. Hot paths that deliberately keep
// the critical section narrower than the function carry a //lint:ignore
// with the reason.
var ruleDeferUnlock = &Rule{
	Name: "deferunlock",
	Doc:  "Lock()/RLock() must pair with defer Unlock()/RUnlock() in the same function (panic-safe lock discipline)",
	Fix:  "replace the inline mu.Unlock() with `defer mu.Unlock()` directly after the Lock when the critical section is the rest of the function",
	Run:  runDeferUnlock,
}

var unlockFor = map[string]string{
	"Lock":  "Unlock",
	"RLock": "RUnlock",
}

func runDeferUnlock(p *Pass) {
	p.inspect(func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				checkLockScope(p, fn.Body)
			}
		case *ast.FuncLit:
			// The literal is its own lock scope; the walk continues into
			// its body so literals nested inside it get their own check.
			checkLockScope(p, fn.Body)
		}
		return true
	})
}

// checkLockScope inspects one function body (excluding nested function
// literals) for Lock/RLock calls and their deferred counterparts. A
// finding whose inline unlock is mechanically convertible (the critical
// section runs to the end of the function: nothing after the inline
// unlock touches the receiver again) carries a suggested fix — delete
// the inline unlock and insert `defer recv.Unlock()` after the lock —
// which `trajlint -fix` applies.
func checkLockScope(p *Pass, body *ast.BlockStmt) {
	type lockCall struct {
		stmt   *ast.ExprStmt
		call   *ast.CallExpr
		recv   string // receiver expression, e.g. "sh.mu"
		method string // Lock or RLock
	}
	type unlockCall struct {
		stmt   *ast.ExprStmt
		recv   string
		method string // Unlock or RUnlock
	}
	var locks []lockCall
	var inlineUnlocks []unlockCall
	deferred := map[string]bool{} // "recv\x00method" of deferred unlocks

	walkShallow(body, func(n ast.Node) {
		var call *ast.CallExpr
		var stmt *ast.ExprStmt
		isDefer := false
		switch s := n.(type) {
		case *ast.ExprStmt:
			stmt = s
			call, _ = s.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			call, isDefer = s.Call, true
		default:
			return
		}
		if call == nil {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || len(call.Args) != 0 {
			return
		}
		name := sel.Sel.Name
		switch name {
		case "Lock", "RLock":
			if !isDefer && isMutexRecv(p, sel.X) {
				locks = append(locks, lockCall{stmt: stmt, call: call, recv: types.ExprString(sel.X), method: name})
			}
		case "Unlock", "RUnlock":
			if isDefer {
				deferred[types.ExprString(sel.X)+"\x00"+name] = true
			} else if stmt != nil {
				inlineUnlocks = append(inlineUnlocks, unlockCall{stmt: stmt, recv: types.ExprString(sel.X), method: name})
			}
		}
	})

	// buildFix constructs the mechanical defer-conversion when it is
	// provably safe: the lock is a plain statement, exactly one later
	// inline unlock of the same receiver exists in the scope, and nothing
	// after that unlock mentions the receiver again (so extending the
	// critical section to the end of the function cannot self-deadlock).
	// Returns nil otherwise — the finding still reports, fix-less.
	buildFix := func(l lockCall) *Fix {
		if l.stmt == nil {
			return nil
		}
		unlockName := unlockFor[l.method]
		var match *unlockCall
		for i := range inlineUnlocks {
			u := &inlineUnlocks[i]
			if u.recv != l.recv || u.method != unlockName || u.stmt.Pos() <= l.stmt.End() {
				continue
			}
			if match != nil {
				return nil // ambiguous: two candidate unlocks
			}
			match = u
		}
		if match == nil {
			return nil
		}
		// Nothing after the unlock may mention the receiver (it would run
		// with the lock now held, or re-lock it).
		mentioned := false
		walkShallow(body, func(n ast.Node) {
			if n.Pos() > match.stmt.End() {
				if e, ok := n.(ast.Expr); ok && types.ExprString(e) == l.recv {
					mentioned = true
				}
			}
		})
		if mentioned {
			return nil
		}
		src, err := p.FileSource(p.Pkg.Fset.Position(l.stmt.Pos()).Filename)
		if err != nil {
			return nil
		}
		insert := p.editAt(l.stmt.End(), l.stmt.End(), "\ndefer "+l.recv+"."+unlockName+"()")
		remove := p.lineEditAt(match.stmt.Pos(), src)
		// Only delete the whole line when the statement is alone on it.
		stmtStart := p.Pkg.Fset.Position(match.stmt.Pos()).Offset
		stmtEnd := p.Pkg.Fset.Position(match.stmt.End()).Offset
		line := strings.TrimSpace(string(src[remove.Start:remove.End]))
		if line != strings.TrimSpace(string(src[stmtStart:stmtEnd])) {
			remove = p.editAt(match.stmt.Pos(), match.stmt.End(), "")
		}
		return &Fix{
			Message: "convert the inline " + l.recv + "." + unlockName + "() to a defer directly after the " + l.method,
			Edits:   []Edit{insert, remove},
		}
	}

	for _, l := range locks {
		if deferred[l.recv+"\x00"+unlockFor[l.method]] {
			continue
		}
		p.ReportFix(l.call.Pos(), buildFix(l),
			"%s.%s() without a matching defer %s.%s() in the same function; a panic in the critical section leaks the lock",
			l.recv, l.method, l.recv, unlockFor[l.method])
	}
}

// walkShallow visits every node of body except the bodies of nested
// function literals, which form their own lock scopes.
func walkShallow(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// isMutexRecv reports whether the receiver expression is (when type
// information resolved) a sync.Mutex, sync.RWMutex, sync.Locker, or a
// type embedding one; without type info it conservatively assumes yes —
// the Lock/RLock method-name pair is already a strong signal.
func isMutexRecv(p *Pass, recv ast.Expr) bool {
	t := p.Pkg.Info.TypeOf(recv)
	if t == nil {
		return true
	}
	for {
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex":
				return true
			}
		}
	}
	// Interfaces (sync.Locker) and embedders: accept anything whose
	// method set carries Lock/Unlock.
	if t != nil {
		ms := types.NewMethodSet(types.NewPointer(t))
		hasLock, hasUnlock := false, false
		for i := 0; i < ms.Len(); i++ {
			switch ms.At(i).Obj().Name() {
			case "Lock", "RLock":
				hasLock = true
			case "Unlock", "RUnlock":
				hasUnlock = true
			}
		}
		return hasLock && hasUnlock
	}
	return true
}
