package analysis

import (
	"go/ast"
	"go/types"
)

// ruleHotpathBCE enforces the bounds-check half of the //perf:hotpath
// contract: inside the loops of a marked function, no bounds check may
// survive the compiler's bounds-check-elimination pass ("Found
// IsInBounds" / "Found IsSliceInBounds" from -d=ssa/check_bce). A
// surviving check in a scan loop is a branch per element on the hottest
// instruction stream in the system.
//
// The report names the index expression at the diagnostic's position
// and suggests the standard hoist: prove the bound once before the loop
// (`_ = s[len(s)-1]`, or reslice `b = b[:len(a)]` when two slices are
// indexed in lockstep) so the prover can discharge the per-iteration
// checks. The hoist is suggested, not auto-applied: inserting a bounds
// assertion changes where an out-of-range panic fires, which is a
// semantic decision the author must make.
//
// Checks outside loops are ignored — a one-time check at function entry
// costs nothing measurable; the contract is about per-element work.
var ruleHotpathBCE = &Rule{
	Name: "hotpathbce",
	Doc:  "//perf:hotpath loop bodies are bounds-check-free under the compiler's BCE pass",
	Fix:  "hoist the bound proof above the loop: `_ = s[len(s)-1]` for a single slice, or `b = b[:len(a)]` before indexing b by a's indices",
	Run:  runHotpathBCE,
}

func runHotpathBCE(p *Pass) {
	hot := hotpathFuncs(p.Pkg)
	if len(hot) == 0 {
		return
	}
	set := compilerDiags(p.Pkg)
	if set.err != nil {
		return
	}
	for _, h := range hot {
		if h.decl.Body == nil {
			continue
		}
		loops := loopSpans(p.Pkg, h.decl.Body)
		seen := map[linecol]bool{}
		for _, d := range diagsInDecl(p.Pkg, set, h.decl) {
			if !d.IsBoundsCheck() {
				continue
			}
			at := linecol{d.Line, d.Col}
			if seen[at] || !inSpans(loops, at) {
				continue
			}
			seen[at] = true
			expr := indexExprAt(p.Pkg, h.decl, at)
			what := "an index expression"
			if expr != "" {
				what = expr
			}
			p.Reportf(diagPos(p.Pkg, h.decl, d),
				"hot loop in %s keeps a bounds check on %s; hoist the proof above the loop (e.g. `_ = s[len(s)-1]`, or reslice `b = b[:len(a)]` for lockstep indexing)",
				h.decl.Name.Name, what)
		}
	}
}

// loopSpans collects the (line, col) spans of every for/range body in
// the function, including nested ones.
func loopSpans(pkg *Package, body *ast.BlockStmt) [][2]linecol {
	var spans [][2]linecol
	add := func(n ast.Node) {
		a := pkg.Fset.Position(n.Pos())
		b := pkg.Fset.Position(n.End())
		spans = append(spans, [2]linecol{{a.Line, a.Column}, {b.Line, b.Column}})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			add(n.Body)
		case *ast.RangeStmt:
			add(n.Body)
		}
		return true
	})
	return spans
}

func inSpans(spans [][2]linecol, p linecol) bool {
	for _, s := range spans {
		if !p.before(s[0]) && !s[1].before(p) {
			return true
		}
	}
	return false
}

// indexExprAt renders the innermost index or slice expression enclosing
// the diagnostic position, for a finding message that names the actual
// access ("b.Words[i]") instead of a bare position. Empty when no index
// expression encloses the position (a check attributed to an inlined
// call, say).
func indexExprAt(pkg *Package, decl *ast.FuncDecl, at linecol) string {
	var best ast.Expr
	ast.Inspect(decl, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.IndexExpr, *ast.SliceExpr:
			a := pkg.Fset.Position(n.Pos())
			b := pkg.Fset.Position(n.End())
			from := linecol{a.Line, a.Column}
			to := linecol{b.Line, b.Column}
			if !at.before(from) && !to.before(at) {
				best = n.(ast.Expr) // innermost wins: Inspect descends
			}
		}
		return true
	})
	if best == nil {
		return ""
	}
	return types.ExprString(best)
}
