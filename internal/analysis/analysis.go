// Package analysis is a small, stdlib-only static-analysis framework plus
// the repo-specific rule suite behind cmd/trajlint. It loads packages with
// go/parser and go/types (no golang.org/x/tools dependency — the repo is
// stdlib-only by contract, and this package machine-checks that contract,
// so it must not violate it), walks the syntax trees, and emits
// "file:line:col rule: message" diagnostics.
//
// The rules encode the correctness contracts the sharded query engine and
// the paper reproduction rest on:
//
//	noglobalrand  — reproducibility: no math/rand package-level state
//	floatcompare  — no exact ==/!= on floats outside justified sites
//	bannedimport  — the stdlib-only constraint itself
//	panicattrib   — panics in internal/ carry a "pkg: " prefix
//	deferunlock   — Lock/RLock paired with defer Unlock/RUnlock
//	exporteddoc   — the public facade stays documented
//	ctxfirst      — context.Context is the first parameter, never a field
//
// On top of those, three performance-contract rules enforce the
// //perf:hotpath directive (see perfdirective.go and perfdiag.go):
//
//	hotpathalloc  — marked functions are heap-allocation-free (compiler
//	                escape analysis is the oracle), including their
//	                module-local callees
//	hotpathbce    — no bounds checks survive BCE inside marked loops
//	allocinloop   — no per-iteration allocation idioms (append without
//	                cap, fmt.*, string concat, make/new, interface
//	                boxing) inside marked loops, judged syntactically
//
// And three determinism-contract rules enforce the //det:replayed
// directive and guard every serialization sink with an interprocedural
// nondeterminism taint analysis (see det.go and detdirective.go):
//
//	detmaprange   — map-iteration order never reaches gob encodes, WAL
//	                append payloads, or //det:replayed returns unsorted
//	detwallclock  — time.Now/global-rand/ambient-process reads never
//	                reach serialized state or run inside replayed code
//	detunordered  — goroutine-completion order (multi-sender channels,
//	                multi-case selects, captured-write races) never
//	                reaches serialized state
//
// Deliberate violations are suppressed in place with
//
//	//lint:ignore <rule> <reason>       (this line and the next)
//	//lint:file-ignore <rule> <reason>  (the whole file)
//
// A reason is mandatory: a suppression without one is itself a
// diagnostic, as is one naming a rule that does not exist.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding: a position, the rule that fired, a
// human-readable message, and (for mechanically fixable findings) a
// suggested fix.
type Diagnostic struct {
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	Rule    string         `json:"rule"`
	Message string         `json:"message"`
	// Fix, when non-nil, is a byte-offset edit script that resolves the
	// finding; `trajlint -fix` applies it (see fix.go).
	Fix *Fix `json:"fix,omitempty"`
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Rule is one named check. Run inspects the Pass's package and reports
// findings through Pass.Reportf.
type Rule struct {
	// Name identifies the rule in diagnostics, -rules filters, and
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description of the contract the rule guards.
	Doc string
	// Fix, when non-empty, describes the mechanical fix for a finding
	// (surfaced by trajlint's usage text).
	Fix string
	// Run performs the check over one package.
	Run func(*Pass)
}

// Pass carries one package through one rule. Rules read the loaded
// syntax, type information, and module metadata, and report findings.
type Pass struct {
	Rule *Rule
	Pkg  *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportFix(pos, nil, format, args...)
}

// ReportFix records a finding at pos carrying a suggested fix (which may
// be nil).
func (p *Pass) ReportFix(pos token.Pos, fix *Fix, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     position,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Rule:    p.Rule.Name,
		Message: fmt.Sprintf(format, args...),
		Fix:     fix,
	})
}

// Rules returns the full rule suite in a deterministic order: the
// syntactic/type rules first, then the CFG/dataflow rules (errcheck,
// lockorder, goroutineleak — see cfg.go and dataflow.go).
func Rules() []*Rule {
	return []*Rule{
		ruleNoGlobalRand,
		ruleFloatCompare,
		ruleBannedImport,
		rulePanicAttrib,
		ruleDeferUnlock,
		ruleExportedDoc,
		ruleCtxFirst,
		ruleErrcheck,
		ruleLockOrder,
		ruleGoroutineLeak,
		ruleHotpathAlloc,
		ruleHotpathBCE,
		ruleAllocInLoop,
		ruleDetMapRange,
		ruleDetWallclock,
		ruleDetUnordered,
	}
}

// RuleNames returns the names of every rule in the suite, sorted.
func RuleNames() []string {
	var names []string
	for _, r := range Rules() {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	return names
}

// SelectRules resolves a list of rule names against the suite, erroring
// on unknown names. An empty list selects every rule.
func SelectRules(names []string) ([]*Rule, error) {
	all := Rules()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]*Rule, len(all))
	for _, r := range all {
		byName[r.Name] = r
	}
	var out []*Rule
	for _, n := range names {
		r, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown rule %q (have %v)", n, RuleNames())
		}
		out = append(out, r)
	}
	return out, nil
}

// Run applies the given rules to the given packages, filters the findings
// through //lint:ignore suppressions, appends directive diagnostics
// (malformed or unknown-rule suppressions, and stale suppressions whose
// rule ran but produced nothing for them to hide), and returns everything
// sorted by (file, line, col, rule).
func Run(pkgs []*Package, rules []*Rule) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, runPackage(pkg, rules)...)
	}
	SortDiagnostics(diags)
	return diags
}

// runPackage is one package's full analysis: rules, suppression
// filtering, directive validation (both //lint: and //perf:), and the
// staleness scan. The result is unsorted; it is also exactly what the
// driver caches per package.
func runPackage(pkg *Package, rules []*Rule) []Diagnostic {
	return runPackageObserved(pkg, rules, nil)
}

// runPackageObserved is runPackage with an optional per-rule timing
// callback (nil to skip). The driver uses it for `trajlint -stats`;
// observe must be safe for concurrent use, since the driver analyzes
// packages in parallel.
func runPackageObserved(pkg *Package, rules []*Rule, observe func(rule string, d time.Duration)) []Diagnostic {
	var raw []Diagnostic
	for _, r := range rules {
		start := time.Now()
		r.Run(&Pass{Rule: r, Pkg: pkg, diags: &raw})
		if observe != nil {
			observe(r.Name, time.Since(start))
		}
	}
	selected := make(map[string]bool, len(rules))
	for _, r := range rules {
		selected[r.Name] = true
	}
	sup, directiveDiags := collectSuppressions(pkg)
	var diags []Diagnostic
	for _, d := range raw {
		if !sup.suppresses(d) {
			diags = append(diags, d)
		}
	}
	diags = append(diags, directiveDiags...)
	diags = append(diags, sup.stale(pkg, selected)...)
	diags = append(diags, collectPerfDirectives(pkg)...)
	diags = append(diags, collectDetDirectives(pkg)...)
	return diags
}

// SortDiagnostics orders diags by (file, line, col, rule) — the canonical
// presentation order Run and the driver both emit.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
}

// inspect walks every file of the pass's package in source order, calling
// fn for each node; fn returning false prunes the subtree.
func (p *Pass) inspect(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}

// isInternalPath reports whether an import path has an "internal" path
// segment — the scope of the panicattrib rule, and the exemption of the
// exporteddoc rule.
func isInternalPath(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "internal" {
			return true
		}
	}
	return false
}
