package analysis

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// writeMiniModule lays out a two-package module for the cache tests:
// minimod/b imports minimod/a, and each package carries one floatcompare
// finding so the replayed diagnostics are observable.
func writeMiniModule(t testing.TB, dir string) {
	t.Helper()
	files := map[string]string{
		"a/a.go": `// Package a is a cache-test fixture.
package a

// Eq compares exactly — a deliberate floatcompare seed.
func Eq(x, y float64) bool { return x == y }
`,
		"b/b.go": `// Package b is a cache-test fixture depending on a.
package b

import "minimod/a"

// Same reports whether x equals itself under a.Eq.
func Same(x float64) bool { return a.Eq(x, x) }

// Close compares exactly — a deliberate floatcompare seed.
func Close(x, y float64) bool { return x != y }
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// runDriver runs a fresh driver (fresh loader — cached syntax must come
// from the cache dir, never from loader memoization) and renders the
// diagnostics for comparison.
func runDriver(t testing.TB, moduleDir, cacheDir string) ([]string, DriverStats) {
	t.Helper()
	rules, err := SelectRules([]string{"floatcompare"})
	if err != nil {
		t.Fatal(err)
	}
	d := &Driver{Loader: NewLoaderAt(moduleDir, "minimod"), Rules: rules, CacheDir: cacheDir}
	diags, stats, err := d.Run([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, dg := range diags {
		out = append(out, dg.String())
	}
	return out, stats
}

// TestDriverCacheInvalidation: warm runs replay identical diagnostics
// without re-analysis; editing a file re-analyzes exactly the packages
// whose content (or dependency content) changed.
func TestDriverCacheInvalidation(t *testing.T) {
	dir := t.TempDir()
	cache := t.TempDir()
	writeMiniModule(t, dir)

	cold, s := runDriver(t, dir, cache)
	if s.Packages != 2 || s.CacheMisses != 2 || s.CacheHits != 0 {
		t.Fatalf("cold run stats = %+v; want 2 packages, 2 misses", s)
	}
	if len(cold) != 2 {
		t.Fatalf("cold run diagnostics = %v; want the 2 seeded findings", cold)
	}

	warm, s := runDriver(t, dir, cache)
	if s.CacheHits != 2 || s.CacheMisses != 0 {
		t.Fatalf("warm run stats = %+v; want 2 hits, 0 misses", s)
	}
	if strings.Join(warm, "\n") != strings.Join(cold, "\n") {
		t.Fatalf("warm diagnostics differ from cold:\n%v\nvs\n%v", warm, cold)
	}

	// Editing the leaf dependent re-analyzes only that package.
	bPath := filepath.Join(dir, "b", "b.go")
	data, err := os.ReadFile(bPath)
	if err != nil {
		t.Fatal(err)
	}
	edited := append(data, []byte("\n// Near compares exactly too.\nfunc Near(x, y float64) bool { return x == y }\n")...)
	if err := os.WriteFile(bPath, edited, 0o644); err != nil {
		t.Fatal(err)
	}
	afterB, s := runDriver(t, dir, cache)
	if s.CacheHits != 1 || s.CacheMisses != 1 {
		t.Fatalf("after editing b: stats = %+v; want 1 hit (a), 1 miss (b)", s)
	}
	if len(afterB) != 3 {
		t.Fatalf("after editing b: diagnostics = %v; want 3 findings", afterB)
	}

	// The cached run must equal a cache-less run on the same tree.
	uncached, s := runDriver(t, dir, "")
	if s.CacheHits != 0 || s.CacheMisses != 2 {
		t.Fatalf("uncached run stats = %+v; want everything analyzed", s)
	}
	if strings.Join(uncached, "\n") != strings.Join(afterB, "\n") {
		t.Fatalf("cached diagnostics diverge from uncached:\n%v\nvs\n%v", afterB, uncached)
	}

	// Editing the dependency invalidates its dependents too: lockorder
	// reads dependency syntax through Package.Dep, so a's content is
	// part of b's key.
	aPath := filepath.Join(dir, "a", "a.go")
	data, err = os.ReadFile(aPath)
	if err != nil {
		t.Fatal(err)
	}
	edited = append(data, []byte("\n// More is documentation added to the dependency.\nfunc More() {}\n")...)
	if err := os.WriteFile(aPath, edited, 0o644); err != nil {
		t.Fatal(err)
	}
	_, s = runDriver(t, dir, cache)
	if s.CacheMisses != 2 {
		t.Fatalf("after editing the dependency: stats = %+v; want both packages re-analyzed", s)
	}
}

// TestDriverCorruptCacheDegrades: a torn or garbage cache entry is a
// cache miss, never an error or wrong output.
func TestDriverCorruptCacheDegrades(t *testing.T) {
	dir := t.TempDir()
	cache := t.TempDir()
	writeMiniModule(t, dir)
	cold, _ := runDriver(t, dir, cache)
	ents, err := os.ReadDir(cache)
	if err != nil || len(ents) == 0 {
		t.Fatalf("expected cache entries, got %v (err %v)", ents, err)
	}
	for _, e := range ents {
		if err := os.WriteFile(filepath.Join(cache, e.Name()), []byte("{garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	again, s := runDriver(t, dir, cache)
	if s.CacheMisses != 2 {
		t.Fatalf("corrupt entries must degrade to misses, stats = %+v", s)
	}
	if strings.Join(again, "\n") != strings.Join(cold, "\n") {
		t.Fatalf("diagnostics changed after cache corruption:\n%v\nvs\n%v", again, cold)
	}
}

// BenchmarkTrajlintTree measures the full-module analysis cold (empty
// cache: parse, type-check, analyze, fill) and warm (every package
// replayed from the content-hash cache without type-checking).
func BenchmarkTrajlintTree(b *testing.B) {
	moduleDir, err := filepath.Abs("../..")
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, cacheDir string) DriverStats {
		b.Helper()
		loader, err := NewLoader(moduleDir)
		if err != nil {
			b.Fatal(err)
		}
		d := &Driver{Loader: loader, Rules: Rules(), CacheDir: cacheDir}
		_, stats, err := d.Run([]string{"./..."})
		if err != nil {
			b.Fatal(err)
		}
		return stats
	}
	b.Run("cold", func(b *testing.B) {
		base := b.TempDir()
		for i := 0; i < b.N; i++ {
			stats := run(b, filepath.Join(base, strconv.Itoa(i)))
			if stats.CacheHits != 0 {
				b.Fatalf("cold run hit the cache: %+v", stats)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		cache := b.TempDir()
		prewarm := run(b, cache)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			stats := run(b, cache)
			if stats.CacheMisses != 0 {
				b.Fatalf("warm run missed the cache: %+v (prewarm %+v)", stats, prewarm)
			}
		}
	})
}
