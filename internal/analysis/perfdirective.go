package analysis

// The //perf:hotpath directive: a function-level performance contract.
//
//	//perf:hotpath <reason>
//
// placed in a function's doc comment marks the function as a serving
// hot path whose loops must stay heap-allocation-free and (where the
// compiler can prove it) bounds-check-free. The three perf rules —
// hotpathalloc, hotpathbce, allocinloop — read these marks; the
// directive itself is validated here exactly like //lint:ignore is in
// suppress.go: a reason is mandatory, the directive must be attached to
// a function declaration, and anything else (reasonless, misplaced,
// unknown //perf: verb) is a diagnostic under the "directive"
// pseudo-rule carrying a mechanical delete fix.
//
// A well-formed directive on a function that currently produces no
// compiler diagnostics is NOT stale: the mark is a standing contract
// (the clean state is the goal), unlike a //lint:ignore which exists
// only to excuse a live finding.

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"strings"
)

const perfPrefix = "perf:"
const perfHotpath = "perf:hotpath"

// hotpathFunc is one function carrying a well-formed //perf:hotpath
// directive.
type hotpathFunc struct {
	decl   *ast.FuncDecl
	reason string
	pos    token.Pos // position of the directive comment
}

// hotpathFuncs returns the package's well-formed hotpath marks in file
// order. Malformed directives are excluded here (collectPerfDirectives
// reports them); a function with only a malformed mark is not a hot
// path.
func hotpathFuncs(pkg *Package) []hotpathFunc {
	var out []hotpathFunc
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				text, ok := perfDirectiveText(c.Text)
				if !ok || !isHotpathDirective(text) {
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(text, perfHotpath))
				if reason == "" {
					continue // reported by collectPerfDirectives
				}
				out = append(out, hotpathFunc{decl: fd, reason: reason, pos: c.Pos()})
				break
			}
		}
	}
	return out
}

// collectPerfDirectives validates every //perf: comment in the package:
// a directive with an unknown verb, without a reason, or not attached to
// a function declaration's doc comment is a "directive" diagnostic with
// a fix that deletes it (whole line when it stands alone), mirroring the
// stale-suppression behavior of suppress.go.
func collectPerfDirectives(pkg *Package) []Diagnostic {
	// Comments that are part of some FuncDecl's doc group are attached;
	// every other //perf: comment is misplaced.
	attached := map[*ast.Comment]*ast.FuncDecl{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Doc != nil {
				for _, c := range fd.Doc.List {
					attached[c] = fd
				}
			}
		}
	}
	var diags []Diagnostic
	report := func(c *ast.Comment, format string, args ...any) {
		pos := pkg.Fset.Position(c.Pos())
		var fix *Fix
		if src, err := os.ReadFile(pos.Filename); err == nil {
			edit := lineEditIn(pkg.Fset, c.Pos(), src)
			start := pos.Offset
			if strings.TrimSpace(string(src[edit.Start:start])) != "" {
				edit = Edit{File: pos.Filename, Start: start, End: pkg.Fset.Position(c.End()).Offset}
			}
			fix = &Fix{Message: "delete the malformed perf directive", Edits: []Edit{edit}}
		}
		diags = append(diags, Diagnostic{
			Pos: pos, File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Rule: DirectiveRule, Fix: fix,
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := perfDirectiveText(c.Text)
				if !ok {
					continue
				}
				if !isHotpathDirective(text) {
					report(c, "unknown //perf: directive %q (want //perf:hotpath <reason>); delete it", text)
					continue
				}
				if _, ok := attached[c]; !ok {
					report(c, "//perf:hotpath directive is not a function's doc comment — the contract is function-level; move it onto the hot function or delete it")
					continue
				}
				if strings.TrimSpace(strings.TrimPrefix(text, perfHotpath)) == "" {
					report(c, "//perf:hotpath needs a written reason: //perf:hotpath <why this function must stay allocation-free>")
					continue
				}
			}
		}
	}
	return diags
}

// isHotpathDirective reports whether a //perf: payload is the hotpath
// verb — exactly "perf:hotpath", optionally followed by whitespace and
// a reason ("perf:hotpathfoo" is an unknown verb, not a reason).
func isHotpathDirective(text string) bool {
	if !strings.HasPrefix(text, perfHotpath) {
		return false
	}
	rest := text[len(perfHotpath):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}

// perfDirectiveText extracts the "perf:..." payload from a comment, if
// any (same normalization as directiveText for //lint:).
func perfDirectiveText(comment string) (string, bool) {
	var body string
	switch {
	case strings.HasPrefix(comment, "//"):
		body = comment[2:]
	case strings.HasPrefix(comment, "/*"):
		body = strings.TrimSuffix(comment[2:], "*/")
	}
	body = strings.TrimSpace(body)
	if strings.HasPrefix(body, perfPrefix) {
		return body, true
	}
	return "", false
}
