package analysis

// A generic forward/backward worklist solver over the CFGs of cfg.go.
// Rules define a Dataflow problem — bottom element, boundary fact, join,
// equality, and a block transfer function — and read the per-block fixed
// point. Facts are user-defined; the solver imposes only that Join is
// monotone and Equal detects stabilization (the usual termination
// contract of Kildall's algorithm).

// DataflowDirection selects forward (entry→exit) or backward
// (exit→entry) propagation.
type DataflowDirection int

// The two propagation directions.
const (
	Forward DataflowDirection = iota
	Backward
)

// Dataflow is one dataflow problem over a CFG.
type Dataflow[F any] struct {
	// Dir is the propagation direction.
	Dir DataflowDirection
	// Bottom returns the least element: the initial fact of every block
	// (and the input of unreachable blocks).
	Bottom func() F
	// Boundary returns the fact entering the graph: the Entry block's
	// input under Forward, the Exit block's input under Backward.
	Boundary func() F
	// Join merges a predecessor fact into an accumulator, returning the
	// merged fact. It may mutate and return acc; src must not be mutated.
	Join func(acc, src F) F
	// Equal reports whether two facts are equal (stabilization test).
	Equal func(a, b F) bool
	// Transfer computes the block's output fact from its input fact. It
	// must not retain or mutate in; copy first when mutation is needed.
	Transfer func(b *CFGBlock, in F) F
}

// DataflowResult carries the per-block fixed point: the fact entering
// and leaving each block (indexed by CFGBlock.Index) in the direction of
// propagation.
type DataflowResult[F any] struct {
	In  []F
	Out []F
}

// SolveDataflow iterates the problem to its fixed point with a worklist
// seeded in graph order (which approximates reverse postorder for the
// builder's creation order, keeping iteration counts low).
func SolveDataflow[F any](g *CFG, p Dataflow[F]) DataflowResult[F] {
	n := len(g.Blocks)
	res := DataflowResult[F]{In: make([]F, n), Out: make([]F, n)}
	for i := 0; i < n; i++ {
		res.In[i] = p.Bottom()
		res.Out[i] = p.Transfer(g.Blocks[i], res.In[i])
	}
	boundary := g.Entry
	if p.Dir == Backward {
		boundary = g.Exit
	}
	res.In[boundary.Index] = p.Boundary()
	res.Out[boundary.Index] = p.Transfer(boundary, res.In[boundary.Index])

	inWork := make([]bool, n)
	var work []*CFGBlock
	push := func(b *CFGBlock) {
		if !inWork[b.Index] {
			inWork[b.Index] = true
			work = append(work, b)
		}
	}
	for _, b := range g.Blocks {
		push(b)
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b.Index] = false

		// Gather the inputs from the flow predecessors.
		preds := b.Preds
		if p.Dir == Backward {
			preds = b.Succs
		}
		in := p.Bottom()
		if b == boundary {
			in = p.Join(in, p.Boundary())
		}
		for _, pr := range preds {
			in = p.Join(in, res.Out[pr.Index])
		}
		out := p.Transfer(b, in)
		res.In[b.Index] = in
		if p.Equal(out, res.Out[b.Index]) {
			continue
		}
		res.Out[b.Index] = out
		succs := b.Succs
		if p.Dir == Backward {
			succs = b.Preds
		}
		for _, s := range succs {
			push(s)
		}
	}
	return res
}
