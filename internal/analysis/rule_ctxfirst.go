package analysis

import (
	"go/ast"
	"go/types"
)

// ruleCtxFirst enforces the repo's context-plumbing conventions, the ones
// the engine's cancellation contract rests on (DESIGN.md "Failure
// semantics & graceful degradation"):
//
//   - a context.Context parameter must be the first parameter of its
//     function, method, or function type (the stdlib convention, and what
//     keeps call sites grep-able for deadline propagation), and
//   - a context.Context must never be stored in a struct field — contexts
//     are call-scoped; a stored context outlives its cancellation scope
//     and silently decouples work from the caller's deadline.
//
// Func-typed struct fields taking a context are fine (the context still
// flows per call); only fields whose own type is context.Context (or an
// alias of it) are flagged.
var ruleCtxFirst = &Rule{
	Name: "ctxfirst",
	Doc:  "context.Context is the first parameter and is never stored in a struct (cancellation contract)",
	Fix:  "move ctx to the first parameter position; pass contexts per call instead of storing them",
	Run:  runCtxFirst,
}

func runCtxFirst(p *Pass) {
	for _, f := range p.Pkg.Files {
		// Local names binding the context package in this file — the
		// syntactic fallback when type information did not resolve.
		ctxNames := map[string]bool{}
		for _, imp := range f.Imports {
			if importPath(imp) != "context" {
				continue
			}
			name := "context"
			if imp.Name != nil {
				name = imp.Name.Name
			}
			if name != "_" && name != "." {
				ctxNames[name] = true
			}
		}
		isCtx := func(expr ast.Expr) bool { return isContextType(p, ctxNames, expr) }
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncType:
				checkCtxParams(p, n, isCtx)
			case *ast.StructType:
				for _, field := range n.Fields.List {
					if isCtx(field.Type) {
						p.Reportf(field.Pos(),
							"context.Context stored in a struct field; contexts are call-scoped — pass ctx as the first parameter instead")
					}
				}
			}
			return true
		})
	}
}

// checkCtxParams reports context-typed parameters that are not in the
// first parameter group of ft. (Multiple contexts in the leading group —
// `func(ctx, ctx2 context.Context)` — are tolerated; the convention under
// enforcement is position, not arity.)
func checkCtxParams(p *Pass, ft *ast.FuncType, isCtx func(ast.Expr) bool) {
	if ft.Params == nil {
		return
	}
	for gi, group := range ft.Params.List {
		if gi == 0 || !isCtx(group.Type) {
			continue
		}
		name := "ctx"
		if len(group.Names) > 0 {
			name = group.Names[0].Name
		}
		p.Reportf(group.Pos(),
			"context.Context parameter %q is not the first parameter; make ctx the first parameter (stdlib convention)", name)
	}
}

// isContextType reports whether expr denotes context.Context, preferring
// resolved type information and falling back to the syntactic
// `context.Context` selector when the checker could not resolve the
// expression.
func isContextType(p *Pass, ctxNames map[string]bool, expr ast.Expr) bool {
	if tv, ok := p.Pkg.Info.Types[expr]; ok && tv.Type != nil {
		if named, ok := tv.Type.(*types.Named); ok {
			obj := named.Obj()
			return obj != nil && obj.Name() == "Context" &&
				obj.Pkg() != nil && obj.Pkg().Path() == "context"
		}
		return false
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	ident, ok := sel.X.(*ast.Ident)
	return ok && ctxNames[ident.Name]
}
