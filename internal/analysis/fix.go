package analysis

// The autofix engine behind `trajlint -fix`. Rules attach a *Fix — a
// byte-offset edit script — to mechanically resolvable diagnostics via
// Pass.ReportFix; ApplyFixes groups the surviving (unsuppressed) fixes
// by file, rejects overlapping edits (first writer wins, later ones are
// skipped and stay reported), applies them in one pass per file,
// re-formats the result with go/format, and writes atomically
// (temp + rename in the same directory).
//
// The engine is idempotent by construction: a fix resolves its
// diagnostic, so re-running the analysis after an apply produces no
// further fixes and the second `-fix` run is a no-op. The fix
// idempotency test locks this in for every fixable rule.

import (
	"fmt"
	"go/format"
	"go/token"
	"os"
	"path/filepath"
	"sort"
)

// Edit is one byte-offset splice in one file: the half-open range
// [Start, End) is replaced by NewText.
type Edit struct {
	File  string `json:"file"`
	Start int    `json:"start"`
	End   int    `json:"end"`
	New   string `json:"new"`
}

// Fix is a suggested mechanical resolution of one diagnostic.
type Fix struct {
	// Message describes the edit ("convert to defer", "delete stale
	// directive", ...).
	Message string `json:"message"`
	Edits   []Edit `json:"edits"`
}

// editAt builds an Edit covering [pos, end) in the file of pos.
func (p *Pass) editAt(pos, end token.Pos, newText string) Edit {
	a := p.Pkg.Fset.Position(pos)
	b := p.Pkg.Fset.Position(end)
	return Edit{File: a.Filename, Start: a.Offset, End: b.Offset, New: newText}
}

// lineEditAt builds an Edit deleting the whole line of pos (including the
// trailing newline), for removing statements and directives cleanly.
func (p *Pass) lineEditAt(pos token.Pos, src []byte) Edit {
	return lineEditIn(p.Pkg.Fset, pos, src)
}

// lineEditIn is lineEditAt against an explicit FileSet, for callers
// outside a rule pass (the staleness scan).
func lineEditIn(fset *token.FileSet, pos token.Pos, src []byte) Edit {
	position := fset.Position(pos)
	start := position.Offset
	for start > 0 && src[start-1] != '\n' {
		start--
	}
	end := position.Offset
	for end < len(src) && src[end] != '\n' {
		end++
	}
	if end < len(src) {
		end++ // include the newline
	}
	return Edit{File: position.Filename, Start: start, End: end, New: ""}
}

// FileSource returns the raw bytes of one of the package's files, for
// rules that compute line-precise edits.
func (p *Pass) FileSource(filename string) ([]byte, error) {
	return os.ReadFile(filename)
}

// ApplyResult reports what one ApplyFixes call did.
type ApplyResult struct {
	// Changed lists the files rewritten, sorted.
	Changed []string
	// Applied counts the fixes applied; Skipped counts fixes dropped
	// because they overlapped an earlier edit in the same file.
	Applied, Skipped int
}

// ApplyFixes applies every suggested fix carried by diags. Overlapping
// edits are resolved first-come (diagnostic order, which Run sorts by
// position): a fix that overlaps an already-accepted edit is skipped
// whole. Each changed file is re-formatted with go/format and written
// atomically.
func ApplyFixes(diags []Diagnostic) (ApplyResult, error) {
	var res ApplyResult
	type fileEdits struct {
		edits []Edit
	}
	byFile := map[string]*fileEdits{}
	var order []string

	accept := func(f *Fix) bool {
		// All edits of one fix apply or none do.
		for _, e := range f.Edits {
			fe := byFile[e.File]
			if fe == nil {
				continue
			}
			for _, prev := range fe.edits {
				if e.Start < prev.End && prev.Start < e.End {
					return false
				}
				// Two pure insertions at the same offset would be
				// order-ambiguous; reject the later one.
				if e.Start == prev.Start && e.End == e.Start && prev.End == prev.Start {
					return false
				}
			}
		}
		for _, e := range f.Edits {
			fe := byFile[e.File]
			if fe == nil {
				fe = &fileEdits{}
				byFile[e.File] = fe
				order = append(order, e.File)
			}
			fe.edits = append(fe.edits, e)
		}
		return true
	}
	for _, d := range diags {
		if d.Fix == nil || len(d.Fix.Edits) == 0 {
			continue
		}
		if accept(d.Fix) {
			res.Applied++
		} else {
			res.Skipped++
		}
	}
	sort.Strings(order)
	for _, file := range order {
		if err := applyFileEdits(file, byFile[file].edits); err != nil {
			return res, err
		}
		res.Changed = append(res.Changed, file)
	}
	return res, nil
}

// applyFileEdits splices the (non-overlapping) edits into the file,
// formats, and writes atomically.
func applyFileEdits(file string, edits []Edit) error {
	src, err := os.ReadFile(file)
	if err != nil {
		return fmt.Errorf("analysis: %w", err)
	}
	sort.Slice(edits, func(i, j int) bool { return edits[i].Start < edits[j].Start })
	var out []byte
	last := 0
	for _, e := range edits {
		if e.Start < last || e.End > len(src) || e.End < e.Start {
			return fmt.Errorf("analysis: invalid edit [%d,%d) in %s", e.Start, e.End, file)
		}
		out = append(out, src[last:e.Start]...)
		out = append(out, e.New...)
		last = e.End
	}
	out = append(out, src[last:]...)
	formatted, err := format.Source(out)
	if err != nil {
		// A fix must never leave a file unparsable; keep the tree intact.
		return fmt.Errorf("analysis: fix for %s produced unparsable source: %w", file, err)
	}
	return writeFileAtomic(file, formatted)
}

// writeFileAtomic writes data to path via a temp file + rename in the
// same directory, preserving the original mode.
func writeFileAtomic(path string, data []byte) error {
	info, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("analysis: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".fix*")
	if err != nil {
		return fmt.Errorf("analysis: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		//lint:ignore errcheck the write error takes precedence over the cleanup close
		tmp.Close()
		return fmt.Errorf("analysis: %w", err)
	}
	if err := tmp.Chmod(info.Mode()); err != nil {
		//lint:ignore errcheck the chmod error takes precedence over the cleanup close
		tmp.Close()
		return fmt.Errorf("analysis: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("analysis: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("analysis: %w", err)
	}
	return nil
}
