package analysis

// The cached parallel driver behind cmd/trajlint. Analyzing the whole
// module costs a full parse + type-check of every package plus GOROOT
// source imports — seconds of work that is identical run-to-run when
// nothing changed. The driver keys each package's final diagnostics
// (post-suppression, post-staleness) by a content hash and replays them
// on a hit without loading the package at all.
//
// The key must cover everything the diagnostics depend on:
//
//   - the bytes of the package's own files (source, suppressions, and
//     build tags all live there);
//   - the keys of its module-local imports, transitively — the lockorder
//     rule walks into dependency *syntax* through Package.Dep, and type
//     information flows up from dependencies everywhere else, so editing
//     a dependency must invalidate its dependents;
//   - the rule suite fingerprint and the toolchain version (rules and
//     GOROOT sources both shape the output).
//
// Dependency discovery parses imports only (parser.ImportsOnly) — a
// cheap syntactic pass that never type-checks — so a fully warm run
// touches no go/types machinery at all. Cold packages are loaded
// sequentially (the Loader shares one FileSet and memo table) and then
// analyzed in parallel: rule passes only read the loaded trees.
import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// cacheFormat versions the cache entry encoding; bump it when the
// Diagnostic JSON shape or the key recipe changes.
const cacheFormat = "trajlint-cache-v1"

// Driver runs a rule suite over module packages with an optional
// content-hash keyed diagnostic cache and parallel analysis.
type Driver struct {
	Loader *Loader
	Rules  []*Rule
	// CacheDir, when non-empty, holds one JSON file per (package, key);
	// empty disables caching entirely.
	CacheDir string
	// Jobs bounds analysis parallelism; 0 means GOMAXPROCS.
	Jobs int
}

// DriverStats reports what one Run did.
type DriverStats struct {
	// Packages is the number of packages matched by the patterns.
	Packages int
	// CacheHits counts packages whose diagnostics were replayed from the
	// cache; CacheMisses counts packages loaded and analyzed fresh. With
	// caching disabled every package is a miss.
	CacheHits, CacheMisses int
	// RuleTime accumulates wall time per rule across every cold package
	// (cache hits replay diagnostics without running rules, so they add
	// nothing). `trajlint -stats` prints it; the perf rules' compile
	// time shows up here, which is how a warm cache is visibly cheaper.
	RuleTime map[string]time.Duration
	// RuleFindings counts the surviving diagnostics per rule across the
	// whole run — cached and cold packages alike, since cache entries
	// replay final diagnostics. Unlike RuleTime it is complete on a
	// fully warm run, which is why -stats prints both columns.
	RuleFindings map[string]int
}

func (d *Driver) jobs() int {
	if d.Jobs > 0 {
		return d.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// Run expands patterns, replays cached diagnostics for unchanged
// packages, analyzes the rest in parallel, refills the cache, and
// returns everything in the canonical sort order.
func (d *Driver) Run(patterns []string) ([]Diagnostic, DriverStats, error) {
	var stats DriverStats
	paths, err := d.Loader.ExpandPatterns(patterns)
	if err != nil {
		return nil, stats, err
	}
	stats.Packages = len(paths)

	keys := map[string]string{}
	if d.CacheDir != "" {
		if keys, err = d.cacheKeys(paths); err != nil {
			return nil, stats, err
		}
	}

	all := []Diagnostic{}
	var misses []string
	for _, p := range paths {
		if key := keys[p]; key != "" {
			if diags, ok := d.readCache(key); ok {
				stats.CacheHits++
				all = append(all, diags...)
				continue
			}
		}
		misses = append(misses, p)
	}
	stats.CacheMisses = len(misses)

	// Loading is sequential — the Loader's FileSet and memo table are
	// shared state, and type-checking forces dependencies in order
	// anyway. Analysis is read-only over the loaded trees, so it fans
	// out across packages.
	pkgs := make([]*Package, len(misses))
	for i, p := range misses {
		if pkgs[i], err = d.Loader.Load(p); err != nil {
			return nil, stats, err
		}
	}
	results := make([][]Diagnostic, len(pkgs))
	stats.RuleTime = map[string]time.Duration{}
	var timeMu sync.Mutex
	observe := func(rule string, dur time.Duration) {
		timeMu.Lock()
		defer timeMu.Unlock()
		stats.RuleTime[rule] += dur
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, d.jobs())
	for i := range pkgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = runPackageObserved(pkgs[i], d.Rules, observe)
		}(i)
	}
	wg.Wait()

	for i, p := range misses {
		if key := keys[p]; key != "" {
			d.writeCache(key, results[i]) // best-effort: a failed write just stays cold
		}
		all = append(all, results[i]...)
	}
	SortDiagnostics(all)
	stats.RuleFindings = map[string]int{}
	for _, d := range all {
		stats.RuleFindings[d.Rule]++
	}
	return all, stats, nil
}

// pkgMeta is the cheap (ImportsOnly) view of one package used for key
// computation.
type pkgMeta struct {
	dir      string
	files    []string // file names, sorted (goFilesIn order)
	fileHash []string // content hash per file, aligned with files
	deps     []string // module-local imports, sorted
}

// cacheKeys scans the targets and their transitive module-local imports
// (file reads, hashes, and imports-only parses fan out across a worker
// pool) and derives each target's cache key.
func (d *Driver) cacheKeys(paths []string) (map[string]string, error) {
	metas := map[string]*pkgMeta{}
	seen := map[string]bool{}
	frontier := []string{}
	for _, p := range paths {
		if !seen[p] {
			seen[p] = true
			frontier = append(frontier, p)
		}
	}
	for len(frontier) > 0 {
		ms := make([]*pkgMeta, len(frontier))
		errs := make([]error, len(frontier))
		var wg sync.WaitGroup
		sem := make(chan struct{}, d.jobs())
		for i := range frontier {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				ms[i], errs[i] = d.scanPackage(frontier[i])
			}(i)
		}
		wg.Wait()
		var next []string
		for i, p := range frontier {
			if errs[i] != nil {
				return nil, errs[i]
			}
			metas[p] = ms[i]
			for _, dep := range ms[i].deps {
				if !seen[dep] {
					seen[dep] = true
					next = append(next, dep)
				}
			}
		}
		frontier = next
	}

	keys := map[string]string{}
	visiting := map[string]bool{}
	var key func(path string) string
	key = func(path string) string {
		if k, ok := keys[path]; ok {
			return k
		}
		if visiting[path] {
			return "cycle" // the loader rejects cycles; keep the keyer total anyway
		}
		visiting[path] = true
		m := metas[path]
		h := sha256.New()
		fmt.Fprintf(h, "%s\ngo:%s\nrules:%s\npkg:%s\n",
			cacheFormat, runtime.Version(), ruleFingerprint(d.Rules), path)
		for i, name := range m.files {
			fmt.Fprintf(h, "file:%s:%s\n", name, m.fileHash[i])
		}
		for _, dep := range m.deps {
			fmt.Fprintf(h, "dep:%s:%s\n", dep, key(dep))
		}
		k := hex.EncodeToString(h.Sum(nil))
		keys[path] = k
		return k
	}
	for _, p := range paths {
		key(p)
	}
	return keys, nil
}

// scanPackage reads one package directory without type-checking: file
// content hashes plus the module-local slice of its import graph.
func (d *Driver) scanPackage(path string) (*pkgMeta, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, d.Loader.ModulePath), "/")
	m := &pkgMeta{dir: filepath.Join(d.Loader.ModuleDir, filepath.FromSlash(rel))}
	names, err := goFilesIn(m.dir)
	if err != nil {
		return nil, err
	}
	depSet := map[string]bool{}
	for _, name := range names {
		full := filepath.Join(m.dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		sum := sha256.Sum256(src)
		m.files = append(m.files, name)
		m.fileHash = append(m.fileHash, hex.EncodeToString(sum[:]))
		f, err := parser.ParseFile(d.Loader.fset, full, src, parser.ImportsOnly)
		if err != nil {
			// Unparsable files still hash; the real load reports the error.
			continue
		}
		for _, imp := range f.Imports {
			ip := strings.Trim(imp.Path.Value, `"`)
			if ip == d.Loader.ModulePath || strings.HasPrefix(ip, d.Loader.ModulePath+"/") {
				depSet[ip] = true
			}
		}
	}
	for dep := range depSet {
		m.deps = append(m.deps, dep)
	}
	sort.Strings(m.deps)
	return m, nil
}

// ruleFingerprint identifies the rule suite for the cache key: the
// sorted rule names (a behavioral change inside a rule is expected to
// ride with a toolchain or source change during development; release
// builds pin both).
func ruleFingerprint(rules []*Rule) string {
	names := make([]string, 0, len(rules))
	for _, r := range rules {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

func (d *Driver) cachePath(key string) string {
	return filepath.Join(d.CacheDir, key+".json")
}

// readCache replays a package's diagnostics, reporting ok=false on any
// miss or decode problem (a corrupt entry degrades to a cold analysis).
func (d *Driver) readCache(key string) ([]Diagnostic, bool) {
	data, err := os.ReadFile(d.cachePath(key))
	if err != nil {
		return nil, false
	}
	var diags []Diagnostic
	if err := json.Unmarshal(data, &diags); err != nil {
		return nil, false
	}
	return diags, true
}

// writeCache stores a package's diagnostics under its key via temp +
// rename, so concurrent trajlint runs never observe a torn entry.
func (d *Driver) writeCache(key string, diags []Diagnostic) {
	if err := os.MkdirAll(d.CacheDir, 0o755); err != nil {
		return
	}
	if diags == nil {
		diags = []Diagnostic{}
	}
	data, err := json.Marshal(diags)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(d.CacheDir, key+".tmp*")
	if err != nil {
		return
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err == nil && tmp.Close() == nil {
		//lint:ignore errcheck best-effort cache write; a failed rename just stays cold
		os.Rename(tmp.Name(), d.cachePath(key))
	}
}
