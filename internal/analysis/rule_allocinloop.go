package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ruleAllocInLoop is the syntax-level half of the //perf:hotpath
// contract: inside the for/range bodies of a marked function it flags
// the constructs that allocate per iteration regardless of what escape
// analysis concludes — because they allocate in a callee the compiler
// cannot see through, or because the idiom is wrong even when a
// particular build happens to keep it on the stack:
//
//   - append to a locally declared slice with no visible make-with-cap
//     (growth reallocations scale with the loop trip count; appends into
//     parameters or fields are the caller's contract and stay legal, so
//     reusable-buffer APIs remain expressible)
//   - fmt.* calls (every operand boxes into an interface)
//   - string concatenation (+ / += on strings builds a fresh string per
//     iteration)
//   - make / new (an allocation request per iteration by construction)
//   - explicit conversions to interface types (boxing)
//
// Unlike hotpathalloc/hotpathbce this rule needs no compiler run, so it
// also fires in fixture trees and stays cheap on warm caches.
var ruleAllocInLoop = &Rule{
	Name: "allocinloop",
	Doc:  "no per-iteration allocation idioms inside //perf:hotpath loops",
	Fix:  "hoist the allocation above the loop, preallocate with make(T, 0, n), build strings outside the hot loop, or take a caller-provided buffer",
	Run:  runAllocInLoop,
}

func runAllocInLoop(p *Pass) {
	for _, h := range hotpathFuncs(p.Pkg) {
		if h.decl.Body == nil {
			continue
		}
		preallocated, local := slicePreallocs(p, h.decl)
		ast.Inspect(h.decl.Body, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.ForStmt:
				body = n.Body
			case *ast.RangeStmt:
				body = n.Body
			default:
				return true
			}
			checkLoopBody(p, h.decl.Name.Name, body, preallocated, local)
			return false // checkLoopBody recurses into nested loops itself
		})
	}
}

// slicePreallocs scans a function for local slice declarations,
// classifying each object as preallocated (make with an explicit
// capacity or length expression) or not. Only locally declared slices
// are tracked: appends into parameters, results, or fields grow storage
// the caller owns, which is exactly how reusable-buffer APIs work.
func slicePreallocs(p *Pass, decl *ast.FuncDecl) (preallocated, local map[types.Object]bool) {
	preallocated = map[types.Object]bool{}
	local = map[types.Object]bool{}
	record := func(ident *ast.Ident, rhs ast.Expr) {
		obj := p.Pkg.Info.Defs[ident]
		if obj == nil {
			obj = p.Pkg.Info.Uses[ident]
		}
		if obj == nil {
			return
		}
		if _, ok := obj.Type().Underlying().(*types.Slice); !ok {
			return
		}
		local[obj] = true
		if isMakeWithSize(rhs) || isReslice(rhs) {
			preallocated[obj] = true
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				ident, ok := lhs.(*ast.Ident)
				if !ok || ident.Name == "_" {
					continue
				}
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				record(ident, rhs)
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, ident := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					}
					record(ident, rhs)
				}
			}
		}
		return true
	})
	return preallocated, local
}

// isReslice reports whether an expression is a slice expression
// (x[:0], buf[a:b], ...): the backing storage already exists and belongs
// to whatever was resliced, so appending into the local alias grows
// under that owner's amortized contract — the reusable-buffer idiom.
func isReslice(e ast.Expr) bool {
	_, ok := ast.Unparen(e).(*ast.SliceExpr)
	return ok
}

// isMakeWithSize reports whether an expression is make(T, n) or
// make(T, n, c) — storage sized up front rather than grown by append.
func isMakeWithSize(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && fn.Name == "make" && len(call.Args) >= 2
}

// checkLoopBody walks one loop body (descending into nested loops,
// which are just as hot) and reports each per-iteration allocation
// idiom once, at its own position.
func checkLoopBody(p *Pass, fnName string, body *ast.BlockStmt, preallocated, local map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its body runs when called, not per iteration here
		case *ast.CallExpr:
			checkCall(p, fnName, n, preallocated, local)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(p, n) {
				p.Reportf(n.OpPos, "hot loop in %s concatenates strings with +; build the string outside the loop or use an index-based key", fnName)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(p, n.Lhs[0]) {
				p.Reportf(n.TokPos, "hot loop in %s grows a string with +=; build the string outside the loop", fnName)
			}
		}
		return true
	})
}

// checkCall classifies one call inside a hot loop: builtin make/new,
// fmt.*, append without preallocation, or an explicit conversion to an
// interface type.
func checkCall(p *Pass, fnName string, call *ast.CallExpr, preallocated, local map[types.Object]bool) {
	// Explicit interface conversion: T(x) where T is an interface type.
	if tv, ok := p.Pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) {
			p.Reportf(call.Pos(), "hot loop in %s converts to interface type %s (boxes the operand); keep the concrete type through the loop", fnName, types.TypeString(tv.Type, types.RelativeTo(p.Pkg.Types)))
		}
		return
	}
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch fn.Name {
		case "make":
			p.Reportf(call.Pos(), "hot loop in %s calls make per iteration; hoist the allocation above the loop or reuse a buffer", fnName)
		case "new":
			p.Reportf(call.Pos(), "hot loop in %s calls new per iteration; hoist the allocation above the loop", fnName)
		case "append":
			checkAppend(p, fnName, call, preallocated, local)
		}
	case *ast.SelectorExpr:
		if ident, ok := fn.X.(*ast.Ident); ok {
			if pkgName, ok := p.Pkg.Info.Uses[ident].(*types.PkgName); ok && pkgName.Imported().Path() == "fmt" {
				p.Reportf(call.Pos(), "hot loop in %s calls fmt.%s (boxes every operand); format outside the loop or use strconv", fnName, fn.Sel.Name)
			}
		}
	}
}

// checkAppend flags append targeting a locally declared slice that was
// never preallocated with a capacity — the growth pattern that turns a
// hot loop into O(log n) reallocations plus copies.
func checkAppend(p *Pass, fnName string, call *ast.CallExpr, preallocated, local map[types.Object]bool) {
	if len(call.Args) == 0 {
		return
	}
	ident, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return // appends into fields/elements: storage owned elsewhere
	}
	obj := p.Pkg.Info.Uses[ident]
	if obj == nil {
		obj = p.Pkg.Info.Defs[ident]
	}
	if obj == nil || !local[obj] || preallocated[obj] {
		return
	}
	p.Reportf(call.Pos(), "hot loop in %s appends to %s, declared without preallocated capacity; use make(T, 0, n) or a caller-provided buffer", fnName, ident.Name)
}

// isStringExpr reports whether an expression's type is (an alias of)
// string. Untyped constants folded at compile time don't allocate, so
// only typed string operands count.
func isStringExpr(p *Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Kind() == types.String
}
