package analysis

// Control-flow graph construction over go/ast, the substrate under the
// dataflow rules (errcheck, lockorder, goroutineleak). One CFG models one
// function body — FuncDecl bodies and FuncLit bodies each get their own
// graph, because a function literal is its own control-flow (and lock,
// and error-handling) scope.
//
// The construction is deliberately source-faithful rather than minimal:
//
//   - branches, loops (for / range, with and without conditions), switch,
//     type switch, and select all get explicit blocks and edges;
//   - short-circuit operators in branch conditions are decomposed — the
//     condition `a && b` becomes two condition blocks, so a fact
//     established by `a` (say, a use of an error variable) is visible on
//     the path where `b` never evaluates;
//   - labeled break / continue and goto resolve to their lexical targets;
//   - `defer` statements are kept in their blocks (their arguments are
//     evaluated in source order) and additionally collected in Defers, in
//     execution-encounter order, because their function bodies run at
//     every function exit — the solver applies them at the Exit block;
//   - `return`, `panic`, and the handful of never-returning stdlib calls
//     (os.Exit, log.Fatal*, runtime.Goexit, testing's t.Fatal family via
//     the panic edge) terminate their block with an edge straight to Exit.
//
// Unreachable statements (code after return/panic) land in blocks with no
// predecessors; solvers see them with bottom input facts.

import (
	"go/ast"
	"go/token"
)

// CFGBlock is one basic block: a maximal straight-line sequence of
// statements (and decomposed condition expressions) with edges to its
// successors.
type CFGBlock struct {
	// Index is the block's position in CFG.Blocks (creation order; Entry
	// is 0).
	Index int
	// Kind labels the block's role for debugging and tests: "entry",
	// "exit", "body", "if.then", "for.head", "cond", "case", ...
	Kind string
	// Nodes holds the block's statements and condition expressions in
	// source-execution order.
	Nodes []ast.Node
	// Succs and Preds are the control-flow edges.
	Succs []*CFGBlock
	Preds []*CFGBlock
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry  *CFGBlock
	Exit   *CFGBlock
	Blocks []*CFGBlock
	// Defers lists every defer statement of the body (excluding nested
	// function literals) in encounter order. Their call effects apply at
	// Exit, in reverse order.
	Defers []*ast.DeferStmt
}

// BuildCFG constructs the control-flow graph of one function body. The
// body's nested function literals are NOT traversed into — each literal
// is its own scope and gets its own CFG from its own BuildCFG call.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: map[string]*CFGBlock{},
		gotos:  map[string][]*CFGBlock{},
	}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = b.newBlock("exit")
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	// Fallthrough off the end of the body: implicit return.
	b.edge(b.cur, b.cfg.Exit)
	// Resolve any goto whose label appeared after the jump.
	for name, sources := range b.gotos {
		if target, ok := b.labels[name]; ok {
			for _, src := range sources {
				b.edge(src, target)
			}
		}
		// An unresolved goto is a compile error in real code; the block
		// simply ends (no successors), which is the conservative shape.
	}
	return b.cfg
}

// scope is one enclosing breakable/continuable construct.
type scope struct {
	label string    // enclosing label, "" if none
	brk   *CFGBlock // break target (the after-block)
	cont  *CFGBlock // continue target (nil for switch/select)
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *CFGBlock
	scopes []scope
	// pendingLabel is the label of a LabeledStmt whose statement is about
	// to be built (so `L: for ...` attaches L to the loop's scope).
	pendingLabel string
	labels       map[string]*CFGBlock   // label -> first block of labeled stmt
	gotos        map[string][]*CFGBlock // unresolved goto sources
}

func (b *cfgBuilder) newBlock(kind string) *CFGBlock {
	blk := &CFGBlock{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *CFGBlock) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// startBlock makes blk the current block, linking from the previous
// current block when it falls through.
func (b *cfgBuilder) startBlock(blk *CFGBlock, linkFrom *CFGBlock) {
	if linkFrom != nil {
		b.edge(linkFrom, blk)
	}
	b.cur = blk
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findScope resolves a break/continue target: the innermost scope, or the
// one carrying the label.
func (b *cfgBuilder) findScope(label string, needCont bool) *scope {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		sc := &b.scopes[i]
		if needCont && sc.cont == nil {
			continue
		}
		if label == "" || sc.label == label {
			return sc
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The labeled statement starts a fresh block so gotos have a
		// well-defined target.
		target := b.newBlock("label." + s.Label.Name)
		b.startBlock(target, b.cur)
		b.labels[s.Label.Name] = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = b.newBlock("unreachable")

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.DeferStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.cfg.Defers = append(b.cfg.Defers, s)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s)

	case *ast.RangeStmt:
		b.rangeStmt(s)

	case *ast.SwitchStmt:
		b.switchStmt(s)

	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)

	case *ast.SelectStmt:
		b.selectStmt(s)

	case *ast.ExprStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		if isTerminatingCall(s.X) {
			b.edge(b.cur, b.cfg.Exit)
			b.cur = b.newBlock("unreachable")
		}

	case nil:
		// nothing

	default:
		// Assignments, declarations, sends, inc/dec, empty, go — plain
		// straight-line nodes.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	b.cur.Nodes = append(b.cur.Nodes, s)
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if sc := b.findScope(label, false); sc != nil {
			b.edge(b.cur, sc.brk)
		}
	case token.CONTINUE:
		if sc := b.findScope(label, true); sc != nil {
			b.edge(b.cur, sc.cont)
		}
	case token.GOTO:
		if target, ok := b.labels[label]; ok {
			b.edge(b.cur, target)
		} else {
			b.gotos[label] = append(b.gotos[label], b.cur)
		}
	case token.FALLTHROUGH:
		// Handled structurally by switchStmt (the case bodies are chained
		// there); the node itself is recorded above.
		return
	}
	b.cur = b.newBlock("unreachable")
}

// cond builds the short-circuit decomposition of a branch condition:
// every leaf condition gets its own block with edges to the then/else
// targets.
func (b *cfgBuilder) cond(e ast.Expr, t, f *CFGBlock) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		b.cond(e.X, t, f)
		return
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND: // a && b : b evaluates only when a is true
			mid := b.newBlock("cond")
			b.cond(e.X, mid, f)
			b.cur = mid
			b.cond(e.Y, t, f)
			return
		case token.LOR: // a || b : b evaluates only when a is false
			mid := b.newBlock("cond")
			b.cond(e.X, t, mid)
			b.cur = mid
			b.cond(e.Y, t, f)
			return
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			b.cond(e.X, f, t)
			return
		}
	}
	// Leaf condition: evaluated in the current block, branching both ways.
	b.cur.Nodes = append(b.cur.Nodes, e)
	b.edge(b.cur, t)
	b.edge(b.cur, f)
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.cur.Nodes = append(b.cur.Nodes, s.Init)
	}
	then := b.newBlock("if.then")
	after := b.newBlock("if.after")
	elseEntry := after
	if s.Else != nil {
		elseEntry = b.newBlock("if.else")
	}
	b.cond(s.Cond, then, elseEntry)

	b.cur = then
	b.stmtList(s.Body.List)
	b.edge(b.cur, after)

	if s.Else != nil {
		b.cur = elseEntry
		b.stmt(s.Else)
		b.edge(b.cur, after)
	}
	b.cur = after
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.cur.Nodes = append(b.cur.Nodes, s.Init)
	}
	head := b.newBlock("for.head")
	body := b.newBlock("for.body")
	after := b.newBlock("for.after")
	post := head
	if s.Post != nil {
		post = b.newBlock("for.post")
	}
	b.edge(b.cur, head)
	b.cur = head
	if s.Cond != nil {
		b.cond(s.Cond, body, after)
	} else {
		b.edge(b.cur, body) // `for {}`: exits only via break/return
	}

	b.scopes = append(b.scopes, scope{label: label, brk: after, cont: post})
	b.cur = body
	b.stmtList(s.Body.List)
	b.scopes = b.scopes[:len(b.scopes)-1]

	if s.Post != nil {
		b.edge(b.cur, post)
		b.cur = post
		b.cur.Nodes = append(b.cur.Nodes, s.Post)
		b.edge(b.cur, head)
	} else {
		b.edge(b.cur, head)
	}
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock("range.head")
	body := b.newBlock("range.body")
	after := b.newBlock("range.after")
	b.edge(b.cur, head)
	// The RangeStmt node itself carries the range expression and the
	// key/value (re)definitions; it lives in the head, evaluated each
	// iteration.
	head.Nodes = append(head.Nodes, s)
	b.edge(head, body)
	b.edge(head, after)

	b.scopes = append(b.scopes, scope{label: label, brk: after, cont: head})
	b.cur = body
	b.stmtList(s.Body.List)
	b.scopes = b.scopes[:len(b.scopes)-1]

	b.edge(b.cur, head)
	b.cur = after
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.cur.Nodes = append(b.cur.Nodes, s.Init)
	}
	if s.Tag != nil {
		b.cur.Nodes = append(b.cur.Nodes, s.Tag)
	}
	after := b.newBlock("switch.after")
	head := b.cur
	b.scopes = append(b.scopes, scope{label: label, brk: after})

	// Case expressions evaluate sequentially until one matches, so the
	// tests form a chain: head → test₁ → test₂ → … with an edge from each
	// test into its body. A fact established by an earlier case test (say
	// a use of an error variable) is therefore visible on every later
	// path, matching evaluation order.
	var clauses []*ast.CaseClause
	var defaultClause *ast.CaseClause
	for _, raw := range s.Body.List {
		cc := raw.(*ast.CaseClause)
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		clauses = append(clauses, cc)
	}
	bodies := make([]*CFGBlock, len(clauses))
	prevTest := head
	for i, cc := range clauses {
		test := b.newBlock("case.test")
		b.edge(prevTest, test)
		for _, e := range cc.List {
			test.Nodes = append(test.Nodes, e)
		}
		bodies[i] = b.newBlock("case")
		b.edge(test, bodies[i])
		prevTest = test
	}
	var defaultBody *CFGBlock
	if defaultClause != nil {
		defaultBody = b.newBlock("case.default")
		b.edge(prevTest, defaultBody)
	} else {
		b.edge(prevTest, after)
	}
	// Order the bodies as written so fallthrough chains to the next
	// written clause (which may be the default clause).
	written := make([]*CFGBlock, 0, len(s.Body.List))
	writtenClauses := make([]*ast.CaseClause, 0, len(s.Body.List))
	ci := 0
	for _, raw := range s.Body.List {
		cc := raw.(*ast.CaseClause)
		if cc.List == nil {
			written = append(written, defaultBody)
		} else {
			written = append(written, bodies[ci])
			ci++
		}
		writtenClauses = append(writtenClauses, cc)
	}
	for i, cc := range writtenClauses {
		b.cur = written[i]
		b.stmtList(cc.Body)
		if fallsThrough(cc.Body) && i+1 < len(written) {
			b.edge(b.cur, written[i+1])
		} else {
			b.edge(b.cur, after)
		}
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = after
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.cur.Nodes = append(b.cur.Nodes, s.Init)
	}
	// The assign (`switch v := x.(type)`) evaluates once in the head.
	b.cur.Nodes = append(b.cur.Nodes, s.Assign)
	after := b.newBlock("typeswitch.after")
	head := b.cur
	b.scopes = append(b.scopes, scope{label: label, brk: after})
	hasDefault := false
	for _, raw := range s.Body.List {
		cc := raw.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock("typecase")
		b.edge(head, blk)
		b.cur = blk
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	if !hasDefault || len(s.Body.List) == 0 {
		b.edge(head, after)
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = after
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	after := b.newBlock("select.after")
	head := b.cur
	b.scopes = append(b.scopes, scope{label: label, brk: after})
	for _, raw := range s.Body.List {
		cc := raw.(*ast.CommClause)
		blk := b.newBlock("comm")
		b.edge(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	if len(s.Body.List) == 0 {
		// `select {}` blocks forever: no path to after.
		b.edge(head, b.cfg.Exit)
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = after
}

// fallsThrough reports whether a case body ends in a fallthrough
// statement.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// isTerminatingCall reports whether an expression statement never returns
// control: the panic builtin and the conventional never-return stdlib
// calls.
func isTerminatingCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fun.Sel.Name {
		case "os.Exit", "runtime.Goexit",
			"log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
	}
	return false
}
