package analysis

import (
	"go/ast"
	"go/token"
)

// ruleExportedDoc keeps the public surface documented: in a non-main,
// non-internal package (for this module, the traj2hash facade itself),
// every exported top-level declaration needs a doc comment, and the
// package needs a package comment. Grouped const/var/type declarations
// are covered by a comment on the group. The internal/ packages are
// exempt — their contracts live in DESIGN.md and the other rules.
var ruleExportedDoc = &Rule{
	Name: "exporteddoc",
	Doc:  "exported identifiers of public packages need doc comments (documented-facade contract)",
	Fix:  "add a doc comment beginning with the identifier's name directly above the declaration",
	Run:  runExportedDoc,
}

func runExportedDoc(p *Pass) {
	if p.Pkg.Name == "main" || isInternalPath(p.Pkg.Path) {
		return
	}
	// stubFix inserts a `// Name TODO: document.` stub comment directly
	// before pos, which must sit at the start of a top-level line. The
	// stub resolves the diagnostic mechanically (the declaration gains a
	// doc comment) while keeping the TODO visible for a human pass — the
	// contract is "documented surface", and an honest placeholder beats a
	// silent gap.
	stubFix := func(pos token.Pos, text string) *Fix {
		return &Fix{
			Message: "insert a stub doc comment (keep the TODO until it is written for real)",
			Edits:   []Edit{p.editAt(pos, pos, "// "+text+"\n")},
		}
	}
	hasPkgDoc := false
	for _, f := range p.Pkg.Files {
		if realDoc(f.Doc) {
			hasPkgDoc = true
		}
	}
	if !hasPkgDoc && len(p.Pkg.Files) > 0 {
		f := p.Pkg.Files[0]
		p.ReportFix(f.Name.Pos(), stubFix(f.Package, "Package "+p.Pkg.Name+" TODO: document."),
			"package %s has no package comment", p.Pkg.Name)
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && exportedRecv(d) && !realDoc(d.Doc) {
					kind := "function"
					if d.Recv != nil {
						kind = "method"
					}
					p.ReportFix(d.Pos(), stubFix(d.Pos(), d.Name.Name+" TODO: document."),
						"exported %s %s has no doc comment", kind, d.Name.Name)
				}
			case *ast.GenDecl:
				// Stub insertion is only mechanical for an ungrouped decl,
				// where the spec starts its own top-level line; specs inside
				// a ( ... ) group report fix-less.
				grouped := d.Lparen.IsValid()
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && !realDoc(d.Doc) && !realDoc(s.Doc) {
							var fix *Fix
							if !grouped {
								fix = stubFix(d.Pos(), s.Name.Name+" TODO: document.")
							}
							p.ReportFix(s.Pos(), fix, "exported type %s has no doc comment", s.Name.Name)
						}
					case *ast.ValueSpec:
						if realDoc(d.Doc) || realDoc(s.Doc) {
							continue
						}
						for _, name := range s.Names {
							if name.IsExported() {
								var fix *Fix
								if !grouped {
									fix = stubFix(d.Pos(), name.Name+" TODO: document.")
								}
								p.ReportFix(name.Pos(), fix, "exported %s %s has no doc comment",
									declKind(d), name.Name)
								break
							}
						}
					}
				}
			}
		}
	}
}

// realDoc reports whether a comment group documents anything: a group
// consisting only of //lint: directives is machinery, not documentation
// (and counting it would let a suppression double as a doc comment).
func realDoc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if _, isDirective := directiveText(c.Text); !isDirective {
			return true
		}
	}
	return false
}

// exportedRecv reports whether a function's receiver (if any) names an
// exported type — methods of unexported types are not public surface.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if ident, ok := t.(*ast.Ident); ok {
		return ident.IsExported()
	}
	return true
}

func declKind(d *ast.GenDecl) string {
	if d.Tok.String() == "const" {
		return "const"
	}
	return "var"
}
