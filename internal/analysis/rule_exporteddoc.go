package analysis

import (
	"go/ast"
)

// ruleExportedDoc keeps the public surface documented: in a non-main,
// non-internal package (for this module, the traj2hash facade itself),
// every exported top-level declaration needs a doc comment, and the
// package needs a package comment. Grouped const/var/type declarations
// are covered by a comment on the group. The internal/ packages are
// exempt — their contracts live in DESIGN.md and the other rules.
var ruleExportedDoc = &Rule{
	Name: "exporteddoc",
	Doc:  "exported identifiers of public packages need doc comments (documented-facade contract)",
	Fix:  "add a doc comment beginning with the identifier's name directly above the declaration",
	Run:  runExportedDoc,
}

func runExportedDoc(p *Pass) {
	if p.Pkg.Name == "main" || isInternalPath(p.Pkg.Path) {
		return
	}
	hasPkgDoc := false
	for _, f := range p.Pkg.Files {
		if f.Doc != nil {
			hasPkgDoc = true
		}
	}
	if !hasPkgDoc && len(p.Pkg.Files) > 0 {
		f := p.Pkg.Files[0]
		p.Reportf(f.Name.Pos(), "package %s has no package comment", p.Pkg.Name)
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && exportedRecv(d) && d.Doc == nil {
					kind := "function"
					if d.Recv != nil {
						kind = "method"
					}
					p.Reportf(d.Pos(), "exported %s %s has no doc comment", kind, d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
							p.Reportf(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
						}
					case *ast.ValueSpec:
						if d.Doc != nil || s.Doc != nil {
							continue
						}
						for _, name := range s.Names {
							if name.IsExported() {
								p.Reportf(name.Pos(), "exported %s %s has no doc comment",
									declKind(d), name.Name)
								break
							}
						}
					}
				}
			}
		}
	}
}

// exportedRecv reports whether a function's receiver (if any) names an
// exported type — methods of unexported types are not public surface.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if ident, ok := t.(*ast.Ident); ok {
		return ident.IsExported()
	}
	return true
}

func declKind(d *ast.GenDecl) string {
	if d.Tok.String() == "const" {
		return "const"
	}
	return "var"
}
