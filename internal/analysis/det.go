package analysis

// The determinism-contract taint analysis behind the detmaprange,
// detwallclock, and detunordered rules (rule_det.go). The system's
// strongest guarantees are byte-identity guarantees — bitwise-identical
// training resume, crash-recovery top-k parity through the WAL, exact
// cross-backend merge — and all of them die the moment nondeterminism
// reaches serialized or replayed state. This analysis tracks it there
// statically.
//
// Sources (what taints a value):
//
//	ORDER  map-range iteration order: `for k, v := range m`, maps.Keys,
//	       maps.Values, and anything derived from them
//	CLOCK  wall-clock and ambient process state: time.Now/Since/Until,
//	       the global math/rand functions (rand.New(rand.NewSource(seed))
//	       methods are deterministic and exempt), os.Getpid-class reads
//	SCHED  goroutine-completion order: writes to captured variables from
//	       `go` literals, receives fed by multiple goroutines, select
//	       over multiple channels
//
// Sinks (where taint is a finding):
//
//	- arguments of (*encoding/gob.Encoder).Encode / EncodeValue — gob
//	  bytes feed snapshots, checkpoints, datasets, and model files
//	- payload arguments of a wal Store's Append — every appended record
//	  is replayed verbatim during recovery
//	- return values of //det:replayed functions (detdirective.go), whose
//	  outcome is compared byte-for-byte across replays; additionally,
//	  ANY clock/ambient read or multi-channel select transitively
//	  reachable inside a //det:replayed function is a finding even
//	  without value flow, because replayed code must be a pure function
//	  of its logged inputs
//
// Propagation is a forward dataflow (SolveDataflow over BuildCFG) with
// per-variable taint masks, plus per-function summaries so module-local
// helpers launder nothing: a callee that ranges a map into a slice and
// returns it unsorted taints the caller's value at the sink. Summaries
// carry (a) the taint a call's result generates, (b) which parameters
// flow into the result, and (c) the taint the body merges back into
// each parameter (receiver included), so `capture(&state)` followed by
// an encode of state is caught too.
//
// Sanitizers: an in-place sort (sort.Strings/Ints/Float64s/Slice/...,
// slices.Sort*) clears ORDER and SCHED from its argument — a canonical
// order makes iteration-order and completion-order history irrelevant.
// Integer `+=`-style accumulation is exempt from ORDER/SCHED (exact and
// commutative, so accumulation order cannot change the result); float
// accumulation keeps its taint (float addition is not associative).
// Writes through an index that carries the same taint class as the
// value are slot-addressed (`vals[out.i] = out.v`) and do not taint the
// container.
//
// Known, deliberate approximations: taint does not flow through channel
// sends into receives (receives are tainted by the multi-sender
// heuristic instead), function values are opaque (only named
// functions/methods get summaries), and control-flow taint (branching
// on a tainted condition) is not tracked.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ---- taint lattice ----

// taint is a bitmask of nondeterminism classes.
type taint uint8

// Class indices (cause array slots) and their mask bits.
const (
	ciOrder = iota // map-iteration order
	ciClock        // wall clock / global rand / ambient process state
	ciSched        // goroutine-completion order
	ciN
)

const (
	taintOrder taint = 1 << ciOrder
	taintClock taint = 1 << ciClock
	taintSched taint = 1 << ciSched
)

// detCause records the first source that introduced one taint class,
// for human-readable findings.
type detCause struct {
	what string
	pos  token.Pos
}

// taintVal is the abstract value of one variable: which classes taint
// it, which function parameters flow into it (bit i = parameter i,
// receiver first), and the first cause per class.
type taintVal struct {
	mask   taint
	params uint32
	cause  [ciN]*detCause
}

func (t taintVal) zero() bool { return t.mask == 0 && t.params == 0 }

func mergeTaint(a, b taintVal) taintVal {
	out := a
	out.mask |= b.mask
	out.params |= b.params
	for i := 0; i < ciN; i++ {
		if out.cause[i] == nil {
			out.cause[i] = b.cause[i]
		}
	}
	return out
}

func classTaint(ci int, what string, pos token.Pos) taintVal {
	var t taintVal
	t.mask = 1 << ci
	t.cause[ci] = &detCause{what: what, pos: pos}
	return t
}

// causeStr names the recorded source of one class, with a fallback for
// taint that arrived purely through parameter rebinding.
func causeStr(t taintVal, ci int) string {
	if c := t.cause[ci]; c != nil {
		return c.what
	}
	return "a nondeterministic source"
}

// detFact is the dataflow fact: per-variable taint.
type detFact map[*types.Var]taintVal

func cloneFact(f detFact) detFact {
	out := make(detFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func equalFact(a, b detFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok || v.mask != w.mask || v.params != w.params {
			return false
		}
	}
	return true
}

// ---- per-function summaries ----

// detSummary is the interprocedural view of one module function.
type detSummary struct {
	// ret is the taint of the function's (merged) return values: mask =
	// taint generated inside the body, params = which parameters flow
	// into the result.
	ret taintVal
	// paramOut[i] is the taint the body merges back INTO parameter i
	// (receiver first) — pointer/receiver mutation flow.
	paramOut []taintVal
	// observes is the clock/sched event set the body (or a transitive
	// module callee) executes regardless of value flow: time.Now-class
	// reads and multi-channel selects.
	observes taintVal
}

// ---- analyzer ----

// detFinding is one pre-computed finding, tagged with the rule that
// owns it.
type detFinding struct {
	rule string
	pos  token.Pos
	msg  string
	fix  *Fix
}

type detAnalyzer struct {
	pkg        *Package
	summaries  map[*types.Func]*detSummary
	inProgress map[*types.Func]bool
	findings   []detFinding
	seen       map[string]bool // rule|file|line dedupe
}

// detMemo caches one package's det analysis across the three rules
// (each rule's Run filters the shared finding list by rule name).
type detMemo struct {
	once     sync.Once
	findings []detFinding
}

var detMemos sync.Map // *Package -> *detMemo

// detFindings runs (once per package) the full determinism analysis and
// returns its findings.
func detFindings(pkg *Package) []detFinding {
	mi, _ := detMemos.LoadOrStore(pkg, &detMemo{})
	m := mi.(*detMemo)
	m.once.Do(func() {
		a := &detAnalyzer{
			pkg:        pkg,
			summaries:  map[*types.Func]*detSummary{},
			inProgress: map[*types.Func]bool{},
			seen:       map[string]bool{},
		}
		a.run()
		m.findings = a.findings
	})
	return m.findings
}

func (a *detAnalyzer) run() {
	replayed := map[*ast.FuncDecl]detFunc{}
	for _, df := range detFuncs(a.pkg) {
		replayed[df.decl] = df
	}
	for _, f := range a.pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var rep *detFunc
			if df, ok := replayed[fd]; ok {
				rep = &df
			}
			var fn *types.Func
			if def, ok := a.pkg.Info.Defs[fd.Name].(*types.Func); ok {
				fn = def
			}
			a.analyzeFuncBody(a.pkg, fd, fd.Body, fn, rep, true)
			if rep != nil {
				a.checkReplayedObserves(a.pkg, fd, *rep)
			}
		}
	}
	sort.Slice(a.findings, func(i, j int) bool {
		if a.findings[i].pos != a.findings[j].pos {
			return a.findings[i].pos < a.findings[j].pos
		}
		return a.findings[i].rule < a.findings[j].rule
	})
}

// report records one finding, deduplicated per (rule, file, line) so a
// source that is both an observed event and a tainted return on the
// same line yields one diagnostic.
func (a *detAnalyzer) report(rule string, pos token.Pos, msg string, fix *Fix) {
	p := a.pkg.Fset.Position(pos)
	key := rule + "|" + p.Filename + "|" + fmt.Sprint(p.Line)
	if a.seen[key] {
		return
	}
	a.seen[key] = true
	a.findings = append(a.findings, detFinding{rule: rule, pos: pos, msg: msg, fix: fix})
}

func (a *detAnalyzer) shortPos(pkg *Package, pos token.Pos) string {
	p := pkg.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// summarize computes (and memoizes) the interprocedural summary of a
// module function, analyzing its body once without reporting.
func (a *detAnalyzer) summarize(fn *types.Func) *detSummary {
	if s, ok := a.summaries[fn]; ok {
		return s
	}
	if a.inProgress[fn] {
		return &detSummary{} // recursion: partial (empty) summary
	}
	a.inProgress[fn] = true
	defer func() { a.inProgress[fn] = false }()

	s := &detSummary{}
	pkg, decl := a.pkg.FuncDeclOf(fn)
	if decl == nil || decl.Body == nil {
		a.summaries[fn] = s
		return s
	}
	body, exit := a.analyzeFuncBody(pkg, decl, decl.Body, fn, nil, false)
	s.ret = body.ret
	s.paramOut = make([]taintVal, len(body.params))
	for i, v := range body.params {
		t := exit[v]
		if i < 30 {
			t.params &^= uint32(1) << uint(i) // a param trivially carries its own bit
		}
		s.paramOut[i] = t
	}
	s.observes = a.observesOf(pkg, decl)
	a.summaries[fn] = s
	return s
}

// observesOf collects the clock/sched events a body executes regardless
// of value flow: direct ambient reads, multi-channel selects, and the
// observations of transitive module callees. Function literals are
// included — they run within the function's dynamic extent.
func (a *detAnalyzer) observesOf(pkg *Package, decl *ast.FuncDecl) taintVal {
	var out taintVal
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			if nc := nonDefaultComms(n); nc >= 2 {
				out = mergeTaint(out, classTaint(ciSched,
					fmt.Sprintf("a select over %d channels (%s)", nc, a.shortPos(pkg, n.Pos())), n.Pos()))
			}
		case *ast.CallExpr:
			if src, ok := a.stdlibSource(pkg, n); ok {
				if src.mask&taintClock != 0 {
					out = mergeTaint(out, src)
				}
			} else if fn := calleeFunc(pkg, n); fn != nil && isModuleFunc(fn, a.pkg.Module) {
				sub := a.summarize(fn).observes
				if sub.mask != 0 {
					out = mergeTaint(out, sub)
				}
			}
		}
		return true
	})
	return out
}

// checkReplayedObserves reports, inside a //det:replayed function, every
// ambient read and scheduling-dependent select — direct or through a
// module callee — at its call site.
func (a *detAnalyzer) checkReplayedObserves(pkg *Package, decl *ast.FuncDecl, rep detFunc) {
	name := funcDisplayName(decl)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			if nc := nonDefaultComms(n); nc >= 2 {
				a.report("detunordered", n.Pos(), fmt.Sprintf(
					"%s is //det:replayed (%s) but selects over %d channels — which branch runs depends on goroutine scheduling, so replay can diverge",
					name, rep.reason, nc), nil)
			}
		case *ast.CallExpr:
			if src, ok := a.stdlibSource(pkg, n); ok {
				if src.mask&taintClock != 0 {
					a.report("detwallclock", n.Pos(), fmt.Sprintf(
						"%s is //det:replayed (%s) but reads %s — replayed code must be a pure function of its logged inputs",
						name, rep.reason, causeStr(src, ciClock)), nil)
				}
			} else if fn := calleeFunc(pkg, n); fn != nil && isModuleFunc(fn, a.pkg.Module) {
				obs := a.summarize(fn).observes
				if obs.mask&taintClock != 0 {
					a.report("detwallclock", n.Pos(), fmt.Sprintf(
						"%s is //det:replayed (%s) but calls %s, which transitively reads %s — replayed code must be a pure function of its logged inputs",
						name, rep.reason, fn.Name(), causeStr(obs, ciClock)), nil)
				}
				if obs.mask&taintSched != 0 {
					a.report("detunordered", n.Pos(), fmt.Sprintf(
						"%s is //det:replayed (%s) but calls %s, which transitively contains %s — replay can diverge with goroutine scheduling",
						name, rep.reason, fn.Name(), causeStr(obs, ciSched)), nil)
				}
			}
		}
		return true
	})
}

// stdlibSource recognizes the nondeterminism-source calls. Methods are
// never sources here (a seeded *rand.Rand is deterministic); only
// package-level functions qualify.
func (a *detAnalyzer) stdlibSource(pkg *Package, call *ast.CallExpr) (taintVal, bool) {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return taintVal{}, false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return taintVal{}, false
	}
	name := fn.Name()
	posStr := a.shortPos(pkg, call.Pos())
	switch fn.Pkg().Path() {
	case "time":
		switch name {
		case "Now", "Since", "Until":
			return classTaint(ciClock, "the wall clock (time."+name+" at "+posStr+")", call.Pos()), true
		}
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[name] {
			return classTaint(ciClock, "the global math/rand source (rand."+name+" at "+posStr+")", call.Pos()), true
		}
	case "os":
		if ambientOSFuncs[name] {
			return classTaint(ciClock, "ambient process state (os."+name+" at "+posStr+")", call.Pos()), true
		}
	case "maps":
		switch name {
		case "Keys", "Values":
			return classTaint(ciOrder, "map iteration order (maps."+name+" at "+posStr+")", call.Pos()), true
		}
	}
	return taintVal{}, false
}

// globalRandFuncs are the math/rand package-level functions backed by
// the shared global source. Constructors (New, NewSource, NewZipf) are
// deterministic given their arguments and excluded.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint": true, "UintN": true,
	"Uint32N": true, "Uint64N": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true,
}

// ambientOSFuncs are the os reads whose result depends on the process
// environment rather than program inputs.
var ambientOSFuncs = map[string]bool{
	"Getpid": true, "Getppid": true, "Getuid": true, "Getgid": true,
	"Getenv": true, "LookupEnv": true, "Environ": true,
	"Hostname": true, "Getwd": true, "TempDir": true,
}

// nonDefaultComms counts a select's non-default communication clauses.
func nonDefaultComms(s *ast.SelectStmt) int {
	n := 0
	for _, raw := range s.Body.List {
		if cc, ok := raw.(*ast.CommClause); ok && cc.Comm != nil {
			n++
		}
	}
	return n
}

// ---- per-body analysis ----

// detBody carries one function (or literal) body through the dataflow.
type detBody struct {
	a         *detAnalyzer
	pkg       *Package
	decl      *ast.FuncDecl
	rep       *detFunc
	report    bool
	params    []*types.Var // receiver first
	paramBit  map[*types.Var]int
	results   []*types.Var // named results
	multiSend bool
	multiComm map[ast.Stmt]bool // comm statements of multi-case selects
	lits      []*ast.FuncLit    // top-level literals of this body
	ret       taintVal          // merged taint of all returns
}

// analyzeFuncBody runs the dataflow over one body. With report=true it
// emits findings for the analyzer's package; with report=false it only
// computes the summary inputs (return taint, exit fact). The returned
// fact is the body's exit fact (parameter mutation view).
func (a *detAnalyzer) analyzeFuncBody(pkg *Package, decl *ast.FuncDecl, body *ast.BlockStmt, fn *types.Func, rep *detFunc, report bool) (*detBody, detFact) {
	b := &detBody{
		a: a, pkg: pkg, decl: decl, rep: rep, report: report,
		paramBit:  map[*types.Var]int{},
		multiComm: map[ast.Stmt]bool{},
	}
	if fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok {
			if r := sig.Recv(); r != nil {
				b.params = append(b.params, r)
			}
			for i := 0; i < sig.Params().Len(); i++ {
				b.params = append(b.params, sig.Params().At(i))
			}
			for i, v := range b.params {
				if i < 30 {
					b.paramBit[v] = i
				}
			}
			for i := 0; i < sig.Results().Len(); i++ {
				if rv := sig.Results().At(i); rv.Name() != "" {
					b.results = append(b.results, rv)
				}
			}
		}
	}
	b.scanShape(body)

	entry := detFact{}
	for v, bit := range b.paramBit {
		entry[v] = taintVal{params: uint32(1) << uint(bit)}
	}
	g := BuildCFG(body)
	prob := Dataflow[detFact]{
		Dir:      Forward,
		Bottom:   func() detFact { return detFact{} },
		Boundary: func() detFact { return cloneFact(entry) },
		Join: func(acc, src detFact) detFact {
			for k, v := range src {
				acc[k] = mergeTaint(acc[k], v)
			}
			return acc
		},
		Equal: equalFact,
		Transfer: func(blk *CFGBlock, in detFact) detFact {
			out := cloneFact(in)
			for _, n := range blk.Nodes {
				b.transferNode(n, out)
			}
			return out
		},
	}
	res := SolveDataflow(g, prob)

	// Replay each block from its fixed-point input, checking sinks with
	// the fact live at each statement and collecting return taint.
	for _, blk := range g.Blocks {
		fact := cloneFact(res.In[blk.Index])
		for _, n := range blk.Nodes {
			if report {
				b.checkSinks(n, fact)
			}
			b.collectReturn(n, fact)
			b.transferNode(n, fact)
		}
	}

	// Function literals are their own control-flow scopes; analyze each
	// for sinks when reporting (their free variables start unknown).
	if report {
		for _, lit := range b.lits {
			a.analyzeFuncBody(pkg, decl, lit.Body, nil, nil, true)
		}
	}
	return b, res.In[g.Exit.Index]
}

// scanShape precomputes body-level structure: the multi-sender
// heuristic (two or more spawned goroutines, counting a `go` inside a
// loop as many), the comm statements of multi-case selects, and the
// body's top-level function literals.
func (b *detBody) scanShape(body *ast.BlockStmt) {
	goCount := 0
	depth := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			b.lits = append(b.lits, n)
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			depth++
			ast.Inspect(n, func(m ast.Node) bool {
				if m == n {
					return true
				}
				return walk(m)
			})
			depth--
			return false
		case *ast.GoStmt:
			if depth > 0 {
				goCount += 2
			} else {
				goCount++
			}
		case *ast.SelectStmt:
			if nonDefaultComms(n) >= 2 {
				for _, raw := range n.Body.List {
					if cc, ok := raw.(*ast.CommClause); ok && cc.Comm != nil {
						b.multiComm[cc.Comm] = true
					}
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	b.multiSend = goCount >= 2
}

// sinkScanRoot narrows composite CFG nodes to the part evaluated at
// that point: a RangeStmt node in a loop head stands only for its range
// expression (the body statements live in their own blocks).
func sinkScanRoot(n ast.Node) ast.Node {
	if rs, ok := n.(*ast.RangeStmt); ok {
		return rs.X
	}
	return n
}

// ---- transfer function ----

func (b *detBody) transferNode(n ast.Node, fact detFact) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		b.assign(n, fact)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var t taintVal
					if i < len(vs.Values) {
						t = b.exprTaint(vs.Values[i], fact)
					} else if len(vs.Values) == 1 && len(vs.Names) > 1 {
						t = b.exprTaint(vs.Values[0], fact)
					}
					b.assignTo(name, t, fact)
				}
			}
		}
	case *ast.RangeStmt:
		b.rangeTaint(n, fact)
		b.applyCallEffects(n.X, fact)
		return
	case *ast.ExprStmt:
		if call, ok := detUnparen(n.X).(*ast.CallExpr); ok && b.sanitize(call, fact) {
			return
		}
	case *ast.GoStmt:
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			b.goLitWrites(lit, fact)
		}
	}
	b.applyCallEffects(n, fact)
}

func (b *detBody) assign(n *ast.AssignStmt, fact detFact) {
	if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
		// Op-assign (x += y, ...): merge, with the commutative-integer
		// exemption for ORDER/SCHED (exact accumulation is
		// order-insensitive; float accumulation is not).
		if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
			t := b.exprTaint(n.Rhs[0], fact)
			if commutativeIntOp(n.Tok) && b.isIntegerExpr(n.Lhs[0]) {
				t.mask &^= taintOrder | taintSched
			}
			if v := b.lhsRootVar(n.Lhs[0]); v != nil {
				fact[v] = mergeTaint(fact[v], t)
			}
		}
		return
	}
	var extra taintVal
	if b.multiComm[n] {
		extra = classTaint(ciSched,
			"a select over multiple channels ("+b.a.shortPos(b.pkg, n.Pos())+")", n.Pos())
	}
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		t := mergeTaint(b.exprTaint(n.Rhs[0], fact), extra)
		for _, l := range n.Lhs {
			b.assignTo(l, t, fact)
		}
		return
	}
	for i, l := range n.Lhs {
		if i >= len(n.Rhs) {
			break
		}
		b.assignTo(l, mergeTaint(b.exprTaint(n.Rhs[i], fact), extra), fact)
	}
}

// assignTo applies one l = t binding. Identifiers get a strong update;
// element/field/pointer writes merge into the container variable, with
// the slot-addressing exemption: taint classes already present on the
// index are keyed writes (`vals[out.i] = out.v`), which are
// order-insensitive and do not taint the container.
func (b *detBody) assignTo(l ast.Expr, t taintVal, fact detFact) {
	switch l := detUnparen(l).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		if v := b.identVar(l); v != nil {
			fact[v] = t
		}
	case *ast.IndexExpr:
		it := b.exprTaint(l.Index, fact)
		eff := t
		eff.mask &^= it.mask
		if !eff.zero() {
			if v := b.lhsRootVar(l.X); v != nil {
				fact[v] = mergeTaint(fact[v], eff)
			}
		}
	case *ast.SelectorExpr:
		if v := b.lhsRootVar(l.X); v != nil {
			fact[v] = mergeTaint(fact[v], t)
		}
	case *ast.StarExpr:
		if v := b.lhsRootVar(l.X); v != nil {
			fact[v] = mergeTaint(fact[v], t)
		}
	}
}

func (b *detBody) rangeTaint(n *ast.RangeStmt, fact detFact) {
	xt := b.exprTaint(n.X, fact)
	var keyT, valT taintVal
	switch typeUnderlying(b.pkg.Info.TypeOf(n.X)).(type) {
	case *types.Map:
		c := classTaint(ciOrder, fmt.Sprintf("range over map %s (%s)",
			types.ExprString(n.X), b.a.shortPos(b.pkg, n.Pos())), n.Pos())
		keyT = mergeTaint(xt, c)
		valT = keyT
	case *types.Chan:
		valT = xt
		if b.multiSend {
			valT = mergeTaint(valT, classTaint(ciSched,
				"a range over a channel fed by multiple goroutines ("+b.a.shortPos(b.pkg, n.Pos())+")", n.Pos()))
		}
		keyT = valT
	default:
		// Slices, arrays, strings, ints, iterators: indices are
		// deterministic; element values inherit the container's taint
		// (iterating a nondeterministically-ordered slice visits values
		// in nondeterministic order).
		valT = xt
	}
	if n.Key != nil {
		b.assignTo(n.Key, keyT, fact)
	}
	if n.Value != nil {
		b.assignTo(n.Value, valT, fact)
	}
}

// sanitize recognizes statement-level in-place sorts and clears
// ORDER/SCHED from the sorted variable: a canonical order makes both
// iteration-order and completion-order history irrelevant.
func (b *detBody) sanitize(call *ast.CallExpr, fact detFact) bool {
	fn := calleeFunc(b.pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	ok := false
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Sort", "Stable", "Slice", "SliceStable", "Strings", "Ints", "Float64s":
			ok = true
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			ok = true
		}
	}
	if !ok || len(call.Args) == 0 {
		return false
	}
	v := b.lhsRootVar(call.Args[0])
	if v == nil {
		return false
	}
	t := fact[v]
	t.mask &^= taintOrder | taintSched
	t.cause[ciOrder], t.cause[ciSched] = nil, nil
	t.params = 0 // carried argument taint is laundered by the canonical order
	fact[v] = t
	return true
}

// goLitWrites taints, with SCHED, every captured variable a `go`
// literal writes in completion order: plain assignments and appends are
// last-writer/arrival-order races; integer op-assign accumulation and
// index/field writes (slot-addressed) are exempt.
func (b *detBody) goLitWrites(lit *ast.FuncLit, fact detFact) {
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		as, ok := x.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, l := range as.Lhs {
			id, ok := detUnparen(l).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			v := b.identVar(id)
			if v == nil || (v.Pos() >= lit.Pos() && v.Pos() <= lit.End()) {
				continue // local to the literal
			}
			if as.Tok != token.ASSIGN && as.Tok != token.DEFINE &&
				commutativeIntOp(as.Tok) && b.isIntegerExpr(id) {
				continue
			}
			c := classTaint(ciSched, fmt.Sprintf(
				"goroutine-completion-order write to %s (%s)", id.Name, b.a.shortPos(b.pkg, as.Pos())), as.Pos())
			fact[v] = mergeTaint(fact[v], c)
		}
		return true
	})
}

// applyCallEffects merges module callees' parameter-mutation taint
// (summary.paramOut) into addressable arguments: capture(&state)
// taints state if capture's body taints its parameter.
func (b *detBody) applyCallEffects(n ast.Node, fact detFact) {
	root := sinkScanRoot(n)
	if root == nil {
		return
	}
	ast.Inspect(root, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(b.pkg, call)
		if fn == nil || !isModuleFunc(fn, b.a.pkg.Module) {
			return true
		}
		sum := b.a.summarize(fn)
		args := callArgsWithRecv(call, fn)
		for i, arg := range args {
			if arg == nil || i >= len(sum.paramOut) {
				continue
			}
			po := sum.paramOut[i]
			if po.zero() {
				continue
			}
			v := b.lhsRootVar(arg)
			if v == nil {
				continue
			}
			t := taintVal{mask: po.mask, cause: po.cause}
			for j := 0; j < len(args) && j < 30; j++ {
				if po.params&(uint32(1)<<uint(j)) != 0 && args[j] != nil {
					t = mergeTaint(t, b.exprTaint(args[j], fact))
				}
			}
			fact[v] = mergeTaint(fact[v], t)
		}
		return true
	})
}

// ---- expression taint ----

func (b *detBody) exprTaint(e ast.Expr, fact detFact) taintVal {
	switch e := e.(type) {
	case *ast.Ident:
		if v := b.identVar(e); v != nil {
			return fact[v]
		}
	case *ast.ParenExpr:
		return b.exprTaint(e.X, fact)
	case *ast.UnaryExpr:
		t := b.exprTaint(e.X, fact)
		if e.Op == token.ARROW && b.multiSend {
			t = mergeTaint(t, classTaint(ciSched,
				"a receive from a channel fed by multiple goroutines ("+b.a.shortPos(b.pkg, e.Pos())+")", e.Pos()))
		}
		return t
	case *ast.StarExpr:
		return b.exprTaint(e.X, fact)
	case *ast.BinaryExpr:
		return mergeTaint(b.exprTaint(e.X, fact), b.exprTaint(e.Y, fact))
	case *ast.CallExpr:
		return b.callTaint(e, fact)
	case *ast.CompositeLit:
		var t taintVal
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				t = mergeTaint(t, b.exprTaint(kv.Value, fact))
			} else {
				t = mergeTaint(t, b.exprTaint(el, fact))
			}
		}
		return t
	case *ast.IndexExpr:
		return mergeTaint(b.exprTaint(e.X, fact), b.exprTaint(e.Index, fact))
	case *ast.SliceExpr:
		return b.exprTaint(e.X, fact)
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := b.pkg.Info.Uses[id].(*types.PkgName); isPkg {
				return taintVal{}
			}
		}
		return b.exprTaint(e.X, fact)
	case *ast.TypeAssertExpr:
		return b.exprTaint(e.X, fact)
	case *ast.IndexListExpr:
		return b.exprTaint(e.X, fact)
	}
	return taintVal{}
}

func (b *detBody) callTaint(call *ast.CallExpr, fact detFact) taintVal {
	info := b.pkg.Info
	if id, ok := detUnparen(call.Fun).(*ast.Ident); ok {
		if bi, ok := info.Uses[id].(*types.Builtin); ok {
			if bi.Name() == "append" {
				var t taintVal
				for _, a := range call.Args {
					t = mergeTaint(t, b.exprTaint(a, fact))
				}
				return t
			}
			// len, cap, make, new, copy, min, max, ...: deterministic
			// given deterministic content.
			return taintVal{}
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return b.exprTaint(call.Args[0], fact) // conversion
		}
		return taintVal{}
	}
	if src, ok := b.a.stdlibSource(b.pkg, call); ok {
		return src
	}
	fn := calleeFunc(b.pkg, call)
	if fn != nil && fn.Pkg() != nil {
		if fn.Pkg().Path() == "slices" {
			switch fn.Name() {
			case "Sorted", "SortedFunc", "SortedStableFunc":
				// Sorted copies are canonical regardless of input order.
				var t taintVal
				for _, a := range call.Args {
					t = mergeTaint(t, b.exprTaint(a, fact))
				}
				t.mask &^= taintOrder | taintSched
				t.cause[ciOrder], t.cause[ciSched] = nil, nil
				return t
			}
		}
		if isModuleFunc(fn, b.a.pkg.Module) {
			sum := b.a.summarize(fn)
			t := taintVal{mask: sum.ret.mask, cause: sum.ret.cause}
			args := callArgsWithRecv(call, fn)
			for i := 0; i < len(args) && i < 30; i++ {
				if sum.ret.params&(uint32(1)<<uint(i)) != 0 && args[i] != nil {
					t = mergeTaint(t, b.exprTaint(args[i], fact))
				}
			}
			return t
		}
	}
	// Opaque call (stdlib, interface method, func value): taint flows
	// through the receiver and arguments.
	var t taintVal
	if sel, ok := detUnparen(call.Fun).(*ast.SelectorExpr); ok {
		t = mergeTaint(t, b.exprTaint(sel.X, fact))
	}
	for _, a := range call.Args {
		t = mergeTaint(t, b.exprTaint(a, fact))
	}
	return t
}

// ---- sinks ----

type sinkClass int

const (
	sinkNone sinkClass = iota
	sinkGob
	sinkWAL
)

func (s sinkClass) String() string {
	switch s {
	case sinkGob:
		return "gob encode"
	case sinkWAL:
		return "WAL append payload"
	}
	return "sink"
}

func (b *detBody) sinkKind(call *ast.CallExpr) sinkClass {
	sel, ok := detUnparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return sinkNone
	}
	switch sel.Sel.Name {
	case "Encode", "EncodeValue":
		if named := namedRecvType(b.pkg, sel.X); named != nil {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "encoding/gob" && obj.Name() == "Encoder" {
				return sinkGob
			}
		}
	case "Append":
		if named := namedRecvType(b.pkg, sel.X); named != nil {
			obj := named.Obj()
			if obj.Pkg() != nil && shortPkg(obj.Pkg().Path()) == "wal" {
				return sinkWAL
			}
		}
	}
	return sinkNone
}

func (b *detBody) checkSinks(n ast.Node, fact detFact) {
	root := sinkScanRoot(n)
	if root == nil {
		return
	}
	ast.Inspect(root, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind := b.sinkKind(call)
		if kind == sinkNone {
			return true
		}
		for _, arg := range call.Args {
			t := b.exprTaint(arg, fact)
			if t.mask&taintOrder != 0 {
				b.a.report("detmaprange", arg.Pos(), fmt.Sprintf(
					"map-iteration-ordered data reaches this %s: %s — sort %s into a canonical order before serializing (replayed/recovered state must be byte-stable)",
					kind, causeStr(t, ciOrder), types.ExprString(arg)), b.sortFix(n, arg))
			}
			if t.mask&taintClock != 0 {
				b.a.report("detwallclock", arg.Pos(), fmt.Sprintf(
					"wall-clock/ambient data reaches this %s: %s — serialized state must be a pure function of logged inputs",
					kind, causeStr(t, ciClock)), nil)
			}
			if t.mask&taintSched != 0 {
				b.a.report("detunordered", arg.Pos(), fmt.Sprintf(
					"goroutine-completion-ordered data reaches this %s: %s — collect results by slot index or sort before serializing",
					kind, causeStr(t, ciSched)), nil)
			}
			if kind == sinkGob {
				if at := b.pkg.Info.TypeOf(arg); at != nil && typeContainsMap(at) {
					b.a.report("detmaprange", arg.Pos(), fmt.Sprintf(
						"gob-encoding %s serializes a map (type %s) — gob writes map entries in nondeterministic iteration order, so the bytes differ run to run; encode a sorted slice of key/value pairs instead",
						types.ExprString(arg), at.String()), nil)
				}
			}
		}
		return true
	})
}

// collectReturn merges return-value taint into the body summary and,
// for //det:replayed functions, reports tainted returns.
func (b *detBody) collectReturn(n ast.Node, fact detFact) {
	ret, ok := n.(*ast.ReturnStmt)
	if !ok {
		return
	}
	type rv struct {
		t   taintVal
		pos token.Pos
	}
	var vals []rv
	if len(ret.Results) > 0 {
		for _, r := range ret.Results {
			vals = append(vals, rv{b.exprTaint(r, fact), r.Pos()})
		}
	} else {
		for _, nres := range b.results {
			vals = append(vals, rv{fact[nres], ret.Pos()})
		}
	}
	for _, v := range vals {
		b.ret = mergeTaint(b.ret, v.t)
		if b.rep == nil || !b.report {
			continue
		}
		name := funcDisplayName(b.decl)
		if v.t.mask&taintOrder != 0 {
			b.a.report("detmaprange", v.pos, fmt.Sprintf(
				"%s is //det:replayed (%s) but returns map-iteration-ordered data: %s — sort into a canonical order first",
				name, b.rep.reason, causeStr(v.t, ciOrder)), nil)
		}
		if v.t.mask&taintClock != 0 {
			b.a.report("detwallclock", v.pos, fmt.Sprintf(
				"%s is //det:replayed (%s) but returns wall-clock/ambient data: %s",
				name, b.rep.reason, causeStr(v.t, ciClock)), nil)
		}
		if v.t.mask&taintSched != 0 {
			b.a.report("detunordered", v.pos, fmt.Sprintf(
				"%s is //det:replayed (%s) but returns goroutine-completion-ordered data: %s",
				name, b.rep.reason, causeStr(v.t, ciSched)), nil)
		}
	}
}

// sortFix offers the mechanical sort-before-encode fix: when the sink
// argument is a plain identifier of a mechanically sortable slice type
// ([]string, []int, []float64), insert the canonical sort on the line
// before the sink statement. Offered only when the file already imports
// "sort" or has a grouped import declaration to splice it into.
func (b *detBody) sortFix(stmt ast.Node, arg ast.Expr) *Fix {
	if _, ok := stmt.(ast.Stmt); !ok {
		return nil
	}
	id, ok := detUnparen(arg).(*ast.Ident)
	if !ok {
		return nil
	}
	slice, ok := typeUnderlying(b.pkg.Info.TypeOf(id)).(*types.Slice)
	if !ok {
		return nil
	}
	elem, ok := slice.Elem().Underlying().(*types.Basic)
	if !ok {
		return nil
	}
	var sortFn string
	switch elem.Kind() {
	case types.String:
		sortFn = "sort.Strings"
	case types.Int:
		sortFn = "sort.Ints"
	case types.Float64:
		sortFn = "sort.Float64s"
	default:
		return nil
	}
	pos := b.pkg.Fset.Position(stmt.Pos())
	src, err := os.ReadFile(pos.Filename)
	if err != nil {
		return nil
	}
	lineStart := pos.Offset
	for lineStart > 0 && src[lineStart-1] != '\n' {
		lineStart--
	}
	indent := ""
	for i := lineStart; i < len(src) && (src[i] == ' ' || src[i] == '\t'); i++ {
		indent += string(src[i])
	}
	edits := []Edit{{
		File: pos.Filename, Start: lineStart, End: lineStart,
		New: indent + sortFn + "(" + id.Name + ")\n",
	}}
	if imp := b.importEdit(stmt.Pos(), "sort"); imp != nil {
		edits = append(edits, *imp)
	} else if !b.fileImports(stmt.Pos(), "sort") {
		return nil
	}
	return &Fix{Message: "sort " + id.Name + " into its canonical order before encoding", Edits: edits}
}

// fileOf locates the syntax file containing pos.
func (b *detBody) fileOf(pos token.Pos) *ast.File {
	for _, f := range b.pkg.Files {
		if f.Pos() <= pos && pos <= f.End() {
			return f
		}
	}
	return nil
}

func (b *detBody) fileImports(pos token.Pos, path string) bool {
	f := b.fileOf(pos)
	if f == nil {
		return false
	}
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) == path {
			return true
		}
	}
	return false
}

// importEdit returns an edit adding `path` to the file's first grouped
// import declaration, or nil when the import is already present (or no
// grouped declaration exists to splice into).
func (b *detBody) importEdit(pos token.Pos, path string) *Edit {
	if b.fileImports(pos, path) {
		return nil
	}
	f := b.fileOf(pos)
	if f == nil {
		return nil
	}
	for _, d := range f.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT || !gd.Lparen.IsValid() {
			continue
		}
		p := b.pkg.Fset.Position(gd.Lparen)
		return &Edit{File: p.Filename, Start: p.Offset + 1, End: p.Offset + 1, New: "\n\t\"" + path + "\""}
	}
	return nil
}

// ---- small helpers ----

func detUnparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func (b *detBody) identVar(id *ast.Ident) *types.Var {
	if v, ok := b.pkg.Info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := b.pkg.Info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// lhsRootVar unwraps an addressable expression to its base variable:
// (*p).f[i] → p, byID(x) → x.
func (b *detBody) lhsRootVar(e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := b.pkg.Info.Uses[id].(*types.PkgName); isPkg {
					return nil
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.CallExpr:
			if tv, ok := b.pkg.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
				e = x.Args[0]
				continue
			}
			return nil
		case *ast.Ident:
			return b.identVar(x)
		default:
			return nil
		}
	}
}

func (b *detBody) isIntegerExpr(e ast.Expr) bool {
	basic, ok := typeUnderlying(b.pkg.Info.TypeOf(e)).(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

// commutativeIntOp reports whether an op-assign token is
// order-insensitive over exact integers.
func commutativeIntOp(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.MUL_ASSIGN, token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
		return true
	}
	return false
}

// callArgsWithRecv returns a call's arguments with the receiver
// prepended for method calls (aligning indices with summary parameter
// bits). A nil slot marks an unresolvable receiver (method values).
func callArgsWithRecv(call *ast.CallExpr, fn *types.Func) []ast.Expr {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return call.Args
	}
	if sel, ok := detUnparen(call.Fun).(*ast.SelectorExpr); ok {
		return append([]ast.Expr{sel.X}, call.Args...)
	}
	return append([]ast.Expr{nil}, call.Args...)
}

// typeUnderlying is Underlying with nil tolerance.
func typeUnderlying(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}

// namedRecvType resolves a method receiver expression to its named
// type, dereferencing pointers.
func namedRecvType(pkg *Package, recv ast.Expr) *types.Named {
	t := pkg.Info.TypeOf(recv)
	for {
		if ptr, ok := typeUnderlying(t).(*types.Pointer); ok {
			t = ptr.Elem()
			continue
		}
		break
	}
	named, _ := t.(*types.Named)
	return named
}

// typeContainsMap reports whether a gob encoding of t serializes a map
// (gob walks exported fields only, and map entries encode in iteration
// order — inherently nondeterministic bytes).
func typeContainsMap(t types.Type) bool {
	return containsMap(t, map[types.Type]bool{}, 0)
}

func containsMap(t types.Type, seen map[types.Type]bool, depth int) bool {
	if t == nil || depth > 12 || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Map:
		return true
	case *types.Slice:
		return containsMap(u.Elem(), seen, depth+1)
	case *types.Array:
		return containsMap(u.Elem(), seen, depth+1)
	case *types.Pointer:
		return containsMap(u.Elem(), seen, depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() {
				continue
			}
			if containsMap(f.Type(), seen, depth+1) {
				return true
			}
		}
	}
	return false
}

// funcDisplayName renders a declaration name with its receiver type for
// findings ("(*Store).Append", "trainLoop").
func funcDisplayName(decl *ast.FuncDecl) string {
	if decl == nil || decl.Name == nil {
		return "func"
	}
	if decl.Recv != nil && len(decl.Recv.List) == 1 {
		return "(" + types.ExprString(decl.Recv.List[0].Type) + ")." + decl.Name.Name
	}
	return decl.Name.Name
}
