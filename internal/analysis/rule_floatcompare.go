package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ruleFloatCompare forbids exact ==/!= on float-typed operands. Exact
// float equality silently depends on evaluation order and compiler
// optimizations; the repo's distance scores, loss values, and merge
// tie-breaks must either compare through an explicit tolerance or carry a
// //lint:ignore with the reason the exact comparison is sound (e.g. a
// sort tie-break where both operands are stored values, never computed
// fresh). The x != x NaN test is recognized as an idiom and allowed.
var ruleFloatCompare = &Rule{
	Name: "floatcompare",
	Doc:  "no ==/!= on float operands; compare through a tolerance or justify with //lint:ignore",
	Run:  runFloatCompare,
}

func runFloatCompare(p *Pass) {
	p.inspect(func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			return true
		}
		lt, rt := p.Pkg.Info.TypeOf(bin.X), p.Pkg.Info.TypeOf(bin.Y)
		if !isFloat(lt) && !isFloat(rt) {
			return true
		}
		// x != x (and x == x) is the classic NaN test; identical operand
		// syntax cannot race against recomputation.
		if types.ExprString(bin.X) == types.ExprString(bin.Y) {
			return true
		}
		p.Reportf(bin.OpPos,
			"exact %s comparison of float operands; use a tolerance (math.Abs(a-b) <= eps) or suppress with the reason exactness is sound",
			bin.Op)
		return true
	})
}

// isFloat reports whether t is (or is based on) a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
