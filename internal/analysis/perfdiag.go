package analysis

// The compiler-diagnostics backend behind the perf rules. The escape
// analysis and bounds-check-elimination facts the hotpathalloc and
// hotpathbce rules need are not derivable from syntax or go/types — they
// are properties of the optimizer — so this backend shells out to the
// real compiler:
//
//	go build -gcflags='-m -d=ssa/check_bce/debug=1' <import path>
//
// and parses the position-tagged diagnostic stream from stderr
// (stdlib-only: os/exec plus line splitting). Each line has the shape
//
//	dir/file.go:line:col: message
//
// with paths relative to the module root (the command's working
// directory). The messages of interest:
//
//	"... escapes to heap"      a value is heap-allocated here
//	"moved to heap: x"         a local variable is forced to the heap
//	"Found IsInBounds"         a bounds check survived optimization
//	"Found IsSliceInBounds"    a slice-bounds check survived
//
// Crucially the compiler re-attributes diagnostics of inlined callees to
// the call site, so an allocation inside an inlined helper is reported
// inside the calling hot function — exactly the attribution the rules
// want. Non-inlined module-local callees are handled by the rules
// themselves via the call graph (rule_hotpathalloc.go).
//
// Results are memoized per package on the Loader (three rules share one
// compile), and the PR-4 content-hash driver caches the final
// diagnostics per package, so a warm trajlint run never invokes the
// compiler at all — PerfCompileCount makes that provable in tests.

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// perfGcflags are the compiler flags that produce the escape-analysis
// and BCE diagnostic stream.
const perfGcflags = "-m -d=ssa/check_bce/debug=1"

// perfCompileCount counts compiler invocations made by this process —
// the observable the driver-cache tests use to prove warm runs recompile
// nothing.
var perfCompileCount atomic.Int64

// PerfCompileCount returns the number of `go build` diagnostic compiles
// this process has performed (test observability for the cache).
func PerfCompileCount() int64 { return perfCompileCount.Load() }

// CompilerDiag is one position-tagged compiler diagnostic.
type CompilerDiag struct {
	File      string // absolute path
	Line, Col int
	Message   string
}

// IsHeapAlloc reports whether the diagnostic marks a runtime heap
// allocation: a value escaping to the heap (composite literals, make,
// closures, string conversions, interface boxing) or a variable moved to
// it. One escape is exempt: a string *literal* escaping (the message
// quotes the operand, so it starts with a double quote) is an interface
// conversion of a constant — e.g. panic("pkg: message") — which the
// compiler materializes as static read-only data, never a runtime
// allocation. Constant-string panics are exactly how hot functions keep
// their guard panics allocation-free, so the exemption is load-bearing.
func (d CompilerDiag) IsHeapAlloc() bool {
	if strings.HasSuffix(d.Message, "escapes to heap") {
		return !strings.HasPrefix(d.Message, `"`)
	}
	return strings.HasPrefix(d.Message, "moved to heap:")
}

// IsBoundsCheck reports whether the diagnostic marks a bounds check that
// survived the compiler's bounds-check-elimination pass.
func (d CompilerDiag) IsBoundsCheck() bool {
	return d.Message == "Found IsInBounds" || d.Message == "Found IsSliceInBounds"
}

// perfDiagSet holds one package's parsed compiler diagnostics, or the
// error that prevented compiling it (fixture trees without a real
// go.mod, broken code — the rules degrade to no findings).
type perfDiagSet struct {
	diags  []CompilerDiag
	byFile map[string][]CompilerDiag
	err    error
}

// perfMemo is the per-Loader compile memo: one compiler invocation per
// package path per process, shared by all three perf rules and by
// cross-package callee attribution. Entries are sync.Once-guarded so the
// driver's package-level parallelism compiles each package exactly once
// without serializing distinct compiles behind one lock.
type perfMemo struct {
	mu sync.Mutex
	m  map[string]*perfEntry
}

type perfEntry struct {
	once sync.Once
	set  *perfDiagSet
}

func (m *perfMemo) entry(path string) *perfEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.m[path]
	if !ok {
		e = &perfEntry{}
		m.m[path] = e
	}
	return e
}

var perfMemos sync.Map // *Loader -> *perfMemo

func memoFor(l *Loader) *perfMemo {
	if v, ok := perfMemos.Load(l); ok {
		return v.(*perfMemo)
	}
	v, _ := perfMemos.LoadOrStore(l, &perfMemo{m: map[string]*perfEntry{}})
	return v.(*perfMemo)
}

// compilerDiags returns (and memoizes) the compiler diagnostics of one
// loaded package. The compile runs in the package's module root so the
// emitted relative paths resolve against it.
func compilerDiags(pkg *Package) *perfDiagSet {
	if pkg.loader == nil {
		return &perfDiagSet{err: fmt.Errorf("analysis: package %s has no loader", pkg.Path)}
	}
	e := memoFor(pkg.loader).entry(pkg.Path)
	e.once.Do(func() { e.set = runCompilerDiags(pkg) })
	return e.set
}

// runCompilerDiags performs the actual go build invocation and parse.
func runCompilerDiags(pkg *Package) *perfDiagSet {
	moduleDir := pkg.loader.ModuleDir
	args := []string{"build", "-gcflags=" + perfGcflags}
	if pkg.Name == "main" {
		// A bare `go build` of a main package drops its binary into the
		// working directory; divert it to a throwaway path.
		tmp, err := os.MkdirTemp("", "trajlint-perf-*")
		if err != nil {
			return &perfDiagSet{err: fmt.Errorf("analysis: %w", err)}
		}
		defer os.RemoveAll(tmp)
		args = append(args, "-o", filepath.Join(tmp, "out"))
	}
	args = append(args, pkg.Path)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	out, err := cmd.CombinedOutput()
	perfCompileCount.Add(1)
	if err != nil {
		return &perfDiagSet{err: fmt.Errorf("analysis: compiler diagnostics for %s: %v\n%s", pkg.Path, err, out)}
	}
	diags := parseCompilerDiags(moduleDir, string(out))
	set := &perfDiagSet{diags: diags, byFile: map[string][]CompilerDiag{}}
	for _, d := range diags {
		set.byFile[d.File] = append(set.byFile[d.File], d)
	}
	return set
}

// parseCompilerDiags extracts position-tagged diagnostics from the
// compiler's -m / check_bce output. Lines that do not parse as
// file:line:col (package headers, notes) are skipped; relative paths
// resolve against moduleDir.
func parseCompilerDiags(moduleDir, output string) []CompilerDiag {
	var out []CompilerDiag
	for _, line := range strings.Split(output, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		d, ok := parseCompilerDiagLine(moduleDir, line)
		if ok {
			out = append(out, d)
		}
	}
	return out
}

// parseCompilerDiagLine parses one "file.go:line:col: message" line.
func parseCompilerDiagLine(moduleDir, line string) (CompilerDiag, bool) {
	// Split on ": " after the positional prefix; the prefix itself has
	// exactly two ':'-separated numbers after the file name.
	i := strings.Index(line, ".go:")
	if i < 0 {
		return CompilerDiag{}, false
	}
	file := line[:i+3]
	rest := line[i+4:]
	parts := strings.SplitN(rest, ":", 3)
	if len(parts) != 3 {
		return CompilerDiag{}, false
	}
	ln, err1 := strconv.Atoi(parts[0])
	col, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return CompilerDiag{}, false
	}
	if !filepath.IsAbs(file) {
		file = filepath.Join(moduleDir, filepath.FromSlash(file))
	}
	return CompilerDiag{
		File: file, Line: ln, Col: col,
		Message: strings.TrimSpace(parts[2]),
	}, true
}

// diagsWithin returns the package's compiler diagnostics positioned
// inside the span [from, to] of the given file, in emission order.
func (s *perfDiagSet) diagsWithin(file string, from, to linecol) []CompilerDiag {
	var out []CompilerDiag
	for _, d := range s.byFile[file] {
		p := linecol{d.Line, d.Col}
		if !p.before(from) && !to.before(p) {
			out = append(out, d)
		}
	}
	return out
}

// linecol is a (line, column) pair used for span containment checks
// against compiler diagnostics.
type linecol struct{ line, col int }

func (p linecol) before(q linecol) bool {
	return p.line < q.line || (p.line == q.line && p.col < q.col)
}
