package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ruleLockOrder builds a cross-function lock-acquisition graph over the
// module and diagnoses cycles as potential deadlocks. A node is a lock
// identity — a struct field (`engine.shard.mu`, every instance
// conflated), a package-level mutex (`engine.regMu`), or a
// function-local one — and an edge A → B records that somewhere, B is
// acquired while A is held. B may be acquired directly in the same
// function, or transitively: a call made under A to a module function
// whose (transitive) body acquires B contributes the same edge. A cycle
// in the graph means two executions can acquire the same locks in
// opposite orders — the classic deadlock — so every cycle is a finding,
// reported once per strongly-connected component at its first
// contributing edge in the package under analysis.
//
// defer is modeled as holding to the end of the function: a
// `defer mu.Unlock()` keeps mu held for every later acquisition in the
// body (that is exactly when the lock is released), while an inline
// `mu.Unlock()` releases it at the statement. Function literals are
// separate acquisition scopes: a goroutine body does not inherit the
// spawner's held set (the spawner does not hold its locks on the
// goroutine's behalf), but the literal's own nesting still contributes
// edges.
var ruleLockOrder = &Rule{
	Name: "lockorder",
	Doc:  "the module-wide lock-acquisition graph is acyclic (no potential lock-order deadlocks)",
	Fix:  "acquire the involved locks in one global order, or narrow one critical section so the nesting disappears",
	Run:  runLockOrder,
}

// lockEdge is one held→acquired observation.
type lockEdge struct {
	from, to string
	pos      token.Pos // where `to` was acquired (or the call that acquires it)
	inPkg    bool      // recorded from a function declared in the pass's package
}

// lockSummary is the transitive set of lock identities a function
// acquires.
type lockSummary struct {
	acquired map[string]token.Pos
}

type lockAnalyzer struct {
	p          *Pass
	summaries  map[*types.Func]*lockSummary
	inProgress map[*types.Func]bool
	edges      map[[2]string]*lockEdge
}

func runLockOrder(p *Pass) {
	a := &lockAnalyzer{
		p:          p,
		summaries:  map[*types.Func]*lockSummary{},
		inProgress: map[*types.Func]bool{},
		edges:      map[[2]string]*lockEdge{},
	}
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
				a.summarize(fn)
			} else {
				// init functions and unresolved decls: analyze directly.
				a.analyzeBody(p.Pkg, fd, fd.Body, map[string]token.Pos{})
			}
		}
	}
	a.reportCycles()
}

// summarize computes (and memoizes) the transitive acquired-lock set of a
// module function, analyzing its body once.
func (a *lockAnalyzer) summarize(fn *types.Func) *lockSummary {
	if s, ok := a.summaries[fn]; ok {
		return s
	}
	if a.inProgress[fn] {
		return &lockSummary{acquired: map[string]token.Pos{}} // recursion: partial
	}
	a.inProgress[fn] = true
	defer func() { a.inProgress[fn] = false }()

	s := &lockSummary{acquired: map[string]token.Pos{}}
	pkg, decl := a.p.Pkg.FuncDeclOf(fn)
	if decl != nil && decl.Body != nil {
		a.analyzeBodyInto(pkg, decl, decl.Body, s.acquired)
	}
	a.summaries[fn] = s
	return s
}

// analyzeBody analyzes one function (or literal) body with an empty held
// set, discarding the acquired summary.
func (a *lockAnalyzer) analyzeBody(pkg *Package, decl *ast.FuncDecl, body *ast.BlockStmt, acquired map[string]token.Pos) {
	a.analyzeBodyInto(pkg, decl, body, acquired)
}

// analyzeBodyInto walks one body in source order, maintaining the held
// set, recording edges, and accumulating the acquired set. Nested
// function literals are collected and analyzed separately with empty
// held sets; their acquisitions do not join the enclosing summary (they
// run on another goroutine's schedule, or at defer time).
func (a *lockAnalyzer) analyzeBodyInto(pkg *Package, decl *ast.FuncDecl, body *ast.BlockStmt, acquired map[string]token.Pos) {
	inPkg := pkg == a.p.Pkg
	fnName := "func"
	if decl != nil && decl.Name != nil {
		fnName = decl.Name.Name
	}
	type held struct {
		id  string
		pos token.Pos
	}
	var heldLocks []held
	deferredCalls := map[*ast.CallExpr]bool{}
	var lits []*ast.FuncLit

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, n)
			return false
		case *ast.DeferStmt:
			deferredCalls[n.Call] = true
			return true
		case *ast.CallExpr:
			sel, isSel := n.Fun.(*ast.SelectorExpr)
			if isSel && len(n.Args) == 0 {
				switch sel.Sel.Name {
				case "Lock", "RLock":
					if lockRecvIsMutex(pkg, sel.X) && !deferredCalls[n] {
						id := a.lockID(pkg, fnName, sel.X)
						for _, h := range heldLocks {
							a.addEdge(h.id, id, n.Pos(), inPkg)
						}
						heldLocks = append(heldLocks, held{id: id, pos: n.Pos()})
						if _, ok := acquired[id]; !ok {
							acquired[id] = n.Pos()
						}
						return true
					}
				case "Unlock", "RUnlock":
					if lockRecvIsMutex(pkg, sel.X) && !deferredCalls[n] {
						id := a.lockID(pkg, fnName, sel.X)
						for i := len(heldLocks) - 1; i >= 0; i-- {
							if heldLocks[i].id == id {
								heldLocks = append(heldLocks[:i], heldLocks[i+1:]...)
								break
							}
						}
						return true
					}
					// A deferred unlock releases at function end: the
					// lock stays in the held set for the rest of the walk.
				}
			}
			// A call to a module function: its transitive acquisitions
			// nest under everything currently held.
			if callee := calleeFunc(pkg, n); callee != nil && isModuleFunc(callee, a.p.Pkg.Module) {
				sum := a.summarize(callee)
				for id := range sum.acquired {
					for _, h := range heldLocks {
						a.addEdge(h.id, id, n.Pos(), inPkg)
					}
					if _, ok := acquired[id]; !ok {
						acquired[id] = n.Pos()
					}
				}
			}
			return true
		}
		return true
	})

	for _, lit := range lits {
		a.analyzeBodyInto(pkg, decl, lit.Body, map[string]token.Pos{})
	}
}

func (a *lockAnalyzer) addEdge(from, to string, pos token.Pos, inPkg bool) {
	key := [2]string{from, to}
	if e, ok := a.edges[key]; ok {
		// Prefer an in-package representative for reporting.
		if !e.inPkg && inPkg {
			e.inPkg = true
			e.pos = pos
		}
		return
	}
	a.edges[key] = &lockEdge{from: from, to: to, pos: pos, inPkg: inPkg}
}

// calleeFunc resolves a call to its *types.Func (named functions and
// methods; function values are opaque).
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// lockRecvIsMutex is isMutexRecv generalized to any package's type info.
func lockRecvIsMutex(pkg *Package, recv ast.Expr) bool {
	t := pkg.Info.TypeOf(recv)
	if t == nil {
		return true // no type info: assume (Lock/Unlock names are a strong signal)
	}
	for {
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex":
				return true
			}
		}
	}
	ms := types.NewMethodSet(types.NewPointer(t))
	hasLock, hasUnlock := false, false
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "Lock", "RLock":
			hasLock = true
		case "Unlock", "RUnlock":
			hasUnlock = true
		}
	}
	return hasLock && hasUnlock
}

// lockID canonicalizes a lock receiver expression into a stable identity:
//
//	struct field        →  pkg.Type.field   (all instances conflated)
//	package-level var   →  pkg.var
//	local var           →  pkg.func.var
//	anything else       →  pkg.func.<expr>
func (a *lockAnalyzer) lockID(pkg *Package, fnName string, e ast.Expr) string {
	short := shortPkg(pkg.Path)
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if s, ok := pkg.Info.Selections[sel]; ok && s.Obj() != nil {
			recv := s.Recv()
			for {
				if ptr, ok := recv.(*types.Pointer); ok {
					recv = ptr.Elem()
					continue
				}
				break
			}
			if named, ok := recv.(*types.Named); ok {
				owner := named.Obj()
				ownerPkg := short
				if owner.Pkg() != nil {
					ownerPkg = shortPkg(owner.Pkg().Path())
				}
				return ownerPkg + "." + owner.Name() + "." + s.Obj().Name()
			}
		}
	}
	if id, ok := e.(*ast.Ident); ok {
		if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
			if v.Parent() != nil && v.Parent().Parent() == types.Universe {
				// Package scope.
				return short + "." + v.Name()
			}
			// An ident of a named type embedding a mutex (s.Lock()):
			// conflate by type, like fields.
			t := v.Type()
			for {
				if ptr, ok := t.(*types.Pointer); ok {
					t = ptr.Elem()
					continue
				}
				break
			}
			if named, ok := t.(*types.Named); ok {
				obj := named.Obj()
				if obj.Pkg() != nil && obj.Pkg().Path() != "sync" {
					return shortPkg(obj.Pkg().Path()) + "." + obj.Name()
				}
			}
			return short + "." + fnName + "." + v.Name()
		}
	}
	return short + "." + fnName + "." + types.ExprString(e)
}

// shortPkg trims the module prefix off an import path for readable lock
// identities ("traj2hash/internal/engine" → "engine").
func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// reportCycles finds strongly-connected components of the edge graph and
// reports each SCC containing a cycle, at its first in-package edge.
func (a *lockAnalyzer) reportCycles() {
	// Build adjacency.
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for key := range a.edges {
		adj[key[0]] = append(adj[key[0]], key[1])
		nodes[key[0]], nodes[key[1]] = true, true
	}
	for n := range adj {
		sort.Strings(adj[n])
	}
	var order []string
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)

	sccs := tarjanSCC(order, adj)
	for _, scc := range sccs {
		cyclic := len(scc) > 1
		if !cyclic {
			n := scc[0]
			if _, self := a.edges[[2]string{n, n}]; self {
				cyclic = true
			}
		}
		if !cyclic {
			continue
		}
		sort.Strings(scc)
		member := map[string]bool{}
		for _, n := range scc {
			member[n] = true
		}
		// Representative edge: the lexicographically first in-package
		// edge inside the SCC. If no edge belongs to this package the
		// cycle lives entirely in a dependency, whose own pass reports it.
		var rep *lockEdge
		var repKey [2]string
		for key, e := range a.edges {
			if !e.inPkg || !member[key[0]] || !member[key[1]] {
				continue
			}
			if rep == nil || key[0] < repKey[0] || (key[0] == repKey[0] && key[1] < repKey[1]) {
				rep, repKey = e, key
			}
		}
		if rep == nil {
			continue
		}
		a.p.Reportf(rep.pos,
			"lock-order cycle {%s}: %s is acquired while %s is held, and a path acquires them in the opposite order — potential deadlock; pick one global acquisition order",
			strings.Join(scc, " ⇄ "), rep.to, rep.from)
	}
}

// tarjanSCC computes strongly-connected components (iterative Tarjan,
// deterministic given sorted inputs).
func tarjanSCC(order []string, adj map[string][]string) [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	type frame struct {
		node string
		succ int
	}
	for _, start := range order {
		if _, seen := index[start]; seen {
			continue
		}
		frames := []frame{{node: start}}
		index[start], low[start] = next, next
		next++
		stack = append(stack, start)
		onStack[start] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.succ < len(adj[f.node]) {
				w := adj[f.node][f.succ]
				f.succ++
				if _, seen := index[w]; !seen {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{node: w})
				} else if onStack[w] {
					if index[w] < low[f.node] {
						low[f.node] = index[w]
					}
				}
				continue
			}
			// Pop the frame.
			node := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[node] < low[parent.node] {
					low[parent.node] = low[node]
				}
			}
			if low[node] == index[node] {
				var scc []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == node {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}
