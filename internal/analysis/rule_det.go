package analysis

// The three determinism-contract rules. All share one per-package taint
// analysis (det.go, memoized in detMemos); each rule's Run filters the
// shared finding list by its own name:
//
//	detmaprange   — map-iteration-ordered data reaching a serialization
//	                sink or a //det:replayed return, plus gob-encoding a
//	                type that (transitively) contains a map
//	detwallclock  — wall-clock / global-rand / ambient-process reads
//	                reaching a sink or executed inside a replayed body
//	detunordered  — goroutine-completion-ordered data (multi-sender
//	                channels, multi-case selects, captured-variable
//	                writes from `go` literals) reaching a sink
//
// The //det:replayed directive itself is validated by
// collectDetDirectives (detdirective.go) under the "directive"
// pseudo-rule, alongside //perf:hotpath and //lint:ignore.

var ruleDetMapRange = &Rule{
	Name: "detmaprange",
	Doc:  "map-iteration order must not reach serialized or replayed state (sort first)",
	Fix:  "sort the value into a canonical order before the sink (autofix for []string/[]int/[]float64 identifiers)",
	Run:  func(p *Pass) { reportDet(p, "detmaprange") },
}

var ruleDetWallclock = &Rule{
	Name: "detwallclock",
	Doc:  "wall-clock, global-rand, and ambient process state must not reach serialized or replayed state",
	Run:  func(p *Pass) { reportDet(p, "detwallclock") },
}

var ruleDetUnordered = &Rule{
	Name: "detunordered",
	Doc:  "goroutine-completion order must not reach serialized or replayed state (collect by slot or sort)",
	Run:  func(p *Pass) { reportDet(p, "detunordered") },
}

func reportDet(p *Pass, rule string) {
	for _, f := range detFindings(p.Pkg) {
		if f.rule == rule {
			p.ReportFix(f.pos, f.fix, "%s", f.msg)
		}
	}
}
