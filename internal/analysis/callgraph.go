package analysis

// Cross-function resolution shared by the module-aware rules. lockorder
// (PR 4) walks from a call expression to the callee's declaration —
// possibly in an already-loaded dependency package — to propagate lock
// acquisitions; the perf rules (hotpathalloc) reuse the same walk to
// attribute heap allocations of non-inlined callees back to the hot
// call site. The per-package *types.Func → *ast.FuncDecl index is built
// lazily once and memoized on the Package.

import (
	"go/ast"
	"go/types"
	"strings"
)

// FuncDeclOf locates the declaration of a module function: in this
// package, or in an already-loaded module dependency (dependencies load
// before their importers, so every module-local callee is resolvable).
// Returns (nil, nil) for functions outside the module or without bodies.
func (p *Package) FuncDeclOf(fn *types.Func) (*Package, *ast.FuncDecl) {
	if fn == nil || fn.Pkg() == nil {
		return nil, nil
	}
	var pkg *Package
	switch path := fn.Pkg().Path(); {
	case path == p.Path:
		pkg = p
	default:
		pkg = p.Dep(path)
	}
	if pkg == nil {
		return nil, nil
	}
	return pkg, pkg.declIndex()[fn]
}

// declIndex returns the package's *types.Func → declaration map,
// building it on first use. Analysis passes run concurrently across
// packages but each package's own pass is sequential; cross-package
// reads go through the sync.Once so dependency indexes build safely
// under the parallel driver.
func (p *Package) declIndex() map[*types.Func]*ast.FuncDecl {
	p.declOnce.Do(func() {
		idx := map[*types.Func]*ast.FuncDecl{}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Name != nil {
					if def, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
						idx[def] = fd
					}
				}
			}
		}
		p.declIdx = idx
	})
	return p.declIdx
}

// isModuleFunc reports whether fn is declared inside the module rooted
// at modulePath (so its body is available to analyze).
func isModuleFunc(fn *types.Func, modulePath string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return path == modulePath || strings.HasPrefix(path, modulePath+"/")
}
