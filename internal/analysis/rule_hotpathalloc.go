package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// ruleHotpathAlloc enforces the heap half of the //perf:hotpath
// contract: a marked function must not heap-allocate — not in its own
// body (the compiler's escape analysis is the oracle, with inlined
// callees' allocations already re-attributed to the call site), and not
// through the module-local functions it calls (attributed at the call
// site via the same cross-function walk lockorder uses). Closure
// allocations ("func literal escapes to heap") count: a closure that
// escapes is a per-call allocation.
//
// Calls that leave the module (stdlib, interface methods) are opaque —
// the contract is about this module's code; a stdlib call that
// allocates in a loop is the allocinloop rule's business at the syntax
// level.
//
// Packages that cannot be compiled (fixture trees without go.mod)
// produce no findings: the contract is only checkable against the real
// compiler.
var ruleHotpathAlloc = &Rule{
	Name: "hotpathalloc",
	Doc:  "//perf:hotpath functions are heap-allocation-free, including module-local callees",
	Fix:  "preallocate into caller-provided or reusable buffers, hoist the allocation out of the hot function, or drop the //perf:hotpath mark if the allocation is the function's purpose",
	Run:  runHotpathAlloc,
}

func runHotpathAlloc(p *Pass) {
	hot := hotpathFuncs(p.Pkg)
	if len(hot) == 0 {
		return
	}
	set := compilerDiags(p.Pkg)
	if set.err != nil {
		return
	}
	a := &allocAnalyzer{p: p, summaries: map[*types.Func][]CompilerDiag{}, inProgress: map[*types.Func]bool{}}
	for _, h := range hot {
		// Own-body allocations (including inlined callees', which the
		// compiler re-attributes to the call site inside this span).
		for _, d := range diagsInDecl(p.Pkg, set, h.decl) {
			if d.IsHeapAlloc() {
				p.Reportf(diagPos(p.Pkg, h.decl, d),
					"hot path %s allocates: %s", h.decl.Name.Name, d.Message)
			}
		}
		// Non-inlined module-local callees, transitively.
		a.checkCalls(h.decl, set)
	}
}

type allocAnalyzer struct {
	p          *Pass
	summaries  map[*types.Func][]CompilerDiag
	inProgress map[*types.Func]bool
}

// checkCalls reports, at each call site in the hot function, the first
// allocation performed (transitively) by the module-local callee.
// Inlined calls are skipped: the compiler already re-attributed their
// allocations into the caller's span, where the own-body scan found
// them; walking into them again would double-report.
func (a *allocAnalyzer) checkCalls(decl *ast.FuncDecl, set *perfDiagSet) {
	if decl.Body == nil {
		return
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(a.p.Pkg, call)
		if callee == nil || !isModuleFunc(callee, a.p.Pkg.Module) {
			return true
		}
		pkg, fd := a.p.Pkg.FuncDeclOf(callee)
		if fd == nil || wasInlinedAt(a.p.Pkg, set, call, callee) {
			return true
		}
		if allocs := a.summarize(callee, pkg, fd); len(allocs) > 0 {
			d := allocs[0]
			extra := ""
			if len(allocs) > 1 {
				extra = " (and more)"
			}
			a.p.Reportf(call.Pos(),
				"hot path %s calls %s, which allocates: %s at %s:%d%s",
				decl.Name.Name, callee.Name(), d.Message, shortFile(d), d.Line, extra)
		}
		return true
	})
}

// summarize returns (and memoizes) the heap allocations a module
// function performs, directly or through its own module-local calls.
func (a *allocAnalyzer) summarize(fn *types.Func, pkg *Package, decl *ast.FuncDecl) []CompilerDiag {
	if s, ok := a.summaries[fn]; ok {
		return s
	}
	if a.inProgress[fn] {
		return nil // recursion: partial summary
	}
	a.inProgress[fn] = true
	defer func() { a.inProgress[fn] = false }()

	var allocs []CompilerDiag
	set := compilerDiags(pkg)
	if set.err == nil {
		for _, d := range diagsInDecl(pkg, set, decl) {
			if d.IsHeapAlloc() {
				allocs = append(allocs, d)
			}
		}
	}
	if decl.Body != nil {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pkg, call)
			if callee == nil || callee == fn || !isModuleFunc(callee, pkg.Module) {
				return true
			}
			cpkg, cfd := pkg.FuncDeclOf(callee)
			if cfd == nil {
				return true
			}
			allocs = append(allocs, a.summarize(callee, cpkg, cfd)...)
			return true
		})
	}
	a.summaries[fn] = allocs
	return allocs
}

// wasInlinedAt reports whether the compiler inlined the call at this
// site (it emits "inlining call to <callee>" there when it did). The
// emitted column may point at the selector or the paren rather than the
// expression start, so the match is by line plus callee name.
func wasInlinedAt(pkg *Package, set *perfDiagSet, call *ast.CallExpr, callee *types.Func) bool {
	pos := pkg.Fset.Position(call.Pos())
	end := pkg.Fset.Position(call.End())
	for _, d := range set.byFile[pos.Filename] {
		if d.Line >= pos.Line && d.Line <= end.Line &&
			strings.HasPrefix(d.Message, "inlining call to") &&
			strings.HasSuffix(d.Message, callee.Name()) {
			return true
		}
	}
	return false
}

// diagsInDecl returns the compiler diagnostics positioned inside a
// function declaration's source span.
func diagsInDecl(pkg *Package, set *perfDiagSet, decl *ast.FuncDecl) []CompilerDiag {
	start := pkg.Fset.Position(decl.Pos())
	end := pkg.Fset.Position(decl.End())
	return set.diagsWithin(start.Filename,
		linecol{start.Line, start.Column}, linecol{end.Line, end.Column})
}

// diagPos converts a compiler diagnostic inside decl back to a token.Pos
// so Reportf positions the finding at the allocation site itself.
func diagPos(pkg *Package, decl *ast.FuncDecl, d CompilerDiag) token.Pos {
	tf := pkg.Fset.File(decl.Pos())
	if tf == nil || d.Line < 1 || d.Line > tf.LineCount() {
		return decl.Pos()
	}
	return tf.LineStart(d.Line) + token.Pos(d.Col-1)
}

// shortFile renders a diagnostic's file as its base name for messages.
func shortFile(d CompilerDiag) string { return filepath.Base(d.File) }
