package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// rulePanicAttrib requires every panic in an internal/ package to carry a
// message with the package's "pkg: " prefix, either as a string literal
// or through fmt.Sprintf/fmt.Errorf with a literal format string. The
// engine fans work out across goroutines and the autograd tape panics
// deep inside Backward; without the prefix, a recovered stack in a
// production log is not attributable to a subsystem.
var rulePanicAttrib = &Rule{
	Name: "panicattrib",
	Doc:  "panics in internal/ must carry a \"pkg: \"-prefixed message (attributability contract)",
	Fix:  "prefix the panic message (or its format string) with \"<package>: \"",
	Run:  runPanicAttrib,
}

func runPanicAttrib(p *Pass) {
	if !isInternalPath(p.Pkg.Path) {
		return
	}
	prefix := p.Pkg.Name + ": "
	p.inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "panic" || len(call.Args) != 1 {
			return true
		}
		// A shadowing local func named panic would be perverse; the Uses
		// map distinguishes it when type info resolved.
		if obj := p.Pkg.Info.Uses[fn]; obj != nil && obj.Pkg() != nil {
			return true // not the builtin
		}
		msg, literal := panicMessage(call.Args[0])
		switch {
		case !literal:
			p.Reportf(call.Pos(),
				"panic argument is not a %q-prefixed string literal (or fmt.Sprintf/fmt.Errorf of one); unattributable panics are banned in internal/",
				prefix)
		case !strings.HasPrefix(msg, prefix):
			p.Reportf(call.Pos(),
				"panic message %q must start with %q so recovered stacks attribute to the package",
				truncate(msg, 40), prefix)
		}
		return true
	})
}

// panicMessage extracts the literal message (or format string) of a panic
// argument: a plain string literal, or a fmt.Sprintf/fmt.Errorf call
// whose format is a literal.
func panicMessage(arg ast.Expr) (msg string, literal bool) {
	if s, ok := stringLit(arg); ok {
		return s, true
	}
	call, ok := arg.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "fmt" || (sel.Sel.Name != "Sprintf" && sel.Sel.Name != "Errorf") {
		return "", false
	}
	return stringLit(call.Args[0])
}

// stringLit unquotes a string literal expression (including a
// parenthesized one).
func stringLit(e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
