package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ruleErrcheck enforces the repo's error-consumption contract on every
// control-flow path: an `error` produced by a call must be consumed —
// returned, checked in a condition, passed to another function, or
// assigned to escaping storage — before the function exits. The check is
// path-sensitive over the CFG: `res, err := f(); if cond { return err }`
// is still a finding, because the path around the `if` drops the error.
//
// Three shapes are diagnosed:
//
//   - a call statement whose results include an error, with the result
//     tuple discarded entirely (`f()` as a statement, `defer f()`,
//     `go f()`);
//   - an error result explicitly discarded with `_` — allowed only under
//     a //lint:ignore errcheck directive with a written reason;
//   - an error assigned to a variable that reaches the end of the
//     function unconsumed on at least one path.
//
// Conventionally-infallible sites are excluded: the fmt.Print family,
// methods of bytes.Buffer and strings.Builder (documented to return nil
// errors), `defer x.Close()` on the read-side cleanup path, and the
// `defer os.Remove(tmp)` best-effort temp-file cleanup idiom. Errors
// captured by a closure, stored into a field/slice, or named as a result
// parameter count as consumed (they escape local reasoning).
var ruleErrcheck = &Rule{
	Name: "errcheck",
	Doc:  "every error result is consumed (returned, checked, or logged) on every control-flow path",
	Fix:  "handle the error: check it, return it, or discard with `_ =` under a //lint:ignore errcheck <reason>",
	Run:  runErrcheck,
}

func runErrcheck(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkErrBody(p, fn.Body, fn.Type)
				}
			case *ast.FuncLit:
				checkErrBody(p, fn.Body, fn.Type)
			}
			return true
		})
	}
}

// errDef is one tracked assignment of an error-typed call result to a
// local variable.
type errDef struct {
	obj  *types.Var
	pos  token.Pos
	name string
	call string // rendered callee, for the message
}

// errFact is the dataflow fact: the set of def indices that may be live
// and unconsumed at a program point.
type errFact map[int]bool

type errChecker struct {
	p       *Pass
	body    *ast.BlockStmt
	defs    []errDef
	results map[*types.Var]bool // named result parameters (returning them is implicit)
	// condRoot maps every sub-expression of a short-circuit If/For
	// condition to the whole condition. The CFG splits `a || b` into
	// per-leaf blocks for path accuracy, but for *consumption* the
	// idiomatic reading of `if err1 != nil || err2 != nil` is that both
	// errors are checked — so evaluating any leaf kills uses across the
	// whole condition.
	condRoot map[ast.Node]ast.Expr
}

// checkErrBody runs the errcheck analysis over one function body
// (FuncLits excluded — they are their own scope).
func checkErrBody(p *Pass, body *ast.BlockStmt, ftype *ast.FuncType) {
	c := &errChecker{p: p, body: body, results: map[*types.Var]bool{}, condRoot: map[ast.Node]ast.Expr{}}
	if ftype != nil && ftype.Results != nil {
		for _, field := range ftype.Results.List {
			for _, name := range field.Names {
				if obj, ok := p.Pkg.Info.Defs[name].(*types.Var); ok {
					c.results[obj] = true
				}
			}
		}
	}
	walkShallow(body, func(n ast.Node) {
		var cond ast.Expr
		switch s := n.(type) {
		case *ast.IfStmt:
			cond = s.Cond
		case *ast.ForStmt:
			cond = s.Cond
		}
		if cond != nil {
			root := cond
			ast.Inspect(cond, func(m ast.Node) bool {
				if e, ok := m.(ast.Expr); ok {
					c.condRoot[e] = root
				}
				return true
			})
		}
	})
	g := BuildCFG(body)

	// Pass 1: immediate diagnostics (dropped result tuples, `_` discards)
	// and def collection. Walk the blocks so nested literals are already
	// excluded by the CFG builder.
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			c.scanNode(n)
		}
	}
	if len(c.defs) == 0 {
		return
	}

	// Pass 2: forward may-analysis — a def in the fact set has not been
	// consumed on at least one path reaching the point.
	prob := Dataflow[errFact]{
		Dir:      Forward,
		Bottom:   func() errFact { return errFact{} },
		Boundary: func() errFact { return errFact{} },
		Join: func(acc, src errFact) errFact {
			for k := range src {
				acc[k] = true
			}
			return acc
		},
		Equal: func(a, b errFact) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(b *CFGBlock, in errFact) errFact {
			out := errFact{}
			for k := range in {
				out[k] = true
			}
			for _, n := range b.Nodes {
				c.transferNode(n, out)
			}
			return out
		},
	}
	res := SolveDataflow(g, prob)

	// Defers run at every exit: their uses consume whatever is still live.
	exit := errFact{}
	for k := range res.In[g.Exit.Index] {
		exit[k] = true
	}
	for _, d := range g.Defers {
		c.killUses(d, exit)
	}
	for i, d := range c.defs {
		if !exit[i] {
			continue
		}
		if c.results[d.obj] {
			continue // named result: returning the function returns it
		}
		c.p.Reportf(d.pos,
			"error assigned to %s (from %s) may reach the end of the function unconsumed on some path; check, return, or log it on every path",
			d.name, d.call)
	}
}

// scanNode handles immediate diagnostics and registers tracked defs.
func (c *errChecker) scanNode(n ast.Node) {
	switch s := n.(type) {
	case *ast.ExprStmt:
		c.checkDroppedCall(s.X, false)
	case *ast.DeferStmt:
		c.checkDroppedCall(s.Call, true)
	case *ast.GoStmt:
		c.checkDroppedCall(s.Call, false)
	case *ast.AssignStmt:
		c.scanAssign(s.Lhs, s.Rhs, s.Tok)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, name := range vs.Names {
						lhs[i] = name
					}
					c.scanAssign(lhs, vs.Values, token.DEFINE)
				}
			}
		}
	}
}

// checkDroppedCall reports a statement-position call whose result tuple
// (containing an error) is discarded wholesale.
func (c *errChecker) checkDroppedCall(e ast.Expr, deferred bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	t := c.p.Pkg.Info.TypeOf(call)
	if t == nil || !typeHasError(t) {
		return
	}
	if errcheckExcluded(c.p, call, deferred) {
		return
	}
	c.p.Reportf(call.Pos(), "result of %s contains an error that is dropped; handle it or suppress with a reason",
		renderCallee(call))
}

// scanAssign registers error defs and reports `_` discards of error
// results.
func (c *errChecker) scanAssign(lhs, rhs []ast.Expr, tok token.Token) {
	// pair maps each LHS position to the type of its RHS value and the
	// call producing it (nil when not a call result).
	report := func(le ast.Expr, call *ast.CallExpr) {
		if id, ok := le.(*ast.Ident); ok && id.Name == "_" {
			c.p.Reportf(le.Pos(), "error result of %s discarded as _; a deliberate discard needs //lint:ignore errcheck <reason>",
				renderCallee(call))
			return
		}
		c.trackDef(le, call)
	}
	if len(rhs) == 1 && len(lhs) > 1 {
		call, ok := rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		tuple, ok := c.p.Pkg.Info.TypeOf(call).(*types.Tuple)
		if !ok || tuple.Len() != len(lhs) {
			return
		}
		if errcheckExcluded(c.p, call, false) {
			return
		}
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				report(lhs[i], call)
			}
		}
		return
	}
	if len(rhs) == len(lhs) {
		for i, re := range rhs {
			call, ok := re.(*ast.CallExpr)
			if !ok {
				continue
			}
			t := c.p.Pkg.Info.TypeOf(call)
			if t == nil || !isErrorType(t) || errcheckExcluded(c.p, call, false) {
				continue
			}
			report(lhs[i], call)
		}
	}
}

// trackDef registers an ident LHS receiving an error as a dataflow def.
// Non-ident LHS (fields, index expressions) escape local tracking and
// count as consumed.
func (c *errChecker) trackDef(le ast.Expr, call *ast.CallExpr) {
	id, ok := le.(*ast.Ident)
	if !ok {
		return
	}
	var obj *types.Var
	if d, ok := c.p.Pkg.Info.Defs[id].(*types.Var); ok {
		obj = d
	} else if u, ok := c.p.Pkg.Info.Uses[id].(*types.Var); ok {
		obj = u
	}
	if obj == nil {
		return
	}
	// Only variables declared inside this body are tracked: an assignment
	// to a captured outer variable (the `err = fmt.Errorf(...)` inside a
	// recover closure) or to a parameter escapes this scope's reasoning —
	// the enclosing function's own analysis sees the variable's fate.
	if obj.Pos() < c.body.Pos() || obj.Pos() > c.body.End() {
		return
	}
	c.defs = append(c.defs, errDef{obj: obj, pos: id.Pos(), name: id.Name, call: renderCallee(call)})
}

// transferNode applies one node's effect to the fact set: uses kill,
// assignments re-gen.
func (c *errChecker) transferNode(n ast.Node, fact errFact) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		c.transferAssign(s.Lhs, s.Rhs, fact)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, name := range vs.Names {
						lhs[i] = name
					}
					c.transferAssign(lhs, vs.Values, fact)
				}
			}
		}
	case *ast.RangeStmt:
		// The RangeStmt lands whole in the loop head; only its range
		// expression evaluates there — the body has its own blocks, and
		// walking it here would consume uses on the zero-iteration path.
		c.killUses(s.X, fact)
		for _, le := range []ast.Expr{s.Key, s.Value} {
			if id, ok := le.(*ast.Ident); ok {
				if obj := c.objOf(id); obj != nil {
					for i, d := range c.defs {
						if d.obj == obj {
							delete(fact, i)
						}
					}
				}
			}
		}
	default:
		// A leaf of a decomposed short-circuit condition consumes across
		// the whole condition: on the path where `err1 != nil` short-
		// circuits an `|| err2 != nil`, err2 still counts as checked.
		if root, ok := c.condRoot[n]; ok {
			c.killUses(root, fact)
			return
		}
		c.killUses(n, fact)
	}
}

// transferAssign: RHS reads consume; ident LHS writes kill the old defs
// of the variable and gen the new def (when the RHS is an error call).
func (c *errChecker) transferAssign(lhs, rhs []ast.Expr, fact errFact) {
	for _, re := range rhs {
		c.killUses(re, fact)
	}
	for _, le := range lhs {
		id, ok := le.(*ast.Ident)
		if !ok {
			// A field/index target: its sub-expressions are reads.
			c.killUses(le, fact)
			continue
		}
		obj := c.objOf(id)
		if obj == nil {
			continue
		}
		// Overwrite: the previous defs of this variable are dead.
		for i, d := range c.defs {
			if d.obj == obj {
				delete(fact, i)
			}
		}
	}
	// Gen the new defs for this assignment's error results.
	for i, d := range c.defs {
		for _, le := range lhs {
			if id, ok := le.(*ast.Ident); ok && id.Pos() == d.pos {
				fact[i] = true
			}
		}
	}
}

// killUses removes every def whose variable is read anywhere inside n
// (including inside nested function literals — a closure capturing the
// error may consume it later, which counts).
func (c *errChecker) killUses(n ast.Node, fact errFact) {
	ast.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := c.p.Pkg.Info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		for i, d := range c.defs {
			if d.obj == obj {
				delete(fact, i)
			}
		}
		return true
	})
}

func (c *errChecker) objOf(id *ast.Ident) *types.Var {
	if d, ok := c.p.Pkg.Info.Defs[id].(*types.Var); ok {
		return d
	}
	if u, ok := c.p.Pkg.Info.Uses[id].(*types.Var); ok {
		return u
	}
	return nil
}

// --- type and exclusion helpers ---

var errIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t is error or implements it.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errIface)
}

// typeHasError reports whether a call's result type (single or tuple)
// contains an error.
func typeHasError(t types.Type) bool {
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

// errcheckExcluded reports whether a call site is conventionally
// infallible: the fmt print family, bytes.Buffer / strings.Builder
// methods, and deferred Close on the cleanup path.
func errcheckExcluded(p *Pass, call *ast.CallExpr, deferred bool) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if deferred && sel.Sel.Name == "Close" {
		return true
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkg, ok := p.Pkg.Info.Uses[id].(*types.PkgName); ok {
			switch pkg.Imported().Path() {
			case "fmt":
				switch sel.Sel.Name {
				case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
					return true
				}
			case "os":
				// Deferred temp-file cleanup: the remove is a best-effort
				// no-op after a successful rename.
				if deferred && (sel.Sel.Name == "Remove" || sel.Sel.Name == "RemoveAll") {
					return true
				}
			}
		}
	}
	// Methods of the never-erroring in-memory writers.
	recv := p.Pkg.Info.TypeOf(sel.X)
	for recv != nil {
		ptr, ok := recv.(*types.Pointer)
		if !ok {
			break
		}
		recv = ptr.Elem()
	}
	if named, ok := recv.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil {
			switch obj.Pkg().Path() + "." + obj.Name() {
			case "bytes.Buffer", "strings.Builder":
				return true
			}
		}
	}
	return false
}

// renderCallee renders the callee of a call for diagnostics ("f",
// "pkg.F", "x.M").
func renderCallee(call *ast.CallExpr) string {
	if call == nil {
		return "the call"
	}
	return types.ExprString(call.Fun)
}
