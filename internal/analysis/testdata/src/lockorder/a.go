// Package lockorder seeds inconsistent lock-acquisition orders for the
// lockorder golden test: an ABBA pair in one package, a cycle threaded
// through a helper call, a recursive self-acquisition, and consistent
// orders that must stay clean.
package lockorder

import "sync"

type S struct {
	a, b, c, d, e, f, g sync.Mutex
	v                   int
}

// ab and ba acquire the same two locks in opposite orders: the classic
// ABBA deadlock once both run concurrently. The representative edge is
// the lexicographically first one, a→b, reported where b is acquired
// with a held.
func (s *S) ab() {
	s.a.Lock()
	defer s.a.Unlock()
	s.b.Lock() // want:lockorder
	defer s.b.Unlock()
	s.v++
}

func (s *S) ba() {
	s.b.Lock()
	defer s.b.Unlock()
	s.a.Lock()
	defer s.a.Unlock()
	s.v--
}

// outer holds c while calling lockD, which acquires d — the c→d edge
// flows through the call graph; dc closes the cycle directly.
func (s *S) outer() {
	s.c.Lock()
	defer s.c.Unlock()
	s.lockD() // want:lockorder
}

func (s *S) lockD() {
	s.d.Lock()
	defer s.d.Unlock()
	s.v++
}

func (s *S) dc() {
	s.d.Lock()
	defer s.d.Unlock()
	s.c.Lock()
	defer s.c.Unlock()
}

// relock re-acquires e through a helper while already holding it: a
// self-deadlock (e→e), deliberately suppressed here to prove the
// directive machinery covers this rule.
func (s *S) relock() {
	s.e.Lock()
	defer s.e.Unlock()
	//lint:ignore lockorder fixture: proves line-level suppression works for this rule
	s.lockE()
}

func (s *S) lockE() {
	s.e.Lock()
	defer s.e.Unlock()
	s.v++
}

// fg1 and fg2 agree on the f→g order: consistent, no finding.
func (s *S) fg1() {
	s.f.Lock()
	defer s.f.Unlock()
	s.g.Lock()
	defer s.g.Unlock()
}

func (s *S) fg2() {
	s.f.Lock()
	defer s.f.Unlock()
	s.g.Lock()
	defer s.g.Unlock()
	s.v++
}
