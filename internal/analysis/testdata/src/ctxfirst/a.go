// Package ctxfirst seeds violations for the ctxfirst rule.
package ctxfirst

import "context"

// good: ctx first.
func fetch(ctx context.Context, url string) error {
	_ = ctx
	_ = url
	return nil
}

// good: no context at all.
func pure(a, b int) int { return a + b }

// bad: ctx buried behind another parameter.
func buried(url string, ctx context.Context) error { // want:ctxfirst
	_ = ctx
	_ = url
	return nil
}

// bad: ctx last among several.
func last(a int, b string, ctx context.Context) { // want:ctxfirst
	_ = ctx
}

// server shows the struct-field violation and a legal func-typed field.
type server struct {
	ctx  context.Context // want:ctxfirst
	name string
	// fn is fine: the context still flows per call.
	fn func(ctx context.Context, q string) error
}

// handler is a function type; the convention applies to it too.
type handler func(q string, ctx context.Context) error // want:ctxfirst

// iface shows the interface-method case.
type iface interface {
	Do(q string, ctx context.Context) error // want:ctxfirst
	OK(ctx context.Context, q string) error
}

// method: the receiver does not count as a parameter; ctx first is good.
func (s *server) run(ctx context.Context) error {
	_ = ctx
	return nil
}

// method with ctx second is bad.
func (s *server) bad(q string, ctx context.Context) error { // want:ctxfirst
	_ = ctx
	_ = q
	return nil
}

// twoCtx keeps both contexts in the leading group: position, not arity,
// is the contract.
func twoCtx(ctx, ctx2 context.Context, q string) {
	_ = ctx
	_ = ctx2
	_ = q
}

// suppressed: a deliberate violation with a written reason stays quiet.
type legacy struct {
	//lint:ignore ctxfirst fixture: proves line-level suppression works for this rule
	ctx context.Context
}

// funcLit seeds the function-literal case.
var funcLit = func(n int, ctx context.Context) { // want:ctxfirst
	_ = ctx
	_ = n
}
