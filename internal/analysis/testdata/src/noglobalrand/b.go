package noglobalrand

import mrand "math/rand"

func aliased() int {
	return mrand.Intn(3) // want:noglobalrand
}
