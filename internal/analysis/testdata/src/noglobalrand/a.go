// Package noglobalrand seeds violations for the noglobalrand rule.
package noglobalrand

import "math/rand"

func draw() int {
	return rand.Intn(10) // want:noglobalrand
}

func drawFloat() float64 {
	return rand.Float64() // want:noglobalrand
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want:noglobalrand
}

func seeded() int {
	rng := rand.New(rand.NewSource(7)) // constructing a generator is the approved pattern
	return rng.Intn(10)
}

func injected(rng *rand.Rand) float64 {
	return rng.Float64() // drawing from an injected generator is fine
}

func suppressed() int {
	//lint:ignore noglobalrand fixture: proves line-level suppression works for this rule
	return rand.Intn(10)
}
