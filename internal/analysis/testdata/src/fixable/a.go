package fixable

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

func (c *Counter) Add() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func Exported() int { return 0 }
