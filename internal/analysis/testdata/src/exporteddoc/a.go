// Package exporteddoc seeds violations for the exporteddoc rule.
package exporteddoc

// Documented is documented.
type Documented struct{}

// DocumentedFunc is documented.
func DocumentedFunc() {}

type Undocumented struct{} // want:exporteddoc

func UndocumentedFunc() {} // want:exporteddoc

// Value returns zero.
func (Documented) Value() int { return 0 }

func (Documented) Missing() int { return 0 } // want:exporteddoc

const Exported = 1 // want:exporteddoc

// Grouped declarations share the group's doc comment.
const (
	GroupedA = iota
	GroupedB
)

var unexported = 0

func unexportedFunc() int { return unexported }

type hidden struct{}

// Peek is a method of an unexported type: not public surface.
func (hidden) Peek() {}

func (hidden) Quiet() {} // methods of unexported types need no docs

//lint:ignore exporteddoc fixture: proves line-level suppression works for this rule
func SuppressedFunc() {}
