// Package deferunlock seeds violations for the deferunlock rule.
package deferunlock

import "sync"

type box struct {
	mu  sync.RWMutex
	val int
}

func (b *box) good() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.val
}

func (b *box) goodWrite(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.val = v
}

func (b *box) inlineUnlock() int {
	b.mu.RLock() // want:deferunlock
	v := b.val
	b.mu.RUnlock()
	return v
}

func (b *box) missingUnlock(v int) {
	b.mu.Lock() // want:deferunlock
	b.val = v
}

func (b *box) wrongCounterpart() {
	b.mu.Lock() // want:deferunlock
	defer b.mu.RUnlock()
}

func (b *box) closureScope() int {
	get := func() int {
		b.mu.RLock() // want:deferunlock
		v := b.val
		b.mu.RUnlock()
		return v
	}
	return get()
}

func (b *box) deferInClosureDoesNotCount() {
	b.mu.Lock() // want:deferunlock
	func() {
		defer b.mu.Unlock()
	}()
}

func (b *box) suppressed() int {
	//lint:ignore deferunlock fixture: proves line-level suppression works for this rule
	b.mu.RLock()
	v := b.val
	b.mu.RUnlock()
	return v
}

func notAMutex() {
	var c chest
	c.Lock() // a Lock method without an Unlock counterpart is not lock discipline
}

type chest struct{}

func (chest) Lock() {}
