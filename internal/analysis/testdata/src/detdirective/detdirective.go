// Package detdirective seeds malformed //det: directives for the
// directive-validation tests. Well-formed marks stay silent — including
// on functions that already satisfy the contract, because a
// //det:replayed is a standing contract, not a suppression that can go
// stale.
package detdirective

// Restore is marked, clean, and produces no diagnostic: the clean state
// is the contract's goal.
//
//det:replayed fixture: standing contract on a clean function
func Restore(a, b int) int { return a + b }

// Unknown carries a verb the directive grammar does not know.
//
//det:replayedonce fixture: MARK:unknown-verb
func Unknown() int { return 0 }

// Reasonless carries a bare mark with no written justification.
//
//det:replayed
func Reasonless() int { return 1 }

// misplaced holds a directive inside a function body — the contract is
// function-level, so only doc comments may carry it.
func misplaced() int {
	//det:replayed fixture: MARK:inside-body
	return 2
}

//det:replayed fixture: MARK:free-floating directive attached to no function

// answer exists so the free-floating directive above has a neighbor
// that is not a FuncDecl.
var answer = Restore(40, 2) + Unknown() + Reasonless() + misplaced()
