// Package floatcompare seeds violations for the floatcompare rule.
package floatcompare

type meters float64

func eq(a, b float64) bool {
	return a == b // want:floatcompare
}

func neq32(a, b float32) bool {
	return a != b // want:floatcompare
}

func named(a, b meters) bool {
	return a == b // want:floatcompare
}

func mixed(a float64) bool {
	return a == 0 // want:floatcompare
}

func ints(a, b int) bool {
	return a == b // integer equality is exact; not flagged
}

func isNaN(x float64) bool {
	return x != x // the NaN idiom is recognized and allowed
}

func tolerant(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps // ordered comparisons are fine
}

func suppressed(a, b float64) bool {
	//lint:ignore floatcompare fixture: proves line-level suppression works for this rule
	return a == b
}
