// Package detfixable seeds exactly one mechanically fixable detmaprange
// finding for the sort-before-encode autofix apply test: the fix must
// insert the canonical sort on the line before the sink and splice
// "sort" into the import group, and a re-lint of the rewritten tree
// must be clean.
package detfixable

import (
	"bytes"
	"encoding/gob"
)

// Snapshot encodes map keys in iteration order; `trajlint -fix` inserts
// sort.Strings(keys) above the Encode call.
func Snapshot(m map[string]int) []byte {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	_ = enc.Encode(keys)
	return buf.Bytes()
}
