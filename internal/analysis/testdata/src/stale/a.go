// Package stale exercises the stale-suppression scan: a well-formed
// directive whose rule ran and matched nothing is itself diagnosed
// (under the non-suppressible "directive" pseudo-rule) and carries a fix
// deleting it.
package stale

// eq carries a live suppression: the comparison below is a real
// floatcompare finding the directive covers.
func eq(a, b float64) bool {
	//lint:ignore floatcompare fixture: exact comparison is the point of this helper
	return a == b
}

// plain compares ints — floatcompare has nothing to say, so the
// directive below suppresses nothing and is reported as stale.
func plain(a, b int) bool {
	//lint:ignore floatcompare fixture: stale, ints compare exactly — // want:directive
	return a == b
}
