//lint:file-ignore floatcompare fixture: stale, no float comparison in this file — // want:directive

// Package comment lives in a.go; this file holds a stale file-wide
// directive: the rule it names finds nothing anywhere in the file.
package stale

func add(a, b int) int { return a + b }
