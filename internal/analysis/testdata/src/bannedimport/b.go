package bannedimport

//lint:ignore bannedimport fixture: proves line-level suppression works for this rule
import _ "example.org/also/forbidden"
