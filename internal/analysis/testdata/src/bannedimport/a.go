// Package bannedimport seeds violations for the bannedimport rule.
package bannedimport

import (
	"fmt"

	_ "github.com/forbidden/thirdparty" // want:bannedimport
)

func used() string { return fmt.Sprint("stdlib imports are fine") }
