// Package goroutineleak seeds unbounded goroutines for the goroutineleak
// golden test, next to every accepted evidence class that must stay
// clean: context plumbing, WaitGroup joins, ranges over channels that
// are provably closed, and buffered-only sends.
package goroutineleak

import (
	"context"
	"sync"
)

// leak ranges over a channel nobody in scope ever closes: the goroutine
// can block forever.
func leak(ch chan int) {
	go func() { // want:goroutineleak
		for v := range ch {
			_ = v
		}
	}()
}

// ctxBound selects on ctx.Done: cancellable.
func ctxBound(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

// ctxArg hands the context to a named worker: the callee owns
// cancellation.
func ctxArg(ctx context.Context) {
	go worker(ctx)
}

func worker(ctx context.Context) {
	<-ctx.Done()
}

// waitGroup joins every spawn through wg.Done/wg.Wait.
func waitGroup(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// closedChan drains a channel the enclosing scope provably closes.
func closedChan(items []int) {
	ch := make(chan int)
	go func() {
		for v := range ch {
			_ = v
		}
	}()
	for _, v := range items {
		ch <- v
	}
	close(ch)
}

// buffered only sends into a channel with capacity for every send: the
// goroutine cannot block even if the receiver gives up.
func buffered() int {
	res := make(chan int, 1)
	go func() {
		res <- 42
	}()
	return <-res
}

// suppressed: a deliberate fire-and-forget under a directive.
func suppressed(ch chan int) {
	//lint:ignore goroutineleak fixture: proves line-level suppression works for this rule
	go func() {
		for range ch {
		}
	}()
}
