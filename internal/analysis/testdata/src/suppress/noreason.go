package suppress

func noReason(a, b float64) bool {
	//lint:ignore floatcompare
	return a == b // MARK:no-reason
}
