// Package suppress exercises the //lint:ignore directive machinery:
// line scope, file scope, wrong rule names, and missing reasons.
package suppress

func lineScoped(a, b float64) bool {
	//lint:ignore floatcompare a directive covers its own line and the next one only
	if a == b {
		return true
	}
	return a != b // MARK:line-after-gap
}

func trailingDirective(a, b float64) bool {
	return a == b //lint:ignore floatcompare a trailing directive covers its own line
}
