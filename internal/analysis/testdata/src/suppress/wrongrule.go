package suppress

func wrongKnownRule(a, b float64) bool {
	//lint:ignore deferunlock names a real rule, but not the one that fires here
	return a == b // MARK:wrong-known-rule
}

func unknownRule(a, b float64) bool {
	//lint:ignore floatcmp this rule name does not exist MARK:bad-directive
	return a == b // MARK:unknown-rule
}
