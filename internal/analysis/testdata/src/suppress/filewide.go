package suppress

//lint:file-ignore floatcompare fixture: file-wide suppression covers every finding in this file

func fileWideOne(a, b float64) bool {
	return a == b // MARK:filewide-one
}

func fileWideTwo(a, b float64) bool {
	return a != b // MARK:filewide-two
}
