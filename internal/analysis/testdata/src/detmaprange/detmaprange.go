// Package detmaprange seeds map-iteration-order flows into
// serialization sinks for the detmaprange golden tests: a direct range
// into a gob encode, a helper that launders the range through a return
// value, a WAL append payload, a gob encode of a map-bearing struct
// type, and the sorted/slot-keyed versions that must stay silent.
package detmaprange

import (
	"bytes"
	"encoding/gob"
	"sort"

	"fixtures/wal"
)

// EncodeUnsorted ranges over a map and encodes the keys in iteration
// order — the canonical violation.
func EncodeUnsorted(m map[string]int) []byte {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	_ = enc.Encode(keys) // want:detmaprange
	return buf.Bytes()
}

// EncodeSorted sorts the keys into their canonical order first: the
// sort launders the iteration-order taint, so this stays silent.
func EncodeSorted(m map[string]int) []byte {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	_ = enc.Encode(keys)
	return buf.Bytes()
}

// collect launders a map range into a plain slice inside a helper; the
// taint survives through collect's function summary.
func collect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// EncodeLaundered encodes helper-collected keys without sorting — the
// interprocedural summary catches it at the sink.
func EncodeLaundered(m map[string]int, enc *gob.Encoder) error {
	keys := collect(m)
	return enc.Encode(keys) // want:detmaprange
}

// EncodeLaunderedSorted sorts the helper-collected keys first — clean.
func EncodeLaunderedSorted(m map[string]int, enc *gob.Encoder) error {
	keys := collect(m)
	sort.Strings(keys)
	return enc.Encode(keys)
}

// AppendKeys feeds map-iteration-ordered bytes into a WAL append
// payload — the log is replayed verbatim, so the bytes must be stable.
func AppendKeys(st *wal.Store, m map[string]string) error {
	var payload []byte
	for k := range m {
		payload = append(payload, k...)
	}
	return st.Append(payload) // want:detmaprange
}

// State carries an exported map field: gob serializes map entries in
// iteration order, so encoding the type is nondeterministic regardless
// of how the value was built.
type State struct {
	Counts map[string]int
}

// EncodeState gob-encodes a map-bearing struct directly.
func EncodeState(s State, enc *gob.Encoder) error {
	return enc.Encode(s) // want:detmaprange
}

// Pair is the sorted-slice encoding of one map entry.
type Pair struct {
	Key string
	N   int
}

// EncodePairs encodes the map as a key-sorted pair slice — the
// canonical fix for EncodeState — and stays silent.
func EncodePairs(m map[string]int, enc *gob.Encoder) error {
	pairs := make([]Pair, 0, len(m))
	for k, n := range m {
		pairs = append(pairs, Pair{Key: k, N: n})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Key < pairs[j].Key })
	return enc.Encode(pairs)
}
