// Package allocinloop seeds the per-iteration allocation idioms the
// allocinloop rule recognizes syntactically (no compiler needed), plus
// the ownership patterns it must exempt.
package allocinloop

import "fmt"

// Seeded is hot; its loop body performs every allocation idiom the rule
// knows.
//
//perf:hotpath fixture: seeded violations
func Seeded(keys []string, n int) string {
	var out []int
	s := ""
	for i := 0; i < n; i++ {
		out = append(out, i)        // want:allocinloop
		s += keys[i]                // want:allocinloop
		msg := "k" + keys[i]        // want:allocinloop
		buf := make([]byte, 0, n)   // want:allocinloop
		p := new(int)               // want:allocinloop
		v := any(i)                 // want:allocinloop
		fmt.Println(msg, buf, p, v) // want:allocinloop
	}
	return s
}

// Exempt is hot but allocation-clean under the rule's ownership model:
// appends into caller-provided storage, a make-with-size local, and a
// reslice all inherit preallocated capacity.
//
//perf:hotpath fixture: exempt ownership patterns
func Exempt(dst []int, scratch []byte, n int) []int {
	pre := make([]int, 0, n)
	tmp := scratch[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, i) // param: the caller owns the capacity
		pre = append(pre, i) // make-with-size local
		tmp = append(tmp, byte(i))
	}
	_ = tmp
	return append(dst, pre...)
}

// cold runs the same idioms without a //perf:hotpath mark: the rule has
// no jurisdiction here.
func cold(keys []string, n int) string {
	s := ""
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i)
		s += keys[i]
	}
	_ = out
	return s
}

var _ = cold
