// Package errcheck seeds error-consumption violations for the errcheck
// golden test. Findings carry want annotations on the line the
// diagnostic lands on; everything unannotated must stay clean — that is
// how the rule's exemptions (named results, closure capture, deferred
// consumption, short-circuit conditions) are locked in.
package errcheck

import "errors"

func fallible() error { return errors.New("boom") }

func pair() (int, error) { return 1, errors.New("boom") }

// --- dropped result tuples ---

func dropped() {
	fallible() // want:errcheck
}

func droppedGo() {
	go fallible() // want:errcheck
}

// --- explicit _ discards ---

func discarded() {
	_ = fallible() // want:errcheck
}

func discardedPair() int {
	n, _ := pair() // want:errcheck
	return n
}

// --- path sensitivity: consumed on one branch, dropped on the other ---

func checkedOneBranch(flag bool) error {
	err := fallible() // want:errcheck
	if flag {
		return err
	}
	return nil
}

// --- clean shapes ---

// checkedEverywhere consumes the error on every path.
func checkedEverywhere() error {
	err := fallible()
	if err != nil {
		return err
	}
	return nil
}

// shortCircuit: both errors count as checked even though || can skip the
// evaluation of the second test at runtime.
func shortCircuit() error {
	err1 := fallible()
	err2 := fallible()
	if err1 != nil || err2 != nil {
		return errors.New("either")
	}
	return nil
}

// named result: assigning to it is consumption — returning the function
// returns it.
func named() (err error) {
	err = fallible()
	return
}

// captured: a closure capturing the error may consume it later.
func captured() func() error {
	err := fallible()
	return func() error { return err }
}

// deferredConsume: defers run at every exit, so their uses consume.
func deferredConsume(sink *error) {
	err := fallible()
	defer func() { *sink = err }()
}

// retry: overwriting in a loop and returning after is clean.
func retry() error {
	var err error
	for i := 0; i < 3; i++ {
		err = fallible()
		if err == nil {
			return nil
		}
	}
	return err
}

// suppressed: a deliberate discard under a directive with a reason.
func suppressed() {
	//lint:ignore errcheck fixture: proves line-level suppression works for this rule
	_ = fallible()
}
