// Package panicattrib seeds violations for the panicattrib rule.
package panicattrib

import "fmt"

func good() {
	panic("panicattrib: invariant broken")
}

func goodf(n int) {
	panic(fmt.Sprintf("panicattrib: bad n %d", n))
}

func badPlain() {
	panic("invariant broken") // want:panicattrib
}

func badFormat(n int) {
	panic(fmt.Sprintf("bad n %d", n)) // want:panicattrib
}

func badValue(err error) {
	panic(err) // want:panicattrib
}

func badWrongPrefix() {
	panic("otherpkg: not this package") // want:panicattrib
}

func suppressed() {
	//lint:ignore panicattrib fixture: proves line-level suppression works for this rule
	panic("fixture panic without prefix")
}
