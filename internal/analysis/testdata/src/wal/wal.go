// Package wal is a miniature stand-in for the real internal/wal store.
// The det rules treat the payload of any Append method on a type in a
// package named "wal" as replayed state (the real log is re-applied
// verbatim during recovery), so this fixture package exists to exercise
// that sink from the det fixtures.
package wal

// Store is the fixture log.
type Store struct {
	frames [][]byte
}

// Append appends one frame payload to the fixture log.
func (s *Store) Append(payload []byte) error {
	s.frames = append(s.frames, payload)
	return nil
}
