// Package detwallclock seeds wall-clock, global-rand, and ambient
// process-state flows for the detwallclock golden tests: direct reads
// reaching a gob encode, a helper laundering the clock through a return
// value, ambient reads inside //det:replayed functions, and the seeded
// local-rand version that must stay silent.
package detwallclock

import (
	"encoding/gob"
	"math/rand"
	"os"
	"time"
)

// EncodeStamp encodes a wall-clock read.
func EncodeStamp(enc *gob.Encoder) error {
	stamp := time.Now().UnixNano()
	return enc.Encode(stamp) // want:detwallclock
}

// EncodePerm encodes a permutation drawn from the global rand source.
func EncodePerm(enc *gob.Encoder) error {
	p := rand.Perm(8)
	return enc.Encode(p) // want:detwallclock
}

// EncodeSeeded draws from an explicitly seeded local source —
// deterministic given the seed, so it stays silent.
func EncodeSeeded(enc *gob.Encoder) error {
	rng := rand.New(rand.NewSource(42))
	p := rng.Perm(8)
	return enc.Encode(p)
}

// EncodePid encodes ambient process identity.
func EncodePid(enc *gob.Encoder) error {
	return enc.Encode(os.Getpid()) // want:detwallclock
}

// stamp launders the clock through a helper return value.
func stamp() int64 {
	return time.Now().UnixNano()
}

// EncodeStamped is caught through stamp's interprocedural summary.
func EncodeStamped(enc *gob.Encoder) error {
	return enc.Encode(stamp()) // want:detwallclock
}

// restoreSeed is replayed, so its return value must be a pure function
// of its inputs — returning the clock is a finding even with no
// serialization sink in sight.
//
//det:replayed fixture: recovery re-runs this and compares the outcome byte-for-byte
func restoreSeed() int64 {
	return time.Now().UnixNano() // want:detwallclock
}

// tick reads the clock for a side effect only (no data flow out).
func tick() {
	_ = time.Now()
}

// applyEntry is replayed; calling a helper that observes the clock is a
// finding even though no clock value flows anywhere.
//
//det:replayed fixture: applied from the WAL during recovery
func applyEntry(n int) int {
	tick() // want:detwallclock
	return n * 2
}

// applyClean is replayed and genuinely pure — no finding, and the
// standing contract is not a stale mark.
//
//det:replayed fixture: standing contract on a clean replay function
func applyClean(n int) int {
	return n + 1
}

var _ = []any{EncodeStamp, EncodePerm, EncodeSeeded, EncodePid, EncodeStamped, restoreSeed, applyEntry, applyClean}
