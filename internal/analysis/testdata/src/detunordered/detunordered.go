// Package detunordered seeds goroutine-completion-order flows for the
// detunordered golden tests: arrival-order collection from workers
// reaching a gob encode, a multi-case select feeding a sink, and the
// slot-indexed / sorted collection patterns that must stay silent.
package detunordered

import (
	"encoding/gob"
	"sort"
	"sync"
)

// EncodeArrival collects worker results in completion order under a
// mutex, then encodes the arrival-ordered slice — the bytes depend on
// goroutine scheduling.
func EncodeArrival(inputs []float64, enc *gob.Encoder) error {
	var mu sync.Mutex
	var out []float64
	var wg sync.WaitGroup
	for _, x := range inputs {
		wg.Add(1)
		go func(x float64) {
			defer wg.Done()
			mu.Lock()
			defer mu.Unlock()
			out = append(out, x*2)
		}(x)
	}
	wg.Wait()
	return enc.Encode(out) // want:detunordered
}

// EncodeSlots collects results by slot index — each goroutine owns one
// slot, so the result is scheduling-independent and stays silent.
func EncodeSlots(inputs []float64, enc *gob.Encoder) error {
	out := make([]float64, len(inputs))
	var wg sync.WaitGroup
	for i, x := range inputs {
		wg.Add(1)
		go func(i int, x float64) {
			defer wg.Done()
			out[i] = x * 2
		}(i, x)
	}
	wg.Wait()
	return enc.Encode(out)
}

// EncodeSortedArrival sorts the arrival-ordered slice into a canonical
// order before encoding — clean.
func EncodeSortedArrival(inputs []float64, enc *gob.Encoder) error {
	var mu sync.Mutex
	var out []float64
	var wg sync.WaitGroup
	for _, x := range inputs {
		wg.Add(1)
		go func(x float64) {
			defer wg.Done()
			mu.Lock()
			defer mu.Unlock()
			out = append(out, x*2)
		}(x)
	}
	wg.Wait()
	sort.Float64s(out)
	return enc.Encode(out)
}

// EncodeFirst encodes whichever of two channels delivers first — the
// select winner depends on scheduling.
func EncodeFirst(a, b <-chan int, enc *gob.Encoder) error {
	var v int
	select {
	case v = <-a:
	case v = <-b:
	}
	return enc.Encode(v) // want:detunordered
}

// EncodeOnly drains a single-case select — one ready channel is not a
// scheduling race, so it stays silent.
func EncodeOnly(a <-chan int, enc *gob.Encoder) error {
	var v int
	select {
	case v = <-a:
	}
	return enc.Encode(v)
}

// EncodeFanIn encodes values received from a channel fed by multiple
// goroutines — arrival order is scheduling order.
func EncodeFanIn(inputs []float64, enc *gob.Encoder) error {
	ch := make(chan float64)
	var wg sync.WaitGroup
	for _, x := range inputs {
		wg.Add(1)
		go func(x float64) {
			defer wg.Done()
			ch <- x * 2
		}(x)
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	var out []float64
	for v := range ch {
		out = append(out, v)
	}
	return enc.Encode(out) // want:detunordered
}
