package analysis

import (
	"go/ast"
	"go/types"
)

// ruleNoGlobalRand forbids calls to math/rand's package-level functions
// (rand.Intn, rand.Float64, rand.Shuffle, ...) in library code. Every
// random draw must flow through an injected *rand.Rand so that training,
// vantage-point sampling, and dataset generation stay reproducible from
// an explicit seed — the convention internal/nn, internal/engine, and
// internal/data already follow, and the one the paper's deterministic
// HR@k tables depend on. Constructing a generator (rand.New,
// rand.NewSource, rand.NewZipf) is of course allowed.
var ruleNoGlobalRand = &Rule{
	Name: "noglobalrand",
	Doc:  "no math/rand package-level functions; inject a *rand.Rand (reproducibility contract)",
	Run:  runNoGlobalRand,
}

// Constructors of explicit generators — the approved way to touch the
// rand package directly.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runNoGlobalRand(p *Pass) {
	for _, f := range p.Pkg.Files {
		// Local names binding the math/rand packages in this file.
		randNames := map[string]bool{}
		for _, imp := range f.Imports {
			path := importPath(imp)
			if path != "math/rand" && path != "math/rand/v2" {
				continue
			}
			name := "rand"
			if path == "math/rand/v2" {
				name = "rand" // default name of .../v2 is still "rand"
			}
			if imp.Name != nil {
				name = imp.Name.Name
			}
			if name != "_" && name != "." {
				randNames[name] = true
			}
		}
		if len(randNames) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok || !randNames[ident.Name] {
				return true
			}
			// When type information resolved, require the identifier to
			// really be the imported package (not a shadowing local).
			if obj := p.Pkg.Info.Uses[ident]; obj != nil {
				if _, isPkg := obj.(*types.PkgName); !isPkg {
					return true
				}
			}
			if randConstructors[sel.Sel.Name] {
				return true
			}
			p.Reportf(call.Pos(),
				"call to global math/rand.%s; draw from an injected *rand.Rand (rand.New(rand.NewSource(seed))) so results are reproducible",
				sel.Sel.Name)
			return true
		})
	}
}

// importPath unquotes an import spec's path.
func importPath(imp *ast.ImportSpec) string {
	s := imp.Path.Value
	if len(s) >= 2 {
		return s[1 : len(s)-1]
	}
	return s
}
