package analysis

import "strings"

// ruleBannedImport enforces the repo's stdlib-only constraint: every
// import must be either a standard-library package or a package of this
// module. A third-party dependency slipping in would break the
// reproducibility story (the container has no module proxy) and the
// from-scratch claim of the reproduction, so the gate fails the build
// rather than letting `go mod tidy` paper over it.
var ruleBannedImport = &Rule{
	Name: "bannedimport",
	Doc:  "imports must be stdlib or module-local (stdlib-only contract)",
	Run:  runBannedImport,
}

func runBannedImport(p *Pass) {
	mod := p.Pkg.Module
	for _, f := range p.Pkg.Files {
		for _, imp := range f.Imports {
			path := importPath(imp)
			if path == mod || strings.HasPrefix(path, mod+"/") || IsStdImport(path) {
				continue
			}
			p.Reportf(imp.Pos(),
				"import %q is neither stdlib nor module-local; the repo is stdlib-only by contract",
				path)
		}
	}
}
