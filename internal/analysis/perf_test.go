package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// --- directive validation (pure AST, fixture tree) ---

// perfMarkLine returns the 1-based line containing marker in a
// testdata/src fixture file.
func perfMarkLine(t *testing.T, pkgDir, file, marker string) int {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "src", pkgDir, file))
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, marker) {
			return i + 1
		}
	}
	t.Fatalf("marker %q not found in %s", marker, file)
	return 0
}

// TestPerfDirectiveValidation: unknown verbs, reasonless marks, and
// directives not attached to a function doc are diagnosed (with a
// delete fix); well-formed marks on clean functions stay silent — a
// standing contract is not a stale suppression.
func TestPerfDirectiveValidation(t *testing.T) {
	// Any selected rule will do: directive validation always runs.
	diags, _ := fixturePkg(t, "fixtures/perfdirective", "allocinloop")
	const file = "perfdirective.go"
	for name, marker := range map[string]string{
		"unknown verb":  "MARK:unknown-verb",
		"inside a body": "MARK:inside-body",
		"free-floating": "MARK:free-floating",
	} {
		line := perfMarkLine(t, "perfdirective", file, marker)
		if !diagAt(diags, file, line, DirectiveRule) {
			t.Errorf("%s (%s:%d): malformed directive not diagnosed; got %v", name, file, line, diags)
		}
	}
	// The reasonless directive is the line that is exactly
	// "//perf:hotpath" (any trailing text would become its reason).
	data, err := os.ReadFile(filepath.Join("testdata", "src", "perfdirective", file))
	if err != nil {
		t.Fatal(err)
	}
	reasonless := 0
	for i, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "//perf:hotpath" {
			reasonless = i + 1
			break
		}
	}
	if reasonless == 0 {
		t.Fatal("fixture lost its bare //perf:hotpath line")
	}
	if !diagAt(diags, file, reasonless, DirectiveRule) {
		t.Errorf("missing reason (%s:%d): reasonless directive not diagnosed; got %v", file, reasonless, diags)
	}
	for _, d := range diags {
		if d.Rule == DirectiveRule && (d.Fix == nil || len(d.Fix.Edits) == 0) {
			t.Errorf("%s: malformed perf directive should carry a delete fix", d)
		}
		if d.Rule != DirectiveRule {
			t.Errorf("unexpected non-directive diagnostic: %s", d)
		}
	}
	// Exactly the four malformed directives fire — in particular the
	// well-formed mark on the clean function Hot produces nothing.
	if n := len(diags); n != 4 {
		t.Errorf("want 4 directive diagnostics, got %d: %v", n, diags)
	}
}

// TestAllocInLoopGolden: the syntactic allocation idioms fire inside
// hot loops exactly where seeded, and the ownership exemptions
// (parameter, make-with-size, reslice) and unmarked functions stay
// silent.
func TestAllocInLoopGolden(t *testing.T) {
	diags, pkg := fixturePkg(t, "fixtures/allocinloop", "allocinloop")
	goldenCheck(t, pkg, diags)
}

// --- compiler diagnostic parsing ---

func TestParseCompilerDiags(t *testing.T) {
	out := "# perfmod/hot\n" +
		"hot/hot.go:10:9: moved to heap: x\n" +
		"hot/hot.go:17:13: make([]int, n) escapes to heap\n" +
		"hot/hot.go:25:8: Found IsInBounds\n" +
		"hot/hot.go:26:8: Found IsSliceInBounds\n" +
		"hot/util.go:3:6: can inline helper\n" +
		"not a diagnostic line\n" +
		"/abs/x.go:1:1: \"lit\" escapes to heap\n"
	diags := parseCompilerDiags("/mod", out)
	if len(diags) != 6 {
		t.Fatalf("parsed %d diagnostics, want 6: %v", len(diags), diags)
	}
	if diags[0].File != filepath.FromSlash("/mod/hot/hot.go") || diags[0].Line != 10 || diags[0].Col != 9 {
		t.Errorf("relative path resolution: %+v", diags[0])
	}
	if diags[5].File != filepath.FromSlash("/abs/x.go") {
		t.Errorf("absolute path must pass through: %+v", diags[5])
	}
	wantAlloc := []bool{true, true, false, false, false, false}
	wantBCE := []bool{false, false, true, true, false, false}
	for i, d := range diags {
		if d.IsHeapAlloc() != wantAlloc[i] {
			t.Errorf("diag %d (%q): IsHeapAlloc = %v, want %v", i, d.Message, d.IsHeapAlloc(), wantAlloc[i])
		}
		if d.IsBoundsCheck() != wantBCE[i] {
			t.Errorf("diag %d (%q): IsBoundsCheck = %v, want %v", i, d.Message, d.IsBoundsCheck(), wantBCE[i])
		}
	}
}

// --- the compiler-backed rules against a real module ---

// writePerfModule lays out a compilable two-package module: perfmod/hot
// seeds one own-body escape, one non-inlined callee allocation, one
// surviving loop bounds check, and one clean hot function; perfmod/cold
// has no //perf:hotpath marks at all (it must never trigger a compile).
func writePerfModule(t testing.TB, dir string) {
	t.Helper()
	files := map[string]string{
		"go.mod": "module perfmod\n\ngo 1.22\n",
		"hot/hot.go": `// Package hot seeds real escape-analysis and BCE findings.
package hot

// Escapes moves its local to the heap by returning its address.
//
//perf:hotpath fixture: own-body escape
func Escapes(n int) *int {
	x := n + 1
	return &x
}

// alloc allocates; noinline forces the finding to travel through the
// call graph instead of the compiler's inlining re-attribution.
//
//go:noinline
func alloc(n int) []int {
	return make([]int, n)
}

// Calls allocates only through its module-local callee.
//
//perf:hotpath fixture: callee attribution
func Calls(n int) []int {
	return alloc(n)
}

// Lookup keeps a data-dependent bounds check in its loop: the prover
// cannot bound s[i] when i comes from another slice's contents.
//
//perf:hotpath fixture: surviving bounds check
func Lookup(s, idx []int) int {
	t := 0
	for _, i := range idx {
		t += s[i]
	}
	return t
}

// Clean already satisfies the whole contract.
//
//perf:hotpath fixture: clean function stays silent
func Clean(s []int) int {
	t := 0
	for _, v := range s {
		t += v
	}
	return t
}
`,
		"cold/cold.go": `// Package cold has no performance contracts.
package cold

// Sum is ordinary code: allocating here is nobody's business.
func Sum(xs []int) int {
	out := 0
	for _, x := range xs {
		out += x
	}
	return out
}
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// hasDiag reports whether some diagnostic of the rule contains every
// wanted substring.
func hasDiag(diags []Diagnostic, rule string, substrs ...string) bool {
	for _, d := range diags {
		if d.Rule != rule {
			continue
		}
		ok := true
		for _, s := range substrs {
			if !strings.Contains(d.Message, s) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestPerfRulesOnRealModule drives hotpathalloc and hotpathbce against
// code compiled by the real toolchain: the own-body escape, the
// cross-function attribution at the call site, and the loop bounds
// check are each found; the clean hot function stays silent.
func TestPerfRulesOnRealModule(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go build; run without -short")
	}
	dir := t.TempDir()
	writePerfModule(t, dir)
	l := NewLoaderAt(dir, "perfmod")
	pkg, err := l.Load("perfmod/hot")
	if err != nil {
		t.Fatal(err)
	}
	rules, err := SelectRules([]string{"hotpathalloc", "hotpathbce"})
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, rules)

	if !hasDiag(diags, "hotpathalloc", "Escapes allocates", "moved to heap: x") {
		t.Errorf("own-body escape in Escapes not reported; got %v", diags)
	}
	if !hasDiag(diags, "hotpathalloc", "Calls calls alloc, which allocates", "escapes to heap") {
		t.Errorf("callee allocation not attributed to the call site in Calls; got %v", diags)
	}
	if !hasDiag(diags, "hotpathbce", "hot loop in Lookup keeps a bounds check on s[i]") {
		t.Errorf("surviving bounds check in Lookup not reported; got %v", diags)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "Clean") {
			t.Errorf("clean hot function must stay silent: %s", d)
		}
	}
}

// TestPerfDriverCacheNoRecompile proves the compile economics end to
// end: packages without //perf:hotpath marks never invoke the compiler,
// warm driver runs (fresh loader, so no in-process memo carryover)
// replay cached diagnostics with zero compiles, and editing a package
// invalidates — and recompiles — only that package.
func TestPerfDriverCacheNoRecompile(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go build; run without -short")
	}
	dir := t.TempDir()
	cache := t.TempDir()
	writePerfModule(t, dir)
	rules, err := SelectRules([]string{"hotpathalloc", "hotpathbce", "allocinloop"})
	if err != nil {
		t.Fatal(err)
	}
	run := func() (DriverStats, int64, int) {
		before := PerfCompileCount()
		d := &Driver{Loader: NewLoaderAt(dir, "perfmod"), Rules: rules, CacheDir: cache}
		diags, stats, err := d.Run([]string{"./..."})
		if err != nil {
			t.Fatal(err)
		}
		return stats, PerfCompileCount() - before, len(diags)
	}

	cold, coldCompiles, coldDiags := run()
	if cold.Packages != 2 || cold.CacheMisses != 2 {
		t.Fatalf("cold stats = %+v; want both packages analyzed", cold)
	}
	if coldCompiles != 1 {
		t.Fatalf("cold run made %d compiles; want exactly 1 (perfmod/hot — perfmod/cold has no marks)", coldCompiles)
	}
	if coldDiags == 0 {
		t.Fatal("cold run found nothing; the perf module seeds three findings")
	}
	if _, ok := cold.RuleTime["hotpathalloc"]; !ok {
		t.Errorf("cold stats carry no hotpathalloc timing: %+v", cold.RuleTime)
	}

	warm, warmCompiles, warmDiags := run()
	if warm.CacheHits != 2 || warm.CacheMisses != 0 {
		t.Fatalf("warm stats = %+v; want pure replay", warm)
	}
	if warmCompiles != 0 {
		t.Fatalf("warm run invoked the compiler %d times; the cache must make it free", warmCompiles)
	}
	if warmDiags != coldDiags {
		t.Fatalf("warm run replayed %d diagnostics, cold had %d", warmDiags, coldDiags)
	}

	// Editing the markless package re-analyzes it — still without a
	// compile, because nothing in it carries a contract.
	coldPath := filepath.Join(dir, "cold", "cold.go")
	appendFile(t, coldPath, "\n// Twice doubles.\nfunc Twice(x int) int { return 2 * x }\n")
	afterCold, n, _ := run()
	if afterCold.CacheMisses != 1 || afterCold.CacheHits != 1 {
		t.Fatalf("after editing cold: stats = %+v; want exactly it re-analyzed", afterCold)
	}
	if n != 0 {
		t.Fatalf("editing a markless package caused %d compiles; want 0", n)
	}

	// Editing the hot package recompiles exactly it, and the new seeded
	// escape surfaces.
	hotPath := filepath.Join(dir, "hot", "hot.go")
	appendFile(t, hotPath, `
// Extra seeds one more escape for the invalidation test.
//
//perf:hotpath fixture: added by the cache test
func Extra() *int {
	y := 2
	return &y
}
`)
	afterHot, n, afterDiags := run()
	if afterHot.CacheMisses != 1 || afterHot.CacheHits != 1 {
		t.Fatalf("after editing hot: stats = %+v; want exactly it re-analyzed", afterHot)
	}
	if n != 1 {
		t.Fatalf("editing the hot package caused %d compiles; want exactly 1", n)
	}
	if afterDiags != coldDiags+1 {
		t.Fatalf("after adding an escape: %d diagnostics, want %d", afterDiags, coldDiags+1)
	}
}

// appendFile appends src to an existing file.
func appendFile(t testing.TB, path, src string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, []byte(src)...), 0o644); err != nil {
		t.Fatal(err)
	}
}
