package analysis

import (
	"go/ast"
	"go/types"
)

// ruleGoroutineLeak enforces the repo's goroutine-lifecycle contract:
// every `go` statement in non-test code must be cancellable or provably
// bounded, so the engine's fan-out (and everything else that spawns)
// never strands a goroutine past its caller. A spawn is accepted when
// the spawned function shows at least one of:
//
//   - context evidence — the body (or the call's arguments) references a
//     context.Context: it can select on Done, check Err, or pass the
//     deadline on;
//   - join evidence — the body calls Done on a sync.WaitGroup, so a
//     matching Wait bounds it;
//   - drain evidence — the body receives from (or ranges over) a channel
//     that is close()d somewhere in the spawning function (including its
//     other goroutines): the worker-pool shape, bounded by the close;
//   - buffered evidence — every channel operation in the body is a send
//     on a channel created with a buffered make(chan T, n) in the
//     spawning function: the goroutine runs to completion without
//     blocking, the result channel outlives it.
//
// Anything else — a fire-and-forget spawn with unbuffered sends, or a
// body the analysis cannot resolve — is a finding; deliberate
// fire-and-forget sites carry a //lint:ignore goroutineleak with the
// reason.
var ruleGoroutineLeak = &Rule{
	Name: "goroutineleak",
	Doc:  "every go statement is cancellable or provably bounded (ctx/Done, WaitGroup join, closed or buffered channels)",
	Fix:  "thread a ctx and select on Done, join with a WaitGroup, or send results into a buffered channel",
	Run:  runGoroutineLeak,
}

func runGoroutineLeak(p *Pass) {
	for _, f := range p.Pkg.Files {
		// enclosing tracks the innermost function body containing the go
		// statement, for close()/make() evidence lookup.
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			scope := enclosingFuncBody(stack)
			if reason := p.goLeakEvidence(g, scope); reason == "" {
				p.Reportf(g.Pos(),
					"go statement is neither cancellable nor provably bounded: thread a ctx (select on Done), join it with a WaitGroup, or bound it with closed/buffered channels")
			}
			return true
		})
	}
}

// enclosingFuncBody returns the body of the innermost enclosing function
// (decl or literal) on the traversal stack, excluding the node itself.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 2; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// goLeakEvidence classifies a go statement; the returned string names the
// accepting evidence ("" = none, i.e. a finding).
func (p *Pass) goLeakEvidence(g *ast.GoStmt, scope *ast.BlockStmt) string {
	// Argument evidence: a context or WaitGroup handed to the spawned
	// function makes its lifecycle the callee's documented business.
	for _, arg := range g.Call.Args {
		if p.isContextValued(arg) {
			return "ctx-arg"
		}
		if p.isWaitGroupValued(arg) {
			return "wg-arg"
		}
	}
	var body *ast.BlockStmt
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		// A named function or method value: resolve the declaration when
		// it lives in this package; otherwise the spawn is opaque.
		if decl := p.localFuncDecl(g.Call.Fun); decl != nil {
			body = decl.Body
		}
	}
	if body == nil {
		return ""
	}
	if p.bodyUsesContext(body) {
		return "ctx"
	}
	if p.bodyJoinsWaitGroup(body) {
		return "waitgroup"
	}
	return p.channelEvidence(body, scope)
}

// localFuncDecl resolves a called expression to a FuncDecl in the current
// package, when possible.
func (p *Pass) localFuncDecl(fun ast.Expr) *ast.FuncDecl {
	var obj types.Object
	switch e := fun.(type) {
	case *ast.Ident:
		obj = p.Pkg.Info.Uses[e]
	case *ast.SelectorExpr:
		obj = p.Pkg.Info.Uses[e.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name != nil {
				if def, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func); ok && def == fn {
					return fd
				}
			}
		}
	}
	return nil
}

// isContextValued reports whether an expression's static type is
// context.Context.
func (p *Pass) isContextValued(e ast.Expr) bool {
	t := p.Pkg.Info.TypeOf(e)
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isWaitGroupValued reports whether an expression's static type is
// (a pointer to) sync.WaitGroup.
func (p *Pass) isWaitGroupValued(e ast.Expr) bool {
	t := p.Pkg.Info.TypeOf(e)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// bodyUsesContext reports whether the body references any
// context.Context-typed value (Done/Err selects, or passing ctx onward).
func (p *Pass) bodyUsesContext(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok && p.isContextValued(e) {
			found = true
			return false
		}
		return true
	})
	return found
}

// bodyJoinsWaitGroup reports whether the body calls Done on a
// sync.WaitGroup (directly or deferred).
func (p *Pass) bodyJoinsWaitGroup(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		if p.isWaitGroupValued(sel.X) {
			found = true
			return false
		}
		return true
	})
	return found
}

// channelEvidence checks the drain and buffered criteria: returns
// "closed-chan" when the body receives from a channel closed in the
// spawning scope, "buffered-chan" when every channel op in the body is a
// send to a buffered channel made in the spawning scope, "" otherwise.
func (p *Pass) channelEvidence(body, scope *ast.BlockStmt) string {
	closed := p.closedChannels(scope)
	buffered := p.bufferedChannels(scope)

	sawOp := false
	allBufferedSends := true
	drained := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if obj := p.chanObj(n.X); obj != nil {
				sawOp = true
				if closed[obj] {
					drained = true
				} else {
					allBufferedSends = false
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" { // receive
				sawOp = true
				if obj := p.chanObj(n.X); obj != nil && closed[obj] {
					drained = true
				} else {
					allBufferedSends = false
				}
			}
		case *ast.SendStmt:
			sawOp = true
			obj := p.chanObj(n.Chan)
			if obj == nil || !buffered[obj] {
				allBufferedSends = false
			}
		}
		return true
	})
	if drained {
		return "closed-chan"
	}
	if sawOp && allBufferedSends {
		return "buffered-chan"
	}
	return ""
}

// chanObj resolves a channel-valued expression to its variable object.
func (p *Pass) chanObj(e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := p.Pkg.Info.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	if _, ok := v.Type().Underlying().(*types.Chan); !ok {
		return nil
	}
	return v
}

// closedChannels collects the channel variables close()d anywhere in the
// scope (including inside its nested literals — a sibling goroutine
// closing the feed channel still bounds the drain).
func (p *Pass) closedChannels(scope *ast.BlockStmt) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	if scope == nil {
		return out
	}
	ast.Inspect(scope, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "close" {
			return true
		}
		if obj := p.chanObj(call.Args[0]); obj != nil {
			out[obj] = true
		}
		return true
	})
	return out
}

// bufferedChannels collects the channel variables assigned from a
// buffered make(chan T, n) in the scope.
func (p *Pass) bufferedChannels(scope *ast.BlockStmt) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	if scope == nil {
		return out
	}
	ast.Inspect(scope, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, re := range as.Rhs {
			call, ok := re.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "make" {
				continue
			}
			lid, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			var obj *types.Var
			if d, ok := p.Pkg.Info.Defs[lid].(*types.Var); ok {
				obj = d
			} else if u, ok := p.Pkg.Info.Uses[lid].(*types.Var); ok {
				obj = u
			}
			if obj == nil {
				continue
			}
			if _, ok := obj.Type().Underlying().(*types.Chan); ok {
				out[obj] = true
			}
		}
		return true
	})
	return out
}
