package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	// Path is the package's import path within the module.
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Name is the package name from the source.
	Name string
	// Module is the module path from go.mod (the prefix of every local
	// import path).
	Module string

	Fset  *token.FileSet
	Files []*ast.File // non-test files, sorted by file name

	// Types and Info hold the go/types results. Type-checking is
	// best-effort: errors are collected in TypeErrors rather than
	// aborting the load, and Info may be partial for code that does not
	// compile (rules fall back to syntax where type facts are missing).
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error

	// loader points back at the Loader that produced this package, so
	// module-aware rules (lockorder, the perf rules) can reach the
	// syntax of already loaded dependency packages and the module root.
	loader *Loader

	// declOnce/declIdx lazily memoize the *types.Func → declaration
	// index shared by the cross-function rules (see callgraph.go).
	declOnce sync.Once
	declIdx  map[*types.Func]*ast.FuncDecl
}

// Dep returns the already-loaded module-local package at the given import
// path, or nil. Dependencies are always loaded before their importers
// (type-checking forces them), so a package's module imports are always
// resolvable here; nothing is loaded on demand.
func (p *Package) Dep(path string) *Package {
	if p.loader == nil {
		return nil
	}
	if e, ok := p.loader.pkgs[path]; ok && !e.loading && e.err == nil {
		return e.pkg
	}
	return nil
}

// Loader loads module-local packages from source. Standard-library
// imports are type-checked from GOROOT source via go/importer's "source"
// compiler; module-local imports are resolved recursively by the Loader
// itself. Anything else fails to resolve — which is exactly the repo's
// stdlib-only contract (the bannedimport rule reports it syntactically,
// so the failure is also visible as a diagnostic, not only a load error).
type Loader struct {
	// ModuleDir is the module root (the directory holding go.mod).
	ModuleDir string
	// ModulePath is the module path declared in go.mod.
	ModulePath string

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*loadEntry
}

type loadEntry struct {
	pkg     *Package
	err     error
	loading bool
}

// NewLoader builds a loader rooted at moduleDir, reading the module path
// from its go.mod.
func NewLoader(moduleDir string) (*Loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	return NewLoaderAt(abs, modPath), nil
}

// NewLoaderAt builds a loader with an explicit module path — used by
// tests to load fixture trees that are not real modules.
func NewLoaderAt(moduleDir, modulePath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		ModuleDir:  moduleDir,
		ModulePath: modulePath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*loadEntry{},
	}
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			if path := strings.TrimSpace(rest); path != "" {
				return strings.Trim(path, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Load loads (and memoizes) the package at the given import path, which
// must be the module path itself or start with it.
func (l *Loader) Load(path string) (*Package, error) {
	if e, ok := l.pkgs[path]; ok {
		if e.loading {
			return nil, fmt.Errorf("analysis: import cycle through %q", path)
		}
		return e.pkg, e.err
	}
	e := &loadEntry{loading: true}
	l.pkgs[path] = e
	e.pkg, e.err = l.load(path)
	e.loading = false
	return e.pkg, e.err
}

func (l *Loader) load(path string) (*Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	pkg := &Package{Path: path, Dir: dir, Module: l.ModulePath, Fset: l.fset, loader: l}
	// Files parse in parallel: token.FileSet is synchronized, and the
	// slot-per-file layout keeps the package's file order deterministic.
	files := make([]*ast.File, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			files[i], errs[i] = parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
	}
	pkg.Files = files
	pkg.Name = pkg.Files[0].Name.Name
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer:         l,
		FakeImportC:      true,
		IgnoreFuncBodies: false,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	// Check returns a usable (possibly incomplete) package even when
	// TypeErrors is non-empty; the returned error repeats the first one.
	//lint:ignore errcheck Check's error duplicates the first entry already collected in TypeErrors
	pkg.Types, _ = conf.Check(path, l.fset, pkg.Files, pkg.Info)
	return pkg, nil
}

// Import implements types.Importer for the type-checker: module-local
// paths load recursively through the Loader, standard-library paths go to
// the GOROOT source importer, everything else is refused.
func (l *Loader) Import(path string) (*types.Package, error) {
	switch {
	case path == "unsafe":
		return types.Unsafe, nil
	case path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/"):
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	case IsStdImport(path):
		return l.std.Import(path)
	default:
		return nil, fmt.Errorf("analysis: non-stdlib, non-module import %q (see the bannedimport rule)", path)
	}
}

// IsStdImport reports whether an import path names a standard-library
// package: its first segment carries no dot (the convention the go tool
// itself relies on for pre-module paths).
func IsStdImport(path string) bool {
	seg, _, _ := strings.Cut(path, "/")
	return seg != "" && !strings.Contains(seg, ".")
}

// goFilesIn lists the non-test .go files of dir, sorted.
func goFilesIn(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") ||
			strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// ExpandPatterns resolves CLI package patterns into import paths. A
// trailing "/..." walks the directory tree; testdata, vendor, hidden, and
// underscore-prefixed directories are skipped, as are directories with no
// non-test Go files. Plain patterns name a single package directory
// relative to the working directory.
func (l *Loader) ExpandPatterns(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var paths []string
	seen := map[string]bool{}
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Join(l.ModuleDir, filepath.FromSlash(strings.TrimSuffix(rest, "/")))
			err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != root && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				files, err := goFilesIn(p)
				if err != nil {
					return err
				}
				if len(files) > 0 {
					ip, err := l.importPathFor(p)
					if err != nil {
						return err
					}
					add(ip)
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("analysis: %w", err)
			}
			continue
		}
		ip, err := l.importPathFor(filepath.Join(l.ModuleDir, filepath.FromSlash(pat)))
		if err != nil {
			return nil, err
		}
		add(ip)
	}
	sort.Strings(paths)
	return paths, nil
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	rel, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleDir)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// LoadPatterns expands patterns and loads every matched package.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	paths, err := l.ExpandPatterns(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
