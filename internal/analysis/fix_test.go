package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixRules is the fixable subset exercised by the apply tests.
var fixRules = []string{"deferunlock", "exporteddoc"}

// copyFixture copies testdata/src/<name> into a fresh temp tree and
// returns the tree root (a writable stand-in for the fixtures module).
func copyFixture(t *testing.T, name string) string {
	t.Helper()
	root := t.TempDir()
	srcDir := filepath.Join("testdata", "src", name)
	dstDir := filepath.Join(root, name)
	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(srcDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dstDir, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func lintFixable(t *testing.T, root string) []Diagnostic {
	t.Helper()
	l := NewLoaderAt(root, "fixtures")
	pkg, err := l.Load("fixtures/fixable")
	if err != nil {
		t.Fatal(err)
	}
	rules, err := SelectRules(fixRules)
	if err != nil {
		t.Fatal(err)
	}
	return Run([]*Package{pkg}, rules)
}

// TestApplyFixesResolvesAndIsIdempotent: every finding in the fixable
// fixture carries a fix; applying them leaves a gofmt-clean tree with
// zero findings, and a second -fix pass changes nothing.
func TestApplyFixesResolvesAndIsIdempotent(t *testing.T) {
	root := copyFixture(t, "fixable")
	diags := lintFixable(t, root)
	if len(diags) == 0 {
		t.Fatal("fixable fixture should produce findings")
	}
	for _, d := range diags {
		if d.Fix == nil {
			t.Errorf("%s: expected a suggested fix", d)
		}
	}
	res, err := ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != len(diags) || res.Skipped != 0 {
		t.Fatalf("applied %d, skipped %d; want %d applied, 0 skipped", res.Applied, res.Skipped, len(diags))
	}

	// The fixes resolve their diagnostics: a re-lint of the rewritten
	// tree is clean, so the second -fix run is a no-op by construction.
	after := lintFixable(t, root)
	for _, d := range after {
		t.Errorf("diagnostic survived its fix: %s", d)
	}
	res2, err := ApplyFixes(after)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Applied != 0 {
		t.Fatalf("second apply changed %d fixes; -fix must be idempotent", res2.Applied)
	}

	// Spot-check the two fix shapes: the inline unlock became a defer,
	// and the exported surface gained stub docs.
	data, err := os.ReadFile(filepath.Join(root, "fixable", "a.go"))
	if err != nil {
		t.Fatal(err)
	}
	src := string(data)
	for _, want := range []string{
		"defer c.mu.Unlock()",
		"// Package fixable TODO: document.",
		"// Exported TODO: document.",
		"// Counter TODO: document.",
		"// Add TODO: document.",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("fixed source missing %q:\n%s", want, src)
		}
	}
	if strings.Contains(strings.ReplaceAll(src, "defer c.mu.Unlock()", ""), "c.mu.Unlock()") {
		t.Errorf("inline unlock should be gone after the defer conversion:\n%s", src)
	}
}

// TestApplyFixesRejectsOverlap: two fixes editing the same bytes apply
// first-come; the loser is skipped whole, not half-applied.
func TestApplyFixesRejectsOverlap(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.go")
	if err := os.WriteFile(path, []byte("package f\n\nvar x = 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	mk := func(start, end int, text string) Diagnostic {
		return Diagnostic{
			File: path, Rule: "test",
			Fix: &Fix{Message: "edit", Edits: []Edit{{File: path, Start: start, End: end, New: text}}},
		}
	}
	// Both rewrite the "1" literal (offset 19): only the first lands.
	diags := []Diagnostic{mk(19, 20, "2"), mk(19, 20, "3")}
	res, err := ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 || res.Skipped != 1 {
		t.Fatalf("applied %d, skipped %d; want 1 and 1", res.Applied, res.Skipped)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := "package f\n\nvar x = 2\n"; string(data) != want {
		t.Fatalf("got %q, want %q", data, want)
	}
}

// TestApplyFixesRefusesUnparsableResult: a fix that would corrupt the
// file errors out and leaves the original bytes untouched.
func TestApplyFixesRefusesUnparsableResult(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.go")
	orig := "package f\n\nvar x = 1\n"
	if err := os.WriteFile(path, []byte(orig), 0o644); err != nil {
		t.Fatal(err)
	}
	diags := []Diagnostic{{
		File: path, Rule: "test",
		Fix: &Fix{Message: "break it", Edits: []Edit{{File: path, Start: 0, End: 9, New: "pack!!"}}},
	}}
	if _, err := ApplyFixes(diags); err == nil {
		t.Fatal("ApplyFixes must refuse an edit producing unparsable source")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != orig {
		t.Fatalf("file must be untouched after a refused fix, got %q", data)
	}
}
