package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// --- golden fixtures, one per rule ---

func TestDetMapRangeGolden(t *testing.T) {
	diags, pkg := fixturePkg(t, "fixtures/detmaprange", "detmaprange")
	goldenCheck(t, pkg, diags)
}

func TestDetWallclockGolden(t *testing.T) {
	diags, pkg := fixturePkg(t, "fixtures/detwallclock", "detwallclock")
	goldenCheck(t, pkg, diags)
}

func TestDetUnorderedGolden(t *testing.T) {
	diags, pkg := fixturePkg(t, "fixtures/detunordered", "detunordered")
	goldenCheck(t, pkg, diags)
}

// --- directive validation ---

// TestDetDirectiveValidation: unknown verbs, reasonless marks, and
// directives not attached to a function doc are diagnosed with a delete
// fix; well-formed marks on clean functions stay silent — a standing
// contract is not a stale suppression.
func TestDetDirectiveValidation(t *testing.T) {
	// Any selected rule will do: directive validation always runs.
	diags, _ := fixturePkg(t, "fixtures/detdirective", "detmaprange")
	const file = "detdirective.go"
	for name, marker := range map[string]string{
		"unknown verb":  "MARK:unknown-verb",
		"inside a body": "MARK:inside-body",
		"free-floating": "MARK:free-floating",
	} {
		line := perfMarkLine(t, "detdirective", file, marker)
		if !diagAt(diags, file, line, DirectiveRule) {
			t.Errorf("%s (%s:%d): malformed directive not diagnosed; got %v", name, file, line, diags)
		}
	}
	// The reasonless directive is the line that is exactly
	// "//det:replayed" (any trailing text would become its reason).
	data, err := os.ReadFile(filepath.Join("testdata", "src", "detdirective", file))
	if err != nil {
		t.Fatal(err)
	}
	reasonless := 0
	for i, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "//det:replayed" {
			reasonless = i + 1
			break
		}
	}
	if reasonless == 0 {
		t.Fatal("fixture lost its bare //det:replayed line")
	}
	if !diagAt(diags, file, reasonless, DirectiveRule) {
		t.Errorf("missing reason (%s:%d): reasonless directive not diagnosed; got %v", file, reasonless, diags)
	}
	for _, d := range diags {
		if d.Rule == DirectiveRule && (d.Fix == nil || len(d.Fix.Edits) == 0) {
			t.Errorf("%s: malformed det directive should carry a delete fix", d)
		}
		if d.Rule != DirectiveRule {
			t.Errorf("unexpected non-directive diagnostic: %s", d)
		}
	}
	// Exactly the four malformed directives fire — in particular the
	// well-formed mark on the clean function Restore produces nothing.
	if n := len(diags); n != 4 {
		t.Errorf("want 4 directive diagnostics, got %d: %v", n, diags)
	}
}

// --- the sort-before-encode autofix ---

func lintDetFixable(t *testing.T, root string) []Diagnostic {
	t.Helper()
	l := NewLoaderAt(root, "fixtures")
	pkg, err := l.Load("fixtures/detfixable")
	if err != nil {
		t.Fatal(err)
	}
	rules, err := SelectRules([]string{"detmaprange"})
	if err != nil {
		t.Fatal(err)
	}
	return Run([]*Package{pkg}, rules)
}

// TestDetSortFixApply: the detmaprange sort-before-encode autofix
// inserts the canonical sort above the sink (splicing "sort" into the
// import group), the rewritten tree re-lints clean, and a second apply
// is a no-op.
func TestDetSortFixApply(t *testing.T) {
	root := copyFixture(t, "detfixable")
	diags := lintDetFixable(t, root)
	if len(diags) != 1 {
		t.Fatalf("detfixable fixture should produce exactly 1 finding, got %v", diags)
	}
	if diags[0].Fix == nil || len(diags[0].Fix.Edits) == 0 {
		t.Fatalf("%s: expected a sort-before-encode fix", diags[0])
	}
	res, err := ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 || res.Skipped != 0 {
		t.Fatalf("applied %d, skipped %d; want 1 applied, 0 skipped", res.Applied, res.Skipped)
	}

	after := lintDetFixable(t, root)
	for _, d := range after {
		t.Errorf("diagnostic survived its fix: %s", d)
	}
	res2, err := ApplyFixes(after)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Applied != 0 {
		t.Fatalf("second apply changed %d fixes; -fix must be idempotent", res2.Applied)
	}

	data, err := os.ReadFile(filepath.Join(root, "detfixable", "detfixable.go"))
	if err != nil {
		t.Fatal(err)
	}
	src := string(data)
	if !strings.Contains(src, "\"sort\"") {
		t.Errorf("fix should splice the sort import into the group:\n%s", src)
	}
	idx := strings.Index(src, "sort.Strings(keys)")
	sink := strings.Index(src, "enc.Encode(keys)")
	if idx < 0 || sink < 0 || idx > sink {
		t.Errorf("fix should insert sort.Strings(keys) before the Encode call:\n%s", src)
	}
}

// --- replayed marks and det rules over the real tree ---

// TestDetRulesOnRealTree: the three det rules over the repo's own
// packages are clean — the replay surface (//det:replayed marks on WAL
// replay, snapshot/checkpoint codecs, engine Restore, trainLoop) holds
// its contract. This is the acceptance gate the CI det stage re-runs.
func TestDetRulesOnRealTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and analyzes the whole module")
	}
	l, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := SelectRules([]string{"detmaprange", "detwallclock", "detunordered"})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(pkgs, rules) {
		t.Errorf("det finding on the real tree: %s", d)
	}
}
