package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// fixturePkg loads one fixture package from testdata/src (module path
// "fixtures") and runs the named rules over it.
func fixturePkg(t *testing.T, pkgPath string, ruleNames ...string) ([]Diagnostic, *Package) {
	t.Helper()
	dir, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoaderAt(dir, "fixtures")
	pkg, err := l.Load(pkgPath)
	if err != nil {
		t.Fatalf("load %s: %v", pkgPath, err)
	}
	rules, err := SelectRules(ruleNames)
	if err != nil {
		t.Fatal(err)
	}
	return Run([]*Package{pkg}, rules), pkg
}

var wantRe = regexp.MustCompile(`// want:([a-z]+(?:,[a-z]+)*)`)

// goldenCheck compares the diagnostics produced for a fixture package
// against the "// want:<rule>" annotations in its source files: every
// annotated line must produce exactly the annotated rules, and no
// unannotated diagnostic may appear (which is also what proves the
// fixtures' //lint:ignore suppressions work — suppressed seeded
// violations carry no want annotation).
func goldenCheck(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	want := map[string][]string{} // "base.go:line" -> rules
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := filepath.Base(name) + ":" + strconv.Itoa(i+1)
			want[key] = append(want[key], strings.Split(m[1], ",")...)
		}
	}
	got := map[string][]string{}
	for _, d := range diags {
		key := filepath.Base(d.File) + ":" + strconv.Itoa(d.Line)
		got[key] = append(got[key], d.Rule)
	}
	for key, rules := range want {
		sort.Strings(rules)
		g := got[key]
		sort.Strings(g)
		if strings.Join(rules, ",") != strings.Join(g, ",") {
			t.Errorf("%s: want rules %v, got %v", key, rules, g)
		}
	}
	for key, rules := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("%s: unexpected diagnostics %v", key, rules)
		}
	}
}

func TestNoGlobalRandGolden(t *testing.T) {
	diags, pkg := fixturePkg(t, "fixtures/noglobalrand", "noglobalrand")
	goldenCheck(t, pkg, diags)
}

func TestFloatCompareGolden(t *testing.T) {
	diags, pkg := fixturePkg(t, "fixtures/floatcompare", "floatcompare")
	goldenCheck(t, pkg, diags)
}

func TestBannedImportGolden(t *testing.T) {
	diags, pkg := fixturePkg(t, "fixtures/bannedimport", "bannedimport")
	goldenCheck(t, pkg, diags)
}

func TestPanicAttribGolden(t *testing.T) {
	diags, pkg := fixturePkg(t, "fixtures/internal/panicattrib", "panicattrib")
	goldenCheck(t, pkg, diags)
}

func TestDeferUnlockGolden(t *testing.T) {
	diags, pkg := fixturePkg(t, "fixtures/deferunlock", "deferunlock")
	goldenCheck(t, pkg, diags)
}

func TestExportedDocGolden(t *testing.T) {
	diags, pkg := fixturePkg(t, "fixtures/exporteddoc", "exporteddoc")
	goldenCheck(t, pkg, diags)
}

func TestCtxFirstGolden(t *testing.T) {
	diags, pkg := fixturePkg(t, "fixtures/ctxfirst", "ctxfirst")
	goldenCheck(t, pkg, diags)
}

func TestErrcheckGolden(t *testing.T) {
	diags, pkg := fixturePkg(t, "fixtures/errcheck", "errcheck")
	goldenCheck(t, pkg, diags)
}

func TestLockOrderGolden(t *testing.T) {
	diags, pkg := fixturePkg(t, "fixtures/lockorder", "lockorder")
	goldenCheck(t, pkg, diags)
}

func TestGoroutineLeakGolden(t *testing.T) {
	diags, pkg := fixturePkg(t, "fixtures/goroutineleak", "goroutineleak")
	goldenCheck(t, pkg, diags)
}

// TestStaleSuppressionGolden: a well-formed directive that suppresses
// nothing is diagnosed under the directive pseudo-rule, with a fix
// deleting it; live directives stay silent.
func TestStaleSuppressionGolden(t *testing.T) {
	diags, pkg := fixturePkg(t, "fixtures/stale", "floatcompare")
	goldenCheck(t, pkg, diags)
	for _, d := range diags {
		if d.Rule != DirectiveRule {
			continue
		}
		if d.Fix == nil || len(d.Fix.Edits) == 0 {
			t.Errorf("%s: stale-suppression diagnostic should carry a delete fix", d)
		}
	}
}

// TestStaleSuppressionScopedToSelectedRules: a -rules filter must not
// condemn directives for rules it never ran.
func TestStaleSuppressionScopedToSelectedRules(t *testing.T) {
	diags, _ := fixturePkg(t, "fixtures/stale", "deferunlock")
	for _, d := range diags {
		t.Errorf("unexpected diagnostic with floatcompare unselected: %s", d)
	}
}

// --- suppression machinery ---

// markLine returns the 1-based line of the first occurrence of marker in
// the named fixture file.
func markLine(t *testing.T, file, marker string) int {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "src", "suppress", file))
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, marker) {
			return i + 1
		}
	}
	t.Fatalf("marker %q not found in %s", marker, file)
	return 0
}

// diagAt reports whether a diagnostic of the given rule exists at
// (file base name, line).
func diagAt(diags []Diagnostic, file string, line int, rule string) bool {
	for _, d := range diags {
		if filepath.Base(d.File) == file && d.Line == line && d.Rule == rule {
			return true
		}
	}
	return false
}

func suppressDiags(t *testing.T) []Diagnostic {
	t.Helper()
	diags, _ := fixturePkg(t, "fixtures/suppress", "floatcompare")
	return diags
}

// TestSuppressLineScope: a //lint:ignore covers its own line and the next
// line, and nothing further.
func TestSuppressLineScope(t *testing.T) {
	diags := suppressDiags(t)
	// The comparison directly under the directive is suppressed: no
	// diagnostic between the directive line and the MARK line.
	after := markLine(t, "line.go", "MARK:line-after-gap")
	for line := 1; line < after; line++ {
		if diagAt(diags, "line.go", line, "floatcompare") {
			t.Errorf("line.go:%d: float comparison under the directive should be suppressed", line)
		}
	}
	// The comparison two lines further down is out of scope and fires.
	if !diagAt(diags, "line.go", after, "floatcompare") {
		t.Errorf("line.go:%d: comparison beyond the directive's one-line scope must fire", after)
	}
	// A trailing directive suppresses its own line.
	trail := markLine(t, "line.go", "a trailing directive covers its own line")
	if diagAt(diags, "line.go", trail, "floatcompare") {
		t.Errorf("line.go:%d: trailing directive should suppress its own line", trail)
	}
}

// TestSuppressWrongRuleName: naming the wrong rule (known or unknown)
// does not suppress, and an unknown name is itself diagnosed.
func TestSuppressWrongRuleName(t *testing.T) {
	diags := suppressDiags(t)
	known := markLine(t, "wrongrule.go", "MARK:wrong-known-rule")
	if !diagAt(diags, "wrongrule.go", known, "floatcompare") {
		t.Errorf("wrongrule.go:%d: suppression naming a different rule must not suppress floatcompare", known)
	}
	unknown := markLine(t, "wrongrule.go", "MARK:unknown-rule")
	if !diagAt(diags, "wrongrule.go", unknown, "floatcompare") {
		t.Errorf("wrongrule.go:%d: suppression naming an unknown rule must not suppress floatcompare", unknown)
	}
	directive := markLine(t, "wrongrule.go", "MARK:bad-directive")
	if !diagAt(diags, "wrongrule.go", directive, DirectiveRule) {
		t.Errorf("wrongrule.go:%d: unknown rule name in a directive must be diagnosed", directive)
	}
}

// TestSuppressMissingReason: a directive without a written reason is
// malformed — it is diagnosed and does not suppress.
func TestSuppressMissingReason(t *testing.T) {
	diags := suppressDiags(t)
	line := markLine(t, "noreason.go", "MARK:no-reason")
	if !diagAt(diags, "noreason.go", line, "floatcompare") {
		t.Errorf("noreason.go:%d: reasonless directive must not suppress", line)
	}
	if !diagAt(diags, "noreason.go", line-1, DirectiveRule) {
		t.Errorf("noreason.go:%d: reasonless directive must be diagnosed", line-1)
	}
}

// TestSuppressFileScope: //lint:file-ignore covers every finding of the
// rule in the file, regardless of distance from the directive.
func TestSuppressFileScope(t *testing.T) {
	diags := suppressDiags(t)
	for _, marker := range []string{"MARK:filewide-one", "MARK:filewide-two"} {
		line := markLine(t, "filewide.go", marker)
		if diagAt(diags, "filewide.go", line, "floatcompare") {
			t.Errorf("filewide.go:%d: file-wide suppression must cover this finding", line)
		}
	}
	for _, d := range diags {
		if filepath.Base(d.File) == "filewide.go" {
			t.Errorf("filewide.go: unexpected diagnostic %v", d)
		}
	}
}

// --- framework plumbing ---

func TestSelectRulesUnknown(t *testing.T) {
	if _, err := SelectRules([]string{"nosuchrule"}); err == nil {
		t.Fatal("SelectRules must reject unknown rule names")
	}
	rules, err := SelectRules(nil)
	if err != nil || len(rules) < 6 {
		t.Fatalf("SelectRules(nil) = %d rules, err %v; want the full suite", len(rules), err)
	}
}

func TestExpandPatternsSkipsTestdata(t *testing.T) {
	l, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.ExpandPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		if strings.Contains(p, "testdata") {
			t.Errorf("pattern expansion must skip testdata, got %s", p)
		}
	}
	found := false
	for _, p := range paths {
		if p == "traj2hash/internal/engine" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected traj2hash/internal/engine in %v", paths)
	}
}

// TestRepoIsLintClean gates the whole tree: every contract the rule suite
// encodes holds (or is explicitly suppressed with a reason) in the
// repository itself. This is the same check scripts/ci.sh runs via
// cmd/trajlint.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree type-check is slow; run without -short")
	}
	l, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, Rules())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
