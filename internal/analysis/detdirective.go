package analysis

// The //det:replayed directive: a function-level determinism contract.
//
//	//det:replayed <reason>
//
// placed in a function's doc comment marks the function as part of the
// replay surface — code whose behavior must be a pure function of its
// explicit inputs (the WAL, a snapshot, a checkpoint, a seed), because
// the system re-executes it during recovery or resume and compares the
// outcome byte-for-byte. The three det rules — detmaprange,
// detwallclock, detunordered — read these marks: inside a replayed
// function, nondeterminism sources (map iteration order reaching a
// return, wall-clock/ambient reads anywhere in the transitive body,
// goroutine-completion-order values) are findings even without a
// serialization sink, because the function's outcome IS the sink.
//
// The directive is validated exactly like //perf:hotpath in
// perfdirective.go: a reason is mandatory, the directive must be
// attached to a function declaration's doc comment, and anything else
// (reasonless, misplaced, unknown //det: verb) is a diagnostic under
// the "directive" pseudo-rule carrying a mechanical delete fix.
//
// A well-formed directive on a function that currently produces no
// findings is NOT stale: the mark is a standing contract (the clean
// state is the goal), unlike a //lint:ignore which exists only to
// excuse a live finding.

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"strings"
)

const detPrefix = "det:"
const detReplayed = "det:replayed"

// detFunc is one function carrying a well-formed //det:replayed
// directive.
type detFunc struct {
	decl   *ast.FuncDecl
	reason string
	pos    token.Pos // position of the directive comment
}

// detFuncs returns the package's well-formed replayed marks in file
// order. Malformed directives are excluded here (collectDetDirectives
// reports them); a function with only a malformed mark is not part of
// the replay surface.
func detFuncs(pkg *Package) []detFunc {
	var out []detFunc
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				text, ok := detDirectiveText(c.Text)
				if !ok || !isReplayedDirective(text) {
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(text, detReplayed))
				if reason == "" {
					continue // reported by collectDetDirectives
				}
				out = append(out, detFunc{decl: fd, reason: reason, pos: c.Pos()})
				break
			}
		}
	}
	return out
}

// collectDetDirectives validates every //det: comment in the package: a
// directive with an unknown verb, without a reason, or not attached to
// a function declaration's doc comment is a "directive" diagnostic with
// a fix that deletes it (whole line when it stands alone), mirroring
// collectPerfDirectives.
func collectDetDirectives(pkg *Package) []Diagnostic {
	attached := map[*ast.Comment]*ast.FuncDecl{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Doc != nil {
				for _, c := range fd.Doc.List {
					attached[c] = fd
				}
			}
		}
	}
	var diags []Diagnostic
	report := func(c *ast.Comment, format string, args ...any) {
		pos := pkg.Fset.Position(c.Pos())
		var fix *Fix
		if src, err := os.ReadFile(pos.Filename); err == nil {
			edit := lineEditIn(pkg.Fset, c.Pos(), src)
			start := pos.Offset
			if strings.TrimSpace(string(src[edit.Start:start])) != "" {
				edit = Edit{File: pos.Filename, Start: start, End: pkg.Fset.Position(c.End()).Offset}
			}
			fix = &Fix{Message: "delete the malformed det directive", Edits: []Edit{edit}}
		}
		diags = append(diags, Diagnostic{
			Pos: pos, File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Rule: DirectiveRule, Fix: fix,
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := detDirectiveText(c.Text)
				if !ok {
					continue
				}
				if !isReplayedDirective(text) {
					report(c, "unknown //det: directive %q (want //det:replayed <reason>); delete it", text)
					continue
				}
				if _, ok := attached[c]; !ok {
					report(c, "//det:replayed directive is not a function's doc comment — the contract is function-level; move it onto the replayed function or delete it")
					continue
				}
				if strings.TrimSpace(strings.TrimPrefix(text, detReplayed)) == "" {
					report(c, "//det:replayed needs a written reason: //det:replayed <why replay must reproduce this function exactly>")
					continue
				}
			}
		}
	}
	return diags
}

// isReplayedDirective reports whether a //det: payload is the replayed
// verb — exactly "det:replayed", optionally followed by whitespace and
// a reason ("det:replayedfoo" is an unknown verb, not a reason).
func isReplayedDirective(text string) bool {
	if !strings.HasPrefix(text, detReplayed) {
		return false
	}
	rest := text[len(detReplayed):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}

// detDirectiveText extracts the "det:..." payload from a comment, if
// any (same normalization as directiveText for //lint:).
func detDirectiveText(comment string) (string, bool) {
	var body string
	switch {
	case strings.HasPrefix(comment, "//"):
		body = comment[2:]
	case strings.HasPrefix(comment, "/*"):
		body = strings.TrimSuffix(comment[2:], "*/")
	}
	body = strings.TrimSpace(body)
	if strings.HasPrefix(body, detPrefix) {
		return body, true
	}
	return "", false
}
