package nn

import (
	"fmt"
	"math"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and clears the gradients.
	Step()
	// ZeroGrad clears all parameter gradients without updating.
	ZeroGrad()
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	Params   []*Tensor
	LR       float64
	Momentum float64
	velocity [][]float64
}

// NewSGD returns an SGD optimizer over the parameters.
func NewSGD(params []*Tensor, lr, momentum float64) *SGD {
	s := &SGD{Params: params, LR: lr, Momentum: momentum}
	//lint:ignore floatcompare momentum is a user-set hyper-parameter; exactly 0 is the documented "plain SGD, no velocity buffers" switch
	if momentum != 0 {
		s.velocity = make([][]float64, len(params))
		for i, p := range params {
			s.velocity[i] = make([]float64, len(p.Data))
		}
	}
	return s
}

// Step implements Optimizer.
func (s *SGD) Step() {
	for i, p := range s.Params {
		if p.Grad == nil {
			continue
		}
		if s.velocity != nil {
			v := s.velocity[i]
			for j := range p.Data {
				v[j] = s.Momentum*v[j] + p.Grad[j]
				p.Data[j] -= s.LR * v[j]
			}
		} else {
			for j := range p.Data {
				p.Data[j] -= s.LR * p.Grad[j]
			}
		}
		p.ZeroGrad()
	}
}

// ZeroGrad implements Optimizer.
func (s *SGD) ZeroGrad() { zeroAll(s.Params) }

// Adam is the Adam optimizer [Kingma & Ba], the paper's choice (Section
// IV-F: "employ the Adam optimizer for the update of parameters").
type Adam struct {
	Params []*Tensor
	LR     float64
	Beta1  float64
	Beta2  float64
	Eps    float64

	t int
	m [][]float64
	v [][]float64
}

// NewAdam returns Adam with the conventional β1=0.9, β2=0.999, ε=1e-8.
func NewAdam(params []*Tensor, lr float64) *Adam {
	a := &Adam{Params: params, LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, len(p.Data))
		a.v[i] = make([]float64, len(p.Data))
	}
	return a
}

// Step implements Optimizer.
func (a *Adam) Step() {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.Params {
		if p.Grad == nil {
			continue
		}
		m, v := a.m[i], a.v[i]
		for j := range p.Data {
			g := p.Grad[j]
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			mh := m[j] / c1
			vh := v[j] / c2
			p.Data[j] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
		p.ZeroGrad()
	}
}

// ZeroGrad implements Optimizer.
func (a *Adam) ZeroGrad() { zeroAll(a.Params) }

// State returns the optimizer's step counter and first/second moment
// estimates as deep copies, in Params order — the optimizer half of a
// training checkpoint (core.Checkpoint). Restoring it with SetState
// resumes the exact bias-correction schedule and per-weight adaptivity
// an uninterrupted run would have had.
func (a *Adam) State() (t int, m, v [][]float64) {
	m = make([][]float64, len(a.m))
	v = make([][]float64, len(a.v))
	for i := range a.m {
		m[i] = append([]float64(nil), a.m[i]...)
		v[i] = append([]float64(nil), a.v[i]...)
	}
	return a.t, m, v
}

// SetState restores a step counter and moment estimates captured by
// State. The moment slices must match the optimizer's parameters in
// count and length; the data is copied in, so the caller keeps ownership.
func (a *Adam) SetState(t int, m, v [][]float64) error {
	if len(m) != len(a.Params) || len(v) != len(a.Params) {
		return fmt.Errorf("nn: adam state has %d/%d moment vectors, optimizer has %d params",
			len(m), len(v), len(a.Params))
	}
	for i, p := range a.Params {
		if len(m[i]) != len(p.Data) || len(v[i]) != len(p.Data) {
			return fmt.Errorf("nn: adam state param %d has %d/%d moments, want %d",
				i, len(m[i]), len(v[i]), len(p.Data))
		}
	}
	a.t = t
	for i := range m {
		copy(a.m[i], m[i])
		copy(a.v[i], v[i])
	}
	return nil
}

func zeroAll(params []*Tensor) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// ClipGradNorm rescales all gradients so their global L2 norm does not
// exceed maxNorm; returns the pre-clip norm. Guards RNN training against
// exploding gradients.
func ClipGradNorm(params []*Tensor, maxNorm float64) float64 {
	var total float64
	for _, p := range params {
		for _, g := range p.Grad {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			for j := range p.Grad {
				p.Grad[j] *= scale
			}
		}
	}
	return norm
}
