package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// MultiHeadAttention is the self-attention of Equation 12 with the
// multi-head strategy of [46]: projections W_q, W_k, W_v (d×d), per-head
// scaled dot-product attention, concatenation, and an output projection.
type MultiHeadAttention struct {
	Wq, Wk, Wv, Wo *Linear
	Heads          int
	dim            int
}

// NewMultiHeadAttention returns an attention layer over d-dimensional
// inputs with the given number of heads; d must be divisible by heads.
func NewMultiHeadAttention(d, heads int, rng *rand.Rand) *MultiHeadAttention {
	if d%heads != 0 {
		panic(fmt.Sprintf("nn: dim %d not divisible by %d heads", d, heads))
	}
	return &MultiHeadAttention{
		Wq:    NewLinear(d, d, rng),
		Wk:    NewLinear(d, d, rng),
		Wv:    NewLinear(d, d, rng),
		Wo:    NewLinear(d, d, rng),
		Heads: heads,
		dim:   d,
	}
}

// Forward applies self-attention to x (n×d), returning n×d.
func (a *MultiHeadAttention) Forward(x *Tensor) *Tensor {
	q := a.Wq.Forward(x)
	k := a.Wk.Forward(x)
	v := a.Wv.Forward(x)
	dk := a.dim / a.Heads
	scale := 1 / math.Sqrt(float64(dk))
	heads := make([]*Tensor, a.Heads)
	for h := 0; h < a.Heads; h++ {
		lo, hi := h*dk, (h+1)*dk
		qh := SliceCols(q, lo, hi)
		kh := SliceCols(k, lo, hi)
		vh := SliceCols(v, lo, hi)
		scores := Scale(MatMul(qh, Transpose(kh)), scale)
		w := SoftmaxRows(scores)
		heads[h] = MatMul(w, vh)
	}
	return a.Wo.Forward(ConcatCols(heads...))
}

// Params implements Module.
func (a *MultiHeadAttention) Params() []*Tensor {
	return CollectParams(a.Wq, a.Wk, a.Wv, a.Wo)
}

// EncoderBlock is one Attention-MLP block with residual connections
// (Equations 11–12): x ← x + Attn(x); x ← x + MLP(x). An optional LayerNorm
// after each residual stabilizes deeper stacks (pre-norm is unnecessary at
// m=2 but the paper's Transformer baseline conventionally uses norms).
type EncoderBlock struct {
	Attn *MultiHeadAttention
	FF   *MLP
	LN1  *LayerNorm // nil disables normalization
	LN2  *LayerNorm
}

// NewEncoderBlock builds one block over d-dim inputs with the given head
// count and a two-layer feed-forward of hidden size ffHidden. useNorm adds
// LayerNorm after each residual.
func NewEncoderBlock(d, heads, ffHidden int, useNorm bool, rng *rand.Rand) *EncoderBlock {
	b := &EncoderBlock{
		Attn: NewMultiHeadAttention(d, heads, rng),
		FF:   NewMLP(rng, d, ffHidden, d),
	}
	if useNorm {
		b.LN1 = NewLayerNorm(d)
		b.LN2 = NewLayerNorm(d)
	}
	return b
}

// Forward applies the block to x (n×d).
func (b *EncoderBlock) Forward(x *Tensor) *Tensor {
	h := Add(x, b.Attn.Forward(x))
	if b.LN1 != nil {
		h = b.LN1.Forward(h)
	}
	h = Add(h, b.FF.Forward(h))
	if b.LN2 != nil {
		h = b.LN2.Forward(h)
	}
	return h
}

// Params implements Module.
func (b *EncoderBlock) Params() []*Tensor {
	out := CollectParams(b.Attn, b.FF)
	if b.LN1 != nil {
		out = append(out, b.LN1.Params()...)
	}
	if b.LN2 != nil {
		out = append(out, b.LN2.Params()...)
	}
	return out
}
