package nn

import (
	"math"
	"math/rand"
)

// Embedding is a trainable lookup table mapping integer ids to d-dim rows.
type Embedding struct {
	Table *Tensor // vocab×d
}

// NewEmbedding returns an embedding table initialized N(0, 0.1²).
func NewEmbedding(vocab, d int, rng *rand.Rand) *Embedding {
	t := Randn(vocab, d, 0.1, rng)
	t.requiresGrad = true
	return &Embedding{Table: t}
}

// Forward looks up the ids, returning len(ids)×d.
func (e *Embedding) Forward(ids []int) *Tensor { return Gather(e.Table, ids) }

// Freeze stops gradient updates to the table — used after the NCE
// pre-training of the grid embeddings (Section IV-C: "the grid embeddings
// are frozen ... since the spatial information may be poisoned after
// updating").
func (e *Embedding) Freeze() { e.Table.SetRequiresGrad(false) }

// Params implements Module; a frozen table contributes nothing.
func (e *Embedding) Params() []*Tensor {
	if !e.Table.RequiresGrad() {
		return nil
	}
	return []*Tensor{e.Table}
}

// PositionalEncoding precomputes the sinusoidal position embeddings of
// Equation 8:
//
//	s_i(2k)   = sin(i / 10000^{2k/d})
//	s_i(2k+1) = cos(i / 10000^{2k/d})
type PositionalEncoding struct {
	table *Tensor // maxLen×d, constant (no gradient)
	d     int
}

// NewPositionalEncoding precomputes encodings for positions [0, maxLen).
func NewPositionalEncoding(maxLen, d int) *PositionalEncoding {
	t := New(maxLen, d)
	for i := 0; i < maxLen; i++ {
		for k := 0; 2*k < d; k++ {
			freq := math.Pow(10000, float64(2*k)/float64(d))
			t.Set(i, 2*k, math.Sin(float64(i)/freq))
			if 2*k+1 < d {
				t.Set(i, 2*k+1, math.Cos(float64(i)/freq))
			}
		}
	}
	return &PositionalEncoding{table: t, d: d}
}

// Add returns x + s for the first x.Rows positions. Positions beyond the
// precomputed horizon wrap around, which keeps very long inputs working
// (they are rare: trajectories are resampled/truncated upstream).
func (p *PositionalEncoding) Add(x *Tensor) *Tensor {
	n := x.Rows
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i % p.table.Rows
	}
	return Add(x, Gather(p.table, idx))
}

// Slice returns the raw encodings for positions [0, n) as an n×d constant
// tensor.
func (p *PositionalEncoding) Slice(n int) *Tensor {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i % p.table.Rows
	}
	return Gather(p.table, idx)
}
