package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestLinearShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(4, 7, rng)
	out := l.Forward(New(3, 4))
	if out.Rows != 3 || out.Cols != 7 {
		t.Errorf("shape = %dx%d", out.Rows, out.Cols)
	}
	if len(l.Params()) != 2 {
		t.Errorf("params = %d", len(l.Params()))
	}
}

func TestMLPDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP(rng, 4, 8, 8, 2)
	if len(m.Layers) != 3 {
		t.Fatalf("layers = %d", len(m.Layers))
	}
	out := m.Forward(New(5, 4))
	if out.Rows != 5 || out.Cols != 2 {
		t.Errorf("shape = %dx%d", out.Rows, out.Cols)
	}
}

func TestLayerNormStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ln := NewLayerNorm(16)
	x := Randn(4, 16, 3, rng)
	out := ln.Forward(x)
	for i := 0; i < out.Rows; i++ {
		var mean, varr float64
		for j := 0; j < out.Cols; j++ {
			mean += out.At(i, j)
		}
		mean /= float64(out.Cols)
		for j := 0; j < out.Cols; j++ {
			d := out.At(i, j) - mean
			varr += d * d
		}
		varr /= float64(out.Cols)
		if math.Abs(mean) > 1e-9 || math.Abs(varr-1) > 1e-3 {
			t.Errorf("row %d: mean %v var %v", i, mean, varr)
		}
	}
}

func TestAttentionShapesAndPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewMultiHeadAttention(8, 4, rng)
	x := Randn(5, 8, 1, rng)
	out := a.Forward(x)
	if out.Rows != 5 || out.Cols != 8 {
		t.Fatalf("shape = %dx%d", out.Rows, out.Cols)
	}
	if len(a.Params()) != 8 {
		t.Errorf("params = %d", len(a.Params()))
	}
}

func TestAttentionHeadDivisibilityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewMultiHeadAttention(10, 3, rand.New(rand.NewSource(1)))
}

func TestGRUShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewGRUCell(3, 6, rng)
	x := Randn(7, 3, 1, rng)
	all := c.RunSequence(x)
	if all.Rows != 7 || all.Cols != 6 {
		t.Errorf("RunSequence = %dx%d", all.Rows, all.Cols)
	}
	fin := c.Final(x)
	if fin.Rows != 1 || fin.Cols != 6 {
		t.Errorf("Final = %dx%d", fin.Rows, fin.Cols)
	}
	// Final equals last row of RunSequence.
	for j := 0; j < 6; j++ {
		if !almostEqual(fin.At(0, j), all.At(6, j), 1e-12) {
			t.Errorf("Final[%d] = %v, last row = %v", j, fin.At(0, j), all.At(6, j))
		}
	}
}

func TestPositionalEncodingValues(t *testing.T) {
	pe := NewPositionalEncoding(50, 8)
	s := pe.Slice(3)
	// Position 0: sin(0)=0, cos(0)=1 alternating.
	for k := 0; k < 4; k++ {
		if s.At(0, 2*k) != 0 {
			t.Errorf("s_0(2k) = %v", s.At(0, 2*k))
		}
		if s.At(0, 2*k+1) != 1 {
			t.Errorf("s_0(2k+1) = %v", s.At(0, 2*k+1))
		}
	}
	// Position 1, dim 0: sin(1).
	if !almostEqual(s.At(1, 0), math.Sin(1), 1e-12) {
		t.Errorf("s_1(0) = %v", s.At(1, 0))
	}
	// Equation 8 frequency: dim 2 uses 10000^{2/8}.
	want := math.Sin(1 / math.Pow(10000, 2.0/8.0))
	if !almostEqual(s.At(1, 2), want, 1e-12) {
		t.Errorf("s_1(2) = %v, want %v", s.At(1, 2), want)
	}
}

func TestPositionalEncodingAdd(t *testing.T) {
	pe := NewPositionalEncoding(10, 4)
	x := New(3, 4)
	out := pe.Add(x)
	s := pe.Slice(3)
	for i := range out.Data {
		if out.Data[i] != s.Data[i] {
			t.Fatal("Add(0) != Slice")
		}
	}
	// Beyond horizon wraps without panicking.
	long := New(25, 4)
	if got := pe.Add(long); got.Rows != 25 {
		t.Error("wrap failed")
	}
}

func TestEmbeddingForward(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	e := NewEmbedding(10, 4, rng)
	out := e.Forward([]int{3, 3, 7})
	if out.Rows != 3 || out.Cols != 4 {
		t.Fatalf("shape = %dx%d", out.Rows, out.Cols)
	}
	for j := 0; j < 4; j++ {
		if out.At(0, j) != out.At(1, j) {
			t.Error("same id maps to different rows")
		}
	}
	if len(e.Params()) != 1 {
		t.Errorf("params = %d", len(e.Params()))
	}
}

func TestSGDStep(t *testing.T) {
	p := NewParam(1, 2)
	p.Data[0], p.Data[1] = 1, 2
	p.ensureGrad()
	p.Grad[0], p.Grad[1] = 0.5, -0.5
	opt := NewSGD([]*Tensor{p}, 0.1, 0)
	opt.Step()
	if !almostEqual(p.Data[0], 0.95, 1e-12) || !almostEqual(p.Data[1], 2.05, 1e-12) {
		t.Errorf("SGD = %v", p.Data)
	}
	// Gradient cleared.
	if p.Grad[0] != 0 {
		t.Error("gradient not cleared")
	}
}

func TestSGDMomentumAccelerates(t *testing.T) {
	p := NewParam(1, 1)
	p.ensureGrad()
	opt := NewSGD([]*Tensor{p}, 0.1, 0.9)
	// Constant gradient 1: momentum should make steps grow.
	p.Grad[0] = 1
	opt.Step()
	first := -p.Data[0]
	p.Grad[0] = 1
	opt.Step()
	second := -p.Data[0] - first
	if second <= first {
		t.Errorf("momentum did not accelerate: %v then %v", first, second)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := Randn(1, 4, 1, rng)
	p.SetRequiresGrad(true)
	opt := NewAdam([]*Tensor{p}, 0.05)
	for i := 0; i < 400; i++ {
		loss := SumAll(Square(AddScalar(p, -3))) // minimize (p-3)^2
		loss.Backward()
		opt.Step()
	}
	for _, v := range p.Data {
		if math.Abs(v-3) > 0.05 {
			t.Errorf("Adam did not converge: %v", p.Data)
			break
		}
	}
}

func TestClipGradNorm(t *testing.T) {
	p := NewParam(1, 2)
	p.ensureGrad()
	p.Grad[0], p.Grad[1] = 3, 4 // norm 5
	norm := ClipGradNorm([]*Tensor{p}, 1)
	if !almostEqual(norm, 5, 1e-12) {
		t.Errorf("norm = %v", norm)
	}
	if !almostEqual(p.Grad[0], 0.6, 1e-12) || !almostEqual(p.Grad[1], 0.8, 1e-12) {
		t.Errorf("clipped = %v", p.Grad)
	}
	// Below threshold: untouched.
	p.Grad[0], p.Grad[1] = 0.3, 0.4
	ClipGradNorm([]*Tensor{p}, 1)
	if p.Grad[0] != 0.3 {
		t.Error("clip modified small gradient")
	}
}

func TestSaveLoadParams(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	src := NewMLP(rng, 4, 8, 2)
	dst := NewMLP(rand.New(rand.NewSource(99)), 4, 8, 2)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, dst.Params()); err != nil {
		t.Fatal(err)
	}
	for i, p := range src.Params() {
		q := dst.Params()[i]
		for j := range p.Data {
			if p.Data[j] != q.Data[j] {
				t.Fatalf("param %d differs after round trip", i)
			}
		}
	}
}

func TestLoadParamsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := NewMLP(rng, 4, 8, 2)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	// Wrong count.
	if err := LoadParams(bytes.NewReader(buf.Bytes()), src.Params()[:1]); err == nil {
		t.Error("count mismatch accepted")
	}
	// Wrong shape.
	other := NewMLP(rng, 4, 9, 2)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), other.Params()); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	src := NewLinear(3, 3, rng)
	path := t.TempDir() + "/params.gob"
	if err := SaveParamsFile(path, src.Params()); err != nil {
		t.Fatal(err)
	}
	dst := NewLinear(3, 3, rand.New(rand.NewSource(11)))
	if err := LoadParamsFile(path, dst.Params()); err != nil {
		t.Fatal(err)
	}
	if dst.W.Data[0] != src.W.Data[0] {
		t.Error("file round trip failed")
	}
}

func TestCollectParams(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := NewLinear(2, 2, rng)
	b := NewLinear(2, 2, rng)
	if got := len(CollectParams(a, b)); got != 4 {
		t.Errorf("CollectParams = %d", got)
	}
}

// TestTrainingLossDecreases is a small integration test: a two-layer MLP
// should fit a smooth function, with monotone-ish loss decrease.
func TestTrainingLossDecreases(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	mlp := NewMLP(rng, 2, 16, 1)
	opt := NewAdam(mlp.Params(), 1e-2)
	// Fit y = x0 + 2*x1 on fixed data.
	n := 32
	xs := Randn(n, 2, 1, rng)
	ys := New(n, 1)
	for i := 0; i < n; i++ {
		ys.Data[i] = xs.At(i, 0) + 2*xs.At(i, 1)
	}
	var first, last float64
	for epoch := 0; epoch < 200; epoch++ {
		pred := mlp.Forward(xs)
		loss := MeanAll(Square(Sub(pred, ys)))
		if epoch == 0 {
			first = loss.Scalar()
		}
		last = loss.Scalar()
		loss.Backward()
		opt.Step()
	}
	if last > first*0.05 {
		t.Errorf("loss did not decrease enough: %v -> %v", first, last)
	}
}
