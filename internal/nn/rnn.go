package nn

import "math/rand"

// GRUCell is a gated recurrent unit cell, the recurrent encoder used by the
// NeuTraj, t2vec, and CL-TSim baselines:
//
//	z = σ(x·Wz + h·Uz + bz)
//	r = σ(x·Wr + h·Ur + br)
//	ĥ = tanh(x·Wh + (r⊙h)·Uh + bh)
//	h' = (1−z)⊙h + z⊙ĥ
type GRUCell struct {
	Wz, Wr, Wh *Tensor // in×hidden
	Uz, Ur, Uh *Tensor // hidden×hidden
	Bz, Br, Bh *Tensor // 1×hidden
	In, Hidden int
}

// NewGRUCell returns a Xavier-initialized GRU cell.
func NewGRUCell(in, hidden int, rng *rand.Rand) *GRUCell {
	return &GRUCell{
		Wz: XavierParam(in, hidden, rng), Wr: XavierParam(in, hidden, rng), Wh: XavierParam(in, hidden, rng),
		Uz: XavierParam(hidden, hidden, rng), Ur: XavierParam(hidden, hidden, rng), Uh: XavierParam(hidden, hidden, rng),
		Bz: NewParam(1, hidden), Br: NewParam(1, hidden), Bh: NewParam(1, hidden),
		In: in, Hidden: hidden,
	}
}

// Step advances the cell: x is 1×in, h is 1×hidden; returns the new hidden
// state (1×hidden).
func (c *GRUCell) Step(x, h *Tensor) *Tensor {
	z := Sigmoid(Add(Add(MatMul(x, c.Wz), MatMul(h, c.Uz)), c.Bz))
	r := Sigmoid(Add(Add(MatMul(x, c.Wr), MatMul(h, c.Ur)), c.Br))
	hc := Tanh(Add(Add(MatMul(x, c.Wh), MatMul(Mul(r, h), c.Uh)), c.Bh))
	// h' = (1−z)⊙h + z⊙ĥ
	oneMinusZ := AddScalar(Scale(z, -1), 1)
	return Add(Mul(oneMinusZ, h), Mul(z, hc))
}

// InitState returns a zero 1×hidden initial state.
func (c *GRUCell) InitState() *Tensor { return New(1, c.Hidden) }

// RunSequence feeds each row of x (n×in) through the cell and returns all
// hidden states stacked as n×hidden. The final state is the last row.
func (c *GRUCell) RunSequence(x *Tensor) *Tensor {
	h := c.InitState()
	states := make([]*Tensor, x.Rows)
	for i := 0; i < x.Rows; i++ {
		h = c.Step(SliceRows(x, i, i+1), h)
		states[i] = h
	}
	return ConcatRows(states...)
}

// Final runs the sequence and returns only the last hidden state (1×hidden)
// — the read-out NeuTraj and its variants use.
func (c *GRUCell) Final(x *Tensor) *Tensor {
	h := c.InitState()
	for i := 0; i < x.Rows; i++ {
		h = c.Step(SliceRows(x, i, i+1), h)
	}
	return h
}

// Params implements Module.
func (c *GRUCell) Params() []*Tensor {
	return []*Tensor{c.Wz, c.Wr, c.Wh, c.Uz, c.Ur, c.Uh, c.Bz, c.Br, c.Bh}
}
