// Package nn is a small, stdlib-only deep-learning framework: dense 2-D
// tensors with reverse-mode automatic differentiation, the layers needed by
// the paper's models (linear, MLP, multi-head self-attention, GRU,
// embeddings, positional encoding, layer normalization) and the SGD and
// Adam optimizers.
//
// It substitutes for the PyTorch substrate the paper trains on (Section
// V-A6): the arithmetic of every forward and backward pass is the standard
// one, verified against central finite differences in the package tests.
//
// Tensors are row-major matrices. Operations build a computation graph on
// the fly; calling Backward on a scalar output propagates gradients to every
// tensor created with requiresGrad (parameters) or reached through them.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a row-major matrix node in a computation graph.
type Tensor struct {
	Rows, Cols int
	Data       []float64
	Grad       []float64 // allocated lazily during Backward

	requiresGrad bool
	parents      []*Tensor
	// back propagates t.Grad into the parents' Grad slices.
	back func(t *Tensor)
}

// New returns an uninitialized (zero) tensor of the given shape.
func New(rows, cols int) *Tensor {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("nn: invalid shape %dx%d", rows, cols))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows×cols tensor.
func FromSlice(rows, cols int, data []float64) *Tensor {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("nn: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: data}
}

// FromVec wraps a slice as a 1×n row vector (not copied).
func FromVec(v []float64) *Tensor { return FromSlice(1, len(v), v) }

// NewParam returns a zero tensor flagged as a trainable parameter.
func NewParam(rows, cols int) *Tensor {
	t := New(rows, cols)
	t.requiresGrad = true
	return t
}

// Randn fills and returns a new tensor with N(0, std²) entries.
func Randn(rows, cols int, std float64, rng *rand.Rand) *Tensor {
	t := New(rows, cols)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
	return t
}

// XavierParam returns a parameter initialized with Xavier/Glorot scaling,
// std = sqrt(2/(fanIn+fanOut)).
func XavierParam(rows, cols int, rng *rand.Rand) *Tensor {
	std := math.Sqrt(2.0 / float64(rows+cols))
	t := Randn(rows, cols, std, rng)
	t.requiresGrad = true
	return t
}

// At returns element (i, j).
func (t *Tensor) At(i, j int) float64 { return t.Data[i*t.Cols+j] }

// Set assigns element (i, j).
func (t *Tensor) Set(i, j int, v float64) { t.Data[i*t.Cols+j] = v }

// Row returns a copy of row i as a slice.
func (t *Tensor) Row(i int) []float64 {
	out := make([]float64, t.Cols)
	copy(out, t.Data[i*t.Cols:(i+1)*t.Cols])
	return out
}

// Scalar returns the single element of a 1×1 tensor.
func (t *Tensor) Scalar() float64 {
	if t.Rows != 1 || t.Cols != 1 {
		panic(fmt.Sprintf("nn: Scalar on %dx%d tensor", t.Rows, t.Cols))
	}
	return t.Data[0]
}

// Clone returns a graph-detached deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Rows, t.Cols)
	copy(c.Data, t.Data)
	return c
}

// Detach returns a view of the same data severed from the graph, so that no
// gradient flows past it (used for the frozen pre-trained grid embeddings,
// Section IV-C).
func (t *Tensor) Detach() *Tensor {
	return &Tensor{Rows: t.Rows, Cols: t.Cols, Data: t.Data}
}

// RequiresGrad reports whether the tensor is a leaf parameter.
func (t *Tensor) RequiresGrad() bool { return t.requiresGrad }

// SetRequiresGrad marks or unmarks the tensor as a trainable leaf.
func (t *Tensor) SetRequiresGrad(v bool) { t.requiresGrad = v }

// inGraph reports whether gradients must flow through t.
func (t *Tensor) inGraph() bool { return t.requiresGrad || t.back != nil }

// ensureGrad allocates the gradient buffer if needed.
func (t *Tensor) ensureGrad() {
	if t.Grad == nil {
		t.Grad = make([]float64, len(t.Data))
	}
}

// ZeroGrad clears the gradient buffer.
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

// result constructs an op output tensor, keeping only in-graph parents.
func result(rows, cols int, back func(t *Tensor), parents ...*Tensor) *Tensor {
	out := New(rows, cols)
	var live []*Tensor
	for _, p := range parents {
		if p != nil && p.inGraph() {
			live = append(live, p)
		}
	}
	if len(live) > 0 {
		out.parents = live
		out.back = back
	}
	return out
}

// Backward runs reverse-mode differentiation from t, which must be a scalar
// (1×1). Gradients accumulate into the Grad buffers of every tensor on the
// path to the leaves; parameters should be zeroed between steps (the
// optimizers do this).
func (t *Tensor) Backward() {
	if t.Rows != 1 || t.Cols != 1 {
		panic(fmt.Sprintf("nn: Backward on non-scalar %dx%d tensor", t.Rows, t.Cols))
	}
	order := topoSort(t)
	t.ensureGrad()
	t.Grad[0] = 1
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.back != nil {
			n.back(n)
		}
	}
}

// topoSort returns the graph under root in topological order (parents before
// children). Iterative DFS to avoid deep recursion on long RNN chains.
func topoSort(root *Tensor) []*Tensor {
	var order []*Tensor
	visited := map[*Tensor]bool{}
	type frame struct {
		n    *Tensor
		next int
	}
	stack := []frame{{n: root}}
	visited[root] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.n.parents) {
			p := f.n.parents[f.next]
			f.next++
			if !visited[p] {
				visited[p] = true
				stack = append(stack, frame{n: p})
			}
			continue
		}
		order = append(order, f.n)
		stack = stack[:len(stack)-1]
	}
	return order
}

func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor(%dx%d)", t.Rows, t.Cols)
}

func sameShape(a, b *Tensor) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("nn: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
