package nn

import (
	"math"
	"math/rand"
	"testing"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMatMulForward(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if !almostEqual(c.Data[i], w, 1e-12) {
			t.Errorf("c[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on shape mismatch")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestAddSubMul(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{4, 5, 6})
	if got := Add(a, b).Data; got[0] != 5 || got[2] != 9 {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(a, b).Data; got[0] != -3 || got[2] != -3 {
		t.Errorf("Sub = %v", got)
	}
	if got := Mul(a, b).Data; got[0] != 4 || got[2] != 18 {
		t.Errorf("Mul = %v", got)
	}
}

func TestAddRow(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(1, 2, []float64{10, 20})
	got := AddRow(a, b).Data
	want := []float64{11, 22, 13, 24}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("AddRow = %v", got)
			break
		}
	}
}

func TestActivationsForward(t *testing.T) {
	a := FromSlice(1, 4, []float64{-2, -0.5, 0.5, 2})
	if got := ReLU(a).Data; got[0] != 0 || got[1] != 0 || got[2] != 0.5 || got[3] != 2 {
		t.Errorf("ReLU = %v", got)
	}
	tg := Tanh(a).Data
	if !almostEqual(tg[3], math.Tanh(2), 1e-12) {
		t.Errorf("Tanh = %v", tg)
	}
	sg := Sigmoid(a).Data
	if !almostEqual(sg[0], 1/(1+math.Exp(2)), 1e-12) {
		t.Errorf("Sigmoid = %v", sg)
	}
}

func TestSoftmaxRows(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 1000, 1000, 1000})
	s := SoftmaxRows(a)
	// Row sums to 1.
	for i := 0; i < 2; i++ {
		var sum float64
		for j := 0; j < 3; j++ {
			sum += s.At(i, j)
		}
		if !almostEqual(sum, 1, 1e-12) {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
	// Large inputs do not overflow (max-subtraction).
	if !almostEqual(s.At(1, 0), 1.0/3.0, 1e-12) {
		t.Errorf("softmax overflow handling broken: %v", s.At(1, 0))
	}
	// Monotone within row.
	if !(s.At(0, 0) < s.At(0, 1) && s.At(0, 1) < s.At(0, 2)) {
		t.Error("softmax not monotone")
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	if got := SumAll(a).Scalar(); got != 10 {
		t.Errorf("SumAll = %v", got)
	}
	if got := MeanAll(a).Scalar(); got != 2.5 {
		t.Errorf("MeanAll = %v", got)
	}
	m := MeanRows(a)
	if m.Rows != 1 || m.Cols != 2 || m.Data[0] != 2 || m.Data[1] != 3 {
		t.Errorf("MeanRows = %v", m.Data)
	}
}

func TestTranspose(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := Transpose(a)
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(0, 1) != 4 || tr.At(2, 0) != 3 {
		t.Errorf("Transpose = %v", tr.Data)
	}
}

func TestConcatAndSlice(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 1, []float64{5, 6})
	cc := ConcatCols(a, b)
	if cc.Cols != 3 || cc.At(0, 2) != 5 || cc.At(1, 2) != 6 {
		t.Errorf("ConcatCols = %v", cc.Data)
	}
	c := FromSlice(1, 2, []float64{7, 8})
	cr := ConcatRows(a, c)
	if cr.Rows != 3 || cr.At(2, 0) != 7 {
		t.Errorf("ConcatRows = %v", cr.Data)
	}
	s := SliceRows(cr, 1, 3)
	if s.Rows != 2 || s.At(0, 0) != 3 || s.At(1, 1) != 8 {
		t.Errorf("SliceRows = %v", s.Data)
	}
	sc := SliceCols(cc, 1, 3)
	if sc.Cols != 2 || sc.At(0, 0) != 2 || sc.At(0, 1) != 5 {
		t.Errorf("SliceCols = %v", sc.Data)
	}
}

func TestGather(t *testing.T) {
	table := FromSlice(3, 2, []float64{1, 2, 3, 4, 5, 6})
	g := Gather(table, []int{2, 0, 2})
	if g.Rows != 3 || g.At(0, 0) != 5 || g.At(1, 1) != 2 || g.At(2, 1) != 6 {
		t.Errorf("Gather = %v", g.Data)
	}
}

func TestGatherOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Gather(New(3, 2), []int{3})
}

func TestDot(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{4, 5, 6})
	if got := Dot(a, b).Scalar(); got != 32 {
		t.Errorf("Dot = %v", got)
	}
}

func TestEuclideanDistance(t *testing.T) {
	a := FromSlice(1, 2, []float64{0, 0})
	b := FromSlice(1, 2, []float64{3, 4})
	if got := EuclideanDistance(a, b).Scalar(); !almostEqual(got, 5, 1e-6) {
		t.Errorf("EuclideanDistance = %v", got)
	}
}

func TestDropout(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := FromSlice(1, 1000, make([]float64, 1000))
	for i := range a.Data {
		a.Data[i] = 1
	}
	// Eval mode: identity (same tensor).
	if out := Dropout(a, 0.5, false, rng); out != a {
		t.Error("eval-mode dropout should be identity")
	}
	out := Dropout(a, 0.5, true, rng)
	var zeros int
	var sum float64
	for _, v := range out.Data {
		if v == 0 {
			zeros++
		}
		sum += v
	}
	if zeros < 400 || zeros > 600 {
		t.Errorf("dropout zeroed %d of 1000", zeros)
	}
	// Expected sum preserved by rescaling: ~1000.
	if sum < 800 || sum > 1200 {
		t.Errorf("dropout sum = %v", sum)
	}
}

func TestBackwardSimpleChain(t *testing.T) {
	// loss = sum((x*2 + 1)^2), dloss/dx = 2*(2x+1)*2
	x := NewParam(1, 3)
	x.Data[0], x.Data[1], x.Data[2] = 1, -2, 0.5
	loss := SumAll(Square(AddScalar(Scale(x, 2), 1)))
	loss.Backward()
	for i, xv := range x.Data {
		want := 4 * (2*xv + 1)
		if !almostEqual(x.Grad[i], want, 1e-9) {
			t.Errorf("grad[%d] = %v, want %v", i, x.Grad[i], want)
		}
	}
}

func TestBackwardAccumulatesAcrossUses(t *testing.T) {
	// loss = sum(x + x) => grad = 2 per element.
	x := NewParam(1, 2)
	x.Data[0], x.Data[1] = 3, 4
	loss := SumAll(Add(x, x))
	loss.Backward()
	if x.Grad[0] != 2 || x.Grad[1] != 2 {
		t.Errorf("grad = %v", x.Grad)
	}
}

func TestBackwardNonScalarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(2, 2).Backward()
}

func TestDetachStopsGradient(t *testing.T) {
	x := NewParam(1, 2)
	x.Data[0], x.Data[1] = 1, 2
	loss := SumAll(Square(x.Detach()))
	loss.Backward()
	if x.Grad != nil {
		for _, g := range x.Grad {
			if g != 0 {
				t.Fatal("gradient flowed through Detach")
			}
		}
	}
}

func TestScalarPanicsOnMatrix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(2, 1).Scalar()
}

func TestCloneIndependent(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	c := a.Clone()
	c.Data[0] = 99
	if a.Data[0] != 1 {
		t.Error("Clone shares storage")
	}
}
