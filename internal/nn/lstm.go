package nn

import "math/rand"

// LSTMCell is a long short-term memory cell — the recurrent encoder t2vec's
// original implementation uses (this library's t2vec defaults to GRU for
// speed; both are provided):
//
//	i = σ(x·Wi + h·Ui + bi)
//	f = σ(x·Wf + h·Uf + bf)
//	o = σ(x·Wo + h·Uo + bo)
//	g = tanh(x·Wg + h·Ug + bg)
//	c' = f⊙c + i⊙g
//	h' = o⊙tanh(c')
type LSTMCell struct {
	Wi, Wf, Wo, Wg *Tensor // in×hidden
	Ui, Uf, Uo, Ug *Tensor // hidden×hidden
	Bi, Bf, Bo, Bg *Tensor // 1×hidden
	In, Hidden     int
}

// NewLSTMCell returns a Xavier-initialized LSTM cell with the forget-gate
// bias set to 1 (the standard trick that keeps early gradients flowing).
func NewLSTMCell(in, hidden int, rng *rand.Rand) *LSTMCell {
	c := &LSTMCell{
		Wi: XavierParam(in, hidden, rng), Wf: XavierParam(in, hidden, rng),
		Wo: XavierParam(in, hidden, rng), Wg: XavierParam(in, hidden, rng),
		Ui: XavierParam(hidden, hidden, rng), Uf: XavierParam(hidden, hidden, rng),
		Uo: XavierParam(hidden, hidden, rng), Ug: XavierParam(hidden, hidden, rng),
		Bi: NewParam(1, hidden), Bf: NewParam(1, hidden),
		Bo: NewParam(1, hidden), Bg: NewParam(1, hidden),
		In: in, Hidden: hidden,
	}
	for i := range c.Bf.Data {
		c.Bf.Data[i] = 1
	}
	return c
}

// Step advances the cell: x is 1×in; h, cell are 1×hidden. Returns the new
// hidden and cell states.
func (c *LSTMCell) Step(x, h, cell *Tensor) (*Tensor, *Tensor) {
	gate := func(w, u, b *Tensor) *Tensor {
		return Add(Add(MatMul(x, w), MatMul(h, u)), b)
	}
	i := Sigmoid(gate(c.Wi, c.Ui, c.Bi))
	f := Sigmoid(gate(c.Wf, c.Uf, c.Bf))
	o := Sigmoid(gate(c.Wo, c.Uo, c.Bo))
	g := Tanh(gate(c.Wg, c.Ug, c.Bg))
	newCell := Add(Mul(f, cell), Mul(i, g))
	newH := Mul(o, Tanh(newCell))
	return newH, newCell
}

// InitState returns zero hidden and cell states.
func (c *LSTMCell) InitState() (*Tensor, *Tensor) {
	return New(1, c.Hidden), New(1, c.Hidden)
}

// RunSequence feeds each row of x (n×in) through the cell and returns all
// hidden states stacked as n×hidden.
func (c *LSTMCell) RunSequence(x *Tensor) *Tensor {
	h, cell := c.InitState()
	states := make([]*Tensor, x.Rows)
	for i := 0; i < x.Rows; i++ {
		h, cell = c.Step(SliceRows(x, i, i+1), h, cell)
		states[i] = h
	}
	return ConcatRows(states...)
}

// Final runs the sequence and returns the last hidden state (1×hidden).
func (c *LSTMCell) Final(x *Tensor) *Tensor {
	h, cell := c.InitState()
	for i := 0; i < x.Rows; i++ {
		h, cell = c.Step(SliceRows(x, i, i+1), h, cell)
	}
	return h
}

// Params implements Module.
func (c *LSTMCell) Params() []*Tensor {
	return []*Tensor{
		c.Wi, c.Wf, c.Wo, c.Wg,
		c.Ui, c.Uf, c.Uo, c.Ug,
		c.Bi, c.Bf, c.Bo, c.Bg,
	}
}
