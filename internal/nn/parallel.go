package nn

import (
	"runtime"
	"sync"
)

// ForwardParallel evaluates independent forward computations concurrently.
// Graph construction only reads parameter tensors, so builders may share a
// model; each builder must construct (and return) its own output tensor and
// must not call Backward. Results are returned in builder order. workers ≤ 0
// uses GOMAXPROCS.
func ForwardParallel(workers int, builders []func() *Tensor) []*Tensor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(builders) {
		workers = len(builders)
	}
	out := make([]*Tensor, len(builders))
	if workers <= 1 {
		for i, b := range builders {
			out[i] = b()
		}
		return out
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				//lint:ignore deferunlock work-counter critical section inside the fetch loop; a deferred unlock would serialize the workers for their whole lifetime
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(builders) {
					return
				}
				out[i] = builders[i]()
			}
		}()
	}
	wg.Wait()
	return out
}

// BackwardAll runs Backward on each scalar loss sequentially — gradient
// accumulation into shared parameters is not thread-safe, so the pattern
// for data parallelism is: build the loss graphs with ForwardParallel, then
// accumulate with BackwardAll, then step the optimizer once. Returns the
// summed loss value.
func BackwardAll(losses []*Tensor) float64 {
	var total float64
	for _, l := range losses {
		if l == nil {
			continue
		}
		total += l.Scalar()
		l.Backward()
	}
	return total
}
