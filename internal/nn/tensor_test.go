package nn

import (
	"math/rand"
	"strings"
	"testing"
)

func TestRowSumsForward(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	s := RowSums(a)
	if s.Rows != 2 || s.Cols != 1 || s.Data[0] != 6 || s.Data[1] != 15 {
		t.Errorf("RowSums = %v", s.Data)
	}
}

func TestDivByColumnForward(t *testing.T) {
	a := FromSlice(2, 2, []float64{2, 4, 9, 3})
	c := FromSlice(2, 1, []float64{2, 3})
	out := DivByColumn(a, c)
	want := []float64{1, 2, 3, 1}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("DivByColumn = %v", out.Data)
		}
	}
}

func TestDivByColumnShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	DivByColumn(New(2, 2), New(3, 1))
}

func TestGradRowSumsAndDiv(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := randParam(rng, 3, 4)
	// Keep divisors away from zero.
	c := randParam(rng, 3, 1)
	for i := range c.Data {
		if c.Data[i] > -0.5 && c.Data[i] < 0.5 {
			c.Data[i] = 1.5
		}
	}
	checkOp(t, "RowSums", []*Tensor{a}, func() *Tensor { return SumAll(Square(RowSums(a))) })
	checkOp(t, "DivByColumn", []*Tensor{a, c}, func() *Tensor { return SumAll(Square(DivByColumn(a, c))) })
}

func TestGradDotAndHinge(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := randParam(rng, 1, 5)
	b := randParam(rng, 1, 5)
	checkOp(t, "Dot", []*Tensor{a, b}, func() *Tensor { return Square(Dot(a, b)) })
	checkOp(t, "HingeScalar", []*Tensor{a, b}, func() *Tensor {
		return HingeScalar(AddScalar(Dot(a, b), 10)) // keep away from the kink
	})
}

func TestGradDropout(t *testing.T) {
	// With a fixed mask (same rng seed rebuilt each call), dropout's
	// gradient must match finite differences.
	rng := rand.New(rand.NewSource(44))
	a := randParam(rng, 2, 8)
	checkOp(t, "Dropout", []*Tensor{a}, func() *Tensor {
		fixed := rand.New(rand.NewSource(7))
		return SumAll(Square(Dropout(a, 0.5, true, fixed)))
	})
}

func TestFromVecAndRow(t *testing.T) {
	v := FromVec([]float64{1, 2, 3})
	if v.Rows != 1 || v.Cols != 3 {
		t.Fatalf("FromVec shape %dx%d", v.Rows, v.Cols)
	}
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	r := m.Row(1)
	if r[0] != 3 || r[1] != 4 {
		t.Errorf("Row = %v", r)
	}
	r[0] = 99 // Row copies
	if m.At(1, 0) != 3 {
		t.Error("Row shares storage")
	}
}

func TestTensorString(t *testing.T) {
	if s := New(2, 3).String(); !strings.Contains(s, "2x3") {
		t.Errorf("String = %q", s)
	}
}

func TestNewInvalidShapePanics(t *testing.T) {
	for _, c := range [][2]int{{0, 1}, {1, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", c[0], c[1])
				}
			}()
			New(c[0], c[1])
		}()
	}
}

func TestFromSliceLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestOptimizerZeroGrad(t *testing.T) {
	p := NewParam(1, 2)
	p.ensureGrad()
	p.Grad[0], p.Grad[1] = 1, 2
	NewSGD([]*Tensor{p}, 0.1, 0).ZeroGrad()
	if p.Grad[0] != 0 || p.Grad[1] != 0 {
		t.Error("SGD.ZeroGrad failed")
	}
	p.Grad[0] = 5
	NewAdam([]*Tensor{p}, 0.1).ZeroGrad()
	if p.Grad[0] != 0 {
		t.Error("Adam.ZeroGrad failed")
	}
}

func TestSliceOpsPanics(t *testing.T) {
	a := New(3, 3)
	for _, f := range []func(){
		func() { SliceRows(a, -1, 2) },
		func() { SliceRows(a, 2, 2) },
		func() { SliceRows(a, 0, 4) },
		func() { SliceCols(a, 3, 4) },
		func() { ConcatCols() },
		func() { ConcatRows() },
		func() { ConcatCols(New(2, 2), New(3, 2)) },
		func() { ConcatRows(New(2, 2), New(2, 3)) },
		func() { AddRow(New(2, 3), New(1, 2)) },
		func() { NewMLP(rand.New(rand.NewSource(1)), 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
