package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// paramBlob is the gob wire format for one tensor.
type paramBlob struct {
	Rows, Cols int
	Data       []float64
}

// SaveParams writes the parameter tensors to w in order. The caller is
// responsible for producing the same parameter order on load (models expose
// Params() with a stable order, so saving and loading the same architecture
// round-trips).
//
//det:replayed checkpoint byte-identity rides on this codec; parameter bytes must be a pure function of the tensors
func SaveParams(w io.Writer, params []*Tensor) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(len(params)); err != nil {
		return fmt.Errorf("nn: encode count: %w", err)
	}
	for i, p := range params {
		if err := enc.Encode(paramBlob{Rows: p.Rows, Cols: p.Cols, Data: p.Data}); err != nil {
			return fmt.Errorf("nn: encode param %d: %w", i, err)
		}
	}
	return nil
}

// LoadParams reads parameters from r into the given tensors, which must
// match in count and shape.
//
//det:replayed resume rebuilds model state from this decode; it must be a pure function of the parameter bytes
func LoadParams(r io.Reader, params []*Tensor) error {
	dec := gob.NewDecoder(r)
	var n int
	if err := dec.Decode(&n); err != nil {
		return fmt.Errorf("nn: decode count: %w", err)
	}
	if n != len(params) {
		return fmt.Errorf("nn: parameter count mismatch: file has %d, model has %d", n, len(params))
	}
	for i, p := range params {
		var blob paramBlob
		if err := dec.Decode(&blob); err != nil {
			return fmt.Errorf("nn: decode param %d: %w", i, err)
		}
		if blob.Rows != p.Rows || blob.Cols != p.Cols {
			return fmt.Errorf("nn: param %d shape mismatch: file %dx%d, model %dx%d",
				i, blob.Rows, blob.Cols, p.Rows, p.Cols)
		}
		copy(p.Data, blob.Data)
	}
	return nil
}

// SaveParamsFile saves parameters to path, creating or truncating it.
func SaveParamsFile(path string, params []*Tensor) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := SaveParams(f, params); err != nil {
		return err
	}
	return f.Close()
}

// LoadParamsFile loads parameters from path.
func LoadParamsFile(path string, params []*Tensor) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return LoadParams(f, params)
}
