package nn

import (
	"fmt"
	"math/rand"
)

// Conv3x3 is a same-padded 3×3 convolution over a fixed-size 2D field
// whose cells are stored row-major as tensor rows: the input is an
// (NX·NY)×In tensor (one row per cell, one column per channel) and the
// output is an (NX·NY)×Out tensor. It is implemented as im2col over the
// existing autograd ops — Gather assembles the nine shifted views of the
// field, ConcatCols stacks them into patch rows, and a single MatMul
// applies the kernel — so the backward pass comes for free and the hot
// loop is the already-optimized matrix multiply.
type Conv3x3 struct {
	NX, NY  int     // field width and height in cells
	In, Out int     // input and output channels
	K       *Tensor // kernel, (9·In)×Out
	B       *Tensor // bias, 1×Out

	// idx holds, per kernel tap, the source row of every output cell;
	// out-of-field taps point at the appended zero row (index NX·NY).
	idx [9][]int
}

// NewConv3x3 builds a 3×3 convolution over an NX×NY field with the given
// channel counts, Xavier-initialized from rng.
func NewConv3x3(nx, ny, in, out int, rng *rand.Rand) *Conv3x3 {
	if nx <= 0 || ny <= 0 || in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: Conv3x3 dimensions must be positive, got %dx%d field, %d->%d channels", nx, ny, in, out))
	}
	c := &Conv3x3{
		NX: nx, NY: ny, In: in, Out: out,
		K: XavierParam(9*in, out, rng),
		B: NewParam(1, out),
	}
	pad := nx * ny // the zero row appended by Forward
	tap := 0
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			ids := make([]int, nx*ny)
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					sx, sy := x+dx, y+dy
					if sx < 0 || sx >= nx || sy < 0 || sy >= ny {
						ids[y*nx+x] = pad
					} else {
						ids[y*nx+x] = sy*nx + sx
					}
				}
			}
			c.idx[tap] = ids
			tap++
		}
	}
	return c
}

// Forward applies the convolution to an (NX·NY)×In field tensor and
// returns the (NX·NY)×Out response. Padding is zero: a constant zero row
// is appended to the input and out-of-field taps gather it.
func (c *Conv3x3) Forward(x *Tensor) *Tensor {
	if x.Rows != c.NX*c.NY || x.Cols != c.In {
		panic(fmt.Sprintf("nn: Conv3x3 input %dx%d, want %dx%d", x.Rows, x.Cols, c.NX*c.NY, c.In))
	}
	padded := ConcatRows(x, New(1, c.In))
	taps := make([]*Tensor, 9)
	for t := range c.idx {
		taps[t] = Gather(padded, c.idx[t])
	}
	patches := ConcatCols(taps...)
	return AddRow(MatMul(patches, c.K), c.B)
}

// Params returns the trainable kernel and bias.
func (c *Conv3x3) Params() []*Tensor { return []*Tensor{c.K, c.B} }
