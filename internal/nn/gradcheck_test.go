package nn

import (
	"math/rand"
	"testing"
)

// checkOp gradchecks a graph builder over the given parameters.
func checkOp(t *testing.T, name string, params []*Tensor, build func() *Tensor) {
	t.Helper()
	if err := GradCheck(params, build, 1e-5); err > 1e-4 {
		t.Errorf("%s: max relative gradient error %v", name, err)
	}
}

// checkOpLoose is checkOp with a larger step and tolerance for deep
// compositions whose loss magnitude makes central differences cancel
// (the error there is the finite-difference numerics, not the analytic
// gradient: it shrinks as eps grows, the opposite of a real bug).
func checkOpLoose(t *testing.T, name string, params []*Tensor, build func() *Tensor) {
	t.Helper()
	if err := GradCheck(params, build, 1e-4); err > 1e-2 {
		t.Errorf("%s: max relative gradient error %v", name, err)
	}
}

func randParam(rng *rand.Rand, rows, cols int) *Tensor {
	p := Randn(rows, cols, 1, rng)
	p.SetRequiresGrad(true)
	return p
}

func TestGradMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randParam(rng, 3, 4)
	b := randParam(rng, 4, 2)
	checkOp(t, "MatMul", []*Tensor{a, b}, func() *Tensor {
		return SumAll(Square(MatMul(a, b)))
	})
}

func TestGradAddSubMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randParam(rng, 2, 3)
	b := randParam(rng, 2, 3)
	checkOp(t, "Add", []*Tensor{a, b}, func() *Tensor { return SumAll(Square(Add(a, b))) })
	checkOp(t, "Sub", []*Tensor{a, b}, func() *Tensor { return SumAll(Square(Sub(a, b))) })
	checkOp(t, "Mul", []*Tensor{a, b}, func() *Tensor { return SumAll(Square(Mul(a, b))) })
}

func TestGradAddRow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randParam(rng, 3, 4)
	b := randParam(rng, 1, 4)
	checkOp(t, "AddRow", []*Tensor{a, b}, func() *Tensor { return SumAll(Square(AddRow(a, b))) })
}

func TestGradActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randParam(rng, 2, 5)
	// Shift away from the ReLU kink to keep finite differences valid.
	for i := range a.Data {
		if a.Data[i] > -0.01 && a.Data[i] < 0.01 {
			a.Data[i] = 0.1
		}
	}
	checkOp(t, "ReLU", []*Tensor{a}, func() *Tensor { return SumAll(Square(ReLU(a))) })
	checkOp(t, "Tanh", []*Tensor{a}, func() *Tensor { return SumAll(Square(Tanh(a))) })
	checkOp(t, "Sigmoid", []*Tensor{a}, func() *Tensor { return SumAll(Square(Sigmoid(a))) })
	checkOp(t, "Exp", []*Tensor{a}, func() *Tensor { return SumAll(Exp(Scale(a, 0.3))) })
	checkOp(t, "Log", []*Tensor{a}, func() *Tensor { return SumAll(Log(AddScalar(Square(a), 1), 0)) })
}

func TestGradSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randParam(rng, 3, 4)
	w := randParam(rng, 3, 4) // random weighting so the gradient is nontrivial
	w.SetRequiresGrad(false)
	checkOp(t, "SoftmaxRows", []*Tensor{a}, func() *Tensor {
		return SumAll(Mul(SoftmaxRows(a), w))
	})
}

func TestGradReductionsAndShape(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randParam(rng, 3, 4)
	checkOp(t, "MeanAll", []*Tensor{a}, func() *Tensor { return MeanAll(Square(a)) })
	checkOp(t, "MeanRows", []*Tensor{a}, func() *Tensor { return SumAll(Square(MeanRows(a))) })
	checkOp(t, "Transpose", []*Tensor{a}, func() *Tensor { return SumAll(Square(MatMul(Transpose(a), a))) })
	b := randParam(rng, 3, 2)
	checkOp(t, "ConcatCols", []*Tensor{a, b}, func() *Tensor { return SumAll(Square(ConcatCols(a, b))) })
	c := randParam(rng, 2, 4)
	checkOp(t, "ConcatRows", []*Tensor{a, c}, func() *Tensor { return SumAll(Square(ConcatRows(a, c))) })
	checkOp(t, "SliceRows", []*Tensor{a}, func() *Tensor { return SumAll(Square(SliceRows(a, 1, 3))) })
	checkOp(t, "SliceCols", []*Tensor{a}, func() *Tensor { return SumAll(Square(SliceCols(a, 1, 4))) })
}

func TestGradGather(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	table := randParam(rng, 5, 3)
	checkOp(t, "Gather", []*Tensor{table}, func() *Tensor {
		return SumAll(Square(Gather(table, []int{0, 2, 2, 4})))
	})
}

func TestGradEuclidean(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randParam(rng, 1, 6)
	b := randParam(rng, 1, 6)
	checkOp(t, "EuclideanDistance", []*Tensor{a, b}, func() *Tensor {
		return EuclideanDistance(a, b)
	})
}

func TestGradLinearAndMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	lin := NewLinear(4, 3, rng)
	x := randParam(rng, 2, 4)
	params := append([]*Tensor{x}, lin.Params()...)
	checkOp(t, "Linear", params, func() *Tensor { return SumAll(Square(lin.Forward(x))) })

	mlp := NewMLP(rng, 4, 8, 3)
	params = append([]*Tensor{x}, mlp.Params()...)
	checkOp(t, "MLP", params, func() *Tensor { return SumAll(Square(mlp.Forward(x))) })
}

func TestGradLayerNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ln := NewLayerNorm(5)
	x := randParam(rng, 3, 5)
	params := append([]*Tensor{x}, ln.Params()...)
	checkOp(t, "LayerNorm", params, func() *Tensor { return SumAll(Square(ln.Forward(x))) })
}

func TestGradAttention(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	attn := NewMultiHeadAttention(8, 2, rng)
	x := randParam(rng, 4, 8)
	params := append([]*Tensor{x}, attn.Params()...)
	checkOpLoose(t, "MultiHeadAttention", params, func() *Tensor {
		return SumAll(Square(attn.Forward(x)))
	})
}

func TestGradEncoderBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	blk := NewEncoderBlock(8, 2, 16, true, rng)
	x := randParam(rng, 3, 8)
	params := append([]*Tensor{x}, blk.Params()...)
	checkOpLoose(t, "EncoderBlock", params, func() *Tensor {
		return SumAll(Square(blk.Forward(x)))
	})
}

func TestGradGRU(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cell := NewGRUCell(3, 4, rng)
	x := randParam(rng, 5, 3)
	params := append([]*Tensor{x}, cell.Params()...)
	checkOp(t, "GRU.Final", params, func() *Tensor {
		return SumAll(Square(cell.Final(x)))
	})
	checkOp(t, "GRU.RunSequence", params, func() *Tensor {
		return SumAll(Square(cell.RunSequence(x)))
	})
}

func TestGradEmbeddingFrozen(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	emb := NewEmbedding(6, 3, rng)
	emb.Freeze()
	if got := emb.Params(); got != nil {
		t.Errorf("frozen embedding exposes params: %v", got)
	}
	// Gradient should not reach the frozen table.
	out := SumAll(Square(emb.Forward([]int{1, 2})))
	out.Backward()
	if emb.Table.Grad != nil {
		for _, g := range emb.Table.Grad {
			if g != 0 {
				t.Fatal("gradient reached frozen table")
			}
		}
	}
}
