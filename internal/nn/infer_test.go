package nn

import (
	"math"
	"math/rand"
	"testing"
)

// TestMatMulIntoMatchesMatMul checks the graph-free kernel against the
// autograd forward pass over assorted shapes (the two run the identical
// i-p-j accumulation order, so values agree to the last bit; the
// tolerance guards against future reorderings, not present error).
func TestMatMulIntoMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	shapes := []struct{ n, k, m int }{
		{1, 1, 1}, {2, 3, 4}, {5, 5, 5}, {1, 16, 8}, {7, 2, 9},
	}
	for _, sh := range shapes {
		a := Randn(sh.n, sh.k, 1, rng)
		b := Randn(sh.k, sh.m, 1, rng)
		a.Data[0] = 0 // exercise the sparsity fast path
		want := MatMul(a, b)
		dst := New(sh.n, sh.m)
		for i := range dst.Data {
			dst.Data[i] = math.NaN() // MatMulInto must overwrite, not accumulate
		}
		MatMulInto(dst, a, b)
		for i := range want.Data {
			if math.Abs(dst.Data[i]-want.Data[i]) > 1e-12 {
				t.Fatalf("%dx%dx%d element %d: got %v, want %v",
					sh.n, sh.k, sh.m, i, dst.Data[i], want.Data[i])
			}
		}
	}
}

// TestMatMulIntoShapePanics checks the guard panics.
func TestMatMulIntoShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched shapes did not panic")
		}
	}()
	MatMulInto(New(2, 2), New(2, 3), New(4, 2))
}

// TestHotpathMatMulIntoZeroAlloc locks in the //perf:hotpath contract:
// the inference kernel allocates nothing, ever (it has no buffer to
// warm — the caller owns all storage).
func TestHotpathMatMulIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := Randn(16, 32, 1, rng)
	b := Randn(32, 16, 1, rng)
	dst := New(16, 16)
	allocs := testing.AllocsPerRun(100, func() {
		MatMulInto(dst, a, b)
	})
	if allocs != 0 {
		t.Fatalf("MatMulInto allocated %v per call, want 0", allocs)
	}
}

// BenchmarkHotpathMatMulInto measures the graph-free kernel on the
// serving-relevant shape (batch-of-1 embedding times a square weight).
func BenchmarkHotpathMatMulInto(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	x := Randn(1, 128, 1, rng)
	w := Randn(128, 128, 1, rng)
	dst := New(1, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, w)
	}
}
