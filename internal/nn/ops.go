package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// MatMul returns a·b for a (n×k) and b (k×m).
func MatMul(a, b *Tensor) *Tensor {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("nn: MatMul %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	n, k, m := a.Rows, a.Cols, b.Cols
	out := result(n, m, func(t *Tensor) {
		// dA = dOut · Bᵀ ; dB = Aᵀ · dOut
		if a.inGraph() {
			a.ensureGrad()
			for i := 0; i < n; i++ {
				for j := 0; j < m; j++ {
					g := t.Grad[i*m+j]
					//lint:ignore floatcompare sparsity fast path: skipping exactly-zero gradients is exact; a near-zero gradient just takes the slow path
					if g == 0 {
						continue
					}
					for p := 0; p < k; p++ {
						a.Grad[i*k+p] += g * b.Data[p*m+j]
					}
				}
			}
		}
		if b.inGraph() {
			b.ensureGrad()
			for p := 0; p < k; p++ {
				for j := 0; j < m; j++ {
					var s float64
					for i := 0; i < n; i++ {
						s += a.Data[i*k+p] * t.Grad[i*m+j]
					}
					b.Grad[p*m+j] += s
				}
			}
		}
	}, a, b)
	// Forward: straightforward ikj loop for cache friendliness.
	for i := 0; i < n; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*m : (i+1)*m]
		for p := 0; p < k; p++ {
			av := arow[p]
			//lint:ignore floatcompare sparsity fast path: skipping exactly-zero activations is exact (0·x contributes nothing)
			if av == 0 {
				continue
			}
			brow := b.Data[p*m : (p+1)*m]
			for j := 0; j < m; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// Add returns a + b elementwise (same shape).
func Add(a, b *Tensor) *Tensor {
	sameShape(a, b)
	out := result(a.Rows, a.Cols, func(t *Tensor) {
		if a.inGraph() {
			a.ensureGrad()
			for i, g := range t.Grad {
				a.Grad[i] += g
			}
		}
		if b.inGraph() {
			b.ensureGrad()
			for i, g := range t.Grad {
				b.Grad[i] += g
			}
		}
	}, a, b)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a − b elementwise (same shape).
func Sub(a, b *Tensor) *Tensor {
	sameShape(a, b)
	out := result(a.Rows, a.Cols, func(t *Tensor) {
		if a.inGraph() {
			a.ensureGrad()
			for i, g := range t.Grad {
				a.Grad[i] += g
			}
		}
		if b.inGraph() {
			b.ensureGrad()
			for i, g := range t.Grad {
				b.Grad[i] -= g
			}
		}
	}, a, b)
	for i := range out.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Mul returns the Hadamard (elementwise) product.
func Mul(a, b *Tensor) *Tensor {
	sameShape(a, b)
	out := result(a.Rows, a.Cols, func(t *Tensor) {
		if a.inGraph() {
			a.ensureGrad()
			for i, g := range t.Grad {
				a.Grad[i] += g * b.Data[i]
			}
		}
		if b.inGraph() {
			b.ensureGrad()
			for i, g := range t.Grad {
				b.Grad[i] += g * a.Data[i]
			}
		}
	}, a, b)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// AddRow broadcasts the 1×d row vector b onto every row of a (n×d).
func AddRow(a, b *Tensor) *Tensor {
	if b.Rows != 1 || b.Cols != a.Cols {
		panic(fmt.Sprintf("nn: AddRow %dx%d + %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := result(a.Rows, a.Cols, func(t *Tensor) {
		if a.inGraph() {
			a.ensureGrad()
			for i, g := range t.Grad {
				a.Grad[i] += g
			}
		}
		if b.inGraph() {
			b.ensureGrad()
			for i := 0; i < a.Rows; i++ {
				for j := 0; j < a.Cols; j++ {
					b.Grad[j] += t.Grad[i*a.Cols+j]
				}
			}
		}
	}, a, b)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Data[i*a.Cols+j] = a.Data[i*a.Cols+j] + b.Data[j]
		}
	}
	return out
}

// Scale returns s·a.
func Scale(a *Tensor, s float64) *Tensor {
	out := result(a.Rows, a.Cols, func(t *Tensor) {
		if a.inGraph() {
			a.ensureGrad()
			for i, g := range t.Grad {
				a.Grad[i] += g * s
			}
		}
	}, a)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * s
	}
	return out
}

// AddScalar returns a + s elementwise.
func AddScalar(a *Tensor, s float64) *Tensor {
	out := result(a.Rows, a.Cols, func(t *Tensor) {
		if a.inGraph() {
			a.ensureGrad()
			for i, g := range t.Grad {
				a.Grad[i] += g
			}
		}
	}, a)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + s
	}
	return out
}

// ReLU returns max(0, a) elementwise.
func ReLU(a *Tensor) *Tensor {
	out := result(a.Rows, a.Cols, func(t *Tensor) {
		if a.inGraph() {
			a.ensureGrad()
			for i, g := range t.Grad {
				if a.Data[i] > 0 {
					a.Grad[i] += g
				}
			}
		}
	}, a)
	for i, v := range a.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	return out
}

// Tanh returns tanh(a) elementwise.
func Tanh(a *Tensor) *Tensor {
	out := result(a.Rows, a.Cols, func(t *Tensor) {
		if a.inGraph() {
			a.ensureGrad()
			for i, g := range t.Grad {
				y := t.Data[i]
				a.Grad[i] += g * (1 - y*y)
			}
		}
	}, a)
	for i, v := range a.Data {
		out.Data[i] = math.Tanh(v)
	}
	return out
}

// Sigmoid returns 1/(1+e^−a) elementwise.
func Sigmoid(a *Tensor) *Tensor {
	out := result(a.Rows, a.Cols, func(t *Tensor) {
		if a.inGraph() {
			a.ensureGrad()
			for i, g := range t.Grad {
				y := t.Data[i]
				a.Grad[i] += g * y * (1 - y)
			}
		}
	}, a)
	for i, v := range a.Data {
		out.Data[i] = 1 / (1 + math.Exp(-v))
	}
	return out
}

// Exp returns e^a elementwise.
func Exp(a *Tensor) *Tensor {
	out := result(a.Rows, a.Cols, func(t *Tensor) {
		if a.inGraph() {
			a.ensureGrad()
			for i, g := range t.Grad {
				a.Grad[i] += g * t.Data[i]
			}
		}
	}, a)
	for i, v := range a.Data {
		out.Data[i] = math.Exp(v)
	}
	return out
}

// Log returns ln(a + eps) elementwise; eps keeps the gradient finite at 0.
func Log(a *Tensor, eps float64) *Tensor {
	out := result(a.Rows, a.Cols, func(t *Tensor) {
		if a.inGraph() {
			a.ensureGrad()
			for i, g := range t.Grad {
				a.Grad[i] += g / (a.Data[i] + eps)
			}
		}
	}, a)
	for i, v := range a.Data {
		out.Data[i] = math.Log(v + eps)
	}
	return out
}

// Square returns a² elementwise.
func Square(a *Tensor) *Tensor {
	out := result(a.Rows, a.Cols, func(t *Tensor) {
		if a.inGraph() {
			a.ensureGrad()
			for i, g := range t.Grad {
				a.Grad[i] += g * 2 * a.Data[i]
			}
		}
	}, a)
	for i, v := range a.Data {
		out.Data[i] = v * v
	}
	return out
}

// Sqrt returns sqrt(a + eps) elementwise; eps keeps the gradient finite at 0.
func Sqrt(a *Tensor, eps float64) *Tensor {
	out := result(a.Rows, a.Cols, func(t *Tensor) {
		if a.inGraph() {
			a.ensureGrad()
			for i, g := range t.Grad {
				a.Grad[i] += g * 0.5 / t.Data[i]
			}
		}
	}, a)
	for i, v := range a.Data {
		out.Data[i] = math.Sqrt(v + eps)
	}
	return out
}

// SumAll reduces to a 1×1 scalar.
func SumAll(a *Tensor) *Tensor {
	out := result(1, 1, func(t *Tensor) {
		if a.inGraph() {
			a.ensureGrad()
			g := t.Grad[0]
			for i := range a.Grad {
				a.Grad[i] += g
			}
		}
	}, a)
	var s float64
	for _, v := range a.Data {
		s += v
	}
	out.Data[0] = s
	return out
}

// MeanAll reduces to the 1×1 mean.
func MeanAll(a *Tensor) *Tensor {
	n := float64(len(a.Data))
	out := result(1, 1, func(t *Tensor) {
		if a.inGraph() {
			a.ensureGrad()
			g := t.Grad[0] / n
			for i := range a.Grad {
				a.Grad[i] += g
			}
		}
	}, a)
	var s float64
	for _, v := range a.Data {
		s += v
	}
	out.Data[0] = s / n
	return out
}

// MeanRows returns the 1×d column-wise mean of an n×d tensor — the Mean
// pooling of Equation 9.
func MeanRows(a *Tensor) *Tensor {
	n := float64(a.Rows)
	out := result(1, a.Cols, func(t *Tensor) {
		if a.inGraph() {
			a.ensureGrad()
			for i := 0; i < a.Rows; i++ {
				for j := 0; j < a.Cols; j++ {
					a.Grad[i*a.Cols+j] += t.Grad[j] / n
				}
			}
		}
	}, a)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Data[j] += a.Data[i*a.Cols+j]
		}
	}
	for j := range out.Data {
		out.Data[j] /= n
	}
	return out
}

// RowSums returns the n×1 per-row sums of an n×d tensor.
func RowSums(a *Tensor) *Tensor {
	out := result(a.Rows, 1, func(t *Tensor) {
		if a.inGraph() {
			a.ensureGrad()
			for i := 0; i < a.Rows; i++ {
				g := t.Grad[i]
				for j := 0; j < a.Cols; j++ {
					a.Grad[i*a.Cols+j] += g
				}
			}
		}
	}, a)
	for i := 0; i < a.Rows; i++ {
		var s float64
		for j := 0; j < a.Cols; j++ {
			s += a.Data[i*a.Cols+j]
		}
		out.Data[i] = s
	}
	return out
}

// DivByColumn divides each row i of a (n×d) by c[i] (n×1).
func DivByColumn(a, c *Tensor) *Tensor {
	if c.Rows != a.Rows || c.Cols != 1 {
		panic(fmt.Sprintf("nn: DivByColumn %dx%d / %dx%d", a.Rows, a.Cols, c.Rows, c.Cols))
	}
	out := result(a.Rows, a.Cols, func(t *Tensor) {
		if a.inGraph() {
			a.ensureGrad()
			for i := 0; i < a.Rows; i++ {
				inv := 1 / c.Data[i]
				for j := 0; j < a.Cols; j++ {
					a.Grad[i*a.Cols+j] += t.Grad[i*a.Cols+j] * inv
				}
			}
		}
		if c.inGraph() {
			c.ensureGrad()
			for i := 0; i < a.Rows; i++ {
				inv2 := 1 / (c.Data[i] * c.Data[i])
				var s float64
				for j := 0; j < a.Cols; j++ {
					s += t.Grad[i*a.Cols+j] * a.Data[i*a.Cols+j]
				}
				c.Grad[i] -= s * inv2
			}
		}
	}, a, c)
	for i := 0; i < a.Rows; i++ {
		inv := 1 / c.Data[i]
		for j := 0; j < a.Cols; j++ {
			out.Data[i*a.Cols+j] = a.Data[i*a.Cols+j] * inv
		}
	}
	return out
}

// SoftmaxRows applies softmax independently to each row.
func SoftmaxRows(a *Tensor) *Tensor {
	out := result(a.Rows, a.Cols, func(t *Tensor) {
		if a.inGraph() {
			a.ensureGrad()
			for i := 0; i < a.Rows; i++ {
				row := t.Data[i*a.Cols : (i+1)*a.Cols]
				grow := t.Grad[i*a.Cols : (i+1)*a.Cols]
				// dL/dx_j = y_j * (g_j - sum_k g_k y_k)
				var dot float64
				for j, y := range row {
					dot += grow[j] * y
				}
				for j, y := range row {
					a.Grad[i*a.Cols+j] += y * (grow[j] - dot)
				}
			}
		}
	}, a)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*a.Cols : (i+1)*a.Cols]
		maxV := math.Inf(-1)
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - maxV)
			orow[j] = e
			sum += e
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
	return out
}

// Transpose returns aᵀ.
func Transpose(a *Tensor) *Tensor {
	out := result(a.Cols, a.Rows, func(t *Tensor) {
		if a.inGraph() {
			a.ensureGrad()
			for i := 0; i < a.Rows; i++ {
				for j := 0; j < a.Cols; j++ {
					a.Grad[i*a.Cols+j] += t.Grad[j*a.Rows+i]
				}
			}
		}
	}, a)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Data[j*a.Rows+i] = a.Data[i*a.Cols+j]
		}
	}
	return out
}

// ConcatCols concatenates tensors with equal row counts side by side — the
// [h, h_r] of Lemma 3 and Equation 15.
func ConcatCols(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("nn: ConcatCols of nothing")
	}
	rows := ts[0].Rows
	total := 0
	for _, t := range ts {
		if t.Rows != rows {
			panic("nn: ConcatCols row mismatch")
		}
		total += t.Cols
	}
	parents := append([]*Tensor(nil), ts...)
	out := result(rows, total, func(t *Tensor) {
		off := 0
		for _, p := range ts {
			if p.inGraph() {
				p.ensureGrad()
				for i := 0; i < rows; i++ {
					for j := 0; j < p.Cols; j++ {
						p.Grad[i*p.Cols+j] += t.Grad[i*total+off+j]
					}
				}
			}
			off += p.Cols
		}
	}, parents...)
	off := 0
	for _, p := range ts {
		for i := 0; i < rows; i++ {
			copy(out.Data[i*total+off:i*total+off+p.Cols], p.Data[i*p.Cols:(i+1)*p.Cols])
		}
		off += p.Cols
	}
	return out
}

// ConcatRows stacks tensors with equal column counts vertically.
func ConcatRows(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("nn: ConcatRows of nothing")
	}
	cols := ts[0].Cols
	total := 0
	for _, t := range ts {
		if t.Cols != cols {
			panic("nn: ConcatRows col mismatch")
		}
		total += t.Rows
	}
	parents := append([]*Tensor(nil), ts...)
	out := result(total, cols, func(t *Tensor) {
		off := 0
		for _, p := range ts {
			if p.inGraph() {
				p.ensureGrad()
				for i := range p.Grad {
					p.Grad[i] += t.Grad[off+i]
				}
			}
			off += len(p.Data)
		}
	}, parents...)
	off := 0
	for _, p := range ts {
		copy(out.Data[off:off+len(p.Data)], p.Data)
		off += len(p.Data)
	}
	return out
}

// SliceRows returns rows [lo, hi) as a new (hi−lo)×cols tensor.
func SliceRows(a *Tensor, lo, hi int) *Tensor {
	if lo < 0 || hi > a.Rows || lo >= hi {
		panic(fmt.Sprintf("nn: SliceRows [%d,%d) of %d rows", lo, hi, a.Rows))
	}
	out := result(hi-lo, a.Cols, func(t *Tensor) {
		if a.inGraph() {
			a.ensureGrad()
			for i := range t.Grad {
				a.Grad[lo*a.Cols+i] += t.Grad[i]
			}
		}
	}, a)
	copy(out.Data, a.Data[lo*a.Cols:hi*a.Cols])
	return out
}

// SliceCols returns columns [lo, hi) as a new rows×(hi−lo) tensor — used to
// split attention heads.
func SliceCols(a *Tensor, lo, hi int) *Tensor {
	if lo < 0 || hi > a.Cols || lo >= hi {
		panic(fmt.Sprintf("nn: SliceCols [%d,%d) of %d cols", lo, hi, a.Cols))
	}
	w := hi - lo
	out := result(a.Rows, w, func(t *Tensor) {
		if a.inGraph() {
			a.ensureGrad()
			for i := 0; i < a.Rows; i++ {
				for j := 0; j < w; j++ {
					a.Grad[i*a.Cols+lo+j] += t.Grad[i*w+j]
				}
			}
		}
	}, a)
	for i := 0; i < a.Rows; i++ {
		copy(out.Data[i*w:(i+1)*w], a.Data[i*a.Cols+lo:i*a.Cols+hi])
	}
	return out
}

// Gather returns the rows of table indexed by idx, in order — an embedding
// lookup. Backward scatter-adds into the table.
func Gather(table *Tensor, idx []int) *Tensor {
	for _, i := range idx {
		if i < 0 || i >= table.Rows {
			panic(fmt.Sprintf("nn: Gather index %d out of [0,%d)", i, table.Rows))
		}
	}
	d := table.Cols
	out := result(len(idx), d, func(t *Tensor) {
		if table.inGraph() {
			table.ensureGrad()
			for r, i := range idx {
				for j := 0; j < d; j++ {
					table.Grad[i*d+j] += t.Grad[r*d+j]
				}
			}
		}
	}, table)
	for r, i := range idx {
		copy(out.Data[r*d:(r+1)*d], table.Data[i*d:(i+1)*d])
	}
	return out
}

// Dropout zeroes each element with probability p and rescales the survivors
// by 1/(1−p). When training is false it is the identity.
func Dropout(a *Tensor, p float64, training bool, rng *rand.Rand) *Tensor {
	if !training || p <= 0 {
		return a
	}
	mask := make([]float64, len(a.Data))
	scale := 1 / (1 - p)
	for i := range mask {
		if rng.Float64() >= p {
			mask[i] = scale
		}
	}
	out := result(a.Rows, a.Cols, func(t *Tensor) {
		if a.inGraph() {
			a.ensureGrad()
			for i, g := range t.Grad {
				a.Grad[i] += g * mask[i]
			}
		}
	}, a)
	for i, v := range a.Data {
		out.Data[i] = v * mask[i]
	}
	return out
}

// Dot returns the 1×1 inner product of two equal-shape tensors (flattened).
func Dot(a, b *Tensor) *Tensor {
	sameShape(a, b)
	out := result(1, 1, func(t *Tensor) {
		g := t.Grad[0]
		if a.inGraph() {
			a.ensureGrad()
			for i := range a.Grad {
				a.Grad[i] += g * b.Data[i]
			}
		}
		if b.inGraph() {
			b.ensureGrad()
			for i := range b.Grad {
				b.Grad[i] += g * a.Data[i]
			}
		}
	}, a, b)
	var s float64
	for i := range a.Data {
		s += a.Data[i] * b.Data[i]
	}
	out.Data[0] = s
	return out
}

// EuclideanDistance returns the 1×1 Euclidean distance between two
// equal-shape tensors, with an eps inside the square root so the gradient is
// finite at zero distance.
func EuclideanDistance(a, b *Tensor) *Tensor {
	diff := Sub(a, b)
	return Sqrt(SumAll(Square(diff)), 1e-12)
}

// HingeScalar returns max(0, x) for a 1×1 tensor — the [x]+ of Equation 18.
func HingeScalar(x *Tensor) *Tensor {
	return ReLU(x)
}
