package nn

import (
	"math"
	"math/rand"
)

// Module is anything with trainable parameters.
type Module interface {
	// Params returns the trainable parameter tensors in a stable order.
	Params() []*Tensor
}

// CollectParams concatenates the parameters of several modules.
func CollectParams(ms ...Module) []*Tensor {
	var out []*Tensor
	for _, m := range ms {
		out = append(out, m.Params()...)
	}
	return out
}

// Linear is a fully connected layer y = x·W + b.
type Linear struct {
	W *Tensor // in×out
	B *Tensor // 1×out
}

// NewLinear returns a Xavier-initialized linear layer.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	b := NewParam(1, out)
	return &Linear{W: XavierParam(in, out, rng), B: b}
}

// Forward applies the layer to x (n×in).
func (l *Linear) Forward(x *Tensor) *Tensor {
	return AddRow(MatMul(x, l.W), l.B)
}

// Params implements Module.
func (l *Linear) Params() []*Tensor { return []*Tensor{l.W, l.B} }

// MLP is a stack of linear layers with ReLU between them (none after the
// last). The paper's MLP_g and MLP^k are two-layer instances (Equations 9
// and 11); MLP_e is a one-layer instance (Equation 10).
type MLP struct {
	Layers []*Linear
}

// NewMLP builds an MLP with the given layer sizes, e.g. NewMLP(rng, 64, 128,
// 64) is a two-layer network 64→128→64.
func NewMLP(rng *rand.Rand, sizes ...int) *MLP {
	if len(sizes) < 2 {
		panic("nn: NewMLP needs at least input and output sizes")
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		m.Layers = append(m.Layers, NewLinear(sizes[i], sizes[i+1], rng))
	}
	return m
}

// Forward applies the stack with ReLU between layers.
func (m *MLP) Forward(x *Tensor) *Tensor {
	for i, l := range m.Layers {
		x = l.Forward(x)
		if i+1 < len(m.Layers) {
			x = ReLU(x)
		}
	}
	return x
}

// Params implements Module.
func (m *MLP) Params() []*Tensor {
	var out []*Tensor
	for _, l := range m.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// LayerNorm normalizes each row to zero mean and unit variance, then applies
// a learned affine transform γ, β.
type LayerNorm struct {
	Gamma *Tensor // 1×d
	Beta  *Tensor // 1×d
	Eps   float64
}

// NewLayerNorm returns a LayerNorm over d features with γ=1, β=0.
func NewLayerNorm(d int) *LayerNorm {
	g := NewParam(1, d)
	for i := range g.Data {
		g.Data[i] = 1
	}
	return &LayerNorm{Gamma: g, Beta: NewParam(1, d), Eps: 1e-5}
}

// Forward normalizes x row-wise.
func (ln *LayerNorm) Forward(x *Tensor) *Tensor {
	n, d := x.Rows, x.Cols
	df := float64(d)
	// Precompute per-row mean and inverse std for forward and backward.
	mean := make([]float64, n)
	invStd := make([]float64, n)
	xhat := make([]float64, n*d)
	for i := 0; i < n; i++ {
		row := x.Data[i*d : (i+1)*d]
		var mu float64
		for _, v := range row {
			mu += v
		}
		mu /= df
		var vr float64
		for _, v := range row {
			dv := v - mu
			vr += dv * dv
		}
		vr /= df
		mean[i] = mu
		invStd[i] = 1 / math.Sqrt(vr+ln.Eps)
		for j, v := range row {
			xhat[i*d+j] = (v - mu) * invStd[i]
		}
	}
	gamma, beta := ln.Gamma, ln.Beta
	out := result(n, d, func(t *Tensor) {
		if gamma.inGraph() {
			gamma.ensureGrad()
			for i := 0; i < n; i++ {
				for j := 0; j < d; j++ {
					gamma.Grad[j] += t.Grad[i*d+j] * xhat[i*d+j]
				}
			}
		}
		if beta.inGraph() {
			beta.ensureGrad()
			for i := 0; i < n; i++ {
				for j := 0; j < d; j++ {
					beta.Grad[j] += t.Grad[i*d+j]
				}
			}
		}
		if x.inGraph() {
			x.ensureGrad()
			for i := 0; i < n; i++ {
				// dxhat_j = g_j * gamma_j
				var sumD, sumDX float64
				dxhat := make([]float64, d)
				for j := 0; j < d; j++ {
					dxhat[j] = t.Grad[i*d+j] * gamma.Data[j]
					sumD += dxhat[j]
					sumDX += dxhat[j] * xhat[i*d+j]
				}
				for j := 0; j < d; j++ {
					x.Grad[i*d+j] += invStd[i] * (dxhat[j] - sumD/df - xhat[i*d+j]*sumDX/df)
				}
			}
		}
	}, x, gamma, beta)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			out.Data[i*d+j] = xhat[i*d+j]*gamma.Data[j] + beta.Data[j]
		}
	}
	return out
}

// Params implements Module.
func (ln *LayerNorm) Params() []*Tensor { return []*Tensor{ln.Gamma, ln.Beta} }
