package nn

import "math"

// GradCheck verifies reverse-mode gradients against central finite
// differences. build must construct a fresh scalar-output graph from the
// given parameters each call (the graph is re-run with perturbed values).
// It returns the maximum relative error over all parameter entries.
func GradCheck(params []*Tensor, build func() *Tensor, eps float64) float64 {
	// Analytic gradients.
	for _, p := range params {
		p.ensureGrad()
		p.ZeroGrad()
	}
	loss := build()
	loss.Backward()
	analytic := make([][]float64, len(params))
	for i, p := range params {
		analytic[i] = append([]float64(nil), p.Grad...)
	}

	var worst float64
	for i, p := range params {
		for j := range p.Data {
			orig := p.Data[j]
			p.Data[j] = orig + eps
			plus := build().Scalar()
			p.Data[j] = orig - eps
			minus := build().Scalar()
			p.Data[j] = orig

			numeric := (plus - minus) / (2 * eps)
			a := analytic[i][j]
			denom := math.Max(1e-8, math.Abs(a)+math.Abs(numeric))
			rel := math.Abs(a-numeric) / denom
			if rel > worst {
				worst = rel
			}
		}
	}
	return worst
}
