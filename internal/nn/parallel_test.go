package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestForwardParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mlp := NewMLP(rng, 4, 16, 2)
	inputs := make([]*Tensor, 24)
	for i := range inputs {
		inputs[i] = Randn(3, 4, 1, rng)
	}
	builders := make([]func() *Tensor, len(inputs))
	for i := range builders {
		x := inputs[i]
		builders[i] = func() *Tensor { return SumAll(Square(mlp.Forward(x))) }
	}
	seq := ForwardParallel(1, builders)
	par := ForwardParallel(8, builders)
	for i := range seq {
		if seq[i].Scalar() != par[i].Scalar() {
			t.Fatalf("builder %d: %v vs %v", i, seq[i].Scalar(), par[i].Scalar())
		}
	}
	// Default worker count path.
	def := ForwardParallel(0, builders)
	if def[0].Scalar() != seq[0].Scalar() {
		t.Fatal("default workers differ")
	}
}

func TestBackwardAllAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	lin := NewLinear(3, 1, rng)
	xs := []*Tensor{Randn(1, 3, 1, rng), Randn(1, 3, 1, rng)}

	// Reference: one combined loss.
	ref := NewLinear(3, 1, rng)
	copy(ref.W.Data, lin.W.Data)
	copy(ref.B.Data, lin.B.Data)
	combined := Add(SumAll(Square(ref.Forward(xs[0]))), SumAll(Square(ref.Forward(xs[1]))))
	combined.Backward()

	// ForwardParallel + BackwardAll on the other copy.
	losses := ForwardParallel(2, []func() *Tensor{
		func() *Tensor { return SumAll(Square(lin.Forward(xs[0]))) },
		func() *Tensor { return SumAll(Square(lin.Forward(xs[1]))) },
	})
	total := BackwardAll(losses)
	if math.Abs(total-combined.Scalar()) > 1e-9 {
		t.Fatalf("total %v != combined %v", total, combined.Scalar())
	}
	for i := range lin.W.Grad {
		if math.Abs(lin.W.Grad[i]-ref.W.Grad[i]) > 1e-9 {
			t.Fatalf("grad %d: %v vs %v", i, lin.W.Grad[i], ref.W.Grad[i])
		}
	}
	// Nil losses tolerated.
	if got := BackwardAll([]*Tensor{nil}); got != 0 {
		t.Errorf("nil losses = %v", got)
	}
}

// TestForwardParallelRace exercises the concurrent path under -race (shared
// read-only parameters, independent outputs).
func TestForwardParallelRace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	attn := NewEncoderBlock(8, 2, 8, true, rng)
	builders := make([]func() *Tensor, 32)
	for i := range builders {
		x := Randn(4, 8, 1, rng)
		builders[i] = func() *Tensor { return SumAll(Square(attn.Forward(x))) }
	}
	outs := ForwardParallel(8, builders)
	for i, o := range outs {
		if o == nil {
			t.Fatalf("output %d nil", i)
		}
	}
}
