package nn

import (
	"math/rand"
	"testing"
)

func TestLSTMShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewLSTMCell(3, 6, rng)
	x := Randn(7, 3, 1, rng)
	all := c.RunSequence(x)
	if all.Rows != 7 || all.Cols != 6 {
		t.Errorf("RunSequence = %dx%d", all.Rows, all.Cols)
	}
	fin := c.Final(x)
	if fin.Rows != 1 || fin.Cols != 6 {
		t.Errorf("Final = %dx%d", fin.Rows, fin.Cols)
	}
	for j := 0; j < 6; j++ {
		if fin.At(0, j) != all.At(6, j) {
			t.Fatal("Final != last row of RunSequence")
		}
	}
	if len(c.Params()) != 12 {
		t.Errorf("params = %d", len(c.Params()))
	}
}

func TestLSTMForgetBias(t *testing.T) {
	c := NewLSTMCell(2, 4, rand.New(rand.NewSource(2)))
	for _, v := range c.Bf.Data {
		if v != 1 {
			t.Fatal("forget bias not initialized to 1")
		}
	}
	for _, v := range c.Bi.Data {
		if v != 0 {
			t.Fatal("input bias not zero")
		}
	}
}

func TestGradLSTM(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewLSTMCell(3, 4, rng)
	x := randParam(rng, 5, 3)
	params := append([]*Tensor{x}, c.Params()...)
	checkOp(t, "LSTM.Final", params, func() *Tensor {
		return SumAll(Square(c.Final(x)))
	})
	checkOp(t, "LSTM.RunSequence", params, func() *Tensor {
		return SumAll(Square(c.RunSequence(x)))
	})
}

func TestLSTMLearnsMemoryTask(t *testing.T) {
	// The cell should learn to output the sign of the FIRST input after a
	// short distractor sequence — a task requiring memory.
	rng := rand.New(rand.NewSource(4))
	c := NewLSTMCell(1, 8, rng)
	head := NewLinear(8, 1, rng)
	params := append(c.Params(), head.Params()...)
	opt := NewAdam(params, 1e-2)

	mkSeq := func(sign float64) *Tensor {
		x := New(5, 1)
		x.Data[0] = sign
		for i := 1; i < 5; i++ {
			x.Data[i] = rng.NormFloat64() * 0.1
		}
		return x
	}
	for epoch := 0; epoch < 150; epoch++ {
		var loss *Tensor
		for b := 0; b < 8; b++ {
			sign := float64(1 - 2*(b%2))
			pred := head.Forward(c.Final(mkSeq(sign)))
			target := FromVec([]float64{sign})
			l := Square(Sub(pred, target))
			if loss == nil {
				loss = l
			} else {
				loss = Add(loss, l)
			}
		}
		SumAll(loss).Backward()
		opt.Step()
	}
	// Evaluate.
	var correct int
	for trial := 0; trial < 20; trial++ {
		sign := float64(1 - 2*(trial%2))
		pred := head.Forward(c.Final(mkSeq(sign))).Scalar()
		if (pred > 0) == (sign > 0) {
			correct++
		}
	}
	if correct < 17 {
		t.Errorf("LSTM memory task: %d/20 correct", correct)
	}
}
