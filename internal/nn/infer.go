package nn

// Inference kernels: graph-free counterparts of the autograd ops for
// serving paths that only need forward values. The autograd MatMul
// allocates an output tensor, a backward closure, and a parents slice on
// every call — the right trade during training, pure overhead when the
// engine embeds queries at serving time.

// MatMulInto computes dst = a·b for a (n×k), b (k×m), dst (n×m), without
// building a gradient graph and without allocating: the caller owns dst
// and reuses it across calls. dst must not alias a or b.
//
// The kernel walks a and dst by slicing rows off the front
// (`for len(ad) >= k`), which is what lets the compiler prove every
// row-slice in range and keep the inner accumulation loop free of
// bounds checks — the //perf:hotpath contract, enforced by trajlint.
//
//perf:hotpath serving-time embedding is a chain of matmuls per query; the graph machinery the training path tolerates would dominate the arithmetic here
func MatMulInto(dst, a, b *Tensor) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("nn: MatMulInto shape mismatch")
	}
	k, m := a.Cols, b.Cols
	// Tensor constructors reject empty shapes; restating k, m > 0 here
	// hands the prove pass the lower bound it needs to eliminate the
	// row-slice bounds checks in the loop below.
	if k <= 0 || m <= 0 {
		panic("nn: MatMulInto empty dimensions")
	}
	ad, od := a.Data, dst.Data
	for len(ad) >= k && len(od) >= m {
		arow := ad[:k]
		orow := od[:m]
		clear(orow)
		brest := b.Data
		for p := 0; p < len(arow) && len(brest) >= m; p++ {
			av := arow[p]
			brow := brest[:m]
			brest = brest[m:]
			//lint:ignore floatcompare sparsity fast path: skipping exactly-zero activations is exact (0·x contributes nothing)
			if av == 0 {
				continue
			}
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
		ad = ad[k:]
		od = od[m:]
	}
}
