package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestConv3x3Shapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv3x3(4, 3, 2, 5, rng)
	x := Randn(12, 2, 1, rng)
	y := c.Forward(x)
	if y.Rows != 12 || y.Cols != 5 {
		t.Fatalf("output %dx%d, want 12x5", y.Rows, y.Cols)
	}
}

// TestConv3x3CenterTap verifies the convolution arithmetic directly: with
// a kernel that is 1 only on the center tap of channel 0, the output
// reproduces the input field.
func TestConv3x3CenterTap(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := NewConv3x3(3, 3, 1, 1, rng)
	for i := range c.K.Data {
		c.K.Data[i] = 0
	}
	// Taps run in (dy,dx) row-major order, so the center (0,0) is tap 4.
	c.K.Data[4] = 1
	for i := range c.B.Data {
		c.B.Data[i] = 0
	}
	x := Randn(9, 1, 1, rng)
	y := c.Forward(x)
	for i := range x.Data {
		if math.Abs(y.Data[i]-x.Data[i]) > 1e-12 {
			t.Fatalf("center-tap identity broken at %d: got %v want %v", i, y.Data[i], x.Data[i])
		}
	}
}

// TestConv3x3EdgePadding verifies zero padding: a kernel reading only the
// (-1,-1) tap must produce 0 at the top-left corner.
func TestConv3x3EdgePadding(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewConv3x3(3, 3, 1, 1, rng)
	for i := range c.K.Data {
		c.K.Data[i] = 0
	}
	c.K.Data[0] = 1 // tap (dy=-1,dx=-1)
	for i := range c.B.Data {
		c.B.Data[i] = 0
	}
	x := Randn(9, 1, 1, rng)
	y := c.Forward(x)
	if y.Data[0] != 0 {
		t.Fatalf("corner should read the zero pad, got %v", y.Data[0])
	}
	// Cell (1,1) reads (0,0).
	if math.Abs(y.Data[4]-x.Data[0]) > 1e-12 {
		t.Fatalf("cell (1,1) should read (0,0): got %v want %v", y.Data[4], x.Data[0])
	}
}

func TestConv3x3GradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := NewConv3x3(3, 4, 2, 3, rng)
	x := Randn(12, 2, 1, rng)
	x.SetRequiresGrad(true)
	params := append(c.Params(), x)
	build := func() *Tensor { return SumAll(Square(c.Forward(x))) }
	if worst := GradCheck(params, build, 1e-5); worst > 1e-5 {
		t.Fatalf("conv gradient check failed: max relative error %v", worst)
	}
}
