package grid

import (
	"math"
	"math/rand"

	"traj2hash/internal/nn"
)

// Node2VecConfig mirrors the Figure 7 comparison settings: walk length 80,
// 10 walks per node, window 10, return parameter p=1, in-out parameter q=1.
type Node2VecConfig struct {
	Dim       int
	WalkLen   int     // walk length (paper: 80)
	NumWalks  int     // walks per node (paper: 10)
	Window    int     // skip-gram window (paper: 10)
	P         float64 // return parameter (paper: 1)
	Q         float64 // in-out parameter (paper: 1)
	Negatives int     // negative samples per positive
	Epochs    int
	LR        float64
	Seed      int64
}

// DefaultNode2VecConfig returns the paper's Figure 7 parameterization.
func DefaultNode2VecConfig(dim int) Node2VecConfig {
	return Node2VecConfig{
		Dim: dim, WalkLen: 80, NumWalks: 10, Window: 10,
		P: 1, Q: 1, Negatives: 1, Epochs: 1, LR: 0.025, Seed: 1,
	}
}

// Node2Vec learns one independent embedding per grid cell by simulating
// biased random walks over the 8-neighbor grid adjacency graph and training
// skip-gram with negative sampling on the walk corpus [48]. It is the
// higher-freedom, higher-cost alternative the decomposed representation is
// compared against in Figure 7.
type Node2Vec struct {
	Grid  *Grid
	Dim   int
	Table *nn.Tensor // cells×d
	ctx   []float64  // cells×d context ("output") vectors
}

// NewNode2Vec allocates the embedding tables.
func NewNode2Vec(g *Grid, dim int, rng *rand.Rand) *Node2Vec {
	std := 1 / math.Sqrt(float64(dim))
	return &Node2Vec{
		Grid:  g,
		Dim:   dim,
		Table: nn.Randn(g.Cells(), dim, std, rng),
		ctx:   make([]float64, g.Cells()*dim),
	}
}

// ParamCount returns the number of learned scalars (input vectors only, to
// match how the decomposed representation is counted): d·NX·NY.
func (n *Node2Vec) ParamCount() int { return n.Dim * n.Grid.Cells() }

// neighbors returns the 8-adjacent cell ids of cell c.
func (n *Node2Vec) neighbors(c int) []int {
	x, y := n.Grid.CoordOf(c)
	out := make([]int, 0, 8)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			nx, ny := x+dx, y+dy
			if nx < 0 || nx >= n.Grid.NX || ny < 0 || ny >= n.Grid.NY {
				continue
			}
			out = append(out, ny*n.Grid.NX+nx)
		}
	}
	return out
}

// walk simulates one node2vec walk from start using second-order biases
// 1/p (return), 1 (distance-1 from previous), 1/q (distance-2).
func (n *Node2Vec) walk(start int, cfg Node2VecConfig, rng *rand.Rand) []int {
	w := make([]int, 0, cfg.WalkLen)
	w = append(w, start)
	for len(w) < cfg.WalkLen {
		cur := w[len(w)-1]
		nbrs := n.neighbors(cur)
		if len(nbrs) == 0 {
			break
		}
		//lint:ignore floatcompare p and q are user-set hyper-parameters; exactly 1 is node2vec's documented uniform-walk fast path
		if len(w) == 1 || (cfg.P == 1 && cfg.Q == 1) {
			w = append(w, nbrs[rng.Intn(len(nbrs))])
			continue
		}
		prev := w[len(w)-2]
		px, py := n.Grid.CoordOf(prev)
		weights := make([]float64, len(nbrs))
		var total float64
		for i, nb := range nbrs {
			bx, by := n.Grid.CoordOf(nb)
			var bias float64
			switch {
			case nb == prev:
				bias = 1 / cfg.P
			case absInt(bx-px) <= 1 && absInt(by-py) <= 1:
				bias = 1 // still adjacent to the previous node
			default:
				bias = 1 / cfg.Q
			}
			weights[i] = bias
			total += bias
		}
		r := rng.Float64() * total
		next := nbrs[len(nbrs)-1]
		for i, wt := range weights {
			if r < wt {
				next = nbrs[i]
				break
			}
			r -= wt
		}
		w = append(w, next)
	}
	return w
}

// Train generates the walk corpus and trains skip-gram with negative
// sampling. Returns the number of (center, context) pairs consumed — a
// proxy for training cost in the Figure 7 efficiency comparison.
func (n *Node2Vec) Train(cfg Node2VecConfig) int {
	rng := rand.New(rand.NewSource(cfg.Seed))
	cells := n.Grid.Cells()
	var pairs int
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for r := 0; r < cfg.NumWalks; r++ {
			for start := 0; start < cells; start++ {
				walk := n.walk(start, cfg, rng)
				for i, center := range walk {
					lo := maxInt(0, i-cfg.Window)
					hi := minInt(len(walk)-1, i+cfg.Window)
					for j := lo; j <= hi; j++ {
						if j == i {
							continue
						}
						n.sgnsStep(center, walk[j], cfg, rng)
						pairs++
					}
				}
			}
		}
	}
	return pairs
}

// sgnsStep applies one skip-gram-with-negative-sampling update.
func (n *Node2Vec) sgnsStep(center, context int, cfg Node2VecConfig, rng *rand.Rand) {
	d := n.Dim
	in := n.Table.Data[center*d : (center+1)*d]
	grad := make([]float64, d)

	update := func(target int, label float64) {
		out := n.ctx[target*d : (target+1)*d]
		var dot float64
		for k := 0; k < d; k++ {
			dot += in[k] * out[k]
		}
		g := (sigmoid(dot) - label) * cfg.LR
		for k := 0; k < d; k++ {
			grad[k] += g * out[k]
			out[k] -= g * in[k]
		}
	}
	update(context, 1)
	for s := 0; s < cfg.Negatives; s++ {
		update(rng.Intn(n.Grid.Cells()), 0)
	}
	for k := 0; k < d; k++ {
		in[k] -= grad[k]
	}
}

// Vector writes cell c's embedding into out.
func (n *Node2Vec) Vector(c int, out []float64) {
	copy(out, n.Table.Data[c*n.Dim:(c+1)*n.Dim])
}

// EmbedCells returns the n×d embedding matrix of a grid trajectory as a
// constant tensor (node2vec tables are frozen after training, matching how
// the decomposed embeddings are used).
func (n *Node2Vec) EmbedCells(cells []int) *nn.Tensor {
	return nn.Gather(n.Table, cells)
}

// CosineCellSim returns the cosine similarity between two cell embeddings.
func (n *Node2Vec) CosineCellSim(c1, c2 int) float64 {
	a := make([]float64, n.Dim)
	b := make([]float64, n.Dim)
	n.Vector(c1, a)
	n.Vector(c2, b)
	return cosine(a, b)
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
